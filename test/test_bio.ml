(** Tests of the bio request layer: merge correctness, data equivalence of
    the async scatter paths against the synchronous ones, and the batched
    buffer-cache read. *)

let tc = Alcotest.test_case

let with_dev ?config f =
  let e = Sim.Engine.create () in
  let d = Device.Ssd.create ?config ~nblocks:4096 ~block_size:4096 e in
  ignore (Sim.Engine.spawn e (fun () -> f e d));
  Sim.Engine.run e

let block c = Bytes.make 4096 c

let test_runs_merge () =
  let a = block 'a' and b = block 'b' and c = block 'c' in
  Alcotest.(check (list (pair int int)))
    "adjacent blocks merge, gaps split"
    [ (5, 2); (9, 1) ]
    (List.map
       (fun (start, ps) -> (start, List.length ps))
       (Kernel.Bio.runs [ (9, c); (5, a); (6, b) ]));
  (* payloads come back in block order within a run *)
  (match Kernel.Bio.runs [ (7, a); (5, b); (6, c) ] with
  | [ (5, [ p0; p1; p2 ]) ] ->
      Alcotest.(check bool) "run order" true (p0 == b && p1 == c && p2 == a)
  | _ -> Alcotest.fail "expected one merged run of three");
  Alcotest.(check (list (pair int int))) "empty" []
    (List.map (fun (s, ps) -> (s, List.length ps)) (Kernel.Bio.runs []))

(* Count the maximal contiguous runs of a sorted distinct block list. *)
let count_runs blocks =
  match List.sort_uniq compare blocks with
  | [] -> 0
  | first :: rest ->
      let n, _ =
        List.fold_left
          (fun (n, prev) b -> if b = prev + 1 then (n, b) else (n + 1, b))
          (1, first) rest
      in
      n

(* Random distinct block set in a small range (so runs actually form),
   with a distinct payload byte per block. *)
let blockset_gen =
  QCheck.Gen.(
    map
      (fun picks -> List.sort_uniq compare picks)
      (list_size (int_range 1 40) (int_range 0 63)))

let blockset = QCheck.make ~print:QCheck.Print.(list int) blockset_gen

let payload_for blk = Bytes.make 4096 (Char.chr (Char.code 'a' + (blk mod 26)))

(* The async scatter write must leave the device byte-identical to the
   synchronous per-block path, and must use exactly one command per
   maximal contiguous run. *)
let prop_write_scatter_equiv =
  QCheck.Test.make ~count:60 ~name:"bio write_scatter == sync writes" blockset
    (fun blocks ->
      let ok = ref false in
      with_dev (fun _e d ->
          let pairs = List.map (fun b -> (b, payload_for b)) blocks in
          let cmds = Kernel.Bio.write_scatter d pairs in
          if cmds <> count_runs blocks then
            QCheck.Test.fail_reportf "merged to %d commands, expected %d runs"
              cmds (count_runs blocks);
          List.iter
            (fun (b, data) ->
              if not (Bytes.equal (Device.Ssd.read d b) data) then
                QCheck.Test.fail_reportf "block %d content mismatch" b)
            pairs;
          (* untouched neighbours stay zero *)
          let untouched =
            List.filter (fun b -> not (List.mem b blocks)) [ 0; 13; 64; 100 ]
          in
          List.iter
            (fun b ->
              if not (Bytes.equal (Device.Ssd.read d b) (block '\000')) then
                QCheck.Test.fail_reportf "block %d dirtied" b)
            untouched;
          ok := true);
      !ok)

(* Same equivalence for the read side: read_scatter must return exactly
   what per-block reads see, in ascending block order, merged into one
   command per contiguous run. *)
let prop_read_scatter_equiv =
  QCheck.Test.make ~count:60 ~name:"bio read_scatter == sync reads" blockset
    (fun blocks ->
      let ok = ref false in
      with_dev (fun _e d ->
          List.iter (fun b -> Device.Ssd.write d b (payload_for b)) blocks;
          let pairs, cmds = Kernel.Bio.read_scatter d blocks in
          if cmds <> count_runs blocks then
            QCheck.Test.fail_reportf "merged to %d commands, expected %d runs"
              cmds (count_runs blocks);
          if List.map fst pairs <> blocks then
            QCheck.Test.fail_reportf "blocks came back out of order";
          List.iter
            (fun (b, data) ->
              if not (Bytes.equal data (payload_for b)) then
                QCheck.Test.fail_reportf "block %d content mismatch" b)
            pairs;
          ok := true);
      !ok)

let test_plug_unplug_incremental () =
  with_dev (fun _e d ->
      let p = Kernel.Bio.plug d in
      Kernel.Bio.add p ~block:10 (block 'x');
      Kernel.Bio.add p ~block:11 (block 'y');
      Kernel.Bio.unplug p;
      (* stage more after the first dispatch; wait reaps everything *)
      Kernel.Bio.add p ~block:20 (block 'z');
      (* re-staging a block keeps the latest payload *)
      Kernel.Bio.add p ~block:40 (block '!');
      Kernel.Bio.add p ~block:40 (block 'w');
      let cmds = Kernel.Bio.wait p in
      Alcotest.(check int) "two dispatches, three commands" 3 cmds;
      Alcotest.(check int) "nothing in flight after wait" 0
        (Kernel.Bio.in_flight p);
      Alcotest.(check bytes) "first batch" (block 'x') (Device.Ssd.read d 10);
      Alcotest.(check bytes) "second batch" (block 'z') (Device.Ssd.read d 20);
      Alcotest.(check bytes) "last staging wins" (block 'w')
        (Device.Ssd.read d 40))

let test_scatter_overlaps_channels () =
  (* 8 disjoint runs submitted through the bio layer must take well under
     8x one run's service time — the channel-parallelism win the log
     install and writepages conversions rely on. *)
  let time_of f =
    let e = Sim.Engine.create () in
    let d = Device.Ssd.create ~nblocks:4096 ~block_size:4096 e in
    ignore (Sim.Engine.spawn e (fun () -> f d));
    Sim.Engine.run e;
    Sim.Engine.now e
  in
  let pairs =
    List.concat_map
      (fun run -> List.init 4 (fun i -> (run * 100, i), block 'p'))
      (List.init 8 Fun.id)
    |> List.map (fun ((base, i), data) -> (base + i, data))
  in
  let serial =
    time_of (fun d ->
        List.iter (fun (b, data) -> Device.Ssd.write d b data) pairs)
  in
  let scatter = time_of (fun d -> ignore (Kernel.Bio.write_scatter d pairs)) in
  Alcotest.(check bool)
    (Printf.sprintf "scatter (%Ldns) < serial/2 (%Ldns)" scatter serial)
    true
    (Int64.compare (Int64.mul scatter 2L) serial < 0)

let test_bread_scatter_through_cache () =
  Helpers.in_sim (fun machine ->
      let d = Kernel.Machine.disk machine in
      let bc = Kernel.Bcache.create ~capacity:64 machine in
      List.iter
        (fun b -> Device.Ssd.write d b (payload_for b))
        [ 3; 4; 5; 30; 31; 77 ];
      (* warm one block so the batch mixes hits and misses *)
      let warm = Kernel.Bcache.bread bc 4 in
      Kernel.Bcache.brelse bc warm;
      let bufs = Kernel.Bcache.bread_scatter bc [ 77; 3; 4; 5; 30; 31 ] in
      Alcotest.(check (list int))
        "input order preserved" [ 77; 3; 4; 5; 30; 31 ]
        (List.map (fun b -> b.Kernel.Bcache.block) bufs);
      List.iter
        (fun b ->
          Alcotest.(check bytes)
            (Printf.sprintf "block %d" b.Kernel.Bcache.block)
            (payload_for b.Kernel.Bcache.block)
            b.Kernel.Bcache.data)
        bufs;
      List.iter (fun b -> Kernel.Bcache.brelse bc b) bufs;
      Kernel.Bcache.check_invariants bc;
      (* a second batched read is all cache hits: no further disk reads *)
      let reads_counter =
        Sim.Stats.counter (Kernel.Bcache.stats bc) "disk_reads"
      in
      let reads_before = Sim.Stats.Counter.get_int reads_counter in
      let bufs = Kernel.Bcache.bread_scatter bc [ 3; 4; 5 ] in
      List.iter (fun b -> Kernel.Bcache.brelse bc b) bufs;
      let reads_after = Sim.Stats.Counter.get_int reads_counter in
      Alcotest.(check int) "warm batch reads nothing" 0
        (reads_after - reads_before);
      Kernel.Bcache.check_invariants bc)

let suite =
  [
    tc "runs: sort + merge adjacent" `Quick test_runs_merge;
    QCheck_alcotest.to_alcotest prop_write_scatter_equiv;
    QCheck_alcotest.to_alcotest prop_read_scatter_equiv;
    tc "plug/unplug incremental staging" `Quick test_plug_unplug_incremental;
    tc "scatter overlaps device channels" `Quick test_scatter_overlaps_channels;
    tc "bread_scatter through the cache" `Quick test_bread_scatter_through_cache;
  ]
