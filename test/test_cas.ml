(** The content-addressable store: sealing, tenant instantiation,
    zero-device-read warm sharing, COW isolation, drop_caches under shared
    references, durability across remount, and the qcheck refcount /
    content-equivalence property over interleaved tenant operations. *)

let ok = Helpers.ok
let tc = Alcotest.test_case

(* A small tree crossing page boundaries, with one exact duplicate pair so
   sealing itself dedups. *)
let fixture_dirs = [ "sub" ]

let fixture_files () =
  [
    ("a.txt", Helpers.payload ~seed:1 1000);
    ("sub/b.bin", Helpers.payload ~seed:2 4096);
    ("sub/c.bin", Helpers.payload ~seed:3 9000);
    ("dup1.bin", Helpers.payload ~seed:4 8192);
    ("dup2.bin", Helpers.payload ~seed:4 8192);
  ]

let with_cas ?(cas_blocks = 4096) f =
  Helpers.in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs ~cas_blocks machine Helpers.xv6_maker);
      let vfs, handle =
        ok
          (Bento.Bentofs.mount ~background:false ~cas_blocks machine
             Helpers.xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let store = Option.get (Kernel.Cas.of_machine machine) in
      f machine os vfs store;
      Bento.Bentofs.unmount vfs handle)

let blocks_read machine =
  Sim.Stats.Counter.get
    (Sim.Stats.counter
       (Device.Ssd.stats (Kernel.Machine.disk machine))
       "blocks_read")

let read_file os path =
  let fd = ok (Kernel.Os.open_ os path Kernel.Os.rdonly) in
  let st = ok (Kernel.Os.fstat os fd) in
  let data = ok (Kernel.Os.pread os fd ~pos:0 ~len:st.Kernel.Vfs.st_size) in
  ok (Kernel.Os.close os fd);
  data

let ino_of os path = (ok (Kernel.Os.stat os path)).Kernel.Vfs.st_ino

let seal_and_instantiate store os ~tenants =
  let mid =
    Kernel.Cas.seal_files store ~name:"fixture" ~dirs:fixture_dirs
      ~files:(fixture_files ())
  in
  for k = 0 to tenants - 1 do
    Kernel.Cas.instantiate store os ~mid ~root:(Printf.sprintf "/t%d" k)
  done;
  mid

(* ------------------------------------------------------------------ *)

let test_warm_sharing () =
  with_cas (fun machine os vfs store ->
      ignore (seal_and_instantiate store os ~tenants:3 : int);
      (* sealing dedups the duplicate pair within the manifest *)
      Alcotest.(check bool)
        "dedup_blocks_saved > 0" true
        (Sim.Stats.Counter.get (Kernel.Machine.counter machine "dedup_blocks_saved")
        > 0L);
      (* cold pass: tenant 0 faults every page in from the device *)
      List.iter
        (fun (p, data) ->
          Alcotest.(check bytes) ("cold " ^ p) data (read_file os ("/t0/" ^ p)))
        (fixture_files ());
      (* warm passes: tenants 1 and 2 alias resident shared pages — zero
         device reads *)
      let br0 = blocks_read machine in
      for k = 1 to 2 do
        List.iter
          (fun (p, data) ->
            Alcotest.(check bytes)
              (Printf.sprintf "warm t%d %s" k p)
              data
              (read_file os (Printf.sprintf "/t%d/%s" k p)))
          (fixture_files ())
      done;
      Alcotest.(check int64) "warm device reads" br0 (blocks_read machine);
      Alcotest.(check bool)
        "cas hits counted" true
        (Sim.Stats.Counter.get (Kernel.Machine.counter machine "cas_hits") > 0L);
      Kernel.Vfs.check_accounting vfs)

let test_cow_isolation () =
  with_cas (fun _machine os vfs store ->
      ignore (seal_and_instantiate store os ~tenants:2 : int);
      let orig = List.assoc "sub/c.bin" (fixture_files ()) in
      let victim = "/t0/sub/c.bin" in
      let ino = ino_of os victim in
      Alcotest.(check bool) "bound before write" true
        (Kernel.Cas.binding_of store ino <> None);
      (* overwrite one byte in the middle of page 1 *)
      let fd = ok (Kernel.Os.open_ os victim Kernel.Os.wronly) in
      ignore (ok (Kernel.Os.pwrite os fd ~pos:4097 (Bytes.of_string "X")));
      ok (Kernel.Os.close os fd);
      Alcotest.(check bool) "binding broken by COW" true
        (Kernel.Cas.binding_of store ino = None);
      let expected = Bytes.copy orig in
      Bytes.set expected 4097 'X';
      Alcotest.(check bytes) "writer sees new content" expected
        (read_file os victim);
      Alcotest.(check bytes) "other tenant unaffected" orig
        (read_file os "/t1/sub/c.bin");
      Kernel.Vfs.check_accounting vfs;
      (* cold re-read: the private copy now lives in the file system *)
      ok (Kernel.Vfs.drop_caches vfs);
      Alcotest.(check bytes) "private copy durable" expected
        (read_file os victim);
      Alcotest.(check bytes) "shared copy still served" orig
        (read_file os "/t1/sub/c.bin"))

let test_drop_caches_shared () =
  with_cas (fun _machine os vfs store ->
      ignore (seal_and_instantiate store os ~tenants:2 : int);
      (* hold /t0/a.txt open with its page resident *)
      let fd = ok (Kernel.Os.open_ os "/t0/a.txt" Kernel.Os.rdonly) in
      ignore (ok (Kernel.Os.pread os fd ~pos:0 ~len:1000));
      (* alias the same content from a closed file of the other tenant *)
      ignore (read_file os "/t1/a.txt" : Bytes.t);
      ignore (read_file os "/t1/sub/b.bin" : Bytes.t);
      Alcotest.(check bool) "several pages resident" true
        (Kernel.Vfs.cached_pages vfs >= 3);
      ok (Kernel.Vfs.drop_caches vfs);
      (* only the page aliased by the open vnode survives — in both
         vnodes, since eviction of the closed alias would free nothing *)
      Alcotest.(check int) "held shared pages survive" 2
        (Kernel.Vfs.cached_pages vfs);
      Alcotest.(check int) "one shared entry resident" 1
        (Kernel.Cas.resident_pages store);
      Kernel.Vfs.check_accounting vfs;
      ok (Kernel.Os.close os fd);
      (* with the file closed nothing holds the share *)
      ok (Kernel.Vfs.drop_caches vfs);
      Alcotest.(check int) "all pages dropped once closed" 0
        (Kernel.Vfs.cached_pages vfs);
      Alcotest.(check int) "shared table empty" 0
        (Kernel.Cas.resident_pages store);
      Kernel.Vfs.check_accounting vfs)

let test_unlink_unbinds () =
  with_cas (fun _machine os vfs store ->
      ignore (seal_and_instantiate store os ~tenants:1 : int);
      (* unlink without ever opening: the no-vnode path must unbind *)
      let i1 = ino_of os "/t0/dup1.bin" in
      ok (Kernel.Os.unlink os "/t0/dup1.bin");
      Alcotest.(check bool) "never-opened unlink unbinds" true
        (Kernel.Cas.binding_of store i1 = None);
      (* POSIX: an open fd keeps reading sealed content after unlink;
         the binding goes when the last reference does *)
      let orig = List.assoc "a.txt" (fixture_files ()) in
      let fd = ok (Kernel.Os.open_ os "/t0/a.txt" Kernel.Os.rdonly) in
      let i2 = ino_of os "/t0/a.txt" in
      ok (Kernel.Os.unlink os "/t0/a.txt");
      Alcotest.(check bool) "binding survives while open" true
        (Kernel.Cas.binding_of store i2 <> None);
      Alcotest.(check bytes) "unlinked-but-open reads sealed data" orig
        (ok (Kernel.Os.pread os fd ~pos:0 ~len:1000));
      ok (Kernel.Os.close os fd);
      Alcotest.(check bool) "binding dropped on last close" true
        (Kernel.Cas.binding_of store i2 = None);
      Kernel.Vfs.check_accounting vfs)

let test_remount_durability () =
  Helpers.in_sim (fun machine ->
      let cas_blocks = 4096 in
      ok (Bento.Bentofs.mkfs ~cas_blocks machine Helpers.xv6_maker);
      let vfs, handle =
        ok
          (Bento.Bentofs.mount ~background:false ~cas_blocks machine
             Helpers.xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let store = Option.get (Kernel.Cas.of_machine machine) in
      ignore (seal_and_instantiate store os ~tenants:2 : int);
      Bento.Bentofs.unmount vfs handle;
      (* remount: manifests and bindings come back from the catalog *)
      let vfs, handle =
        ok
          (Bento.Bentofs.mount ~background:false ~cas_blocks machine
             Helpers.xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let store = Option.get (Kernel.Cas.of_machine machine) in
      Alcotest.(check bool) "manifest recovered" true
        (Kernel.Cas.find_manifest store "fixture" <> None);
      List.iter
        (fun (p, data) ->
          Alcotest.(check bytes) ("after remount " ^ p) data
            (read_file os ("/t1/" ^ p)))
        (fixture_files ());
      Kernel.Vfs.check_accounting vfs;
      Bento.Bentofs.unmount vfs handle)

(* ------------------------------------------------------------------ *)
(* qcheck: interleaved instantiate/read/write/unlink over shared trees.
   After every step the VFS shared-page oracle must hold (refcount ==
   number of aliasing vnode pages, no zero-ref residents), and every
   surviving file must read back exactly what a private copy would hold
   (sealed bytes, or sealed bytes with the writes applied).              *)

let prop_interleaved =
  QCheck.Test.make ~count:12 ~name:"cas interleaved ops: refcounts + contents"
    QCheck.(int_bound 1_000_000)
    (fun salt ->
      let seed = Helpers.test_seed 0 + salt in
      with_cas (fun _machine os vfs store ->
          let rng = Sim.Rng.create seed in
          let files = fixture_files () in
          let mid =
            Kernel.Cas.seal_files store ~name:"fixture" ~dirs:fixture_dirs
              ~files
          in
          (* model: path -> expected bytes, for every live tenant file *)
          let model : (string, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
          let tenants = ref 0 in
          let add_tenant () =
            let root = Printf.sprintf "/q%d" !tenants in
            incr tenants;
            Kernel.Cas.instantiate store os ~mid ~root;
            List.iter
              (fun (p, data) ->
                Hashtbl.replace model (root ^ "/" ^ p) (Bytes.copy data))
              files
          in
          let pick_path () =
            let live = Hashtbl.fold (fun p _ acc -> p :: acc) model [] in
            match live with
            | [] -> None
            | l -> Some (List.nth l (Sim.Rng.int rng (List.length l)))
          in
          add_tenant ();
          for _step = 1 to 60 do
            (match Sim.Rng.int rng 10 with
            | 0 when !tenants < 4 -> add_tenant ()
            | 1 | 2 -> (
                (* write: breaks the share, applies to the model too *)
                match pick_path () with
                | None -> ()
                | Some p ->
                    let expected = Hashtbl.find model p in
                    let len = 1 + Sim.Rng.int rng 600 in
                    let pos =
                      Sim.Rng.int rng (max 1 (Bytes.length expected - len))
                    in
                    let data = Helpers.payload ~seed:(Sim.Rng.int rng 9999) len in
                    let fd = ok (Kernel.Os.open_ os p Kernel.Os.wronly) in
                    ignore (ok (Kernel.Os.pwrite os fd ~pos data));
                    ok (Kernel.Os.close os fd);
                    Bytes.blit data 0 expected pos len)
            | 3 -> (
                match pick_path () with
                | None -> ()
                | Some p ->
                    ok (Kernel.Os.unlink os p);
                    Hashtbl.remove model p)
            | _ -> (
                match pick_path () with
                | None -> ()
                | Some p ->
                    let got = read_file os p in
                    let expected = Hashtbl.find model p in
                    if not (Bytes.equal got expected) then
                      QCheck.Test.fail_reportf
                        "%s: read %d bytes diverged from model (seed %d)" p
                        (Bytes.length got) seed));
            (* refcount invariants, every step *)
            Kernel.Vfs.check_accounting vfs;
            List.iter
              (fun (_h, refs) ->
                if refs <= 0 then
                  QCheck.Test.fail_reportf
                    "resident shared page with refcount %d (seed %d)" refs seed)
              ((Kernel.Cas.vfs_hooks store).Kernel.Vfs.cas_debug_refs ())
          done;
          (* final content sweep *)
          Hashtbl.iter
            (fun p expected ->
              if not (Bytes.equal (read_file os p) expected) then
                QCheck.Test.fail_reportf "%s: final content diverged (seed %d)"
                  p seed)
            model);
      true)

let suite =
  [
    tc "warm sharing: zero device reads" `Quick test_warm_sharing;
    tc "cow isolation" `Quick test_cow_isolation;
    tc "drop_caches keeps held shared pages" `Quick test_drop_caches_shared;
    tc "unlink unbinds" `Quick test_unlink_unbinds;
    tc "remount durability" `Quick test_remount_durability;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
