(** The file-server battery: end-to-end protocol over a real mounted
    stack, lease coherence under concurrent writers (seeded schedules),
    the fairness/QoS regression, inflight caps, recall-on-underneath
    write, and wire robustness with a live server. *)

let tc = Alcotest.test_case
let ok = Kernel.Errno.ok_exn

let ok_r = function
  | Ok v -> v
  | Error e -> Alcotest.failf "server op failed: %s" (Kernel.Errno.to_string e)

let default_tenants =
  [ ("a", Server.Qos.default_class); ("b", Server.Qos.default_class) ]

let with_server ?(tenants = default_tenants) ?(max_total = 16) f =
  Helpers.with_xv6 (fun machine os _vfs _handle ->
      let sv =
        Server.Fileserver.start machine os
          { Server.Fileserver.tenants; max_inflight_total = max_total }
      in
      f machine os sv;
      Server.Fileserver.stop sv)

let attach machine sv ~tenant =
  ok_r (Server.Client.attach machine (Server.Fileserver.listener sv) ~tenant)

(* ------------------------------------------------------------------ *)
(* End-to-end protocol                                                  *)

let test_e2e () =
  with_server (fun machine _os sv ->
      let cl = attach machine sv ~tenant:"a" in
      let root = (Server.Client.root cl).Server.Proto.ino in
      let dir = ok_r (Server.Client.mkdir cl ~dir:root ~name:"data") in
      let dino = dir.Server.Proto.ino in
      let f = ok_r (Server.Client.create cl ~dir:dino ~name:"f" ~write:true) in
      let ino = f.Server.Proto.ino in
      Alcotest.(check bool)
        "write lease granted" true
        (Server.Client.lease cl ino = Server.Proto.L_write);
      let data = Helpers.payload 10_000 in
      ignore (ok_r (Server.Client.write cl ino ~off:0 data));
      (* buffered locally: attr served from cache, size already visible *)
      let a = ok_r (Server.Client.getattr cl ino) in
      Alcotest.(check int) "cached size" 10_000 a.Server.Proto.size;
      ok_r (Server.Client.commit cl ino);
      ok_r (Server.Client.close_ cl ino);
      (* read it back through a fresh open *)
      let a = ok_r (Server.Client.open_ cl ino ~write:false) in
      Alcotest.(check int) "size after reopen" 10_000 a.Server.Proto.size;
      let back = ok_r (Server.Client.read cl ino ~off:0 ~len:10_000) in
      Alcotest.(check bool) "data round-trips" true (Bytes.equal data back);
      (* second read is served from the lease cache *)
      let h0 =
        Sim.Stats.Counter.get (Kernel.Machine.counter machine "client_cache_hits")
      in
      let back2 = ok_r (Server.Client.read cl ino ~off:0 ~len:10_000) in
      Alcotest.(check bool) "cached data equal" true (Bytes.equal data back2);
      let h1 =
        Sim.Stats.Counter.get (Kernel.Machine.counter machine "client_cache_hits")
      in
      Alcotest.(check bool) "read served from cache" true (h1 > h0);
      ok_r (Server.Client.close_ cl ino);
      (* namespace ops *)
      let des = ok_r (Server.Client.readdir cl dino) in
      Alcotest.(check bool)
        "readdir lists f" true
        (List.exists (fun (n, _, _) -> n = "f") des);
      ok_r (Server.Client.unlink cl ~dir:dino ~name:"f");
      (match Server.Client.lookup cl ~dir:dino ~name:"f" with
      | Error Kernel.Errno.ENOENT -> ()
      | Ok _ -> Alcotest.fail "lookup after unlink succeeded"
      | Error e ->
          Alcotest.failf "unexpected errno %s" (Kernel.Errno.to_string e));
      Server.Client.detach cl)

let test_bad_tenant () =
  with_server (fun machine _os sv ->
      match
        Server.Client.attach machine (Server.Fileserver.listener sv)
          ~tenant:"nosuch"
      with
      | Error Kernel.Errno.EINVAL -> ()
      | Ok _ -> Alcotest.fail "attach with unknown tenant succeeded"
      | Error e ->
          Alcotest.failf "unexpected errno %s" (Kernel.Errno.to_string e))

(* ------------------------------------------------------------------ *)
(* Lease recall: a second session's access flushes the first's cache    *)

let test_recall_flush () =
  with_server (fun machine _os sv ->
      let w = attach machine sv ~tenant:"a" in
      let r = attach machine sv ~tenant:"b" in
      let root = (Server.Client.root w).Server.Proto.ino in
      let f = ok_r (Server.Client.create w ~dir:root ~name:"shared" ~write:true) in
      let ino = f.Server.Proto.ino in
      ignore (ok_r (Server.Client.write w ino ~off:0 (Helpers.payload 4096)));
      (* dirty and unflushed in w's cache; r's getattr must recall first *)
      let a = ok_r (Server.Client.getattr r ino) in
      Alcotest.(check int) "reader sees flushed size" 4096 a.Server.Proto.size;
      Alcotest.(check bool)
        "a recall happened" true
        (Server.Lease.recall_count (Server.Fileserver.leases sv) >= 1L);
      Alcotest.(check bool)
        "writer lease was dropped" true
        (Server.Client.lease w ino = Server.Proto.L_none);
      let back = ok_r (Server.Client.read r ino ~off:0 ~len:4096) in
      Alcotest.(check bool)
        "reader sees flushed data" true
        (Bytes.equal back (Helpers.payload 4096));
      Server.Client.detach w;
      Server.Client.detach r)

(* ------------------------------------------------------------------ *)
(* Lease coherence under concurrent schedules (seeded property)         *)

(* One file carries a version number, written through write-leased client
   caches by serialized writers and read by concurrently polling readers.
   [latest] is advanced only after the writing RPC/buffered write has
   returned, so at any reader's snapshot the version is either still in a
   write-leased cache (then the reader's lease acquisition recalls and
   flushes it) or already on the server. Observing a version older than
   the snapshot would mean a stale cache somewhere — the impossible
   thing. *)
let coherence_round machine sv ~seed ~nreaders ~rounds =
  let rng = Sim.Rng.create seed in
  let w1 = attach machine sv ~tenant:"a" in
  let w2 = attach machine sv ~tenant:"b" in
  let root = (Server.Client.root w1).Server.Proto.ino in
  let f = ok_r (Server.Client.create w1 ~dir:root ~name:"v" ~write:true) in
  let ino = f.Server.Proto.ino in
  let buf v =
    let b = Bytes.make 64 '\000' in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    b
  in
  ignore (ok_r (Server.Client.write w1 ino ~off:0 (buf 0)));
  ok_r (Server.Client.commit w1 ino);
  let latest = ref 0 in
  let next = ref 0 in
  let wmu = Sim.Sync.Mutex.create ~name:"coherence-writers" () in
  let done_ = Sim.Sync.Semaphore.create 0 in
  let violations = ref [] in
  let writer cl rng =
    for _ = 1 to rounds do
      Sim.Sync.Mutex.with_lock wmu (fun () ->
          incr next;
          let v = !next in
          (if Server.Client.lease cl ino <> Server.Proto.L_write then
             ignore (ok_r (Server.Client.open_ cl ino ~write:true)));
          ignore (ok_r (Server.Client.write cl ino ~off:0 (buf v)));
          (* sometimes make it durable, sometimes leave it dirty in the
             client cache — recalls must cover both *)
          if Sim.Rng.int rng 3 = 0 then ok_r (Server.Client.commit cl ino);
          latest := v);
      Sim.Engine.sleep (Int64.of_int (1 + Sim.Rng.int rng 50_000))
    done;
    Sim.Sync.Semaphore.release done_
  in
  let reader i rng =
    let cl = attach machine sv ~tenant:(if i mod 2 = 0 then "a" else "b") in
    for _ = 1 to rounds do
      let snap = !latest in
      (if Server.Client.lease cl ino = Server.Proto.L_none then
         ignore (ok_r (Server.Client.open_ cl ino ~write:false)));
      let b = ok_r (Server.Client.read cl ino ~off:0 ~len:64) in
      let seen =
        if Bytes.length b >= 8 then Int64.to_int (Bytes.get_int64_le b 0)
        else -1
      in
      if seen < snap then violations := (snap, seen) :: !violations;
      Sim.Engine.sleep (Int64.of_int (1 + Sim.Rng.int rng 30_000))
    done;
    Server.Client.detach cl;
    Sim.Sync.Semaphore.release done_
  in
  Kernel.Machine.spawn ~name:"writer-1" machine (fun () ->
      writer w1 (Sim.Rng.split rng));
  Kernel.Machine.spawn ~name:"writer-2" machine (fun () ->
      writer w2 (Sim.Rng.split rng));
  for i = 0 to nreaders - 1 do
    let r = Sim.Rng.split rng in
    Kernel.Machine.spawn ~name:(Printf.sprintf "reader-%d" i) machine
      (fun () -> reader i r)
  done;
  for _ = 1 to nreaders + 2 do
    Sim.Sync.Semaphore.acquire done_
  done;
  Server.Client.detach w1;
  Server.Client.detach w2;
  (!violations, Server.Lease.recall_count (Server.Fileserver.leases sv))

let test_lease_coherence () =
  Helpers.with_seed (fun seed ->
      with_server (fun machine _os sv ->
          let violations, recalls =
            coherence_round machine sv ~seed ~nreaders:6 ~rounds:25
          in
          (match violations with
          | [] -> ()
          | (snap, seen) :: _ ->
              Alcotest.failf
                "stale read: snapshot version %d but read version %d (%d \
                 violations)"
                snap seen (List.length violations));
          (* the property is vacuous if caches never conflicted *)
          Alcotest.(check bool)
            "schedule actually exercised recalls" true (recalls > 0L)))

(* ------------------------------------------------------------------ *)
(* Fairness: a flooding tenant cannot wreck another tenant's p99        *)

(* Victim: one closed-loop client doing paced 4 KB uncached reads.
   Attacker: [flood] clients hammering 64 KB uncached reads as fast as
   the server admits them — >=10x the victim's offered load. WFQ must
   keep the victim's p99 within its bound. *)
let victim_run machine sv ~flood =
  let root_corpus cl =
    let root = (Server.Client.root cl).Server.Proto.ino in
    ok_r (Server.Client.lookup cl ~dir:root ~name:"corpus")
  in
  let stop = ref false in
  let done_ = Sim.Sync.Semaphore.create 0 in
  for i = 0 to flood - 1 do
    Kernel.Machine.spawn ~name:(Printf.sprintf "attacker-%d" i) machine
      (fun () ->
        let cl = attach machine sv ~tenant:"b" in
        let c = root_corpus cl in
        let rng = Sim.Rng.create (1000 + i) in
        while not !stop do
          let n = Sim.Rng.int rng 8 in
          let f =
            ok_r
              (Server.Client.lookup cl ~dir:c.Server.Proto.ino
                 ~name:(Printf.sprintf "big%d" n))
          in
          ignore (Server.Client.read cl f.Server.Proto.ino ~off:0 ~len:65536)
        done;
        Server.Client.detach cl;
        Sim.Sync.Semaphore.release done_)
  done;
  let victim = attach machine sv ~tenant:"a" in
  let c = root_corpus victim in
  let lat = Sim.Stats.Histogram.create "victim_lat" in
  let rng = Sim.Rng.create 7 in
  for _ = 1 to 200 do
    let n = Sim.Rng.int rng 8 in
    let t0 = Kernel.Machine.now machine in
    let f =
      ok_r
        (Server.Client.lookup victim ~dir:c.Server.Proto.ino
           ~name:(Printf.sprintf "small%d" n))
    in
    ignore (ok_r (Server.Client.read victim f.Server.Proto.ino ~off:0 ~len:4096));
    Sim.Stats.Histogram.record lat
      (Int64.sub (Kernel.Machine.now machine) t0);
    Sim.Engine.sleep 200_000L (* 5k ops/s offered *)
  done;
  Server.Client.detach victim;
  stop := true;
  for _ = 1 to flood do
    Sim.Sync.Semaphore.acquire done_
  done;
  Sim.Stats.Histogram.percentile lat 99.0

let test_fairness () =
  let corpus os =
    ok (Kernel.Os.mkdir os "/corpus");
    for n = 0 to 7 do
      ok
        (Kernel.Os.write_file os
           (Printf.sprintf "/corpus/small%d" n)
           (Bytes.make 4096 's'));
      ok
        (Kernel.Os.write_file os
           (Printf.sprintf "/corpus/big%d" n)
           (Bytes.make 65536 'b'))
    done;
    ok (Kernel.Os.sync os)
  in
  let run flood =
    let p99 = ref 0L in
    with_server
      ~tenants:
        [
          ("a", { Server.Qos.weight = 1; max_inflight = 8 });
          ("b", { Server.Qos.weight = 1; max_inflight = 8 });
        ]
      (fun machine os sv ->
        corpus os;
        p99 := victim_run machine sv ~flood);
    !p99
  in
  let solo = run 0 in
  let flooded = run 10 in
  (* The QoS bound: an equal-weight flooding tenant may at most double
     the victim's round trip plus one service quantum; in practice WFQ
     holds the victim far below this. Without per-tenant scheduling the
     victim's p99 degrades by well over an order of magnitude. *)
  let bound = Int64.add (Int64.mul solo 4L) 2_000_000L in
  Alcotest.(check bool)
    (Printf.sprintf "victim p99 %.1fus (solo %.1fus) within bound %.1fus"
       (Int64.to_float flooded /. 1e3)
       (Int64.to_float solo /. 1e3)
       (Int64.to_float bound /. 1e3))
    true (flooded <= bound)

(* ------------------------------------------------------------------ *)
(* QoS unit behaviour: inflight caps and weighted shares                *)

let test_inflight_cap () =
  Helpers.in_sim (fun machine ->
      let q =
        Server.Qos.create machine ~max_total:16
          [ ("t", { Server.Qos.weight = 1; max_inflight = 2 }) ]
      in
      let done_ = Sim.Sync.Semaphore.create 0 in
      for _ = 1 to 10 do
        Kernel.Machine.spawn machine (fun () ->
            Server.Qos.with_slot q ~tenant:"t" ~cost:1.0 (fun () ->
                Sim.Engine.sleep 10_000L);
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 1 to 10 do
        Sim.Sync.Semaphore.acquire done_
      done;
      let st = Server.Qos.tenant_stats q "t" in
      Alcotest.(check int) "all completed" 10 st.Server.Qos.ts_completed;
      Alcotest.(check bool)
        "inflight never exceeded the cap" true
        (st.Server.Qos.ts_max_inflight <= 2))

let test_weighted_shares () =
  Helpers.in_sim (fun machine ->
      let q =
        Server.Qos.create machine ~max_total:4
          [
            ("gold", { Server.Qos.weight = 4; max_inflight = 4 });
            ("bronze", { Server.Qos.weight = 1; max_inflight = 4 });
          ]
      in
      let stop = ref false in
      let done_ = Sim.Sync.Semaphore.create 0 in
      List.iter
        (fun tenant ->
          for _ = 1 to 8 do
            Kernel.Machine.spawn machine (fun () ->
                while not !stop do
                  Server.Qos.with_slot q ~tenant ~cost:1.0 (fun () ->
                      Sim.Engine.sleep 5_000L)
                done;
                Sim.Sync.Semaphore.release done_)
          done)
        [ "gold"; "bronze" ];
      Kernel.Machine.spawn machine (fun () ->
          Sim.Engine.sleep 50_000_000L;
          stop := true);
      for _ = 1 to 16 do
        Sim.Sync.Semaphore.acquire done_
      done;
      let g = (Server.Qos.tenant_stats q "gold").Server.Qos.ts_completed in
      let b = (Server.Qos.tenant_stats q "bronze").Server.Qos.ts_completed in
      let ratio = float_of_int g /. float_of_int (max 1 b) in
      Alcotest.(check bool)
        (Printf.sprintf "gold/bronze completion ratio %.2f ~ 4" ratio)
        true
        (ratio > 3.0 && ratio < 5.0))

(* ------------------------------------------------------------------ *)
(* Recall on a write underneath the server                              *)

let test_underneath_write () =
  with_server (fun machine os sv ->
      let cl = attach machine sv ~tenant:"a" in
      let root = (Server.Client.root cl).Server.Proto.ino in
      ok (Kernel.Os.write_file os "/u" (Bytes.make 128 'x'));
      let f = ok_r (Server.Client.lookup cl ~dir:root ~name:"u") in
      let ino = f.Server.Proto.ino in
      ignore (ok_r (Server.Client.open_ cl ino ~write:false));
      let b = ok_r (Server.Client.read cl ino ~off:0 ~len:128) in
      Alcotest.(check char) "cached old byte" 'x' (Bytes.get b 0);
      (* write underneath the server: the modify hook must break leases *)
      ok (Kernel.Os.write_file os "/u" (Bytes.make 128 'y'));
      Sim.Engine.sleep 1_000_000L;
      Alcotest.(check bool)
        "client lease recalled" true
        (Server.Client.lease cl ino = Server.Proto.L_none);
      let b = ok_r (Server.Client.read cl ino ~off:0 ~len:128) in
      Alcotest.(check char) "fresh byte after recall" 'y' (Bytes.get b 0);
      Server.Client.detach cl)

(* ------------------------------------------------------------------ *)
(* Wire robustness with a live server                                   *)

let test_garbage_on_live_conn () =
  with_server (fun machine _os sv ->
      let cl = attach machine sv ~tenant:"a" in
      let root = (Server.Client.root cl).Server.Proto.ino in
      Server.Client.send_raw cl (Bytes.make 13 '\255');
      Server.Client.send_raw cl (Bytes.create 0);
      (* the server notes the garbage and the session keeps working *)
      let a = ok_r (Server.Client.getattr cl root) in
      Alcotest.(check int) "root still stats" root a.Server.Proto.ino;
      Alcotest.(check bool)
        "malformed frames counted" true
        (Sim.Stats.Counter.get
           (Kernel.Machine.counter machine "server_malformed")
        >= 2L);
      Server.Client.detach cl)

(* ------------------------------------------------------------------ *)
(* Pushdown over the wire: the server runs a registered filter and a
   bound-root get(key) on the client's behalf — one round trip each.    *)

let test_pushdown_rpcs () =
  with_server (fun machine os sv ->
      let cl = attach machine sv ~tenant:"a" in
      let root = (Server.Client.root cl).Server.Proto.ino in
      let dir = ok_r (Server.Client.mkdir cl ~dir:root ~name:"d") in
      let dino = dir.Server.Proto.ino in
      List.iter
        (fun name ->
          let f =
            ok_r (Server.Client.create cl ~dir:dino ~name ~write:true)
          in
          ok_r (Server.Client.close_ cl f.Server.Proto.ino))
        [ "a.log"; "b.dat"; "c.log"; "d.tmp" ];
      (* unregistered program: the errno crosses the wire *)
      (match Server.Client.readdir_filter cl dino ~prog:"ghost" with
      | Error e -> Alcotest.check Helpers.check_errno "ENOENT" Kernel.Errno.ENOENT e
      | Ok _ -> Alcotest.fail "unregistered program accepted");
      let r = Kernel.Pushdown.registry machine in
      let cap = Kernel.Pushdown.grant r ~client:"tenant-a" in
      Result.get_ok
        (Kernel.Pushdown.register r ~cap ~name:"logs"
           (Kernel.Pushdown.Dir_filter { contains = ".log" }));
      let des = ok_r (Server.Client.readdir_filter cl dino ~prog:"logs") in
      Alcotest.(check (list string))
        "filtered + batched" [ "a.log"; "c.log" ]
        (List.sort compare (List.map fst des));
      List.iter
        (fun ((_, (a : Server.Proto.attr))) ->
          Alcotest.(check int) "regular file attr" 0 a.kind)
        des;
      (* device-side get(key) through the server's own Os *)
      let ix =
        Workloads.Pushdown_bench.build_index os ~path:"/srv.idx"
          ~fanout_bits:Workloads.Pushdown_bench.walk_fanout_bits
          ~depth:Workloads.Pushdown_bench.walk_depth ~nkeys:4 ~seed:3
      in
      Result.get_ok
        (Kernel.Pushdown.register r ~cap ~name:"kv"
           (Kernel.Pushdown.Kv_get
              {
                fanout_bits = Workloads.Pushdown_bench.walk_fanout_bits;
                depth = Workloads.Pushdown_bench.walk_depth;
                root = ix.Workloads.Pushdown_bench.ix_root_dev;
              }));
      let key = ix.Workloads.Pushdown_bench.ix_keys.(0) in
      let v = ok_r (Server.Client.pushdown_get cl ~prog:"kv" ~key) in
      Alcotest.(check int64) "value round-trips" key (Bytes.get_int64_le v 0);
      ok (Kernel.Os.close os ix.Workloads.Pushdown_bench.ix_fd);
      Server.Client.detach cl)

let suite =
  [
    tc "end-to-end protocol" `Quick test_e2e;
    tc "pushdown rpcs: filtered scan + get(key)" `Quick test_pushdown_rpcs;
    tc "unknown tenant rejected" `Quick test_bad_tenant;
    tc "recall flushes dirty cache" `Quick test_recall_flush;
    tc "lease coherence under concurrency" `Quick test_lease_coherence;
    tc "fairness: flood cannot wreck p99" `Quick test_fairness;
    tc "qos inflight cap" `Quick test_inflight_cap;
    tc "qos weighted shares" `Quick test_weighted_shares;
    tc "underneath write breaks leases" `Quick test_underneath_write;
    tc "garbage frames on a live connection" `Quick test_garbage_on_live_conn;
  ]
