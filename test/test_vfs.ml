(** Tests of the VFS generic machinery: page cache behaviour, writeback
    batching (writepage vs writepages), dirty throttling, and reclaim. *)

open Helpers

let tc = Alcotest.test_case

let wb_stats vfs name =
  Sim.Stats.Counter.get_int (Sim.Stats.counter (Kernel.Vfs.stats vfs) name)

let test_page_cache_hit_avoids_device () =
  with_xv6 (fun machine os _vfs _h ->
      ok (Kernel.Os.write_file os "/c" (payload (64 * 4096)));
      ok (Kernel.Os.sync os);
      let fd = ok (Kernel.Os.open_ os "/c" Kernel.Os.rdonly) in
      let _ = ok (Kernel.Os.pread os fd ~pos:0 ~len:(64 * 4096)) in
      let dev_reads_before =
        Sim.Stats.Counter.get_int
          (Sim.Stats.counter (Device.Ssd.stats (Kernel.Machine.disk machine)) "read_cmds")
      in
      (* all subsequent reads must be cache hits *)
      for i = 0 to 63 do
        ignore (ok (Kernel.Os.pread os fd ~pos:(i * 4096) ~len:4096))
      done;
      let dev_reads_after =
        Sim.Stats.Counter.get_int
          (Sim.Stats.counter (Device.Ssd.stats (Kernel.Machine.disk machine)) "read_cmds")
      in
      Alcotest.(check int) "no device reads from cache" dev_reads_before
        dev_reads_after;
      ok (Kernel.Os.close os fd))

let test_writepages_batching () =
  (* Bento (wb_batch=256) must issue far fewer write_pages calls than the
     per-page C baseline for the same dirty range. *)
  let calls_for ~wb_batch =
    let machine = Kernel.Machine.create ~disk_blocks:65536 ~block_size:4096 () in
    let result = ref 0 in
    Kernel.Machine.spawn machine (fun () ->
        ok (Bento.Bentofs.mkfs machine xv6_maker);
        let vfs, h =
          ok (Bento.Bentofs.mount ~background:false ~wb_batch machine xv6_maker)
        in
        let os = Kernel.Os.create vfs in
        let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.(creat wronly)) in
        let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (payload (128 * 4096))) in
        ok (Kernel.Os.fsync os fd);
        ok (Kernel.Os.close os fd);
        result := wb_stats vfs "wb_calls";
        Bento.Bentofs.unmount vfs h);
    Kernel.Machine.run machine;
    !result
  in
  let batched = calls_for ~wb_batch:256 in
  let per_page = calls_for ~wb_batch:1 in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d calls << per-page %d calls" batched per_page)
    true
    (batched * 8 < per_page);
  Alcotest.(check int) "per-page = one call per page" 128 per_page

let test_dirty_throttling () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      (* tiny dirty limit: writes must trigger foreground writeback *)
      let vfs, h =
        ok (Bento.Bentofs.mount ~background:false ~dirty_limit:64 machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (payload (512 * 4096))) in
      Alcotest.(check bool) "throttles fired" true
        (wb_stats vfs "dirty_throttles" > 0);
      ok (Kernel.Os.close os fd);
      Bento.Bentofs.unmount vfs h)

let test_page_reclaim_under_pressure () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      (* cap the page cache at 256 pages = 1 MB *)
      let vfs, h =
        ok
          (Bento.Bentofs.mount ~background:false ~page_cap:256 machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      for i = 0 to 9 do
        ok (Kernel.Os.write_file os (Printf.sprintf "/f%d" i) (payload (64 * 4096)))
      done;
      Alcotest.(check bool) "reclaims fired" true
        (wb_stats vfs "page_reclaims" > 0);
      (* data must still read back correctly from the device *)
      for i = 0 to 9 do
        Alcotest.(check bool)
          (Printf.sprintf "f%d content" i)
          true
          (Bytes.equal (payload (64 * 4096))
             (ok (Kernel.Os.read_file os (Printf.sprintf "/f%d" i))))
      done;
      Bento.Bentofs.unmount vfs h)

let test_runs_of_indexes () =
  let runs = Kernel.Vfs.runs_of_indexes ~batch:4 [ 0; 1; 2; 3; 4; 7; 8; 20 ] in
  Alcotest.(check (list (list int)))
    "contiguous runs, capped at batch"
    [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 7; 8 ]; [ 20 ] ]
    runs;
  Alcotest.(check (list (list int))) "empty" [] (Kernel.Vfs.runs_of_indexes ~batch:4 []);
  Alcotest.(check (list (list int)))
    "batch 1 = singletons"
    [ [ 5 ]; [ 6 ] ]
    (Kernel.Vfs.runs_of_indexes ~batch:1 [ 5; 6 ])

let test_background_flusher_writes_back () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:true machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      let fd = ok (Kernel.Os.open_ os "/bg" Kernel.Os.(creat wronly)) in
      (* dirty enough pages to exceed the background threshold *)
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (payload (10000 * 4096))) in
      (* give the flusher a couple of periods *)
      Sim.Engine.sleep (Sim.Time.sec 2);
      Alcotest.(check bool) "flusher ran" true (wb_stats vfs "wb_calls" > 0);
      ok (Kernel.Os.close os fd);
      Bento.Bentofs.unmount vfs h)

let test_dirty_accounting_under_races () =
  (* Regression: a write racing writepages (page re-dirtied while writeback
     clears it) or two readers faulting the same missing page used to
     double-count the global cached/dirty totals. With the debug oracle on,
     every writeback and throttle crossing recomputes the totals from the
     page tables and raises on drift; the final checks assert the counters
     match the tables exactly and drain to zero after sync. *)
  Helpers.with_seed ~default:29 @@ fun seed ->
  Kernel.Vfs.set_debug_accounting true;
  Fun.protect
    ~finally:(fun () -> Kernel.Vfs.set_debug_accounting false)
    (fun () ->
      with_xv6 (fun machine os vfs _h ->
          let npages = 64 in
          ok (Kernel.Os.write_file os "/shared" (payload (npages * 4096)));
          ok (Kernel.Os.sync os);
          (* cold cache so concurrent readers fault the same pages *)
          ok (Kernel.Vfs.drop_caches vfs);
          let nfibers = 8 in
          let done_ = Sim.Sync.Semaphore.create 0 in
          for i = 0 to nfibers - 1 do
            Kernel.Machine.spawn machine (fun () ->
                let rng = Sim.Rng.create (seed + (101 * i)) in
                let fd = ok (Kernel.Os.open_ os "/shared" Kernel.Os.rdwr) in
                for _ = 1 to 60 do
                  let pos = Sim.Rng.int rng npages * 4096 in
                  match Sim.Rng.int rng 4 with
                  | 0 ->
                      ignore
                        (ok (Kernel.Os.pwrite os fd ~pos (payload 4096)))
                  | 1 -> ok (Kernel.Os.fsync os fd)
                  | _ -> ignore (ok (Kernel.Os.pread os fd ~pos ~len:4096))
                done;
                ok (Kernel.Os.close os fd);
                Sim.Sync.Semaphore.release done_)
          done;
          for _ = 1 to nfibers do
            Sim.Sync.Semaphore.acquire done_
          done;
          Kernel.Vfs.check_accounting vfs;
          ok (Kernel.Os.sync os);
          Kernel.Vfs.check_accounting vfs;
          Alcotest.(check int) "dirty counter drains to zero" 0
            (Kernel.Vfs.dirty_pages vfs)))

let suite =
  [
    tc "page cache absorbs reads" `Quick test_page_cache_hit_avoids_device;
    tc "writepages batching" `Quick test_writepages_batching;
    tc "dirty throttling" `Quick test_dirty_throttling;
    tc "page reclaim under pressure" `Quick test_page_reclaim_under_pressure;
    tc "runs_of_indexes" `Quick test_runs_of_indexes;
    tc "background flusher" `Quick test_background_flusher_writes_back;
    tc "dirty accounting under races" `Quick test_dirty_accounting_under_races;
  ]
