(** Round-trip and fuzz property tests of the file-server wire protocol.

    Unlike the FUSE protocol, the server decoders are total — a server
    must survive arbitrary bytes from a client — so the fuzz properties
    here assert [Error _] (never an exception) on truncated and garbage
    frames. *)

let tc = Alcotest.test_case

let gen_name =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 59) (char_range 'a' 'z')))

let gen_ino = QCheck.Gen.int_range 1 1_000_000
let gen_off = QCheck.Gen.int_range 0 (1 lsl 30)

let gen_request : Server.Proto.request QCheck.Gen.t =
  let open QCheck.Gen in
  let open Server.Proto in
  oneof
    [
      map (fun tenant -> Attach { tenant }) gen_name;
      map2 (fun dir name -> Lookup { dir; name }) gen_ino gen_name;
      map (fun ino -> Getattr { ino }) gen_ino;
      map2 (fun ino write -> Open { ino; write }) gen_ino bool;
      map
        (fun ((dir, name), write) -> Create { dir; name; write })
        (pair (pair gen_ino gen_name) bool);
      map2 (fun dir name -> Mkdir { dir; name }) gen_ino gen_name;
      map2 (fun dir name -> Unlink { dir; name }) gen_ino gen_name;
      map
        (fun ((ino, off), len) -> Read { ino; off; len })
        (pair (pair gen_ino gen_off) (int_range 0 (1 lsl 20)));
      map
        (fun (((ino, off), data), stable) ->
          Write { ino; off; data = Bytes.of_string data; stable })
        (pair (pair (pair gen_ino gen_off) (string_size (int_range 0 4096))) bool);
      map (fun ino -> Commit { ino }) gen_ino;
      map (fun ino -> Readdir { ino }) gen_ino;
      map (fun ino -> Release { ino }) gen_ino;
      map (fun ino -> Lease_return { ino }) gen_ino;
      return Detach;
      map2 (fun dir prog -> Readdir_filter { dir; prog }) gen_ino gen_name;
      map2
        (fun prog key -> Pushdown_get { prog; key })
        gen_name
        (map Int64.of_int (int_range 0 (1 lsl 48)));
    ]

let request_eq (a : Server.Proto.request) (b : Server.Proto.request) =
  match (a, b) with
  | Server.Proto.Write w1, Server.Proto.Write w2 ->
      w1.ino = w2.ino && w1.off = w2.off && w1.stable = w2.stable
      && Bytes.equal w1.data w2.data
  | _ -> a = b

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"server request roundtrip"
    (QCheck.make gen_request)
    (fun req ->
      match Server.Proto.decode_request (Server.Proto.encode_request ~xid:42 req) with
      | Ok (xid, req') -> xid = 42 && request_eq req req'
      | Error why -> QCheck.Test.fail_reportf "decode failed: %s" why)

let gen_attr =
  QCheck.Gen.(
    map
      (fun ((((ino, kind), size), nlink), change) ->
        { Server.Proto.ino; kind; size; nlink; change })
      (pair
         (pair (pair (pair gen_ino (int_range 0 2)) gen_off) (int_range 0 100))
         (int_range 0 1_000_000)))

let gen_reply : Server.Proto.reply QCheck.Gen.t =
  let open QCheck.Gen in
  let open Server.Proto in
  oneof
    [
      map
        (fun e -> R_err e)
        (oneofl
           [
             Kernel.Errno.ENOENT;
             Kernel.Errno.EIO;
             Kernel.Errno.ESTALE;
             Kernel.Errno.EINVAL;
           ]);
      return R_ok;
      map (fun a -> R_attr a) gen_attr;
      map2
        (fun oattr olease -> R_open { oattr; olease })
        gen_attr
        (oneofl [ L_none; L_read; L_write ]);
      map2
        (fun s rattr -> R_read { rdata = Bytes.of_string s; rattr })
        (string_size (int_range 0 4096))
        gen_attr;
      map2 (fun count wattr -> R_write { count; wattr }) (int_range 0 (1 lsl 20)) gen_attr;
      map
        (fun des -> R_dirents des)
        (list_size (int_range 0 20)
           (map2 (fun name (ino, kind) -> (name, ino, kind)) gen_name
              (pair gen_ino (int_range 0 2))));
      map
        (fun des -> R_dirents_plus des)
        (list_size (int_range 0 20) (pair gen_name gen_attr));
      map
        (fun s -> R_value (Bytes.of_string s))
        (string_size (int_range 0 4096));
    ]

let reply_eq (a : Server.Proto.reply) (b : Server.Proto.reply) =
  match (a, b) with
  | Server.Proto.R_read r1, Server.Proto.R_read r2 ->
      Bytes.equal r1.rdata r2.rdata && r1.rattr = r2.rattr
  | Server.Proto.R_value v1, Server.Proto.R_value v2 -> Bytes.equal v1 v2
  | _ -> a = b

let gen_smsg : Server.Proto.smsg QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map2
        (fun xid reply -> Server.Proto.Reply { xid; reply })
        (int_range 0 (1 lsl 40))
        gen_reply;
      map (fun ino -> Server.Proto.Recall { ino }) gen_ino;
    ]

let smsg_eq (a : Server.Proto.smsg) (b : Server.Proto.smsg) =
  match (a, b) with
  | Server.Proto.Reply r1, Server.Proto.Reply r2 ->
      r1.xid = r2.xid && reply_eq r1.reply r2.reply
  | _ -> a = b

let prop_smsg_roundtrip =
  QCheck.Test.make ~count:500 ~name:"server reply/recall roundtrip"
    (QCheck.make gen_smsg)
    (fun m ->
      match Server.Proto.decode_smsg (Server.Proto.encode_smsg m) with
      | Ok m' -> smsg_eq m m'
      | Error why -> QCheck.Test.fail_reportf "decode failed: %s" why)

(* --- fuzz: decoders are total ---------------------------------------- *)

(* Every strict prefix of a valid frame must decode to a clean error. *)
let prop_truncated_request =
  QCheck.Test.make ~count:200 ~name:"truncated request frames return Error"
    (QCheck.make QCheck.Gen.(pair gen_request (int_range 0 1000)))
    (fun (req, cut) ->
      let frame = Server.Proto.encode_request ~xid:7 req in
      let cut = min cut (max 0 (Bytes.length frame - 1)) in
      match Server.Proto.decode_request (Bytes.sub frame 0 cut) with
      | Error _ -> true
      | Ok _ ->
          (* a prefix may happen to decode only if trailing fields were
             empty — re-encoding must then reproduce the prefix exactly *)
          cut = Bytes.length frame)

let prop_garbage_smsg =
  QCheck.Test.make ~count:500 ~name:"garbage server frames never raise"
    (QCheck.make (QCheck.Gen.string_size (QCheck.Gen.int_range 0 256)))
    (fun s ->
      let b = Bytes.of_string s in
      (match Server.Proto.decode_request b with Ok _ | Error _ -> ());
      (match Server.Proto.decode_smsg b with Ok _ | Error _ -> ());
      true)

(* Bit-flip a valid frame: decoding may succeed (the flip can land in a
   payload byte) but must never raise. *)
let prop_bitflip_request =
  QCheck.Test.make ~count:500 ~name:"bit-flipped request frames never raise"
    (QCheck.make
       QCheck.Gen.(pair gen_request (pair (int_range 0 10_000) (int_range 0 7))))
    (fun (req, (pos, bit)) ->
      let frame = Server.Proto.encode_request ~xid:9 req in
      let pos = pos mod Bytes.length frame in
      Bytes.set frame pos
        (Char.chr (Char.code (Bytes.get frame pos) lxor (1 lsl bit)));
      match Server.Proto.decode_request frame with Ok _ | Error _ -> true)

let test_short_and_garbage () =
  (match Server.Proto.decode_request (Bytes.create 0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty frame accepted");
  (match Server.Proto.decode_request (Bytes.make 32 '\255') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage opcode accepted");
  match Server.Proto.decode_smsg (Bytes.make 3 '\001') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short smsg accepted"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_smsg_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncated_request;
    QCheck_alcotest.to_alcotest prop_garbage_smsg;
    QCheck_alcotest.to_alcotest prop_bitflip_request;
    tc "short and garbage frames rejected cleanly" `Quick test_short_and_garbage;
  ]
