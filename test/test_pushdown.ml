(** Pushdown subsystem tests (ISSUE 10): capability safety, budget
    aborts, exact crossing accounting for resubmitted I/O, and seeded
    equivalence of every pushed-down program against the plain
    multi-call path it replaces. *)

open Helpers

let reg machine = Kernel.Pushdown.registry machine

let with_fuse ?disk_blocks f =
  in_sim ?disk_blocks (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento_user.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      f machine os;
      Bento_user.unmount vfs h)

let fanout_bits = Workloads.Pushdown_bench.walk_fanout_bits
let depth = Workloads.Pushdown_bench.walk_depth

let build os ~nkeys ~seed =
  Workloads.Pushdown_bench.build_index os ~path:"/idx" ~fanout_bits ~depth
    ~nkeys ~seed

let register_walk ?budget machine ~name =
  let r = reg machine in
  let cap = Kernel.Pushdown.grant r ~client:"test" in
  Result.get_ok
    (Kernel.Pushdown.register r ~cap ~name ?budget
       (Kernel.Pushdown.Extent_walk { fanout_bits; depth }))

(* ------------------------------------------------------------------ *)
(* Capability + validation safety.                                     *)

let test_capability () =
  with_xv6 (fun machine _os _vfs _h ->
      let r = reg machine in
      let cap = Kernel.Pushdown.grant r ~client:"tenant-a" in
      (* revoked capability: registration refused *)
      Kernel.Pushdown.revoke cap;
      check_res "revoked cap" Kernel.Errno.EPERM
        (Kernel.Pushdown.register r ~cap ~name:"f"
           (Kernel.Pushdown.Dir_filter { contains = "x" }));
      (* a capability from another machine's registry is foreign here *)
      let other = Kernel.Machine.create ~disk_blocks:64 ~block_size:4096 () in
      let foreign = Kernel.Pushdown.grant (reg other) ~client:"intruder" in
      check_res "foreign cap" Kernel.Errno.EPERM
        (Kernel.Pushdown.register r ~cap:foreign ~name:"f"
           (Kernel.Pushdown.Dir_filter { contains = "x" }));
      Alcotest.(check bool)
        "nothing registered" true
        (Kernel.Pushdown.find r "f" = None))

let test_validation () =
  with_xv6 (fun machine _os _vfs _h ->
      let r = reg machine in
      let cap = Kernel.Pushdown.grant r ~client:"t" in
      let inval name prog =
        check_res name Kernel.Errno.EINVAL
          (Kernel.Pushdown.register r ~cap ~name prog)
      in
      inval "empty pattern" (Kernel.Pushdown.Dir_filter { contains = "" });
      inval "fanout 0"
        (Kernel.Pushdown.Extent_walk { fanout_bits = 0; depth = 2 });
      inval "fanout too wide"
        (Kernel.Pushdown.Extent_walk { fanout_bits = 11; depth = 2 });
      inval "depth 0"
        (Kernel.Pushdown.Extent_walk { fanout_bits = 4; depth = 0 });
      inval "depth 17"
        (Kernel.Pushdown.Extent_walk { fanout_bits = 4; depth = 17 });
      check_res "budget 0" Kernel.Errno.EINVAL
        (Kernel.Pushdown.register r ~cap ~name:"b" ~budget:0
           (Kernel.Pushdown.Dir_filter { contains = "x" })))

let test_unregistered_and_wrong_kind () =
  with_xv6 (fun machine os _vfs _h ->
      check_res "unregistered filter" Kernel.Errno.ENOENT
        (Kernel.Os.readdir_filtered os "/" ~prog:"ghost");
      check_res "unregistered walk" Kernel.Errno.ENOENT
        (Kernel.Os.pushdown_walk os ~prog:"ghost" ~root:1 ~key:0L);
      check_res "unregistered get" Kernel.Errno.ENOENT
        (Kernel.Os.pushdown_get os ~prog:"ghost" ~key:0L);
      let r = reg machine in
      let cap = Kernel.Pushdown.grant r ~client:"t" in
      Result.get_ok
        (Kernel.Pushdown.register r ~cap ~name:"flt"
           (Kernel.Pushdown.Dir_filter { contains = "x" }));
      check_res "filter is not a walk" Kernel.Errno.EINVAL
        (Kernel.Os.pushdown_walk os ~prog:"flt" ~root:1 ~key:0L);
      register_walk machine ~name:"wlk";
      check_res "walk is not a filter" Kernel.Errno.EINVAL
        (Kernel.Os.readdir_filtered os "/" ~prog:"wlk"))

(* A runaway program aborts with ELOOP, bumps the abort counters, and
   leaves the hosting fiber healthy: the very next walk succeeds. *)
let test_budget_abort () =
  with_xv6 (fun machine os _vfs _h ->
      let ix = build os ~nkeys:4 ~seed:5 in
      (* depth-3 walk costs depth+1 = 4 block reads; budget 3 aborts on
         the value read *)
      register_walk machine ~name:"starved" ~budget:3;
      register_walk machine ~name:"fed";
      let key = ix.Workloads.Pushdown_bench.ix_keys.(0) in
      let root = ix.Workloads.Pushdown_bench.ix_root_dev in
      check_res "budget exhausted" Kernel.Errno.ELOOP
        (Kernel.Os.pushdown_walk os ~prog:"starved" ~root ~key);
      let aborts =
        List.filter_map
          (fun (name, _, _, _, _, aborts) ->
            if name = "starved" then Some aborts else None)
          (Kernel.Pushdown.table (reg machine))
      in
      Alcotest.(check (list int)) "abort recorded" [ 1 ] aborts;
      Alcotest.(check int64)
        "machine-wide abort counter" 1L
        (Sim.Stats.Counter.get
           (Kernel.Machine.counter machine "pushdown_aborts"));
      (* the completion path is not wedged and holds no buffers: a
         fresh walk, a sync and a reread all still work *)
      let v = ok (Kernel.Os.pushdown_walk os ~prog:"fed" ~root ~key) in
      Alcotest.(check int64) "post-abort walk correct" key
        (Bytes.get_int64_le v 0);
      ok (Kernel.Os.sync os))

(* ------------------------------------------------------------------ *)
(* Crossing accounting: resubmitted reads are NOT caller crossings.    *)

let crossings = Workloads.Pushdown_bench.crossings

let check_walk_crossings machine os =
  let ix = build os ~nkeys:8 ~seed:9 in
  register_walk machine ~name:"wlk";
  let key = ix.Workloads.Pushdown_bench.ix_keys.(0) in
  (* warm every block so the plain chase is pure crossings *)
  ignore
    (Workloads.Pushdown_bench.plain_lookup os ix ~fanout_bits ~depth key);
  let c0 = crossings machine in
  let v1 = Workloads.Pushdown_bench.plain_lookup os ix ~fanout_bits ~depth key in
  let c1 = crossings machine in
  Alcotest.(check int64)
    "plain chase costs depth+1 crossings"
    (Int64.of_int (depth + 1))
    (Int64.sub c1 c0);
  let r0 = Sim.Stats.Counter.get
      (Kernel.Machine.counter machine "pushdown_resubmits") in
  let v2 =
    ok
      (Kernel.Os.pushdown_walk os ~prog:"wlk"
         ~root:ix.Workloads.Pushdown_bench.ix_root_dev ~key)
  in
  let c2 = crossings machine in
  Alcotest.(check int64) "pushdown walk costs exactly 1 crossing" 1L
    (Int64.sub c2 c1);
  Alcotest.(check int64)
    "follow-on reads counted as resubmits"
    (Int64.of_int depth)
    (Int64.sub
       (Sim.Stats.Counter.get
          (Kernel.Machine.counter machine "pushdown_resubmits"))
       r0);
  Alcotest.(check bytes) "same value both ways" v1 v2;
  ok (Kernel.Os.close os ix.Workloads.Pushdown_bench.ix_fd)

let test_crossings_bento () =
  with_xv6 (fun machine os _vfs _h -> check_walk_crossings machine os)

let test_crossings_fuse () =
  with_fuse (fun machine os -> check_walk_crossings machine os)

(* ------------------------------------------------------------------ *)
(* Seeded equivalence: pushdown ≡ the plain multi-call path.           *)

let row ((d : Kernel.Vfs.dirent), (st : Kernel.Vfs.stat)) =
  (d.d_name, d.d_ino, st.st_ino, st.st_size)

let check_filter_equivalence machine os seed =
      let rng = Sim.Rng.create seed in
      ok (Kernel.Os.mkdir os "/d");
      let pat = "log" in
      for i = 0 to 39 do
        let name =
          if Sim.Rng.int rng 3 = 0 then Printf.sprintf "a%d-log-%d" i seed
          else Printf.sprintf "a%d-%d" i seed
        in
        let fd =
          ok (Kernel.Os.open_ os ("/d/" ^ name) Kernel.Os.(creat wronly))
        in
        ok (Kernel.Os.pwrite os fd ~pos:0 (payload ~seed:i (1 + Sim.Rng.int rng 4096)))
        |> ignore;
        ok (Kernel.Os.close os fd)
      done;
      let r = reg machine in
      let cap = Kernel.Pushdown.grant r ~client:"t" in
      Result.get_ok
        (Kernel.Pushdown.register r ~cap ~name:"flt"
           (Kernel.Pushdown.Dir_filter { contains = pat }));
      let plain =
        ok (Kernel.Os.readdir os "/d")
        |> List.filter_map (fun (d : Kernel.Vfs.dirent) ->
               if Kernel.Pushdown.matches d.d_name ~contains:pat then
                 Some (row (d, ok (Kernel.Os.stat os ("/d/" ^ d.d_name))))
               else None)
        |> List.sort compare
      in
      let pushed =
        ok (Kernel.Os.readdir_filtered os "/d" ~prog:"flt")
        |> List.map row |> List.sort compare
      in
      Alcotest.(check bool) "some entries survive" true (plain <> []);
      Alcotest.(check int)
        "same number of rows" (List.length plain) (List.length pushed);
      List.iter2
        (fun (n1, i1, si1, sz1) (n2, i2, si2, sz2) ->
          Alcotest.(check string) "name" n1 n2;
          Alcotest.(check int) "dirent ino" i1 i2;
          Alcotest.(check int) "stat ino" si1 si2;
          Alcotest.(check int) "size" sz1 sz2)
        plain pushed

let test_filter_equiv_bento () =
  with_seed (fun seed ->
      with_xv6 (fun machine os _vfs _h ->
          check_filter_equivalence machine os seed))

let test_filter_equiv_fuse () =
  with_seed (fun seed ->
      with_fuse (fun machine os -> check_filter_equivalence machine os seed))

let check_walk_equivalence seed =
  with_xv6 (fun machine os _vfs _h ->
      let rng = Sim.Rng.create seed in
          let nkeys = 8 + Sim.Rng.int rng 24 in
          let ix = build os ~nkeys ~seed in
          register_walk machine ~name:"wlk";
          let r = reg machine in
          let cap = Kernel.Pushdown.grant r ~client:"t" in
          Result.get_ok
            (Kernel.Pushdown.register r ~cap ~name:"kv"
               (Kernel.Pushdown.Kv_get
                  {
                    fanout_bits;
                    depth;
                    root = ix.Workloads.Pushdown_bench.ix_root_dev;
                  }));
          let root = ix.Workloads.Pushdown_bench.ix_root_dev in
          let present = Hashtbl.create 64 in
          Array.iter
            (fun k -> Hashtbl.replace present k ())
            ix.Workloads.Pushdown_bench.ix_keys;
          (* every stored key: walk = plain chase = bound-root get *)
          Array.iter
            (fun key ->
              let plain =
                Workloads.Pushdown_bench.plain_lookup os ix ~fanout_bits
                  ~depth key
              in
              let walked =
                ok (Kernel.Os.pushdown_walk os ~prog:"wlk" ~root ~key)
              in
              let got = ok (Kernel.Os.pushdown_get os ~prog:"kv" ~key) in
              Alcotest.(check bytes) "walk = plain" plain walked;
              Alcotest.(check bytes) "get = plain" plain got)
            ix.Workloads.Pushdown_bench.ix_keys;
          (* random probes: both paths agree on hits AND holes *)
          let keyspace = 1 lsl (fanout_bits * depth) in
          for _ = 1 to 64 do
            let key = Int64.of_int (Sim.Rng.int rng keyspace) in
            if Hashtbl.mem present key then
              Alcotest.(check bytes)
                "hit agrees"
                (Workloads.Pushdown_bench.plain_lookup os ix ~fanout_bits
                   ~depth key)
                (ok (Kernel.Os.pushdown_walk os ~prog:"wlk" ~root ~key))
            else begin
              check_res "hole is ENOENT (walk)" Kernel.Errno.ENOENT
                (Kernel.Os.pushdown_walk os ~prog:"wlk" ~root ~key);
              check_res "hole is ENOENT (get)" Kernel.Errno.ENOENT
                (Kernel.Os.pushdown_get os ~prog:"kv" ~key)
            end
          done;
          ok (Kernel.Os.close os ix.Workloads.Pushdown_bench.ix_fd))

let test_walk_equivalence () = with_seed check_walk_equivalence

(* The qcheck form of the same properties: fresh machines over generated
   seeds, shrinking to the smallest failing seed. The Alcotest versions
   above keep the BENTO_SEED reproduction knob. *)
let prop_equivalence =
  QCheck.Test.make ~count:6 ~name:"pushdown ≡ plain over random trees/keys"
    QCheck.(make Gen.(int_range 0 99_999))
    (fun seed ->
      with_xv6 (fun machine os _vfs _h ->
          check_filter_equivalence machine os seed);
      check_walk_equivalence seed;
      true)

let suite =
  [
    Alcotest.test_case "capability gate" `Quick test_capability;
    Alcotest.test_case "program validation" `Quick test_validation;
    Alcotest.test_case "unregistered / wrong kind" `Quick
      test_unregistered_and_wrong_kind;
    Alcotest.test_case "budget abort leaves fiber healthy" `Quick
      test_budget_abort;
    Alcotest.test_case "walk crossings (bento)" `Quick test_crossings_bento;
    Alcotest.test_case "walk crossings (fuse)" `Quick test_crossings_fuse;
    Alcotest.test_case "filter equivalence (bento)" `Quick
      test_filter_equiv_bento;
    Alcotest.test_case "filter equivalence (fuse)" `Quick
      test_filter_equiv_fuse;
    Alcotest.test_case "walk/get equivalence" `Quick test_walk_equivalence;
    QCheck_alcotest.to_alcotest prop_equivalence;
  ]
