(** Round-trip property tests of the FUSE wire protocol. *)

let tc = Alcotest.test_case

let gen_name =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 59) (char_range 'a' 'z')))

let gen_ino = QCheck.Gen.int_range 1 1_000_000
let gen_off = QCheck.Gen.int_range 0 (1 lsl 30)

let gen_request : Fusesim.Proto.request QCheck.Gen.t =
  let open QCheck.Gen in
  let open Fusesim.Proto in
  oneof
    [
      map2 (fun dir name -> Lookup { dir; name }) gen_ino gen_name;
      map (fun ino -> Getattr { ino }) gen_ino;
      map2 (fun dir name -> Create { dir; name }) gen_ino gen_name;
      map2 (fun dir name -> Mkdir { dir; name }) gen_ino gen_name;
      map2 (fun dir name -> Unlink { dir; name }) gen_ino gen_name;
      map2 (fun dir name -> Rmdir { dir; name }) gen_ino gen_name;
      map
        (fun (((olddir, oldname), newdir), newname) ->
          Rename { olddir; oldname; newdir; newname })
        (pair (pair (pair gen_ino gen_name) gen_ino) gen_name);
      map
        (fun ((ino, dir), name) -> Link { ino; dir; name })
        (pair (pair gen_ino gen_ino) gen_name);
      map
        (fun ((ino, off), len) -> Read { ino; off; len })
        (pair (pair gen_ino gen_off) (int_range 0 (1 lsl 20)));
      map
        (fun ((ino, off), data) ->
          Write { ino; off; data = Bytes.of_string data })
        (pair (pair gen_ino gen_off) (string_size (int_range 0 4096)));
      map2 (fun ino size -> Truncate { ino; size }) gen_ino gen_off;
      map (fun ino -> Fsync { ino }) gen_ino;
      return Syncfs;
      map (fun ino -> Readdir { ino }) gen_ino;
      map (fun ino -> Open { ino }) gen_ino;
      map (fun ino -> Release { ino }) gen_ino;
      return Statfs;
      return Destroy;
      map2 (fun dir prog -> ReaddirFilter { dir; prog }) gen_ino gen_name;
      map2 (fun ino fbn -> Bmap { ino; fbn }) gen_ino gen_off;
    ]

let request_eq (a : Fusesim.Proto.request) (b : Fusesim.Proto.request) =
  match (a, b) with
  | Fusesim.Proto.Write w1, Fusesim.Proto.Write w2 ->
      w1.ino = w2.ino && w1.off = w2.off && Bytes.equal w1.data w2.data
  | _ -> a = b

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode roundtrip"
    (QCheck.make gen_request)
    (fun req ->
      let unique = 42 in
      let u, req' =
        Fusesim.Proto.decode_request (Fusesim.Proto.encode_request ~unique req)
      in
      u = unique && request_eq req req')

let gen_attr =
  QCheck.Gen.(
    map
      (fun (((ino, kind), size), nlink) ->
        { Fusesim.Proto.ino; kind; size; nlink })
      (pair (pair (pair gen_ino (int_range 0 2)) gen_off) (int_range 0 100)))

let gen_reply : Fusesim.Proto.reply QCheck.Gen.t =
  let open QCheck.Gen in
  let open Fusesim.Proto in
  oneof
    [
      map
        (fun e -> R_err e)
        (oneofl
           [ Kernel.Errno.ENOENT; Kernel.Errno.EIO; Kernel.Errno.ENOSPC ]);
      return R_none;
      map (fun a -> R_attr a) gen_attr;
      map (fun s -> R_data (Bytes.of_string s)) (string_size (int_range 0 4096));
      map (fun n -> R_written n) (int_range 0 (1 lsl 20));
      map
        (fun des -> R_dirents des)
        (list_size (int_range 0 20)
           (map2 (fun name (ino, kind) -> (name, ino, kind)) gen_name
              (pair gen_ino (int_range 0 2))));
      map
        (fun (((blocks, bfree), files), ffree) ->
          R_statfs { blocks; bfree; files; ffree })
        (pair (pair (pair gen_off gen_off) gen_off) gen_off);
      map
        (fun des -> R_dirents_plus des)
        (list_size (int_range 0 20) (pair gen_name gen_attr));
      map (fun blk -> R_block blk) gen_off;
    ]

let reply_eq (a : Fusesim.Proto.reply) (b : Fusesim.Proto.reply) =
  match (a, b) with
  | Fusesim.Proto.R_data d1, Fusesim.Proto.R_data d2 -> Bytes.equal d1 d2
  | _ -> a = b

let prop_reply_roundtrip =
  QCheck.Test.make ~count:500 ~name:"reply encode/decode roundtrip"
    (QCheck.make gen_reply)
    (fun rep ->
      let unique = 7 in
      let u, rep' =
        Fusesim.Proto.decode_reply (Fusesim.Proto.encode_reply ~unique rep)
      in
      u = unique && reply_eq rep rep')

let test_malformed () =
  (match Fusesim.Proto.decode_request (Bytes.make 1 '\255') with
  | exception Fusesim.Proto.Malformed _ -> ()
  | _ -> Alcotest.fail "short message accepted");
  match Fusesim.Proto.decode_request (Bytes.make 32 '\255') with
  | exception Fusesim.Proto.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage opcode accepted"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_reply_roundtrip;
    tc "malformed messages rejected" `Quick test_malformed;
  ]
