(** The observability battery: causal request DAGs reconstructed from
    spans + flow events (a qcheck property over random server fleets and a
    directed local-syscall check), flight-recorder triggered dumps (slow
    op, error return) carrying the offending reqid, debug-mode unbalanced
    span detection, and the machine inspector registry. *)

let tc = Alcotest.test_case
let ok = Kernel.Errno.ok_exn

let ok_r = function
  | Ok v -> v
  | Error e -> Alcotest.failf "server op failed: %s" (Kernel.Errno.to_string e)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Causal DAG reconstruction                                            *)

(* Drive a random mix of client ops against a traced server; return the
   tracer's events after the fleet drains. *)
let traced_server_run ~seed ~nclients ~ops_per_client =
  let events = ref [] in
  Helpers.with_xv6 (fun machine os _vfs _handle ->
      Sim.Trace.set_capacity (Kernel.Machine.tracer machine) (1 lsl 18);
      Sim.Trace.set_enabled (Kernel.Machine.tracer machine) true;
      let sv =
        Server.Fileserver.start machine os
          {
            Server.Fileserver.tenants =
              [
                ("gold", Server.Qos.default_class);
                ("bronze", Server.Qos.default_class);
              ];
            max_inflight_total = 16;
          }
      in
      let done_ = Sim.Sync.Semaphore.create 0 in
      for c = 0 to nclients - 1 do
        Kernel.Machine.spawn ~name:(Printf.sprintf "client-%d" c) machine
          (fun () ->
            let tenant = if c mod 2 = 0 then "gold" else "bronze" in
            let cl =
              ok_r
                (Server.Client.attach machine
                   (Server.Fileserver.listener sv)
                   ~tenant)
            in
            let root = (Server.Client.root cl).Server.Proto.ino in
            let rng = Sim.Rng.create (seed + (1000 * c)) in
            for i = 0 to ops_per_client - 1 do
              let name = Printf.sprintf "c%d-f%d" c i in
              let a =
                ok_r (Server.Client.create cl ~dir:root ~name ~write:true)
              in
              let ino = a.Server.Proto.ino in
              ignore
                (ok_r
                   (Server.Client.write cl ino ~off:0
                      (Bytes.make (512 + Sim.Rng.int rng 8192) 'o')));
              ok_r (Server.Client.commit cl ino);
              (match Server.Client.read cl ino ~off:0 ~len:512 with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "read failed: %s" (Kernel.Errno.to_string e));
              ok_r (Server.Client.close_ cl ino);
              if Sim.Rng.bool rng then
                ok_r (Server.Client.unlink cl ~dir:root ~name)
            done;
            Server.Client.detach cl;
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 1 to nclients do
        Sim.Sync.Semaphore.acquire done_
      done;
      Server.Fileserver.stop sv;
      events := Sim.Trace.events (Kernel.Machine.tracer machine));
  !events

let check_all_connected ~what events =
  let reqs = Sim.Trace.Causal.requests events in
  Alcotest.(check bool)
    (what ^ ": some requests were traced")
    true (reqs <> []);
  List.iter
    (fun (r : Sim.Trace.Causal.request) ->
      if not r.connected then
        Alcotest.failf "%s: req %Ld split into components (%d fibers, %d spans, %d flow edges)"
          what r.req (List.length r.fibers) r.spans r.flow_edges;
      if r.orphan_finishes > 0 then
        Alcotest.failf "%s: req %Ld has %d orphan flow completions" what r.req
          r.orphan_finishes)
    reqs;
  Alcotest.(check (float 0.0))
    (what ^ ": connected ratio")
    1.0
    (Sim.Trace.Causal.connected_ratio events)

(* The qcheck property: whatever the fleet shape, every request observed in
   the trace reconstructs as ONE connected DAG — a request id never leaks
   across a hop without a flow edge stitching it. *)
let test_causal_property =
  QCheck.Test.make ~name:"every traced request is one connected DAG"
    ~count:8
    QCheck.(triple (int_range 1 3) (int_range 1 4) small_nat)
    (fun (nclients, ops_per_client, salt) ->
      let events =
        traced_server_run ~seed:(41 + salt) ~nclients ~ops_per_client
      in
      let reqs = Sim.Trace.Causal.requests events in
      reqs <> []
      && List.for_all
           (fun (r : Sim.Trace.Causal.request) ->
             r.connected && r.orphan_finishes = 0)
           reqs)

(* Directed: local mounts mint one request per syscall; cross-fiber device
   completions must still fold into the issuing request's DAG. *)
let test_causal_local () =
  Helpers.with_xv6 (fun machine os _vfs _handle ->
      Sim.Trace.set_enabled (Kernel.Machine.tracer machine) true;
      ok (Kernel.Os.mkdir os "/d");
      for i = 0 to 9 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/d/f%d" i)
             (Bytes.make 20000 'z'))
      done;
      ok (Kernel.Os.sync os);
      for i = 0 to 9 do
        ignore (ok (Kernel.Os.read_file os (Printf.sprintf "/d/f%d" i)))
      done;
      check_all_connected ~what:"local syscalls"
        (Sim.Trace.events (Kernel.Machine.tracer machine)))

(* Server runs must yield multi-fiber DAGs: the dispatch hop from session
   fiber to handler fiber is part of the request. *)
let test_causal_server_multifiber () =
  let events = traced_server_run ~seed:7 ~nclients:2 ~ops_per_client:3 in
  check_all_connected ~what:"server fleet" events;
  let reqs = Sim.Trace.Causal.requests events in
  Alcotest.(check bool)
    "some requests span multiple fibers" true
    (List.exists
       (fun (r : Sim.Trace.Causal.request) -> List.length r.fibers > 1)
       reqs)

(* ------------------------------------------------------------------ *)
(* Flight-recorder triggers                                             *)

let test_slow_op_trigger () =
  Helpers.with_xv6 (fun machine os _vfs _handle ->
      Sim.Trace.set_enabled (Kernel.Machine.tracer machine) true;
      let fl = Kernel.Machine.flight machine in
      let dumps0 = Sim.Flight.dump_count fl in
      Kernel.Os.set_slow_threshold os (Some 1_000L);
      (* a 64KB write is far over 1 us of virtual time *)
      ok (Kernel.Os.write_file os "/slow" (Bytes.make 65536 's'));
      Kernel.Os.set_slow_threshold os None;
      Alcotest.(check bool)
        "slow syscall produced a dump" true
        (Sim.Flight.dump_count fl > dumps0);
      match Sim.Flight.last_dump fl with
      | None -> Alcotest.fail "no dump content"
      | Some (reason, content) ->
          Alcotest.(check bool)
            "reason names the slow syscall" true
            (contains ~sub:"slow syscall" reason);
          (* the dump must carry the offending request's id and trace *)
          let reqid =
            List.find_map
              (fun line ->
                if String.length line > 7 && String.sub line 0 7 = "reqid: "
                then
                  Int64.of_string_opt
                    (String.trim (String.sub line 7 (String.length line - 7)))
                else None)
              (String.split_on_char '\n' content)
          in
          (match reqid with
          | None -> Alcotest.fail "dump has no reqid line"
          | Some r ->
              Alcotest.(check bool) "offending reqid is nonzero" true (r <> 0L);
              Alcotest.(check bool)
                "dump renders the request's causal trace" true
                (contains
                   ~sub:(Printf.sprintf "causal trace for req %Ld" r)
                   content)))

let test_error_trigger () =
  Helpers.with_xv6 (fun machine os _vfs _handle ->
      let fl = Kernel.Machine.flight machine in
      let dumps0 = Sim.Flight.dump_count fl in
      (* errno returns are ring-noted but do not dump by default *)
      (match Kernel.Os.stat os "/missing" with
      | Ok _ -> Alcotest.fail "stat of missing path succeeded"
      | Error _ -> ());
      Alcotest.(check int)
        "no dump without opt-in" dumps0 (Sim.Flight.dump_count fl);
      Kernel.Os.set_trigger_errors os true;
      (match Kernel.Os.stat os "/missing" with
      | Ok _ -> Alcotest.fail "stat of missing path succeeded"
      | Error _ -> ());
      Kernel.Os.set_trigger_errors os false;
      Alcotest.(check bool)
        "error return dumped once opted in" true
        (Sim.Flight.dump_count fl > dumps0))

let test_ring_wraps () =
  Helpers.in_sim (fun machine ->
      let fl = Kernel.Machine.flight machine in
      Sim.Flight.clear fl;
      for i = 0 to 9999 do
        Sim.Flight.note fl ~kind:"spam" (string_of_int i)
      done;
      let entries = Sim.Flight.entries fl in
      Alcotest.(check bool)
        "ring is bounded" true
        (List.length entries < 10_000);
      Alcotest.(check int) "all records counted" 10_000 (Sim.Flight.recorded fl);
      (* oldest-first merge across per-CPU rings *)
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            Int64.compare a.Sim.Flight.e_ts b.Sim.Flight.e_ts <= 0
            && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "entries time-ordered" true (sorted entries))

(* ------------------------------------------------------------------ *)
(* Debug-mode span balance checking                                     *)

let test_unbalanced_span_at_exit () =
  let engine = Sim.Engine.create () in
  let tr = Sim.Trace.create engine in
  Sim.Trace.set_enabled tr true;
  Sim.Trace.set_debug tr true;
  ignore
    (Sim.Engine.spawn engine ~name:"leaky" (fun () ->
         Sim.Trace.span_begin tr "never-closed"));
  let msg =
    try
      Sim.Engine.run engine;
      None
    with Sim.Trace.Unbalanced_span m -> Some m
  in
  match msg with
  | None -> Alcotest.fail "open span at fiber exit did not raise"
  | Some m ->
      Alcotest.(check bool)
        "message names the leaked span" true
        (contains ~sub:"never-closed" m)

let test_mismatched_span_end () =
  let engine = Sim.Engine.create () in
  let tr = Sim.Trace.create engine in
  Sim.Trace.set_enabled tr true;
  Sim.Trace.set_debug tr true;
  let raised = ref false in
  ignore
    (Sim.Engine.spawn engine ~name:"crossed" (fun () ->
         Sim.Trace.span_begin tr "outer";
         (try Sim.Trace.span_end tr "inner"
          with Sim.Trace.Unbalanced_span _ -> raised := true);
         Sim.Trace.span_end tr "outer"));
  Sim.Engine.run engine;
  Alcotest.(check bool) "mismatched span_end raises" true !raised

let test_balanced_spans_pass () =
  let engine = Sim.Engine.create () in
  let tr = Sim.Trace.create engine in
  Sim.Trace.set_enabled tr true;
  Sim.Trace.set_debug tr true;
  ignore
    (Sim.Engine.spawn engine ~name:"clean" (fun () ->
         Sim.Trace.with_span tr "a" (fun () ->
             Sim.Trace.with_span tr "b" (fun () -> Sim.Engine.sleep 10L))));
  Sim.Engine.run engine (* must not raise *)

(* ------------------------------------------------------------------ *)
(* Inspector registry                                                   *)

let test_inspectors () =
  Helpers.with_xv6 (fun machine os _vfs _handle ->
      ok (Kernel.Os.write_file os "/f" (Bytes.make 4096 'q'));
      let json = Kernel.Machine.inspect machine in
      match json with
      | Util.Json.Obj fields ->
          List.iter
            (fun name ->
              Alcotest.(check bool)
                (name ^ " inspector registered")
                true (List.mem_assoc name fields))
            [ "vfs"; "bcache"; "cas"; "log" ];
          (* name-sorted, deterministic *)
          let names = List.map fst fields in
          Alcotest.(check (list string))
            "inspectors sorted" (List.sort compare names) names
      | _ -> Alcotest.fail "inspect did not return an object")

let test_inspector_error_isolated () =
  Helpers.in_sim (fun machine ->
      Kernel.Machine.register_inspector machine ~name:"boom" (fun () ->
          failwith "probe exploded");
      match Kernel.Machine.inspect machine with
      | Util.Json.Obj fields -> (
          match List.assoc_opt "boom" fields with
          | Some (Util.Json.Obj [ ("error", Util.Json.String _) ]) -> ()
          | _ -> Alcotest.fail "raising probe not isolated as error object")
      | _ -> Alcotest.fail "inspect did not return an object")

let suite =
  [
    QCheck_alcotest.to_alcotest test_causal_property;
    tc "causal: local syscalls connected" `Quick test_causal_local;
    tc "causal: server requests cross fibers" `Quick
      test_causal_server_multifiber;
    tc "flight: slow op dumps offending req" `Quick test_slow_op_trigger;
    tc "flight: error return dump is opt-in" `Quick test_error_trigger;
    tc "flight: ring bounded and ordered" `Quick test_ring_wraps;
    tc "trace debug: open span at exit" `Quick test_unbalanced_span_at_exit;
    tc "trace debug: mismatched end" `Quick test_mismatched_span_end;
    tc "trace debug: balanced spans pass" `Quick test_balanced_spans_pass;
    tc "inspect: registry covers subsystems" `Quick test_inspectors;
    tc "inspect: raising probe isolated" `Quick test_inspector_error_isolated;
  ]
