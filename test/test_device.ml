(** Tests of the NVMe device model: timing, durability, crash semantics. *)

let tc = Alcotest.test_case

let with_dev ?config f =
  let e = Sim.Engine.create () in
  let d = Device.Ssd.create ?config ~nblocks:4096 ~block_size:4096 e in
  ignore (Sim.Engine.spawn e (fun () -> f e d));
  Sim.Engine.run e

let block c = Bytes.make 4096 c

let test_write_read_roundtrip () =
  with_dev (fun _e d ->
      Device.Ssd.write d 7 (block 'a');
      let got = Device.Ssd.read d 7 in
      Alcotest.(check bytes) "roundtrip" (block 'a') got;
      Alcotest.(check bytes) "unwritten reads zero" (block '\000')
        (Device.Ssd.read d 8))

let test_contig_cheaper_than_scattered () =
  let time_of f =
    let e = Sim.Engine.create () in
    let d = Device.Ssd.create ~nblocks:4096 ~block_size:4096 e in
    ignore (Sim.Engine.spawn e (fun () -> f d));
    Sim.Engine.run e;
    Sim.Engine.now e
  in
  let bufs = Array.init 64 (fun _ -> block 'x') in
  let contig = time_of (fun d -> Device.Ssd.write_contig d ~start:0 bufs) in
  let scattered =
    time_of (fun d -> Array.iteri (fun i b -> Device.Ssd.write d (i * 2) b) bufs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "batched (%Ld) << scattered (%Ld)" contig scattered)
    true
    (Int64.compare (Int64.mul contig 4L) scattered < 0)

let test_flush_durability_and_crash () =
  with_dev (fun _e d ->
      Device.Ssd.write d 1 (block 'd');
      Device.Ssd.flush d;
      Device.Ssd.write d 2 (block 'v');
      Alcotest.(check int) "one dirty block" 1 (Device.Ssd.dirty_blocks d);
      Device.Ssd.crash d;
      Alcotest.(check bytes) "flushed survives" (block 'd') (Device.Ssd.read d 1);
      Alcotest.(check bytes) "unflushed lost" (block '\000') (Device.Ssd.read d 2))

let test_crash_partial_survival () =
  Helpers.with_seed ~default:5 @@ fun seed ->
  with_dev (fun _e d ->
      for i = 0 to 99 do
        Device.Ssd.write d i (block 'p')
      done;
      let rng = Sim.Rng.create seed in
      Device.Ssd.crash ~survive:0.5 ~rng d;
      let survivors = ref 0 in
      for i = 0 to 99 do
        if Bytes.equal (Device.Ssd.read d i) (block 'p') then incr survivors
      done;
      Alcotest.(check bool)
        (Printf.sprintf "some but not all survive (%d)" !survivors)
        true
        (!survivors > 10 && !survivors < 90))

(* Boundary cases of the survival probability: survive:0.0 must behave like a
   hard power cut (only flushed data remains), survive:1.0 like a clean
   shutdown (everything written remains), and in both cases the pre-crash
   [crash_view] must predict exactly what a post-crash read returns for
   survive:0.0. *)
let test_crash_survive_bounds () =
  Helpers.with_seed ~default:17 @@ fun seed ->
  (* survive:0.0 — nothing unflushed persists; crash_view agrees *)
  with_dev (fun _e d ->
      Device.Ssd.write d 0 (block 'F');
      Device.Ssd.write d 1 (block 'F');
      Device.Ssd.flush d;
      for i = 2 to 19 do
        Device.Ssd.write d i (block 'U')
      done;
      let view = Device.Ssd.crash_view d in
      Device.Ssd.crash ~survive:0.0 ~rng:(Sim.Rng.create seed) d;
      for i = 0 to 19 do
        let got = Device.Ssd.read d i in
        let expect = if i < 2 then block 'F' else block '\000' in
        Alcotest.(check bytes) (Printf.sprintf "survive=0 block %d" i) expect got;
        let predicted =
          match view.(i) with Some b -> b | None -> block '\000'
        in
        Alcotest.(check bytes)
          (Printf.sprintf "crash_view predicts block %d" i)
          predicted got
      done);
  (* survive:1.0 — every write persists even without a flush *)
  with_dev (fun _e d ->
      for i = 0 to 19 do
        Device.Ssd.write d i (block 'W')
      done;
      Device.Ssd.crash ~survive:1.0 ~rng:(Sim.Rng.create seed) d;
      for i = 0 to 19 do
        Alcotest.(check bytes)
          (Printf.sprintf "survive=1 block %d" i)
          (block 'W') (Device.Ssd.read d i)
      done)

let test_flush_cost_scales_with_dirty () =
  let flush_time ndirty =
    let e = Sim.Engine.create () in
    let d = Device.Ssd.create ~nblocks:8192 ~block_size:4096 e in
    ignore
      (Sim.Engine.spawn e (fun () ->
           for i = 0 to ndirty - 1 do
             Device.Ssd.write d i (block 'f')
           done;
           let t0 = Sim.Engine.now e in
           Device.Ssd.flush d;
           let dt = Int64.sub (Sim.Engine.now e) t0 in
           if Int64.compare dt 0L <= 0 then failwith "flush took no time";
           (* stash in block 0's first byte? simpler: assert relative below *)
           ignore dt));
    Sim.Engine.run e;
    Sim.Engine.now e
  in
  (* total times include the writes; compare flush-heavy runs *)
  let t_small = flush_time 8 in
  let t_big = flush_time 2048 in
  Alcotest.(check bool) "more dirty data, costlier flush" true
    (Int64.compare t_big t_small > 0)

let test_out_of_range () =
  with_dev (fun _e d ->
      (match Device.Ssd.read d 4096 with
      | exception Device.Ssd.Out_of_range _ -> ()
      | _ -> Alcotest.fail "read out of range accepted");
      match Device.Ssd.write d (-1) (block 'x') with
      | exception Device.Ssd.Out_of_range _ -> ()
      | _ -> Alcotest.fail "write out of range accepted")

let test_failed_device () =
  with_dev (fun _e d ->
      Device.Ssd.fail d;
      match Device.Ssd.read d 0 with
      | exception Device.Ssd.Device_failed -> ()
      | _ -> Alcotest.fail "failed device still serving")

let test_channels_parallelism () =
  (* 8 concurrent reads on 8 channels should take ~1 read time, not 8 *)
  let e = Sim.Engine.create () in
  let d = Device.Ssd.create ~nblocks:4096 ~block_size:4096 e in
  for i = 0 to 7 do
    ignore (Sim.Engine.spawn e (fun () -> ignore (Device.Ssd.read d i)))
  done;
  Sim.Engine.run e;
  let one = Int64.add (Device.Ssd.default_config.Device.Ssd.read_base) 2_000L in
  Alcotest.(check bool)
    (Printf.sprintf "parallel reads: %Ldns" (Sim.Engine.now e))
    true
    (Int64.compare (Sim.Engine.now e) one < 0)

let test_drain_overflow_fifo () =
  (* A tiny volatile cache forces the drain path: victims must become
     durable in FIFO *insertion* order, and rewriting a cached block must
     keep its original queue position (not refresh it). *)
  let config = { Device.Ssd.default_config with cache_blocks = 4 } in
  with_dev ~config (fun _e d ->
      Device.Ssd.write d 10 (block 'a');
      Device.Ssd.write d 20 (block 'b');
      Device.Ssd.write d 30 (block 'c');
      Device.Ssd.write d 40 (block 'd');
      (* rewrite the oldest entry; it stays at the head of the queue *)
      Device.Ssd.write d 10 (block 'A');
      Alcotest.(check int) "cache at capacity" 4 (Device.Ssd.dirty_blocks d);
      let stable blk =
        match (Device.Ssd.crash_view d).(blk) with
        | Some data -> Some (Bytes.get data 0)
        | None -> None
      in
      Alcotest.(check (option char)) "nothing durable yet" None (stable 10);
      (* one more block overflows by one: the oldest insertion drains *)
      Device.Ssd.write d 50 (block 'e');
      Alcotest.(check int) "still at capacity" 4 (Device.Ssd.dirty_blocks d);
      Alcotest.(check (option char)) "oldest drained, rewritten payload"
        (Some 'A') (stable 10);
      Alcotest.(check (option char)) "second-oldest still volatile" None
        (stable 20);
      (* two more: 20 then 30 drain, in insertion order *)
      Device.Ssd.write d 60 (block 'f');
      Device.Ssd.write d 70 (block 'g');
      Alcotest.(check (option char)) "then the second" (Some 'b') (stable 20);
      Alcotest.(check (option char)) "then the third" (Some 'c') (stable 30);
      Alcotest.(check (option char)) "newer stays volatile" None (stable 40);
      (* a crash keeps exactly the drained prefix *)
      Device.Ssd.crash d;
      Alcotest.(check bytes) "drained survives" (block 'A')
        (Device.Ssd.read d 10);
      Alcotest.(check bytes) "undrained lost" (block '\000')
        (Device.Ssd.read d 40))

let suite =
  [
    tc "write/read roundtrip" `Quick test_write_read_roundtrip;
    tc "overflow drain is FIFO" `Quick test_drain_overflow_fifo;
    tc "contiguous command batching" `Quick test_contig_cheaper_than_scattered;
    tc "flush durability + crash" `Quick test_flush_durability_and_crash;
    tc "partial survival crash" `Quick test_crash_partial_survival;
    tc "crash survive bounds + crash_view" `Quick test_crash_survive_bounds;
    tc "flush cost scales" `Quick test_flush_cost_scales_with_dirty;
    tc "out of range" `Quick test_out_of_range;
    tc "failed device" `Quick test_failed_device;
    tc "channel parallelism" `Quick test_channels_parallelism;
  ]
