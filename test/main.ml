let () =
  Alcotest.run "bento"
    [
      ("sim", Test_sim.suite);
      ("stats", Test_stats.suite);
      ("profile", Test_profile.suite);
      ("benchdiff", Test_benchdiff.suite);
      ("trace", Test_trace.suite);
      ("observability", Test_observability.suite);
      ("layout", Test_layout.suite);
      ("device", Test_device.suite);
      ("bio", Test_bio.suite);
      ("bcache", Test_bcache.suite);
      ("bentoks", Test_bentoks.suite);
      ("xv6fs", Test_xv6fs.suite);
      ("os", Test_os.suite);
      ("symlink", Test_symlink.suite);
      ("vfs", Test_vfs.suite);
      ("upgrade", Test_upgrade.suite);
      ("stackfs", Test_stackfs.suite);
      ("fsck", Test_fsck.suite);
      ("workloads", Test_workloads.suite);
      ("policy", Test_policy.suite);
      ("uring", Test_uring.suite);
      ("model", Test_model.suite);
      ("vfs_xv6", Test_vfs_xv6.suite);
      ("fuse", Test_fuse.suite);
      ("proto", Test_proto.suite);
      ("server_proto", Test_server_proto.suite);
      ("server", Test_server.suite);
      ("ext4", Test_ext4.suite);
      ("cas", Test_cas.suite);
      ("pushdown", Test_pushdown.suite);
      ("check", Test_check.suite);
    ]
