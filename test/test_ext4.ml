(** Tests of the ext4 comparator: functionality, journal commit semantics,
    and crash recovery through the JBD2-style journal. *)

open Helpers

let tc = Alcotest.test_case

let with_ext4 ?disk_blocks f =
  in_sim ?disk_blocks (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      f machine os h;
      Ext4sim.Ext4.unmount vfs h)

let read_str os path = Bytes.to_string (ok (Kernel.Os.read_file os path))

let test_basic () =
  with_ext4 (fun _m os _ ->
      ok (Kernel.Os.mkdir os "/d");
      ok (Kernel.Os.write_file os "/d/f" (bytes_of_string "ext4 data"));
      Alcotest.(check string) "read" "ext4 data" (read_str os "/d/f");
      ok (Kernel.Os.rename os "/d/f" "/d/g");
      Alcotest.(check string) "renamed" "ext4 data" (read_str os "/d/g");
      ok (Kernel.Os.link os "/d/g" "/d/h");
      let st = ok (Kernel.Os.stat os "/d/h") in
      Alcotest.(check int) "nlink" 2 st.Kernel.Vfs.st_nlink;
      ok (Kernel.Os.unlink os "/d/g");
      ok (Kernel.Os.unlink os "/d/h");
      ok (Kernel.Os.rmdir os "/d"))

let test_large_file_extents () =
  with_ext4 ~disk_blocks:(64 * 1024) (fun _m os _ ->
      let size = 20 * 1024 * 1024 in
      let data = payload size in
      let fd = ok (Kernel.Os.open_ os "/big" Kernel.Os.(creat wronly)) in
      let n = ok (Kernel.Os.pwrite os fd ~pos:0 data) in
      Alcotest.(check int) "wrote all" size n;
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.close os fd);
      Alcotest.(check bool) "roundtrip" true
        (Bytes.equal data (ok (Kernel.Os.read_file os "/big"))))

let test_unlink_frees () =
  with_ext4 (fun _m os _ ->
      let free0 = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      ok (Kernel.Os.write_file os "/f" (payload (256 * 4096)));
      ok (Kernel.Os.sync os);
      Alcotest.(check bool) "consumed" true
        ((Kernel.Os.statfs os).Kernel.Vfs.f_bfree < free0);
      ok (Kernel.Os.unlink os "/f");
      ok (Kernel.Os.sync os);
      Alcotest.(check int) "returned" free0
        (Kernel.Os.statfs os).Kernel.Vfs.f_bfree)

let test_fsync_crash_recovery () =
  in_sim (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      let fd = ok (Kernel.Os.open_ os "/j" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "journaled")) in
      ok (Kernel.Os.fsync os fd);
      (* crash before any checkpoint: data lives only in the journal *)
      Device.Ssd.crash (Kernel.Machine.disk machine);
      let vfs2, h2 = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check string) "replayed from journal" "journaled"
        (Bytes.to_string (ok (Kernel.Os.read_file os2 "/j")));
      Ext4sim.Ext4.unmount vfs2 h2;
      ignore (vfs, h, os))

let test_unsynced_data_lost_on_crash () =
  in_sim (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/durable" (bytes_of_string "yes"));
      ok (Kernel.Os.sync os);
      (* not synced: committed lazily only *)
      ok (Kernel.Os.write_file os "/volatile" (bytes_of_string "no"));
      Device.Ssd.crash (Kernel.Machine.disk machine);
      let vfs2, h2 = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check string) "synced survives" "yes"
        (Bytes.to_string (ok (Kernel.Os.read_file os2 "/durable")));
      (* the unsynced file may or may not exist, but the fs must be
         consistent: stat must not crash and reads must be well-formed *)
      (match Kernel.Os.stat os2 "/volatile" with
      | Ok _ | Error Kernel.Errno.ENOENT -> ()
      | Error e -> Alcotest.failf "inconsistent fs: %s" (Kernel.Errno.to_string e));
      Ext4sim.Ext4.unmount vfs2 h2;
      ignore (vfs, h, os))

let test_lazy_commit_batches () =
  with_ext4 (fun _m os h ->
      for i = 0 to 99 do
        ok (Kernel.Os.write_file os (Printf.sprintf "/f%d" i) (bytes_of_string "x"))
      done;
      ok (Kernel.Os.sync os);
      let commits, _ = Ext4sim.Ext4.journal_stats h in
      (* 100 creates+writes must batch into very few journal commits —
         the structural advantage over the xv6 log *)
      Alcotest.(check bool)
        (Printf.sprintf "few commits (%d)" commits)
        true (commits <= 5))

let test_many_files_spread () =
  with_ext4 (fun _m os _ ->
      ok (Kernel.Os.mkdir os "/spread");
      for i = 0 to 299 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/spread/f%03d" i)
             (bytes_of_string (string_of_int i)))
      done;
      for i = 0 to 299 do
        Alcotest.(check string)
          (Printf.sprintf "f%03d" i)
          (string_of_int i)
          (read_str os (Printf.sprintf "/spread/f%03d" i))
      done)

(* regression: a partial append into a block straddling EOF must preserve
   the block's earlier contents (this once wiped directory blocks) *)
let test_partial_append_preserves_block () =
  with_ext4 (fun _m os _ ->
      ok (Kernel.Os.mkdir os "/dir");
      for i = 0 to 149 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/dir/f%03d" i)
             (bytes_of_string (string_of_int i)))
      done;
      let entries = ok (Kernel.Os.readdir os "/dir") in
      Alcotest.(check int) "all dirents intact" 152 (List.length entries);
      for i = 0 to 149 do
        ok (Kernel.Os.unlink os (Printf.sprintf "/dir/f%03d" i))
      done;
      ok (Kernel.Os.rmdir os "/dir");
      (* also for file data: two partial appends within one block *)
      let fd = ok (Kernel.Os.open_ os "/appends" Kernel.Os.(creat (appendf wronly))) in
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "first")) in
      ok (Kernel.Os.fsync os fd);
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "+second")) in
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.close os fd);
      Alcotest.(check string) "both appends" "first+second"
        (read_str os "/appends"))

(* a transaction bigger than one descriptor block's target list must span
   multiple descriptors and still recover *)
let test_multi_descriptor_recovery () =
  in_sim ~disk_blocks:(64 * 1024) (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      (* > 1016 blocks in one fsync-committed burst *)
      let data = payload (1500 * 4096) in
      let fd = ok (Kernel.Os.open_ os "/huge" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 data) in
      ok (Kernel.Os.fsync os fd);
      Device.Ssd.crash (Kernel.Machine.disk machine);
      let vfs2, h2 = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check bool) "multi-descriptor tx replayed" true
        (Bytes.equal data (ok (Kernel.Os.read_file os2 "/huge")));
      Ext4sim.Ext4.unmount vfs2 h2;
      ignore (vfs, h, os))

(* torn journal writes (random partial survival) must never corrupt: either
   the transaction replays whole or not at all *)
let ext4_crash_trial seed =
  let result = ref true in
  in_sim ~disk_blocks:32768 (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      let rng = Sim.Rng.create seed in
      let synced = ref [] in
      for step = 0 to 29 do
        let path = Printf.sprintf "/f%d" step in
        let data = payload ~seed:(seed + step) (512 + Sim.Rng.int rng 30000) in
        let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
        ignore (ok (Kernel.Os.pwrite os fd ~pos:0 data));
        if Sim.Rng.bool rng then begin
          ok (Kernel.Os.fsync os fd);
          synced := (path, data) :: !synced
        end;
        ok (Kernel.Os.close os fd)
      done;
      Device.Ssd.crash ~survive:(Sim.Rng.float rng) ~rng
        (Kernel.Machine.disk machine);
      let vfs2, h2 = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os2 = Kernel.Os.create vfs2 in
      List.iter
        (fun (path, data) ->
          match Kernel.Os.read_file os2 path with
          | Ok got when Bytes.equal got data -> ()
          | Ok _ ->
              Printf.eprintf "ext4_crash %d: %s mismatch\n" seed path;
              result := false
          | Error e ->
              Printf.eprintf "ext4_crash %d: %s lost (%s)\n" seed path
                (Kernel.Errno.to_string e);
              result := false)
        !synced;
      Ext4sim.Ext4.unmount vfs2 h2;
      (let r = Ext4sim.Fsck4.check_device (Kernel.Machine.disk machine) in
       if not (Ext4sim.Fsck4.ok r) then begin
         Printf.eprintf "ext4_crash %d: fsck: %s\n" seed
           (String.concat " | " r.Ext4sim.Fsck4.errors);
         result := false
       end);
      ignore (vfs, h, os));
  !result

let prop_ext4_crash =
  QCheck.Test.make ~count:15 ~name:"ext4 random crash: fsynced data survives"
    QCheck.(int_bound 10_000)
    ext4_crash_trial

(* pinned rerun of a single trial (reproduce with BENTO_SEED=n) *)
let test_ext4_crash_pinned () =
  with_seed ~default:1 @@ fun seed ->
  Alcotest.(check bool)
    (Printf.sprintf "ext4 crash trial seed %d" seed)
    true (ext4_crash_trial seed)

(* Running log recovery on an already-recovered image must change nothing
   on disk: jbd2 bounds replay by the journal superblock sequence, so the
   stale transactions still sitting in the log area are skipped the second
   time around. *)
let test_jbd2_recover_idempotent () =
  with_seed ~default:23 @@ fun seed ->
  in_sim ~disk_blocks:32768 (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      let rng = Sim.Rng.create seed in
      for i = 0 to 11 do
        let path = Printf.sprintf "/f%d" i in
        let data = payload ~seed:(seed + i) (512 + Sim.Rng.int rng 20000) in
        let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
        ignore (ok (Kernel.Os.pwrite os fd ~pos:0 data));
        if i mod 3 = 0 then ok (Kernel.Os.fsync os fd);
        ok (Kernel.Os.close os fd)
      done;
      (* power failure leaves committed-but-unckeckpointed transactions in
         the journal; do NOT remount (that would recover for us) *)
      let dev = Kernel.Machine.disk machine in
      Device.Ssd.crash ~survive:0.5 ~rng dev;
      let sb =
        match Ext4sim.Layout4.get_superblock (Device.Ssd.Offline.read dev 1) with
        | Ok sb -> sb
        | Error e -> Alcotest.fail e
      in
      let snapshot () =
        Array.init (Device.Ssd.nblocks dev) (fun i ->
            Device.Ssd.Offline.stable_read dev i)
      in
      let recover_once () =
        let bc = Kernel.Bcache.create machine in
        let j =
          Ext4sim.Jbd2.create machine bc
            ~jstart:sb.Ext4sim.Layout4.journal_start
            ~jlen:sb.Ext4sim.Layout4.journal_len
        in
        Ext4sim.Jbd2.recover j;
        Kernel.Bcache.flush bc
      in
      recover_once ();
      let once = snapshot () in
      recover_once ();
      let twice = snapshot () in
      Array.iteri
        (fun i a ->
          if not (Bytes.equal a twice.(i)) then
            Alcotest.failf "block %d differs after second recover" i)
        once;
      ignore (vfs, h, os))

let fsck4_clean machine label =
  let r = Ext4sim.Fsck4.check_device (Kernel.Machine.disk machine) in
  if not (Ext4sim.Fsck4.ok r) then
    Alcotest.failf "%s: fsck.ext4: %s" label
      (String.concat " | " r.Ext4sim.Fsck4.errors)

let test_fsck4_populated () =
  in_sim (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/a");
      for i = 0 to 20 do
        ok (Kernel.Os.write_file os (Printf.sprintf "/a/f%d" i) (payload (4096 * (1 + i))))
      done;
      ok (Kernel.Os.link os "/a/f0" "/a/hard");
      ok (Kernel.Os.symlink os "/a/f1" "/a/soft");
      ok (Kernel.Os.unlink os "/a/f2");
      let fd = ok (Kernel.Os.open_ os "/a/f3" Kernel.Os.rdwr) in
      ok (Kernel.Os.ftruncate os fd 1000);
      ok (Kernel.Os.close os fd);
      Ext4sim.Ext4.unmount vfs h;
      fsck4_clean machine "populated ext4";
      let r = Ext4sim.Fsck4.check_device (Kernel.Machine.disk machine) in
      Alcotest.(check int) "files" 20 r.Ext4sim.Fsck4.files;
      Alcotest.(check int) "dirs" 2 r.Ext4sim.Fsck4.directories;
      Alcotest.(check int) "symlinks" 1 r.Ext4sim.Fsck4.symlinks)

let test_fsck4_after_crash_recovery () =
  with_seed ~default:31 @@ fun seed ->
  in_sim (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      for i = 0 to 15 do
        let fd = ok (Kernel.Os.open_ os (Printf.sprintf "/f%d" i) Kernel.Os.(creat wronly)) in
        ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (payload (8192 + (i * 512)))));
        if i mod 2 = 0 then ok (Kernel.Os.fsync os fd);
        ok (Kernel.Os.close os fd)
      done;
      let rng = Sim.Rng.create seed in
      Device.Ssd.crash ~survive:0.4 ~rng (Kernel.Machine.disk machine);
      (* mount runs journal recovery; unmount checkpoints *)
      let vfs2, h2 = ok (Ext4sim.Ext4.mount ~background:false machine) in
      Ext4sim.Ext4.unmount vfs2 h2;
      fsck4_clean machine "ext4 after crash+recovery";
      ignore (vfs, h, os))

let test_persistence_across_remount () =
  in_sim (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/p" (payload 65536));
      let expect = ok (Kernel.Os.read_file os "/p") in
      Ext4sim.Ext4.unmount vfs h;
      let vfs2, h2 = ok (Ext4sim.Ext4.mount ~background:false machine) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check bool) "same content" true
        (Bytes.equal expect (ok (Kernel.Os.read_file os2 "/p")));
      Ext4sim.Ext4.unmount vfs2 h2)

let suite =
  [
    tc "basic ops" `Quick test_basic;
    tc "large file via extents" `Quick test_large_file_extents;
    tc "unlink frees blocks" `Quick test_unlink_frees;
    tc "fsync + crash recovery" `Quick test_fsync_crash_recovery;
    tc "crash consistency without sync" `Quick test_unsynced_data_lost_on_crash;
    tc "lazy group commit batches" `Quick test_lazy_commit_batches;
    tc "many files" `Quick test_many_files_spread;
    tc "partial append preserves block" `Quick test_partial_append_preserves_block;
    tc "multi-descriptor recovery" `Quick test_multi_descriptor_recovery;
    tc "crash trial (BENTO_SEED pinned)" `Quick test_ext4_crash_pinned;
    tc "jbd2 recover idempotent" `Quick test_jbd2_recover_idempotent;
    QCheck_alcotest.to_alcotest prop_ext4_crash;
    tc "fsck.ext4 populated" `Quick test_fsck4_populated;
    tc "fsck.ext4 after crash" `Quick test_fsck4_after_crash_recovery;
    tc "persistence across remount" `Quick test_persistence_across_remount;
  ]
