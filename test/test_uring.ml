(** Tests of the io_uring-style async I/O interface (§8.1). *)

open Helpers

let tc = Alcotest.test_case

let test_batch_roundtrip () =
  with_xv6 (fun _m os _ _ ->
      let ring = Kernel.Uring.create os in
      let fd = ok (Kernel.Os.open_ os "/u" Kernel.Os.(creat rdwr)) in
      (* batch of writes at distinct offsets *)
      let writes =
        List.init 8 (fun i ->
            (i, Kernel.Uring.Write { fd; pos = i * 4096; data = payload ~seed:i 4096 }))
      in
      let cs = Kernel.Uring.submit_and_wait ring writes in
      Alcotest.(check int) "all writes completed" 8 (List.length cs);
      List.iter
        (fun c ->
          match c.Kernel.Uring.result with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "write %d: %s" c.Kernel.Uring.user_data
                         (Kernel.Errno.to_string e))
        cs;
      (* batch of reads; user_data correlates results to offsets *)
      let reads =
        List.init 8 (fun i -> (i, Kernel.Uring.Read { fd; pos = i * 4096; len = 4096 }))
      in
      let cs = Kernel.Uring.submit_and_wait ring reads in
      Alcotest.(check int) "all reads completed" 8 (List.length cs);
      List.iter
        (fun c ->
          match c.Kernel.Uring.result with
          | Ok data ->
              Alcotest.(check bool)
                (Printf.sprintf "read %d content" c.Kernel.Uring.user_data)
                true
                (Bytes.equal data (payload ~seed:c.Kernel.Uring.user_data 4096))
          | Error e -> Alcotest.failf "read: %s" (Kernel.Errno.to_string e))
        cs;
      ok (Kernel.Os.close os fd))

let test_errors_reported_per_op () =
  with_xv6 (fun _m os _ _ ->
      let ring = Kernel.Uring.create os in
      let fd = ok (Kernel.Os.open_ os "/e" Kernel.Os.(creat wronly)) in
      let cs =
        Kernel.Uring.submit_and_wait ring
          [
            (1, Kernel.Uring.Write { fd; pos = 0; data = payload 4096 });
            (2, Kernel.Uring.Read { fd; pos = 0; len = 4096 }) (* wronly! *);
            (3, Kernel.Uring.Fsync { fd });
          ]
      in
      let by_ud ud = List.find (fun c -> c.Kernel.Uring.user_data = ud) cs in
      (match (by_ud 1).Kernel.Uring.result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "write failed: %s" (Kernel.Errno.to_string e));
      (match (by_ud 2).Kernel.Uring.result with
      | Error Kernel.Errno.EBADF -> ()
      | _ -> Alcotest.fail "read on wronly fd must fail EBADF");
      (match (by_ud 3).Kernel.Uring.result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "fsync failed: %s" (Kernel.Errno.to_string e));
      ok (Kernel.Os.close os fd))

let test_batching_amortises_crossings () =
  (* N cached reads via the ring in one batch must cost less virtual time
     than N synchronous pread syscalls: one crossing + parallel workers *)
  with_xv6 (fun machine os _ _ ->
      ok (Kernel.Os.write_file os "/warm" (payload (64 * 4096)));
      let fd = ok (Kernel.Os.open_ os "/warm" Kernel.Os.rdonly) in
      let _ = ok (Kernel.Os.pread os fd ~pos:0 ~len:(64 * 4096)) in
      (* synchronous *)
      let t0 = Kernel.Machine.now machine in
      for i = 0 to 63 do
        ignore (ok (Kernel.Os.pread os fd ~pos:(i * 4096) ~len:4096))
      done;
      let sync_cost = Int64.sub (Kernel.Machine.now machine) t0 in
      (* ring *)
      let ring = Kernel.Uring.create os in
      let t1 = Kernel.Machine.now machine in
      let cs =
        Kernel.Uring.submit_and_wait ring
          (List.init 64 (fun i -> (i, Kernel.Uring.Read { fd; pos = i * 4096; len = 4096 })))
      in
      let ring_cost = Int64.sub (Kernel.Machine.now machine) t1 in
      Alcotest.(check int) "completions" 64 (List.length cs);
      Alcotest.(check bool)
        (Printf.sprintf "ring %Ldns < sync %Ldns" ring_cost sync_cost)
        true
        (Int64.compare ring_cost sync_cost < 0);
      ok (Kernel.Os.close os fd))

let test_wait_min_count_above_completions () =
  (* regression: wait with min_count above what can ever complete used to
     sleep forever on the completion condvar once the workers drained
     (cq non-empty, below min_count, nothing in flight); it must return
     the available completions instead *)
  with_xv6 (fun _m os _ _ ->
      let ring = Kernel.Uring.create os in
      let fd = ok (Kernel.Os.open_ os "/minwait" Kernel.Os.(creat rdwr)) in
      Kernel.Uring.submit ring
        [
          (1, Kernel.Uring.Write { fd; pos = 0; data = payload 4096 });
          (2, Kernel.Uring.Write { fd; pos = 4096; data = payload 4096 });
        ];
      let cs = Kernel.Uring.wait ring ~min_count:5 () in
      Alcotest.(check int) "returns the two that completed" 2 (List.length cs);
      Alcotest.(check int) "nothing left in flight" 0
        (Kernel.Uring.in_flight ring);
      (* and on a fully idle ring it returns immediately with nothing *)
      Alcotest.(check int) "idle ring returns empty" 0
        (List.length (Kernel.Uring.wait ring ~min_count:3 ()));
      ok (Kernel.Os.close os fd))

let suite =
  [
    tc "batch roundtrip + correlation" `Quick test_batch_roundtrip;
    tc "wait min_count above completions" `Quick
      test_wait_min_count_above_completions;
    tc "per-op error reporting" `Quick test_errors_reported_per_op;
    tc "batching amortises crossings" `Quick test_batching_amortises_crossings;
  ]
