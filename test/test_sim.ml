(** Tests of the discrete-event engine and synchronisation primitives. *)

let tc = Alcotest.test_case

let test_virtual_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.spawn ~name:"a" e (fun () ->
         Sim.Engine.sleep 100L;
         log := ("a", Sim.Engine.now e) :: !log));
  ignore
    (Sim.Engine.spawn ~name:"b" e (fun () ->
         Sim.Engine.sleep 50L;
         log := ("b", Sim.Engine.now e) :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list (pair string int64)))
    "events in time order"
    [ ("a", 100L); ("b", 50L) ]
    !log

let test_sleep_zero_is_yield () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore
    (Sim.Engine.spawn e (fun () ->
         order := 1 :: !order;
         Sim.Engine.yield ();
         order := 3 :: !order));
  ignore (Sim.Engine.spawn e (fun () -> order := 2 :: !order));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "yield interleaves" [ 3; 2; 1 ] !order

let test_determinism () =
  Helpers.with_seed ~default:11 @@ fun seed ->
  let run () =
    let e = Sim.Engine.create () in
    let rng = Sim.Rng.create seed in
    let trace = Buffer.create 64 in
    for i = 0 to 9 do
      ignore
        (Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep (Int64.of_int (Sim.Rng.int rng 1000));
             Buffer.add_string trace (Printf.sprintf "%d@%Ld;" i (Sim.Engine.now e))))
    done;
    Sim.Engine.run e;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let test_fiber_failure_propagates () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.spawn ~name:"boom" e (fun () -> failwith "boom"));
  match Sim.Engine.run e with
  | () -> Alcotest.fail "expected Fiber_failure"
  | exception Sim.Engine.Fiber_failure ("boom", Failure _) -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)

let test_deadlock_detected () =
  let e = Sim.Engine.create () in
  let m = Sim.Sync.Mutex.create () in
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Sync.Mutex.lock m;
         Sim.Sync.Mutex.lock m (* self-deadlock *)));
  match Sim.Engine.run e with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock _ -> ()

let test_mutex_mutual_exclusion () =
  let e = Sim.Engine.create () in
  let m = Sim.Sync.Mutex.create () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sim.Engine.spawn e (fun () ->
           Sim.Sync.Mutex.with_lock m (fun () ->
               incr inside;
               max_inside := max !max_inside !inside;
               Sim.Engine.sleep 10L;
               decr inside)))
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check int) "contended count" 9 (Sim.Sync.Mutex.contended m)

let test_mutex_fifo_fairness () =
  (* FIFO handoff must rotate the lock round-robin through contending
     fibers — no barging, no starvation — and bound every single wait by
     the other fibers' combined hold time. *)
  let e = Sim.Engine.create () in
  let m = Sim.Sync.Mutex.create ~name:"fair" () in
  let n = 8 and rounds = 20 in
  let hold = 1_000L in
  let grants = ref [] in
  for i = 0 to n - 1 do
    ignore
      (Sim.Engine.spawn e (fun () ->
           for _ = 1 to rounds do
             Sim.Sync.Mutex.lock m;
             grants := i :: !grants;
             Sim.Engine.sleep hold;
             Sim.Sync.Mutex.unlock m
           done))
  done;
  Sim.Engine.run e;
  let grants = Array.of_list (List.rev !grants) in
  Alcotest.(check int) "every round granted" (n * rounds)
    (Array.length grants);
  (* strict round-robin: after the first lap the grant order repeats *)
  for k = n to Array.length grants - 1 do
    if grants.(k) <> grants.(k - n) then
      Alcotest.failf "grant %d went to fiber %d, expected %d (barging)" k
        grants.(k)
        grants.(k - n)
  done;
  Alcotest.(check bool) "waits were measured" true
    (Int64.compare (Sim.Sync.Mutex.wait_ns m) 0L > 0);
  (* the longest wait is exactly the other fibers' holds: (n-1) x hold *)
  Alcotest.(check int64) "max wait bounded by (n-1) holds"
    (Int64.mul (Int64.of_int (n - 1)) hold)
    (Sim.Sync.Mutex.max_wait_ns m)

let test_rwlock_readers_parallel_writers_exclusive () =
  let e = Sim.Engine.create () in
  let rw = Sim.Sync.Rwlock.create () in
  let readers = ref 0 in
  let max_readers = ref 0 in
  let writer_active = ref false in
  let violations = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Sim.Engine.spawn e (fun () ->
           Sim.Sync.Rwlock.with_read rw (fun () ->
               if !writer_active then incr violations;
               incr readers;
               max_readers := max !max_readers !readers;
               Sim.Engine.sleep 20L;
               decr readers)))
  done;
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Sync.Rwlock.with_write rw (fun () ->
             writer_active := true;
             if !readers > 0 then incr violations;
             Sim.Engine.sleep 20L;
             writer_active := false)));
  Sim.Engine.run e;
  Alcotest.(check int) "no lock violations" 0 !violations;
  Alcotest.(check bool) "readers overlapped" true (!max_readers > 1)

let test_semaphore_bounds () =
  let e = Sim.Engine.create () in
  let sem = Sim.Sync.Semaphore.create 3 in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sim.Engine.spawn e (fun () ->
           Sim.Sync.Semaphore.acquire sem;
           incr inside;
           max_inside := max !max_inside !inside;
           Sim.Engine.sleep 10L;
           decr inside;
           Sim.Sync.Semaphore.release sem))
  done;
  Sim.Engine.run e;
  Alcotest.(check bool) "at most 3 inside" true (!max_inside <= 3)

let test_resource_queueing () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create 2 in
  ignore
    (Sim.Engine.spawn e (fun () ->
         for _ = 1 to 3 do
           ()
         done));
  for _ = 1 to 4 do
    ignore (Sim.Engine.spawn e (fun () -> Sim.Resource.use r 100L))
  done;
  Sim.Engine.run e;
  (* 4 jobs x 100ns on 2 servers: finishes at t=200 *)
  Alcotest.(check int64) "makespan" 200L (Sim.Engine.now e);
  Alcotest.(check int64) "busy time" 400L (Sim.Resource.busy_ns r)

let test_channel_fifo () =
  let e = Sim.Engine.create () in
  let ch = Sim.Sync.Channel.create () in
  let got = ref [] in
  ignore
    (Sim.Engine.spawn e (fun () ->
         for i = 1 to 5 do
           Sim.Sync.Channel.send ch i
         done;
         Sim.Sync.Channel.close ch));
  ignore
    (Sim.Engine.spawn e (fun () ->
         try
           while true do
             got := Sim.Sync.Channel.recv ch :: !got
           done
         with Sim.Sync.Channel.Closed -> ()));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo order" [ 5; 4; 3; 2; 1 ] !got

let test_ivar () =
  let e = Sim.Engine.create () in
  let iv = Sim.Sync.Ivar.create () in
  let got = ref 0 in
  ignore (Sim.Engine.spawn e (fun () -> got := Sim.Sync.Ivar.read iv));
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Engine.sleep 500L;
         Sim.Sync.Ivar.fill iv 42));
  Sim.Engine.run e;
  Alcotest.(check int) "ivar value" 42 !got;
  Alcotest.(check int64) "reader woke at fill time" 500L (Sim.Engine.now e)

let test_run_until () =
  let e = Sim.Engine.create () in
  let ticks = ref 0 in
  ignore
    (Sim.Engine.spawn e (fun () ->
         for _ = 1 to 100 do
           Sim.Engine.sleep 10L;
           incr ticks
         done));
  Sim.Engine.run_until e 250L;
  Alcotest.(check int) "partial progress" 25 !ticks;
  Sim.Engine.run e;
  Alcotest.(check int) "completes later" 100 !ticks

let test_channel_close_while_blocked () =
  let e = Sim.Engine.create () in
  let ch = Sim.Sync.Channel.create () in
  let got = ref (Some 99) in
  ignore
    (Sim.Engine.spawn ~name:"recv" e (fun () ->
         (* blocks on the empty channel before the closer runs *)
         got := Sim.Sync.Channel.recv_opt ch));
  ignore
    (Sim.Engine.spawn ~name:"closer" e (fun () ->
         Sim.Engine.sleep 10L;
         Sim.Sync.Channel.close ch));
  Sim.Engine.run e;
  Alcotest.(check (option int)) "recv_opt sees close as None" None !got

let test_channel_close_drains_then_none () =
  let e = Sim.Engine.create () in
  let ch = Sim.Sync.Channel.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Sync.Channel.send ch 1;
         Sim.Sync.Channel.send ch 2;
         Sim.Sync.Channel.close ch;
         log := Sim.Sync.Channel.recv_opt ch :: !log;
         log := Sim.Sync.Channel.recv_opt ch :: !log;
         log := Sim.Sync.Channel.recv_opt ch :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list (option int)))
    "queued values drain before None"
    [ Some 1; Some 2; None ]
    (List.rev !log)

(* The popped-payload space leak: after pop, the heap's backing array must
   not keep the payload reachable. A weak pointer observes collection. *)
let payload_witness : Obj.t Weak.t = Weak.create 1

let[@inline never] heap_push_pop_cycle () =
  (* Built in a non-inlined frame so no register keeps the payload alive
     once we return. *)
  let h = Sim.Heap.create () in
  let payload = Bytes.make 4096 'p' in
  Weak.set payload_witness 0 (Some (Obj.repr payload));
  Sim.Heap.push h ~time:5L ~seq:1 payload;
  (match Sim.Heap.pop h with
  | Some e -> assert (e.Sim.Heap.payload == payload)
  | None -> assert false);
  h

let test_heap_pop_clears_slot () =
  let h = heap_push_pop_cycle () in
  Gc.full_major ();
  (match Weak.get payload_witness 0 with
  | None -> ()
  | Some _ -> Alcotest.fail "popped payload still reachable from the heap");
  (* the heap itself is still usable *)
  Sim.Heap.push h ~time:1L ~seq:2 (Bytes.create 1);
  Alcotest.(check int) "heap usable after clearing" 1 (Sim.Heap.length h)

let test_heap_shrinks_after_drain () =
  let h = Sim.Heap.create () in
  for i = 0 to 999 do
    Sim.Heap.push h ~time:(Int64.of_int (i * 31 mod 1009)) ~seq:i i
  done;
  let cap_full = Sim.Heap.capacity h in
  Alcotest.(check bool) "grew to hold 1000" true (cap_full >= 1000);
  for _ = 1 to 990 do
    ignore (Sim.Heap.pop h)
  done;
  Alcotest.(check int) "10 left" 10 (Sim.Heap.length h);
  Alcotest.(check bool) "backing array shrank" true
    (Sim.Heap.capacity h < cap_full / 8);
  (* remaining entries still drain in order *)
  let last = ref Int64.min_int in
  let rec drain () =
    match Sim.Heap.pop h with
    | None -> ()
    | Some e ->
        Alcotest.(check bool) "ordered" true (Int64.compare !last e.Sim.Heap.time <= 0);
        last := e.Sim.Heap.time;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h)

(* Property: the heap pops in nondecreasing (time, seq) order. *)
let prop_heap_ordering =
  QCheck.Test.make ~count:200 ~name:"heap pops in order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Heap.create () in
      List.iteri
        (fun i t -> Sim.Heap.push h ~time:(Int64.of_int t) ~seq:i ())
        times;
      let rec drain last ok =
        match Sim.Heap.pop h with
        | None -> ok
        | Some e ->
            let t = e.Sim.Heap.time in
            drain t (ok && Int64.compare last t <= 0)
      in
      drain Int64.min_int true)

let suite =
  [
    tc "virtual time ordering" `Quick test_virtual_time;
    tc "yield" `Quick test_sleep_zero_is_yield;
    tc "determinism" `Quick test_determinism;
    tc "fiber failure propagates" `Quick test_fiber_failure_propagates;
    tc "deadlock detection" `Quick test_deadlock_detected;
    tc "mutex exclusion" `Quick test_mutex_mutual_exclusion;
    tc "mutex fifo fairness" `Quick test_mutex_fifo_fairness;
    tc "rwlock semantics" `Quick test_rwlock_readers_parallel_writers_exclusive;
    tc "semaphore bounds" `Quick test_semaphore_bounds;
    tc "resource queueing" `Quick test_resource_queueing;
    tc "channel fifo + close" `Quick test_channel_fifo;
    tc "channel close while blocked" `Quick test_channel_close_while_blocked;
    tc "channel drains then None" `Quick test_channel_close_drains_then_none;
    tc "heap pop clears slot" `Quick test_heap_pop_clears_slot;
    tc "heap shrinks after drain" `Quick test_heap_shrinks_after_drain;
    tc "ivar" `Quick test_ivar;
    tc "run_until" `Quick test_run_until;
    QCheck_alcotest.to_alcotest prop_heap_ordering;
  ]
