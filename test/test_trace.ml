(** Tests of the span tracer: event capture, the bounded ring, Chrome
    trace-event export (validated with a small in-test JSON reader), and
    the no-perturbation guarantee — tracing must never move virtual time. *)

open Helpers

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader, enough to validate the exporter's output.     *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_lit lit v =
    String.iter (fun c -> expect c) lit;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* \uXXXX: decode to a raw byte for the BMP-ASCII escapes the
                 exporter emits (control characters) *)
              let hex = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | _ -> fail "bad escape");
          advance ();
          go ()
      | '\255' -> fail "unterminated string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected number";
    JNum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> parse_lit "null" JNull
    | 't' -> parse_lit "true" (JBool true)
    | 'f' -> parse_lit "false" (JBool false)
    | '"' -> JStr (parse_string ())
    | '0' .. '9' | '-' -> parse_number ()
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          JArr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          JArr (List.rev !items)
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          JObj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          JObj (List.rev !items)
        end
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | JObj kvs -> ( match List.assoc_opt name kvs with Some v -> v | None -> JNull)
  | _ -> JNull

let str = function JStr s -> s | _ -> Alcotest.fail "expected string"
let num = function JNum f -> f | _ -> Alcotest.fail "expected number"

(* ------------------------------------------------------------------ *)

let test_span_capture () =
  let e = Sim.Engine.create () in
  let tr = Sim.Trace.create e in
  Alcotest.(check bool) "disabled by default" false (Sim.Trace.enabled tr);
  Sim.Trace.set_enabled tr true;
  ignore
    (Sim.Engine.spawn ~name:"worker" e (fun () ->
         Sim.Trace.span_begin tr ~cat:"test" "outer";
         Sim.Engine.sleep 100L;
         Sim.Trace.instant tr ~cat:"test" "tick";
         Sim.Engine.sleep 50L;
         Sim.Trace.span_end tr ~cat:"test" "outer"));
  Sim.Engine.run e;
  match Sim.Trace.events tr with
  | [ b; i; en ] ->
      Alcotest.(check string) "begin name" "outer" b.Sim.Trace.name;
      Alcotest.(check int64) "begin ts" 0L b.Sim.Trace.ts;
      Alcotest.(check string) "instant name" "tick" i.Sim.Trace.name;
      Alcotest.(check int64) "instant ts" 100L i.Sim.Trace.ts;
      Alcotest.(check int64) "end ts" 150L en.Sim.Trace.ts;
      Alcotest.(check bool) "fiber tid stamped" true (b.Sim.Trace.tid >= 0);
      Alcotest.(check int) "same fiber" b.Sim.Trace.tid en.Sim.Trace.tid
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_ring_bounded () =
  let e = Sim.Engine.create () in
  let tr = Sim.Trace.create ~capacity:8 e in
  Sim.Trace.set_enabled tr true;
  for i = 1 to 20 do
    Sim.Trace.instant tr (Printf.sprintf "ev%d" i)
  done;
  Alcotest.(check int) "length capped" 8 (Sim.Trace.length tr);
  Alcotest.(check int) "dropped counted" 12 (Sim.Trace.dropped tr);
  (match Sim.Trace.events tr with
  | first :: _ ->
      Alcotest.(check string) "oldest retained is ev13" "ev13"
        first.Sim.Trace.name
  | [] -> Alcotest.fail "no events");
  Sim.Trace.clear tr;
  Alcotest.(check int) "clear empties" 0 (Sim.Trace.length tr)

(* Run a real stack under the tracer and validate the Chrome export. *)
let test_chrome_json_wellformed () =
  let machine = Kernel.Machine.create ~disk_blocks:4096 ~block_size:4096 () in
  Sim.Trace.set_enabled (Kernel.Machine.tracer machine) true;
  Kernel.Machine.spawn ~name:"test" machine (fun () ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/d");
      ok (Kernel.Os.write_file os "/d/f \"quoted\"" (Bytes.make 9000 'x'));
      ignore (ok (Kernel.Os.read_file os "/d/f \"quoted\""));
      ok (Kernel.Os.sync os);
      Bento.Bentofs.unmount vfs handle);
  Kernel.Machine.run machine;
  let tr = Kernel.Machine.tracer machine in
  Alcotest.(check bool) "captured something" true (Sim.Trace.length tr > 0);
  let doc = Sim.Trace.to_chrome_json ~pid:7 ~process_name:"run:test" tr in
  let arr =
    match parse_json doc with
    | JArr items -> items
    | _ -> Alcotest.fail "top level must be an array"
  in
  Alcotest.(check int)
    "one element per event plus process_name metadata"
    (Sim.Trace.length tr + 1) (List.length arr);
  let seen_meta = ref false in
  let last_ts = ref neg_infinity in
  let cats = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match str (field "ph" ev) with
      | "M" ->
          seen_meta := true;
          Alcotest.(check string) "metadata kind" "process_name"
            (str (field "name" ev));
          Alcotest.(check string) "process name" "run:test"
            (str (field "name" (field "args" ev)))
      | ph ->
          if not (List.mem ph [ "B"; "E"; "i"; "C"; "s"; "f" ]) then
            Alcotest.failf "unknown phase %s" ph;
          Alcotest.(check bool) "pid" true (num (field "pid" ev) = 7.0);
          ignore (str (field "name" ev));
          Hashtbl.replace cats (str (field "cat" ev)) ();
          let ts = num (field "ts" ev) in
          if ts < !last_ts then
            Alcotest.failf "timestamps regress: %f after %f" ts !last_ts;
          last_ts := ts;
          if ph = "i" then
            Alcotest.(check string) "instant scope" "t" (str (field "s" ev));
          (* flow events must carry the stitching edge id; finishes bind
             to the enclosing slice's end *)
          if ph = "s" || ph = "f" then
            Alcotest.(check bool)
              "flow edge id positive" true
              (num (field "id" ev) > 0.);
          if ph = "f" then
            Alcotest.(check string) "flow binding point" "e"
              (str (field "bp" ev)))
    arr;
  Alcotest.(check bool) "metadata present" true !seen_meta;
  (* the stack actually crossed its layers *)
  List.iter
    (fun cat ->
      if not (Hashtbl.mem cats cat) then Alcotest.failf "no %s events" cat)
    [ "syscall"; "vfs"; "bcache"; "device"; "bento" ]

(* Timestamps are virtual ns exported as microseconds with a fractional
   part; make sure nothing is lost on the way out. *)
let test_chrome_ts_precision () =
  let e = Sim.Engine.create () in
  let tr = Sim.Trace.create e in
  Sim.Trace.set_enabled tr true;
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Engine.sleep 1_234_567L;
         Sim.Trace.instant tr "mark"));
  Sim.Engine.run e;
  match parse_json (Sim.Trace.to_chrome_json tr) with
  | JArr evs -> (
      let mark =
        List.find (fun ev -> str (field "ph" ev) = "i") evs
      in
      match field "ts" mark with
      | JNum f -> Alcotest.(check (float 1e-9)) "1234.567 us" 1234.567 f
      | _ -> Alcotest.fail "ts missing")
  | _ -> Alcotest.fail "bad document"

(* The no-overhead guarantee: the same workload, traced and untraced,
   reaches the identical virtual end time and the identical result. *)
let run_workload ~traced () =
  let machine = Kernel.Machine.create ~disk_blocks:8192 ~block_size:4096 () in
  if traced then Sim.Trace.set_enabled (Kernel.Machine.tracer machine) true;
  let ops = ref 0 in
  Kernel.Machine.spawn ~name:"test" machine (fun () ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      for i = 0 to 24 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/f%d" (i mod 5))
             (Bytes.make (1 lsl (8 + (i mod 6))) 'p'));
        ignore (ok (Kernel.Os.read_file os (Printf.sprintf "/f%d" (i mod 5))));
        incr ops
      done;
      ok (Kernel.Os.sync os);
      Bento.Bentofs.unmount vfs handle);
  Kernel.Machine.run machine;
  (Kernel.Machine.now machine, !ops, Sim.Trace.length (Kernel.Machine.tracer machine))

let test_tracing_does_not_perturb () =
  let t_off, ops_off, len_off = run_workload ~traced:false () in
  let t_on, ops_on, len_on = run_workload ~traced:true () in
  Alcotest.(check int64) "virtual end time identical" t_off t_on;
  Alcotest.(check int) "same work done" ops_off ops_on;
  Alcotest.(check int) "untraced run captured nothing" 0 len_off;
  Alcotest.(check bool) "traced run captured spans" true (len_on > 0)

let suite =
  [
    tc "span capture" `Quick test_span_capture;
    tc "ring bounded" `Quick test_ring_bounded;
    tc "chrome export wellformed" `Quick test_chrome_json_wellformed;
    tc "chrome ts precision" `Quick test_chrome_ts_precision;
    tc "tracing does not perturb virtual time" `Quick
      test_tracing_does_not_perturb;
  ]
