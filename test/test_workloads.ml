(** Tests of the workload generators: determinism, distribution shape, and
    the timed-run machinery. *)

open Helpers

let tc = Alcotest.test_case

let test_manifest_deterministic () =
  let m1 = Workloads.Macro.linux_tree_manifest ~nfiles:500 ~ndirs:40 ~seed:7 () in
  let m2 = Workloads.Macro.linux_tree_manifest ~nfiles:500 ~ndirs:40 ~seed:7 () in
  Alcotest.(check int) "same file count" (List.length m1.Workloads.Macro.files)
    (List.length m2.Workloads.Macro.files);
  Alcotest.(check int) "same bytes" m1.Workloads.Macro.total_bytes
    m2.Workloads.Macro.total_bytes;
  Alcotest.(check bool) "same paths" true
    (List.for_all2
       (fun a b -> a.Workloads.Macro.me_path = b.Workloads.Macro.me_path)
       m1.Workloads.Macro.files m2.Workloads.Macro.files);
  let m3 = Workloads.Macro.linux_tree_manifest ~nfiles:500 ~ndirs:40 ~seed:8 () in
  Alcotest.(check bool) "different seed differs" true
    (m3.Workloads.Macro.total_bytes <> m1.Workloads.Macro.total_bytes)

let test_manifest_shape () =
  let m = Workloads.Macro.linux_tree_manifest ~nfiles:2000 ~ndirs:100 ~seed:1 () in
  Alcotest.(check int) "file count" 2000 (List.length m.Workloads.Macro.files);
  Alcotest.(check int) "dir count" 101 (List.length m.Workloads.Macro.dirs);
  let mean = float_of_int m.Workloads.Macro.total_bytes /. 2000. in
  Alcotest.(check bool)
    (Printf.sprintf "kernel-tree-like mean size (%.0f)" mean)
    true
    (mean > 4_000. && mean < 40_000.);
  (* parents precede children so untar can mkdir in order *)
  let seen = Hashtbl.create 128 in
  Hashtbl.add seen "/" ();
  List.iter
    (fun d ->
      let parent = Filename.dirname d in
      if not (Hashtbl.mem seen parent) then
        Alcotest.failf "dir %s before its parent %s" d parent;
      Hashtbl.add seen d ())
    m.Workloads.Macro.dirs

let test_manifest_untars_cleanly () =
  with_xv6 ~disk_blocks:(128 * 1024) (fun machine os _ _ ->
      let m = Workloads.Macro.linux_tree_manifest ~nfiles:300 ~ndirs:30 ~seed:3 () in
      let r = Workloads.Macro.untar os m in
      Alcotest.(check int) "all files created" 300 r.Workloads.Bench_result.ops;
      (* spot-check a file exists with the declared size *)
      let f = List.nth m.Workloads.Macro.files 123 in
      let st = ok (Kernel.Os.stat os f.Workloads.Macro.me_path) in
      Alcotest.(check int) "size matches manifest" f.Workloads.Macro.me_size
        st.Kernel.Vfs.st_size;
      ignore machine)

let test_bench_result_math () =
  let r =
    {
      Workloads.Bench_result.label = "x";
      ops = 500;
      bytes = 5_000_000;
      elapsed_ns = 2_000_000_000L;
      lat = None;
    }
  in
  Alcotest.(check (float 0.01)) "ops/s" 250.0 (Workloads.Bench_result.ops_per_sec r);
  Alcotest.(check (float 0.01)) "MB/s" 2.5 (Workloads.Bench_result.mbps r)

let test_read_bench_runs () =
  with_xv6 ~disk_blocks:(64 * 1024) (fun _m os _ _ ->
      let r =
        Workloads.Micro.read_bench os ~iosize:4096 ~pattern:Workloads.Micro.Rnd
          ~nthreads:4 ~duration:(Sim.Time.ms 20) ~file_mb:4 ~seed:1
      in
      Alcotest.(check bool) "made progress" true (r.Workloads.Bench_result.ops > 10);
      Alcotest.(check bool) "time advanced" true
        (Int64.compare r.Workloads.Bench_result.elapsed_ns (Sim.Time.ms 20) >= 0))

let test_create_delete_benches_run () =
  with_xv6 ~disk_blocks:(64 * 1024) (fun _m os _ _ ->
      let c =
        Workloads.Micro.create_bench os ~nthreads:2 ~duration:(Sim.Time.ms 30)
          ~dirwidth:10 ~mean_size:8192 ~seed:2
      in
      Alcotest.(check bool) "creates happened" true (c.Workloads.Bench_result.ops > 3);
      let d =
        Workloads.Micro.delete_bench os ~nthreads:2 ~duration:(Sim.Time.ms 30)
          ~dirwidth:10 ~precreate:50 ~seed:2
      in
      Alcotest.(check bool) "deletes happened" true (d.Workloads.Bench_result.ops > 3);
      Alcotest.(check bool) "not more than precreated" true
        (d.Workloads.Bench_result.ops <= 50))

let test_zipf_skew () =
  Helpers.with_seed ~default:9 @@ fun seed ->
  let rng = Sim.Rng.create seed in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.zipf rng ~n:100 ~theta:0.9 in
    counts.(v) <- counts.(v) + 1
  done;
  (* rank 0 must be much hotter than rank 50 *)
  Alcotest.(check bool)
    (Printf.sprintf "skewed: %d vs %d" counts.(0) counts.(50))
    true
    (counts.(0) > 4 * max 1 counts.(50))

let suite =
  [
    tc "manifest deterministic" `Quick test_manifest_deterministic;
    tc "manifest shape" `Quick test_manifest_shape;
    tc "manifest untars cleanly" `Quick test_manifest_untars_cleanly;
    tc "bench result math" `Quick test_bench_result_math;
    tc "read bench runs" `Quick test_read_bench_runs;
    tc "create/delete benches run" `Quick test_create_delete_benches_run;
    tc "zipf skew" `Quick test_zipf_skew;
  ]
