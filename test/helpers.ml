(** Shared scaffolding for the test suites: build a machine, mkfs + mount a
    file system, run test bodies inside a simulation fiber. *)

let default_disk_blocks = 65536 (* 256 MB *)

let ok = Kernel.Errno.ok_exn

let xv6_maker : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

(** Run [f] as a fiber on a fresh machine and drain the simulation. *)
let in_sim ?(disk_blocks = default_disk_blocks) f =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let finished = ref false in
  Kernel.Machine.spawn ~name:"test" machine (fun () ->
      f machine;
      finished := true);
  Kernel.Machine.run machine;
  Alcotest.(check bool) "test fiber ran to completion" true !finished

(** mkfs + mount xv6fs over Bento, hand [f] the Os syscall layer. *)
let with_xv6 ?disk_blocks ?(maker = xv6_maker) f =
  in_sim ?disk_blocks (fun machine ->
      ok (Bento.Bentofs.mkfs machine maker);
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false machine maker)
      in
      let os = Kernel.Os.create vfs in
      f machine os vfs handle;
      Bento.Bentofs.unmount vfs handle)

let bytes_of_string = Bytes.of_string

(** Deterministic pseudo-random payload of [n] bytes. *)
let payload ?(seed = 7) n =
  let rng = Sim.Rng.create seed in
  Bytes.init n (fun _ -> Char.chr (Sim.Rng.int rng 256))

(** Seed for a randomized test: [default] unless overridden with
    BENTO_SEED=n in the environment. *)
let test_seed default =
  match Sys.getenv_opt "BENTO_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

(** Run a randomized test body with its seed; on failure, print the seed
    and how to reproduce the exact run. *)
let with_seed ?(default = 42) f =
  let seed = test_seed default in
  try f seed
  with e ->
    Printf.eprintf
      "[randomized test failed with seed %d: rerun with BENTO_SEED=%d]\n%!"
      seed seed;
    raise e

let check_errno = Alcotest.testable Kernel.Errno.pp ( = )

let check_res name expected = function
  | Ok _ -> Alcotest.failf "%s: expected error %s but succeeded" name
              (Kernel.Errno.to_string expected)
  | Error e -> Alcotest.check check_errno name expected e
