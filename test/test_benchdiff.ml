(** Tests of the bench regression gate: document parsing, row matching,
    gate directions, tolerance, and the metadata-compatibility refusal. *)

let tc = Alcotest.test_case

module D = Workloads.Bench_diff

let meta ?(seed = 42) ?(duration = 0.5) ?(cost = "cost-test") () =
  let open Util.Json in
  [
    ("benchmark", String "bento-sim");
    ("seed", Int seed);
    ("duration_s", Float duration);
    ("untar_files", Int 14000);
    ("block_size", Int 4096);
    ("cost_model", String cost);
    ("git_describe", String "test");
  ]

let row ~config metrics =
  let open Util.Json in
  Obj
    (("section", String "fig2")
    :: ("system", String "Bento")
    :: ("config", String config)
    :: List.map (fun (k, v) -> (k, Float v)) metrics)

let doc ?seed ?duration ?cost rows =
  let open Util.Json in
  Obj [ ("meta", Obj (meta ?seed ?duration ?cost ())); ("results", List rows) ]

let parse_doc j =
  match D.doc_of_json j with
  | Ok d -> d
  | Error e -> Alcotest.failf "doc_of_json: %s" (D.error_to_string e)

let base_rows ops lat =
  [ row ~config:"read-seq-4k-1t" [ ("ops_per_sec", ops); ("lat_p99_ns", lat) ] ]

let diff_exn ?tolerance old_d new_d =
  match D.diff ?tolerance (parse_doc old_d) (parse_doc new_d) with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff: %s" (D.error_to_string e)

let test_tolerance_parse () =
  let okv s = match D.parse_tolerance s with Ok v -> v | Error m -> Alcotest.fail m in
  Alcotest.(check (float 1e-9)) "percent" 0.05 (okv "5%");
  Alcotest.(check (float 1e-9)) "fraction" 0.05 (okv "0.05");
  Alcotest.(check (float 1e-9)) "zero" 0.0 (okv "0");
  (match D.parse_tolerance "banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage tolerance accepted");
  match D.parse_tolerance "-3%" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative tolerance accepted"

let test_round_trip () =
  (* emitter output parses back into the same rows *)
  let d = doc (base_rows 1000.0 5000.0) in
  let parsed =
    match D.doc_of_string (Util.Json.to_string d) with
    | Ok p -> p
    | Error e -> Alcotest.failf "round trip: %s" (D.error_to_string e)
  in
  Alcotest.(check int) "one row" 1 (List.length parsed.D.rows);
  let r = List.hd parsed.D.rows in
  Alcotest.(check string) "config" "read-seq-4k-1t" r.D.config;
  Alcotest.(check (float 1e-9)) "ops metric" 1000.0
    (List.assoc "ops_per_sec" r.D.metrics)

let test_self_compare_clean () =
  let d = doc (base_rows 1000.0 5000.0) in
  let r = diff_exn d d in
  Alcotest.(check int) "no regressions" 0 r.D.regressions;
  Alcotest.(check int) "one row compared" 1 (List.length r.D.compared)

let test_slowdown_detected () =
  (* 10% throughput drop vs 5% tolerance must fail, in both directions of
     the gate: ops/sec down and latency up *)
  let old_d = doc (base_rows 1000.0 5000.0) in
  let new_d = doc (base_rows 900.0 5600.0) in
  let r = diff_exn old_d new_d in
  Alcotest.(check int) "both metrics regress" 2 r.D.regressions;
  let d = List.hd r.D.compared in
  List.iter
    (fun (dl : D.delta) ->
      if not dl.D.regressed then
        Alcotest.failf "%s should have regressed" dl.D.metric)
    d.D.deltas

let test_improvement_passes () =
  let old_d = doc (base_rows 1000.0 5000.0) in
  let new_d = doc (base_rows 1500.0 2000.0) in
  let r = diff_exn old_d new_d in
  Alcotest.(check int) "improvement is not a regression" 0 r.D.regressions

let test_within_tolerance_passes () =
  let old_d = doc (base_rows 1000.0 5000.0) in
  let new_d = doc (base_rows 970.0 5100.0) in
  let r = diff_exn old_d new_d in
  Alcotest.(check int) "3%/2% within 5%" 0 r.D.regressions;
  let r = diff_exn ~tolerance:0.01 old_d new_d in
  Alcotest.(check int) "but not within 1%" 2 r.D.regressions

let test_informational_never_gates () =
  let old_d =
    doc [ row ~config:"c" [ ("ops_per_sec", 100.0); ("lat_max_ns", 100.0) ] ]
  in
  let new_d =
    doc [ row ~config:"c" [ ("ops_per_sec", 100.0); ("lat_max_ns", 9000.0) ] ]
  in
  let r = diff_exn old_d new_d in
  Alcotest.(check int) "lat_max is informational" 0 r.D.regressions

let test_incomparable_meta () =
  let a = doc ~seed:42 (base_rows 1000.0 5000.0) in
  let b = doc ~seed:43 (base_rows 1000.0 5000.0) in
  (match D.diff (parse_doc a) (parse_doc b) with
  | Error (D.Incomparable _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (D.error_to_string e)
  | Ok _ -> Alcotest.fail "seed mismatch not refused");
  let c = doc ~cost:"cost-other" (base_rows 1000.0 5000.0) in
  (match D.diff (parse_doc a) (parse_doc c) with
  | Error (D.Incomparable _) -> ()
  | _ -> Alcotest.fail "cost-model mismatch not refused");
  let d = doc ~duration:2.0 (base_rows 1000.0 5000.0) in
  match D.diff (parse_doc a) (parse_doc d) with
  | Error (D.Incomparable _) -> ()
  | _ -> Alcotest.fail "duration mismatch not refused"

let test_no_matching_rows () =
  let a = doc [ row ~config:"a" [ ("ops_per_sec", 1.0) ] ] in
  let b = doc [ row ~config:"b" [ ("ops_per_sec", 1.0) ] ] in
  match D.diff (parse_doc a) (parse_doc b) with
  | Error (D.Bad_input _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (D.error_to_string e)
  | Ok _ -> Alcotest.fail "disjoint documents compared"

let test_unmatched_rows_reported () =
  let a =
    doc
      [
        row ~config:"shared" [ ("ops_per_sec", 1.0) ];
        row ~config:"gone" [ ("ops_per_sec", 1.0) ];
      ]
  in
  let b =
    doc
      [
        row ~config:"shared" [ ("ops_per_sec", 1.0) ];
        row ~config:"fresh" [ ("ops_per_sec", 1.0) ];
      ]
  in
  let r = diff_exn a b in
  Alcotest.(check int) "one matched" 1 (List.length r.D.compared);
  Alcotest.(check int) "one only-old" 1 (List.length r.D.only_old);
  Alcotest.(check int) "one only-new" 1 (List.length r.D.only_new);
  (* render must not raise and must mention the summary *)
  let s = D.render r in
  if not (String.length s > 0) then Alcotest.fail "empty render"

let suite =
  [
    tc "tolerance parsing" `Quick test_tolerance_parse;
    tc "document round trip" `Quick test_round_trip;
    tc "self-compare is clean" `Quick test_self_compare_clean;
    tc "10% slowdown beyond 5% tolerance fails" `Quick test_slowdown_detected;
    tc "improvements pass" `Quick test_improvement_passes;
    tc "tolerance boundary" `Quick test_within_tolerance_passes;
    tc "informational metrics never gate" `Quick
      test_informational_never_gates;
    tc "incomparable metadata refused" `Quick test_incomparable_meta;
    tc "disjoint documents refused" `Quick test_no_matching_rows;
    tc "unmatched rows reported" `Quick test_unmatched_rows_reported;
  ]
