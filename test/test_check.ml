(** Tests of the crash-consistency checker itself: the POSIX oracle, the
    differential driver, crash-point replay on handcrafted traces, and the
    self-test that an injected bug is actually caught. *)

open Helpers

let tc = Alcotest.test_case

let report_clean label (r : Check.Checker.report) =
  if not (Check.Checker.report_ok r) then
    Alcotest.failf "%s:\n%s" label
      (Format.asprintf "%a" Check.Checker.pp_report r)

(* ------------------------------------------------------------------ *)
(* Oracle model                                                        *)
(* ------------------------------------------------------------------ *)

let test_oracle_errnos () =
  let open Check.Model in
  let trace =
    Check.Workload.of_ops ~seed:0
      [
        Mkdir "/d";
        Mkdir "/d" (* again: EEXIST *);
        Create "/d/f";
        Create "/d/f" (* again: O_CREAT without O_EXCL, plain ok *);
        Unlink "/missing";
        Rmdir "/d" (* non-empty *);
        Unlink "/d/f";
        Rmdir "/d";
        Stat "/d" (* gone now *);
      ]
  in
  let expect =
    [|
      Ok_unit;
      Err Kernel.Errno.EEXIST;
      Ok_unit;
      Ok_unit;
      Err Kernel.Errno.ENOENT;
      Err Kernel.Errno.ENOTEMPTY;
      Ok_unit;
      Ok_unit;
      Err Kernel.Errno.ENOENT;
    |]
  in
  Array.iteri
    (fun i want ->
      Alcotest.(check string)
        (Printf.sprintf "op %d oracle outcome" i)
        (outcome_to_string want)
        (outcome_to_string trace.Check.Workload.expected.(i)))
    expect

(* ------------------------------------------------------------------ *)
(* Differential: all three stacks vs the oracle                        *)
(* ------------------------------------------------------------------ *)

let test_differential_smoke () =
  with_seed ~default:42 @@ fun seed ->
  let r =
    Check.Checker.run ~seed ~ops:120 ~stacks:Check.Stack.all ~mode:None ()
  in
  report_clean "differential (no crash points)" r

(* ------------------------------------------------------------------ *)
(* Crash-point replay, sampled, one stack at a time                    *)
(* ------------------------------------------------------------------ *)

let crash_smoke kind () =
  with_seed ~default:7 @@ fun seed ->
  let r =
    Check.Checker.run ~seed ~ops:60 ~stacks:[ kind ]
      ~mode:(Some (Check.Checker.Sample 8))
      ()
  in
  report_clean (Check.Stack.name kind ^ " crash smoke") r

(* ------------------------------------------------------------------ *)
(* Handcrafted traces: rename and symlink crash behaviour (every crash
   point enumerated, all three stacks)                                 *)
(* ------------------------------------------------------------------ *)

let check_handcrafted label ops =
  let trace = Check.Workload.of_ops ~seed:1 ops in
  List.iter
    (fun kind ->
      let r =
        Check.Checker.run_trace ~stacks:[ kind ]
          ~mode:(Some Check.Checker.All) trace
      in
      report_clean (label ^ " on " ^ Check.Stack.name kind) r)
    Check.Stack.all

let test_rename_crash_atomicity () =
  let open Check.Model in
  check_handcrafted "rename"
    [
      Mkdir "/a";
      Mkdir "/b";
      Create "/a/f";
      Write { path = "/a/f"; pos = 0; len = 5000 };
      Fsync "/a/f";
      Rename ("/a/f", "/b/g");
      Fsync "/b/g";
      (* replacing rename: the victim's inode must be freed cleanly *)
      Create "/b/h";
      Write { path = "/b/h"; pos = 0; len = 300 };
      Rename ("/b/h", "/b/g");
      Sync;
      Stat "/b/g";
      Readdir "/b";
    ]

let test_symlink_crash_behaviour () =
  let open Check.Model in
  check_handcrafted "symlink"
    [
      Create "/t";
      Write { path = "/t"; pos = 0; len = 1000 };
      Fsync "/t";
      Symlink { target = "/t"; link = "/l" };
      Sync;
      Readlink "/l";
      (* write through the link, then move the link itself *)
      Write { path = "/l"; pos = 1000; len = 500 };
      Fsync "/l";
      Rename ("/l", "/l2");
      Readlink "/l2";
      Unlink "/t" (* /l2 now dangles: still a legal namespace *);
      Sync;
      Readdir "/";
    ]

let test_scatter_batch_crash () =
  (* The log install and writepages paths now dispatch scattered home
     writes as one merged batch of concurrent device commands. Command
     hooks fire per command, so crash points fall *inside* a partially
     completed batch — some runs durable, some not. Interleaving writes
     to two files keeps their home blocks non-contiguous, guaranteeing
     multi-command batches; fsync/sync must still replay to a state the
     oracle accepts at every such point. *)
  let open Check.Model in
  check_handcrafted "mid-batch scatter crash"
    [
      Create "/a";
      Create "/b";
      Write { path = "/a"; pos = 0; len = 20000 };
      Write { path = "/b"; pos = 0; len = 20000 };
      Write { path = "/a"; pos = 20000; len = 20000 };
      Write { path = "/b"; pos = 20000; len = 20000 };
      Fsync "/a" (* commit: scatter install of interleaved blocks *);
      Fsync "/b";
      Write { path = "/a"; pos = 8192; len = 12000 } (* overwrite mid-file *);
      Write { path = "/b"; pos = 0; len = 4096 };
      Sync (* writepages flusher: concurrent multi-run dispatch *);
      Stat "/a";
      Stat "/b";
      Readdir "/";
    ]

(* ------------------------------------------------------------------ *)
(* Self-test: an injected ordering bug must produce a counterexample   *)
(* ------------------------------------------------------------------ *)

let test_inject_bug_is_caught () =
  let r =
    Check.Checker.run ~inject_bug:true ~seed:1 ~ops:60
      ~stacks:[ Check.Stack.Xv6 ]
      ~mode:(Some (Check.Checker.Sample 32))
      ()
  in
  Alcotest.(check bool) "injected bug reported" false
    (Check.Checker.report_ok r);
  (* the counterexample carries a crash point and an op window *)
  let v =
    List.concat_map
      (fun c -> c.Check.Checker.c_violations)
      r.Check.Checker.r_crashes
  in
  Alcotest.(check bool) "at least one violation" true (v <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "violation names ops" true
        (v.Check.Checker.v_ops <> []))
    v

(* ------------------------------------------------------------------ *)
(* Crash consistency under the file server: sessions with dirty        *)
(* write-lease caches, crash points mid-commit                         *)
(* ------------------------------------------------------------------ *)

let test_server_crash () =
  with_seed ~default:42 @@ fun seed ->
  let r = Check.Server_crash.run ~sessions:6 ~seed () in
  if not (Check.Server_crash.report_ok r) then
    Alcotest.failf "server crash check:\n%s"
      (Format.asprintf "%a" Check.Server_crash.pp_report r);
  Alcotest.(check int) "every session committed" 6 r.Check.Server_crash.s_committed_at_end;
  Alcotest.(check bool) "crash points captured" true
    (r.Check.Server_crash.s_points_captured > 0);
  (* the run must actually exercise mid-commit interleavings — points
     where some sessions had committed and others still held dirty
     caches — or the property is vacuous *)
  Alcotest.(check bool) "mid-commit points replayed" true
    (r.Check.Server_crash.s_points_mixed > 0)

let test_server_crash_inject_bug_is_caught () =
  let r = Check.Server_crash.run ~inject_bug:true ~sessions:4 ~seed:1 () in
  Alcotest.(check bool) "injected bug reported" false
    (Check.Server_crash.report_ok r)

let suite =
  [
    tc "oracle errnos" `Quick test_oracle_errnos;
    tc "differential smoke (all stacks)" `Quick test_differential_smoke;
    tc "crash smoke xv6" `Quick (crash_smoke Check.Stack.Xv6);
    tc "crash smoke fuse" `Quick (crash_smoke Check.Stack.Fuse);
    tc "crash smoke ext4" `Quick (crash_smoke Check.Stack.Ext4);
    tc "rename crash atomicity" `Quick test_rename_crash_atomicity;
    tc "symlink crash behaviour" `Quick test_symlink_crash_behaviour;
    tc "mid-batch scatter crash" `Quick test_scatter_batch_crash;
    tc "injected bug is caught" `Quick test_inject_bug_is_caught;
    tc "server crash: committed durable, dirty caches legal" `Quick
      test_server_crash;
    tc "server crash: injected bug is caught" `Quick
      test_server_crash_inject_bug_is_caught;
  ]
