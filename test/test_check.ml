(** Tests of the crash-consistency checker itself: the POSIX oracle, the
    differential driver, crash-point replay on handcrafted traces, and the
    self-test that an injected bug is actually caught. *)

open Helpers

let tc = Alcotest.test_case

let report_clean label (r : Check.Checker.report) =
  if not (Check.Checker.report_ok r) then
    Alcotest.failf "%s:\n%s" label
      (Format.asprintf "%a" Check.Checker.pp_report r)

(* ------------------------------------------------------------------ *)
(* Oracle model                                                        *)
(* ------------------------------------------------------------------ *)

let test_oracle_errnos () =
  let open Check.Model in
  let trace =
    Check.Workload.of_ops ~seed:0
      [
        Mkdir "/d";
        Mkdir "/d" (* again: EEXIST *);
        Create "/d/f";
        Create "/d/f" (* again: O_CREAT without O_EXCL, plain ok *);
        Unlink "/missing";
        Rmdir "/d" (* non-empty *);
        Unlink "/d/f";
        Rmdir "/d";
        Stat "/d" (* gone now *);
      ]
  in
  let expect =
    [|
      Ok_unit;
      Err Kernel.Errno.EEXIST;
      Ok_unit;
      Ok_unit;
      Err Kernel.Errno.ENOENT;
      Err Kernel.Errno.ENOTEMPTY;
      Ok_unit;
      Ok_unit;
      Err Kernel.Errno.ENOENT;
    |]
  in
  Array.iteri
    (fun i want ->
      Alcotest.(check string)
        (Printf.sprintf "op %d oracle outcome" i)
        (outcome_to_string want)
        (outcome_to_string trace.Check.Workload.expected.(i)))
    expect

(* ------------------------------------------------------------------ *)
(* Differential: all three stacks vs the oracle                        *)
(* ------------------------------------------------------------------ *)

let test_differential_smoke () =
  with_seed ~default:42 @@ fun seed ->
  let r =
    Check.Checker.run ~seed ~ops:120 ~stacks:Check.Stack.all ~mode:None ()
  in
  report_clean "differential (no crash points)" r

(* ------------------------------------------------------------------ *)
(* Crash-point replay, sampled, one stack at a time                    *)
(* ------------------------------------------------------------------ *)

let crash_smoke kind () =
  with_seed ~default:7 @@ fun seed ->
  let r =
    Check.Checker.run ~seed ~ops:60 ~stacks:[ kind ]
      ~mode:(Some (Check.Checker.Sample 8))
      ()
  in
  report_clean (Check.Stack.name kind ^ " crash smoke") r

(* ------------------------------------------------------------------ *)
(* Handcrafted traces: rename and symlink crash behaviour (every crash
   point enumerated, all three stacks)                                 *)
(* ------------------------------------------------------------------ *)

let check_handcrafted label ops =
  let trace = Check.Workload.of_ops ~seed:1 ops in
  List.iter
    (fun kind ->
      let r =
        Check.Checker.run_trace ~stacks:[ kind ]
          ~mode:(Some Check.Checker.All) trace
      in
      report_clean (label ^ " on " ^ Check.Stack.name kind) r)
    Check.Stack.all

let test_rename_crash_atomicity () =
  let open Check.Model in
  check_handcrafted "rename"
    [
      Mkdir "/a";
      Mkdir "/b";
      Create "/a/f";
      Write { path = "/a/f"; pos = 0; len = 5000 };
      Fsync "/a/f";
      Rename ("/a/f", "/b/g");
      Fsync "/b/g";
      (* replacing rename: the victim's inode must be freed cleanly *)
      Create "/b/h";
      Write { path = "/b/h"; pos = 0; len = 300 };
      Rename ("/b/h", "/b/g");
      Sync;
      Stat "/b/g";
      Readdir "/b";
    ]

let test_symlink_crash_behaviour () =
  let open Check.Model in
  check_handcrafted "symlink"
    [
      Create "/t";
      Write { path = "/t"; pos = 0; len = 1000 };
      Fsync "/t";
      Symlink { target = "/t"; link = "/l" };
      Sync;
      Readlink "/l";
      (* write through the link, then move the link itself *)
      Write { path = "/l"; pos = 1000; len = 500 };
      Fsync "/l";
      Rename ("/l", "/l2");
      Readlink "/l2";
      Unlink "/t" (* /l2 now dangles: still a legal namespace *);
      Sync;
      Readdir "/";
    ]

let test_scatter_batch_crash () =
  (* The log install and writepages paths now dispatch scattered home
     writes as one merged batch of concurrent device commands. Command
     hooks fire per command, so crash points fall *inside* a partially
     completed batch — some runs durable, some not. Interleaving writes
     to two files keeps their home blocks non-contiguous, guaranteeing
     multi-command batches; fsync/sync must still replay to a state the
     oracle accepts at every such point. *)
  let open Check.Model in
  check_handcrafted "mid-batch scatter crash"
    [
      Create "/a";
      Create "/b";
      Write { path = "/a"; pos = 0; len = 20000 };
      Write { path = "/b"; pos = 0; len = 20000 };
      Write { path = "/a"; pos = 20000; len = 20000 };
      Write { path = "/b"; pos = 20000; len = 20000 };
      Fsync "/a" (* commit: scatter install of interleaved blocks *);
      Fsync "/b";
      Write { path = "/a"; pos = 8192; len = 12000 } (* overwrite mid-file *);
      Write { path = "/b"; pos = 0; len = 4096 };
      Sync (* writepages flusher: concurrent multi-run dispatch *);
      Stat "/a";
      Stat "/b";
      Readdir "/";
    ]

(* ------------------------------------------------------------------ *)
(* Self-test: an injected ordering bug must produce a counterexample   *)
(* ------------------------------------------------------------------ *)

let test_inject_bug_is_caught () =
  let r =
    Check.Checker.run ~inject_bug:true ~seed:1 ~ops:60
      ~stacks:[ Check.Stack.Xv6 ]
      ~mode:(Some (Check.Checker.Sample 32))
      ()
  in
  Alcotest.(check bool) "injected bug reported" false
    (Check.Checker.report_ok r);
  (* the counterexample carries a crash point and an op window *)
  let v =
    List.concat_map
      (fun c -> c.Check.Checker.c_violations)
      r.Check.Checker.r_crashes
  in
  Alcotest.(check bool) "at least one violation" true (v <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "violation names ops" true
        (v.Check.Checker.v_ops <> []))
    v

(* ------------------------------------------------------------------ *)
(* Crash consistency under the file server: sessions with dirty        *)
(* write-lease caches, crash points mid-commit                         *)
(* ------------------------------------------------------------------ *)

let test_server_crash () =
  with_seed ~default:42 @@ fun seed ->
  let r = Check.Server_crash.run ~sessions:6 ~seed () in
  if not (Check.Server_crash.report_ok r) then
    Alcotest.failf "server crash check:\n%s"
      (Format.asprintf "%a" Check.Server_crash.pp_report r);
  Alcotest.(check int) "every session committed" 6 r.Check.Server_crash.s_committed_at_end;
  Alcotest.(check bool) "crash points captured" true
    (r.Check.Server_crash.s_points_captured > 0);
  (* the run must actually exercise mid-commit interleavings — points
     where some sessions had committed and others still held dirty
     caches — or the property is vacuous *)
  Alcotest.(check bool) "mid-commit points replayed" true
    (r.Check.Server_crash.s_points_mixed > 0)

let test_server_crash_inject_bug_is_caught () =
  let r = Check.Server_crash.run ~inject_bug:true ~sessions:4 ~seed:1 () in
  Alcotest.(check bool) "injected bug reported" false
    (Check.Server_crash.report_ok r)

(* ------------------------------------------------------------------ *)
(* CAS crash traces: mid-seal and mid-COW                              *)
(* ------------------------------------------------------------------ *)

(* The CAS layer has its own crash protocol (two-slot superblock, live
   state never overwritten) that the Model-op checker above cannot
   exercise, so these traces capture crash points by hand with the same
   device hook the checker uses, then replay each point — once with only
   the stable image (clean power cut) and once with the whole volatile
   cache applied (everything in flight made it) — and check the CAS
   oracle against the recovered mount. *)

let cas_blocks = 4096

let cas_tree () =
  ( [ "sub" ],
    [
      ("a.bin", payload ~seed:11 5000);
      ("sub/b.bin", payload ~seed:12 9000);
      ("c.bin", payload ~seed:11 5000) (* exact duplicate of a.bin *);
    ] )

type cas_point = {
  cpt_stable : (int * Bytes.t) array;
  cpt_volatile : (int * Bytes.t) list;
}

(** Run [setup] and make it durable, then run [mutate] with the command
    hook installed; return one crash point per write/flush boundary. *)
let cas_capture ~setup ~mutate : cas_point list =
  let points = ref [] in
  in_sim (fun machine ->
      let dev = Kernel.Machine.disk machine in
      ok (Bento.Bentofs.mkfs ~cas_blocks machine xv6_maker);
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false ~cas_blocks machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let store = Option.get (Kernel.Cas.of_machine machine) in
      setup os store;
      ok (Kernel.Os.sync os);
      Device.Ssd.flush dev;
      let cached_epoch = ref (-1) and cached_stable = ref [||] in
      let capture = function
        | Device.Ssd.Cmd_read -> ()
        | Device.Ssd.Cmd_write | Device.Ssd.Cmd_flush ->
            let epoch = Device.Ssd.stable_epoch dev in
            if !cached_epoch <> epoch then begin
              let acc = ref [] in
              Array.iteri
                (fun i o ->
                  match o with Some b -> acc := (i, b) :: !acc | None -> ())
                (Device.Ssd.crash_view dev);
              cached_stable := Array.of_list (List.rev !acc);
              cached_epoch := epoch
            end;
            points :=
              {
                cpt_stable = !cached_stable;
                cpt_volatile = Device.Ssd.volatile_view dev;
              }
              :: !points
      in
      Device.Ssd.set_command_hook dev (Some capture);
      mutate os store;
      Device.Ssd.set_command_hook dev None;
      Bento.Bentofs.unmount vfs handle);
  List.rev !points

(** Rebuild the crashed image on a fresh machine, mount (= CAS attach +
    log recovery), and hand [check] the recovered view. [volatile] also
    applies the in-flight cache, as if every outstanding write made it to
    media just before the cut. *)
let cas_replay (pt : cas_point) ~volatile check =
  in_sim (fun machine ->
      let dev = Kernel.Machine.disk machine in
      Array.iter
        (fun (blk, b) -> Device.Ssd.Offline.write dev blk b)
        pt.cpt_stable;
      if volatile then
        List.iter
          (fun (blk, b) -> Device.Ssd.Offline.write dev blk b)
          pt.cpt_volatile;
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false ~cas_blocks machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let store = Option.get (Kernel.Cas.of_machine machine) in
      check os store;
      Bento.Bentofs.unmount vfs handle)

let cas_read_file os path =
  let fd = ok (Kernel.Os.open_ os path Kernel.Os.rdonly) in
  let st = ok (Kernel.Os.fstat os fd) in
  let data = ok (Kernel.Os.pread os fd ~pos:0 ~len:st.Kernel.Vfs.st_size) in
  ok (Kernel.Os.close os fd);
  data

(* Crash at every command boundary inside seal_files. Oracle: the sealed
   manifest is all-or-nothing — recovery finds either no manifest (the
   old generation) or a complete one whose every block is durable and
   re-hashes to its key. *)
let test_cas_crash_mid_seal () =
  let dirs, files = cas_tree () in
  let points =
    cas_capture
      ~setup:(fun _ _ -> ())
      ~mutate:(fun _ store ->
        ignore (Kernel.Cas.seal_files store ~name:"mid-seal" ~dirs ~files : int))
  in
  Alcotest.(check bool) "captured crash points" true (List.length points > 2);
  let old_gen = ref 0 and sealed = ref 0 in
  List.iter
    (fun pt ->
      List.iter
        (fun volatile ->
          cas_replay pt ~volatile (fun _ store ->
              match Kernel.Cas.find_manifest store "mid-seal" with
              | None -> incr old_gen
              | Some mid ->
                  if not (Kernel.Cas.verify_manifest store mid) then
                    Alcotest.fail
                      "recovered manifest fails durability/hash verification";
                  Alcotest.(check int) "recovered manifest is whole"
                    (List.length files)
                    (Array.length (Kernel.Cas.manifest_files store mid));
                  incr sealed))
        [ false; true ])
    points;
  (* non-vacuity: the sweep must observe both sides of the commit point *)
  Alcotest.(check bool) "some crashes land before the seal commits" true
    (!old_gen > 0);
  Alcotest.(check bool) "some crashes land after the seal commits" true
    (!sealed > 0)

(* Crash at every command boundary inside a COW break: one page-aligned
   4 KB overwrite of a bound file, fsynced. Oracle: the victim reads back
   either the sealed bytes or the fully-written new bytes — never a mix,
   and never new bytes while the binding still stands (the unbind is only
   committed after the private copy is durable). The sibling tenant's
   alias must serve the sealed bytes at every crash point. *)
let test_cas_crash_mid_cow () =
  let dirs, files = cas_tree () in
  let victim = "/t0/sub/b.bin" in
  let old_b = List.assoc "sub/b.bin" files in
  let newpage = payload ~seed:99 4096 in
  let new_b = Bytes.copy old_b in
  Bytes.blit newpage 0 new_b 4096 4096;
  let points =
    cas_capture
      ~setup:(fun os store ->
        let mid = Kernel.Cas.seal_files store ~name:"mid-cow" ~dirs ~files in
        Kernel.Cas.instantiate store os ~mid ~root:"/t0";
        Kernel.Cas.instantiate store os ~mid ~root:"/t1")
      ~mutate:(fun os _ ->
        let fd = ok (Kernel.Os.open_ os victim Kernel.Os.wronly) in
        ignore (ok (Kernel.Os.pwrite os fd ~pos:4096 newpage) : int);
        ok (Kernel.Os.fsync os fd);
        ok (Kernel.Os.close os fd))
  in
  Alcotest.(check bool) "captured crash points" true (List.length points > 2);
  let olds = ref 0 and news = ref 0 and bound_old = ref 0 in
  List.iter
    (fun pt ->
      List.iter
        (fun volatile ->
          cas_replay pt ~volatile (fun os store ->
              let got = cas_read_file os victim in
              let ino = (ok (Kernel.Os.stat os victim)).Kernel.Vfs.st_ino in
              let bound = Kernel.Cas.binding_of store ino <> None in
              if Bytes.equal got old_b then begin
                incr olds;
                if bound then incr bound_old
              end
              else if Bytes.equal got new_b then begin
                incr news;
                if bound then
                  Alcotest.fail
                    "private COW content served while the binding still stands"
              end
              else
                Alcotest.fail
                  "torn COW: victim is neither the sealed content nor the \
                   fully-written copy";
              Alcotest.(check bytes) "sibling tenant still sealed" old_b
                (cas_read_file os "/t1/sub/b.bin")))
        [ false; true ])
    points;
  Alcotest.(check bool) "some crashes preserve the sealed content" true
    (!olds > 0);
  Alcotest.(check bool) "some crashes land after the write is durable" true
    (!news > 0);
  Alcotest.(check bool) "the still-bound old state was observed" true
    (!bound_old > 0)

(* ------------------------------------------------------------------ *)
(* Crash mid pushdown-walk-resubmission. Walks are reads: a workload
   crashed while a concurrent completion fiber chases index blocks must
   produce exactly the durability states of the same workload without
   the walker (the command hook ignores Cmd_read), and at every crash
   point — clean or torn — the index stays intact and walkable and the
   mutated file is old-or-new per block, never garbage.               *)

let pd_fanout_bits = Workloads.Pushdown_bench.walk_fanout_bits
let pd_depth = Workloads.Pushdown_bench.walk_depth
let pd_block i = payload ~seed:(100 + i) 4096
let pd_nwrites = 8

(** Build a durable index, then run the pwrite+fsync mutation loop with
    the command hook installed — with or without a concurrent walker
    fiber. Returns the crash points plus the index root and keys. *)
let pushdown_capture ~with_walker :
    cas_point list * int * int64 array =
  let points = ref [] in
  let root = ref 0 and keys = ref [||] in
  in_sim (fun machine ->
      let dev = Kernel.Machine.disk machine in
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      let ix =
        Workloads.Pushdown_bench.build_index os ~path:"/idx"
          ~fanout_bits:pd_fanout_bits ~depth:pd_depth ~nkeys:8 ~seed:21
      in
      root := ix.Workloads.Pushdown_bench.ix_root_dev;
      keys := ix.Workloads.Pushdown_bench.ix_keys;
      let r = Kernel.Pushdown.registry machine in
      let cap = Kernel.Pushdown.grant r ~client:"checker" in
      Result.get_ok
        (Kernel.Pushdown.register r ~cap ~name:"wlk"
           (Kernel.Pushdown.Extent_walk
              { fanout_bits = pd_fanout_bits; depth = pd_depth }));
      let fd = ok (Kernel.Os.open_ os "/data" Kernel.Os.(creat rdwr)) in
      ok (Kernel.Os.sync os);
      Device.Ssd.flush dev;
      let cached_epoch = ref (-1) and cached_stable = ref [||] in
      let capture = function
        | Device.Ssd.Cmd_read -> ()
        | Device.Ssd.Cmd_write | Device.Ssd.Cmd_flush ->
            let epoch = Device.Ssd.stable_epoch dev in
            if !cached_epoch <> epoch then begin
              let acc = ref [] in
              Array.iteri
                (fun i o ->
                  match o with Some b -> acc := (i, b) :: !acc | None -> ())
                (Device.Ssd.crash_view dev);
              cached_stable := Array.of_list (List.rev !acc);
              cached_epoch := epoch
            end;
            points :=
              {
                cpt_stable = !cached_stable;
                cpt_volatile = Device.Ssd.volatile_view dev;
              }
              :: !points
      in
      Device.Ssd.set_command_hook dev (Some capture);
      let stop = ref false in
      let walker_done = Sim.Sync.Semaphore.create 0 in
      let walks = ref 0 in
      if with_walker then
        Kernel.Machine.spawn ~name:"walker" machine (fun () ->
            let rng = Sim.Rng.create 77 in
            let n = Array.length !keys in
            while not !stop do
              let key = !keys.(Sim.Rng.int rng n) in
              let v = ok (Kernel.Os.pushdown_walk os ~prog:"wlk" ~root:!root ~key) in
              assert (Bytes.get_int64_le v 0 = key);
              incr walks
            done;
            Sim.Sync.Semaphore.release walker_done);
      for i = 0 to pd_nwrites - 1 do
        ignore (ok (Kernel.Os.pwrite os fd ~pos:(i * 4096) (pd_block i)) : int);
        ok (Kernel.Os.fsync os fd)
      done;
      stop := true;
      if with_walker then begin
        Sim.Sync.Semaphore.acquire walker_done;
        Alcotest.(check bool) "walker actually walked" true (!walks > 0)
      end;
      Device.Ssd.set_command_hook dev None;
      ok (Kernel.Os.close os fd);
      Bento.Bentofs.unmount vfs handle);
  (List.rev !points, !root, !keys)

let pushdown_replay (pt : cas_point) ~volatile check =
  in_sim (fun machine ->
      let dev = Kernel.Machine.disk machine in
      Array.iter
        (fun (blk, b) -> Device.Ssd.Offline.write dev blk b)
        pt.cpt_stable;
      if volatile then
        List.iter
          (fun (blk, b) -> Device.Ssd.Offline.write dev blk b)
          pt.cpt_volatile;
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false machine xv6_maker)
      in
      let os = Kernel.Os.create vfs in
      check machine os;
      Bento.Bentofs.unmount vfs handle)

let test_pushdown_walk_crash () =
  let baseline, _, _ = pushdown_capture ~with_walker:false in
  let walked, root, keys = pushdown_capture ~with_walker:true in
  Alcotest.(check bool) "captured crash points" true
    (List.length baseline > 2);
  (* walks are reads: the walker adds NO durability states *)
  Alcotest.(check int) "same number of durability states"
    (List.length baseline) (List.length walked);
  List.iter2
    (fun (b : cas_point) (w : cas_point) ->
      Alcotest.(check bool) "identical stable state" true
        (b.cpt_stable = w.cpt_stable);
      Alcotest.(check bool) "identical volatile state" true
        (b.cpt_volatile = w.cpt_volatile))
    baseline walked;
  let zeros = Bytes.make 4096 '\000' in
  List.iter
    (fun pt ->
      List.iter
        (fun volatile ->
          pushdown_replay pt ~volatile (fun machine os ->
              (* the index is intact and walkable at every crash point *)
              let r = Kernel.Pushdown.registry machine in
              let cap = Kernel.Pushdown.grant r ~client:"replay" in
              Result.get_ok
                (Kernel.Pushdown.register r ~cap ~name:"wlk"
                   (Kernel.Pushdown.Extent_walk
                      { fanout_bits = pd_fanout_bits; depth = pd_depth }));
              Array.iter
                (fun key ->
                  let v =
                    ok (Kernel.Os.pushdown_walk os ~prog:"wlk" ~root ~key)
                  in
                  Alcotest.(check int64) "index value survives" key
                    (Bytes.get_int64_le v 0))
                keys;
              (* the mutated file is old-or-new per fsynced block *)
              let st = ok (Kernel.Os.stat os "/data") in
              let fd = ok (Kernel.Os.open_ os "/data" Kernel.Os.rdonly) in
              for i = 0 to (st.Kernel.Vfs.st_size / 4096) - 1 do
                let b =
                  ok (Kernel.Os.pread os fd ~pos:(i * 4096) ~len:4096)
                in
                if not (Bytes.equal b (pd_block i) || Bytes.equal b zeros)
                then Alcotest.failf "torn block %d after replay" i
              done;
              ok (Kernel.Os.close os fd)))
        [ false; true ])
    walked

let suite =
  [
    tc "oracle errnos" `Quick test_oracle_errnos;
    tc "differential smoke (all stacks)" `Quick test_differential_smoke;
    tc "crash smoke xv6" `Quick (crash_smoke Check.Stack.Xv6);
    tc "crash smoke fuse" `Quick (crash_smoke Check.Stack.Fuse);
    tc "crash smoke ext4" `Quick (crash_smoke Check.Stack.Ext4);
    tc "rename crash atomicity" `Quick test_rename_crash_atomicity;
    tc "symlink crash behaviour" `Quick test_symlink_crash_behaviour;
    tc "mid-batch scatter crash" `Quick test_scatter_batch_crash;
    tc "injected bug is caught" `Quick test_inject_bug_is_caught;
    tc "server crash: committed durable, dirty caches legal" `Quick
      test_server_crash;
    tc "server crash: injected bug is caught" `Quick
      test_server_crash_inject_bug_is_caught;
    tc "cas crash mid-seal: manifest all-or-nothing" `Quick
      test_cas_crash_mid_seal;
    tc "cas crash mid-cow: old xor new, never a mix" `Quick
      test_cas_crash_mid_cow;
    tc "pushdown walk crash: reads add no durability states" `Quick
      test_pushdown_walk_crash;
  ]
