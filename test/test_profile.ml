(** Tests of the virtual-time profiler: frame semantics on a bare engine,
    and the conservation law — every virtual nanosecond of a run is
    attributed to exactly one folded stack, so the per-layer self times
    sum to the elapsed window — on all three file-system stacks. Also
    checks the paper's headline explanatory counter: FUSE crossings equal
    the transport's request + reply message count. *)

let tc = Alcotest.test_case
let ok = Kernel.Errno.ok_exn

(* ------------------------------------------------------------------ *)
(* Frame semantics on a bare engine.                                   *)

let test_frames_basic () =
  let e = Sim.Engine.create () in
  let p = Sim.Profile.create e in
  Sim.Profile.enable p;
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Profile.with_frame p "vfs" (fun () ->
             Sim.Engine.sleep 100L;
             (* re-entering the top layer must not stack "vfs;vfs" *)
             Sim.Profile.with_frame p "vfs" (fun () -> Sim.Engine.sleep 50L);
             Sim.Profile.with_frame p "bcache" (fun () ->
                 Sim.Engine.sleep 25L))));
  Sim.Engine.run e;
  Alcotest.(check (list (pair string int64)))
    "folded stacks"
    [ ("vfs", 150L); ("vfs;bcache", 25L) ]
    (Sim.Profile.folded p);
  Alcotest.(check int64) "attributed = elapsed" (Sim.Profile.elapsed p)
    (Sim.Profile.attributed p);
  let summary = Sim.Profile.summary p in
  let find l =
    match List.find_opt (fun lt -> lt.Sim.Profile.layer = l) summary with
    | Some lt -> lt
    | None -> Alcotest.failf "layer %s missing from summary" l
  in
  Alcotest.(check int64) "vfs self" 150L (find "vfs").Sim.Profile.self_ns;
  Alcotest.(check int64) "vfs total" 175L (find "vfs").Sim.Profile.total_ns;
  Alcotest.(check int64) "bcache self" 25L (find "bcache").Sim.Profile.self_ns

let test_idle_attribution () =
  (* time advanced with no runnable fiber (run_until past the last event)
     and time in a frameless fiber both land in "idle" *)
  let e = Sim.Engine.create () in
  let p = Sim.Profile.create e in
  Sim.Profile.enable p;
  ignore (Sim.Engine.spawn e (fun () -> Sim.Engine.sleep 40L));
  Sim.Engine.run_until e 100L;
  Alcotest.(check (list (pair string int64)))
    "all idle"
    [ ("idle", 100L) ]
    (Sim.Profile.folded p);
  Alcotest.(check int64) "conserved" (Sim.Profile.elapsed p)
    (Sim.Profile.attributed p)

let test_disabled_is_free () =
  let e = Sim.Engine.create () in
  let p = Sim.Profile.create e in
  ignore
    (Sim.Engine.spawn e (fun () ->
         Sim.Profile.with_frame p "vfs" (fun () -> Sim.Engine.sleep 10L)));
  Sim.Engine.run e;
  Alcotest.(check (list (pair string int64))) "nothing recorded" []
    (Sim.Profile.folded p)

let test_lock_wait_attribution () =
  (* Contended-lock time is reported per "<layer>/<lock>", keyed by the
     layer the *blocked* fiber was in, and stays out of the self-time
     attribution — blocked time overlaps other fibers' running time, so
     counting it would break the conservation law. *)
  let e = Sim.Engine.create () in
  let p = Sim.Profile.create e in
  Sim.Profile.enable p;
  let m = Sim.Sync.Mutex.create ~name:"biglock" () in
  ignore
    (Sim.Engine.spawn ~name:"holder" e (fun () ->
         Sim.Profile.with_frame p "log" (fun () ->
             Sim.Sync.Mutex.with_lock m (fun () -> Sim.Engine.sleep 100L))));
  ignore
    (Sim.Engine.spawn ~name:"waiter" e (fun () ->
         Sim.Profile.with_frame p "fs" (fun () ->
             Sim.Sync.Mutex.with_lock m (fun () -> Sim.Engine.sleep 10L))));
  Sim.Engine.run e;
  Alcotest.(check (list (pair string int64)))
    "blocked time keyed by the blocked fiber's layer"
    [ ("fs/biglock", 100L) ]
    (Sim.Profile.lock_waits p);
  Alcotest.(check int64) "waits stay out of attributed time"
    (Sim.Profile.elapsed p) (Sim.Profile.attributed p)

(* ------------------------------------------------------------------ *)
(* Conservation on the real stacks.                                    *)

(* A small mixed workload on [kind] with the profiler enabled for the
   whole machine run (mkfs, mount, ops, unmount). *)
let run_profiled kind =
  let machine =
    Kernel.Machine.create ~disk_blocks:65536 ~block_size:4096 ()
  in
  let p = Kernel.Machine.profile machine in
  Sim.Profile.enable p;
  Kernel.Machine.spawn machine (fun () ->
      Check.Stack.mkfs kind machine;
      let m = Check.Stack.mount kind machine in
      let os = m.Check.Stack.os in
      ok (Kernel.Os.mkdir os "/d");
      for i = 0 to 19 do
        let path = Printf.sprintf "/d/f%d" i in
        ok (Kernel.Os.write_file os path (Bytes.make 8192 'p'));
        ignore (ok (Kernel.Os.read_file os path))
      done;
      ok (Kernel.Os.sync os);
      m.Check.Stack.unmount ());
  Kernel.Machine.run machine;
  Sim.Profile.disable p;
  (machine, p)

let layer_names p =
  List.map (fun lt -> lt.Sim.Profile.layer) (Sim.Profile.summary p)

let check_conservation kind =
  let _machine, p = run_profiled kind in
  let elapsed = Sim.Profile.elapsed p in
  if Int64.compare elapsed 0L <= 0 then
    Alcotest.failf "%s: run consumed no virtual time" (Check.Stack.name kind);
  Alcotest.(check int64)
    (Check.Stack.name kind ^ ": attributed = elapsed")
    elapsed (Sim.Profile.attributed p);
  let sum_self =
    List.fold_left
      (fun acc lt -> Int64.add acc lt.Sim.Profile.self_ns)
      0L (Sim.Profile.summary p)
  in
  Alcotest.(check int64)
    (Check.Stack.name kind ^ ": summary self sums to elapsed")
    elapsed sum_self;
  let sum_folded =
    List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L
      (Sim.Profile.folded p)
  in
  Alcotest.(check int64)
    (Check.Stack.name kind ^ ": folded sums to elapsed")
    elapsed sum_folded;
  let layers = layer_names p in
  List.iter
    (fun l ->
      if not (List.mem l layers) then
        Alcotest.failf "%s: expected layer %s in summary (got %s)"
          (Check.Stack.name kind) l
          (String.concat ", " layers))
    [ "vfs"; "device-io" ]

let test_conservation_xv6 () = check_conservation Check.Stack.Xv6
let test_conservation_ext4 () = check_conservation Check.Stack.Ext4

let test_conservation_fuse () =
  check_conservation Check.Stack.Fuse;
  let machine, p = run_profiled Check.Stack.Fuse in
  (* FUSE runs must show transport time, and the machine-wide crossing
     counter must equal the transport's message count *)
  if not (List.mem "fuse-transport" (layer_names p)) then
    Alcotest.fail "fuse run has no fuse-transport layer";
  let counters = Kernel.Machine.counter_snapshot machine in
  let c name =
    match List.assoc_opt name counters with
    | Some v -> v
    | None -> Alcotest.failf "counter %s missing from snapshot" name
  in
  let crossings = c "machine.fuse_crossings" in
  if Int64.compare crossings 0L <= 0 then
    Alcotest.fail "no FUSE crossings counted";
  Alcotest.(check int64) "crossings = requests + replies"
    (Int64.add (c "fuse.requests") (c "fuse.replies"))
    crossings

let test_non_fuse_has_no_crossings () =
  let machine, _p = run_profiled Check.Stack.Xv6 in
  let counters = Kernel.Machine.counter_snapshot machine in
  Alcotest.(check int64) "kernel stack crosses zero times" 0L
    (Option.value ~default:0L
       (List.assoc_opt "machine.fuse_crossings" counters))

let suite =
  [
    tc "frames: dedup, nesting, folded output" `Quick test_frames_basic;
    tc "frames: idle attribution" `Quick test_idle_attribution;
    tc "frames: disabled profiler records nothing" `Quick
      test_disabled_is_free;
    tc "lock-wait attribution" `Quick test_lock_wait_attribution;
    tc "conservation: xv6 (BentoFS)" `Quick test_conservation_xv6;
    tc "conservation: fuse + crossing count" `Quick test_conservation_fuse;
    tc "conservation: ext4 (jbd2)" `Quick test_conservation_ext4;
    tc "kernel stacks have zero fuse crossings" `Quick
      test_non_fuse_has_no_crossings;
  ]
