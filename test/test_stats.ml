(** Tests of the stats registry: the log-bucketed histogram's percentile
    math and the iteration entry points the bench harness dumps through. *)

let tc = Alcotest.test_case

module H = Sim.Stats.Histogram

let test_histogram_exact_small () =
  (* Values below 32 land in exact single-value buckets, so percentiles of
     a tiny distribution are exact. *)
  let h = H.create "small" in
  List.iter (fun v -> H.record h (Int64.of_int v)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check int64) "p25" 1L (H.percentile h 25.0);
  Alcotest.(check int64) "p50" 2L (H.percentile h 50.0);
  Alcotest.(check int64) "p75" 3L (H.percentile h 75.0);
  Alcotest.(check int64) "p100" 4L (H.percentile h 100.0);
  Alcotest.(check int64) "min" 1L (H.min_ns h);
  Alcotest.(check int64) "max" 4L (H.max_ns h);
  Alcotest.(check int64) "total" 10L (H.total h)

(* The bucketing uses 16 sub-buckets per power of two, so any quantile of
   any distribution is over-reported by at most one bucket width: under
   100%/16 = 6.25%, plus the clamp to the observed max. *)
let check_quantile h ~name ~exact q =
  let p = Int64.to_float (H.percentile h q) in
  let lo = float_of_int exact in
  let hi = lo *. (1.0 +. 1.0 /. 16.0) in
  if p < lo || p > hi then
    Alcotest.failf "%s: p%.0f = %.0f outside [%.0f, %.1f]" name q p lo hi

let test_histogram_uniform_percentiles () =
  let h = H.create "uniform" in
  for v = 1 to 1000 do
    H.record h (Int64.of_int v)
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  check_quantile h ~name:"uniform" ~exact:500 50.0;
  check_quantile h ~name:"uniform" ~exact:900 90.0;
  check_quantile h ~name:"uniform" ~exact:990 99.0;
  Alcotest.(check int64) "max exact" 1000L (H.max_ns h);
  (* p100 clamps to the observed max, not the bucket boundary *)
  Alcotest.(check int64) "p100 = max" 1000L (H.percentile h 100.0)

let test_histogram_point_mass () =
  (* All mass on one large value: every percentile reports the same bucket,
     within the relative-error bound, and never below the true value. *)
  let h = H.create "point" in
  for _ = 1 to 100 do
    H.record h 123_456L
  done;
  List.iter
    (fun q ->
      let p = H.percentile h q in
      if Int64.compare p 123_456L < 0 then
        Alcotest.failf "p%.0f = %Ld under-reports" q p;
      check_quantile h ~name:"point" ~exact:123_456 q)
    [ 1.0; 50.0; 99.0; 100.0 ]

let test_histogram_buckets_sum () =
  let h = H.create "sum" in
  let n = 500 in
  for i = 1 to n do
    H.record h (Int64.of_int (i * i * 37))
  done;
  let total = ref 0 in
  let last_hi = ref (-1L) in
  H.iter_buckets h (fun ~lo ~hi ~count ->
      total := !total + count;
      if Int64.compare lo !last_hi <= 0 then
        Alcotest.failf "bucket [%Ld,%Ld] not increasing" lo hi;
      if Int64.compare hi lo < 0 then Alcotest.failf "empty range";
      last_hi := hi);
  Alcotest.(check int) "bucket counts sum to total" n !total

let test_histogram_reset () =
  let h = H.create "reset" in
  H.record h 99L;
  H.reset h;
  Alcotest.(check int) "count cleared" 0 (H.count h);
  H.record h 7L;
  Alcotest.(check int64) "usable after reset" 7L (H.percentile h 100.0)

let test_registry_iteration () =
  let s = Sim.Stats.create () in
  Sim.Stats.Counter.incr (Sim.Stats.counter s "b_counter");
  Sim.Stats.Latency.record (Sim.Stats.latency s "z_lat") 10L;
  Sim.Stats.Latency.record (Sim.Stats.latency s "a_lat") 20L;
  H.record (Sim.Stats.histogram s "m_hist") 30L;
  H.record (Sim.Stats.histogram s "c_hist") 40L;
  let lats = ref [] in
  Sim.Stats.iter_latencies s (fun name _ -> lats := name :: !lats);
  Alcotest.(check (list string)) "latencies sorted" [ "a_lat"; "z_lat" ]
    (List.rev !lats);
  let hists = ref [] in
  Sim.Stats.iter_histograms s (fun name h ->
      hists := (name, H.count h) :: !hists);
  Alcotest.(check (list (pair string int)))
    "histograms sorted, find-or-create shared"
    [ ("c_hist", 1); ("m_hist", 1) ]
    (List.rev !hists);
  (* find-or-create returns the same object *)
  H.record (Sim.Stats.histogram s "m_hist") 50L;
  Alcotest.(check int) "same histogram" 2
    (H.count (Sim.Stats.histogram s "m_hist"));
  Sim.Stats.reset s;
  Alcotest.(check int) "registry reset clears histograms" 0
    (H.count (Sim.Stats.histogram s "m_hist"))

let suite =
  [
    tc "histogram: exact below 32" `Quick test_histogram_exact_small;
    tc "histogram: uniform percentiles" `Quick
      test_histogram_uniform_percentiles;
    tc "histogram: point mass" `Quick test_histogram_point_mass;
    tc "histogram: buckets sum and order" `Quick test_histogram_buckets_sum;
    tc "histogram: reset" `Quick test_histogram_reset;
    tc "registry: iteration and reset" `Quick test_registry_iteration;
  ]
