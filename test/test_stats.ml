(** Tests of the stats registry: the log-bucketed histogram's percentile
    math and the iteration entry points the bench harness dumps through. *)

let tc = Alcotest.test_case

module H = Sim.Stats.Histogram

let test_histogram_exact_small () =
  (* Values below 32 land in exact single-value buckets, so percentiles of
     a tiny distribution are exact. *)
  let h = H.create "small" in
  List.iter (fun v -> H.record h (Int64.of_int v)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check int64) "p25" 1L (H.percentile h 25.0);
  Alcotest.(check int64) "p50" 2L (H.percentile h 50.0);
  Alcotest.(check int64) "p75" 3L (H.percentile h 75.0);
  Alcotest.(check int64) "p100" 4L (H.percentile h 100.0);
  Alcotest.(check int64) "min" 1L (H.min_ns h);
  Alcotest.(check int64) "max" 4L (H.max_ns h);
  Alcotest.(check int64) "total" 10L (H.total h)

(* The bucketing uses 16 sub-buckets per power of two, so any quantile of
   any distribution is over-reported by at most one bucket width: under
   100%/16 = 6.25%, plus the clamp to the observed max. *)
let check_quantile h ~name ~exact q =
  let p = Int64.to_float (H.percentile h q) in
  let lo = float_of_int exact in
  let hi = lo *. (1.0 +. 1.0 /. 16.0) in
  if p < lo || p > hi then
    Alcotest.failf "%s: p%.0f = %.0f outside [%.0f, %.1f]" name q p lo hi

let test_histogram_uniform_percentiles () =
  let h = H.create "uniform" in
  for v = 1 to 1000 do
    H.record h (Int64.of_int v)
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  check_quantile h ~name:"uniform" ~exact:500 50.0;
  check_quantile h ~name:"uniform" ~exact:900 90.0;
  check_quantile h ~name:"uniform" ~exact:990 99.0;
  Alcotest.(check int64) "max exact" 1000L (H.max_ns h);
  (* p100 clamps to the observed max, not the bucket boundary *)
  Alcotest.(check int64) "p100 = max" 1000L (H.percentile h 100.0)

let test_histogram_point_mass () =
  (* All mass on one large value: every percentile reports the same bucket,
     within the relative-error bound, and never below the true value. *)
  let h = H.create "point" in
  for _ = 1 to 100 do
    H.record h 123_456L
  done;
  List.iter
    (fun q ->
      let p = H.percentile h q in
      if Int64.compare p 123_456L < 0 then
        Alcotest.failf "p%.0f = %Ld under-reports" q p;
      check_quantile h ~name:"point" ~exact:123_456 q)
    [ 1.0; 50.0; 99.0; 100.0 ]

let test_histogram_buckets_sum () =
  let h = H.create "sum" in
  let n = 500 in
  for i = 1 to n do
    H.record h (Int64.of_int (i * i * 37))
  done;
  let total = ref 0 in
  let last_hi = ref (-1L) in
  H.iter_buckets h (fun ~lo ~hi ~count ->
      total := !total + count;
      if Int64.compare lo !last_hi <= 0 then
        Alcotest.failf "bucket [%Ld,%Ld] not increasing" lo hi;
      if Int64.compare hi lo < 0 then Alcotest.failf "empty range";
      last_hi := hi);
  Alcotest.(check int) "bucket counts sum to total" n !total

let test_histogram_reset () =
  let h = H.create "reset" in
  H.record h 99L;
  H.reset h;
  Alcotest.(check int) "count cleared" 0 (H.count h);
  H.record h 7L;
  Alcotest.(check int64) "usable after reset" 7L (H.percentile h 100.0)

let test_registry_iteration () =
  let s = Sim.Stats.create () in
  Sim.Stats.Counter.incr (Sim.Stats.counter s "b_counter");
  Sim.Stats.Latency.record (Sim.Stats.latency s "z_lat") 10L;
  Sim.Stats.Latency.record (Sim.Stats.latency s "a_lat") 20L;
  H.record (Sim.Stats.histogram s "m_hist") 30L;
  H.record (Sim.Stats.histogram s "c_hist") 40L;
  let lats = ref [] in
  Sim.Stats.iter_latencies s (fun name _ -> lats := name :: !lats);
  Alcotest.(check (list string)) "latencies sorted" [ "a_lat"; "z_lat" ]
    (List.rev !lats);
  let hists = ref [] in
  Sim.Stats.iter_histograms s (fun name h ->
      hists := (name, H.count h) :: !hists);
  Alcotest.(check (list (pair string int)))
    "histograms sorted, find-or-create shared"
    [ ("c_hist", 1); ("m_hist", 1) ]
    (List.rev !hists);
  (* find-or-create returns the same object *)
  H.record (Sim.Stats.histogram s "m_hist") 50L;
  Alcotest.(check int) "same histogram" 2
    (H.count (Sim.Stats.histogram s "m_hist"));
  Sim.Stats.reset s;
  Alcotest.(check int) "registry reset clears histograms" 0
    (H.count (Sim.Stats.histogram s "m_hist"))

(* ------------------------------------------------------------------ *)
(* Percentile edge behaviour, property-tested: for any sample set,
   p0 = min, p100 = max, and percentile is monotone in q. p0 = min is the
   interesting one — the rank-1 bucket's upper bound can exceed the
   smallest sample (e.g. a single sample of 32 lands in [32..33]), so p0
   must clamp to the observed minimum, not report the bucket bound. *)

let samples_gen =
  QCheck.(list_of_size Gen.(int_range 1 64) (map Int64.of_int (int_bound 5_000_000)))

let with_histogram samples =
  let h = H.create "prop" in
  List.iter (H.record h) samples;
  h

let prop_percentile_bounds =
  QCheck.Test.make ~count:300 ~name:"percentile: p0 = min, p100 = max"
    samples_gen (fun samples ->
      QCheck.assume (samples <> []);
      let h = with_histogram samples in
      let lo = List.fold_left min (List.hd samples) samples in
      let hi = List.fold_left max (List.hd samples) samples in
      H.percentile h 0.0 = lo && H.percentile h 100.0 = hi)

let prop_percentile_monotone =
  QCheck.Test.make ~count:300 ~name:"percentile: monotone in q" samples_gen
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = with_histogram samples in
      let qs = [ 0.0; 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let ps = List.map (H.percentile h) qs in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) ->
            Int64.compare a b <= 0 && nondecreasing rest
        | _ -> true
      in
      nondecreasing ps)

let test_percentile_single_sample () =
  (* the original defect: one sample of 32 lives in bucket [32..33], and
     p0 used to report the bucket's upper bound 33 *)
  let h = H.create "one" in
  H.record h 32L;
  Alcotest.(check int64) "p0 = the sample" 32L (H.percentile h 0.0);
  Alcotest.(check int64) "p100 = the sample" 32L (H.percentile h 100.0);
  Alcotest.(check int64) "empty histogram p50 = 0" 0L
    (H.percentile (H.create "empty") 50.0)

let suite =
  [
    tc "histogram: exact below 32" `Quick test_histogram_exact_small;
    tc "histogram: single-sample percentile edges" `Quick
      test_percentile_single_sample;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    tc "histogram: uniform percentiles" `Quick
      test_histogram_uniform_percentiles;
    tc "histogram: point mass" `Quick test_histogram_point_mass;
    tc "histogram: buckets sum and order" `Quick test_histogram_buckets_sum;
    tc "histogram: reset" `Quick test_histogram_reset;
    tc "registry: iteration and reset" `Quick test_registry_iteration;
  ]
