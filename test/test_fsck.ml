(** fsck tests and randomised crash-injection: after any power failure, log
    recovery must hand back a consistent file system with all fsynced data
    intact. *)

open Helpers

let tc = Alcotest.test_case

let fsck_ok machine label =
  let r = Xv6fs.Fsck.check_device (Kernel.Machine.disk machine) in
  if not (Xv6fs.Fsck.ok r) then
    Alcotest.failf "%s: fsck errors: %s" label
      (String.concat " | " r.Xv6fs.Fsck.errors)

let test_fresh_fs_is_clean () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let r = Xv6fs.Fsck.check_device (Kernel.Machine.disk machine) in
      Alcotest.(check (list string)) "no errors" [] r.Xv6fs.Fsck.errors;
      Alcotest.(check int) "no files yet" 0 r.Xv6fs.Fsck.files;
      Alcotest.(check int) "root dir" 1 r.Xv6fs.Fsck.directories)

let test_populated_fs_is_clean () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/a");
      ok (Kernel.Os.mkdir os "/a/b");
      for i = 0 to 30 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/a/f%d" i)
             (payload (4096 * (1 + (i mod 5)))))
      done;
      ok (Kernel.Os.link os "/a/f0" "/a/b/alias");
      ok (Kernel.Os.unlink os "/a/f1");
      ok (Kernel.Os.rename os "/a/f2" "/a/b/moved");
      Bento.Bentofs.unmount vfs h;
      let r = Xv6fs.Fsck.check_device (Kernel.Machine.disk machine) in
      Alcotest.(check (list string)) "no errors" [] r.Xv6fs.Fsck.errors;
      Alcotest.(check int) "files" 30 r.Xv6fs.Fsck.files;
      Alcotest.(check int) "dirs" 3 r.Xv6fs.Fsck.directories)

let test_fsck_detects_corruption () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/f" (payload 16384));
      Bento.Bentofs.unmount vfs h;
      (* corrupt: clear a bitmap bit that should be set *)
      let dev = Kernel.Machine.disk machine in
      let sb =
        match Xv6fs.Layout.get_superblock (Device.Ssd.Offline.read dev 1) with
        | Ok sb -> sb
        | Error e -> Alcotest.fail e
      in
      let bm_block = sb.Xv6fs.Layout.bmapstart in
      let bm = Device.Ssd.Offline.read dev bm_block in
      (* root dir block bit: first data block *)
      let bit = sb.Xv6fs.Layout.datastart mod (4096 * 8) in
      let byte = Char.code (Bytes.get bm (bit / 8)) in
      Bytes.set bm (bit / 8) (Char.chr (byte land lnot (1 lsl (bit mod 8))));
      Device.Ssd.Offline.write dev bm_block bm;
      let r = Xv6fs.Fsck.check_device dev in
      Alcotest.(check bool) "corruption detected" false (Xv6fs.Fsck.ok r))

(* Randomised crash injection: apply random ops, crash with partial write
   survival, remount (log recovery), verify fsck-clean + fsynced data. *)
let crash_trial seed =
  let result = ref true in
  in_sim ~disk_blocks:32768 (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      let rng = Sim.Rng.create seed in
      let synced : (string * Bytes.t) list ref = ref [] in
      let live_files = ref [] in
      for step = 0 to 39 do
        let p = Sim.Rng.int rng 100 in
        if p < 40 then begin
          (* create + write; sometimes fsync and remember the contents *)
          let path = Printf.sprintf "/f%d" step in
          let data = payload ~seed:(seed + step) (512 + Sim.Rng.int rng 20000) in
          let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
          ignore (ok (Kernel.Os.pwrite os fd ~pos:0 data));
          if Sim.Rng.bool rng then begin
            ok (Kernel.Os.fsync os fd);
            synced := (path, data) :: List.remove_assoc path !synced
          end;
          ok (Kernel.Os.close os fd);
          live_files := path :: !live_files
        end
        else if p < 55 then begin
          match !live_files with
          | f :: rest ->
              (match Kernel.Os.unlink os f with Ok () | Error _ -> ());
              synced := List.remove_assoc f !synced;
              live_files := rest
          | [] -> ()
        end
        else if p < 70 then
          ok (Kernel.Os.mkdir os (Printf.sprintf "/d%d" step))
        else if p < 80 then ok (Kernel.Os.sync os)
        else begin
          match !live_files with
          | f :: _ ->
              let fd = ok (Kernel.Os.open_ os f Kernel.Os.(appendf wronly)) in
              ignore (ok (Kernel.Os.write os fd (payload ~seed:step 2048)));
              ok (Kernel.Os.close os fd);
              (* content changed after its fsync: no longer an oracle *)
              synced := List.remove_assoc f !synced
          | [] -> ()
        end
      done;
      (* power failure with random partial survival of volatile writes *)
      Device.Ssd.crash ~survive:(Sim.Rng.float rng) ~rng (Kernel.Machine.disk machine)
      [@warning "-9"];
      (* remount: log recovery runs *)
      let vfs2, h2 = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os2 = Kernel.Os.create vfs2 in
      (* every fsynced file must be intact *)
      List.iter
        (fun (path, data) ->
          match Kernel.Os.read_file os2 path with
          | Ok got ->
              if not (Bytes.equal got data) then begin
                Printf.eprintf "crash_trial %d: %s content mismatch\n" seed path;
                result := false
              end
          | Error e ->
              Printf.eprintf "crash_trial %d: %s lost (%s)\n" seed path
                (Kernel.Errno.to_string e);
              result := false)
        !synced;
      Bento.Bentofs.unmount vfs2 h2;
      (* the recovered, cleanly unmounted image must be consistent *)
      let r = Xv6fs.Fsck.check_device (Kernel.Machine.disk machine) in
      if not (Xv6fs.Fsck.ok r) then begin
        Printf.eprintf "crash_trial %d: fsck: %s\n" seed
          (String.concat " | " r.Xv6fs.Fsck.errors);
        result := false
      end;
      ignore (vfs, h));
  !result

let prop_crash_recovery =
  QCheck.Test.make ~count:25 ~name:"random crash: fsynced data survives, fs consistent"
    QCheck.(int_bound 10_000)
    (fun seed -> crash_trial seed)

(* pinned rerun of a single trial: reproduce a QCheck counterexample with
   BENTO_SEED=n without waiting for the generator to rediscover it *)
let test_crash_trial_pinned () =
  with_seed ~default:1 @@ fun seed ->
  Alcotest.(check bool)
    (Printf.sprintf "crash trial seed %d" seed)
    true (crash_trial seed)

let test_vfs_xv6_image_checks_clean () =
  in_sim (fun machine ->
      ok (Vfs_xv6.mkfs machine);
      let vfs = ok (Vfs_xv6.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/x");
      for i = 0 to 9 do
        ok (Kernel.Os.write_file os (Printf.sprintf "/x/%d" i) (payload 8192))
      done;
      Vfs_xv6.unmount vfs;
      fsck_ok machine "vfs_xv6 image")

let suite =
  [
    tc "fresh fs clean" `Quick test_fresh_fs_is_clean;
    tc "populated fs clean" `Quick test_populated_fs_is_clean;
    tc "detects corruption" `Quick test_fsck_detects_corruption;
    tc "vfs_xv6 image clean" `Quick test_vfs_xv6_image_checks_clean;
    tc "crash trial (BENTO_SEED pinned)" `Quick test_crash_trial_pinned;
    QCheck_alcotest.to_alcotest prop_crash_recovery;
  ]
