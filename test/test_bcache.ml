(** Unit tests of the kernel buffer cache: refcounting, LRU eviction,
    pinning, and writeback-on-eviction. *)

open Helpers

let tc = Alcotest.test_case

let with_bc ?(capacity = 8) f =
  in_sim (fun machine -> f machine (Kernel.Bcache.create ~capacity machine))

let test_read_write_roundtrip () =
  with_bc (fun _m bc ->
      let b = Kernel.Bcache.getblk bc 5 in
      Bytes.fill b.Kernel.Bcache.data 0 4096 'r';
      Kernel.Bcache.bwrite bc b;
      Kernel.Bcache.brelse bc b;
      let b = Kernel.Bcache.bread bc 5 in
      Alcotest.(check char) "content" 'r' (Bytes.get b.Kernel.Bcache.data 0);
      Kernel.Bcache.brelse bc b;
      Kernel.Bcache.check_invariants bc)

let test_cache_hit_no_device_read () =
  with_bc (fun machine bc ->
      let dev_reads () =
        Sim.Stats.Counter.get_int
          (Sim.Stats.counter (Device.Ssd.stats (Kernel.Machine.disk machine)) "read_cmds")
      in
      let b = Kernel.Bcache.bread bc 3 in
      Kernel.Bcache.brelse bc b;
      let before = dev_reads () in
      let b = Kernel.Bcache.bread bc 3 in
      Kernel.Bcache.brelse bc b;
      Alcotest.(check int) "second bread is a hit" before (dev_reads ()))

let test_eviction_lru () =
  with_bc ~capacity:4 (fun _m bc ->
      (* fill, then overflow: the least recently released goes *)
      for i = 0 to 3 do
        let b = Kernel.Bcache.bread bc i in
        Kernel.Bcache.brelse bc b
      done;
      (* touch 0 to make 1 the LRU *)
      let b = Kernel.Bcache.bread bc 0 in
      Kernel.Bcache.brelse bc b;
      let b = Kernel.Bcache.bread bc 99 in
      Kernel.Bcache.brelse bc b;
      Alcotest.(check int) "capacity respected" 4 (Kernel.Bcache.cached_blocks bc);
      Kernel.Bcache.check_invariants bc)

let test_referenced_buffers_not_evicted () =
  with_bc ~capacity:4 (fun _m bc ->
      let held = List.init 4 (fun i -> Kernel.Bcache.bread bc i) in
      (* all buffers referenced: the next miss must fail, not corrupt *)
      (match Kernel.Bcache.bread bc 50 with
      | exception Kernel.Bcache.No_buffers -> ()
      | _ -> Alcotest.fail "expected No_buffers");
      List.iter (fun b -> Kernel.Bcache.brelse bc b) held;
      (* now there is room *)
      let b = Kernel.Bcache.bread bc 50 in
      Kernel.Bcache.brelse bc b)

let test_dirty_eviction_writes_back () =
  with_bc ~capacity:4 (fun machine bc ->
      let b = Kernel.Bcache.getblk bc 7 in
      Bytes.fill b.Kernel.Bcache.data 0 4096 'd';
      Kernel.Bcache.mark_dirty b;
      Kernel.Bcache.brelse bc b;
      (* force eviction of block 7 *)
      for i = 100 to 104 do
        let b = Kernel.Bcache.bread bc i in
        Kernel.Bcache.brelse bc b
      done;
      (* contents must have been written back, not lost *)
      let b = Kernel.Bcache.bread bc 7 in
      Alcotest.(check char) "written back on eviction" 'd'
        (Bytes.get b.Kernel.Bcache.data 0);
      Kernel.Bcache.brelse bc b;
      ignore machine)

let test_sleeplock_serialises_holders () =
  with_bc (fun machine bc ->
      let order = ref [] in
      let done_ = Sim.Sync.Semaphore.create 0 in
      for i = 0 to 2 do
        Kernel.Machine.spawn machine (fun () ->
            let b = Kernel.Bcache.bread bc 11 in
            order := i :: !order;
            Sim.Engine.sleep (Sim.Time.us 10);
            Kernel.Bcache.brelse bc b;
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 0 to 2 do
        Sim.Sync.Semaphore.acquire done_
      done;
      Alcotest.(check int) "all three held it" 3 (List.length !order);
      (* serialised: total time at least 3 x 10us *)
      Alcotest.(check bool) "serialised" true
        (Int64.compare (Kernel.Machine.now machine) (Sim.Time.us 30) >= 0))

let test_brelse_unlocked_rejected () =
  with_bc (fun _m bc ->
      let b = Kernel.Bcache.bread bc 1 in
      Kernel.Bcache.brelse bc b;
      match Kernel.Bcache.brelse bc b with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "double brelse accepted")

let test_lru_exact_order () =
  (* The intrusive free list must evict in exact release order. Establish a
     known order, then force evictions one at a time and probe the block
     that would have been lost if the wrong victim were chosen: a probe hit
     (no disk read) proves the intended victim went instead. *)
  with_bc ~capacity:4 (fun machine bc ->
      let reads () =
        Sim.Stats.Counter.get_int
          (Sim.Stats.counter (Kernel.Bcache.stats bc) "disk_reads")
      in
      let touch blk =
        let b = Kernel.Bcache.bread bc blk in
        Kernel.Bcache.brelse bc b
      in
      List.iter touch [ 0; 1; 2; 3 ];
      (* re-release in a scrambled order: LRU is now 2, then 0, 3, 1 *)
      List.iter touch [ 2; 0; 3; 1 ];
      let expect_hit blk label =
        let before = reads () in
        touch blk;
        Alcotest.(check int) label before (reads ())
      in
      touch 100 (* evicts 2 *);
      Kernel.Bcache.check_invariants bc;
      expect_hit 0 "0 survived the first eviction";
      touch 101 (* evicts 3 *);
      expect_hit 1 "1 survived the second eviction";
      touch 102 (* evicts 100, the oldest after the probes *);
      expect_hit 0 "0 still cached after the third";
      Kernel.Bcache.check_invariants bc;
      (* and the first victim really is gone *)
      let before = reads () in
      touch 2;
      Alcotest.(check int) "2 was evicted first" (before + 1) (reads ());
      ignore machine)

let test_invariants_under_churn () =
  (* Random churn of reads, dirty writes, pinned buffers and evictions;
     the free-list/refcount invariants must hold throughout and dirty
     victims must reach the device. *)
  Helpers.with_seed ~default:11 @@ fun seed ->
  with_bc ~capacity:8 (fun _m bc ->
      let rng = Sim.Rng.create seed in
      let held = ref [] in
      let holding blk =
        (* bread of a block whose sleeplock this fiber already holds would
           self-deadlock; real callers never double-acquire either *)
        List.exists (fun b -> b.Kernel.Bcache.block = blk) !held
      in
      for step = 1 to 300 do
        let blk = Sim.Rng.int rng 32 in
        (match Sim.Rng.int rng 4 with
        | _ when holding blk -> ()
        | 0 ->
            (* pin a buffer for a while *)
            if List.length !held < 6 then
              (match Kernel.Bcache.bread bc blk with
              | b -> held := b :: !held
              | exception Kernel.Bcache.No_buffers -> ())
        | 1 -> (
            match !held with
            | b :: rest ->
                held := rest;
                Kernel.Bcache.brelse bc b
            | [] -> ())
        | 2 -> (
            (* dirty write: stamp the block number so writeback is checkable *)
            match Kernel.Bcache.bread bc blk with
            | b ->
                Bytes.fill b.Kernel.Bcache.data 0 4096
                  (Char.chr (Char.code 'a' + (blk mod 26)));
                Kernel.Bcache.mark_dirty b;
                Kernel.Bcache.brelse bc b
            | exception Kernel.Bcache.No_buffers -> ())
        | _ -> (
            match Kernel.Bcache.bread bc blk with
            | b -> Kernel.Bcache.brelse bc b
            | exception Kernel.Bcache.No_buffers -> ()));
        if step mod 25 = 0 then Kernel.Bcache.check_invariants bc
      done;
      List.iter (fun b -> Kernel.Bcache.brelse bc b) !held;
      Kernel.Bcache.check_invariants bc;
      (* every block that was ever dirtied reads back with its stamp,
         whether it survived in cache or went through dirty eviction *)
      for blk = 0 to 31 do
        let b = Kernel.Bcache.bread bc blk in
        let c = Bytes.get b.Kernel.Bcache.data 0 in
        if c <> '\000' then
          Alcotest.(check char)
            (Printf.sprintf "block %d stamp" blk)
            (Char.chr (Char.code 'a' + (blk mod 26)))
            c;
        Kernel.Bcache.brelse bc b
      done;
      Kernel.Bcache.check_invariants bc)

let test_concurrent_churn () =
  (* Many fibers hammering a small sharded cache: getbuf must pin its
     victim before sleeping on the sleeplock, so a buffer recycled by a
     concurrent eviction is never returned for the wrong block. Regression
     test for the hand-over-hand race: every bread is checked against the
     block it asked for, and stamps written under one fiber must never
     leak into another block. *)
  Helpers.with_seed ~default:23 @@ fun seed ->
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create ~capacity:32 ~shards:4 machine in
      let nfibers = 16 in
      let done_ = Sim.Sync.Semaphore.create 0 in
      let stamp blk = Char.chr (Char.code 'a' + (blk mod 26)) in
      let checked_bread blk =
        match Kernel.Bcache.bread bc blk with
        | b ->
            if b.Kernel.Bcache.block <> blk then
              Alcotest.failf "bread %d returned recycled buffer for block %d"
                blk b.Kernel.Bcache.block;
            Some b
        | exception Kernel.Bcache.No_buffers -> None
      in
      for i = 0 to nfibers - 1 do
        Kernel.Machine.spawn machine (fun () ->
            let rng = Sim.Rng.create (seed + (7919 * i)) in
            for _step = 1 to 200 do
              let blk = Sim.Rng.int rng 128 in
              match Sim.Rng.int rng 3 with
              | 0 -> (
                  (* dirty write: stamp so cross-block leaks are visible *)
                  match checked_bread blk with
                  | Some b ->
                      Bytes.fill b.Kernel.Bcache.data 0 4096 (stamp blk);
                      Kernel.Bcache.mark_dirty b;
                      Kernel.Bcache.brelse bc b
                  | None -> ())
              | 1 -> (
                  (* hold across a sleep so evictions race live holders *)
                  match checked_bread blk with
                  | Some b ->
                      Sim.Engine.sleep
                        (Sim.Time.ns (1 + Sim.Rng.int rng 2000));
                      Kernel.Bcache.brelse bc b
                  | None -> ())
              | _ -> (
                  match checked_bread blk with
                  | Some b ->
                      let c = Bytes.get b.Kernel.Bcache.data 0 in
                      if c <> '\000' && c <> stamp blk then
                        Alcotest.failf "block %d holds foreign stamp %C" blk c;
                      Kernel.Bcache.brelse bc b
                  | None -> ())
            done;
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 1 to nfibers do
        Sim.Sync.Semaphore.acquire done_
      done;
      Kernel.Bcache.check_invariants bc)

(* ------------------------------------------------------------------ *)
(* Property: the sharded cache is observationally equivalent to the
   single-lock cache. Blocks are partitioned among fibers (fiber i owns
   blk when blk mod nfibers = i), so each block's final content is its
   owner's last write — deterministic regardless of interleaving — and
   must agree between shards:1, shards:8 and a pure replay model. The
   capacity leaves each shard at least as many buffers as fibers, so the
   op scripts never hit No_buffers and replay identically. *)

let equiv_nfibers = 8
let equiv_nblocks = 256
let equiv_steps = 150
let equiv_stamp blk step = Char.chr (33 + (((blk * 7) + step) mod 90))

(* One fiber's op script: the rng draws happen in fiber-sequential code,
   so the script is a pure function of the seed — the concurrent runs and
   the sequential model replay the same draws. *)
let equiv_script ~seed i act =
  let rng = Sim.Rng.create (seed + (31 * i)) in
  for step = 1 to equiv_steps do
    let blk = Sim.Rng.int rng equiv_nblocks in
    let op = Sim.Rng.int rng 3 in
    let hold = if op = 2 then 1 + Sim.Rng.int rng 500 else 0 in
    act ~step ~blk ~op ~hold
  done

let equiv_model ~seed =
  let expected = Array.make equiv_nblocks None in
  for i = 0 to equiv_nfibers - 1 do
    equiv_script ~seed i (fun ~step ~blk ~op ~hold:_ ->
        if op = 0 && blk mod equiv_nfibers = i then
          expected.(blk) <- Some (equiv_stamp blk step))
  done;
  expected

let equiv_run ~seed ~shards =
  let final = Array.make equiv_nblocks '\000' in
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create ~capacity:64 ~shards machine in
      let done_ = Sim.Sync.Semaphore.create 0 in
      for i = 0 to equiv_nfibers - 1 do
        Kernel.Machine.spawn machine (fun () ->
            equiv_script ~seed i (fun ~step ~blk ~op ~hold ->
                let b = Kernel.Bcache.bread bc blk in
                if b.Kernel.Bcache.block <> blk then
                  QCheck.Test.fail_reportf "bread %d returned block %d" blk
                    b.Kernel.Bcache.block;
                (if op = 0 && blk mod equiv_nfibers = i then begin
                   Bytes.fill b.Kernel.Bcache.data 0 4096
                     (equiv_stamp blk step);
                   Kernel.Bcache.mark_dirty b
                 end
                 else if op = 2 then Sim.Engine.sleep (Sim.Time.ns hold));
                Kernel.Bcache.brelse bc b);
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 1 to equiv_nfibers do
        Sim.Sync.Semaphore.acquire done_
      done;
      Kernel.Bcache.check_invariants bc;
      for blk = 0 to equiv_nblocks - 1 do
        let b = Kernel.Bcache.bread bc blk in
        final.(blk) <- Bytes.get b.Kernel.Bcache.data 0;
        Kernel.Bcache.brelse bc b
      done);
  final

let prop_shard_equivalence =
  QCheck.Test.make ~count:10
    ~name:"sharded bcache == single-lock bcache under concurrent workloads"
    QCheck.(int_bound 1_000_000)
    (fun salt ->
      let seed = Helpers.test_seed 0 + salt in
      let expected = equiv_model ~seed in
      let single = equiv_run ~seed ~shards:1 in
      let sharded = equiv_run ~seed ~shards:8 in
      Array.iteri
        (fun blk c ->
          if c <> sharded.(blk) then
            QCheck.Test.fail_reportf
              "block %d: single-lock %C vs sharded %C (seed %d)" blk c
              sharded.(blk) seed;
          match expected.(blk) with
          | Some e when e <> c ->
              QCheck.Test.fail_reportf "block %d: model %C vs cache %C (seed %d)"
                blk e c seed
          | _ -> ())
        single;
      true)

let suite =
  [
    tc "roundtrip" `Quick test_read_write_roundtrip;
    tc "lru exact eviction order" `Quick test_lru_exact_order;
    tc "invariants under churn" `Quick test_invariants_under_churn;
    tc "cache hit" `Quick test_cache_hit_no_device_read;
    tc "lru eviction" `Quick test_eviction_lru;
    tc "no eviction of referenced" `Quick test_referenced_buffers_not_evicted;
    tc "dirty eviction writes back" `Quick test_dirty_eviction_writes_back;
    tc "sleeplock serialises" `Quick test_sleeplock_serialises_holders;
    tc "double brelse rejected" `Quick test_brelse_unlocked_rejected;
    tc "concurrent churn across shards" `Quick test_concurrent_churn;
    QCheck_alcotest.to_alcotest prop_shard_equivalence;
  ]
