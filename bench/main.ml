(** The benchmark harness: regenerates every table and figure of the Bento
    paper's evaluation (see DESIGN.md's experiment index), plus ablations
    and an online-upgrade measurement, on the simulated machine.

      main.exe               — run everything
      main.exe fig2|fig3|fig4|table1..table6|readahead|scaling|server|coldstart|ablate|upgrade
      main.exe scaling --scaling-fibers 1,8,32 — throughput vs fiber count
      main.exe server --server-clients 10,100,1000 — multi-tenant file server
      main.exe coldstart --coldstart-tenants 10,100,1000 — CAS tenant trees
      main.exe bechamel      — wall-clock microbenchmarks of hot structures
      main.exe all --duration 2.0 --untar-files 70000
      main.exe fig2 --json out.json     — machine-readable results
      main.exe fig2 --trace out.trace.json — Chrome/Perfetto trace of the runs
      main.exe fig2 --profile           — per-layer virtual-time attribution
      main.exe fig2 --folded out.folded — flamegraph collapsed stacks

    Absolute numbers come from the calibrated cost model (EXPERIMENTS.md);
    the shapes — who wins and by how much — are the reproduction target. *)

let duration = ref 0.5 (* virtual seconds per timed run *)
let untar_files = ref 14_000
(* paper-scale parameters: --duration 60 --untar-files 70000; the defaults
   are chosen so the full suite runs in ~15-20 minutes of real time while
   the measured rates are already stable (they change by only a few percent
   between 0.25 s and 1 s windows) *)
let seed = ref 42
let json_path : string option ref = ref None
let trace_path : string option ref = ref None
let profile = ref false
let folded_path : string option ref = ref None

let dur () = Sim.Time.of_float_ns (!duration *. 1e9)

let pf = Printf.printf

let header title =
  pf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json / --trace).                          *)

let results : Util.Json.t list ref = ref [] (* newest first *)

(* One JSON row per measured run: identity, throughput, and the per-op
   latency percentiles from the workload's histogram. Also relabels the
   run's trace observation so Perfetto shows "<section>:<config>:<system>"
   as the process name. *)
let record ~section ~system ~config (r : Workloads.Bench_result.t) =
  if !Targets.observe then begin
    let sysname = Targets.system_name system in
    Targets.relabel_last (Printf.sprintf "%s:%s:%s" section config sysname);
    let open Util.Json in
    let pct q =
      match Workloads.Bench_result.lat_percentile r q with
      | Some v -> int64 v
      | None -> Null
    in
    let lat_max =
      match r.lat with
      | Some h when Sim.Stats.Histogram.count h > 0 ->
          int64 (Sim.Stats.Histogram.max_ns h)
      | _ -> Null
    in
    let counters_list = Targets.last_counters () in
    let counters = List.map (fun (k, v) -> (k, int64 v)) counters_list in
    (* Paper-style explanatory ratios derived from the counter snapshot.
       Counters cover the whole run (setup included), so the ratios are
       stable explanations rather than pure steady-state figures; the
       denominators are the timed window's ops/bytes. Null when the
       denominator is zero. *)
    let c name =
      Option.value ~default:0L (List.assoc_opt name counters_list)
    in
    let fdiv num den = if den = 0. then Null else Float (num /. den) in
    let crossings_per_op =
      fdiv
        (Int64.to_float
           (Int64.add (c "machine.syscalls") (c "machine.fuse_crossings")))
        (float_of_int r.ops)
    in
    let write_amplification =
      fdiv
        (Int64.to_float (c "ssd.blocks_written") *. 4096.)
        (float_of_int r.bytes)
    in
    let bcache_hit_ratio =
      let h = Int64.to_float (c "bcache.hits") in
      let m = Int64.to_float (c "bcache.misses") in
      fdiv h (h +. m)
    in
    let log_commits = c "machine.log_commits" in
    let log_commit_mean_blocks =
      fdiv
        (Int64.to_float (c "machine.log_commit_blocks"))
        (Int64.to_float log_commits)
    in
    (* fraction of CAS page faults served by an already-resident shared
       page; Null (so ungated) on runs without a CAS store *)
    let cas_shared_ratio =
      let h = Int64.to_float (c "machine.cas_hits") in
      let f = Int64.to_float (c "machine.cas_fills") in
      fdiv h (h +. f)
    in
    let profile_json =
      match Targets.last_profile () with
      | None -> Null
      | Some p ->
          Obj
            [
              ("elapsed_ns", int64 (Sim.Profile.elapsed p));
              ("attributed_ns", int64 (Sim.Profile.attributed p));
              ( "layers",
                Obj
                  (List.map
                     (fun (lt : Sim.Profile.layer_time) ->
                       ( lt.layer,
                         Obj
                           [
                             ("self_ns", int64 lt.self_ns);
                             ("total_ns", int64 lt.total_ns);
                           ] ))
                     (Sim.Profile.summary p)) );
              (* time fibers spent blocked per "<layer>/<lock>"; overlaps
                 the self times above, so it is reported separately *)
              ( "lock_waits",
                Obj
                  (List.map
                     (fun (k, ns) -> (k, int64 ns))
                     (Sim.Profile.lock_waits p)) );
            ]
    in
    let row =
      Obj
        [
          ("section", String section);
          ("system", String sysname);
          ("config", String config);
          ("label", String r.label);
          ("ops", Int r.ops);
          ("bytes", Int r.bytes);
          ("elapsed_ns", int64 r.elapsed_ns);
          ("ops_per_sec", Float (Workloads.Bench_result.ops_per_sec r));
          ("mbps", Float (Workloads.Bench_result.mbps r));
          ("lat_p50_ns", pct 50.0);
          ("lat_p90_ns", pct 90.0);
          ("lat_p99_ns", pct 99.0);
          ("lat_max_ns", lat_max);
          ("crossings_per_op", crossings_per_op);
          ("write_amplification", write_amplification);
          ("bcache_hit_ratio", bcache_hit_ratio);
          ("log_commits", int64 log_commits);
          ("log_commit_mean_blocks", log_commit_mean_blocks);
          ("cas_shared_ratio", cas_shared_ratio);
          ("counters", Obj counters);
          ("profile", profile_json);
        ]
    in
    results := row :: !results
  end

(* ------------------------------------------------------------------ *)
(* Tables 1-3: the bug study and qualitative comparisons.               *)

let table1 () =
  header "Table 1: Linux extension bug study (AppArmor, OVS datapath, OverlayFS)";
  Format.printf "%a%!" Bugstudy.Study.pp_table1 ()

let table2 () =
  header "Table 2: file system extensibility mechanisms";
  Format.printf "%a%!" Bugstudy.Comparison.pp_table2 ()

let table3 () =
  header "Table 3: challenges and solutions";
  Format.printf "%a%!" Bugstudy.Comparison.pp_table3 ()

(* ------------------------------------------------------------------ *)
(* Figure 2/3: reads.                                                   *)

let read_configs = [ ("seq", Workloads.Micro.Seq, 1); ("seq", Workloads.Micro.Seq, 32);
                     ("rnd", Workloads.Micro.Rnd, 1); ("rnd", Workloads.Micro.Rnd, 32) ]

let run_read system ~iosize ~pattern ~nthreads =
  Targets.run system (fun _machine os ->
      Workloads.Micro.read_bench os ~iosize ~pattern ~nthreads
        ~duration:(dur ()) ~file_mb:128 ~seed:!seed)

let fig2 () =
  header "Figure 2: Read performance (4KB), ops/sec (x1000)";
  pf "%-10s" "config";
  List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_xv6;
  pf "\n";
  List.iter
    (fun (pname, pattern, nthreads) ->
      pf "%-10s" (Printf.sprintf "%s-%dt" pname nthreads);
      List.iter
        (fun sys ->
          let r = run_read sys ~iosize:4096 ~pattern ~nthreads in
          record ~section:"fig2" ~system:sys
            ~config:(Printf.sprintf "read-%s-4k-%dt" pname nthreads)
            r;
          pf "%12.1f" (Workloads.Bench_result.ops_per_sec r /. 1000.))
        Targets.all_xv6;
      pf "\n%!")
    read_configs

let fig3 () =
  header "Figure 3: Read performance (32KB-1024KB), MBps (x1000)";
  List.iter
    (fun iosize ->
      pf "-- reads (%dKB) --\n" (iosize / 1024);
      pf "%-10s" "config";
      List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_xv6;
      pf "\n";
      List.iter
        (fun (pname, pattern, nthreads) ->
          pf "%-10s" (Printf.sprintf "%s-%dt" pname nthreads);
          List.iter
            (fun sys ->
              let r = run_read sys ~iosize ~pattern ~nthreads in
              record ~section:"fig3" ~system:sys
                ~config:
                  (Printf.sprintf "read-%s-%dk-%dt" pname (iosize / 1024)
                     nthreads)
                r;
              pf "%12.2f" (Workloads.Bench_result.mbps r /. 1000.))
            Targets.all_xv6;
          pf "\n%!")
        read_configs)
    [ 32 * 1024; 128 * 1024; 1024 * 1024 ]

(* ------------------------------------------------------------------ *)
(* Figure 4: writes.                                                    *)

let write_configs =
  [ ("seq", Workloads.Micro.Seq, 1); ("rnd", Workloads.Micro.Rnd, 1);
    ("rnd", Workloads.Micro.Rnd, 32) ]

let fig4 () =
  header "Figure 4: Write performance, MBps";
  List.iter
    (fun iosize ->
      pf "-- writes (%dKB) --\n" (iosize / 1024);
      pf "%-10s" "config";
      List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_xv6;
      pf "\n";
      List.iter
        (fun (pname, pattern, nthreads) ->
          pf "%-10s" (Printf.sprintf "%s-%dt" pname nthreads);
          List.iter
            (fun sys ->
              let r =
                Targets.run sys (fun _m os ->
                    Workloads.Micro.write_bench os ~iosize ~pattern ~nthreads
                      ~duration:(dur ()) ~file_mb:256 ~seed:!seed)
              in
              record ~section:"fig4" ~system:sys
                ~config:
                  (Printf.sprintf "write-%s-%dk-%dt" pname (iosize / 1024)
                     nthreads)
                r;
              pf "%12.1f" (Workloads.Bench_result.mbps r))
            Targets.all_xv6;
          pf "\n%!")
        write_configs)
    [ 32 * 1024; 128 * 1024; 1024 * 1024 ]

(* ------------------------------------------------------------------ *)
(* Table 4/5: create / delete.                                          *)

let table4 () =
  header "Table 4: Create microbenchmark (ops/sec)";
  pf "%-10s" "threads";
  List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_xv6;
  pf "\n";
  List.iter
    (fun nthreads ->
      pf "%-10d" nthreads;
      List.iter
        (fun sys ->
          let r =
            Targets.run sys (fun _m os ->
                Workloads.Micro.create_bench os ~nthreads ~duration:(dur ())
                  ~dirwidth:100 ~mean_size:16384 ~seed:!seed)
          in
          record ~section:"table4" ~system:sys
            ~config:(Printf.sprintf "create-%dt" nthreads)
            r;
          pf "%12.0f" (Workloads.Bench_result.ops_per_sec r))
        Targets.all_xv6;
      pf "\n%!")
    [ 1; 32 ]

let table5 () =
  header "Table 5: Delete microbenchmark (ops/sec)";
  pf "%-10s" "threads";
  List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_xv6;
  pf "\n";
  List.iter
    (fun nthreads ->
      pf "%-10d" nthreads;
      List.iter
        (fun sys ->
          (* size the fileset so it outlasts the timed window *)
          let precreate =
            match sys with Targets.Fuse -> 2_000 | _ -> 40_000
          in
          let r =
            Targets.run sys (fun _m os ->
                Workloads.Micro.delete_bench os ~nthreads ~duration:(dur ())
                  ~dirwidth:100 ~precreate ~seed:!seed)
          in
          record ~section:"table5" ~system:sys
            ~config:(Printf.sprintf "delete-%dt" nthreads)
            r;
          pf "%12.0f" (Workloads.Bench_result.ops_per_sec r))
        Targets.all_xv6;
      pf "\n%!")
    [ 1; 32 ]

(* ------------------------------------------------------------------ *)
(* Table 6: macrobenchmarks.                                            *)

let table6 () =
  header "Table 6: Macrobenchmark performance";
  pf "%-12s %12s %12s %12s\n" "system" "varmail" "fileserver" "untar(s)";
  List.iter
    (fun sys ->
      let vm =
        Targets.run sys (fun _m os ->
            Workloads.Macro.varmail os ~duration:(dur ()) ~seed:!seed ())
      in
      record ~section:"table6" ~system:sys ~config:"varmail" vm;
      let fsv =
        Targets.run sys (fun _m os ->
            Workloads.Macro.fileserver os ~duration:(dur ()) ~seed:!seed ())
      in
      record ~section:"table6" ~system:sys ~config:"fileserver" fsv;
      let untar_manifest =
        Workloads.Macro.linux_tree_manifest
          ~nfiles:(match sys with Targets.Fuse -> !untar_files / 10 | _ -> !untar_files)
          ~ndirs:(match sys with Targets.Fuse -> 420 | _ -> 4200)
          ~seed:!seed ()
      in
      let ut =
        Targets.run ~disk_blocks:(3 * 1024 * 1024) sys (fun _m os ->
            Workloads.Macro.untar os untar_manifest)
      in
      record ~section:"table6" ~system:sys ~config:"untar" ut;
      let scale = match sys with Targets.Fuse -> 10. | _ -> 1. in
      pf "%-12s %12.0f %12.0f %12.1f\n%!" (Targets.system_name sys)
        (Workloads.Bench_result.ops_per_sec vm)
        (Workloads.Bench_result.ops_per_sec fsv)
        (Workloads.Bench_result.elapsed_sec ut *. scale))
    Targets.all_with_ext4;
  pf "(FUSE untar runs a 1/10-size tree; the reported seconds are scaled x10)\n"

(* ------------------------------------------------------------------ *)
(* Seqread-cold + readahead ablation: the async bio/readahead path.     *)

let seqread_cold_mb = 96 (* > any stack's caches, so the read is cold *)

let readahead_section () =
  header
    (Printf.sprintf
       "Seqread-cold: cold page cache, sequential 4KB reads of a %dMB file \
        (MBps)"
       seqread_cold_mb);
  pf "%-14s" "config";
  List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_with_ext4;
  pf "\n";
  pf "%-14s" "seqread-cold";
  let bento_on = ref None in
  List.iter
    (fun sys ->
      let r =
        Targets.run sys (fun _m os ->
            Workloads.Micro.seqread_cold_bench os ~iosize:4096
              ~file_mb:seqread_cold_mb)
      in
      record ~section:"readahead" ~system:sys ~config:"seqread-cold-4k" r;
      if sys = Targets.Bento_fs then bento_on := Some r;
      pf "%12.1f" (Workloads.Bench_result.mbps r))
    Targets.all_with_ext4;
  pf "\n%!";
  header "Ablation: page-cache readahead on vs off (Bento, same workload)";
  let off =
    Targets.run Targets.Bento_fs (fun _m os ->
        Kernel.Vfs.set_readahead (Kernel.Os.vfs os) false;
        Workloads.Micro.seqread_cold_bench os ~iosize:4096
          ~file_mb:seqread_cold_mb)
  in
  record ~section:"readahead" ~system:Targets.Bento_fs
    ~config:"seqread-cold-4k-ra-off" off;
  let on = Option.get !bento_on in
  pf "seqread-cold on Bento: readahead %.1f MBps  no-readahead %.1f MBps  \
      speedup %.2fx\n%!"
    (Workloads.Bench_result.mbps on)
    (Workloads.Bench_result.mbps off)
    (Workloads.Bench_result.mbps on /. Workloads.Bench_result.mbps off)

(* ------------------------------------------------------------------ *)
(* Scaling: aggregate throughput vs workload fibers, plus lock-wait
   attribution — the many-core scaling probe for the sharded caches and
   group-commit logs.                                                   *)

let scaling_fibers = ref [ 1; 4; 8; 32; 128 ]

(* A synthetic result row carrying one derived metric (the
   scaling-efficiency ratio), so bench-diff gates on it like any measured
   metric. *)
let record_scalar ~section ~system ~config ~metric v =
  if !Targets.observe then
    let open Util.Json in
    results :=
      Obj
        [
          ("section", String section);
          ("system", String (Targets.system_name system));
          ("config", String config);
          (metric, Float v);
        ]
      :: !results

let scaling () =
  (* lock-wait attribution is the point of this section: profiling (and
     row capture) is forced on for its runs even without --profile *)
  let saved_observe = !Targets.observe in
  let saved_profile = !Targets.profile_enabled in
  Targets.observe := true;
  Targets.profile_enabled := true;
  let fibers = List.sort_uniq compare !scaling_fibers in
  let nmax = List.fold_left max 1 fibers in
  (* profiles of the largest-fiber-count runs, for the lock-wait tables *)
  let hot : (string * Sim.Profile.t) list ref = ref [] in
  let note_hot ~config sys n =
    if n = nmax then
      match Targets.last_profile () with
      | Some p ->
          hot :=
            (Printf.sprintf "scaling:%s:%s" config (Targets.system_name sys), p)
            :: !hot
      | None -> ()
  in
  header "Scaling: aggregate throughput vs workload fibers (8-core machine)";
  (* per-fiber private-file read micros: no shared fileset entry, so the
     stack's own locks are the only serialisation *)
  List.iter
    (fun (pname, pattern) ->
      pf "-- scale-read-%s-4k: private warm file per fiber, ops/sec (x1000) --\n"
        pname;
      pf "%-10s" "fibers";
      List.iter (fun s -> pf "%12s" (Targets.system_name s)) Targets.all_xv6;
      pf "\n";
      let base = Hashtbl.create 8 in
      List.iter
        (fun n ->
          pf "%-10d" n;
          List.iter
            (fun sys ->
              let r =
                Targets.run sys (fun _m os ->
                    Workloads.Micro.scaling_read_bench os ~iosize:4096 ~pattern
                      ~nthreads:n ~duration:(dur ()) ~file_mb:2 ~seed:!seed)
              in
              let config = Printf.sprintf "scale-read-%s-4k-%dt" pname n in
              record ~section:"scaling" ~system:sys ~config r;
              note_hot ~config sys n;
              let tput = Workloads.Bench_result.ops_per_sec r in
              (match Hashtbl.find_opt base sys with
              | None -> Hashtbl.add base sys tput
              | Some b ->
                  if b > 0. then
                    record_scalar ~section:"scaling" ~system:sys
                      ~config:
                        (Printf.sprintf "scale-read-%s-4k-eff%dt" pname n)
                      ~metric:"scaling_efficiency" (tput /. b));
              pf "%12.1f" (tput /. 1000.))
            Targets.all_xv6;
          pf "\n%!")
        fibers)
    [ ("seq", Workloads.Micro.Seq); ("rnd", Workloads.Micro.Rnd) ];
  (* varmail with N threads on the journalled stacks: fsync-heavy, so the
     log's group commit is what scales (or does not) *)
  let vm_systems = [ Targets.Bento_fs; Targets.C_kernel; Targets.Ext4 ] in
  pf "-- varmail with N threads, ops/sec --\n";
  pf "%-10s" "fibers";
  List.iter (fun s -> pf "%12s" (Targets.system_name s)) vm_systems;
  pf "\n";
  let vbase = Hashtbl.create 8 in
  List.iter
    (fun n ->
      pf "%-10d" n;
      List.iter
        (fun sys ->
          let vc =
            { Workloads.Macro.varmail_default with Workloads.Macro.vm_nthreads = n }
          in
          let r =
            Targets.run sys (fun _m os ->
                Workloads.Macro.varmail os ~duration:(dur ()) ~config:vc
                  ~seed:!seed ())
          in
          let config = Printf.sprintf "varmail-%dt" n in
          record ~section:"scaling" ~system:sys ~config r;
          note_hot ~config sys n;
          let tput = Workloads.Bench_result.ops_per_sec r in
          (match Hashtbl.find_opt vbase sys with
          | None -> Hashtbl.add vbase sys tput
          | Some b ->
              if b > 0. then
                record_scalar ~section:"scaling" ~system:sys
                  ~config:(Printf.sprintf "varmail-eff%dt" n)
                  ~metric:"scaling_efficiency" (tput /. b));
          pf "%12.0f" tput)
        vm_systems;
      pf "\n%!")
    fibers;
  header
    (Printf.sprintf "Scaling: lock-wait attribution at %d fibers" nmax);
  List.iter
    (fun (label, p) -> Targets.print_lock_waits ~label p)
    (List.rev !hot);
  Targets.observe := saved_observe;
  Targets.profile_enabled := saved_profile

(* ------------------------------------------------------------------ *)
(* Server: the multi-tenant file server. Client fleets split across QoS
   classes (gold weight 4 / bronze weight 1) drive the wire protocol;
   the rows that matter are per tenant class — throughput and p99 at
   10/100/1000 concurrent client sessions.                              *)

let server_clients = ref [ 10; 100; 1000 ]

(* Per-tenant SLO monitor summaries of one fleet run: printed, and exported
   as gated synthetic rows (slo_p99_ms, slo_breaches) so bench-diff flags a
   tenant class losing its latency objective. *)
let slo_report ~prefix (summaries : Server.Slo.summary list) =
  List.iter
    (fun (s : Server.Slo.summary) ->
      pf
        "  slo %-8s target %4.0fms  window p50 %7.2fms p99 %7.2fms  %8.0f \
         ops/s  over-target %Ld  breaches %Ld\n%!"
        s.s_tenant
        (Int64.to_float s.s_target_ns /. 1e6)
        (Int64.to_float s.s_p50_ns /. 1e6)
        (Int64.to_float s.s_p99_ns /. 1e6)
        s.s_throughput s.s_over_target s.s_breaches;
      record_scalar ~section:"server" ~system:Targets.Bento_fs
        ~config:(Printf.sprintf "%s-%s-slo-p99" prefix s.s_tenant)
        ~metric:"slo_p99_ms"
        (Int64.to_float s.s_p99_ns /. 1e6);
      record_scalar ~section:"server" ~system:Targets.Bento_fs
        ~config:(Printf.sprintf "%s-%s-slo-breaches" prefix s.s_tenant)
        ~metric:"slo_breaches"
        (Int64.to_float s.s_breaches))
    summaries

(* Causal-DAG reconstruction of a traced run: the tentpole's acceptance
   check. Every request observed in the trace must stitch into one
   connected DAG of spans and flow edges — orphan completions or split
   components mean a broken propagation hop. *)
let causal_report ?(system = Targets.Bento_fs) ~section ~config () =
  if !Targets.trace_enabled then
    match Targets.last_tracer () with
    | None -> ()
    | Some tr ->
        let evs = Sim.Trace.events tr in
        let reqs = Sim.Trace.Causal.requests evs in
        let ratio = Sim.Trace.Causal.connected_ratio evs in
        pf "  causal: %d requests traced, %.4f reconstructed as connected \
            DAGs%s\n%!"
          (List.length reqs) ratio
          (if Sim.Trace.dropped tr > 0 then
             Printf.sprintf " (ring dropped %d events)" (Sim.Trace.dropped tr)
           else "");
        record_scalar ~section ~system ~config:(config ^ "-causal")
          ~metric:"causal_connected_ratio" ratio

let server_section () =
  header "Server: multi-tenant fleets, per-tenant-class throughput and p99";
  let counts = List.sort_uniq compare !server_clients in
  let show config (r : Workloads.Bench_result.t) =
    let p q =
      match Workloads.Bench_result.lat_percentile r q with
      | Some v -> Int64.to_float v /. 1e3
      | None -> 0.
    in
    pf "%-18s %10d %12.0f %10.1f %12.1f %12.1f\n%!" config r.ops
      (Workloads.Bench_result.ops_per_sec r)
      (Workloads.Bench_result.mbps r) (p 50.) (p 99.)
  in
  pf "%-18s %10s %12s %10s %12s %12s\n" "config" "ops" "ops/s" "MB/s"
    "p50us" "p99us";
  List.iter
    (fun n ->
      let slo_out = ref [] in
      let rs =
        Targets.run Targets.Bento_fs (fun _m os ->
            Workloads.Server_fleet.webserver_fleet os ~slo_out ~nclients:n
              ~duration:(dur ()) ~seed:!seed ())
      in
      List.iter
        (fun (tenant, r) ->
          let config = Printf.sprintf "web-%dc-%s" n tenant in
          record ~section:"server" ~system:Targets.Bento_fs ~config r;
          show config r)
        rs;
      slo_report ~prefix:(Printf.sprintf "web-%dc" n) !slo_out;
      causal_report ~section:"server" ~config:(Printf.sprintf "web-%dc" n) ())
    counts;
  let ci_clients = 40 in
  let slo_out = ref [] in
  let rs =
    Targets.run Targets.Bento_fs (fun _m os ->
        Workloads.Server_fleet.ci_fleet os ~slo_out ~nclients:ci_clients
          ~duration:(dur ()) ~seed:!seed ())
  in
  List.iter
    (fun (tenant, r) ->
      let config = Printf.sprintf "ci-%dc-%s" ci_clients tenant in
      record ~section:"server" ~system:Targets.Bento_fs ~config r;
      show config r)
    rs;
  slo_report ~prefix:(Printf.sprintf "ci-%dc" ci_clients) !slo_out;
  causal_report ~section:"server" ~config:(Printf.sprintf "ci-%dc" ci_clients)
    ()

(* ------------------------------------------------------------------ *)
(* Coldstart: one sealed Linux-source-style manifest instantiated as N
   tenant trees. The CAS arms (Bento and FUSE) share pages across all
   tenants — warm open+read should show zero device reads on Bento and
   a crossings_per_op gap on FUSE — while the naive arm writes N private
   copies, the device-blocks baseline.                                  *)

let coldstart_tenants = ref [ 10; 100; 1000 ]

(* a ~100-file tree keeps 1000 tenants inside the inode table of the
   4M-block disk below *)
let coldstart_nfiles = 100
let coldstart_ndirs = 12

let coldstart_section () =
  header "Coldstart: N tenant trees from one sealed manifest";
  let counts = List.sort_uniq compare !coldstart_tenants in
  (* big disk for the naive copies, a 1 GiB CAS region, and a page cap
     high enough that tenant aliases are never reclaimed mid-measure *)
  let disk_blocks = 4 * 1024 * 1024 in
  let page_cap = 2_000_000 in
  let cas_blocks = 256 * 1024 in
  pf "%-22s %10s %12s %10s %12s %12s %10s\n" "config" "ops" "opens/s"
    "p99us" "dev_reads" "dev_blocks" "respages";
  let arms = [ ("cas", Targets.Bento_fs); ("cas", Targets.Fuse);
               ("naive", Targets.Bento_fs) ] in
  List.iter
    (fun n ->
      List.iter
        (fun (mode, sys) ->
          let f _machine os =
            match mode with
            | "cas" ->
                Workloads.Coldstart.cas_run os ~tenants:n
                  ~nfiles:coldstart_nfiles ~ndirs:coldstart_ndirs ~seed:!seed
            | _ ->
                Workloads.Coldstart.naive_run os ~tenants:n
                  ~nfiles:coldstart_nfiles ~ndirs:coldstart_ndirs ~seed:!seed
          in
          let r =
            if mode = "cas" then
              Targets.run ~disk_blocks ~page_cap ~cas_blocks sys f
            else Targets.run ~disk_blocks ~page_cap sys f
          in
          let config = Printf.sprintf "coldstart-%s-%dt" mode n in
          record ~section:"coldstart" ~system:sys ~config
            r.Workloads.Coldstart.r_sweep;
          record_scalar ~section:"coldstart" ~system:sys
            ~config:(config ^ "-devreads") ~metric:"warm_device_reads"
            (float_of_int r.Workloads.Coldstart.r_warm_device_reads);
          record_scalar ~section:"coldstart" ~system:sys
            ~config:(config ^ "-blocks") ~metric:"device_blocks"
            (float_of_int r.Workloads.Coldstart.r_device_blocks);
          let sweep = r.Workloads.Coldstart.r_sweep in
          let p99 =
            match Workloads.Bench_result.lat_percentile sweep 99.0 with
            | Some v -> Int64.to_float v /. 1e3
            | None -> 0.
          in
          pf "%-22s %10d %12.0f %10.1f %12d %12d %10d\n%!"
            (Printf.sprintf "%s:%s" config (Targets.system_name sys))
            sweep.Workloads.Bench_result.ops
            (Workloads.Bench_result.ops_per_sec sweep)
            p99
            r.Workloads.Coldstart.r_warm_device_reads
            r.Workloads.Coldstart.r_device_blocks
            r.Workloads.Coldstart.r_resident_pages;
          causal_report ~system:sys ~section:"coldstart" ~config ())
        arms)
    counts

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out.                   *)

let run_bento_wb_batch ~wb_batch f =
  let machine = Kernel.Machine.create ~disk_blocks:(2 * 1024 * 1024) ~block_size:4096 () in
  let result = ref None in
  Kernel.Machine.spawn ~name:"bench" machine (fun () ->
      let ok = Kernel.Errno.ok_exn in
      ok (Bento.Bentofs.mkfs machine Targets.xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~wb_batch machine Targets.xv6_maker) in
      let os = Kernel.Os.create vfs in
      result := Some (f os);
      Bento.Bentofs.unmount vfs h);
  Kernel.Machine.run machine;
  Option.get !result

let ablate () =
  header
    "Ablation: writepages batching in BentoFS itself (same fs, wb_batch 256 vs 1)";
  let manifest = Workloads.Macro.linux_tree_manifest ~nfiles:(!untar_files / 4) ~ndirs:1050 ~seed:!seed () in
  let batched =
    run_bento_wb_batch ~wb_batch:256 (fun os -> Workloads.Macro.untar os manifest)
  in
  let unbatched =
    run_bento_wb_batch ~wb_batch:1 (fun os -> Workloads.Macro.untar os manifest)
  in
  pf
    "untar %d files on Bento: writepages(256) %.1fs  writepage(1) %.1fs  ratio %.2fx\n%!"
    (List.length manifest.Workloads.Macro.files)
    (Workloads.Bench_result.elapsed_sec batched)
    (Workloads.Bench_result.elapsed_sec unbatched)
    (Workloads.Bench_result.elapsed_sec unbatched
    /. Workloads.Bench_result.elapsed_sec batched);
  header "Ablation: full stacks on untar (Bento vs hand-written C baseline)";
  let bento =
    Targets.run Targets.Bento_fs (fun _m os -> Workloads.Macro.untar os manifest)
  in
  record ~section:"ablate" ~system:Targets.Bento_fs ~config:"untar" bento;
  let ckern =
    Targets.run Targets.C_kernel (fun _m os -> Workloads.Macro.untar os manifest)
  in
  record ~section:"ablate" ~system:Targets.C_kernel ~config:"untar" ckern;
  pf "untar %d files: Bento %.1fs  C-Kernel %.1fs  ratio %.2fx\n%!"
    (List.length manifest.Workloads.Macro.files)
    (Workloads.Bench_result.elapsed_sec bento)
    (Workloads.Bench_result.elapsed_sec ckern)
    (Workloads.Bench_result.elapsed_sec ckern /. Workloads.Bench_result.elapsed_sec bento);
  header "Ablation: user-level block I/O + whole-file fsync (create ops/s)";
  let bento_c =
    Targets.run Targets.Bento_fs (fun _m os ->
        Workloads.Micro.create_bench os ~nthreads:1 ~duration:(dur ())
          ~dirwidth:100 ~mean_size:16384 ~seed:!seed)
  in
  record ~section:"ablate" ~system:Targets.Bento_fs ~config:"create-1t" bento_c;
  let fuse_c =
    Targets.run Targets.Fuse (fun _m os ->
        Workloads.Micro.create_bench os ~nthreads:1 ~duration:(dur ())
          ~dirwidth:100 ~mean_size:16384 ~seed:!seed)
  in
  record ~section:"ablate" ~system:Targets.Fuse ~config:"create-1t" fuse_c;
  pf "create: Bento %.0f/s  FUSE %.0f/s  slowdown %.0fx\n%!"
    (Workloads.Bench_result.ops_per_sec bento_c)
    (Workloads.Bench_result.ops_per_sec fuse_c)
    (Workloads.Bench_result.ops_per_sec bento_c
    /. max 0.001 (Workloads.Bench_result.ops_per_sec fuse_c));
  header "Ablation: always-on flight recorder (warm 4KB seq reads, Bento)";
  let flight_read () =
    Targets.run Targets.Bento_fs (fun _m os ->
        Workloads.Micro.read_bench os ~iosize:4096 ~pattern:Workloads.Micro.Seq
          ~nthreads:1 ~duration:(dur ()) ~file_mb:128 ~seed:!seed)
  in
  let fl_on = flight_read () in
  record ~section:"ablate" ~system:Targets.Bento_fs
    ~config:"read-seq-4k-flight-on" fl_on;
  Targets.flight_enabled := false;
  let fl_off = flight_read () in
  Targets.flight_enabled := true;
  record ~section:"ablate" ~system:Targets.Bento_fs
    ~config:"read-seq-4k-flight-off" fl_off;
  let on_ops = Workloads.Bench_result.ops_per_sec fl_on in
  let off_ops = Workloads.Bench_result.ops_per_sec fl_off in
  pf "warm 4KB reads: recorder on %.0f/s  off %.0f/s  overhead %.2f%%\n%!"
    on_ops off_ops
    (if off_ops > 0. then (off_ops -. on_ops) /. off_ops *. 100. else 0.);
  header "Ablation: journaling strategy (varmail ops/s; xv6 sync log vs jbd2 lazy checkpoint)";
  let vm_x =
    Targets.run Targets.Bento_fs (fun _m os ->
        Workloads.Macro.varmail os ~duration:(dur ()) ~seed:!seed ())
  in
  record ~section:"ablate" ~system:Targets.Bento_fs ~config:"varmail" vm_x;
  let vm_e =
    Targets.run Targets.Ext4 (fun _m os ->
        Workloads.Macro.varmail os ~duration:(dur ()) ~seed:!seed ())
  in
  record ~section:"ablate" ~system:Targets.Ext4 ~config:"varmail" vm_e;
  pf "varmail: xv6-log %.0f/s  jbd2 %.0f/s  ext4 advantage %.2fx\n%!"
    (Workloads.Bench_result.ops_per_sec vm_x)
    (Workloads.Bench_result.ops_per_sec vm_e)
    (Workloads.Bench_result.ops_per_sec vm_e
    /. max 0.001 (Workloads.Bench_result.ops_per_sec vm_x))

(* ------------------------------------------------------------------ *)
(* Online upgrade (§4.8): swap the fs under a running workload.         *)

let upgrade () =
  header "Online upgrade: xv6fs v1 -> v2 under a running workload";
  let machine = Kernel.Machine.create ~disk_blocks:(1024 * 1024) ~block_size:4096 () in
  Kernel.Machine.spawn ~name:"bench" machine (fun () ->
      let ok = Kernel.Errno.ok_exn in
      ok (Bento.Bentofs.mkfs machine Targets.xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount machine Targets.xv6_maker) in
      let os = Kernel.Os.create vfs in
      (* steady workload *)
      let stop = ref false in
      let ops = ref 0 in
      let worker_done = Sim.Sync.Semaphore.create 0 in
      Kernel.Machine.spawn ~name:"load" machine (fun () ->
          let i = ref 0 in
          while not !stop do
            incr i;
            ok
              (Kernel.Os.write_file os
                 (Printf.sprintf "/f%d" (!i mod 100))
                 (Bytes.make 8192 'u'));
            incr ops
          done;
          Sim.Sync.Semaphore.release worker_done);
      Sim.Engine.sleep (Sim.Time.ms 200);
      let before = !ops in
      let report = Bento.Upgrade.upgrade h (module Xv6fs.Xv6fs_v2.Make) in
      Sim.Engine.sleep (Sim.Time.ms 200);
      stop := true;
      Sim.Sync.Semaphore.acquire worker_done;
      pf
        "upgraded v%d -> v%d with %d ops before, %d after; pause %.3f ms; \
         transferred %d open inodes, %d ints\n"
        report.Bento.Upgrade.from_version report.Bento.Upgrade.to_version
        before (!ops - before)
        (Int64.to_float report.Bento.Upgrade.pause_ns /. 1e6)
        report.Bento.Upgrade.transferred_open_inodes
        report.Bento.Upgrade.transferred_ints;
      pf "files written before the upgrade still readable: %b\n%!"
        (match Kernel.Os.read_file os "/f1" with Ok _ -> true | Error _ -> false);
      Bento.Bentofs.unmount vfs h);
  Kernel.Machine.run machine

(* ------------------------------------------------------------------ *)
(* Pushdown: registered kernel-side programs vs plain multi-call paths
   (ISSUE 10). Each cell shows kops/s and the in-window crossings/op
   (syscalls + FUSE wire crossings over timed ops); the scalar rows gate
   the exact crossing counts in bench-diff.                             *)

let pushdown_section () =
  header
    "Pushdown: kernel-side programs vs plain multi-call paths (kops/s, \
     crossings/op)";
  let arms =
    [
      ( "scan-plain",
        fun os ->
          Workloads.Pushdown_bench.filtered_scan os ~pushdown:false
            ~duration:(dur ()) );
      ( "scan-pushdown",
        fun os ->
          Workloads.Pushdown_bench.filtered_scan os ~pushdown:true
            ~duration:(dur ()) );
      ( "walk-plain",
        fun os ->
          Workloads.Pushdown_bench.extent_walk os ~pushdown:false
            ~duration:(dur ()) ~seed:!seed );
      ( "walk-pushdown",
        fun os ->
          Workloads.Pushdown_bench.extent_walk os ~pushdown:true
            ~duration:(dur ()) ~seed:!seed );
      ( "get-pushdown",
        fun os ->
          Workloads.Pushdown_bench.kv_get os ~duration:(dur ()) ~seed:!seed );
    ]
  in
  let cells = Hashtbl.create 32 in
  pf "%-16s" "config";
  List.iter (fun s -> pf "%22s" (Targets.system_name s)) Targets.all_with_ext4;
  pf "\n";
  List.iter
    (fun (config, f) ->
      pf "%-16s" config;
      List.iter
        (fun sys ->
          let r = Targets.run sys (fun _m os -> f os) in
          record ~section:"pushdown" ~system:sys ~config
            r.Workloads.Pushdown_bench.br;
          record_scalar ~section:"pushdown" ~system:sys ~config
            ~metric:"crossings_per_op" r.crossings_per_op;
          Hashtbl.replace cells (config, sys) r;
          pf "%13.1fk %7.2f"
            (Workloads.Bench_result.ops_per_sec r.br /. 1e3)
            r.crossings_per_op)
        Targets.all_with_ext4;
      pf "\n%!")
    arms;
  let cpo config sys =
    (Hashtbl.find cells (config, sys)).Workloads.Pushdown_bench.crossings_per_op
  in
  pf "FUSE filtered scan: %.1f crossings/op plain vs %.1f pushed down \
      (%.1fx fewer)\n"
    (cpo "scan-plain" Targets.Fuse)
    (cpo "scan-pushdown" Targets.Fuse)
    (cpo "scan-plain" Targets.Fuse /. cpo "scan-pushdown" Targets.Fuse);
  List.iter
    (fun sys ->
      pf "%s extent walk: %.1f crossings/op plain vs %.1f pushed down\n"
        (Targets.system_name sys)
        (cpo "walk-plain" sys) (cpo "walk-pushdown" sys))
    Targets.all_with_ext4;
  pf "%!"

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks of the hot data structures.      *)

let bechamel () =
  let open Bechamel in
  let heap_test =
    Test.make ~name:"sim-heap push/pop x1000" (Staged.stage (fun () ->
        let h = Sim.Heap.create () in
        for i = 0 to 999 do
          Sim.Heap.push h ~time:(Int64.of_int (i * 37 mod 997)) ~seq:i i
        done;
        while not (Sim.Heap.is_empty h) do
          ignore (Sim.Heap.pop h)
        done))
  in
  let checksum_test =
    let blocks = List.init 16 (fun i -> Bytes.make 4096 (Char.chr (i + 65))) in
    Test.make ~name:"log checksum 16 blocks" (Staged.stage (fun () ->
        ignore (Xv6fs.Layout.checksum_blocks blocks)))
  in
  let proto_test =
    let req = Fusesim.Proto.Write { ino = 42; off = 123456; data = Bytes.make 4096 'x' } in
    Test.make ~name:"fuse proto encode+decode 4K write" (Staged.stage (fun () ->
        let m = Fusesim.Proto.encode_request ~unique:7 req in
        ignore (Fusesim.Proto.decode_request m)))
  in
  let dinode_test =
    let block = Bytes.make 4096 '\000' in
    let d = { Xv6fs.Layout.ftype = Xv6fs.Layout.F_file; nlink = 1; size = 123456;
              addrs = Array.init 14 (fun i -> i * 17) } in
    Test.make ~name:"dinode put+get" (Staged.stage (fun () ->
        Xv6fs.Layout.put_dinode block ~slot:3 d;
        ignore (Xv6fs.Layout.get_dinode block ~slot:3)))
  in
  let rng_test =
    let rng = Sim.Rng.create 7 in
    Test.make ~name:"rng zipf x100" (Staged.stage (fun () ->
        for _ = 1 to 100 do
          ignore (Sim.Rng.zipf rng ~n:100000 ~theta:0.9)
        done))
  in
  let tests =
    Test.make_grouped ~name:"bento-hot-paths"
      [ heap_test; checksum_test; proto_test; dinode_test; rng_test ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = List.map (fun inst -> Analyze.all ols inst raw) instances in
    Analyze.merge ols instances results
  in
  header "Bechamel: wall-clock microbenchmarks";
  let results = benchmark () in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> pf "%-40s %12.1f ns/run\n" name est
          | _ -> pf "%-40s (no estimate)\n" name)
        tbl)
    results;
  pf "%!"

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table2 ();
  table3 ();
  fig2 ();
  fig3 ();
  fig4 ();
  table4 ();
  table5 ();
  table6 ();
  readahead_section ();
  scaling ();
  server_section ();
  coldstart_section ();
  ablate ();
  upgrade ();
  pushdown_section ();
  bechamel ()

(* The current commit, for run provenance in the JSON metadata. Advisory
   only — bench-diff does not gate on it (old and new legitimately come
   from different commits). *)
let git_describe () =
  let tmp = Filename.temp_file "bench_git" ".txt" in
  let cmd =
    Printf.sprintf "git describe --always --dirty 2>/dev/null > %s"
      (Filename.quote tmp)
  in
  let out =
    if Sys.command cmd = 0 then (
      let ic = open_in tmp in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      line)
    else ""
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  if out = "" then "unknown" else out

(* Write the accumulated result rows as {meta, results}. Everything that
   shapes the numbers (seed, duration, scale, cost model, block size) goes
   into meta so bench-diff can refuse incomparable runs. *)
let write_json path sections =
  let open Util.Json in
  let doc =
    Obj
      [
        ( "meta",
          Obj
            [
              ("benchmark", String "bento-sim");
              ("sections", List (List.map (fun s -> String s) sections));
              ("duration_s", Float !duration);
              ("untar_files", Int !untar_files);
              ("seed", Int !seed);
              ("block_size", Int 4096);
              ("cost_model", String Kernel.Cost.model_version);
              ("git_describe", String (git_describe ()));
            ] );
        ("results", List (List.rev !results));
      ]
  in
  let oc = open_out path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  pf "wrote %d result rows to %s\n%!" (List.length !results) path

(* Combine every traced run into one Chrome trace-event file: one process
   per run (pid = run order, process_name = section:config:system), so
   per-process timestamps are each run's monotone virtual clock. *)
let write_trace path =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_char buf '[';
  let first = ref true in
  let runs = List.rev !Targets.observations in
  List.iteri
    (fun i (o : Targets.observation) ->
      let wrote =
        Sim.Trace.write_events buf ~pid:(i + 1) ~process_name:o.obs_label
          ~first:!first o.obs_tracer
      in
      if wrote then first := false)
    runs;
  Buffer.add_string buf "]\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  pf "wrote trace of %d runs to %s\n%!" (List.length runs) path

(* One flamegraph collapsed-stack file covering all profiled runs, each
   run's stacks prefixed with its label so flamegraph.pl draws one tower
   per run. *)
let write_folded path =
  let oc = open_out path in
  let n = ref 0 in
  List.iter
    (fun (o : Targets.observation) ->
      match o.obs_profile with
      | None -> ()
      | Some p ->
          incr n;
          List.iter
            (fun (stack, ns) ->
              Printf.fprintf oc "%s;%s %Ld\n" o.obs_label stack ns)
            (Sim.Profile.folded p))
    (List.rev !Targets.observations);
  close_out oc;
  pf "wrote folded stacks of %d runs to %s\n%!" !n path

let print_profiles () =
  header "Per-layer virtual-time attribution";
  List.iter
    (fun (o : Targets.observation) ->
      match o.obs_profile with
      | Some p -> Targets.print_profile ~label:o.obs_label p
      | None -> ())
    (List.rev !Targets.observations)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let sections = ref [] in
  let rec parse = function
    | [] -> ()
    | "--duration" :: v :: rest ->
        duration := float_of_string v;
        parse rest
    | "--untar-files" :: v :: rest ->
        untar_files := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--scaling-fibers" :: v :: rest ->
        scaling_fibers :=
          List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--server-clients" :: v :: rest ->
        server_clients :=
          List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--coldstart-tenants" :: v :: rest ->
        coldstart_tenants :=
          List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--json" :: v :: rest ->
        json_path := Some v;
        parse rest
    | "--trace" :: v :: rest ->
        trace_path := Some v;
        parse rest
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | "--folded" :: v :: rest ->
        folded_path := Some v;
        parse rest
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse args;
  if !json_path <> None || !trace_path <> None || !profile
     || !folded_path <> None
  then Targets.observe := true;
  if !trace_path <> None then Targets.trace_enabled := true;
  if !profile || !folded_path <> None then Targets.profile_enabled := true;
  let sections = List.rev !sections in
  let run_section = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "table3" -> table3 ()
    | "fig2" -> fig2 ()
    | "fig3" -> fig3 ()
    | "fig4" -> fig4 ()
    | "table4" -> table4 ()
    | "table5" -> table5 ()
    | "table6" -> table6 ()
    | "readahead" -> readahead_section ()
    | "scaling" -> scaling ()
    | "server" -> server_section ()
    | "coldstart" -> coldstart_section ()
    | "ablate" -> ablate ()
    | "upgrade" -> upgrade ()
    | "pushdown" -> pushdown_section ()
    | "bechamel" -> bechamel ()
    | "all" -> all ()
    | s ->
        Printf.eprintf
          "unknown section %S (use table1..table6, fig2..fig4, readahead, \
           scaling, server, coldstart, ablate, upgrade, pushdown, bechamel, \
           all)\n"
          s;
        exit 2
  in
  (match sections with
  | [] -> all ()
  | ss -> List.iter run_section ss);
  let ran = match sections with [] -> [ "all" ] | ss -> ss in
  if !profile then print_profiles ();
  Option.iter (fun p -> write_json p ran) !json_path;
  Option.iter write_trace !trace_path;
  Option.iter write_folded !folded_path
