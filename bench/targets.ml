(** Benchmark targets: the four file-system stacks of the paper's
    evaluation, each brought up on a fresh simulated machine. *)

let ok = Kernel.Errno.ok_exn

let xv6_maker : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

type system = Bento_fs | C_kernel | Fuse | Ext4

let system_name = function
  | Bento_fs -> "Bento"
  | C_kernel -> "C-Kernel"
  | Fuse -> "FUSE"
  | Ext4 -> "Ext4"

let all_xv6 = [ Bento_fs; C_kernel; Fuse ]
let all_with_ext4 = [ Bento_fs; C_kernel; Fuse; Ext4 ]

(* ------------------------------------------------------------------ *)
(* Observability: when the harness is asked for machine-readable output
   ([--json]) or traces ([--trace]), each run's tracer and end-of-run
   counter snapshot are kept so main can write them out afterwards. *)

type observation = {
  mutable obs_label : string;
  obs_tracer : Sim.Trace.t;
  obs_counters : (string * int64) list;
  obs_profile : Sim.Profile.t option;
}

let observe = ref false  (** record an [observation] per run *)

let trace_enabled = ref false  (** additionally enable the span tracer *)

let profile_enabled = ref false
(** additionally enable per-layer virtual-time attribution *)

let flight_enabled = ref true
(** the always-on flight recorder; the ablation section switches it off to
    price its overhead *)

let trace_capacity = ref (1 lsl 20)
(** ring slots when tracing: a server fleet sweep emits far more events
    than the 64Ki default, and causal reconstruction needs the whole run *)

let observations : observation list ref = ref []  (* newest first *)

(** Rename the most recent observation — called by the harness right after
    a run, once it knows the section/config the run belonged to. *)
let relabel_last label =
  match !observations with
  | o :: _ -> o.obs_label <- label
  | [] -> ()

let last_counters () =
  match !observations with o :: _ -> o.obs_counters | [] -> []

let last_tracer () =
  match !observations with o :: _ -> Some o.obs_tracer | [] -> None

let last_profile () =
  match !observations with o :: _ -> o.obs_profile | [] -> None

(** Per-layer attribution table of one profiled run. The last line is the
    conservation cross-check: attributed must equal elapsed. *)
let print_profile ~label p =
  let elapsed = Sim.Profile.elapsed p in
  let pct ns =
    if elapsed = 0L then 0.
    else Int64.to_float ns /. Int64.to_float elapsed *. 100.
  in
  Printf.printf "-- %s --\n" label;
  Printf.printf "%-16s %16s %7s %16s\n" "layer" "self_ns" "self%" "total_ns";
  List.iter
    (fun (lt : Sim.Profile.layer_time) ->
      Printf.printf "%-16s %16Ld %6.1f%% %16Ld\n" lt.layer lt.self_ns
        (pct lt.self_ns) lt.total_ns)
    (Sim.Profile.summary p);
  Printf.printf "%-16s %16Ld         attributed %Ld%s\n%!" "elapsed" elapsed
    (Sim.Profile.attributed p)
    (if Sim.Profile.attributed p = elapsed then "" else "  (MISMATCH)")

(** Lock-wait attribution table of one profiled run: the virtual time
    fibers spent blocked on each named lock, keyed "<layer>/<lock>" by the
    layer that was innermost when they blocked. Kept apart from the
    self-time tables (blocked time overlaps other fibers' running time). *)
let print_lock_waits ?(top = 8) ~label p =
  match Sim.Profile.lock_waits p with
  | [] -> Printf.printf "-- %s: no lock waits --\n%!" label
  | waits ->
      Printf.printf "-- %s --\n" label;
      Printf.printf "%-28s %16s\n" "layer/lock" "wait_ns";
      List.iteri
        (fun i (k, ns) ->
          if i < top then Printf.printf "%-28s %16Ld\n" k ns)
        waits;
      Printf.printf "%!"

(** Bring up [system] on a fresh machine, run [f os], tear down, drain the
    simulation, and return [f]'s result. [page_cap] and [cas_blocks] are
    honoured by the Bento and FUSE stacks (the coldstart section needs a
    CAS region and room for many tenants' aliased pages); the C and Ext4
    baselines ignore them. *)
let run ?(disk_blocks = 2 * 1024 * 1024) ?(background = true) ?page_cap
    ?cas_blocks ?label system f =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  if !trace_enabled then begin
    Sim.Trace.set_capacity (Kernel.Machine.tracer machine) !trace_capacity;
    Sim.Trace.set_enabled (Kernel.Machine.tracer machine) true
  end;
  Sim.Flight.set_enabled (Kernel.Machine.flight machine) !flight_enabled;
  if !profile_enabled then Sim.Profile.enable (Kernel.Machine.profile machine);
  let result = ref None in
  Kernel.Machine.spawn ~name:"bench" machine (fun () ->
      match system with
      | Bento_fs ->
          ok (Bento.Bentofs.mkfs ?cas_blocks machine xv6_maker);
          let vfs, h =
            ok
              (Bento.Bentofs.mount ~background ?page_cap ?cas_blocks machine
                 xv6_maker)
          in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Bento.Bentofs.unmount vfs h
      | C_kernel ->
          ok (Vfs_xv6.mkfs machine);
          let vfs = ok (Vfs_xv6.mount ~background machine) in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Vfs_xv6.unmount vfs
      | Fuse ->
          ok (Bento.Bentofs.mkfs ?cas_blocks machine xv6_maker);
          let vfs, h =
            ok
              (Bento_user.mount ~background ?page_cap ?cas_blocks machine
                 xv6_maker)
          in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Bento_user.unmount vfs h
      | Ext4 ->
          ok (Ext4sim.Ext4.mkfs machine);
          let vfs, h = ok (Ext4sim.Ext4.mount ~background machine) in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Ext4sim.Ext4.unmount vfs h);
  Kernel.Machine.run machine;
  if !profile_enabled then
    Sim.Profile.disable (Kernel.Machine.profile machine);
  if !observe then begin
    let obs_label =
      match label with Some l -> l | None -> system_name system
    in
    observations :=
      {
        obs_label;
        obs_tracer = Kernel.Machine.tracer machine;
        obs_counters = Kernel.Machine.counter_snapshot machine;
        obs_profile =
          (if !profile_enabled then Some (Kernel.Machine.profile machine)
           else None);
      }
      :: !observations
  end;
  match !result with
  | Some r -> r
  | None -> failwith "bench target produced no result"
