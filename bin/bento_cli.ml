(** The bento command-line tool: inspect layouts, run smoke workloads with
    statistics, run crash-recovery trials, and print the bug study.

      dune exec bin/bento_cli.exe -- layout --blocks 1048576
      dune exec bin/bento_cli.exe -- smoke --fs bento
      dune exec bin/bento_cli.exe -- crashtest --trials 10
      dune exec bin/bento_cli.exe -- bugstudy *)

open Cmdliner

let ok = Kernel.Errno.ok_exn
let xv6 : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

(* ------------------------------------------------------------------ *)

let layout_cmd =
  let blocks =
    Arg.(value & opt int (1024 * 1024) & info [ "blocks" ] ~doc:"Device size in 4KB blocks")
  in
  let run blocks =
    let ninodes = min 262144 (max 4096 (blocks / 32)) in
    let sb = Xv6fs.Layout.compute ~size:blocks ~ninodes ~nlog:126 in
    Printf.printf "xv6fs layout for a %d-block (%d MB) device:\n" blocks
      (blocks * 4096 / 1024 / 1024);
    Printf.printf "  superblock   block 1\n";
    Printf.printf "  log          blocks %d..%d (%d blocks incl. header)\n"
      sb.Xv6fs.Layout.logstart
      (sb.Xv6fs.Layout.logstart + sb.Xv6fs.Layout.nlog - 1)
      sb.Xv6fs.Layout.nlog;
    Printf.printf "  inodes       blocks %d..%d (%d inodes)\n"
      sb.Xv6fs.Layout.inodestart
      (sb.Xv6fs.Layout.bmapstart - 1)
      sb.Xv6fs.Layout.ninodes;
    Printf.printf "  bitmap       blocks %d..%d\n" sb.Xv6fs.Layout.bmapstart
      (sb.Xv6fs.Layout.datastart - 1);
    Printf.printf "  data         blocks %d..%d (%d blocks, %d MB)\n"
      sb.Xv6fs.Layout.datastart (sb.Xv6fs.Layout.size - 1)
      sb.Xv6fs.Layout.nblocks
      (sb.Xv6fs.Layout.nblocks * 4096 / 1024 / 1024);
    Printf.printf "  max file     %d bytes (%.2f GB)\n"
      Xv6fs.Layout.max_file_size
      (float_of_int Xv6fs.Layout.max_file_size /. 1e9)
  in
  Cmd.v (Cmd.info "layout" ~doc:"Print the computed on-disk layout")
    Term.(const run $ blocks)

(* ------------------------------------------------------------------ *)

let smoke_cmd =
  let fs_arg =
    Arg.(value & opt string "bento" & info [ "fs" ] ~doc:"bento | c-kernel | fuse | ext4")
  in
  let run fsname =
    let machine = Kernel.Machine.create ~disk_blocks:(256 * 1024) ~block_size:4096 () in
    Kernel.Machine.spawn machine (fun () ->
        let os, finish =
          match fsname with
          | "bento" ->
              ok (Bento.Bentofs.mkfs machine xv6);
              let vfs, h = ok (Bento.Bentofs.mount machine xv6) in
              (Kernel.Os.create vfs, fun () -> Bento.Bentofs.unmount vfs h)
          | "c-kernel" ->
              ok (Vfs_xv6.mkfs machine);
              let vfs = ok (Vfs_xv6.mount machine) in
              (Kernel.Os.create vfs, fun () -> Vfs_xv6.unmount vfs)
          | "fuse" ->
              ok (Bento.Bentofs.mkfs machine xv6);
              let vfs, h = ok (Bento_user.mount machine xv6) in
              (Kernel.Os.create vfs, fun () -> Bento_user.unmount vfs h)
          | "ext4" ->
              ok (Ext4sim.Ext4.mkfs machine);
              let vfs, h = ok (Ext4sim.Ext4.mount machine) in
              (Kernel.Os.create vfs, fun () -> Ext4sim.Ext4.unmount vfs h)
          | other -> failwith ("unknown fs: " ^ other)
        in
        let t0 = Kernel.Machine.now machine in
        ok (Kernel.Os.mkdir os "/smoke");
        for i = 0 to 99 do
          let fd =
            ok (Kernel.Os.open_ os (Printf.sprintf "/smoke/f%02d" i) Kernel.Os.(creat wronly))
          in
          ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make 16384 'x')));
          if i mod 10 = 0 then ok (Kernel.Os.fsync os fd);
          ok (Kernel.Os.close os fd)
        done;
        for i = 0 to 99 do
          ignore (ok (Kernel.Os.read_file os (Printf.sprintf "/smoke/f%02d" i)))
        done;
        for i = 0 to 99 do
          ok (Kernel.Os.unlink os (Printf.sprintf "/smoke/f%02d" i))
        done;
        ok (Kernel.Os.sync os);
        let dt = Int64.sub (Kernel.Machine.now machine) t0 in
        Printf.printf "%s: 100 x (create 16K + read + delete) in %.3f virtual ms\n"
          fsname
          (Int64.to_float dt /. 1e6);
        finish ());
    Kernel.Machine.run machine;
    let stats = Device.Ssd.stats (Kernel.Machine.disk machine) in
    Printf.printf "device: ";
    Sim.Stats.iter_counters stats (fun name c ->
        Printf.printf "%s=%Ld " name (Sim.Stats.Counter.get c));
    print_newline ()
  in
  Cmd.v (Cmd.info "smoke" ~doc:"Run a smoke workload and print device statistics")
    Term.(const run $ fs_arg)

(* ------------------------------------------------------------------ *)

let crashtest_cmd =
  let trials = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Number of trials") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed") in
  let run trials seed =
    let failures = ref 0 in
    for t = 0 to trials - 1 do
      let machine = Kernel.Machine.create ~disk_blocks:32768 ~block_size:4096 () in
      Kernel.Machine.spawn machine (fun () ->
          ok (Bento.Bentofs.mkfs machine xv6);
          let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6) in
          let os = Kernel.Os.create vfs in
          let rng = Sim.Rng.create (seed + t) in
          for i = 0 to 29 do
            let fd =
              ok (Kernel.Os.open_ os (Printf.sprintf "/f%d" i) Kernel.Os.(creat wronly))
            in
            ignore
              (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make (1 + Sim.Rng.int rng 20000) 'c')));
            if Sim.Rng.bool rng then ok (Kernel.Os.fsync os fd);
            ok (Kernel.Os.close os fd)
          done;
          Device.Ssd.crash ~survive:(Sim.Rng.float rng) ~rng (Kernel.Machine.disk machine);
          let vfs2, h2 = ok (Bento.Bentofs.mount ~background:false machine xv6) in
          Bento.Bentofs.unmount vfs2 h2;
          ignore (vfs, h));
      Kernel.Machine.run machine;
      let r = Xv6fs.Fsck.check_device (Kernel.Machine.disk machine) in
      if Xv6fs.Fsck.ok r then
        Printf.printf "trial %2d: consistent (%d files, %d dirs, %d blocks)\n"
          t r.Xv6fs.Fsck.files r.Xv6fs.Fsck.directories r.Xv6fs.Fsck.used_blocks
      else begin
        incr failures;
        Printf.printf "trial %2d: INCONSISTENT\n" t;
        List.iter (fun e -> Printf.printf "    %s\n" e) r.Xv6fs.Fsck.errors
      end
    done;
    Printf.printf "%d/%d trials consistent after crash + recovery\n"
      (trials - !failures) trials;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "crashtest" ~doc:"Crash-inject the Bento xv6 file system and fsck the result")
    Term.(const run $ trials $ seed)

(* ------------------------------------------------------------------ *)

let inspect_cmd =
  let fs_arg =
    Arg.(
      value & opt string "bento"
      & info [ "fs" ] ~doc:"bento | c-kernel | fuse | ext4")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the inspector JSON to $(docv) instead of stdout")
  in
  let flight_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:"Write the flight-recorder ring dump to $(docv) instead of \
                stdout")
  in
  let run fsname json_path flight_path =
    let ok_r = function
      | Ok v -> v
      | Error e -> failwith ("inspect: " ^ Kernel.Errno.to_string e)
    in
    let machine =
      Kernel.Machine.create ~disk_blocks:(256 * 1024) ~block_size:4096 ()
    in
    let captured = ref Util.Json.Null in
    Kernel.Machine.spawn machine (fun () ->
        let os, finish =
          match fsname with
          | "bento" ->
              ok (Bento.Bentofs.mkfs machine xv6);
              let vfs, h = ok (Bento.Bentofs.mount machine xv6) in
              (Kernel.Os.create vfs, fun () -> Bento.Bentofs.unmount vfs h)
          | "c-kernel" ->
              ok (Vfs_xv6.mkfs machine);
              let vfs = ok (Vfs_xv6.mount machine) in
              (Kernel.Os.create vfs, fun () -> Vfs_xv6.unmount vfs)
          | "fuse" ->
              ok (Bento.Bentofs.mkfs machine xv6);
              let vfs, h = ok (Bento_user.mount machine xv6) in
              (Kernel.Os.create vfs, fun () -> Bento_user.unmount vfs h)
          | "ext4" ->
              ok (Ext4sim.Ext4.mkfs machine);
              let vfs, h = ok (Ext4sim.Ext4.mount machine) in
              (Kernel.Os.create vfs, fun () -> Ext4sim.Ext4.unmount vfs h)
          | other -> failwith ("unknown fs: " ^ other)
        in
        (* local load so the bcache/log/journal probes have state *)
        ok (Kernel.Os.mkdir os "/smoke");
        for i = 0 to 19 do
          ok
            (Kernel.Os.write_file os
               (Printf.sprintf "/smoke/f%02d" i)
               (Bytes.make 16384 'x'))
        done;
        ok (Kernel.Os.sync os);
        (* a registered pushdown program with traffic so the pushdown
           table shows live rows at snapshot time *)
        let reg = Kernel.Pushdown.registry machine in
        let cap = Kernel.Pushdown.grant reg ~client:"cli" in
        (match
           Kernel.Pushdown.register reg ~cap ~name:"smoke-filter"
             (Kernel.Pushdown.Dir_filter { contains = "f0" })
         with
        | Ok () -> ()
        | Error e ->
            failwith ("pushdown register: " ^ Kernel.Errno.to_string e));
        ignore (ok (Kernel.Os.readdir_filtered os "/smoke" ~prog:"smoke-filter"));
        (* a live multi-tenant server so the lease/qos/slo/session probes
           show real entries at snapshot time *)
        let server =
          Server.Fileserver.start machine os
            {
              Server.Fileserver.tenants =
                [
                  ("gold", { Server.Qos.weight = 4; max_inflight = 16 });
                  ("bronze", { Server.Qos.weight = 1; max_inflight = 8 });
                ];
              max_inflight_total = 32;
            }
        in
        let listener = Server.Fileserver.listener server in
        let drive tenant =
          let cl = ok_r (Server.Client.attach machine listener ~tenant) in
          let root = (Server.Client.root cl).Server.Proto.ino in
          for i = 0 to 9 do
            let a =
              ok_r
                (Server.Client.create cl ~dir:root
                   ~name:(Printf.sprintf "%s%02d" tenant i)
                   ~write:true)
            in
            ignore
              (ok_r
                 (Server.Client.write cl a.Server.Proto.ino ~off:0
                    (Bytes.make 4096 'i')));
            ok_r (Server.Client.commit cl a.Server.Proto.ino)
          done;
          cl
        in
        let gold = drive "gold" in
        let bronze = drive "bronze" in
        (* snapshot while the sessions still hold their write leases *)
        captured := Kernel.Machine.inspect machine;
        Server.Client.detach gold;
        Server.Client.detach bronze;
        Server.Fileserver.stop server;
        finish ());
    Kernel.Machine.run machine;
    let emit path content what =
      match path with
      | None -> print_string content
      | Some p ->
          let oc = open_out p in
          output_string oc content;
          close_out oc;
          Printf.eprintf "wrote %s to %s\n%!" what p
    in
    emit json_path (Util.Json.to_string !captured ^ "\n") "inspector JSON";
    emit flight_path
      (Sim.Flight.render
         (Kernel.Machine.flight machine)
         ~reason:"bento_cli inspect" ~req:0L)
      "flight ring"
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Bring up a stack plus the multi-tenant server, run a smoke \
          workload, and dump the live internal-state inspectors (bcache \
          residency, CAS page table, lease table, WFQ depths, journal \
          state, SLO windows) and the flight-recorder ring")
    Term.(const run $ fs_arg $ json_out $ flight_out)

(* ------------------------------------------------------------------ *)

let bugstudy_cmd =
  let run () = Format.printf "%a" Bugstudy.Study.pp_table1 () in
  Cmd.v (Cmd.info "bugstudy" ~doc:"Print the Table 1 bug study") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let check_cmd =
  let env_seed () =
    match Sys.getenv_opt "BENTO_SEED" with
    | Some s -> ( match int_of_string_opt s with Some n -> Some n | None -> None)
    | None -> None
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ]
          ~doc:"Workload seed (default: \\$BENTO_SEED if set, else 42)")
  in
  let ops = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Operations per workload") in
  let points =
    Arg.(
      value
      & opt string "sample"
      & info [ "crash-points" ]
          ~doc:"all | sample | none — which crash points to replay")
  in
  let sample =
    Arg.(value & opt int 32 & info [ "sample" ] ~doc:"Crash points in sample mode")
  in
  let fs =
    Arg.(
      value
      & opt string "all"
      & info [ "fs" ] ~doc:"xv6 | fuse | ext4 | all — stacks to check")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject-bug" ]
          ~doc:
            "Deliberately corrupt the log/journal header before every \
             recovery replay; the checker must then report counterexamples \
             (self-test)")
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump-trace" ]
          ~doc:"Print the generated op trace (with indices) and exit")
  in
  let server_sessions =
    Arg.(
      value & opt int 0
      & info [ "server-sessions" ]
          ~doc:
            "Also crash the stack under the multi-tenant file server with N \
             client sessions holding dirty write-lease caches mid-commit, \
             and verify every replay against the per-session oracle \
             (0 = skip; xv6 stack)")
  in
  let run seed ops points sample fs inject dump server_sessions =
    let seed =
      match seed with
      | Some s -> s
      | None -> ( match env_seed () with Some s -> s | None -> 42)
    in
    if dump then begin
      let trace = Check.Workload.generate ~seed ~ops () in
      Array.iteri
        (fun i op ->
          Printf.printf "op %4d: %s%s\n" i
            (Check.Model.op_to_string op)
            (match trace.Check.Workload.expected.(i) with
            | Check.Model.Ok_unit -> ""
            | o -> "  => " ^ Check.Model.outcome_to_string o))
        trace.Check.Workload.ops;
      exit 0
    end;
    let stacks =
      match fs with
      | "all" -> Check.Stack.all
      | s -> (
          match Check.Stack.of_string s with
          | Some k -> [ k ]
          | None ->
              prerr_endline ("unknown --fs: " ^ s ^ " (want xv6|fuse|ext4|all)");
              exit 2)
    in
    let mode =
      match points with
      | "all" -> Some Check.Checker.All
      | "sample" -> Some (Check.Checker.Sample sample)
      | "none" -> None
      | s ->
          prerr_endline ("unknown --crash-points: " ^ s ^ " (want all|sample|none)");
          exit 2
    in
    let report =
      Check.Checker.run ~inject_bug:inject ~mode ~seed ~ops ~stacks ()
    in
    Format.printf "%a@?" Check.Checker.pp_report report;
    let server_ok =
      if server_sessions <= 0 then true
      else begin
        let r = Check.Server_crash.run ~sessions:server_sessions ~seed () in
        Format.printf "%a@?" Check.Server_crash.pp_report r;
        Check.Server_crash.report_ok r
      end
    in
    if not (Check.Checker.report_ok report && server_ok) then begin
      Printf.printf
        "FAIL: reproduce with: bento_cli check --seed %d --ops %d --fs %s --crash-points %s --server-sessions %d\n"
        seed ops fs points server_sessions;
      exit 1
    end
    else Printf.printf "OK: no oracle violations, no divergences (seed %d)\n" seed
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Crash-consistency and differential checker: one seeded workload, \
          every stack, every crash point")
    Term.(
      const run $ seed $ ops $ points $ sample $ fs $ inject $ dump
      $ server_sessions)

(* ------------------------------------------------------------------ *)

let benchdiff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline $(b,bench --json) document")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"New $(b,bench --json) document")
  in
  let tol =
    Arg.(
      value & opt string "5%"
      & info [ "tolerance" ]
          ~doc:"Allowed relative regression per gated metric, e.g. 5% or 0.05")
  in
  let run old_path new_path tol =
    let read_file p =
      let ic = open_in_bin p in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    (* exit codes: 0 no regression, 1 regression, 2 bad input/usage,
       3 incomparable run metadata *)
    let fail code msg =
      prerr_endline ("bench-diff: " ^ msg);
      exit code
    in
    let tolerance =
      match Workloads.Bench_diff.parse_tolerance tol with
      | Ok t -> t
      | Error m -> fail 2 m
    in
    let load p =
      match Workloads.Bench_diff.doc_of_string (read_file p) with
      | Ok d -> d
      | Error e -> fail 2 (p ^ ": " ^ Workloads.Bench_diff.error_to_string e)
    in
    let old_doc = load old_path in
    let new_doc = load new_path in
    match Workloads.Bench_diff.diff ~tolerance old_doc new_doc with
    | Error (Workloads.Bench_diff.Incomparable _ as e) ->
        fail 3 (Workloads.Bench_diff.error_to_string e)
    | Error e -> fail 2 (Workloads.Bench_diff.error_to_string e)
    | Ok report ->
        print_string (Workloads.Bench_diff.render ~tolerance report);
        if report.Workloads.Bench_diff.regressions > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench --json runs and fail on throughput/latency \
          regressions beyond a tolerance")
    Term.(const run $ old_arg $ new_arg $ tol)

let () =
  let doc = "Bento: high-velocity kernel file systems (simulated reproduction)" in
  let info = Cmd.info "bento_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            layout_cmd; smoke_cmd; crashtest_cmd; inspect_cmd; bugstudy_cmd;
            check_cmd; benchdiff_cmd;
          ]))
