(** The xv6 file system, written against the Bento file-operations and
    kernel-services APIs only (§6 of the paper).

    The implementation follows xv6's layering — write-ahead log, block and
    inode allocators, in-core inode cache with sleeplocks, directories —
    with the paper's evaluation changes applied: 4 KB blocks, locks around
    inode and block allocation, and a double-indirect block so files reach
    4 GB (§6.1). Because it is a functor over [Bentoks.KSERVICES], the same
    code runs in the simulated kernel (BentoFS) and at user level behind
    FUSE (§4.9) — the "same code in both environments" goal.

    Log discipline (per transaction):
    1. snapshot the pinned modified blocks under the log lock and copy the
       images into the contiguous log area (batched, async across device
       channels),
    2. write the checksummed log header and FLUSH — the commit point,
    3. install the snapshot images to their home locations with
       cache-bypassing writes and FLUSH,
    4. clear the header (made durable by the next commit or unmount).
    Recovery validates the header checksum, so a torn commit is discarded
    rather than replayed.

    Commit is a *group commit*: the open transaction is cut (snapshotted)
    under the lock and the I/O runs with the lock released, so new
    operations join the next open transaction instead of convoying on the
    commit — and an fsync whose data was already covered by a concurrent
    commit returns without touching the device. *)

module L = Layout

module Make (K : Bento.Bentoks.KSERVICES) = struct
  open Bento.Fs_api

  let name = "xv6fs"
  let version = 1
  let max_file_size = L.max_file_size

  let bsize = K.block_size
  let () = assert (bsize = L.block_size)

  type 'a res = ('a, Kernel.Errno.t) result

  let ( let* ) (r : 'a res) f : 'b res =
    match r with Ok v -> f v | Error _ as e -> e

  (* ---------------------------------------------------------------- *)
  (* Write-ahead log.                                                  *)

  module Log = struct
    let max_op_blocks = 16
    (** Per-operation reservation; large writes are chunked to stay under
        it. *)

    type t = {
      header_block : int;
      start : int;  (** first log data block *)
      capacity : int;
      lock : K.Kmutex.t;
      cond : K.Kcondvar.t;
      mutable outstanding : int;
      mutable committing : bool;
      mutable order : int list;  (** staged home blocks, reverse order *)
      staged : (int, unit) Hashtbl.t;  (** home blocks pinned in cache *)
      mutable eager_dirty : bool;
          (** a metadata operation staged blocks since the last commit *)
      mutable seq_open : int;  (** id of the open (accumulating) transaction *)
      mutable seq_done : int;  (** highest transaction made durable *)
      mutable force_waiters : int;
          (** forcers draining in-flight operations to cut a commit; while
              nonzero (and no commit is running) new operations wait so the
              drain terminates under load *)
      mutable commits : int;
      mutable absorptions : int;
      mutable flush_on_commit : bool;
          (** ablation switch: false = volatile commits (unsafe) *)
    }

    let create (sb : L.superblock) =
      let t =
        {
          header_block = sb.L.logstart;
          start = sb.L.logstart + 1;
          capacity = min (sb.L.nlog - 1) L.log_max_entries;
          lock = K.Kmutex.create ~name:"log" ();
          cond = K.Kcondvar.create ();
          outstanding = 0;
          committing = false;
          order = [];
          staged = Hashtbl.create 64;
          eager_dirty = false;
          seq_open = 1;
          seq_done = 0;
          force_waiters = 0;
          commits = 0;
          absorptions = 0;
          flush_on_commit = true;
        }
      in
      K.register_inspector "log" (fun () ->
          [
            ("capacity", t.capacity);
            ("staged", Hashtbl.length t.staged);
            ("free_blocks", t.capacity - Hashtbl.length t.staged);
            ("outstanding", t.outstanding);
            ("commits", t.commits);
            ("absorptions", t.absorptions);
          ]);
      t

    (** Record a modified buffer in the running transaction. The buffer is
        pinned in the cache until installed; a block already staged is
        absorbed. The caller still brelse's its own reference. *)
    let log_write t (b : K.Buffer.t) =
      K.Kmutex.lock t.lock;
      if t.outstanding < 1 then begin
        K.Kmutex.unlock t.lock;
        invalid_arg "log_write outside of a transaction"
      end;
      let blk = K.Buffer.block b in
      K.cpu K.costs.Kernel.Cost.log_copy_per_block;
      (if Hashtbl.mem t.staged blk then t.absorptions <- t.absorptions + 1
       else begin
         if Hashtbl.length t.staged >= t.capacity then begin
           K.Kmutex.unlock t.lock;
           failwith "xv6fs log: transaction overflow"
         end;
         K.pin b;
         Hashtbl.replace t.staged blk ();
         t.order <- blk :: t.order;
         K.trace_counter "log:free_blocks"
           (t.capacity - Hashtbl.length t.staged)
       end);
      K.Kmutex.unlock t.lock

    (* Write a snapshotted batch of (home block, image) pairs to the log
       area, commit, install. Runs with [committing = true] but *without*
       the log lock: operations may join the next open transaction during
       the I/O (group commit). The images are installed with
       cache-bypassing writes because the cached home buffers may already
       carry newer, uncommitted contents from those operations. *)
    let do_commit t batch =
      let n = List.length batch in
      if n > 0 then begin
        K.profile "log" @@ fun () ->
        t.commits <- t.commits + 1;
        (* Machine-wide commit accounting, uniform across the journalled
           stacks (mean commit size = log_commit_blocks / log_commits). *)
        K.counter_add "log_commits" 1;
        K.counter_add "log_commit_blocks" n;
        (* 1. log data blocks, contiguous from t.start *)
        let log_bufs =
          List.mapi
            (fun i (_, image) ->
              let dst = K.getblk (t.start + i) in
              K.cpu K.costs.Kernel.Cost.log_copy_per_block;
              Bytes.blit image 0 (K.Buffer.data dst) 0 bsize;
              dst)
            batch
        in
        K.bwrite_all log_bufs;
        let checksum =
          L.checksum_blocks (List.map (fun b -> K.Buffer.data b) log_bufs)
        in
        List.iter K.brelse log_bufs;
        (* 2. checksummed header; FLUSH = commit point *)
        let hdr = K.getblk t.header_block in
        L.put_log_header (K.Buffer.data hdr)
          { L.n; checksum; targets = Array.of_list (List.map fst batch) };
        K.bwrite hdr;
        K.brelse hdr;
        if t.flush_on_commit then K.flush ();
        (* 3. install the snapshot images to their scattered homes,
           bypassing the cache (merged into contiguous commands,
           concurrent across device channels) *)
        K.raw_write_scatter batch;
        (* the images are on the device: drop the stage pins taken by
           log_write *)
        List.iter (fun (blk, _) -> K.with_bread blk K.unpin) batch;
        if t.flush_on_commit then K.flush ();
        (* 4. clear the header; durable by the next commit's flush *)
        let hdr = K.getblk t.header_block in
        L.put_log_header (K.Buffer.data hdr)
          { L.n = 0; checksum = 0L; targets = [||] };
        K.bwrite hdr;
        K.brelse hdr
      end

    (* Cut the open transaction: snapshot its images under the lock, mark
       it committing, and release the lock for the I/O. New operations
       join the next open transaction meanwhile; their modifications
       cannot leak into this commit because the images were copied before
       any of them could start. Requires [outstanding = 0] (so nobody is
       mid-modification) and no commit in flight. Lock held on entry and
       exit. *)
    let commit_locked t =
      assert ((not t.committing) && t.outstanding = 0);
      if t.order <> [] then begin
        let seq = t.seq_open in
        t.seq_open <- seq + 1;
        let order = List.rev t.order in
        (* The staged blocks are pinned, so these breads are cache hits;
           nobody holds their sleeplocks across a lock acquisition while
           outstanding = 0, so this cannot deadlock. *)
        let batch =
          List.map
            (fun blk ->
              K.cpu K.costs.Kernel.Cost.log_copy_per_block;
              K.with_bread blk (fun b -> (blk, Bytes.copy (K.Buffer.data b))))
            order
        in
        t.order <- [];
        Hashtbl.reset t.staged;
        t.eager_dirty <- false;
        t.committing <- true;
        K.trace_counter "log:free_blocks" t.capacity;
        (* waiters may now start operations in the fresh open transaction *)
        K.Kcondvar.broadcast t.cond;
        K.Kmutex.unlock t.lock;
        do_commit t batch;
        K.Kmutex.lock t.lock;
        t.seq_done <- seq;
        t.committing <- false;
        K.Kcondvar.broadcast t.cond
      end

    let space_for t nops =
      Hashtbl.length t.staged + ((t.outstanding + nops) * max_op_blocks)
      <= t.capacity

    (** Reserve log space for one operation. [eager] operations (metadata
        syscalls) commit at [end_op] when no operation is outstanding — xv6
        semantics. Lazy operations (data writeback) only commit on log
        pressure, fsync, or sync: the group commit a Linux port needs so the
        write path is not one-commit-per-page. *)
    let begin_op ?(eager = true) t =
      ignore eager;
      K.Kmutex.lock t.lock;
      let rec wait () =
        if t.force_waiters > 0 && not t.committing then begin
          (* an fsync is draining the open transaction to cut a commit;
             joining now would push the drain out indefinitely under load.
             Once the cut happens ([committing] set) we join the fresh
             open transaction — the group-commit fast path. *)
          K.Kcondvar.wait t.cond t.lock;
          wait ()
        end
        else if not (space_for t 1) then
          if t.outstanding = 0 && not t.committing then begin
            (* log pressure with no one else to commit: do it ourselves *)
            commit_locked t;
            wait ()
          end
          else begin
            K.Kcondvar.wait t.cond t.lock;
            wait ()
          end
        else t.outstanding <- t.outstanding + 1
      in
      wait ();
      K.Kmutex.unlock t.lock

    let end_op ?(eager = true) t =
      K.Kmutex.lock t.lock;
      t.outstanding <- t.outstanding - 1;
      if eager && t.order <> [] then t.eager_dirty <- true;
      (* xv6's quiesce-point commit. If a commit is already in flight, the
         open transaction simply keeps accumulating and commits at the
         next quiesce, force, or pressure point. *)
      if
        t.outstanding = 0 && t.eager_dirty && t.order <> []
        && not t.committing
      then commit_locked t;
      K.Kcondvar.broadcast t.cond;
      K.Kmutex.unlock t.lock

    let with_op ?(eager = true) t f =
      begin_op ~eager t;
      match f () with
      | v ->
          end_op ~eager t;
          v
      | exception exn ->
          end_op ~eager t;
          raise exn

    (** Make everything staged before this call durable (fsync / sync /
        upgrade) — the group-commit path. The forcer computes the youngest
        transaction that can hold its data; once that transaction is
        durable it returns, whether it drove the commit itself, rode on
        one already in flight, or found a concurrent forcer had covered it
        (then it never touches the device). *)
    let force t =
      K.Kmutex.lock t.lock;
      let target =
        if t.order <> [] then t.seq_open
        else if t.committing then t.seq_open - 1
        else t.seq_done
      in
      if t.seq_done >= target then begin
        K.Kmutex.unlock t.lock;
        (* Nothing staged and nothing in flight: barrier for stray
           volatile writes (e.g. the cleared header). *)
        K.flush ()
      end
      else begin
        t.force_waiters <- t.force_waiters + 1;
        let rec drive () =
          if t.seq_done < target then
            if t.committing || t.outstanding > 0 then begin
              K.Kcondvar.wait t.cond t.lock;
              drive ()
            end
            else begin
              commit_locked t;
              drive ()
            end
        in
        drive ();
        t.force_waiters <- t.force_waiters - 1;
        if t.force_waiters = 0 then K.Kcondvar.broadcast t.cond;
        K.Kmutex.unlock t.lock
      end

    (** Replay a committed-but-not-installed transaction after a crash. *)
    let recover t =
      let hdr = K.bread t.header_block in
      let h = L.get_log_header (K.Buffer.data hdr) in
      K.brelse hdr;
      if h.L.n > 0 then begin
        let log_bufs =
          List.init h.L.n (fun i -> K.bread (t.start + i))
        in
        let checksum =
          L.checksum_blocks (List.map (fun b -> K.Buffer.data b) log_bufs)
        in
        if Int64.equal checksum h.L.checksum then begin
          K.printk
            (Printf.sprintf "xv6fs: recovering %d block(s) from the log" h.L.n);
          (* install the logged blocks to their scattered homes in one
             plugged bio batch *)
          let bp = K.Bio.plug () in
          let homes =
            List.mapi
              (fun i lb ->
                let home = K.getblk h.L.targets.(i) in
                Bytes.blit (K.Buffer.data lb) 0 (K.Buffer.data home) 0 bsize;
                K.Bio.add bp home;
                home)
              log_bufs
          in
          K.Bio.wait bp;
          List.iter K.brelse homes;
          K.flush ()
        end;
        (if not (Int64.equal checksum h.L.checksum) then
           K.printk
             (Printf.sprintf
                "xv6fs: discarding torn log commit (%d blocks, bad checksum)"
                h.L.n));
        List.iter K.brelse log_bufs;
        let hdr = K.getblk t.header_block in
        L.put_log_header (K.Buffer.data hdr)
          { L.n = 0; checksum = 0L; targets = [||] };
        K.bwrite hdr;
        K.brelse hdr;
        K.flush ()
      end
  end

  (* ---------------------------------------------------------------- *)
  (* File-system instance state.                                       *)

  type inode = {
    inum : int;
    ilock : K.Kmutex.t;
    mutable valid : bool;
    mutable ftype : L.ftype;
    mutable nlink : int;
    mutable size : int;
    mutable addrs : int array;
    mutable refcount : int;  (** in-core references (icache) *)
    mutable nopen : int;  (** kernel open-file references *)
  }

  type t = {
    sb : L.superblock;
    log : Log.t;
    icache : (int, inode) Hashtbl.t;
    icache_lock : K.Kmutex.t;
    alloc_lock : K.Kmutex.t;  (** §6.1: lock around block/inode allocation *)
    mutable balloc_rotor : int;  (** next data block to try *)
    mutable ialloc_rotor : int;
    mutable free_blocks : int;
    mutable free_inodes : int;
    rename_lock : K.Kmutex.t;
  }

  (* ---------------------------------------------------------------- *)
  (* Block allocator (on-disk bitmap with an in-memory rotor).          *)

  let bitmap_get data bit =
    Char.code (Bytes.get data (bit / 8)) land (1 lsl (bit mod 8)) <> 0

  let bitmap_set data bit v =
    let byte = Char.code (Bytes.get data (bit / 8)) in
    let mask = 1 lsl (bit mod 8) in
    let byte = if v then byte lor mask else byte land lnot mask in
    Bytes.set data (bit / 8) (Char.chr byte)

  (** Allocate a zeroed data block inside the current transaction. *)
  let balloc t : int res =
    K.Kmutex.with_lock t.alloc_lock (fun () ->
        let total = t.sb.L.size in
        let rec scan tried b =
          if tried > total then Error Kernel.Errno.ENOSPC
          else begin
            let b = if b >= total then t.sb.L.datastart else b in
            let bmb = K.bread (L.bblock t.sb b) in
            (* scan forward within this bitmap block *)
            let bits = bsize * 8 in
            let base = b / bits * bits in
            let rec find bit =
              if bit >= bits || base + bit >= total then None
              else if
                base + bit >= t.sb.L.datastart
                && not (bitmap_get (K.Buffer.data bmb) bit)
              then Some (base + bit)
              else find (bit + 1)
            in
            K.cpu K.costs.Kernel.Cost.block_alloc;
            match find (b - base) with
            | Some blk ->
                bitmap_set (K.Buffer.data bmb) (L.bbit blk) true;
                Log.log_write t.log bmb;
                K.brelse bmb;
                t.balloc_rotor <- blk + 1;
                t.free_blocks <- t.free_blocks - 1;
                (* zero the block so stale data never leaks *)
                K.with_getblk blk (fun zb ->
                    Bytes.fill (K.Buffer.data zb) 0 bsize '\000';
                    Log.log_write t.log zb);
                Ok blk
            | None ->
                K.brelse bmb;
                scan (tried + (bits - (b - base))) (base + bits)
          end
        in
        scan 0 (max t.balloc_rotor t.sb.L.datastart))

  (** Free a data block inside the current transaction. *)
  let bfree t blk =
    if blk < t.sb.L.datastart || blk >= t.sb.L.size then
      invalid_arg "xv6fs.bfree: out of range";
    K.Kmutex.with_lock t.alloc_lock (fun () ->
        let bmb = K.bread (L.bblock t.sb blk) in
        if not (bitmap_get (K.Buffer.data bmb) (L.bbit blk)) then begin
          K.brelse bmb;
          failwith "xv6fs.bfree: freeing free block"
        end;
        bitmap_set (K.Buffer.data bmb) (L.bbit blk) false;
        Log.log_write t.log bmb;
        K.brelse bmb;
        t.free_blocks <- t.free_blocks + 1;
        if blk < t.balloc_rotor then t.balloc_rotor <- blk)

  (* ---------------------------------------------------------------- *)
  (* Inodes.                                                           *)

  let iget t inum =
    K.Kmutex.with_lock t.icache_lock (fun () ->
        match Hashtbl.find_opt t.icache inum with
        | Some ip ->
            ip.refcount <- ip.refcount + 1;
            ip
        | None ->
            let ip =
              {
                inum;
                ilock = K.Kmutex.create ~name:"inode" ();
                valid = false;
                ftype = L.F_free;
                nlink = 0;
                size = 0;
                addrs = Array.make (L.ndirect + 2) 0;
                refcount = 1;
                nopen = 0;
              }
            in
            Hashtbl.add t.icache inum ip;
            ip)

  (* Load the on-disk inode into the in-core copy; call with ilock held. *)
  let iload t ip =
    if not ip.valid then begin
      let b = K.bread (L.iblock t.sb ip.inum) in
      (match L.get_dinode (K.Buffer.data b) ~slot:(L.islot ip.inum) with
      | Ok d ->
          ip.ftype <- d.L.ftype;
          ip.nlink <- d.L.nlink;
          ip.size <- d.L.size;
          ip.addrs <- Array.copy d.L.addrs;
          ip.valid <- true
      | Error msg ->
          K.brelse b;
          failwith ("xv6fs: corrupt inode: " ^ msg));
      K.brelse b
    end

  let ilock t ip =
    K.Kmutex.lock ip.ilock;
    iload t ip

  let iunlock ip = K.Kmutex.unlock ip.ilock

  (** Persist the in-core inode (within the current transaction). *)
  let iupdate t ip =
    let b = K.bread (L.iblock t.sb ip.inum) in
    L.put_dinode (K.Buffer.data b) ~slot:(L.islot ip.inum)
      { L.ftype = ip.ftype; nlink = ip.nlink; size = ip.size; addrs = ip.addrs };
    Log.log_write t.log b;
    K.brelse b

  (** Allocate a fresh on-disk inode of [ftype] (inside a transaction) and
      return its number. The caller igets/ilocks it afterwards — never lock
      an inode while holding the allocation lock, or inode reuse can
      deadlock against writers waiting to allocate blocks. *)
  let ialloc t ftype : int res =
    K.Kmutex.with_lock t.alloc_lock (fun () ->
        let n = t.sb.L.ninodes in
        let rec scan tried inum =
          if tried >= n then Error Kernel.Errno.ENOSPC
          else begin
            let inum = if inum >= n then 1 else inum in
            let b = K.bread (L.iblock t.sb inum) in
            K.cpu K.costs.Kernel.Cost.block_alloc;
            let free =
              match L.get_dinode (K.Buffer.data b) ~slot:(L.islot inum) with
              | Ok d -> d.L.ftype = L.F_free
              | Error _ -> false
            in
            if free then begin
              L.put_dinode (K.Buffer.data b) ~slot:(L.islot inum)
                { L.zero_dinode with L.ftype };
              Log.log_write t.log b;
              K.brelse b;
              t.ialloc_rotor <- inum + 1;
              t.free_inodes <- t.free_inodes - 1;
              (* a stale in-core copy from a previous life of this inum
                 must be reloaded from disk on the next ilock *)
              K.Kmutex.with_lock t.icache_lock (fun () ->
                  match Hashtbl.find_opt t.icache inum with
                  | Some stale -> stale.valid <- false
                  | None -> ());
              Ok inum
            end
            else begin
              K.brelse b;
              scan (tried + 1) (inum + 1)
            end
          end
        in
        scan 0 (max 1 t.ialloc_rotor))

  (* ---------------------------------------------------------------- *)
  (* Block mapping with single and double indirection.                  *)

  let nind = L.nindirect

  (* Read entry [idx] of indirect block [blk]; allocate a child when
     [alloc] and the slot is empty. Returns 0 when absent and not
     allocating. *)
  let indirect_entry t blk idx ~alloc : int res =
    let b = K.bread blk in
    let v = Util.Bytesio.get_u32 (K.Buffer.data b) (idx * 4) in
    if v <> 0 || not alloc then begin
      K.brelse b;
      Ok v
    end
    else
      match balloc t with
      | Error _ as e ->
          K.brelse b;
          e
      | Ok child ->
          Util.Bytesio.set_u32 (K.Buffer.data b) (idx * 4) child;
          Log.log_write t.log b;
          K.brelse b;
          Ok child

  (** Map file block [bn] of [ip] to a disk block; allocates missing blocks
      when [alloc] (requires an open transaction). Returns 0 for a hole when
      not allocating. Call with ilock held. *)
  let bmap t ip bn ~alloc : int res =
    if bn < 0 || bn >= L.max_file_blocks then Error Kernel.Errno.EFBIG
    else if bn < L.ndirect then begin
      if ip.addrs.(bn) <> 0 || not alloc then Ok ip.addrs.(bn)
      else
        let* blk = balloc t in
        ip.addrs.(bn) <- blk;
        Ok blk
    end
    else begin
      let bn = bn - L.ndirect in
      if bn < nind then begin
        (* single indirect *)
        let* ind =
          if ip.addrs.(L.ndirect) <> 0 then Ok ip.addrs.(L.ndirect)
          else if not alloc then Ok 0
          else
            let* blk = balloc t in
            ip.addrs.(L.ndirect) <- blk;
            Ok blk
        in
        if ind = 0 then Ok 0 else indirect_entry t ind bn ~alloc
      end
      else begin
        (* double indirect *)
        let bn = bn - nind in
        let* dind =
          if ip.addrs.(L.ndirect + 1) <> 0 then Ok ip.addrs.(L.ndirect + 1)
          else if not alloc then Ok 0
          else
            let* blk = balloc t in
            ip.addrs.(L.ndirect + 1) <- blk;
            Ok blk
        in
        if dind = 0 then Ok 0
        else
          let* ind = indirect_entry t dind (bn / nind) ~alloc in
          if ind = 0 then Ok 0 else indirect_entry t ind (bn mod nind) ~alloc
      end
    end

  (* ---------------------------------------------------------------- *)
  (* File content read/write (readi / writei). Call with ilock held.    *)

  let readi t ip ~off ~len : Bytes.t res =
    if off < 0 || len < 0 then Error Kernel.Errno.EINVAL
    else begin
      let len = max 0 (min len (ip.size - off)) in
      if len = 0 then Ok Bytes.empty
      else begin
        let out = Bytes.create len in
        let first_bn = off / bsize and last_bn = (off + len - 1) / bsize in
        if first_bn = last_bn then begin
          (* Single-block read: the classic xv6 path. *)
          let boff = off mod bsize in
          let* blk = bmap t ip first_bn ~alloc:false in
          (if blk = 0 then Bytes.fill out 0 len '\000' (* hole *)
           else
             K.with_bread blk (fun b ->
                 Bytes.blit (K.Buffer.data b) boff out 0 len));
          Ok out
        end
        else begin
          (* Multi-block span: map every file block up front, then pull
             the non-hole blocks through the cache in one batched pass —
             adjacent disk blocks merge into single device commands and
             distinct runs read concurrently across channels, instead of
             one serial bread per block. *)
          let rec map_blocks acc bn =
            if bn > last_bn then Ok (List.rev acc)
            else
              let* blk = bmap t ip bn ~alloc:false in
              map_blocks ((bn, blk) :: acc) (bn + 1)
          in
          let* mapped = map_blocks [] first_bn in
          let wanted = List.filter (fun (_, blk) -> blk <> 0) mapped in
          let bufs = ref (K.bread_multi (List.map snd wanted)) in
          List.iter
            (fun (bn, blk) ->
              let lo = max off (bn * bsize)
              and hi = min (off + len) ((bn + 1) * bsize) in
              let n = hi - lo in
              if blk = 0 then Bytes.fill out (lo - off) n '\000' (* hole *)
              else
                match !bufs with
                | b :: rest ->
                    bufs := rest;
                    Bytes.blit (K.Buffer.data b) (lo - (bn * bsize)) out
                      (lo - off) n;
                    K.brelse b
                | [] -> assert false)
            mapped;
          Ok out
        end
      end
    end

  (* Write within the current transaction; caller bounds [len] so the
     transaction fits the log reservation. *)
  let writei_tx t ip ~off data ~from ~len : unit res =
    let rec go done_ =
      if done_ >= len then Ok ()
      else begin
        let abs = off + done_ in
        let bn = abs / bsize in
        let boff = abs mod bsize in
        let n = min (bsize - boff) (len - done_) in
        let* blk = bmap t ip bn ~alloc:true in
        let b =
          (* full-block overwrite needs no read *)
          if n = bsize then K.getblk blk else K.bread blk
        in
        Bytes.blit data (from + done_) (K.Buffer.data b) boff n;
        Log.log_write t.log b;
        K.brelse b;
        go (done_ + n)
      end
    in
    let* () = go 0 in
    if off + len > ip.size then ip.size <- off + len;
    iupdate t ip;
    Ok ()

  (* Blocks of data we allow per transaction: data blocks + indirect +
     bitmap + inode must stay within Log.max_op_blocks. *)
  let write_chunk_blocks = 8

  (** Public write: chunks into transactions, taking ilock inside each so
      concurrent operations interleave like xv6's sys_write. *)
  let writei t ip ~off data : int res =
    let len = Bytes.length data in
    if off < 0 then Error Kernel.Errno.EINVAL
    else if off + len > max_file_size then Error Kernel.Errno.EFBIG
    else begin
      let chunk_bytes = write_chunk_blocks * bsize in
      let rec go done_ =
        if done_ >= len then Ok len
        else begin
          (* align chunk end to a block boundary for clean full-block
             overwrites *)
          let abs = off + done_ in
          let room = chunk_bytes - (abs mod bsize) in
          let n = min room (len - done_) in
          let r =
            Log.with_op ~eager:false t.log (fun () ->
                ilock t ip;
                let r = writei_tx t ip ~off:abs data ~from:done_ ~len:n in
                iunlock ip;
                r)
          in
          match r with Ok () -> go (done_ + n) | Error _ as e -> e
        end
      in
      if len = 0 then Ok 0 else go 0
    end

  (* ---------------------------------------------------------------- *)
  (* Truncation: free mapped blocks with file index >= keep, in bounded
     rounds, each its own transaction, so huge files cannot overflow the
     log. *)

  let free_round_blocks = 2048

  (* Free mapped data blocks with file index >= keep referenced by indirect
     block [blk], which covers file indexes [base, base + span). High
     indexes first, at most [budget] per call. Returns blocks freed. *)
  let rec free_indirect_tail t blk ~level ~base ~keep ~budget : int =
    if blk = 0 || budget <= 0 then 0
    else begin
      let child_span = if level = 2 then nind else 1 in
      let b = K.bread blk in
      let data = K.Buffer.data b in
      let freed = ref 0 in
      let changed = ref false in
      let idx = ref (nind - 1) in
      while !idx >= 0 && !freed < budget do
        let child_base = base + (!idx * child_span) in
        let child = Util.Bytesio.get_u32 data (!idx * 4) in
        (if child <> 0 && child_base + child_span > keep then
           if level = 1 then begin
             if child_base >= keep then begin
               bfree t child;
               Util.Bytesio.set_u32 data (!idx * 4) 0;
               changed := true;
               incr freed
             end
           end
           else begin
             let sub =
               free_indirect_tail t child ~level:1 ~base:child_base ~keep
                 ~budget:(budget - !freed)
             in
             freed := !freed + sub;
             (* drop the child indirect block once nothing it maps is kept *)
             if !freed < budget && child_base >= keep then begin
               bfree t child;
               Util.Bytesio.set_u32 data (!idx * 4) 0;
               changed := true
             end
           end);
        if !freed < budget then decr idx
      done;
      if !changed then Log.log_write t.log b;
      K.brelse b;
      !freed
    end

  (* One bounded round freeing blocks with index >= keep; true when a full
     pass completed within budget. Inside a transaction with ilock held. *)
  let itrunc_round t ip ~keep : bool =
    let budget = ref free_round_blocks in
    let dind_base = L.ndirect + nind in
    if
      !budget > 0
      && ip.addrs.(L.ndirect + 1) <> 0
      && keep < dind_base + (nind * nind)
    then begin
      let freed =
        free_indirect_tail t ip.addrs.(L.ndirect + 1) ~level:2 ~base:dind_base
          ~keep ~budget:!budget
      in
      budget := !budget - freed;
      if !budget > 0 && keep <= dind_base then begin
        bfree t ip.addrs.(L.ndirect + 1);
        ip.addrs.(L.ndirect + 1) <- 0
      end
    end;
    if !budget > 0 && ip.addrs.(L.ndirect) <> 0 && keep < L.ndirect + nind
    then begin
      let freed =
        free_indirect_tail t ip.addrs.(L.ndirect) ~level:1 ~base:L.ndirect
          ~keep ~budget:!budget
      in
      budget := !budget - freed;
      if !budget > 0 && keep <= L.ndirect then begin
        bfree t ip.addrs.(L.ndirect);
        ip.addrs.(L.ndirect) <- 0
      end
    end;
    if !budget > 0 then
      for i = L.ndirect - 1 downto max 0 keep do
        if ip.addrs.(i) <> 0 then begin
          bfree t ip.addrs.(i);
          ip.addrs.(i) <- 0
        end
      done;
    iupdate t ip;
    !budget > 0

  (* Free all blocks with index >= keep, in rounds (own transactions). *)
  let itrunc_to t ip ~keep =
    let rec loop () =
      let finished =
        Log.with_op t.log (fun () ->
            ilock t ip;
            let fin = itrunc_round t ip ~keep in
            iunlock ip;
            fin)
      in
      if not finished then loop ()
    in
    loop ()

  let itrunc_all t ip =
    itrunc_to t ip ~keep:0;
    Log.with_op t.log (fun () ->
        ilock t ip;
        ip.size <- 0;
        iupdate t ip;
        iunlock ip)

  (* Drop an icache reference; free the inode when unreferenced and
     unlinked (xv6 iput). Must NOT be called while holding ilock. *)
  let iput t ip =
    let free_now =
      K.Kmutex.with_lock t.icache_lock (fun () ->
          ip.refcount <- ip.refcount - 1;
          if ip.refcount = 0 && ip.valid && ip.nlink = 0 && ip.ftype <> L.F_free
          then begin
            (* keep a resurrection guard: refcount back to 1 while freeing *)
            ip.refcount <- 1;
            true
          end
          else begin
            if ip.refcount = 0 then Hashtbl.remove t.icache ip.inum;
            false
          end)
    in
    if free_now then begin
      itrunc_all t ip;
      Log.with_op t.log (fun () ->
          ilock t ip;
          ip.ftype <- L.F_free;
          ip.size <- 0;
          ip.nlink <- 0;
          iupdate t ip;
          iunlock ip);
      K.Kmutex.with_lock t.alloc_lock (fun () ->
          t.free_inodes <- t.free_inodes + 1;
          if ip.inum < t.ialloc_rotor then t.ialloc_rotor <- ip.inum);
      K.Kmutex.with_lock t.icache_lock (fun () ->
          ip.refcount <- ip.refcount - 1;
          if ip.refcount = 0 then Hashtbl.remove t.icache ip.inum)
    end

  (* ---------------------------------------------------------------- *)
  (* Directories.                                                      *)

  let dirent_count ip = ip.size / L.dirent_size

  (* Scan [dp] for [name]; returns (ino, slot). Call with ilock held. *)
  let dirlookup t dp name : (int * int) option res =
    if dp.ftype <> L.F_dir then Error Kernel.Errno.ENOTDIR
    else begin
      let nblocks_ = (dp.size + bsize - 1) / bsize in
      let rec scan_block bi =
        if bi >= nblocks_ then Ok None
        else begin
          let* blk = bmap t dp bi ~alloc:false in
          if blk = 0 then scan_block (bi + 1)
          else begin
            let result =
              K.with_bread blk (fun b ->
                  let data = K.Buffer.data b in
                  let slots =
                    min L.dirents_per_block
                      (dirent_count dp - (bi * L.dirents_per_block))
                  in
                  K.cpu
                    (Int64.mul
                       (Int64.of_int (max 1 slots))
                       K.costs.Kernel.Cost.dirent_scan);
                  let rec find s =
                    if s >= slots then None
                    else
                      match L.get_dirent data ~slot:s with
                      | Some (ino, n) when String.equal n name ->
                          Some (ino, (bi * L.dirents_per_block) + s)
                      | _ -> find (s + 1)
                  in
                  find 0)
            in
            match result with
            | Some hit -> Ok (Some hit)
            | None -> scan_block (bi + 1)
          end
        end
      in
      scan_block 0
    end

  (* Add [name -> ino] to [dp] (inside a transaction, ilock held). *)
  let dirlink t dp ~name ~ino : unit res =
    if String.length name > L.max_name then Error Kernel.Errno.ENAMETOOLONG
    else if String.length name = 0 then Error Kernel.Errno.EINVAL
    else begin
      (* find a free slot *)
      let total = dirent_count dp in
      let rec find_free s =
        if s >= total then Ok total (* append right past the last entry *)
        else begin
          let bi = s / L.dirents_per_block in
          let* blk = bmap t dp bi ~alloc:false in
          if blk = 0 then Ok s
          else begin
            let free_here =
              K.with_bread blk (fun b ->
                  let data = K.Buffer.data b in
                  let hi =
                    min L.dirents_per_block (total - (bi * L.dirents_per_block))
                  in
                  K.cpu
                    (Int64.mul (Int64.of_int (max 1 hi))
                       K.costs.Kernel.Cost.dirent_scan);
                  let rec f s' =
                    if s' >= hi then None
                    else if
                      L.get_dirent data ~slot:s' = None
                    then Some ((bi * L.dirents_per_block) + s')
                    else f (s' + 1)
                  in
                  f (s mod L.dirents_per_block))
            in
            match free_here with
            | Some slot -> Ok slot
            | None -> find_free ((bi + 1) * L.dirents_per_block)
          end
        end
      in
      let* slot = find_free 0 in
      let off = slot * L.dirent_size in
      let ent = Bytes.make L.dirent_size '\000' in
      L.put_dirent ent ~slot:0 ~ino ~name;
      writei_tx t dp ~off ~from:0 ~len:L.dirent_size ent
    end

  (* Clear directory slot [slot] (inside a transaction, ilock held). *)
  let dirunlink t dp ~slot : unit res =
    let off = slot * L.dirent_size in
    let zero = Bytes.make L.dirent_size '\000' in
    writei_tx t dp ~off ~from:0 ~len:L.dirent_size zero

  (* Is directory [ip] empty apart from "." and ".."? ilock held. *)
  let dir_is_empty t ip : bool res =
    let total = dirent_count ip in
    let rec scan s =
      if s >= total then Ok true
      else begin
        let bi = s / L.dirents_per_block in
        let* blk = bmap t ip bi ~alloc:false in
        if blk = 0 then scan ((bi + 1) * L.dirents_per_block)
        else begin
          let occupied =
            K.with_bread blk (fun b ->
                let data = K.Buffer.data b in
                let hi =
                  min L.dirents_per_block (total - (bi * L.dirents_per_block))
                in
                let rec f s' =
                  if s' >= hi then None
                  else
                    match L.get_dirent data ~slot:s' with
                    | Some (_, n) when n <> "." && n <> ".." -> Some n
                    | _ -> f (s' + 1)
                in
                f (s mod L.dirents_per_block))
          in
          match occupied with
          | Some _ -> Ok false
          | None -> scan ((bi + 1) * L.dirents_per_block)
        end
      end
    in
    scan 0

  (* ---------------------------------------------------------------- *)
  (* Attr helpers.                                                     *)

  let kind_of_ftype = function
    | L.F_dir -> Directory
    | L.F_file -> File
    | L.F_symlink -> Symlink
    | L.F_free -> File (* unreachable for live inodes *)

  (* attr for a loaded inode (no lock requirement beyond a consistent
     snapshot). *)
  let attr_of ip =
    { a_ino = ip.inum; a_kind = kind_of_ftype ip.ftype; a_size = ip.size; a_nlink = ip.nlink }

  (* iget + ilock + read attr + iunlock + iput *)
  let attr_of_inum t inum : attr res =
    if inum < 1 || inum >= t.sb.L.ninodes then Error Kernel.Errno.ESTALE
    else begin
      let ip = iget t inum in
      ilock t ip;
      let r =
        if ip.ftype = L.F_free then Error Kernel.Errno.ESTALE
        else Ok (attr_of ip)
      in
      iunlock ip;
      iput t ip;
      r
    end

  (* ---------------------------------------------------------------- *)
  (* mkfs.                                                             *)

  let default_nlog = 126
  (** Log data blocks per transaction window (plus one header block). *)

  let compute_layout () =
    let size = K.nblocks in
    let ninodes = min 262144 (max 4096 (size / 32)) in
    L.compute ~size ~ninodes ~nlog:default_nlog

  let mkfs () : unit res =
    let sb = compute_layout () in
    (* superblock *)
    K.with_getblk 1 (fun b ->
        Bytes.fill (K.Buffer.data b) 0 bsize '\000';
        L.put_superblock (K.Buffer.data b) sb;
        K.bwrite b);
    (* empty log header *)
    K.with_getblk sb.L.logstart (fun b ->
        L.put_log_header (K.Buffer.data b) { L.n = 0; checksum = 0L; targets = [||] };
        K.bwrite b);
    (* bitmap: mark all metadata blocks (everything below datastart) used *)
    let bits = bsize * 8 in
    let nbitmap_blocks = (sb.L.size + bits - 1) / bits in
    for i = 0 to nbitmap_blocks - 1 do
      K.with_getblk (sb.L.bmapstart + i) (fun b ->
          let data = K.Buffer.data b in
          Bytes.fill data 0 bsize '\000';
          let base = i * bits in
          for bit = 0 to bits - 1 do
            let blk = base + bit in
            if blk < sb.L.datastart && blk < sb.L.size then
              bitmap_set data bit true
          done;
          K.bwrite b)
    done;
    (* zero the inode blocks *)
    let ninodeblocks = (sb.L.ninodes + L.inodes_per_block - 1) / L.inodes_per_block in
    for i = 0 to ninodeblocks - 1 do
      K.with_getblk (sb.L.inodestart + i) (fun b ->
          Bytes.fill (K.Buffer.data b) 0 bsize '\000';
          K.bwrite b)
    done;
    (* root directory: inode 1, one data block with "." and ".." *)
    let root_block = sb.L.datastart in
    K.with_getblk (L.bblock sb root_block) (fun b ->
        bitmap_set (K.Buffer.data b) (L.bbit root_block) true;
        K.bwrite b);
    K.with_getblk root_block (fun b ->
        let data = K.Buffer.data b in
        Bytes.fill data 0 bsize '\000';
        L.put_dirent data ~slot:0 ~ino:L.root_ino ~name:".";
        L.put_dirent data ~slot:1 ~ino:L.root_ino ~name:"..";
        K.bwrite b);
    K.with_bread (L.iblock sb L.root_ino) (fun b ->
        let addrs = Array.make (L.ndirect + 2) 0 in
        addrs.(0) <- root_block;
        L.put_dinode (K.Buffer.data b) ~slot:(L.islot L.root_ino)
          { L.ftype = L.F_dir; nlink = 2; size = 2 * L.dirent_size; addrs };
        K.bwrite b);
    K.flush ();
    Ok ()

  (* ---------------------------------------------------------------- *)
  (* Mount / recovery / destroy.                                       *)

  let count_free_blocks t =
    let bits = bsize * 8 in
    let nbitmap_blocks = (t.sb.L.size + bits - 1) / bits in
    let free = ref 0 in
    for i = 0 to nbitmap_blocks - 1 do
      K.with_bread (t.sb.L.bmapstart + i) (fun b ->
          let data = K.Buffer.data b in
          let base = i * bits in
          for bit = 0 to bits - 1 do
            let blk = base + bit in
            if blk >= t.sb.L.datastart && blk < t.sb.L.size then
              if not (bitmap_get data bit) then incr free
          done)
    done;
    !free

  let count_free_inodes t =
    let free = ref 0 in
    let ninodeblocks =
      (t.sb.L.ninodes + L.inodes_per_block - 1) / L.inodes_per_block
    in
    for i = 0 to ninodeblocks - 1 do
      K.with_bread (t.sb.L.inodestart + i) (fun b ->
          let data = K.Buffer.data b in
          for slot = 0 to L.inodes_per_block - 1 do
            let inum = (i * L.inodes_per_block) + slot in
            if inum >= 1 && inum < t.sb.L.ninodes then
              match L.get_dinode data ~slot with
              | Ok d -> if d.L.ftype = L.F_free then incr free
              | Error _ -> ()
          done)
    done;
    !free

  let mount () : t res =
    let sb_res =
      K.with_bread 1 (fun b -> L.get_superblock (K.Buffer.data b))
    in
    match sb_res with
    | Error _ -> Error Kernel.Errno.EINVAL
    | Ok sb ->
        let t =
          {
            sb;
            log = Log.create sb;
            icache = Hashtbl.create 1024;
            icache_lock = K.Kmutex.create ~name:"icache" ();
            alloc_lock = K.Kmutex.create ~name:"alloc" ();
            balloc_rotor = sb.L.datastart;
            ialloc_rotor = 1;
            free_blocks = 0;
            free_inodes = 0;
            rename_lock = K.Kmutex.create ~name:"rename" ();
          }
        in
        Log.recover t.log;
        t.free_blocks <- count_free_blocks t;
        t.free_inodes <- count_free_inodes t;
        Ok t

  let destroy t = Log.force t.log

  let statfs t =
    {
      s_blocks = t.sb.L.nblocks;
      s_bfree = t.free_blocks;
      s_files = t.sb.L.ninodes;
      s_ffree = t.free_inodes;
    }

  (* ---------------------------------------------------------------- *)
  (* The file-operations API.                                          *)

  let getattr t ~ino = attr_of_inum t ino

  let lookup t ~dir name : attr res =
    let dp = iget t dir in
    ilock t dp;
    let r = dirlookup t dp name in
    iunlock dp;
    iput t dp;
    match r with
    | Error _ as e -> e
    | Ok None -> Error Kernel.Errno.ENOENT
    | Ok (Some (ino, _)) -> attr_of_inum t ino

  (* Shared by create/mkdir/symlink. Runs inside the caller's log
     operation so callers can extend the same transaction (symlink writes
     its target atomically with the entry). *)
  let create_entry_tx t ~dir name ftype : attr res =
    if String.length name > L.max_name then Error Kernel.Errno.ENAMETOOLONG
    else begin
          let dp = iget t dir in
          ilock t dp;
          let finish r =
            iunlock dp;
            iput t dp;
            r
          in
          if dp.ftype <> L.F_dir then finish (Error Kernel.Errno.ENOTDIR)
          else if dp.nlink = 0 then finish (Error Kernel.Errno.ENOENT)
          else
            match dirlookup t dp name with
            | Error _ as e -> finish e
            | Ok (Some _) -> finish (Error Kernel.Errno.EEXIST)
            | Ok None -> (
                match ialloc t ftype with
                | Error _ as e -> finish e
                | Ok inum ->
                    let ip = iget t inum in
                    ilock t ip;
                    ip.nlink <- 1;
                    iupdate t ip;
                    let r =
                      if ftype = L.F_dir then begin
                        (* "." and ".."; parent gains a link *)
                        let* () = dirlink t ip ~name:"." ~ino:ip.inum in
                        let* () = dirlink t ip ~name:".." ~ino:dp.inum in
                        ip.nlink <- 2;
                        iupdate t ip;
                        dp.nlink <- dp.nlink + 1;
                        iupdate t dp;
                        Ok ()
                      end
                      else Ok ()
                    in
                    let r =
                      match r with
                      | Error _ as e -> e
                      | Ok () -> dirlink t dp ~name ~ino:ip.inum
                    in
                    let out =
                      match r with
                      | Error _ as e ->
                          (* roll forward is impossible mid-tx; undo *)
                          ip.nlink <- 0;
                          iupdate t ip;
                          e
                      | Ok () -> Ok (attr_of ip)
                    in
                    iunlock ip;
                    iput t ip;
                    finish out)
    end

  let create_entry t ~dir name ftype : attr res =
    Log.with_op t.log (fun () -> create_entry_tx t ~dir name ftype)

  let create t ~dir name = create_entry t ~dir name L.F_file
  let mkdir t ~dir name = create_entry t ~dir name L.F_dir

  (** Symbolic links store their target as file content, like the xv6
      symlink lab and many simple Unix file systems. Entry and target are
      written in a single log transaction: committing them separately
      would let a crash expose a link with an empty target (found by the
      crash checker). *)
  let symlink t ~dir name ~target : attr res =
    if String.length target > bsize then Error Kernel.Errno.ENAMETOOLONG
    else
      let* a =
        Log.with_op t.log (fun () ->
            let* a = create_entry_tx t ~dir name L.F_symlink in
            let ip = iget t a.a_ino in
            ilock t ip;
            let r =
              writei_tx t ip ~off:0
                (Bytes.of_string target)
                ~from:0
                ~len:(String.length target)
            in
            iunlock ip;
            iput t ip;
            let* () = r in
            Ok a)
      in
      Ok { a with a_size = String.length target }

  let readlink t ~ino : string res =
    let ip = iget t ino in
    ilock t ip;
    let r =
      if ip.ftype <> L.F_symlink then Error Kernel.Errno.EINVAL
      else
        match readi t ip ~off:0 ~len:ip.size with
        | Ok b -> Ok (Bytes.to_string b)
        | Error _ as e -> e
    in
    iunlock ip;
    iput t ip;
    r

  let unlink t ~dir name : unit res =
    if name = "." || name = ".." then Error Kernel.Errno.EINVAL
    else begin
      let victim = ref None in
      let r =
        Log.with_op t.log (fun () ->
            let dp = iget t dir in
            ilock t dp;
            let finish r =
              iunlock dp;
              iput t dp;
              r
            in
            if dp.ftype <> L.F_dir then finish (Error Kernel.Errno.ENOTDIR)
            else
              match dirlookup t dp name with
              | Error _ as e -> finish e
              | Ok None -> finish (Error Kernel.Errno.ENOENT)
              | Ok (Some (ino, slot)) -> (
                  let ip = iget t ino in
                  ilock t ip;
                  match ip.ftype with
                  | L.F_dir ->
                      iunlock ip;
                      iput t ip;
                      finish (Error Kernel.Errno.EISDIR)
                  | _ -> (
                      match dirunlink t dp ~slot with
                      | Error _ as e ->
                          iunlock ip;
                          iput t ip;
                          finish e
                      | Ok () ->
                          ip.nlink <- ip.nlink - 1;
                          iupdate t ip;
                          (* small unreferenced file: free it inside this
                             same transaction, as xv6's sys_unlink does *)
                          let blocks_est = (ip.size + bsize - 1) / bsize in
                          if
                            ip.nlink = 0 && ip.nopen = 0 && ip.refcount = 1
                            && blocks_est <= 64
                          then begin
                            ignore (itrunc_round t ip ~keep:0);
                            ip.ftype <- L.F_free;
                            ip.size <- 0;
                            iupdate t ip;
                            K.Kmutex.with_lock t.alloc_lock (fun () ->
                                t.free_inodes <- t.free_inodes + 1;
                                if ip.inum < t.ialloc_rotor then
                                  t.ialloc_rotor <- ip.inum)
                          end;
                          iunlock ip;
                          victim := Some ip;
                          finish (Ok ()))))
      in
      (* iput outside the transaction: freeing a big file runs its own
         bounded transactions *)
      (match !victim with Some ip -> iput t ip | None -> ());
      r
    end

  let rmdir t ~dir name : unit res =
    if name = "." || name = ".." then Error Kernel.Errno.EINVAL
    else begin
      let victim = ref None in
      let r =
        Log.with_op t.log (fun () ->
            let dp = iget t dir in
            ilock t dp;
            let finish r =
              iunlock dp;
              iput t dp;
              r
            in
            if dp.ftype <> L.F_dir then finish (Error Kernel.Errno.ENOTDIR)
            else
              match dirlookup t dp name with
              | Error _ as e -> finish e
              | Ok None -> finish (Error Kernel.Errno.ENOENT)
              | Ok (Some (ino, slot)) -> (
                  let ip = iget t ino in
                  ilock t ip;
                  if ip.ftype <> L.F_dir then begin
                    iunlock ip;
                    iput t ip;
                    finish (Error Kernel.Errno.ENOTDIR)
                  end
                  else
                    match dir_is_empty t ip with
                    | Error _ as e ->
                        iunlock ip;
                        iput t ip;
                        finish e
                    | Ok false ->
                        iunlock ip;
                        iput t ip;
                        finish (Error Kernel.Errno.ENOTEMPTY)
                    | Ok true -> (
                        match dirunlink t dp ~slot with
                        | Error _ as e ->
                            iunlock ip;
                            iput t ip;
                            finish e
                        | Ok () ->
                            (* ".." no longer references the parent *)
                            dp.nlink <- dp.nlink - 1;
                            iupdate t dp;
                            ip.nlink <- 0;
                            iupdate t ip;
                            (* an empty dir holds at most one data block:
                               free it inside this same transaction, or a
                               crash between the entry removal and the
                               deferred iput leaks an allocated orphan *)
                            if ip.nopen = 0 && ip.refcount = 1 then begin
                              ignore (itrunc_round t ip ~keep:0);
                              ip.ftype <- L.F_free;
                              ip.size <- 0;
                              iupdate t ip;
                              K.Kmutex.with_lock t.alloc_lock (fun () ->
                                  t.free_inodes <- t.free_inodes + 1;
                                  if ip.inum < t.ialloc_rotor then
                                    t.ialloc_rotor <- ip.inum)
                            end;
                            iunlock ip;
                            victim := Some ip;
                            finish (Ok ()))))
      in
      (match !victim with Some ip -> iput t ip | None -> ());
      r
    end

  let link t ~ino ~dir name : attr res =
    Log.with_op t.log (fun () ->
        let ip = iget t ino in
        ilock t ip;
        if ip.ftype = L.F_dir then begin
          iunlock ip;
          iput t ip;
          Error Kernel.Errno.EPERM
        end
        else begin
          ip.nlink <- ip.nlink + 1;
          iupdate t ip;
          let a = attr_of ip in
          iunlock ip;
          let dp = iget t dir in
          ilock t dp;
          let r =
            if dp.ftype <> L.F_dir then Error Kernel.Errno.ENOTDIR
            else
              match dirlookup t dp name with
              | Error _ as e -> e
              | Ok (Some _) -> Error Kernel.Errno.EEXIST
              | Ok None -> dirlink t dp ~name ~ino
          in
          iunlock dp;
          iput t dp;
          match r with
          | Ok () ->
              iput t ip;
              Ok { a with a_nlink = a.a_nlink }
          | Error _ as e ->
              (* undo the link count *)
              ilock t ip;
              ip.nlink <- ip.nlink - 1;
              iupdate t ip;
              iunlock ip;
              iput t ip;
              e
        end)

  let rename t ~olddir ~oldname ~newdir ~newname : unit res =
    if oldname = "." || oldname = ".." || newname = "." || newname = ".."
    then Error Kernel.Errno.EINVAL
    else if String.length newname > L.max_name then
      Error Kernel.Errno.ENAMETOOLONG
    else
      K.Kmutex.with_lock t.rename_lock (fun () ->
          let victim = ref None in
          let r =
            Log.with_op t.log (fun () ->
                let dp_old = iget t olddir in
                let dp_new = if newdir = olddir then dp_old else iget t newdir in
                (* lock parents in inum order *)
                let lock_parents () =
                  if dp_old == dp_new then ilock t dp_old
                  else if dp_old.inum < dp_new.inum then begin
                    ilock t dp_old;
                    ilock t dp_new
                  end
                  else begin
                    ilock t dp_new;
                    ilock t dp_old
                  end
                in
                let unlock_parents () =
                  if dp_old == dp_new then iunlock dp_old
                  else begin
                    iunlock dp_old;
                    iunlock dp_new
                  end
                in
                lock_parents ();
                let finish r =
                  unlock_parents ();
                  iput t dp_old;
                  if dp_new != dp_old then iput t dp_new;
                  r
                in
                if dp_old.ftype <> L.F_dir || dp_new.ftype <> L.F_dir then
                  finish (Error Kernel.Errno.ENOTDIR)
                else
                  match dirlookup t dp_old oldname with
                  | Error _ as e -> finish e
                  | Ok None -> finish (Error Kernel.Errno.ENOENT)
                  | Ok (Some (src_ino, src_slot)) -> (
                      if src_ino = dp_new.inum then
                        finish (Error Kernel.Errno.EINVAL)
                      else
                        match dirlookup t dp_new newname with
                        | Error _ as e -> finish e
                        | Ok existing -> (
                            let src = iget t src_ino in
                            ilock t src;
                            let src_is_dir = src.ftype = L.F_dir in
                            (* replace target if present *)
                            let replace_r =
                              match existing with
                              | None -> Ok None
                              | Some (dst_ino, dst_slot) ->
                                  if dst_ino = src_ino then Ok None
                                  else begin
                                    let dst = iget t dst_ino in
                                    ilock t dst;
                                    let dst_is_dir = dst.ftype = L.F_dir in
                                    let ok =
                                      if src_is_dir && not dst_is_dir then
                                        Error Kernel.Errno.ENOTDIR
                                      else if (not src_is_dir) && dst_is_dir
                                      then Error Kernel.Errno.EISDIR
                                      else if dst_is_dir then
                                        match dir_is_empty t dst with
                                        | Error _ as e -> e
                                        | Ok false ->
                                            Error Kernel.Errno.ENOTEMPTY
                                        | Ok true -> Ok ()
                                      else Ok ()
                                    in
                                    match ok with
                                    | Error e ->
                                        iunlock dst;
                                        iput t dst;
                                        Error e
                                    | Ok () -> (
                                        match dirunlink t dp_new ~slot:dst_slot with
                                        | Error _ as e ->
                                            iunlock dst;
                                            iput t dst;
                                            e
                                        | Ok () ->
                                            if dst_is_dir then begin
                                              dst.nlink <- 0;
                                              dp_new.nlink <- dp_new.nlink - 1;
                                              iupdate t dp_new
                                            end
                                            else dst.nlink <- dst.nlink - 1;
                                            iupdate t dst;
                                            (* small unreferenced victim:
                                               free it inside this same
                                               transaction, as unlink does —
                                               deferring to the post-tx iput
                                               lets a crash leak the inode
                                               (found by the crash checker) *)
                                            let blocks_est =
                                              (dst.size + bsize - 1) / bsize
                                            in
                                            if
                                              dst.nlink = 0 && dst.nopen = 0
                                              && dst.refcount = 1
                                              && blocks_est <= 64
                                            then begin
                                              ignore
                                                (itrunc_round t dst ~keep:0);
                                              dst.ftype <- L.F_free;
                                              dst.size <- 0;
                                              iupdate t dst;
                                              K.Kmutex.with_lock t.alloc_lock
                                                (fun () ->
                                                  t.free_inodes <-
                                                    t.free_inodes + 1;
                                                  if
                                                    dst.inum < t.ialloc_rotor
                                                  then
                                                    t.ialloc_rotor <- dst.inum)
                                            end;
                                            iunlock dst;
                                            Ok (Some dst))
                                  end
                            in
                            match replace_r with
                            | Error e ->
                                iunlock src;
                                iput t src;
                                finish (Error e)
                            | Ok dst_victim -> (
                                victim := dst_victim;
                                (* add new entry, remove old *)
                                let r =
                                  let* () =
                                    dirlink t dp_new ~name:newname ~ino:src_ino
                                  in
                                  let* () = dirunlink t dp_old ~slot:src_slot in
                                  (* moving a directory across parents:
                                     fix ".." and parent link counts *)
                                  if src_is_dir && dp_old.inum <> dp_new.inum
                                  then begin
                                    match dirlookup t src ".." with
                                    | Error _ as e -> e
                                    | Ok (Some (_, dotdot_slot)) ->
                                        let* () =
                                          dirunlink t src ~slot:dotdot_slot
                                        in
                                        let* () =
                                          dirlink t src ~name:".."
                                            ~ino:dp_new.inum
                                        in
                                        dp_old.nlink <- dp_old.nlink - 1;
                                        iupdate t dp_old;
                                        dp_new.nlink <- dp_new.nlink + 1;
                                        iupdate t dp_new;
                                        Ok ()
                                    | Ok None -> Ok ()
                                  end
                                  else Ok ()
                                in
                                iunlock src;
                                iput t src;
                                finish r))))
          in
          (match !victim with Some ip -> iput t ip | None -> ());
          r)

  let read t ~ino ~off ~len : Bytes.t res =
    let ip = iget t ino in
    ilock t ip;
    let r =
      if ip.ftype = L.F_free then Error Kernel.Errno.ESTALE
      else readi t ip ~off ~len
    in
    iunlock ip;
    iput t ip;
    r

  let write t ~ino ~off data : int res =
    let ip = iget t ino in
    let r =
      if not ip.valid then begin
        ilock t ip;
        iunlock ip
      end;
      if ip.ftype = L.F_free then Error Kernel.Errno.ESTALE
      else writei t ip ~off data
    in
    iput t ip;
    r

  let truncate t ~ino ~size : unit res =
    if size < 0 then Error Kernel.Errno.EINVAL
    else if size > max_file_size then Error Kernel.Errno.EFBIG
    else begin
      let ip = iget t ino in
      ilock t ip;
      let old = ip.size in
      iunlock ip;
      let r =
        if size = 0 then begin
          itrunc_all t ip;
          Ok ()
        end
        else if size < old then begin
          (* POSIX shrink: free every block past the new end, then zero the
             retained slack of the final partial block so a later extension
             reads zeroes instead of resurrecting old data *)
          let keep = (size + bsize - 1) / bsize in
          itrunc_to t ip ~keep;
          Log.with_op t.log (fun () ->
              ilock t ip;
              let r =
                if size mod bsize <> 0 then
                  match bmap t ip (size / bsize) ~alloc:false with
                  | Ok blk when blk <> 0 ->
                      K.with_bread blk (fun b ->
                          Bytes.fill (K.Buffer.data b) (size mod bsize)
                            (bsize - (size mod bsize)) '\000';
                          Log.log_write t.log b);
                      Ok ()
                  | Ok _ -> Ok ()
                  | Error _ as e -> e
              else Ok ()
              in
              ip.size <- size;
              iupdate t ip;
              iunlock ip;
              r)
        end
        else
          (* extension: past-EOF blocks are holes (shrink freed them) and
             the tail block's slack is zero by invariant *)
          Log.with_op t.log (fun () ->
              ilock t ip;
              ip.size <- size;
              iupdate t ip;
              iunlock ip;
              Ok ())
      in
      iput t ip;
      r
    end

  let fsync t ~ino:_ : unit res =
    Log.force t.log;
    Ok ()

  let sync t : unit res =
    Log.force t.log;
    Ok ()

  let readdir t ~ino : dentry list res =
    let dp = iget t ino in
    ilock t dp;
    let r =
      if dp.ftype <> L.F_dir then Error Kernel.Errno.ENOTDIR
      else begin
        let total = dirent_count dp in
        let out = ref [] in
        let rec scan s =
          if s >= total then Ok (List.rev !out)
          else begin
            let bi = s / L.dirents_per_block in
            let* blk = bmap t dp bi ~alloc:false in
            (if blk <> 0 then
               K.with_bread blk (fun b ->
                   let data = K.Buffer.data b in
                   let hi =
                     min L.dirents_per_block (total - (bi * L.dirents_per_block))
                   in
                   for s' = 0 to hi - 1 do
                     match L.get_dirent data ~slot:s' with
                     | Some (ino', n) ->
                         out :=
                           { name = n; ino = ino'; kind = File } :: !out
                     | None -> ()
                   done));
            scan ((bi + 1) * L.dirents_per_block)
          end
        in
        scan 0
      end
    in
    iunlock dp;
    iput t dp;
    (* fix up kinds with a second pass over the icache-light getattr *)
    match r with
    | Error _ as e -> e
    | Ok entries ->
        Ok
          (List.map
             (fun d ->
               if d.name = "." || d.name = ".." then
                 { d with kind = Directory }
               else
                 match attr_of_inum t d.ino with
                 | Ok a -> { d with kind = a.a_kind }
                 | Error _ -> d)
             entries)

  let iopen t ~ino : unit res =
    let ip = iget t ino in
    if not ip.valid then begin
      ilock t ip;
      iunlock ip
    end;
    if ip.ftype = L.F_free then begin
      iput t ip;
      Error Kernel.Errno.ESTALE
    end
    else begin
      ip.nopen <- ip.nopen + 1;
      Ok () (* keep the iget reference until irelease *)
    end

  let irelease t ~ino =
    match Hashtbl.find_opt t.icache ino with
    | None -> ()
    | Some ip ->
        if ip.nopen > 0 then begin
          ip.nopen <- ip.nopen - 1;
          iput t ip
        end

  (* ---------------------------------------------------------------- *)
  (* Online upgrade (§4.8): flush, then hand over allocator hints and the
     kernel's open-inode references.                                    *)

  let extract_state t =
    Log.force t.log;
    let open_inodes =
      Hashtbl.fold
        (fun inum ip acc -> if ip.nopen > 0 then (inum, ip.nopen) :: acc else acc)
        t.icache []
    in
    {
      Bento.Upgrade_state.version;
      ints =
        [
          ("balloc_rotor", t.balloc_rotor);
          ("ialloc_rotor", t.ialloc_rotor);
          ("free_blocks", t.free_blocks);
          ("free_inodes", t.free_inodes);
        ];
      blobs = [];
      open_inodes;
    }

  let restore_state t (st : Bento.Upgrade_state.t) =
    let geti name default =
      match Bento.Upgrade_state.int st name with Some v -> v | None -> default
    in
    t.balloc_rotor <- geti "balloc_rotor" t.balloc_rotor;
    t.ialloc_rotor <- geti "ialloc_rotor" t.ialloc_rotor;
    (* free counts were recomputed at mount; trust the fresh scan but keep
       the transferred values if the scan was skipped *)
    List.iter
      (fun (inum, nopen) ->
        let ip = iget t inum in
        if not ip.valid then begin
          ilock t ip;
          iunlock ip
        end;
        ip.nopen <- nopen;
        (* one icache reference per open handle, minus the iget above *)
        ip.refcount <- ip.refcount + nopen - 1)
      st.Bento.Upgrade_state.open_inodes

  (* FIBMAP (shadows the internal [bmap t ip bn ~alloc] helper): report the
     device block without allocating, so clients can build pushdown index
     blocks out of real device pointers. *)
  let bmap t ~ino ~fbn : int res =
    let ip = iget t ino in
    ilock t ip;
    let r =
      if ip.ftype = L.F_free then Error Kernel.Errno.ESTALE
      else bmap t ip fbn ~alloc:false
    in
    iunlock ip;
    iput t ip;
    r
end
