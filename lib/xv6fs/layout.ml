(** On-disk format of the xv6 file system, modernised as in the paper's
    ports: 4 KB blocks, 60-character names, and a double-indirect block so
    files can reach 4 GB (§6.1). Pure serialisation — no I/O — so the format
    is property-testable in isolation.

    Disk layout (in blocks):
    [ 0: boot | 1: superblock | log header + log | inodes | bitmap | data ] *)

let block_size = 4096
let fs_magic = 0x10203040
let root_ino = 1

let ndirect = 12
let nindirect = block_size / 4 (* u32 block pointers *)

(** Maximum file size in blocks: direct + single + double indirect. *)
let max_file_blocks = ndirect + nindirect + (nindirect * nindirect)

let max_file_size = max_file_blocks * block_size

(* Inodes: 128 bytes each. *)
let dinode_size = 128
let inodes_per_block = block_size / dinode_size

type ftype = F_free | F_dir | F_file | F_symlink

let ftype_to_int = function F_free -> 0 | F_dir -> 1 | F_file -> 2 | F_symlink -> 3

let ftype_of_int = function
  | 0 -> Ok F_free
  | 1 -> Ok F_dir
  | 2 -> Ok F_file
  | 3 -> Ok F_symlink
  | n -> Error (Printf.sprintf "bad inode type %d" n)

type dinode = {
  ftype : ftype;
  nlink : int;
  size : int;
  addrs : int array;  (** ndirect + 2 entries: direct, single, double *)
}

let zero_dinode =
  { ftype = F_free; nlink = 0; size = 0; addrs = Array.make (ndirect + 2) 0 }

let put_dinode block ~slot (d : dinode) =
  if Array.length d.addrs <> ndirect + 2 then invalid_arg "put_dinode: addrs";
  let off = slot * dinode_size in
  Util.Bytesio.set_u16 block off (ftype_to_int d.ftype);
  Util.Bytesio.set_u16 block (off + 2) d.nlink;
  Util.Bytesio.set_u32 block (off + 4) 0 (* pad *);
  Util.Bytesio.set_int_as_u64 block (off + 8) d.size;
  Array.iteri
    (fun i a -> Util.Bytesio.set_u32 block (off + 16 + (i * 4)) a)
    d.addrs

let get_dinode block ~slot : (dinode, string) result =
  let off = slot * dinode_size in
  match ftype_of_int (Util.Bytesio.get_u16 block off) with
  | Error _ as e -> e
  | Ok ftype ->
      Ok
        {
          ftype;
          nlink = Util.Bytesio.get_u16 block (off + 2);
          size = Util.Bytesio.get_int64_as_int block (off + 8);
          addrs =
            Array.init (ndirect + 2) (fun i ->
                Util.Bytesio.get_u32 block (off + 16 + (i * 4)));
        }

(* Directory entries: 64 bytes — u32 inode + 60-byte name. ino = 0 marks a
   free slot. *)
let dirent_size = 64
let max_name = dirent_size - 4 - 1 (* keep one NUL so names are C-safe *)
let dirents_per_block = block_size / dirent_size

let put_dirent block ~slot ~ino ~name =
  if String.length name > max_name then invalid_arg "put_dirent: name too long";
  let off = slot * dirent_size in
  Util.Bytesio.set_u32 block off ino;
  Util.Bytesio.set_string block ~off:(off + 4) ~width:(dirent_size - 4) name

let get_dirent block ~slot =
  let off = slot * dirent_size in
  let ino = Util.Bytesio.get_u32 block off in
  if ino = 0 then None
  else
    Some (ino, Util.Bytesio.get_string block ~off:(off + 4) ~width:(dirent_size - 4))

let clear_dirent block ~slot =
  Bytes.fill block (slot * dirent_size) dirent_size '\000'

(* Superblock, stored in block 1. *)
type superblock = {
  size : int;  (** total blocks on the device image *)
  nblocks : int;  (** data blocks *)
  ninodes : int;
  nlog : int;  (** log blocks, including the header *)
  logstart : int;
  inodestart : int;
  bmapstart : int;
  datastart : int;
}

let put_superblock block sb =
  Util.Bytesio.set_u32 block 0 fs_magic;
  Util.Bytesio.set_u32 block 4 sb.size;
  Util.Bytesio.set_u32 block 8 sb.nblocks;
  Util.Bytesio.set_u32 block 12 sb.ninodes;
  Util.Bytesio.set_u32 block 16 sb.nlog;
  Util.Bytesio.set_u32 block 20 sb.logstart;
  Util.Bytesio.set_u32 block 24 sb.inodestart;
  Util.Bytesio.set_u32 block 28 sb.bmapstart;
  Util.Bytesio.set_u32 block 32 sb.datastart

let get_superblock block : (superblock, string) result =
  if Util.Bytesio.get_u32 block 0 <> fs_magic then Error "bad magic"
  else
    Ok
      {
        size = Util.Bytesio.get_u32 block 4;
        nblocks = Util.Bytesio.get_u32 block 8;
        ninodes = Util.Bytesio.get_u32 block 12;
        nlog = Util.Bytesio.get_u32 block 16;
        logstart = Util.Bytesio.get_u32 block 20;
        inodestart = Util.Bytesio.get_u32 block 24;
        bmapstart = Util.Bytesio.get_u32 block 28;
        datastart = Util.Bytesio.get_u32 block 32;
      }

(* Log header, stored in the first log block: the count of committed blocks,
   a checksum over the logged data, and the blocks' home addresses. The
   checksum (absent from teaching xv6, standard in jbd2) lets recovery
   reject a torn commit instead of replaying garbage. *)
let log_max_entries = (block_size - 16) / 4

type log_header = { n : int; checksum : int64; targets : int array }

(** FNV-1a over every word of each data block. Sampling stripes is not
    enough here: a torn commit can leave a *previous* transaction's copy
    in a log slot, and that stale copy differs from the lost write in
    only a few bytes (one dirent, one inode), which a sparse sample can
    miss entirely — recovery would then install the stale block. *)
let checksum_blocks (blocks : Bytes.t list) =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.logxor !h v;
    h := Int64.mul !h 0x100000001b3L
  in
  List.iter
    (fun b ->
      let len = Bytes.length b in
      mix (Int64.of_int len);
      let off = ref 0 in
      while !off + 8 <= len do
        mix (Bytes.get_int64_le b !off);
        off := !off + 8
      done)
    blocks;
  !h

let put_log_header block h =
  if h.n > log_max_entries then invalid_arg "put_log_header";
  Bytes.fill block 0 (Bytes.length block) '\000';
  Util.Bytesio.set_u32 block 0 h.n;
  Util.Bytesio.set_u64 block 8 h.checksum;
  for i = 0 to h.n - 1 do
    Util.Bytesio.set_u32 block (16 + (i * 4)) h.targets.(i)
  done

let get_log_header block =
  let n = Util.Bytesio.get_u32 block 0 in
  let n = if n > log_max_entries then 0 (* corrupt: treat as empty *) else n in
  {
    n;
    checksum = Util.Bytesio.get_u64 block 8;
    targets = Array.init n (fun i -> Util.Bytesio.get_u32 block (16 + (i * 4)));
  }

(** Compute a layout for a device of [size] blocks. [nlog] counts log data
    blocks (the header adds one more). *)
let compute ~size ~ninodes ~nlog =
  if size < 16 then invalid_arg "Layout.compute: device too small";
  let logstart = 2 in
  let inodestart = logstart + nlog + 1 in
  let ninodeblocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let bmapstart = inodestart + ninodeblocks in
  let bits_per_block = block_size * 8 in
  (* Bitmap must cover every block on the device (simpler and safer than
     covering only the data area). *)
  let nbitmap = (size + bits_per_block - 1) / bits_per_block in
  let datastart = bmapstart + nbitmap in
  if datastart >= size then invalid_arg "Layout.compute: no room for data";
  {
    size;
    nblocks = size - datastart;
    ninodes;
    nlog = nlog + 1;
    logstart;
    inodestart;
    bmapstart;
    datastart;
  }

(** Block number holding inode [ino]. *)
let iblock sb ino = sb.inodestart + (ino / inodes_per_block)

let islot ino = ino mod inodes_per_block

(** Bitmap block covering data block [b], and the bit within it. *)
let bblock sb b = sb.bmapstart + (b / (block_size * 8))

let bbit b = b mod (block_size * 8)
