(** xv6fs version 2 — the upgrade target for the online-upgrade experiments
    (§4.8).

    Same on-disk format as v1, two in-memory improvements:
    - a lookup memoisation table in front of the linear directory scan,
      invalidated on any mutation of the directory;
    - operation counting, transferred through upgrade state so a chain of
      upgrades keeps a running total.

    The module demonstrates what high-velocity deployment looks like under
    Bento: v2 mounts against the same kernel services, restores v1's
    transferred state (allocator rotors, open inodes), and serves the same
    open files without an unmount. *)

module Make (K : Bento.Bentoks.KSERVICES) = struct
  module V1 = Fs.Make (K)
  open Bento.Fs_api

  type t = {
    base : V1.t;
    lookup_cache : (int * string, attr) Hashtbl.t;
    mutable ops : int;
    mutable ops_before_upgrade : int;
  }

  let name = "xv6fs"
  let version = 2
  let max_file_size = V1.max_file_size

  let mkfs = V1.mkfs

  let mount () =
    match V1.mount () with
    | Error _ as e -> e
    | Ok base ->
        Ok
          {
            base;
            lookup_cache = Hashtbl.create 1024;
            ops = 0;
            ops_before_upgrade = 0;
          }

  let destroy t = V1.destroy t.base
  let statfs t = V1.statfs t.base

  let tick t = t.ops <- t.ops + 1

  let invalidate_dir t dir =
    Hashtbl.iter
      (fun ((d, _) as key) _ -> if d = dir then Hashtbl.remove t.lookup_cache key)
      (Hashtbl.copy t.lookup_cache)

  let getattr t ~ino =
    tick t;
    V1.getattr t.base ~ino

  let lookup t ~dir name =
    tick t;
    match Hashtbl.find_opt t.lookup_cache (dir, name) with
    | Some a -> (
        (* revalidate cheaply against the inode itself *)
        match V1.getattr t.base ~ino:a.a_ino with
        | Ok fresh -> Ok fresh
        | Error _ ->
            Hashtbl.remove t.lookup_cache (dir, name);
            V1.lookup t.base ~dir name)
    | None -> (
        match V1.lookup t.base ~dir name with
        | Ok a as r ->
            Hashtbl.replace t.lookup_cache (dir, name) a;
            r
        | Error _ as e -> e)

  let create t ~dir name =
    tick t;
    invalidate_dir t dir;
    V1.create t.base ~dir name

  let mkdir t ~dir name =
    tick t;
    invalidate_dir t dir;
    V1.mkdir t.base ~dir name

  let unlink t ~dir name =
    tick t;
    Hashtbl.remove t.lookup_cache (dir, name);
    V1.unlink t.base ~dir name

  let rmdir t ~dir name =
    tick t;
    Hashtbl.remove t.lookup_cache (dir, name);
    V1.rmdir t.base ~dir name

  let rename t ~olddir ~oldname ~newdir ~newname =
    tick t;
    invalidate_dir t olddir;
    invalidate_dir t newdir;
    V1.rename t.base ~olddir ~oldname ~newdir ~newname

  let link t ~ino ~dir name =
    tick t;
    invalidate_dir t dir;
    V1.link t.base ~ino ~dir name

  let symlink t ~dir name ~target =
    tick t;
    invalidate_dir t dir;
    V1.symlink t.base ~dir name ~target

  let readlink t ~ino =
    tick t;
    V1.readlink t.base ~ino

  let read t ~ino ~off ~len =
    tick t;
    V1.read t.base ~ino ~off ~len

  let write t ~ino ~off data =
    tick t;
    V1.write t.base ~ino ~off data

  let truncate t ~ino ~size =
    tick t;
    V1.truncate t.base ~ino ~size

  let fsync t ~ino =
    tick t;
    V1.fsync t.base ~ino

  let sync t =
    tick t;
    V1.sync t.base

  let readdir t ~ino =
    tick t;
    V1.readdir t.base ~ino

  let bmap t ~ino ~fbn = V1.bmap t.base ~ino ~fbn
  let iopen t ~ino = V1.iopen t.base ~ino
  let irelease t ~ino = V1.irelease t.base ~ino

  let extract_state t =
    let st = V1.extract_state t.base in
    Bento.Upgrade_state.with_int
      { st with Bento.Upgrade_state.version }
      "total_ops"
      (t.ops_before_upgrade + t.ops)

  let restore_state t st =
    V1.restore_state t.base st;
    match Bento.Upgrade_state.int st "total_ops" with
    | Some n -> t.ops_before_upgrade <- n
    | None -> ()

  (** v2-only introspection used by tests and the upgrade benchmark. *)
  let total_ops t = t.ops_before_upgrade + t.ops
end
