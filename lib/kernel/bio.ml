(** Asynchronous block-request layer — the kernel block layer's
    plug/unplug discipline over the SSD's channel parallelism.

    A caller with scattered writes "plugs" a request queue, stages block
    writes into it, and "unplugs": the queue sorts the staged requests,
    merges adjacent block numbers into contiguous device commands (one
    command pays one latency floor regardless of length), and submits the
    merged set concurrently via {!Device.Ssd.submit_write}, so distinct
    runs occupy distinct device channels instead of serializing. [wait] is
    the wait-for-all barrier.

    This is the mechanism behind the paper's multi-channel speedups: the
    xv6 log install phase, jbd2 checkpointing and the writepages flusher
    all issue scattered home-location writes, and with a plugged queue the
    device sees them as a handful of parallel commands rather than a
    serial dribble of single-block writes. *)

type t = {
  dev : Device.Ssd.t;
  staged : (int, Bytes.t) Hashtbl.t;
      (** plugged, not yet submitted; keyed by block, last store wins *)
  mutable in_flight : Device.Ssd.completion list;
  mutable submitted : int;  (** commands dispatched since the last [wait] *)
}

let plug dev =
  { dev; staged = Hashtbl.create 16; in_flight = []; submitted = 0 }

(** Sort [(block, payload)] pairs and group maximal runs of consecutive
    block numbers: [[(7,a); (5,b); (6,c)]] becomes [[(5, [b; c; a])]].
    Duplicate blocks must not appear (callers dedup first). *)
let runs pairs =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs
  in
  let rec group acc cur = function
    | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | (blk, p) :: rest -> (
        match cur with
        | [] -> group acc [ (blk, p) ] rest
        | (last, _) :: _ when blk = last + 1 -> group acc ((blk, p) :: cur) rest
        | _ -> group (List.rev cur :: acc) [ (blk, p) ] rest)
  in
  List.map
    (fun run ->
      match run with
      | [] -> assert false
      | (start, _) :: _ -> (start, List.map snd run))
    (group [] [] sorted)

(** Stage a block write in the plugged queue. Nothing reaches the device
    until {!unplug}. Staging the same block again replaces the pending
    payload (the requests would have merged in the device queue anyway).
    The payload is not copied until the device command completes — don't
    mutate it before {!wait}. *)
let add t ~block data = Hashtbl.replace t.staged block data

(** Submit everything staged: sort, merge adjacent blocks into contiguous
    commands, dispatch the merged set concurrently across the device's
    channels. Returns without blocking; pair with {!wait}. *)
let unplug t =
  if Hashtbl.length t.staged > 0 then begin
    let pairs = Hashtbl.fold (fun blk d acc -> (blk, d) :: acc) t.staged [] in
    Hashtbl.reset t.staged;
    List.iter
      (fun (start, payloads) ->
        let c =
          Device.Ssd.submit_write t.dev ~start (Array.of_list payloads)
        in
        t.submitted <- t.submitted + 1;
        t.in_flight <- c :: t.in_flight)
      (runs pairs)
  end

let in_flight t = List.length t.in_flight

(** Wait-for-all barrier: implicitly {!unplug}s any stragglers, then
    blocks until every submitted command completes. Returns the number of
    device commands the batch needed (after merging); if any command
    failed, the first failure is re-raised once all have settled. *)
let wait t =
  unplug t;
  let cs = t.in_flight in
  t.in_flight <- [];
  let n = t.submitted in
  t.submitted <- 0;
  let err = ref None in
  List.iter
    (fun c ->
      match Device.Ssd.await c with
      | _ -> ()
      | exception e -> ( match !err with None -> err := Some e | Some _ -> ()))
    cs;
  match !err with Some e -> raise e | None -> n

(** Plug, stage every [(block, data)] pair, submit merged and wait — the
    whole scatter-write protocol in one call. Returns the command count. *)
let write_scatter dev pairs =
  let t = plug dev in
  List.iter (fun (block, data) -> add t ~block data) pairs;
  wait t

(** Read-side merge: fetch the given (distinct) blocks, merging adjacent
    block numbers into contiguous read commands dispatched concurrently
    across the device's channels. Returns the [(block, data)] pairs in
    ascending block order plus the command count. If a command failed, the
    first failure is re-raised once all have settled. *)
let read_scatter dev blocks =
  let subs =
    List.map
      (fun (start, units) ->
        let count = List.length units in
        (start, count, Device.Ssd.submit_read dev ~start ~count))
      (runs (List.map (fun b -> (b, ())) blocks))
  in
  let err = ref None in
  let results =
    List.map
      (fun (start, count, c) ->
        match Device.Ssd.await c with
        | arr -> List.init count (fun i -> (start + i, arr.(i)))
        | exception e ->
            (match !err with None -> err := Some e | Some _ -> ());
            [])
      subs
  in
  match !err with
  | Some e -> raise e
  | None -> (List.concat results, List.length subs)
