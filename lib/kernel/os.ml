(** The syscall front-end: path resolution, file descriptors, and the
    POSIX-ish calls the workloads and examples use. Each call charges the
    user/kernel crossing and generic VFS costs, then dispatches through the
    mounted file system's [Vfs.fs_ops]. *)

type flags = { rd : bool; wr : bool; creat : bool; trunc : bool; append : bool }

let rdonly = { rd = true; wr = false; creat = false; trunc = false; append = false }
let wronly = { rd = false; wr = true; creat = false; trunc = false; append = false }
let rdwr = { rd = true; wr = true; creat = false; trunc = false; append = false }
let creat f = { f with creat = true }
let truncf f = { f with trunc = true }
let appendf f = { f with append = true }

type file = {
  f_vnode : Vfs.vnode;
  f_flags : flags;
  mutable f_pos : int;
  f_lock : Sim.Sync.Mutex.t;  (** serialises f_pos updates: shared-fd reads *)
}

type t = {
  vfs : Vfs.t;
  fds : (int, file) Hashtbl.t;
  mutable next_fd : int;
  max_files : int;
  sys_lat : Sim.Stats.Histogram.t;  (** entry-to-exit latency, all syscalls *)
  sys_count : Sim.Stats.Counter.t;
  mutable slow_ns : int64 option;
      (** latency threshold: a syscall exceeding it triggers a
          flight-recorder dump *)
  mutable trigger_errors : bool;
      (** dump on syscalls returning [Error _] (off by default: ENOENT
          probes are routine in workloads) *)
}

type 'a res = ('a, Errno.t) result

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let create ?(max_files = 65536) vfs =
  let machine = Vfs.machine vfs in
  {
    vfs;
    fds = Hashtbl.create 256;
    next_fd = 3;
    max_files;
    sys_lat = Machine.histogram machine "syscall_lat";
    sys_count = Machine.counter machine "syscalls";
    slow_ns = None;
    trigger_errors = false;
  }

let vfs t = t.vfs
let set_slow_threshold t ns = t.slow_ns <- ns
let set_trigger_errors t b = t.trigger_errors <- b

let charge_syscall t =
  let c = Machine.cost (Vfs.machine t.vfs) in
  Machine.cpu_work (Vfs.machine t.vfs) (Int64.add c.Cost.syscall c.Cost.vfs_op)

(* Every syscall body runs inside this wrapper: it charges the
   user/kernel crossing, emits a tracer span named after the call, and
   records entry-to-exit virtual latency. The span begins before the
   crossing charge so queueing for a CPU core is attributed to the call.

   The wrapper also anchors the request context: a fiber arriving with no
   reqid (a local mount) gets one minted for the duration of the call, so
   every span, flow and flight entry below it — down to the device
   completion fibers, which inherit the context at spawn — carries the
   same id. A server handler that already set a per-request context keeps
   it. Entry lands in the flight recorder; a call that exceeds the slow
   threshold or raises triggers a dump with the request's causal trace. *)
let syscall_plain t name f =
  let machine = Vfs.machine t.vfs in
  let tr = Machine.tracer machine in
  let fl = Machine.flight machine in
  let eng = Machine.engine machine in
  Sim.Stats.Counter.incr t.sys_count;
  let minted = Sim.Engine.current_req eng = 0L in
  if minted then Sim.Engine.set_current_req eng (Sim.Engine.next_req_id eng);
  let clear_req () = if minted then Sim.Engine.set_current_req eng 0L in
  (* The whole syscall body runs under the "vfs" profiler frame; deeper
     layers (fs, bcache, device) push their own frames on top. *)
  Machine.with_layer machine "vfs" (fun () ->
      Sim.Trace.span_begin tr ~cat:"syscall" name;
      Sim.Flight.note fl ~kind:"syscall" name;
      let t0 = Machine.now machine in
      charge_syscall t;
      match f () with
      | r ->
          let lat = Int64.sub (Machine.now machine) t0 in
          Sim.Stats.Histogram.record t.sys_lat lat;
          Sim.Trace.span_end tr ~cat:"syscall" name;
          (match t.slow_ns with
          | Some thr when Int64.compare lat thr > 0 ->
              ignore
                (Sim.Flight.trigger fl
                   (Printf.sprintf "slow syscall %s: %Ld ns > threshold %Ld ns"
                      name lat thr))
          | _ -> ());
          clear_req ();
          r
      | exception exn ->
          (* Oracle failures and fault-injection surface as exceptions:
             capture the dump before unwinding kills the fiber. *)
          Sim.Flight.note ~sev:Sim.Flight.Error fl ~kind:"syscall"
            (Printf.sprintf "%s raised %s" name (Printexc.to_string exn));
          ignore
            (Sim.Flight.trigger fl
               (Printf.sprintf "syscall %s raised %s" name
                  (Printexc.to_string exn)));
          clear_req ();
          raise exn)

(* Result-returning syscalls (all but [statfs]) also log errno returns to
   the flight recorder, and — when [set_trigger_errors] — dump on them. *)
let syscall t name (f : unit -> 'a res) : 'a res =
  syscall_plain t name (fun () ->
      match f () with
      | Error e as r ->
          let fl = Machine.flight (Vfs.machine t.vfs) in
          Sim.Flight.note ~sev:Sim.Flight.Warn fl ~kind:"errno"
            (Printf.sprintf "%s -> %s" name (Errno.to_string e));
          if t.trigger_errors then
            ignore
              (Sim.Flight.trigger fl
                 (Printf.sprintf "syscall %s returned %s" name
                    (Errno.to_string e)));
          r
      | r -> r)

(* ------------------------------------------------------------------ *)
(* Path resolution.                                                    *)

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else
    Some
      (String.split_on_char '/' path
      |> List.filter (fun c -> c <> "" && c <> "."))

let max_name = 255
let max_symlink_depth = 8

(* Walk components from the root, following symbolic links (except,
   optionally, in the final component — unlink/lstat/readlink operate on
   the link itself). Returns the stat of the final component. *)
let rec resolve_depth t ~follow_last ~depth path : Vfs.stat res =
  if depth > max_symlink_depth then Error Errno.ELOOP
  else
    match split_path path with
    | None -> Error Errno.EINVAL
    | Some comps ->
        let root_ino = (Vfs.ops t.vfs).Vfs.root_ino in
        let rec walk dir_st = function
          | [] -> Ok dir_st
          | name :: rest ->
              if String.length name > max_name then Error Errno.ENAMETOOLONG
              else if dir_st.Vfs.st_kind <> Vfs.Dir then Error Errno.ENOTDIR
              else
                let* st = Vfs.lookup t.vfs ~dir:dir_st.Vfs.st_ino name in
                let is_last = rest = [] in
                if st.Vfs.st_kind = Vfs.Symlink && ((not is_last) || follow_last)
                then
                  let* target = (Vfs.ops t.vfs).Vfs.readlink ~ino:st.Vfs.st_ino in
                  (* only absolute targets are produced by Os.symlink *)
                  let* st' =
                    resolve_depth t ~follow_last:true ~depth:(depth + 1) target
                  in
                  walk st' rest
                else walk st rest
        in
        let* root = (Vfs.ops t.vfs).Vfs.getattr root_ino in
        walk root comps

and resolve ?(follow_last = true) t path : Vfs.stat res =
  resolve_depth t ~follow_last ~depth:0 path

(* Resolve the parent directory of [path]; returns (parent stat, basename). *)
let resolve_parent t path : (Vfs.stat * string) res =
  match split_path path with
  | None | Some [] -> Error Errno.EINVAL
  | Some comps -> (
      let rev = List.rev comps in
      match rev with
      | [] -> Error Errno.EINVAL
      | base :: parents_rev ->
          if String.length base > max_name then Error Errno.ENAMETOOLONG
          else
            let parent_path = List.rev parents_rev in
            let root_ino = (Vfs.ops t.vfs).Vfs.root_ino in
            let* root = (Vfs.ops t.vfs).Vfs.getattr root_ino in
            let rec walk dir_st = function
              | [] -> Ok (dir_st, base)
              | name :: rest ->
                  if dir_st.Vfs.st_kind <> Vfs.Dir then Error Errno.ENOTDIR
                  else
                    let* st = Vfs.lookup t.vfs ~dir:dir_st.Vfs.st_ino name in
                    let* st =
                      if st.Vfs.st_kind = Vfs.Symlink then
                        let* target =
                          (Vfs.ops t.vfs).Vfs.readlink ~ino:st.Vfs.st_ino
                        in
                        resolve t target
                      else Ok st
                    in
                    walk st rest
            in
            walk root parent_path)

(* ------------------------------------------------------------------ *)
(* File descriptors.                                                   *)

let alloc_fd t file =
  if Hashtbl.length t.fds >= t.max_files then Error Errno.ENFILE
  else begin
    let fd = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    Hashtbl.add t.fds fd file;
    Ok fd
  end

let file_of t fd : file res =
  match Hashtbl.find_opt t.fds fd with
  | Some f -> Ok f
  | None -> Error Errno.EBADF

(* ------------------------------------------------------------------ *)
(* Syscalls.                                                           *)

let open_ t path flags : int res =
  syscall t "open" @@ fun () ->
  let open_vnode (st : Vfs.stat) : int res =
    if st.Vfs.st_kind = Vfs.Dir && flags.wr then Error Errno.EISDIR
    else
      let v = Vfs.vnode_of t.vfs st.Vfs.st_ino ~kind:st.Vfs.st_kind ~size:st.Vfs.st_size in
      let* () = (Vfs.ops t.vfs).Vfs.iopen ~ino:st.Vfs.st_ino in
      v.Vfs.v_nopen <- v.Vfs.v_nopen + 1;
      let* () =
        if flags.trunc && st.Vfs.st_kind = Vfs.Reg then Vfs.truncate t.vfs v 0
        else Ok ()
      in
      alloc_fd t
        { f_vnode = v; f_flags = flags; f_pos = 0; f_lock = Sim.Sync.Mutex.create () }
  in
  match resolve t path with
  | Ok st -> open_vnode st
  | Error Errno.ENOENT when flags.creat -> (
      let* parent, base = resolve_parent t path in
      match (Vfs.ops t.vfs).Vfs.create ~dir:parent.Vfs.st_ino base with
      | Ok st ->
          Vfs.dcache_insert t.vfs ~dir:parent.Vfs.st_ino base st.Vfs.st_ino;
          open_vnode st
      | Error Errno.EEXIST ->
          (* raced with another creator; retry as plain open *)
          let* st = resolve t path in
          open_vnode st
      | Error _ as e -> e)
  | Error _ as e -> e

let close t fd : unit res =
  syscall t "close" @@ fun () ->
  let* f = file_of t fd in
  Hashtbl.remove t.fds fd;
  let v = f.f_vnode in
  v.Vfs.v_nopen <- v.Vfs.v_nopen - 1;
  if v.Vfs.v_nopen = 0 then begin
    if not v.Vfs.v_unlinked then Vfs.writeback_vnode t.vfs v;
    (Vfs.ops t.vfs).Vfs.irelease ~ino:v.Vfs.v_ino;
    if v.Vfs.v_unlinked then Vfs.drop_vnode t.vfs v
  end;
  Ok ()

let pread t fd ~pos ~len : Bytes.t res =
  syscall t "pread" @@ fun () ->
  let* f = file_of t fd in
  if not f.f_flags.rd then Error Errno.EBADF
  else Vfs.read t.vfs f.f_vnode ~pos ~len

let pwrite t fd ~pos data : int res =
  syscall t "pwrite" @@ fun () ->
  let* f = file_of t fd in
  if not f.f_flags.wr then Error Errno.EBADF
  else Vfs.write t.vfs f.f_vnode ~pos data

(** read(2): advances the shared file offset under the file lock — the
    serialisation that makes 32-thread sequential reads on one fd behave
    like the paper's. *)
let read t fd ~len : Bytes.t res =
  syscall t "read" @@ fun () ->
  let* f = file_of t fd in
  if not f.f_flags.rd then Error Errno.EBADF
  else
    Sim.Sync.Mutex.with_lock f.f_lock (fun () ->
        let* data = Vfs.read t.vfs f.f_vnode ~pos:f.f_pos ~len in
        f.f_pos <- f.f_pos + Bytes.length data;
        Ok data)

let write t fd data : int res =
  syscall t "write" @@ fun () ->
  let* f = file_of t fd in
  if not f.f_flags.wr then Error Errno.EBADF
  else
    Sim.Sync.Mutex.with_lock f.f_lock (fun () ->
        let pos = if f.f_flags.append then f.f_vnode.Vfs.v_size else f.f_pos in
        let* n = Vfs.write t.vfs f.f_vnode ~pos data in
        f.f_pos <- pos + n;
        Ok n)

let lseek t fd pos : unit res =
  syscall t "lseek" @@ fun () ->
  let* f = file_of t fd in
  if pos < 0 then Error Errno.EINVAL
  else begin
    f.f_pos <- pos;
    Ok ()
  end

let fsync t fd : unit res =
  syscall t "fsync" @@ fun () ->
  let* f = file_of t fd in
  Vfs.fsync t.vfs f.f_vnode

let ftruncate t fd size : unit res =
  syscall t "ftruncate" @@ fun () ->
  let* f = file_of t fd in
  if not f.f_flags.wr then Error Errno.EBADF
  else Vfs.truncate t.vfs f.f_vnode size

let fstat t fd : Vfs.stat res =
  syscall t "fstat" @@ fun () ->
  let* f = file_of t fd in
  let v = f.f_vnode in
  let* st = (Vfs.ops t.vfs).Vfs.getattr v.Vfs.v_ino in
  Ok { st with Vfs.st_size = v.Vfs.v_size }

let stat t path : Vfs.stat res =
  syscall t "stat" @@ fun () ->
  let* st = resolve t path in
  match Vfs.find_vnode t.vfs st.Vfs.st_ino with
  | Some v when v.Vfs.v_nopen > 0 -> Ok { st with Vfs.st_size = v.Vfs.v_size }
  | _ -> Ok st

let exists t path = match stat t path with Ok _ -> true | Error _ -> false

let mkdir t path : unit res =
  syscall t "mkdir" @@ fun () ->
  let* parent, base = resolve_parent t path in
  let* st = (Vfs.ops t.vfs).Vfs.mkdir ~dir:parent.Vfs.st_ino base in
  Vfs.dcache_insert t.vfs ~dir:parent.Vfs.st_ino base st.Vfs.st_ino;
  Ok ()

let unlink t path : unit res =
  syscall t "unlink" @@ fun () ->
  let* parent, base = resolve_parent t path in
  let* st = Vfs.lookup t.vfs ~dir:parent.Vfs.st_ino base in
  if st.Vfs.st_kind = Vfs.Dir then Error Errno.EISDIR
  else
    let* () = (Vfs.ops t.vfs).Vfs.unlink ~dir:parent.Vfs.st_ino base in
    Vfs.dcache_remove t.vfs ~dir:parent.Vfs.st_ino base;
    (match Vfs.find_vnode t.vfs st.Vfs.st_ino with
    | Some v ->
        v.Vfs.v_unlinked <- true;
        if v.Vfs.v_nopen = 0 then Vfs.drop_vnode t.vfs v
    | None ->
        (* never opened, so no vnode carries the deletion to the CAS
           binding — drop it here or a file recycling the inode number
           would serve the sealed content *)
        if st.Vfs.st_nlink <= 1 then Vfs.cas_unbind t.vfs st.Vfs.st_ino);
    Ok ()

let rmdir t path : unit res =
  syscall t "rmdir" @@ fun () ->
  let* parent, base = resolve_parent t path in
  let* st = Vfs.lookup t.vfs ~dir:parent.Vfs.st_ino base in
  if st.Vfs.st_kind <> Vfs.Dir then Error Errno.ENOTDIR
  else
    let* () = (Vfs.ops t.vfs).Vfs.rmdir ~dir:parent.Vfs.st_ino base in
    Vfs.dcache_remove t.vfs ~dir:parent.Vfs.st_ino base;
    Ok ()

let rename t oldpath newpath : unit res =
  syscall t "rename" @@ fun () ->
  let* oparent, oname = resolve_parent t oldpath in
  let* nparent, nname = resolve_parent t newpath in
  (* A rename that replaces an existing destination unlinks the victim:
     its vnode (cached size, page cache) must be dropped just as in
     [unlink], or a later file reusing the inode number inherits the
     victim's stale pages and length. *)
  let victim =
    match Vfs.lookup t.vfs ~dir:nparent.Vfs.st_ino nname with
    | Ok st when st.Vfs.st_kind <> Vfs.Dir -> Some st.Vfs.st_ino
    | _ -> None
  in
  let* () =
    (Vfs.ops t.vfs).Vfs.rename ~olddir:oparent.Vfs.st_ino ~oldname:oname
      ~newdir:nparent.Vfs.st_ino ~newname:nname
  in
  Vfs.dcache_remove t.vfs ~dir:oparent.Vfs.st_ino oname;
  Vfs.dcache_remove t.vfs ~dir:nparent.Vfs.st_ino nname;
  (match victim with
  | Some vino ->
      (* renaming one hard link of an inode onto another is a no-op that
         leaves both names; only a truly replaced inode loses a link *)
      let still_linked =
        match Vfs.lookup t.vfs ~dir:nparent.Vfs.st_ino nname with
        | Ok st -> st.Vfs.st_ino = vino
        | Error _ -> false
      in
      if not still_linked then (
        match Vfs.find_vnode t.vfs vino with
        | Some v ->
            v.Vfs.v_unlinked <- true;
            if v.Vfs.v_nopen = 0 then Vfs.drop_vnode t.vfs v
        | None -> Vfs.cas_unbind t.vfs vino)
  | None -> ());
  Ok ()

let link t oldpath newpath : unit res =
  syscall t "link" @@ fun () ->
  let* st = resolve t oldpath in
  if st.Vfs.st_kind = Vfs.Dir then Error Errno.EPERM
  else
    let* nparent, nname = resolve_parent t newpath in
    let* st' = (Vfs.ops t.vfs).Vfs.link ~ino:st.Vfs.st_ino ~dir:nparent.Vfs.st_ino nname in
    Vfs.dcache_insert t.vfs ~dir:nparent.Vfs.st_ino nname st'.Vfs.st_ino;
    Ok ()

let symlink t target linkpath : unit res =
  syscall t "symlink" @@ fun () ->
  let* parent, base = resolve_parent t linkpath in
  let* st = (Vfs.ops t.vfs).Vfs.symlink ~dir:parent.Vfs.st_ino base ~target in
  Vfs.dcache_insert t.vfs ~dir:parent.Vfs.st_ino base st.Vfs.st_ino;
  Ok ()

let readlink t path : string res =
  syscall t "readlink" @@ fun () ->
  let* st = resolve ~follow_last:false t path in
  if st.Vfs.st_kind <> Vfs.Symlink then Error Errno.EINVAL
  else (Vfs.ops t.vfs).Vfs.readlink ~ino:st.Vfs.st_ino

(** stat(2) without following a final symlink. *)
let lstat t path : Vfs.stat res =
  syscall t "lstat" @@ fun () -> resolve ~follow_last:false t path

let readdir t path : Vfs.dirent list res =
  syscall t "readdir" @@ fun () ->
  let* st = resolve t path in
  if st.Vfs.st_kind <> Vfs.Dir then Error Errno.ENOTDIR
  else (Vfs.ops t.vfs).Vfs.readdir st.Vfs.st_ino

(* --- pushdown entry points: each is exactly ONE syscall crossing; the
   work the plain path would do with further syscalls (per-entry stat,
   per-level read) happens in lower layers. *)

let readdir_filtered t path ~prog : (Vfs.dirent * Vfs.stat) list res =
  syscall t "readdir_filtered" @@ fun () ->
  let* st = resolve t path in
  if st.Vfs.st_kind <> Vfs.Dir then Error Errno.ENOTDIR
  else (Vfs.ops t.vfs).Vfs.readdir_filter st.Vfs.st_ino ~prog

let bmap t path ~fbn : int res =
  syscall t "bmap" @@ fun () ->
  let* st = resolve t path in
  if st.Vfs.st_kind <> Vfs.Reg then Error Errno.EINVAL
  else (Vfs.ops t.vfs).Vfs.bmap ~ino:st.Vfs.st_ino ~fbn

let pushdown_walk t ~prog ~root ~key : Bytes.t res =
  syscall t "pushdown_walk" @@ fun () ->
  Pushdown.walk (Pushdown.registry (Vfs.machine t.vfs)) ~name:prog ~root ~key

let pushdown_get t ~prog ~key : Bytes.t res =
  syscall t "pushdown_get" @@ fun () ->
  Pushdown.get (Pushdown.registry (Vfs.machine t.vfs)) ~name:prog ~key

let sync t : unit res = syscall t "sync" @@ fun () -> Vfs.sync t.vfs

let statfs t : Vfs.statfs =
  syscall_plain t "statfs" @@ fun () -> (Vfs.ops t.vfs).Vfs.statfs ()

(* Convenience helpers used by examples and workloads. *)

let write_file t path data : unit res =
  let* fd = open_ t path (creat (truncf wronly)) in
  let* _ = write t fd data in
  close t fd

let read_file t path : Bytes.t res =
  let* fd = open_ t path rdonly in
  let* st = fstat t fd in
  let* data = pread t fd ~pos:0 ~len:st.Vfs.st_size in
  let* () = close t fd in
  Ok data
