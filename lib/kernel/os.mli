(** The syscall front-end: path resolution (with symlink following), file
    descriptors, and the POSIX-ish calls the workloads and examples use.
    Every call charges the user/kernel crossing and generic VFS costs in
    virtual time, then dispatches through the mounted {!Vfs.fs_ops}.

    All calls must run inside a simulation fiber. Results use
    [('a, Errno.t) result]; [Errno.ok_exn] unwraps when failure is fatal. *)

type t
(** A "process view": one fd table over one mounted file system. *)

type flags = { rd : bool; wr : bool; creat : bool; trunc : bool; append : bool }

val rdonly : flags
val wronly : flags
val rdwr : flags

val creat : flags -> flags
(** O_CREAT. *)

val truncf : flags -> flags
(** O_TRUNC. *)

val appendf : flags -> flags
(** O_APPEND. *)

type 'a res = ('a, Errno.t) result

val create : ?max_files:int -> Vfs.t -> t
val vfs : t -> Vfs.t

val set_slow_threshold : t -> int64 option -> unit
(** Latency threshold (virtual ns): a syscall exceeding it triggers a
    flight-recorder dump carrying its causal trace. [None] (default)
    disables the trigger. *)

val set_trigger_errors : t -> bool -> unit
(** Also trigger a dump when a syscall returns [Error _]. Off by default —
    ENOENT probes are routine in workloads; errno returns are always noted
    in the flight ring regardless. *)

(** {1 Files} *)

val open_ : t -> string -> flags -> int res
val close : t -> int -> unit res

val read : t -> int -> len:int -> Bytes.t res
(** read(2): advances the shared file offset under the file lock. *)

val write : t -> int -> Bytes.t -> int res
(** write(2); honours O_APPEND. *)

val pread : t -> int -> pos:int -> len:int -> Bytes.t res
val pwrite : t -> int -> pos:int -> Bytes.t -> int res
val lseek : t -> int -> int -> unit res
val fsync : t -> int -> unit res
val ftruncate : t -> int -> int -> unit res
val fstat : t -> int -> Vfs.stat res

(** {1 Namespace} *)

val stat : t -> string -> Vfs.stat res
(** Follows symlinks. *)

val lstat : t -> string -> Vfs.stat res
(** Does not follow a final symlink. *)

val exists : t -> string -> bool
val mkdir : t -> string -> unit res
val unlink : t -> string -> unit res
val rmdir : t -> string -> unit res
val rename : t -> string -> string -> unit res
val link : t -> string -> string -> unit res

val symlink : t -> string -> string -> unit res
(** [symlink t target linkpath]. Targets are absolute paths. *)

val readlink : t -> string -> string res
val readdir : t -> string -> Vfs.dirent list res

val readdir_filtered :
  t -> string -> prog:string -> (Vfs.dirent * Vfs.stat) list res
(** Pushdown scan: run the registered {!Pushdown} filter program over the
    directory in ONE syscall — the filter and the per-entry attributes all
    happen below the crossing (and, on the FUSE stack, below the wire). *)

val bmap : t -> string -> fbn:int -> int res
(** FIBMAP: device block backing file block [fbn] (0 = hole). How clients
    learn device pointers when building pushdown index blocks. *)

val pushdown_walk : t -> prog:string -> root:int -> key:int64 -> Bytes.t res
(** Run a registered {!Pushdown.Extent_walk} from index root [root]: one
    syscall; the chase resubmits its own reads from completion context. *)

val pushdown_get : t -> prog:string -> key:int64 -> Bytes.t res
(** Run a registered {!Pushdown.Kv_get}: the whole point lookup resolves
    below the syscall layer in one crossing. *)

val sync : t -> unit res
val statfs : t -> Vfs.statfs

(** {1 Convenience} *)

val write_file : t -> string -> Bytes.t -> unit res
(** Create-or-truncate and write the whole contents. *)

val read_file : t -> string -> Bytes.t res
