(** The simulated machine: engine + CPU cores + the attached device + global
    statistics + tracer + profiler. Every stack (Bento, C-VFS, FUSE, ext4)
    runs on one of these. *)

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Resource.t;
  cost : Cost.t;
  disk : Device.Ssd.t;
  stats : Sim.Stats.t;
  tracer : Sim.Trace.t;
  profile : Sim.Profile.t;
  flight : Sim.Flight.t;
  mutable registries : (string * Sim.Stats.t) list;
      (** stats registries of attached subsystems (bcache, fuse transport,
          ...), newest first, each under a dotted prefix — so one snapshot
          covers the whole stack *)
  mutable inspectors : (string * (unit -> Util.Json.t)) list;
      (** live internal-state probes (bcache residency, lease table, WFQ
          depths, ...), newest first, keyed by name — [inspect] snapshots
          them all *)
}

let create ?(cost = Cost.default) ?config ~disk_blocks ~block_size () =
  let engine = Sim.Engine.create () in
  let tracer = Sim.Trace.create engine in
  let profile = Sim.Profile.create engine in
  let disk =
    Device.Ssd.create ?config ~tracer ~profile ~nblocks:disk_blocks
      ~block_size engine
  in
  let stats = Sim.Stats.create () in
  let flight = Sim.Flight.create ~cpus:cost.Cost.ncores engine tracer in
  {
    engine;
    cpu = Sim.Resource.create ~name:"cpu" cost.Cost.ncores;
    cost;
    disk;
    stats;
    tracer;
    profile;
    flight;
    registries = [ ("machine", stats); ("ssd", Device.Ssd.stats disk) ];
    inspectors = [];
  }

let engine t = t.engine
let disk t = t.disk
let cost t = t.cost
let stats t = t.stats
let tracer t = t.tracer
let profile t = t.profile
let flight t = t.flight
let now t = Sim.Engine.now t.engine

(** Run [f] under profiler layer frame [layer] (no-op while profiling is
    disabled). *)
let with_layer t layer f = Sim.Profile.with_frame t.profile layer f

(** Attach a subsystem's stats registry under [prefix] so machine-wide
    counter snapshots include it. Registering the same prefix twice (e.g.
    mount/remount creating two bcaches) is fine: snapshots sum by name. *)
let register_stats t ~prefix stats = t.registries <- (prefix, stats) :: t.registries

(** Register a live internal-state probe under [name] — a function that,
    when {!inspect} runs, snapshots some subsystem's current state as
    JSON (bcache residency per shard, lease table, WFQ queue depths,
    journal free blocks, ...). Re-registering a name shadows the older
    probe (mount/remount). *)
let register_inspector t ~name probe =
  t.inspectors <- (name, probe) :: t.inspectors

(** Snapshot every registered inspector as one JSON object, name-sorted;
    a probe that raises reports the exception instead of aborting the
    dump (inspection must work on a wedged machine). *)
let inspect t : Util.Json.t =
  let seen = Hashtbl.create 16 in
  let fields =
    List.filter_map
      (fun (name, probe) ->
        if Hashtbl.mem seen name then None
        else begin
          Hashtbl.replace seen name ();
          let v =
            try probe ()
            with exn ->
              Util.Json.Obj [ ("error", Util.Json.String (Printexc.to_string exn)) ]
          in
          Some (name, v)
        end)
      t.inspectors
  in
  Util.Json.Obj
    (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

(** All counters of the machine and its registered subsystems as
    ["prefix.name"] pairs, sorted; duplicate names are summed. *)
let counter_snapshot t =
  let tbl : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (prefix, stats) ->
      Sim.Stats.iter_counters stats (fun name c ->
          let key = prefix ^ "." ^ name in
          let prev = Option.value ~default:0L (Hashtbl.find_opt tbl key) in
          Hashtbl.replace tbl key (Int64.add prev (Sim.Stats.Counter.get c))))
    t.registries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Burn [ns] of CPU on one of the machine's cores (queueing if all cores
    are busy). This is how every simulated code path accounts for its
    processing time. *)
let cpu_work t ns =
  if Int64.compare ns 0L > 0 then Sim.Resource.use t.cpu ns

let counter t name = Sim.Stats.counter t.stats name
let incr ?by t name = Sim.Stats.Counter.incr ?by (counter t name)
let latency t name = Sim.Stats.latency t.stats name
let histogram t name = Sim.Stats.histogram t.stats name

let spawn ?name t f = ignore (Sim.Engine.spawn ?name t.engine f)
let run t = Sim.Engine.run t.engine
let run_until t deadline = Sim.Engine.run_until t.engine deadline
