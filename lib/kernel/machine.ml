(** The simulated machine: engine + CPU cores + the attached device + global
    statistics + tracer. Every stack (Bento, C-VFS, FUSE, ext4) runs on one
    of these. *)

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Resource.t;
  cost : Cost.t;
  disk : Device.Ssd.t;
  stats : Sim.Stats.t;
  tracer : Sim.Trace.t;
}

let create ?(cost = Cost.default) ?config ~disk_blocks ~block_size () =
  let engine = Sim.Engine.create () in
  let tracer = Sim.Trace.create engine in
  let disk =
    Device.Ssd.create ?config ~tracer ~nblocks:disk_blocks ~block_size engine
  in
  {
    engine;
    cpu = Sim.Resource.create ~name:"cpu" cost.Cost.ncores;
    cost;
    disk;
    stats = Sim.Stats.create ();
    tracer;
  }

let engine t = t.engine
let disk t = t.disk
let cost t = t.cost
let stats t = t.stats
let tracer t = t.tracer
let now t = Sim.Engine.now t.engine

(** Burn [ns] of CPU on one of the machine's cores (queueing if all cores
    are busy). This is how every simulated code path accounts for its
    processing time. *)
let cpu_work t ns =
  if Int64.compare ns 0L > 0 then Sim.Resource.use t.cpu ns

let counter t name = Sim.Stats.counter t.stats name
let incr ?by t name = Sim.Stats.Counter.incr ?by (counter t name)
let latency t name = Sim.Stats.latency t.stats name
let histogram t name = Sim.Stats.histogram t.stats name

let spawn ?name t f = ignore (Sim.Engine.spawn ?name t.engine f)
let run t = Sim.Engine.run t.engine
let run_until t deadline = Sim.Engine.run_until t.engine deadline
