(** The simulated Linux VFS layer.

    A kernel file system registers an [fs_ops] table of function pointers
    (exactly the VFS design the paper discusses). The VFS owns the generic
    machinery the paper's three xv6 stacks share: the page cache for file
    data, dirty accounting and writeback, and the dentry cache. The
    writeback batching policy ([wb_batch]) is the lever that distinguishes
    the C baseline (`writepage`, one page per call) from BentoFS
    (`writepages`, contiguous batches) — §6.5.2/§6.6.3 of the paper. *)

type file_kind = Reg | Dir | Symlink

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_size : int;
  st_nlink : int;
}

type dirent = { d_name : string; d_ino : int; d_kind : file_kind }

type statfs = {
  f_blocks : int;  (** total data blocks *)
  f_bfree : int;  (** free blocks *)
  f_files : int;  (** total inodes *)
  f_ffree : int;  (** free inodes *)
}

type 'e res = ('e, Errno.t) result

(** The function-pointer table a file system registers with the VFS. *)
type fs_ops = {
  fs_name : string;
  root_ino : int;
  lookup : dir:int -> string -> stat res;
  getattr : int -> stat res;
  create : dir:int -> string -> stat res;
  mkdir : dir:int -> string -> stat res;
  unlink : dir:int -> string -> unit res;
  rmdir : dir:int -> string -> unit res;
  rename : olddir:int -> oldname:string -> newdir:int -> newname:string -> unit res;
  link : ino:int -> dir:int -> string -> stat res;
  symlink : dir:int -> string -> target:string -> stat res;
  readlink : ino:int -> string res;
  readdir : int -> dirent list res;
  readdir_filter : int -> prog:string -> (dirent * stat) list res;
      (** Pushdown scan: run the registered filter program [prog] over the
          directory inside the fs layer — one crossing for the whole
          filtered, attributed listing. *)
  bmap : ino:int -> fbn:int -> int res;
      (** FIBMAP: device block backing file block [fbn]; 0 = hole. *)
  readpage : ino:int -> index:int -> Bytes.t res;
  readahead : ino:int -> start:int -> count:int -> Bytes.t array res;
      (** Bulk read of [count] consecutive pages starting at page [start],
          used by the page-cache readahead machinery. Pages beyond EOF
          come back zero-filled. *)
  write_pages : ino:int -> isize:int -> (int * Bytes.t) array -> unit res;
  truncate : ino:int -> int -> unit res;
  fsync : ino:int -> unit res;
  sync_fs : unit -> unit res;
  iopen : ino:int -> unit res;  (** inode now referenced by an open file *)
  irelease : ino:int -> unit;  (** last open reference dropped *)
  statfs : unit -> statfs;
  wb_batch : int;  (** max pages per [write_pages] call (1 = writepage) *)
  max_file_size : int;
}

(** Wrap every entry point of an ops table in a profiler layer frame, so
    in-kernel file systems registered directly with the VFS (C xv6, ext4)
    attribute their time to [layer] without sprinkling probes over every
    operation. (BentoFS and the FUSE driver have their own dispatch
    funnels and frame there instead.) *)
let profiled_ops machine layer (ops : fs_ops) : fs_ops =
  let lay f = Machine.with_layer machine layer f in
  {
    ops with
    lookup = (fun ~dir name -> lay (fun () -> ops.lookup ~dir name));
    getattr = (fun ino -> lay (fun () -> ops.getattr ino));
    create = (fun ~dir name -> lay (fun () -> ops.create ~dir name));
    mkdir = (fun ~dir name -> lay (fun () -> ops.mkdir ~dir name));
    unlink = (fun ~dir name -> lay (fun () -> ops.unlink ~dir name));
    rmdir = (fun ~dir name -> lay (fun () -> ops.rmdir ~dir name));
    rename =
      (fun ~olddir ~oldname ~newdir ~newname ->
        lay (fun () -> ops.rename ~olddir ~oldname ~newdir ~newname));
    link = (fun ~ino ~dir name -> lay (fun () -> ops.link ~ino ~dir name));
    symlink =
      (fun ~dir name ~target -> lay (fun () -> ops.symlink ~dir name ~target));
    readlink = (fun ~ino -> lay (fun () -> ops.readlink ~ino));
    readdir = (fun ino -> lay (fun () -> ops.readdir ino));
    readdir_filter =
      (fun ino ~prog -> lay (fun () -> ops.readdir_filter ino ~prog));
    bmap = (fun ~ino ~fbn -> lay (fun () -> ops.bmap ~ino ~fbn));
    readpage = (fun ~ino ~index -> lay (fun () -> ops.readpage ~ino ~index));
    readahead =
      (fun ~ino ~start ~count -> lay (fun () -> ops.readahead ~ino ~start ~count));
    write_pages =
      (fun ~ino ~isize pages -> lay (fun () -> ops.write_pages ~ino ~isize pages));
    truncate = (fun ~ino size -> lay (fun () -> ops.truncate ~ino size));
    fsync = (fun ~ino -> lay (fun () -> ops.fsync ~ino));
    sync_fs = (fun () -> lay ops.sync_fs);
    iopen = (fun ~ino -> lay (fun () -> ops.iopen ~ino));
    irelease = (fun ~ino -> lay (fun () -> ops.irelease ~ino));
    statfs = (fun () -> lay ops.statfs);
  }

(* ------------------------------------------------------------------ *)
(* Per-CPU-style distributed counters (Linux percpu_counter): updates go
   to the updating fiber's cell, so the hot write/read paths of different
   workload fibers do not all bump one shared counter; reads sum the
   cells. In the simulation this is about structure rather than cache
   lines, but it keeps the dirty/cached accounting off every fiber's
   critical path the same way the kernel does.                          *)

module Pcpu = struct
  let cells = 16

  type t = int array

  let create () = Array.make cells 0

  let add (c : t) n =
    let eng = Sim.Engine.self_engine () in
    let fid = Sim.Engine.current_fid eng in
    let i = if fid < 0 then 0 else fid land (cells - 1) in
    c.(i) <- c.(i) + n

  let read (c : t) = Array.fold_left ( + ) 0 c
end

(* ------------------------------------------------------------------ *)
(* In-core inode (vnode) with its page cache.                          *)

type page = {
  pdata : Bytes.t;
  mutable pdirty : bool;
  mutable pra : bool;  (** brought in by readahead, not yet consumed *)
  mutable pshared : int64 option;
      (** content hash when [pdata] aliases a refcounted CAS shared page:
          the same [Bytes.t] appears in every vnode whose sealed file has
          this block content. Shared pages are never dirty — a write
          privatises the whole file first (COW). *)
}

type vnode = {
  v_ino : int;
  mutable v_kind : file_kind;
  mutable v_size : int;
  v_pages : (int, page) Hashtbl.t;
  mutable v_dirty_pages : int;
  v_rw : Sim.Sync.Rwlock.t;  (** inode lock *)
  v_wb : Sim.Sync.Mutex.t;  (** serialises writeback of this file *)
  mutable v_nopen : int;
  mutable v_unlinked : bool;
  mutable v_ra_next : int;
      (** readahead state: page index one past the last sequential read *)
  mutable v_ra_window : int;  (** current readahead window (pages); 0 = off *)
  mutable v_ra_issued_to : int;
      (** end of the prefetch-issued region; the next chunk starts here *)
  v_ra_inflight : (int, unit) Hashtbl.t;
      (** page indexes an async prefetch is currently fetching *)
}

(** Hooks a content-addressable store registers with the VFS ({!set_cas}).
    The VFS consults them on page faults so vnodes of sealed (read-only
    instantiated) files alias the store's refcounted shared pages instead
    of reading through the file system; every page-removal path gives the
    reference back. The record keeps [Vfs] free of a dependency on the
    store implementation. *)
type cas_ops = {
  cas_lookup : int -> int64 array option;
      (** per-page content hashes of a sealed file, by inode; [None] when
          the inode is not CAS-bound *)
  cas_acquire : int64 -> Bytes.t;
      (** shared page bytes for a hash, refcount raised by one; fills from
          the device on first use. The returned [Bytes.t] is shared — the
          caller must never mutate it. *)
  cas_release : int64 -> unit;  (** one alias dropped; 0 refs ⇒ reclaimable *)
  cas_refs : int64 -> int;  (** current refcount (0 when not resident) *)
  cas_cow : int -> unit;
      (** break the binding after the file's content has been privatised
          and flushed: removes it durably so post-crash readers see the
          private copy, never a mix *)
  cas_unbind : int -> unit;  (** unlink: drop the binding (durably) *)
  cas_debug_refs : unit -> (int64 * int) list;
      (** resident (hash, refcount) table, for the accounting oracle *)
}

type t = {
  machine : Machine.t;
  ops : fs_ops;
  page_size : int;
  vnodes : (int, vnode) Hashtbl.t;
  dcache : (int * string, int) Hashtbl.t;  (** (dir, name) -> ino *)
  total_dirty : Pcpu.t;  (** dirty pages across all files *)
  total_pages : Pcpu.t;  (** all cached pages (memory pressure) *)
  page_cap : int;  (** reclaim threshold, in pages *)
  dirty_limit : int;  (** balance_dirty_pages threshold *)
  dirty_bg : int;  (** background writeback threshold *)
  mutable flusher_running : bool;
  mutable active : bool;
  stats : Sim.Stats.t;
  mutable ra_pending : int;  (** outstanding async readahead fibers *)
  mutable ra_enabled : bool;  (** ablation switch; on by default *)
  ra_issued : Sim.Stats.Counter.t;  (** pages prefetched (machine-wide) *)
  ra_hit : Sim.Stats.Counter.t;  (** page hits satisfied by readahead *)
  mutable modify_hook : (int -> unit) option;
      (** lease hook: called with the inode number after every successful
          data mutation (write, truncate) — the file server uses it to bump
          change attributes and break client leases when the file system is
          written beneath it *)
  mutable cas : cas_ops option;  (** content-addressable store hooks *)
}

let page_size t = t.page_size
let set_modify_hook t h = t.modify_hook <- h

let notify_modify t ino =
  match t.modify_hook with Some f -> f ino | None -> ()
let machine t = t.machine
let ops t = t.ops
let stats t = t.stats
let incr ?by t name = Sim.Stats.Counter.incr ?by (Sim.Stats.counter t.stats name)

let cost t = Machine.cost t.machine
let cpu t ns = Machine.cpu_work t.machine ns
let tracer t = Machine.tracer t.machine

let set_cas t c = t.cas <- c

let cas_hashes t v =
  match t.cas with None -> None | Some c -> c.cas_lookup v.v_ino

let cas_unbind t ino =
  match t.cas with Some c -> c.cas_unbind ino | None -> ()

(* Give a page's shared-table reference back. Every path that removes a
   page from a page table funnels through this, or the store's refcounts
   drift from the alias count and the accounting oracle fires. *)
let release_shared t p =
  match p.pshared with
  | None -> ()
  | Some h ->
      p.pshared <- None;
      (match t.cas with Some c -> c.cas_release h | None -> ())

let vnode_of t ino ~kind ~size =
  match Hashtbl.find_opt t.vnodes ino with
  | Some v -> v
  | None ->
      let v =
        {
          v_ino = ino;
          v_kind = kind;
          v_size = size;
          v_pages = Hashtbl.create 16;
          v_dirty_pages = 0;
          v_rw = Sim.Sync.Rwlock.create ~name:"inode" ();
          v_wb = Sim.Sync.Mutex.create ~name:"wb" ();
          v_nopen = 0;
          v_unlinked = false;
          v_ra_next = 0;
          v_ra_window = 0;
          v_ra_issued_to = 0;
          v_ra_inflight = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.vnodes ino v;
      v

let find_vnode t ino = Hashtbl.find_opt t.vnodes ino

(* Memory pressure: drop clean pages of unopened files until comfortably
   below the cap (the kernel's page reclaim, radically simplified). *)
let reclaim_pages t =
  if Pcpu.read t.total_pages > t.page_cap then begin
    incr t "page_reclaims";
    let target = t.page_cap * 7 / 8 in
    Hashtbl.iter
      (fun _ v ->
        if Pcpu.read t.total_pages > target && v.v_nopen = 0 then begin
          let clean =
            Hashtbl.fold
              (fun i p acc -> if p.pdirty then acc else i :: acc)
              v.v_pages []
          in
          List.iter
            (fun i ->
              if Pcpu.read t.total_pages > target then begin
                (match Hashtbl.find_opt v.v_pages i with
                | Some p -> release_shared t p
                | None -> ());
                Hashtbl.remove v.v_pages i;
                Pcpu.add t.total_pages (-1)
              end)
            clean
        end)
      t.vnodes
  end

(* Insert [p] at [index], keeping the cached/dirty totals exact even when
   it replaces an existing page (two readers faulting the same index
   concurrently): the displaced page's accounting must not leak, or the
   totals drift up and the dirty throttle misfires. *)
let insert_page t v index p =
  (match Hashtbl.find_opt v.v_pages index with
  | Some old ->
      if old.pdirty then begin
        v.v_dirty_pages <- v.v_dirty_pages - 1;
        Pcpu.add t.total_dirty (-1)
      end;
      release_shared t old
  | None -> Pcpu.add t.total_pages 1);
  Hashtbl.replace v.v_pages index p;
  reclaim_pages t

(* Debug-build accounting oracle: recompute the dirty/cached totals from
   the page tables and fail loudly on any drift. Enabled by tests; too
   expensive (O(cached pages)) for normal runs. *)
let debug_accounting = ref false
let set_debug_accounting b = debug_accounting := b

let check_accounting_body t =
  let dirty = ref 0 and pages = ref 0 in
  Hashtbl.iter
    (fun _ v ->
      let vd =
        Hashtbl.fold (fun _ p n -> if p.pdirty then n + 1 else n) v.v_pages 0
      in
      if vd <> v.v_dirty_pages then
        failwith
          (Printf.sprintf "vfs: ino %d dirty counter %d <> actual %d" v.v_ino
             v.v_dirty_pages vd);
      dirty := !dirty + vd;
      pages := !pages + Hashtbl.length v.v_pages)
    t.vnodes;
  if !dirty <> Pcpu.read t.total_dirty then
    failwith
      (Printf.sprintf "vfs: total_dirty %d <> actual %d"
         (Pcpu.read t.total_dirty) !dirty);
  if !pages <> Pcpu.read t.total_pages then
    failwith
      (Printf.sprintf "vfs: total_pages %d <> actual %d"
         (Pcpu.read t.total_pages) !pages);
  (* Shared-page oracle: every resident CAS entry's refcount must equal
     the number of page-table aliases of that hash, a shared page must be
     clean (COW privatises before any dirtying), and a zero-ref entry
     must have been reclaimed. *)
  match t.cas with
  | None -> ()
  | Some c ->
      let aliases : (int64, int) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.iter
        (fun _ v ->
          Hashtbl.iter
            (fun i p ->
              match p.pshared with
              | None -> ()
              | Some h ->
                  if p.pdirty then
                    failwith
                      (Printf.sprintf "vfs: ino %d page %d shared AND dirty"
                         v.v_ino i);
                  Hashtbl.replace aliases h
                    (1 + Option.value ~default:0 (Hashtbl.find_opt aliases h)))
            v.v_pages)
        t.vnodes;
      let table = c.cas_debug_refs () in
      List.iter
        (fun (h, refs) ->
          let actual = Option.value ~default:0 (Hashtbl.find_opt aliases h) in
          if refs <> actual then
            failwith
              (Printf.sprintf "vfs: cas hash %Lx refcount %d <> %d aliases" h
                 refs actual);
          if refs = 0 then
            failwith
              (Printf.sprintf "vfs: cas hash %Lx resident with zero refs" h))
        table;
      Hashtbl.iter
        (fun h n ->
          if n > 0 && not (List.mem_assoc h table) then
            failwith
              (Printf.sprintf
                 "vfs: %d aliases of cas hash %Lx but no shared entry" n h))
        aliases

(* The oracle firing is exactly the moment the flight recorder exists
   for: capture the ring and the current request's causal trace before
   the failure unwinds the fiber. *)
let check_accounting t =
  try check_accounting_body t
  with Failure msg as e ->
    ignore
      (Sim.Flight.trigger (Machine.flight t.machine)
         ("accounting oracle: " ^ msg));
    raise e

let cached_pages t = Pcpu.read t.total_pages
let dirty_pages t = Pcpu.read t.total_dirty

(* ------------------------------------------------------------------ *)
(* Writeback.                                                          *)

(* Split the sorted dirty page list into contiguous runs capped at
   [wb_batch]; each run becomes one [write_pages] call. With wb_batch = 1
   this degenerates into per-page writepage calls. *)
let runs_of_indexes ~batch indexes =
  let rec go acc run = function
    | [] -> List.rev (if run = [] then acc else List.rev run :: acc)
    | i :: rest -> (
        match run with
        | [] -> go acc [ i ] rest
        | last :: _ when i = last + 1 && List.length run < batch ->
            go acc (i :: run) rest
        | _ -> go (List.rev run :: acc) [ i ] rest)
  in
  go [] [] indexes

(* Sample total dirty pages as a Perfetto counter track (no-op while
   tracing is disabled). *)
let sample_dirty t =
  Sim.Trace.counter (tracer t) ~cat:"vfs" "vfs:dirty_pages"
    (Int64.of_int (Pcpu.read t.total_dirty))

let wb_max_inflight = 8
(** Cap on concurrently dispatched [write_pages] calls per file — the
    flusher's queue depth, matching the device's channel count. *)

(** Write all dirty pages of [v] down into the file system. Each
    contiguous run becomes one [write_pages] call; distinct runs are
    dispatched concurrently (the block layer's async submit path) and all
    are awaited before returning. *)
let writeback_vnode t v =
  Machine.with_layer t.machine "vfs" @@ fun () ->
  Sim.Trace.with_span (tracer t) ~cat:"vfs" "vfs:writeback" (fun () ->
  Sim.Sync.Mutex.with_lock v.v_wb (fun () ->
      let dirty =
        Hashtbl.fold (fun i p acc -> if p.pdirty then i :: acc else acc) v.v_pages []
        |> List.sort compare
      in
      if dirty <> [] then begin
        let runs = runs_of_indexes ~batch:t.ops.wb_batch dirty in
        (* Snapshot every run up front, clearing dirty bits, so writes
           racing with the I/O re-dirty pages instead of being lost. *)
        let batches =
          List.filter_map
            (fun run ->
              let pages =
                List.filter_map
                  (fun i ->
                    match Hashtbl.find_opt v.v_pages i with
                    | Some p when p.pdirty ->
                        p.pdirty <- false;
                        v.v_dirty_pages <- v.v_dirty_pages - 1;
                        Pcpu.add t.total_dirty (-1);
                        Some (i, p.pdata)
                    | _ -> None)
                  run
                |> Array.of_list
              in
              if Array.length pages = 0 then None else Some pages)
            runs
        in
        let issue pages =
          incr t "wb_calls";
          incr ~by:(Array.length pages) t "wb_pages";
          match t.ops.write_pages ~ino:v.v_ino ~isize:v.v_size pages with
          | Ok () -> ()
          | Error _ ->
              (* Keep going; the error is recorded like Linux does with
                 AS_EIO. *)
              incr t "wb_errors"
        in
        match batches with
        | [] -> ()
        | [ pages ] -> issue pages
        | batches ->
            let n = List.length batches in
            let window = Sim.Sync.Semaphore.create wb_max_inflight in
            let done_sem = Sim.Sync.Semaphore.create 0 in
            let first_exn = ref None in
            List.iter
              (fun pages ->
                Sim.Sync.Semaphore.acquire window;
                Machine.spawn ~name:"wb" t.machine (fun () ->
                    Machine.with_layer t.machine "vfs" (fun () ->
                        (try issue pages
                         with e ->
                           if !first_exn = None then first_exn := Some e);
                        Sim.Sync.Semaphore.release window;
                        Sim.Sync.Semaphore.release done_sem)))
              batches;
            for _ = 1 to n do
              Sim.Sync.Semaphore.acquire done_sem
            done;
            (match !first_exn with Some e -> raise e | None -> ())
      end));
  if !debug_accounting then check_accounting t;
  sample_dirty t

(** Balance: a writer that pushed the system over the dirty limit does
    writeback of its own file until below (Linux balance_dirty_pages). *)
let balance_dirty t v =
  sample_dirty t;
  if !debug_accounting then check_accounting t;
  if Pcpu.read t.total_dirty > t.dirty_limit then begin
    incr t "dirty_throttles";
    writeback_vnode t v
  end

let wb_all_fanout = 4
(** Files written back concurrently by [writeback_all] — the flusher's
    per-file parallelism. Per-file order within {!writeback_vnode} is
    still serialised by each vnode's [v_wb] lock. *)

let writeback_all t =
  let vs = Hashtbl.fold (fun _ v acc -> v :: acc) t.vnodes [] in
  let vs = List.sort (fun a b -> compare a.v_ino b.v_ino) vs in
  match List.filter (fun v -> v.v_dirty_pages > 0) vs with
  | [] -> ()
  | [ v ] -> writeback_vnode t v
  | dirty ->
      (* Dirty files flush concurrently under a bounded window, so one
         slow file's I/O does not serialise the whole sync pass. *)
      let n = List.length dirty in
      let window = Sim.Sync.Semaphore.create wb_all_fanout in
      let done_sem = Sim.Sync.Semaphore.create 0 in
      let first_exn = ref None in
      List.iter
        (fun v ->
          Sim.Sync.Semaphore.acquire window;
          Machine.spawn ~name:"wb-all" t.machine (fun () ->
              (try writeback_vnode t v
               with e -> if !first_exn = None then first_exn := Some e);
              Sim.Sync.Semaphore.release window;
              Sim.Sync.Semaphore.release done_sem))
        dirty;
      for _ = 1 to n do
        Sim.Sync.Semaphore.acquire done_sem
      done;
      (match !first_exn with Some e -> raise e | None -> ())

(* Background flusher fiber: periodic writeback above the bg threshold,
   mirroring the kernel's dirty_writeback_centisecs behaviour. *)
let start_flusher t =
  if not t.flusher_running then begin
    t.flusher_running <- true;
    Machine.spawn ~name:"flusher" t.machine (fun () ->
        let rec loop () =
          if t.active then begin
            Sim.Engine.sleep (Sim.Time.ms 500);
            if t.active && Pcpu.read t.total_dirty > t.dirty_bg then
              writeback_all t;
            loop ()
          end
        in
        loop ();
        t.flusher_running <- false)
  end

(* ------------------------------------------------------------------ *)
(* Mount / unmount.                                                    *)

let mount ?(dirty_limit = 48 * 256) ?(page_cap = 131072) ?(background = true)
    machine ops =
  let t =
    {
      machine;
      ops;
      page_size = Device.Ssd.block_size (Machine.disk machine);
      vnodes = Hashtbl.create 1024;
      dcache = Hashtbl.create 4096;
      total_dirty = Pcpu.create ();
      total_pages = Pcpu.create ();
      page_cap;
      dirty_limit;
      dirty_bg = dirty_limit / 2;
      flusher_running = false;
      active = true;
      stats = Sim.Stats.create ();
      ra_pending = 0;
      ra_enabled = true;
      ra_issued = Machine.counter machine "readahead_issued";
      ra_hit = Machine.counter machine "readahead_hit";
      modify_hook = None;
      cas = None;
    }
  in
  if background then start_flusher t;
  (* Live page-cache and CAS shared-page-table probes for
     `bento_cli inspect`. *)
  Machine.register_inspector machine ~name:"vfs" (fun () ->
      let open Util.Json in
      Obj
        [
          ("fs", String t.ops.fs_name);
          ("vnodes", Int (Hashtbl.length t.vnodes));
          ("cached_pages", Int (Pcpu.read t.total_pages));
          ("dirty_pages", Int (Pcpu.read t.total_dirty));
          ("page_cap", Int t.page_cap);
          ("dirty_limit", Int t.dirty_limit);
        ]);
  Machine.register_inspector machine ~name:"cas" (fun () ->
      let open Util.Json in
      match t.cas with
      | None -> Obj [ ("bound", Bool false) ]
      | Some c ->
          let table = c.cas_debug_refs () in
          let total_refs = List.fold_left (fun a (_, r) -> a + r) 0 table in
          Obj
            [
              ("bound", Bool true);
              ("resident_pages", Int (List.length table));
              ("total_refs", Int total_refs);
              ( "pages",
                List
                  (List.map
                     (fun (h, refs) ->
                       Obj
                         [
                           ("hash", String (Printf.sprintf "%Lx" h));
                           ("refs", Int refs);
                         ])
                     table) );
            ]);
  Printk.info machine "vfs: mounted %s (root ino %d, wb_batch %d)"
    ops.fs_name ops.root_ino ops.wb_batch;
  t

(** Flush everything and deactivate. Safe to call from a fiber. *)
let unmount t =
  Printk.info t.machine "vfs: unmounting %s" t.ops.fs_name;
  (* Stop new prefetches and wait out in-flight ones, so no readahead
     fiber dispatches into the fs after it is destroyed. *)
  t.active <- false;
  while t.ra_pending > 0 do
    Sim.Engine.sleep (Sim.Time.us 50)
  done;
  writeback_all t;
  (match t.ops.sync_fs () with Ok () -> () | Error _ -> incr t "wb_errors");
  Hashtbl.reset t.dcache

(* ------------------------------------------------------------------ *)
(* Dentry cache.                                                       *)

let dcache_lookup t ~dir name =
  cpu t (cost t).Cost.dcache_hit;
  Hashtbl.find_opt t.dcache (dir, name)

let dcache_insert t ~dir name ino = Hashtbl.replace t.dcache (dir, name) ino

let dcache_remove t ~dir name = Hashtbl.remove t.dcache (dir, name)

(** Lookup with dcache in front of the file system (the real VFS fast
    path). The dcache maps names to inode numbers only; attributes always
    come from the file system's in-core inode, so they are never stale. *)
let lookup t ~dir name : stat res =
  match dcache_lookup t ~dir name with
  | Some ino -> (
      incr t "dcache_hits";
      match t.ops.getattr ino with
      | Ok _ as r -> r
      | Error _ ->
          (* stale dentry (inode recycled): drop and retry below *)
          dcache_remove t ~dir name;
          t.ops.lookup ~dir name)
  | None -> (
      incr t "dcache_misses";
      match t.ops.lookup ~dir name with
      | Ok st ->
          dcache_insert t ~dir name st.st_ino;
          Ok st
      | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Generic file read / write through the page cache.                   *)

let rec page_of t v index : (page, Errno.t) result =
  cpu t (cost t).Cost.page_lookup;
  match Hashtbl.find_opt v.v_pages index with
  | Some p ->
      incr t "page_hits";
      if p.pra then begin
        p.pra <- false;
        Sim.Stats.Counter.incr t.ra_hit
      end;
      Ok p
  | None when Hashtbl.mem v.v_ra_inflight index ->
      (* An async prefetch already has this page on the wire: wait for it
         (the page-lock wait in Linux) rather than issue a duplicate
         device read. If the prefetch fails it clears the in-flight mark
         without inserting, and the retry faults the page in itself. *)
      incr t "page_waits";
      while Hashtbl.mem v.v_ra_inflight index do
        Sim.Engine.sleep (Sim.Time.us 5)
      done;
      page_of t v index
  | None -> (
      match cas_alias t v index with
      | Some r -> r
      | None -> (
          incr t "page_misses";
          Sim.Trace.instant (tracer t) ~cat:"vfs" "vfs:page_miss";
          match t.ops.readpage ~ino:v.v_ino ~index with
          | Ok data -> (
              (* readpage blocked for device I/O: a concurrent reader may
                 have instantiated this page meanwhile. Adopt the cached
                 page rather than replacing it — replacing would discard
                 dirty bits a racing writer set and double-count the
                 cached total. *)
              match Hashtbl.find_opt v.v_pages index with
              | Some p -> Ok p
              | None ->
                  let p =
                    { pdata = data; pdirty = false; pra = false;
                      pshared = None }
                  in
                  insert_page t v index p;
                  Ok p)
          | Error _ as e -> e))

(* The many-to-one page path: a fault on a CAS-bound inode resolves
   through the store's shared-page table instead of the file system. A
   table hit aliases the identical cached [Bytes.t] another tenant's
   vnode already maps — zero device I/O, zero copy; a miss fills the
   shared page once from the CAS region (bypassing the buffer cache) and
   then aliases it. The on-disk file is a metadata-only stub, so falling
   through to [readpage] would return zeros — bound inodes must never
   take that path for indexes the manifest covers. *)
and cas_alias t v index : (page, Errno.t) result option =
  match t.cas with
  | None -> None
  | Some c -> (
      match c.cas_lookup v.v_ino with
      | None -> None
      | Some hashes when index < Array.length hashes ->
          let h = hashes.(index) in
          let data = c.cas_acquire h in
          (* acquire may block on device I/O: adopt a racer's page and
             give our reference back rather than double-count the alias *)
          (match Hashtbl.find_opt v.v_pages index with
          | Some p ->
              c.cas_release h;
              Some (Ok p)
          | None ->
              let p =
                { pdata = data; pdirty = false; pra = false;
                  pshared = Some h }
              in
              insert_page t v index p;
              Some (Ok p))
      | Some _ ->
          (* beyond the sealed content (reads clamp to v_size, so only
             reachable through a stale size): zeros via the sparse stub *)
          None)

(* A page being created entirely beyond the current data does not need a
   disk read. *)
let page_for_write t v index =
  cpu t (cost t).Cost.page_lookup;
  match Hashtbl.find_opt v.v_pages index with
  | Some p -> Ok p
  | None ->
      let beyond = index * t.page_size >= v.v_size in
      if beyond then begin
        let p = { pdata = Bytes.make t.page_size '\000'; pdirty = false;
                  pra = false; pshared = None } in
        insert_page t v index p;
        Ok p
      end
      else page_of t v index

(* ------------------------------------------------------------------ *)
(* Page-cache readahead (the ondemand algorithm, radically simplified):
   per-file sequential-access detection with a window that ramps up on
   every sequential read and collapses on a seek. The window is fetched
   asynchronously — prefetch fibers call the fs's bulk [readahead] op and
   insert pages behind the reader's back — so cold sequential reads
   overlap device time with the foreground's misses. *)

let ra_init_window = 4
let ra_max_window = 32 (* 128 KB, the kernel's default readahead cap *)

let set_readahead t on = t.ra_enabled <- on

let maybe_readahead t v ~first ~last =
  (* CAS-bound files must not prefetch through the fs: on disk they are
     metadata-only sparse stubs, so [readahead] would insert zero-filled
     pages over the sealed content. Their warm path is the shared-page
     table; there is nothing useful to prefetch. *)
  if t.active && t.ra_enabled && v.v_kind = Reg && cas_hashes t v = None
  then begin
    if first <= v.v_ra_next && v.v_ra_next <= last + 1 then begin
      v.v_ra_next <- last + 1;
      (* Issue a whole window-sized chunk, not the sliding tail: a new
         chunk goes out only when the reader is within half a window of
         the end of the issued region (the PG_readahead marker), so
         prefetch I/O stays in window-sized contiguous runs the block
         layer can merge into single device commands. *)
      if last + 1 + (v.v_ra_window / 2) >= v.v_ra_issued_to then begin
        v.v_ra_window <-
          (if v.v_ra_window = 0 then ra_init_window
           else min ra_max_window (2 * v.v_ra_window));
        let limit = (v.v_size + t.page_size - 1) / t.page_size in
        let lo = max (last + 1) v.v_ra_issued_to in
        let hi = min limit (lo + v.v_ra_window) in
        v.v_ra_issued_to <- max v.v_ra_issued_to hi;
        let missing = ref [] in
        for i = hi - 1 downto lo do
          if
            (not (Hashtbl.mem v.v_pages i))
            && not (Hashtbl.mem v.v_ra_inflight i)
          then missing := i :: !missing
        done;
        List.iter
          (fun run ->
            let start = List.hd run and count = List.length run in
            List.iter (fun i -> Hashtbl.replace v.v_ra_inflight i ()) run;
            Sim.Stats.Counter.incr ~by:count t.ra_issued;
            incr ~by:count t "readahead_pages";
            t.ra_pending <- t.ra_pending + 1;
            Machine.spawn ~name:"readahead" t.machine (fun () ->
                Fun.protect
                  ~finally:(fun () ->
                    List.iter (fun i -> Hashtbl.remove v.v_ra_inflight i) run;
                    t.ra_pending <- t.ra_pending - 1)
                  (fun () ->
                    (* Best effort: readahead failures are invisible, as in
                       Linux — the foreground read will fault the page in
                       itself and surface any real error. *)
                    match t.ops.readahead ~ino:v.v_ino ~start ~count with
                    | Error _ | (exception _) -> ()
                    | Ok pages ->
                        Array.iteri
                          (fun i data ->
                            let idx = start + i in
                            if
                              t.active
                              && (not (Hashtbl.mem v.v_pages idx))
                              && idx * t.page_size < v.v_size
                            then
                              insert_page t v idx
                                { pdata = data; pdirty = false; pra = true;
                                  pshared = None })
                          pages)))
          (runs_of_indexes ~batch:max_int !missing)
      end
    end
    else begin
      (* Seek: collapse the window; a new stream restarts the ramp. *)
      v.v_ra_window <- 0;
      v.v_ra_next <- last + 1;
      v.v_ra_issued_to <- last + 1
    end
  end

(** Read [len] bytes at [pos]; short reads at EOF. *)
let read t v ~pos ~len : Bytes.t res =
  if pos < 0 || len < 0 then Error Errno.EINVAL
  else
    Sim.Sync.Rwlock.with_read v.v_rw (fun () ->
        let len = max 0 (min len (v.v_size - pos)) in
        if len = 0 then Ok Bytes.empty
        else begin
          maybe_readahead t v ~first:(pos / t.page_size)
            ~last:((pos + len - 1) / t.page_size);
          let out = Bytes.create len in
          let rec go off =
            if off >= len then Ok out
            else begin
              let abs = pos + off in
              let index = abs / t.page_size in
              let page_off = abs mod t.page_size in
              let n = min (t.page_size - page_off) (len - off) in
              match page_of t v index with
              | Error _ as e -> e
              | Ok p ->
                  cpu t (Cost.copy_time ~bw:(cost t).Cost.memcpy_bw n);
                  Bytes.blit p.pdata page_off out off n;
                  go (off + n)
            end
          in
          go 0
        end)

(* Copy-on-write: the first mutation of a CAS-bound file privatises the
   whole file and breaks the binding, after which it is an ordinary file.
   Ordering gives the crash oracle its old-or-new guarantee:
     1. fault every sealed page in (cheap: shared-table aliases),
     2. replace the shared aliases with private dirty copies,
     3. push the full content into the file system and fsync it,
     4. only then durably remove the binding ([cas_cow]).
   A crash before step 4 leaves the binding in place, so readers see the
   old shared content; after it, the fsynced private copy — never a mix.
   Runs under the vnode's write lock, so no reader observes the middle. *)
let privatize t v (c : cas_ops) : unit res =
  let npages = (v.v_size + t.page_size - 1) / t.page_size in
  let rec fault i =
    if i >= npages then Ok ()
    else match page_of t v i with Ok _ -> fault (i + 1) | Error _ as e -> e
  in
  match fault 0 with
  | Error _ as e -> e
  | Ok () ->
      for i = 0 to npages - 1 do
        match Hashtbl.find_opt v.v_pages i with
        | None -> ()
        | Some p ->
            if p.pshared <> None then begin
              release_shared t p;
              let priv =
                { pdata = Bytes.copy p.pdata; pdirty = true; pra = false;
                  pshared = None }
              in
              Hashtbl.replace v.v_pages i priv;
              v.v_dirty_pages <- v.v_dirty_pages + 1;
              Pcpu.add t.total_dirty 1
            end
            else if not p.pdirty then begin
              (* already private (defensive): still dirty it so the full
                 content reaches the fs before the binding is removed *)
              p.pdirty <- true;
              v.v_dirty_pages <- v.v_dirty_pages + 1;
              Pcpu.add t.total_dirty 1
            end
      done;
      writeback_vnode t v;
      (match t.ops.fsync ~ino:v.v_ino with
      | Error _ as e -> e
      | Ok () ->
          c.cas_cow v.v_ino;
          incr t "cas_cow_breaks";
          Ok ())

(* Break the share before any mutation of a CAS-bound file. Must run
   under the vnode's write lock (callers below hold it), which also
   serialises racing first-writers. *)
let maybe_cow t v : unit res =
  match t.cas with
  | Some c when c.cas_lookup v.v_ino <> None -> privatize t v c
  | _ -> Ok ()

(** Write [data] at [pos], extending the file as needed. *)
let write t v ~pos data : int res =
  let len = Bytes.length data in
  if pos < 0 then Error Errno.EINVAL
  else if pos + len > t.ops.max_file_size then Error Errno.EFBIG
  else
    let r =
      Sim.Sync.Rwlock.with_write v.v_rw (fun () ->
          match maybe_cow t v with
          | Error _ as e -> e
          | Ok () ->
          let rec go off =
            if off >= len then Ok len
            else begin
              let abs = pos + off in
              let index = abs / t.page_size in
              let page_off = abs mod t.page_size in
              let n = min (t.page_size - page_off) (len - off) in
              match page_for_write t v index with
              | Error _ as e -> e
              | Ok p ->
                  cpu t (Cost.copy_time ~bw:(cost t).Cost.memcpy_bw n);
                  Bytes.blit data off p.pdata page_off n;
                  if not p.pdirty then begin
                    p.pdirty <- true;
                    v.v_dirty_pages <- v.v_dirty_pages + 1;
                    Pcpu.add t.total_dirty 1
                  end;
                  go (off + n)
            end
          in
          let r = go 0 in
          (match r with
          | Ok _ -> if pos + len > v.v_size then v.v_size <- pos + len
          | Error _ -> ());
          r)
    in
    (match r with
    | Ok _ ->
        balance_dirty t v;
        notify_modify t v.v_ino
    | Error _ -> ());
    r

(** fsync: push this file's dirty pages into the fs, then ask the fs to
    make them durable. *)
let fsync t v : unit res =
  incr t "fsyncs";
  Machine.with_layer t.machine "vfs" @@ fun () ->
  Sim.Trace.with_span (tracer t) ~cat:"vfs" "vfs:fsync" (fun () ->
      let t0 = Machine.now t.machine in
      writeback_vnode t v;
      let r = t.ops.fsync ~ino:v.v_ino in
      Sim.Stats.Histogram.record
        (Machine.histogram t.machine "fsync_lat")
        (Int64.sub (Machine.now t.machine) t0);
      r)

let truncate t v size : unit res =
  if size < 0 then Error Errno.EINVAL
  else if size > t.ops.max_file_size then Error Errno.EFBIG
  else begin
    let r =
      Sim.Sync.Rwlock.with_write v.v_rw (fun () ->
        match maybe_cow t v with
        | Error _ as e -> e
        | Ok () ->
        (* Drop whole pages beyond the new size; zero the tail of the last
           partial page. *)
        let first_dead = (size + t.page_size - 1) / t.page_size in
        let dead =
          Hashtbl.fold
            (fun i p acc -> if i >= first_dead then (i, p) :: acc else acc)
            v.v_pages []
        in
        List.iter
          (fun (i, p) ->
            if p.pdirty then begin
              v.v_dirty_pages <- v.v_dirty_pages - 1;
              Pcpu.add t.total_dirty (-1)
            end;
            release_shared t p;
            Hashtbl.remove v.v_pages i;
            Pcpu.add t.total_pages (-1))
          dead;
        if size mod t.page_size <> 0 then begin
          let last = size / t.page_size in
          match Hashtbl.find_opt v.v_pages last with
          | Some p ->
              let off = size mod t.page_size in
              Bytes.fill p.pdata off (t.page_size - off) '\000'
          | None -> ()
        end;
        match t.ops.truncate ~ino:v.v_ino size with
        | Ok () ->
            v.v_size <- size;
            Ok ()
        | Error _ as e -> e)
    in
    (match r with Ok () -> notify_modify t v.v_ino | Error _ -> ());
    r
  end

(* Drop all cached pages of a vnode (unlink of a closed file, eviction). *)
let invalidate_pages t v =
  Hashtbl.iter
    (fun _ p ->
      if p.pdirty then begin
        v.v_dirty_pages <- v.v_dirty_pages - 1;
        Pcpu.add t.total_dirty (-1)
      end;
      release_shared t p)
    v.v_pages;
  Pcpu.add t.total_pages (-(Hashtbl.length v.v_pages));
  Hashtbl.reset v.v_pages

let drop_vnode t v =
  invalidate_pages t v;
  Hashtbl.remove t.vnodes v.v_ino;
  (* deletion context only (unlink / rename victim): a binding for a
     recycled inode number must not serve stale sealed content *)
  if v.v_unlinked then cas_unbind t v.v_ino

(** Full sync(2): all files, then the fs-wide sync. *)
let sync t : unit res =
  writeback_all t;
  t.ops.sync_fs ()

(** Flush everything, then drop every cached page and reset the per-file
    readahead state — `echo 3 > /proc/sys/vm/drop_caches`. Gives cold-read
    benchmarks a cold page cache without a remount. In-flight prefetches
    are waited out first so none re-populates the cache afterwards. *)
let drop_caches t : unit res =
  while t.ra_pending > 0 do
    Sim.Engine.sleep (Sim.Time.us 50)
  done;
  match sync t with
  | Error _ as e -> e
  | Ok () ->
      (* With CAS sharing a page may be unevictable: if an *open* vnode
         aliases the same shared entry, dropping this vnode's alias frees
         nothing — the bytes stay resident in the shared table. Keep such
         pages (Linux keeps pages it cannot free), evict everything else.
         The readahead/prefetch state is reset for every file regardless,
         and retained pages lose their readahead mark: the old reset
         assumed full eviction, and stale [pra] marks on surviving pages
         would credit the next read stream with hits it never earned. *)
      let held : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.iter
        (fun _ v ->
          if v.v_nopen > 0 then
            Hashtbl.iter
              (fun _ p ->
                match p.pshared with
                | Some h -> Hashtbl.replace held h ()
                | None -> ())
              v.v_pages)
        t.vnodes;
      Hashtbl.iter
        (fun _ v ->
          let doomed =
            Hashtbl.fold
              (fun i p acc ->
                match p.pshared with
                | Some h when Hashtbl.mem held h ->
                    p.pra <- false;
                    acc
                | _ -> (i, p) :: acc)
              v.v_pages []
          in
          List.iter
            (fun (i, p) ->
              if p.pdirty then begin
                (* sync above wrote everything back; defensive *)
                v.v_dirty_pages <- v.v_dirty_pages - 1;
                Pcpu.add t.total_dirty (-1)
              end;
              release_shared t p;
              Hashtbl.remove v.v_pages i;
              Pcpu.add t.total_pages (-1))
            doomed;
          v.v_ra_next <- 0;
          v.v_ra_window <- 0;
          v.v_ra_issued_to <- 0)
        t.vnodes;
      if !debug_accounting then check_accounting t;
      Ok ()
