(** Calibration constants for the simulated machine.

    All CPU-side and crossing-related costs live here so that the benchmark
    calibration (EXPERIMENTS.md) has a single point of truth. Values are
    order-of-magnitude figures for a 2019-class Xeon running Linux 4.15, the
    paper's testbed; the benchmark *shapes* (who wins, by what factor) come
    from the structure of the stacks, these constants set the absolute
    scale. *)

type t = {
  ncores : int;  (** CPU cores visible to the benchmark VM *)
  syscall : int64;  (** user->kernel->user crossing for one syscall *)
  vfs_op : int64;  (** generic VFS bookkeeping per operation *)
  dcache_hit : int64;  (** dentry cache lookup, per component *)
  page_lookup : int64;  (** page-cache radix lookup, per page *)
  memcpy_bw : float;  (** bytes/sec copy between user and page cache *)
  buffer_lookup : int64;  (** buffer-cache hash lookup *)
  dirent_scan : int64;  (** fs linear directory scan, per entry *)
  block_alloc : int64;  (** bitmap scan per allocation *)
  log_copy_per_block : int64;  (** memcpy of one 4 KB block into the log *)
  fuse_request : int64;  (** queue + wakeup + 2 crossings per FUSE req *)
  fuse_copy_bw : float;  (** bytes/sec copying request payloads to user *)
  odirect_op : int64;  (** extra per-block cost of user O_DIRECT I/O
                            (crossing + VFS + block layer), paper: 200-400ns *)
  odirect_fsync_per_gb : int64;
      (** cost of fsync()ing the whole disk file per GB of device size —
          the "no way to sync part of a file" penalty of the FUSE baseline *)
  upgrade_quiesce : int64;  (** bento online-upgrade freeze/thaw overhead *)
  server_request : int64;
      (** per-message overhead of the file-server wire: syscall pair plus
          loopback network-stack work on one side of the connection *)
  server_copy_bw : float;  (** bytes/sec copying server request payloads *)
}

(* Bump whenever the constants below (or the code paths that charge them)
   change in a way that shifts absolute numbers: bench-diff refuses to
   compare runs recorded under different model versions. *)
let model_version = "cost-2026.08b"

let default =
  {
    ncores = 8;
    syscall = 300L;
    vfs_op = 250L;
    dcache_hit = 120L;
    page_lookup = 180L;
    memcpy_bw = 11.0e9;
    buffer_lookup = 150L;
    dirent_scan = 25L;
    block_alloc = 400L;
    log_copy_per_block = 900L;
    fuse_request = 2_800L;
    fuse_copy_bw = 6.0e9;
    odirect_op = 320L;
    odirect_fsync_per_gb = 38_000L;
    upgrade_quiesce = 50_000L;
    server_request = 3_000L;
    server_copy_bw = 8.0e9;
  }

(** Time to copy [bytes] at [bw] bytes/sec. *)
let copy_time ~bw bytes = Sim.Time.of_bandwidth ~bytes ~bytes_per_sec:bw
