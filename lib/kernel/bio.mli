(** Asynchronous block-request layer: plug/unplug batching over the SSD's
    channel parallelism.

    Stage scattered block writes into a plugged queue; [unplug] sorts
    them, merges adjacent block numbers into contiguous device commands
    and dispatches the merged set concurrently (each command on its own
    device channel); [wait] is the wait-for-all barrier. Used by the log
    install phase, jbd2 checkpointing, buffer-cache scatter writeback and
    the writepages flusher — the scattered hot paths that otherwise
    serialize on one in-flight command. *)

type t
(** A plugged request queue bound to one device. Not thread-safe: one
    fiber plugs, stages and waits. *)

val plug : Device.Ssd.t -> t

val add : t -> block:int -> Bytes.t -> unit
(** Stage one block write. Nothing reaches the device until {!unplug}.
    Staging the same block twice keeps only the latest payload. The
    payload is copied when the device command completes, not at staging —
    do not mutate it before {!wait} returns. *)

val unplug : t -> unit
(** Sort + merge staged requests into maximal contiguous commands and
    submit them all without blocking. May be called repeatedly; each call
    dispatches what accumulated since the last. *)

val in_flight : t -> int
(** Commands submitted and not yet reaped by {!wait}. *)

val wait : t -> int
(** Implicit {!unplug}, then block until every submitted command
    completes. Returns how many device commands the batch took after
    merging. If any command failed, re-raises the first failure after all
    have settled. *)

val write_scatter : Device.Ssd.t -> (int * Bytes.t) list -> int
(** One-shot scatter write: plug, stage every pair, {!wait}. Duplicate
    blocks keep the latest payload. Returns the merged command count. *)

val read_scatter : Device.Ssd.t -> int list -> (int * Bytes.t) list * int
(** One-shot scatter read: merge the (distinct) block numbers into
    maximal contiguous read commands, dispatch them concurrently across
    the device's channels and wait for all. Returns the [(block, data)]
    pairs in ascending block order and the merged command count;
    re-raises the first command failure after all have settled. *)

val runs : (int * 'a) list -> (int * 'a list) list
(** The merge step by itself: sort [(block, payload)] pairs by block and
    group maximal runs of consecutive numbers into
    [(start_block, payloads_in_block_order)]. Input must not contain
    duplicate block numbers. Exposed for callers that batch through
    other write paths (buffer-cache runs, writepages run splitting). *)
