(** The simulated Linux VFS layer.

    A kernel file system registers an {!fs_ops} table of function pointers.
    The VFS owns the machinery the paper's stacks share: the per-file page
    cache, dirty accounting, writeback (with the [wb_batch] lever that
    distinguishes `writepage` from `writepages`), page reclaim, and the
    dentry cache. *)

type file_kind = Reg | Dir | Symlink

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_size : int;
  st_nlink : int;
}

type dirent = { d_name : string; d_ino : int; d_kind : file_kind }

type statfs = {
  f_blocks : int;
  f_bfree : int;
  f_files : int;
  f_ffree : int;
}

type 'e res = ('e, Errno.t) result

(** The function-pointer table a file system registers (function pointers,
    exactly as in Linux). [write_pages] receives a contiguous run of dirty
    pages — at most [wb_batch] of them per call, so [wb_batch = 1] is
    `writepage` and larger values are `writepages`. *)
type fs_ops = {
  fs_name : string;
  root_ino : int;
  lookup : dir:int -> string -> stat res;
  getattr : int -> stat res;
  create : dir:int -> string -> stat res;
  mkdir : dir:int -> string -> stat res;
  unlink : dir:int -> string -> unit res;
  rmdir : dir:int -> string -> unit res;
  rename : olddir:int -> oldname:string -> newdir:int -> newname:string -> unit res;
  link : ino:int -> dir:int -> string -> stat res;
  symlink : dir:int -> string -> target:string -> stat res;
  readlink : ino:int -> string res;
  readdir : int -> dirent list res;
  readdir_filter : int -> prog:string -> (dirent * stat) list res;
      (** Pushdown scan: run the registered {!Pushdown} filter program
          [prog] over the directory inside the fs layer — filter and
          per-entry attributes in one crossing instead of one per entry. *)
  bmap : ino:int -> fbn:int -> int res;
      (** FIBMAP: the device block backing file block [fbn] (0 = hole) —
          how clients learn device pointers for pushdown index blocks. *)
  readpage : ino:int -> index:int -> Bytes.t res;
  readahead : ino:int -> start:int -> count:int -> Bytes.t array res;
      (** Bulk read of [count] consecutive pages from page [start], used by
          the page-cache readahead machinery; pages beyond EOF come back
          zero-filled. *)
  write_pages : ino:int -> isize:int -> (int * Bytes.t) array -> unit res;
  truncate : ino:int -> int -> unit res;
  fsync : ino:int -> unit res;
  sync_fs : unit -> unit res;
  iopen : ino:int -> unit res;
  irelease : ino:int -> unit;
  statfs : unit -> statfs;
  wb_batch : int;
  max_file_size : int;
}

val profiled_ops : Machine.t -> string -> fs_ops -> fs_ops
(** Wrap every entry point of an ops table in a profiler layer frame (e.g.
    "fs") — how in-kernel file systems registered directly with the VFS
    attribute their time without per-operation probes. *)

(** In-core inode (vnode) with its page cache. Fields are exposed for the
    syscall layer, which maintains open counts and sizes. *)
type page = {
  pdata : Bytes.t;
  mutable pdirty : bool;
  mutable pra : bool;  (** inserted by readahead and not yet consumed *)
  mutable pshared : int64 option;
      (** content hash when [pdata] aliases the CAS shared-page table —
          the same [Bytes.t] appears in every vnode caching that content,
          so it must never be mutated in place (COW replaces the page). A
          shared page is clean by construction. *)
}

type vnode = {
  v_ino : int;
  mutable v_kind : file_kind;
  mutable v_size : int;
  v_pages : (int, page) Hashtbl.t;
  mutable v_dirty_pages : int;
  v_rw : Sim.Sync.Rwlock.t;
  v_wb : Sim.Sync.Mutex.t;
  mutable v_nopen : int;
  mutable v_unlinked : bool;
  mutable v_ra_next : int;
      (** readahead: page index one past the last sequential read *)
  mutable v_ra_window : int;  (** current readahead window (pages); 0 = off *)
  mutable v_ra_issued_to : int;
      (** end of the prefetch-issued region; the next chunk starts here *)
  v_ra_inflight : (int, unit) Hashtbl.t;
      (** page indexes currently being prefetched *)
}

type t
(** A mounted file system instance. *)

val mount :
  ?dirty_limit:int ->
  ?page_cap:int ->
  ?background:bool ->
  Machine.t ->
  fs_ops ->
  t
(** [dirty_limit]: pages of dirty data before writers are throttled into
    foreground writeback ([balance_dirty_pages]). [page_cap]: total cached
    pages before clean pages of closed files are reclaimed. [background]:
    start the periodic writeback flusher fiber (stop it by unmounting). *)

val unmount : t -> unit
(** Flush everything, run the fs-wide sync, stop the flusher. *)

val machine : t -> Machine.t
val ops : t -> fs_ops
val page_size : t -> int
val stats : t -> Sim.Stats.t

val vnode_of : t -> int -> kind:file_kind -> size:int -> vnode
(** Find-or-create the in-core inode. *)

val find_vnode : t -> int -> vnode option
val drop_vnode : t -> vnode -> unit
val invalidate_pages : t -> vnode -> unit

(** {1 Dentry cache} *)

val dcache_insert : t -> dir:int -> string -> int -> unit
val dcache_remove : t -> dir:int -> string -> unit

val lookup : t -> dir:int -> string -> stat res
(** dcache in front of the file system; attributes always come fresh from
    [getattr], so they cannot go stale. *)

(** {1 Generic file I/O through the page cache} *)

val read : t -> vnode -> pos:int -> len:int -> Bytes.t res
(** Short reads at EOF; holes read as zeroes. Sequential access ramps a
    per-file readahead window ({!fs_ops.readahead} prefetches it
    asynchronously); a seek collapses the window. The machine counters
    [readahead_issued]/[readahead_hit] expose the policy's behaviour. *)

val write : t -> vnode -> pos:int -> Bytes.t -> int res
(** Copy into the page cache, extend the size, dirty pages; may throttle
    into foreground writeback past the dirty limit. *)

val truncate : t -> vnode -> int -> unit res
val fsync : t -> vnode -> unit res

val writeback_vnode : t -> vnode -> unit
(** Push this file's dirty pages into the file system in [wb_batch]-sized
    contiguous runs. Distinct runs are dispatched as concurrent
    [write_pages] calls (bounded queue depth) and all are awaited before
    returning. *)

val writeback_all : t -> unit
val sync : t -> unit res

val drop_caches : t -> unit res
(** Flush everything, then drop every cached page and reset per-file
    readahead state (`echo 3 > drop_caches`) — cold page cache without a
    remount. CAS-shared pages also aliased by a still-open vnode are kept
    (evicting one alias frees nothing while the shared entry stays
    resident) but lose their readahead mark; readahead state is reset for
    every file regardless of how many pages survived. *)

val set_readahead : t -> bool -> unit
(** Enable/disable asynchronous readahead (on by default) — the ablation
    switch for the seqread-cold benchmark. *)

val set_modify_hook : t -> (int -> unit) option -> unit
(** Lease hook: register a callback invoked with the inode number after
    every successful data mutation ({!write}, {!truncate}). The file server
    uses it to bump its change attribute and break client leases when the
    file system is modified beneath it. The callback runs on the mutating
    fiber with no VFS locks held; it must not block. *)

(** {1 Content-addressable store hooks} *)

(** Callbacks a content-addressable store ({!module:Cas}) registers so the
    page cache can alias sealed read-only content across inodes instead of
    reading through the file system; every page-removal path gives the
    shared reference back. The record keeps [Vfs] free of a dependency on
    the store implementation. *)
type cas_ops = {
  cas_lookup : int -> int64 array option;
      (** per-page content hashes of a sealed file, by inode; [None] when
          the inode is not CAS-bound *)
  cas_acquire : int64 -> Bytes.t;
      (** shared page bytes for a hash, refcount raised by one; fills from
          the device on first use. The returned [Bytes.t] is shared — the
          caller must never mutate it. *)
  cas_release : int64 -> unit;  (** one alias dropped; 0 refs ⇒ reclaimable *)
  cas_refs : int64 -> int;  (** current refcount (0 when not resident) *)
  cas_cow : int -> unit;
      (** break the binding after the file's content has been privatised
          and flushed: removes it durably so post-crash readers see the
          private copy, never a mix *)
  cas_unbind : int -> unit;  (** unlink: drop the binding (durably) *)
  cas_debug_refs : unit -> (int64 * int) list;
      (** resident (hash, refcount) table, for the accounting oracle *)
}

val set_cas : t -> cas_ops option -> unit
(** Attach (or detach) a content-addressable store. With hooks attached,
    page faults on CAS-bound inodes alias the refcounted shared-page table
    (zero-copy across tenants, no device read when resident), the first
    write to a bound file privatises it (copy-on-write: fault all pages,
    copy, flush, then durably unbind), and readahead is disabled for bound
    files — their backing file-system blocks are sparse stubs. *)

val cas_hashes : t -> vnode -> int64 array option
(** The sealed per-page hash array for a bound vnode ([None] when unbound
    or no store is attached). *)

val cas_unbind : t -> int -> unit
(** Drop a CAS binding by inode number, if a store is attached — used by
    the syscall layer when a bound file is unlinked without ever having
    had a vnode. *)

(** {1 Exposed for tests} *)

val runs_of_indexes : batch:int -> int list -> int list list
(** Split sorted page indexes into contiguous runs capped at [batch]. *)

val cached_pages : t -> int
(** Total pages cached across all files (the memory-pressure counter). *)

val dirty_pages : t -> int
(** Total dirty pages across all files (the writeback-throttle counter). *)

val set_debug_accounting : bool -> unit
(** Debug builds: make writeback and the dirty throttle recompute the
    dirty/cached totals from the page tables and fail on any drift.
    Global; off by default (the check is O(cached pages)). *)

val check_accounting : t -> unit
(** One-shot version of the debug oracle: raises if any per-inode or
    global counter disagrees with the actual page tables. *)
