(** Calibration constants for the simulated machine — the single point of
    truth the benchmark calibration in EXPERIMENTS.md refers to. Values are
    order-of-magnitude figures for the paper's 2019-class testbed; the
    benchmark *shapes* come from the structure of the stacks, these set the
    absolute scale. *)

type t = {
  ncores : int;
  syscall : int64;
  vfs_op : int64;
  dcache_hit : int64;
  page_lookup : int64;
  memcpy_bw : float;
  buffer_lookup : int64;
  dirent_scan : int64;
  block_alloc : int64;
  log_copy_per_block : int64;
  fuse_request : int64;
  fuse_copy_bw : float;
  odirect_op : int64;
  odirect_fsync_per_gb : int64;
  upgrade_quiesce : int64;
  server_request : int64;
  server_copy_bw : float;
}

val model_version : string
(** Version tag of the calibration, embedded in [bench --json] metadata.
    Bumped when the constants (or charging code paths) change enough to
    shift absolute numbers, so bench-diff can refuse stale baselines. *)

val default : t

val copy_time : bw:float -> int -> int64
(** Time to copy a number of bytes at [bw] bytes/sec. *)
