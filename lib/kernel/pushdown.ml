(** Kernel-side pushdown programs. See the interface for the model; the
    implementation notes here are about execution context.

    A walk runs in its own fiber — the stand-in for bio completion
    context: the caller submits once and blocks on an ivar; the fiber
    awaits each block read and issues the next itself. Its time is
    attributed to the "bio" profiler layer, its reads are counted in
    [pushdown_resubmits] (not the caller's crossing counters), and flow
    events stitch the submit, the chase, and the completion into the
    request's causal DAG, exactly like the device's own completion
    fibers. *)

type prog =
  | Dir_filter of { contains : string }
  | Extent_walk of { fanout_bits : int; depth : int }
  | Kv_get of { fanout_bits : int; depth : int; root : int }

type entry = {
  e_name : string;
  e_client : string;
  e_prog : prog;
  e_budget : int;
  mutable e_invocations : int;
  mutable e_aborts : int;
}

type t = {
  machine : Machine.t;
  mutable entries : entry list;
  mutable backend : (int -> Bytes.t) option;
  mutable backend_label : string;
  resubmits : Sim.Stats.Counter.t;
  invocations : Sim.Stats.Counter.t;
  aborts : Sim.Stats.Counter.t;
}

type cap = { c_client : string; mutable c_revoked : bool; c_reg : t }

let default_budget = 4096

let kind_of = function
  | Dir_filter _ -> "dir_filter"
  | Extent_walk _ -> "extent_walk"
  | Kv_get _ -> "kv_get"

(* Per-machine registry, same idiom as {!Cas}: workloads and layers reach
   the registry through the machine they already hold. *)
let registries : (Machine.t * t) list ref = ref []

let table t =
  List.rev_map
    (fun e ->
      (e.e_name, e.e_client, kind_of e.e_prog, e.e_budget, e.e_invocations,
       e.e_aborts))
    t.entries

let registry machine =
  match List.find_opt (fun (m, _) -> m == machine) !registries with
  | Some (_, t) -> t
  | None ->
      let t =
        {
          machine;
          entries = [];
          backend = None;
          backend_label = "none";
          resubmits = Machine.counter machine "pushdown_resubmits";
          invocations = Machine.counter machine "pushdown_invocations";
          aborts = Machine.counter machine "pushdown_aborts";
        }
      in
      registries := (machine, t) :: !registries;
      Machine.register_inspector machine ~name:"pushdown" (fun () ->
          let open Util.Json in
          Obj
            [
              ("backend", String t.backend_label);
              ( "programs",
                List
                  (List.map
                     (fun (name, client, kind, budget, invs, aborts) ->
                       Obj
                         [
                           ("name", String name);
                           ("client", String client);
                           ("kind", String kind);
                           ("budget", Int budget);
                           ("invocations", Int invs);
                           ("aborts", Int aborts);
                         ])
                     (table t)) );
            ]);
      t

let grant t ~client = { c_client = client; c_revoked = false; c_reg = t }
let revoke cap = cap.c_revoked <- true

(* Registration-time validation — the stand-in for the BPF verifier: a
   program whose shape cannot terminate within its budget is rejected
   before it ever reaches a completion context. *)
let slots_per_block = 1024 (* 4096 bytes / 4-byte slots *)

let validate prog ~budget =
  if budget <= 0 then Error Errno.EINVAL
  else
    match prog with
    | Dir_filter { contains } ->
        if String.length contains = 0 then Error Errno.EINVAL else Ok ()
    | Extent_walk { fanout_bits; depth } | Kv_get { fanout_bits; depth; _ } ->
        if
          fanout_bits < 1
          || 1 lsl fanout_bits > slots_per_block
          || depth < 1 || depth > 16
        then Error Errno.EINVAL
        else Ok ()

let register t ~cap ~name ?(budget = default_budget) prog =
  if cap.c_revoked || not (cap.c_reg == t) then Error Errno.EPERM
  else
    match validate prog ~budget with
    | Error _ as e -> e
    | Ok () ->
        let e =
          {
            e_name = name;
            e_client = cap.c_client;
            e_prog = prog;
            e_budget = budget;
            e_invocations = 0;
            e_aborts = 0;
          }
        in
        t.entries <-
          e :: List.filter (fun e' -> e'.e_name <> name) t.entries;
        Ok ()

let find_entry t name = List.find_opt (fun e -> e.e_name = name) t.entries
let find t name = Option.map (fun e -> e.e_prog) (find_entry t name)

let set_backend t ~label fetch =
  t.backend <- Some fetch;
  t.backend_label <- label

(* ------------------------------------------------------------------ *)
(* Index-block layout.                                                 *)

let slot_of_key ~fanout_bits ~depth ~level key =
  let shift = fanout_bits * (depth - 1 - level) in
  Int64.to_int (Int64.shift_right_logical key shift)
  land ((1 lsl fanout_bits) - 1)

let put_slot block ~slot v = Util.Bytesio.set_u32 block (slot * 4) v
let get_slot block ~slot = Util.Bytesio.get_u32 block (slot * 4)

let matches name ~contains =
  let nl = String.length name and cl = String.length contains in
  let rec at i = i + cl <= nl && (String.sub name i cl = contains || at (i + 1)) in
  cl = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

exception Budget of entry

let step e steps =
  incr steps;
  if !steps > e.e_budget then raise (Budget e)

let abort t e =
  e.e_aborts <- e.e_aborts + 1;
  Sim.Stats.Counter.incr t.aborts;
  Sim.Flight.note
    ~sev:Sim.Flight.Warn
    (Machine.flight t.machine)
    ~kind:"pushdown"
    (Printf.sprintf "%s aborted: step budget %d exhausted" e.e_name e.e_budget);
  Error Errno.ELOOP

let filter_dir t ~name ~readdir ~getattr =
  match find_entry t name with
  | None -> Error Errno.ENOENT
  | Some ({ e_prog = Dir_filter { contains }; _ } as e) -> (
      e.e_invocations <- e.e_invocations + 1;
      Sim.Stats.Counter.incr t.invocations;
      Sim.Trace.with_span (Machine.tracer t.machine) ~cat:"fs"
        "pushdown:filter_dir"
      @@ fun () ->
      match readdir () with
      | Error _ as err -> err
      | Ok ents -> (
          let steps = ref 0 in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | (d : Vfs.dirent) :: rest ->
                step e steps;
                if matches d.Vfs.d_name ~contains then
                  match getattr d.Vfs.d_ino with
                  | Error _ as err -> err
                  | Ok st -> go ((d, st) :: acc) rest
                else go acc rest
          in
          try go [] ents with Budget _ -> abort t e))
  | Some _ -> Error Errno.EINVAL

(* The chase itself: runs inside the walker fiber under the "bio" layer.
   The first read is the one the caller submitted; every further read is
   a resubmission from completion context and counts only in
   [pushdown_resubmits]. *)
let chase t e ~fetch ~fanout_bits ~depth ~root ~key =
  let steps = ref 0 in
  let reads = ref 0 in
  let read blk =
    step e steps;
    if !reads > 0 then Sim.Stats.Counter.incr t.resubmits;
    incr reads;
    fetch blk
  in
  try
    let rec level blk l =
      if blk = 0 then Error Errno.ENOENT (* hole in the index *)
      else if l >= depth then Ok (Bytes.copy (read blk))
      else
        let b = read blk in
        level (get_slot b ~slot:(slot_of_key ~fanout_bits ~depth ~level:l key)) (l + 1)
    in
    level root 0
  with Budget _ -> abort t e

let run_walk t e ~fanout_bits ~depth ~root ~key =
  match t.backend with
  | None -> Error Errno.EIO (* no stack attached a below-syscall reader *)
  | Some fetch ->
      e.e_invocations <- e.e_invocations + 1;
      Sim.Stats.Counter.incr t.invocations;
      let machine = t.machine in
      let tr = Machine.tracer machine in
      let ivar = Sim.Sync.Ivar.create () in
      (* Same flow idiom as the device's completion fibers: an edge from
         the submitting fiber into the walker, and one back at completion,
         so the causal DAG shows submit -> chase -> completion. *)
      let submit_edge = Sim.Trace.flow_begin tr ~cat:"bio" "pushdown:walk" in
      Machine.spawn ~name:"pushdown-walk" machine (fun () ->
          Sim.Trace.flow_end tr ~cat:"bio" "pushdown:walk" submit_edge;
          let r =
            Machine.with_layer machine "bio" (fun () ->
                Sim.Trace.with_span tr ~cat:"bio" "pushdown:walk" (fun () ->
                    chase t e ~fetch ~fanout_bits ~depth ~root ~key))
          in
          let done_edge =
            Sim.Trace.flow_begin tr ~cat:"bio" "pushdown:walk:done"
          in
          Sim.Sync.Ivar.fill ivar (r, done_edge));
      let r, done_edge = Sim.Sync.Ivar.read ivar in
      Sim.Trace.flow_end tr ~cat:"bio" "pushdown:walk:done" done_edge;
      r

let walk t ~name ~root ~key =
  match find_entry t name with
  | None -> Error Errno.ENOENT
  | Some ({ e_prog = Extent_walk { fanout_bits; depth }; _ } as e) ->
      run_walk t e ~fanout_bits ~depth ~root ~key
  | Some _ -> Error Errno.EINVAL

let get t ~name ~key =
  match find_entry t name with
  | None -> Error Errno.ENOENT
  | Some ({ e_prog = Kv_get { fanout_bits; depth; root }; _ } as e) ->
      run_walk t e ~fanout_bits ~depth ~root ~key
  | Some _ -> Error Errno.EINVAL
