(** io_uring-style asynchronous I/O (§8.1 of the paper — future work,
    implemented here).

    Applications queue operations into a submission ring and reap
    completions from a completion ring. A batch of submissions costs one
    user/kernel crossing instead of one per operation, and kernel worker
    fibers (the io-wq analogue) execute the operations concurrently — the
    two mechanisms behind io_uring's advantage over synchronous syscalls.

    Operations execute against the same [Os] file table, so the interface
    composes with every mounted file system, including Bento mounts. *)

type op =
  | Read of { fd : int; pos : int; len : int }
  | Write of { fd : int; pos : int; data : Bytes.t }
  | Fsync of { fd : int }

type completion = {
  user_data : int;
  result : (Bytes.t, Errno.t) result;
      (** [Write]/[Fsync] complete with [Bytes.empty] on success *)
}

type sqe = { sq_user_data : int; sq_op : op }

type t = {
  os : Os.t;
  machine : Machine.t;
  depth : int;  (** worker concurrency, like io_uring's bounded io-wq *)
  sq : sqe Queue.t;
  cq : completion Queue.t;
  cq_wait : Sim.Sync.Condvar.t;
  lock : Sim.Sync.Mutex.t;
  mutable workers : int;
  mutable in_flight : int;
  mutable closed : bool;
}

let create ?(depth = 8) os =
  let machine = Vfs.machine (Os.vfs os) in
  {
    os;
    machine;
    depth;
    sq = Queue.create ();
    cq = Queue.create ();
    cq_wait = Sim.Sync.Condvar.create ();
    lock = Sim.Sync.Mutex.create ~name:"uring" ();
    workers = 0;
    in_flight = 0;
    closed = false;
  }

let execute t (s : sqe) : completion =
  let result =
    match s.sq_op with
    | Read { fd; pos; len } -> Os.pread t.os fd ~pos ~len
    | Write { fd; pos; data } -> (
        match Os.pwrite t.os fd ~pos data with
        | Ok _ -> Ok Bytes.empty
        | Error _ as e -> (match e with Error e -> Error e | _ -> assert false))
    | Fsync { fd } -> (
        match Os.fsync t.os fd with
        | Ok () -> Ok Bytes.empty
        | Error e -> Error e)
  in
  { user_data = s.sq_user_data; result }

(* An io-wq worker: drain the submission queue, then exit. Workers are
   spawned lazily up to [depth]. *)
let rec worker t () =
  Sim.Sync.Mutex.lock t.lock;
  match Queue.take_opt t.sq with
  | None ->
      t.workers <- t.workers - 1;
      Sim.Sync.Mutex.unlock t.lock
  | Some s ->
      Sim.Sync.Mutex.unlock t.lock;
      let c = execute t s in
      Sim.Sync.Mutex.lock t.lock;
      Queue.push c t.cq;
      t.in_flight <- t.in_flight - 1;
      Sim.Sync.Condvar.broadcast t.cq_wait;
      Sim.Sync.Mutex.unlock t.lock;
      worker t ()

(** Queue operations and kick the workers: the whole batch costs a single
    syscall crossing (io_uring_enter). *)
let submit t (entries : (int * op) list) =
  if t.closed then invalid_arg "Uring.submit: closed";
  if entries = [] then ()
  else begin
    (* one crossing for the whole batch, charged to the VFS layer *)
    Machine.with_layer t.machine "vfs" (fun () ->
        Machine.cpu_work t.machine (Machine.cost t.machine).Cost.syscall);
    Sim.Sync.Mutex.lock t.lock;
    List.iter
      (fun (user_data, op) ->
        Queue.push { sq_user_data = user_data; sq_op = op } t.sq;
        t.in_flight <- t.in_flight + 1)
      entries;
    let want = min t.depth (Queue.length t.sq) in
    let spawn_n = max 0 (want - t.workers) in
    t.workers <- t.workers + spawn_n;
    Sim.Sync.Mutex.unlock t.lock;
    for _ = 1 to spawn_n do
      Machine.spawn ~name:"io-wq" t.machine (worker t)
    done
  end

(** Reap up to [max_count] completions, blocking until at least [min_count]
    are available (io_uring_enter with min_complete). If nothing is in
    flight, whatever the completion ring already holds is returned — even
    below [min_count] — since blocking could never be satisfied. *)
let wait t ?(min_count = 1) ?(max_count = max_int) () : completion list =
  Machine.with_layer t.machine "vfs" (fun () ->
      Machine.cpu_work t.machine (Machine.cost t.machine).Cost.syscall);
  Sim.Sync.Mutex.lock t.lock;
  let rec await () =
    if Queue.length t.cq < min_count && t.in_flight > 0 then begin
      Sim.Sync.Condvar.wait t.cq_wait t.lock;
      await ()
    end
  in
  await ();
  let out = ref [] in
  let n = ref 0 in
  while !n < max_count && not (Queue.is_empty t.cq) do
    out := Queue.pop t.cq :: !out;
    incr n
  done;
  Sim.Sync.Mutex.unlock t.lock;
  List.rev !out

(** Submit a batch and wait for all of its completions (liburing's
    submit_and_wait). *)
let submit_and_wait t entries =
  let n = List.length entries in
  submit t entries;
  let rec gather acc need =
    if need = 0 then acc
    else begin
      let got = wait t ~min_count:1 ~max_count:need () in
      gather (acc @ got) (need - List.length got)
    end
  in
  gather [] n

let in_flight t = t.in_flight

let close t = t.closed <- true
