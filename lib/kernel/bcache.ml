(** Kernel buffer cache, following the Linux `sb_bread`/`brelse` protocol
    that BentoKS wraps (§4.5 of the paper) and that the C-VFS baseline
    calls directly.

    A [buf] is the in-kernel image of one disk block. [bread] returns the
    buffer with its sleeplock held and its reference count raised; the
    caller must [brelse] it (BentoKS turns this into a scoped wrapper so
    "buffer management has the same properties as memory management in
    Rust"). [bwrite] writes the buffer through to the device's volatile
    cache; durability requires a separate [flush] barrier.

    Unreferenced buffers sit on an intrusive doubly-linked free list in
    release order (head = least recently released), so eviction is O(1)
    instead of a full-table scan. Dirty victims are written back with the
    cache lock released — only the victim's own sleeplock pins it — so a
    slow eviction write no longer stalls every unrelated lookup. *)

type buf = {
  block : int;
  data : Bytes.t;
  lock : Sim.Sync.Mutex.t;  (** sleeplock: held between bread and brelse *)
  mutable valid : bool;  (** contents read from disk / written by owner *)
  mutable dirty : bool;
  mutable refcount : int;
  mutable lru_prev : buf option;  (** free-list links; set only while unreferenced *)
  mutable lru_next : buf option;
  mutable on_lru : bool;
}

type t = {
  machine : Machine.t;
  dev : Device.Ssd.t;
  tracer : Sim.Trace.t;
  capacity : int;
  table : (int, buf) Hashtbl.t;
  cache_lock : Sim.Sync.Mutex.t;
  mutable lru_head : buf option;  (** least recently released *)
  mutable lru_tail : buf option;  (** most recently released *)
  stats : Sim.Stats.t;
}

exception No_buffers

let create ?(capacity = 8192) machine =
  let stats = Sim.Stats.create () in
  (* Expose hits/misses/disk_reads/... in machine-wide counter snapshots
     (the source of the bench hit-ratio metric). *)
  Machine.register_stats machine ~prefix:"bcache" stats;
  {
    machine;
    dev = Machine.disk machine;
    tracer = Machine.tracer machine;
    capacity;
    table = Hashtbl.create (capacity * 2);
    cache_lock = Sim.Sync.Mutex.create ~name:"bcache" ();
    lru_head = None;
    lru_tail = None;
    stats;
  }

let stats t = t.stats
let block_size t = Device.Ssd.block_size t.dev
let incr t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.stats name)

let incr_by t name n =
  Sim.Stats.Counter.incr ~by:n (Sim.Stats.counter t.stats name)

(* All externally-called cache operations run under the "bcache" profiler
   frame; time spent below, in the device, lands in its own frames. *)
let layer t f = Machine.with_layer t.machine "bcache" f

(* ------------------------------------------------------------------ *)
(* Intrusive free list. All list operations run under [cache_lock]; a
   buffer is on the list iff its refcount is zero.                     *)

let lru_append t b =
  b.on_lru <- true;
  b.lru_prev <- t.lru_tail;
  b.lru_next <- None;
  (match t.lru_tail with
  | Some tl -> tl.lru_next <- Some b
  | None -> t.lru_head <- Some b);
  t.lru_tail <- Some b

let lru_remove t b =
  if b.on_lru then begin
    (match b.lru_prev with
    | Some p -> p.lru_next <- b.lru_next
    | None -> t.lru_head <- b.lru_next);
    (match b.lru_next with
    | Some n -> n.lru_prev <- b.lru_prev
    | None -> t.lru_tail <- b.lru_prev);
    b.lru_prev <- None;
    b.lru_next <- None;
    b.on_lru <- false
  end

let ref_inc t b =
  if b.refcount = 0 then lru_remove t b;
  b.refcount <- b.refcount + 1

let ref_dec t b =
  b.refcount <- b.refcount - 1;
  if b.refcount = 0 then lru_append t b

(* Evict one unreferenced buffer, least recently released first. Called
   with [cache_lock] held. A clean victim unhooks in O(1); a dirty victim
   is written back with the cache lock *released* — the victim is pinned
   by a temporary reference and its own sleeplock meanwhile — so other
   lookups proceed during the I/O. If someone starts using the victim
   while it is being written back, it is left cached and another victim
   is taken. *)
let rec evict_one t =
  match t.lru_head with
  | None -> raise No_buffers
  | Some b ->
      lru_remove t b;
      if not b.dirty then begin
        Hashtbl.remove t.table b.block;
        Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:evict";
        incr t "evictions"
      end
      else begin
        b.refcount <- 1;
        Sim.Sync.Mutex.unlock t.cache_lock;
        Sim.Sync.Mutex.lock b.lock;
        if b.dirty then begin
          Device.Ssd.write t.dev b.block b.data;
          b.dirty <- false;
          incr t "writeback_evictions"
        end;
        Sim.Sync.Mutex.unlock b.lock;
        Sim.Sync.Mutex.lock t.cache_lock;
        b.refcount <- b.refcount - 1;
        if b.refcount = 0 then begin
          Hashtbl.remove t.table b.block;
          Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:evict";
          incr t "evictions"
        end
        else
          (* Raced with a new user: the block is hot again. *)
          evict_one t
      end

(* Find-or-create the buffer for [block]; returns it with refcount raised
   but NOT locked and possibly not valid. Eviction may release and
   re-acquire [cache_lock], so the lookup restarts afterwards. *)
let getbuf t block =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      Machine.cpu_work t.machine (Machine.cost t.machine).Cost.buffer_lookup;
      let rec find () =
        match Hashtbl.find_opt t.table block with
        | Some b ->
            incr t "hits";
            Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:hit";
            ref_inc t b;
            b
        | None ->
            if Hashtbl.length t.table >= t.capacity then begin
              evict_one t;
              find ()
            end
            else begin
              incr t "misses";
              Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:miss";
              let b =
                {
                  block;
                  data = Bytes.make (block_size t) '\000';
                  lock = Sim.Sync.Mutex.create ~name:"buf" ();
                  valid = false;
                  dirty = false;
                  refcount = 1;
                  lru_prev = None;
                  lru_next = None;
                  on_lru = false;
                }
              in
              Hashtbl.add t.table block b;
              b
            end
      in
      find ())

(** Return a locked buffer containing the current contents of [block],
    reading from the device on a miss (xv6 [bread], Linux [sb_bread]). *)
let bread t block =
  layer t (fun () ->
      let b = getbuf t block in
      Sim.Sync.Mutex.lock b.lock;
      if not b.valid then begin
        let data = Device.Ssd.read t.dev block in
        Bytes.blit data 0 b.data 0 (Bytes.length data);
        b.valid <- true;
        incr t "disk_reads"
      end;
      b)

(** Batched [bread]: find-or-create every block's buffer, then fetch all
    the invalid ones in one pass through the bio layer — adjacent blocks
    merge into contiguous read commands and distinct runs go out
    concurrently across the device's channels, instead of one serial
    single-block read per buffer. Buffers are locked in ascending block
    order (one global order, so concurrent batched reads cannot
    deadlock) and returned in input order, each held exactly as by
    [bread]. Blocks must be distinct. *)
let bread_scatter t blocks =
  layer t (fun () ->
      let sorted = List.sort_uniq compare blocks in
      if List.length sorted <> List.length blocks then
        invalid_arg "Bcache.bread_scatter: duplicate blocks";
      let bufs =
        List.map
          (fun blk ->
            let b = getbuf t blk in
            Sim.Sync.Mutex.lock b.lock;
            b)
          sorted
      in
      let missing = List.filter (fun b -> not b.valid) bufs in
      (if missing <> [] then
         match Bio.read_scatter t.dev (List.map (fun b -> b.block) missing) with
         | pairs, cmds ->
             List.iter2
               (fun b (blk, data) ->
                 assert (b.block = blk);
                 Bytes.blit data 0 b.data 0 (Bytes.length data);
                 b.valid <- true)
               missing pairs;
             incr_by t "disk_reads" cmds
         | exception e ->
             (* Release everything we hold before propagating. *)
             List.iter
               (fun b ->
                 Sim.Sync.Mutex.unlock b.lock;
                 Sim.Sync.Mutex.lock t.cache_lock;
                 ref_dec t b;
                 Sim.Sync.Mutex.unlock t.cache_lock)
               bufs;
             raise e);
      let by_block = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace by_block b.block b) bufs;
      List.map (fun blk -> Hashtbl.find by_block blk) blocks)

(** Like [bread] but without reading the device: for blocks the caller will
    fully overwrite (Linux [getblk] + wait-free path). *)
let getblk t block =
  layer t (fun () ->
      let b = getbuf t block in
      Sim.Sync.Mutex.lock b.lock;
      if not b.valid then begin
        Bytes.fill b.data 0 (Bytes.length b.data) '\000';
        b.valid <- true
      end;
      b)

(** Write the buffer through to the device (volatile cache). The buffer
    must be held (locked). *)
let bwrite t b =
  if not (Sim.Sync.Mutex.locked b.lock) then
    invalid_arg "Bcache.bwrite: buffer not locked";
  layer t (fun () ->
      Device.Ssd.write t.dev b.block b.data;
      b.dirty <- false;
      incr t "disk_writes")

(** Write a set of held buffers with maximum parallelism: sort and merge
    adjacent block numbers into contiguous commands and dispatch the
    merged runs concurrently across the device's channels (bio
    plug/unplug), then wait for every completion. *)
let bwrite_scatter t bufs =
  match bufs with
  | [] -> ()
  | _ ->
      List.iter
        (fun b ->
          if not (Sim.Sync.Mutex.locked b.lock) then
            invalid_arg "Bcache.bwrite_scatter: buffer not locked")
        bufs;
      layer t (fun () ->
          let cmds =
            Bio.write_scatter t.dev (List.map (fun b -> (b.block, b.data)) bufs)
          in
          List.iter (fun b -> b.dirty <- false) bufs;
          incr_by t "disk_writes" cmds)

(** Write several held buffers as one contiguous device command when their
    block numbers are consecutive (sorted by block); otherwise fall back
    to {!bwrite_scatter}, which splits the set into maximal contiguous
    runs and dispatches them concurrently. *)
let bwrite_contig t bufs =
  match bufs with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun b ->
          if not (Sim.Sync.Mutex.locked b.lock) then
            invalid_arg "Bcache.bwrite_contig: buffer not locked")
        bufs;
      let arr = Array.of_list bufs in
      let contiguous =
        let ok = ref true in
        Array.iteri
          (fun i b -> if b.block <> first.block + i then ok := false)
          arr;
        !ok
      in
      if contiguous then
        layer t (fun () ->
            Device.Ssd.write_contig t.dev ~start:first.block
              (Array.map (fun b -> b.data) arr);
            Array.iter (fun b -> b.dirty <- false) arr;
            incr t "disk_writes")
      else bwrite_scatter t bufs

(** Mark dirty without writing; the owner (e.g. the log) will write later. *)
let mark_dirty b = b.dirty <- true

(** Release: unlock and drop the reference (xv6 [brelse]). *)
let brelse t b =
  if not (Sim.Sync.Mutex.locked b.lock) then
    invalid_arg "Bcache.brelse: buffer not locked";
  Sim.Sync.Mutex.unlock b.lock;
  Sim.Sync.Mutex.lock t.cache_lock;
  if b.refcount <= 0 then begin
    Sim.Sync.Mutex.unlock t.cache_lock;
    invalid_arg "Bcache.brelse: refcount underflow"
  end;
  ref_dec t b;
  Sim.Sync.Mutex.unlock t.cache_lock

(** Raise the refcount of a held buffer (xv6 [bpin], used by the log to keep
    blocks in cache until the transaction commits). *)
let bpin t b =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () -> ref_inc t b)

let bunpin t b =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      if b.refcount <= 0 then invalid_arg "Bcache.bunpin";
      ref_dec t b)

(** Drop a pin reference located by block number (jbd2 checkpointing, which
    holds data copies rather than buffers). *)
let bunpin_block t block =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      match Hashtbl.find_opt t.table block with
      | Some b ->
          if b.refcount <= 0 then invalid_arg "Bcache.bunpin_block";
          ref_dec t b
      | None -> invalid_arg "Bcache.bunpin_block: not cached")

(** Write data for [block] straight to the device without disturbing the
    cached buffer — used by checkpointing to install a *committed* version
    while the cache may already hold newer, uncommitted contents. *)
let raw_write t block data =
  layer t (fun () ->
      Device.Ssd.write t.dev block data;
      incr t "raw_writes")

(** Scatter version of {!raw_write}: install many committed (block, data)
    pairs at once, merged into contiguous commands and dispatched
    concurrently through the bio layer. *)
let raw_write_scatter t pairs =
  match pairs with
  | [] -> ()
  | _ ->
      layer t (fun () ->
          ignore (Bio.write_scatter t.dev pairs);
          incr_by t "raw_writes" (List.length pairs))

(** Durability barrier on the underlying device. *)
let flush t =
  layer t (fun () ->
      Device.Ssd.flush t.dev;
      incr t "flushes")

let cached_blocks t = Hashtbl.length t.table

(* Invariant checks used by the test suite. *)
let check_invariants t =
  Hashtbl.iter
    (fun block b ->
      if b.block <> block then failwith "bcache: key/block mismatch";
      if b.refcount < 0 then failwith "bcache: negative refcount";
      if b.refcount = 0 && not b.on_lru then
        failwith "bcache: unreferenced buffer off the free list";
      if b.refcount > 0 && b.on_lru then
        failwith "bcache: referenced buffer on the free list")
    t.table;
  if Hashtbl.length t.table > t.capacity then failwith "bcache: over capacity";
  (* Walk the free list and check link consistency both ways. *)
  let same a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | _ -> false
  in
  let count = ref 0 in
  let rec walk prev = function
    | None ->
        if not (same t.lru_tail prev) then failwith "bcache: lru tail mismatch"
    | Some b ->
        Stdlib.incr count;
        if not b.on_lru then failwith "bcache: off-list buffer linked";
        if b.refcount <> 0 then failwith "bcache: referenced buffer on lru";
        (match Hashtbl.find_opt t.table b.block with
        | Some b' when b' == b -> ()
        | _ -> failwith "bcache: lru node not in table");
        if not (same b.lru_prev prev) then
          failwith "bcache: lru prev link broken";
        if !count > Hashtbl.length t.table then
          failwith "bcache: lru list cycle";
        walk (Some b) b.lru_next
  in
  walk None t.lru_head;
  let unref =
    Hashtbl.fold (fun _ b n -> if b.refcount = 0 then n + 1 else n) t.table 0
  in
  if unref <> !count then failwith "bcache: lru length mismatch"
