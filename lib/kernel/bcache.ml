(** Kernel buffer cache, following the Linux `sb_bread`/`brelse` protocol
    that BentoKS wraps (§4.5 of the paper) and that the C-VFS baseline
    calls directly.

    A [buf] is the in-kernel image of one disk block. [bread] returns the
    buffer with its sleeplock held and its reference count raised; the
    caller must [brelse] it (BentoKS turns this into a scoped wrapper so
    "buffer management has the same properties as memory management in
    Rust"). [bwrite] writes the buffer through to the device's volatile
    cache; durability requires a separate [flush] barrier. *)

type buf = {
  block : int;
  data : Bytes.t;
  lock : Sim.Sync.Mutex.t;  (** sleeplock: held between bread and brelse *)
  mutable valid : bool;  (** contents read from disk / written by owner *)
  mutable dirty : bool;
  mutable refcount : int;
  mutable lru_tick : int;  (** last-release time for LRU eviction *)
}

type t = {
  machine : Machine.t;
  dev : Device.Ssd.t;
  tracer : Sim.Trace.t;
  capacity : int;
  table : (int, buf) Hashtbl.t;
  cache_lock : Sim.Sync.Mutex.t;
  mutable tick : int;
  stats : Sim.Stats.t;
}

exception No_buffers

let create ?(capacity = 8192) machine =
  let stats = Sim.Stats.create () in
  (* Expose hits/misses/disk_reads/... in machine-wide counter snapshots
     (the source of the bench hit-ratio metric). *)
  Machine.register_stats machine ~prefix:"bcache" stats;
  {
    machine;
    dev = Machine.disk machine;
    tracer = Machine.tracer machine;
    capacity;
    table = Hashtbl.create (capacity * 2);
    cache_lock = Sim.Sync.Mutex.create ~name:"bcache" ();
    tick = 0;
    stats;
  }

let stats t = t.stats
let block_size t = Device.Ssd.block_size t.dev
let incr t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.stats name)

(* All externally-called cache operations run under the "bcache" profiler
   frame; time spent below, in the device, lands in its own frames. *)
let layer t f = Machine.with_layer t.machine "bcache" f

(* Evict one unreferenced clean buffer, oldest first. Dirty unreferenced
   buffers are written back then reused. Called with [cache_lock] held. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ b ->
      if b.refcount = 0 then
        match !victim with
        | Some v when v.lru_tick <= b.lru_tick -> ()
        | _ -> victim := Some b)
    t.table;
  match !victim with
  | None -> raise No_buffers
  | Some b ->
      if b.dirty then begin
        (* Write back before reuse; still under the cache lock, which is
           coarse but matches xv6's single bcache lock behaviour. *)
        Device.Ssd.write t.dev b.block b.data;
        b.dirty <- false;
        incr t "writeback_evictions"
      end;
      Hashtbl.remove t.table b.block;
      Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:evict";
      incr t "evictions"

(* Find-or-create the buffer for [block]; returns it with refcount raised
   but NOT locked and possibly not valid. *)
let getbuf t block =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      Machine.cpu_work t.machine (Machine.cost t.machine).Cost.buffer_lookup;
      let b =
        match Hashtbl.find_opt t.table block with
        | Some b ->
            incr t "hits";
            Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:hit";
            b
        | None ->
            incr t "misses";
            Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:miss";
            if Hashtbl.length t.table >= t.capacity then evict_one t;
            let b =
              {
                block;
                data = Bytes.make (block_size t) '\000';
                lock = Sim.Sync.Mutex.create ~name:"buf" ();
                valid = false;
                dirty = false;
                refcount = 0;
                lru_tick = 0;
              }
            in
            Hashtbl.add t.table block b;
            b
      in
      b.refcount <- b.refcount + 1;
      b)

(** Return a locked buffer containing the current contents of [block],
    reading from the device on a miss (xv6 [bread], Linux [sb_bread]). *)
let bread t block =
  layer t (fun () ->
      let b = getbuf t block in
      Sim.Sync.Mutex.lock b.lock;
      if not b.valid then begin
        let data = Device.Ssd.read t.dev block in
        Bytes.blit data 0 b.data 0 (Bytes.length data);
        b.valid <- true;
        incr t "disk_reads"
      end;
      b)

(** Like [bread] but without reading the device: for blocks the caller will
    fully overwrite (Linux [getblk] + wait-free path). *)
let getblk t block =
  layer t (fun () ->
      let b = getbuf t block in
      Sim.Sync.Mutex.lock b.lock;
      if not b.valid then begin
        Bytes.fill b.data 0 (Bytes.length b.data) '\000';
        b.valid <- true
      end;
      b)

(** Write the buffer through to the device (volatile cache). The buffer
    must be held (locked). *)
let bwrite t b =
  if not (Sim.Sync.Mutex.locked b.lock) then
    invalid_arg "Bcache.bwrite: buffer not locked";
  layer t (fun () ->
      Device.Ssd.write t.dev b.block b.data;
      b.dirty <- false;
      incr t "disk_writes")

(** Write several held buffers as one contiguous device command when their
    block numbers are consecutive; used by log installation and by the
    writepages path. Buffers must be sorted by block and locked. *)
let bwrite_contig t bufs =
  match bufs with
  | [] -> ()
  | first :: _ ->
      Array.of_list bufs
      |> fun arr ->
      let contiguous =
        Array.for_all
          (fun b -> Sim.Sync.Mutex.locked b.lock)
          arr
        && Array.length arr > 0
        &&
        let ok = ref true in
        Array.iteri
          (fun i b -> if b.block <> first.block + i then ok := false)
          arr;
        !ok
      in
      if contiguous then
        layer t (fun () ->
            Device.Ssd.write_contig t.dev ~start:first.block
              (Array.map (fun b -> b.data) arr);
            Array.iter (fun b -> b.dirty <- false) arr;
            incr t "disk_writes")
      else List.iter (fun b -> bwrite t b) bufs

(** Mark dirty without writing; the owner (e.g. the log) will write later. *)
let mark_dirty b = b.dirty <- true

(** Release: unlock and drop the reference (xv6 [brelse]). *)
let brelse t b =
  if not (Sim.Sync.Mutex.locked b.lock) then
    invalid_arg "Bcache.brelse: buffer not locked";
  Sim.Sync.Mutex.unlock b.lock;
  Sim.Sync.Mutex.lock t.cache_lock;
  if b.refcount <= 0 then begin
    Sim.Sync.Mutex.unlock t.cache_lock;
    invalid_arg "Bcache.brelse: refcount underflow"
  end;
  b.refcount <- b.refcount - 1;
  t.tick <- t.tick + 1;
  b.lru_tick <- t.tick;
  Sim.Sync.Mutex.unlock t.cache_lock

(** Raise the refcount of a held buffer (xv6 [bpin], used by the log to keep
    blocks in cache until the transaction commits). *)
let bpin t b =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      b.refcount <- b.refcount + 1)

let bunpin t b =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      if b.refcount <= 0 then invalid_arg "Bcache.bunpin";
      b.refcount <- b.refcount - 1)

(** Drop a pin reference located by block number (jbd2 checkpointing, which
    holds data copies rather than buffers). *)
let bunpin_block t block =
  Sim.Sync.Mutex.with_lock t.cache_lock (fun () ->
      match Hashtbl.find_opt t.table block with
      | Some b ->
          if b.refcount <= 0 then invalid_arg "Bcache.bunpin_block";
          b.refcount <- b.refcount - 1
      | None -> invalid_arg "Bcache.bunpin_block: not cached")

(** Write data for [block] straight to the device without disturbing the
    cached buffer — used by checkpointing to install a *committed* version
    while the cache may already hold newer, uncommitted contents. *)
let raw_write t block data =
  layer t (fun () ->
      Device.Ssd.write t.dev block data;
      incr t "raw_writes")

(** Durability barrier on the underlying device. *)
let flush t =
  layer t (fun () ->
      Device.Ssd.flush t.dev;
      incr t "flushes")

let cached_blocks t = Hashtbl.length t.table

(* Invariant checks used by the test suite. *)
let check_invariants t =
  Hashtbl.iter
    (fun block b ->
      if b.block <> block then failwith "bcache: key/block mismatch";
      if b.refcount < 0 then failwith "bcache: negative refcount")
    t.table;
  if Hashtbl.length t.table > t.capacity then failwith "bcache: over capacity"
