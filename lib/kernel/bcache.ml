(** Kernel buffer cache, following the Linux `sb_bread`/`brelse` protocol
    that BentoKS wraps (§4.5 of the paper) and that the C-VFS baseline
    calls directly.

    A [buf] is the in-kernel image of one disk block. [bread] returns the
    buffer with its sleeplock held and its reference count raised; the
    caller must [brelse] it (BentoKS turns this into a scoped wrapper so
    "buffer management has the same properties as memory management in
    Rust"). [bwrite] writes the buffer through to the device's volatile
    cache; durability requires a separate [flush] barrier.

    The cache is sharded by block number: each shard has its own hash
    table, intrusive LRU free list, lock, and statistics, so concurrent
    lookups of different blocks do not serialise behind one cache lock —
    the many-core behaviour the paper's Fig. 2 scaling columns measure.
    Within a shard, unreferenced buffers sit on the free list in release
    order (head = least recently released), so eviction is O(1). Dirty
    victims are written back with the shard lock released — only the
    victim's own sleeplock and a temporary reference pin it — so a slow
    eviction write does not stall unrelated lookups even within the
    shard.

    The races the sharding must not reintroduce: [getbuf] raises the
    refcount *before* the shard lock is dropped, so a buffer handed to
    [bread] can never be evicted (and its slot recycled for a different
    block) between lookup and sleeplock acquisition — [bread] asserts
    this. Small caches collapse to a single shard, preserving exact
    whole-cache LRU order where tests depend on it. *)

type buf = {
  block : int;
  data : Bytes.t;
  lock : Sim.Sync.Mutex.t;  (** sleeplock: held between bread and brelse *)
  mutable valid : bool;  (** contents read from disk / written by owner *)
  mutable dirty : bool;
  mutable refcount : int;
  mutable lru_prev : buf option;  (** free-list links; set only while unreferenced *)
  mutable lru_next : buf option;
  mutable on_lru : bool;
}

(* One shard: hash + LRU + lock + counters, all private to the shard so
   the hot path touches no shared mutable state. Counters merge on read. *)
type shard = {
  sid : int;
  cap : int;  (** this shard's slice of the total capacity *)
  table : (int, buf) Hashtbl.t;
  slock : Sim.Sync.Mutex.t;
  mutable lru_head : buf option;  (** least recently released *)
  mutable lru_tail : buf option;  (** most recently released *)
  sstats : Sim.Stats.t;
}

type t = {
  machine : Machine.t;
  dev : Device.Ssd.t;
  tracer : Sim.Trace.t;
  capacity : int;
  nshards : int;
  shards : shard array;
  gstats : Sim.Stats.t;  (** whole-cache ops: flushes, raw writes *)
  merged : Sim.Stats.t;  (** refreshed snapshot returned by {!stats} *)
}

exception No_buffers

(* Shard count scales with capacity but collapses to one for small
   caches: tests that assert exact whole-cache LRU eviction order use
   capacities of a handful of blocks, and a 4-block cache split 16 ways
   would be all remainder. 64 blocks per shard keeps eviction local. *)
let default_shards capacity = min 16 (max 1 (capacity / 64))

let create ?(capacity = 8192) ?shards machine =
  if capacity < 1 then invalid_arg "Bcache.create: capacity";
  let nshards =
    max 1 (min capacity (Option.value shards ~default:(default_shards capacity)))
  in
  let base = capacity / nshards and rem = capacity mod nshards in
  let mk sid =
    let sstats = Sim.Stats.create () in
    (* Every shard registers under the same prefix: machine-wide counter
       snapshots (the source of the bench hit-ratio metric) sum duplicate
       names, so "bcache.hits" is automatically the whole-cache total. *)
    Machine.register_stats machine ~prefix:"bcache" sstats;
    {
      sid;
      cap = (base + if sid < rem then 1 else 0);
      table = Hashtbl.create (2 * (base + 1));
      slock = Sim.Sync.Mutex.create ~name:"bcache" ();
      lru_head = None;
      lru_tail = None;
      sstats;
    }
  in
  let gstats = Sim.Stats.create () in
  Machine.register_stats machine ~prefix:"bcache" gstats;
  let t =
    {
      machine;
      dev = Machine.disk machine;
      tracer = Machine.tracer machine;
      capacity;
      nshards;
      shards = Array.init nshards mk;
      gstats;
      merged = Sim.Stats.create ();
    }
  in
  (* Live residency probe: how full (and how dirty) each shard is right
     now — the view `bento_cli inspect` dumps. *)
  Machine.register_inspector machine ~name:"bcache" (fun () ->
      let open Util.Json in
      let shard s =
        let dirty = ref 0 in
        Hashtbl.iter (fun _ b -> if b.dirty then incr dirty) s.table;
        Obj
          [
            ("cap", Int s.cap);
            ("resident", Int (Hashtbl.length s.table));
            ("dirty", Int !dirty);
          ]
      in
      Obj
        [
          ("capacity", Int t.capacity);
          ("shards", List (Array.to_list (Array.map shard t.shards)));
        ]);
  t

let shard_of t block = t.shards.(block mod t.nshards)
let block_size t = Device.Ssd.block_size t.dev
let incr_s s name = Sim.Stats.Counter.incr (Sim.Stats.counter s.sstats name)

let incr_by_s s name n =
  Sim.Stats.Counter.incr ~by:n (Sim.Stats.counter s.sstats name)

let incr_g t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.gstats name)

(** Whole-cache statistics: the per-shard counters summed by name into a
    stable registry, refreshed on every call. *)
let stats t =
  let totals : (string, int64) Hashtbl.t = Hashtbl.create 32 in
  let accum st =
    Sim.Stats.iter_counters st (fun name c ->
        let prev = Option.value ~default:0L (Hashtbl.find_opt totals name) in
        Hashtbl.replace totals name (Int64.add prev (Sim.Stats.Counter.get c)))
  in
  accum t.gstats;
  Array.iter (fun s -> accum s.sstats) t.shards;
  Hashtbl.iter
    (fun name total ->
      let c = Sim.Stats.counter t.merged name in
      Sim.Stats.Counter.reset c;
      Sim.Stats.Counter.add64 c total)
    totals;
  t.merged

(* All externally-called cache operations run under the "bcache" profiler
   frame; time spent below, in the device, lands in its own frames. *)
let layer t f = Machine.with_layer t.machine "bcache" f

(* ------------------------------------------------------------------ *)
(* Intrusive free list. All list operations run under the shard lock; a
   buffer is on its shard's list iff its refcount is zero.             *)

let lru_append s b =
  b.on_lru <- true;
  b.lru_prev <- s.lru_tail;
  b.lru_next <- None;
  (match s.lru_tail with
  | Some tl -> tl.lru_next <- Some b
  | None -> s.lru_head <- Some b);
  s.lru_tail <- Some b

let lru_remove s b =
  if b.on_lru then begin
    (match b.lru_prev with
    | Some p -> p.lru_next <- b.lru_next
    | None -> s.lru_head <- b.lru_next);
    (match b.lru_next with
    | Some n -> n.lru_prev <- b.lru_prev
    | None -> s.lru_tail <- b.lru_prev);
    b.lru_prev <- None;
    b.lru_next <- None;
    b.on_lru <- false
  end

let ref_inc s b =
  if b.refcount = 0 then lru_remove s b;
  b.refcount <- b.refcount + 1

let ref_dec s b =
  b.refcount <- b.refcount - 1;
  if b.refcount = 0 then lru_append s b

(* Evict one unreferenced buffer from the shard, least recently released
   first. Called with the shard lock held. A clean victim unhooks in
   O(1); a dirty victim is written back with the shard lock *released* —
   the victim is pinned by a temporary reference and its own sleeplock
   meanwhile — so other lookups proceed during the I/O. If someone starts
   using the victim while it is being written back, it is left cached and
   another victim is taken. *)
let rec evict_one t s =
  match s.lru_head with
  | None -> raise No_buffers
  | Some b ->
      lru_remove s b;
      if not b.dirty then begin
        Hashtbl.remove s.table b.block;
        Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:evict";
        incr_s s "evictions"
      end
      else begin
        b.refcount <- 1;
        Sim.Sync.Mutex.unlock s.slock;
        Sim.Sync.Mutex.lock b.lock;
        if b.dirty then begin
          Device.Ssd.write t.dev b.block b.data;
          b.dirty <- false;
          incr_s s "writeback_evictions"
        end;
        Sim.Sync.Mutex.unlock b.lock;
        Sim.Sync.Mutex.lock s.slock;
        b.refcount <- b.refcount - 1;
        if b.refcount = 0 then begin
          Hashtbl.remove s.table b.block;
          Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:evict";
          incr_s s "evictions"
        end
        else
          (* Raced with a new user: the block is hot again. *)
          evict_one t s
      end

(* Find-or-create the buffer for [block]; returns it with refcount raised
   but NOT locked and possibly not valid. The raised refcount is what
   makes the handoff to [bread] safe: eviction skips referenced buffers,
   so the buf cannot be recycled between here and the caller taking its
   sleeplock. Eviction may release and re-acquire the shard lock, so the
   lookup restarts afterwards. *)
let getbuf t block =
  let s = shard_of t block in
  Sim.Sync.Mutex.with_lock s.slock (fun () ->
      Machine.cpu_work t.machine (Machine.cost t.machine).Cost.buffer_lookup;
      let rec find () =
        match Hashtbl.find_opt s.table block with
        | Some b ->
            incr_s s "hits";
            Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:hit";
            ref_inc s b;
            b
        | None ->
            if Hashtbl.length s.table >= s.cap then begin
              evict_one t s;
              find ()
            end
            else begin
              incr_s s "misses";
              Sim.Trace.instant t.tracer ~cat:"bcache" "bcache:miss";
              let b =
                {
                  block;
                  data = Bytes.make (block_size t) '\000';
                  lock = Sim.Sync.Mutex.create ~name:"buf" ();
                  valid = false;
                  dirty = false;
                  refcount = 1;
                  lru_prev = None;
                  lru_next = None;
                  on_lru = false;
                }
              in
              Hashtbl.add s.table block b;
              b
            end
      in
      find ())

(** Return a locked buffer containing the current contents of [block],
    reading from the device on a miss (xv6 [bread], Linux [sb_bread]). *)
let bread t block =
  layer t (fun () ->
      let b = getbuf t block in
      Sim.Sync.Mutex.lock b.lock;
      (* Regression guard for the lookup/lock handoff race: the refcount
         taken under the shard lock must have kept this exact block's
         buffer alive across the sleeplock acquisition. *)
      assert (b.block = block && b.refcount > 0);
      if not b.valid then begin
        let data = Device.Ssd.read t.dev block in
        Bytes.blit data 0 b.data 0 (Bytes.length data);
        b.valid <- true;
        incr_s (shard_of t block) "disk_reads"
      end;
      b)

(** Batched [bread]: find-or-create every block's buffer, then fetch all
    the invalid ones in one pass through the bio layer — adjacent blocks
    merge into contiguous read commands and distinct runs go out
    concurrently across the device's channels, instead of one serial
    single-block read per buffer. Buffers are locked in ascending block
    order (one global order across all shards, so concurrent batched
    reads cannot deadlock) and returned in input order, each held exactly
    as by [bread]. Blocks must be distinct. *)
let bread_scatter t blocks =
  layer t (fun () ->
      let sorted = List.sort_uniq compare blocks in
      if List.length sorted <> List.length blocks then
        invalid_arg "Bcache.bread_scatter: duplicate blocks";
      let bufs =
        List.map
          (fun blk ->
            let b = getbuf t blk in
            Sim.Sync.Mutex.lock b.lock;
            assert (b.block = blk && b.refcount > 0);
            b)
          sorted
      in
      let missing = List.filter (fun b -> not b.valid) bufs in
      (if missing <> [] then
         match Bio.read_scatter t.dev (List.map (fun b -> b.block) missing) with
         | pairs, cmds ->
             List.iter2
               (fun b (blk, data) ->
                 assert (b.block = blk);
                 Bytes.blit data 0 b.data 0 (Bytes.length data);
                 b.valid <- true)
               missing pairs;
             (match missing with
             | m :: _ -> incr_by_s (shard_of t m.block) "disk_reads" cmds
             | [] -> ())
         | exception e ->
             (* Release everything we hold before propagating. *)
             List.iter
               (fun b ->
                 Sim.Sync.Mutex.unlock b.lock;
                 let s = shard_of t b.block in
                 Sim.Sync.Mutex.lock s.slock;
                 ref_dec s b;
                 Sim.Sync.Mutex.unlock s.slock)
               bufs;
             raise e);
      let by_block = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace by_block b.block b) bufs;
      List.map (fun blk -> Hashtbl.find by_block blk) blocks)

(** Like [bread] but without reading the device: for blocks the caller will
    fully overwrite (Linux [getblk] + wait-free path). *)
let getblk t block =
  layer t (fun () ->
      let b = getbuf t block in
      Sim.Sync.Mutex.lock b.lock;
      assert (b.block = block && b.refcount > 0);
      if not b.valid then begin
        Bytes.fill b.data 0 (Bytes.length b.data) '\000';
        b.valid <- true
      end;
      b)

(** Write the buffer through to the device (volatile cache). The buffer
    must be held (locked). *)
let bwrite t b =
  if not (Sim.Sync.Mutex.locked b.lock) then
    invalid_arg "Bcache.bwrite: buffer not locked";
  layer t (fun () ->
      Device.Ssd.write t.dev b.block b.data;
      b.dirty <- false;
      incr_s (shard_of t b.block) "disk_writes")

(** Write a set of held buffers with maximum parallelism: sort and merge
    adjacent block numbers into contiguous commands and dispatch the
    merged runs concurrently across the device's channels (bio
    plug/unplug), then wait for every completion. *)
let bwrite_scatter t bufs =
  match bufs with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun b ->
          if not (Sim.Sync.Mutex.locked b.lock) then
            invalid_arg "Bcache.bwrite_scatter: buffer not locked")
        bufs;
      layer t (fun () ->
          let cmds =
            Bio.write_scatter t.dev (List.map (fun b -> (b.block, b.data)) bufs)
          in
          List.iter (fun b -> b.dirty <- false) bufs;
          incr_by_s (shard_of t first.block) "disk_writes" cmds)

(** Write several held buffers as one contiguous device command when their
    block numbers are consecutive (sorted by block); otherwise fall back
    to {!bwrite_scatter}, which splits the set into maximal contiguous
    runs and dispatches them concurrently. *)
let bwrite_contig t bufs =
  match bufs with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun b ->
          if not (Sim.Sync.Mutex.locked b.lock) then
            invalid_arg "Bcache.bwrite_contig: buffer not locked")
        bufs;
      let arr = Array.of_list bufs in
      let contiguous =
        let ok = ref true in
        Array.iteri
          (fun i b -> if b.block <> first.block + i then ok := false)
          arr;
        !ok
      in
      if contiguous then
        layer t (fun () ->
            Device.Ssd.write_contig t.dev ~start:first.block
              (Array.map (fun b -> b.data) arr);
            Array.iter (fun b -> b.dirty <- false) arr;
            incr_s (shard_of t first.block) "disk_writes")
      else bwrite_scatter t bufs

(** Mark dirty without writing; the owner (e.g. the log) will write later. *)
let mark_dirty b = b.dirty <- true

(** Release: unlock and drop the reference (xv6 [brelse]). *)
let brelse t b =
  if not (Sim.Sync.Mutex.locked b.lock) then
    invalid_arg "Bcache.brelse: buffer not locked";
  Sim.Sync.Mutex.unlock b.lock;
  let s = shard_of t b.block in
  Sim.Sync.Mutex.lock s.slock;
  if b.refcount <= 0 then begin
    Sim.Sync.Mutex.unlock s.slock;
    invalid_arg "Bcache.brelse: refcount underflow"
  end;
  ref_dec s b;
  Sim.Sync.Mutex.unlock s.slock

(** Raise the refcount of a held buffer (xv6 [bpin], used by the log to keep
    blocks in cache until the transaction commits). *)
let bpin t b =
  let s = shard_of t b.block in
  Sim.Sync.Mutex.with_lock s.slock (fun () -> ref_inc s b)

let bunpin t b =
  let s = shard_of t b.block in
  Sim.Sync.Mutex.with_lock s.slock (fun () ->
      if b.refcount <= 0 then invalid_arg "Bcache.bunpin";
      ref_dec s b)

(** Drop a pin reference located by block number (jbd2 checkpointing, which
    holds data copies rather than buffers). *)
let bunpin_block t block =
  let s = shard_of t block in
  Sim.Sync.Mutex.with_lock s.slock (fun () ->
      match Hashtbl.find_opt s.table block with
      | Some b ->
          if b.refcount <= 0 then invalid_arg "Bcache.bunpin_block";
          ref_dec s b
      | None -> invalid_arg "Bcache.bunpin_block: not cached")

(** Write data for [block] straight to the device without disturbing the
    cached buffer — used by checkpointing to install a *committed* version
    while the cache may already hold newer, uncommitted contents. *)
let raw_write t block data =
  layer t (fun () ->
      Device.Ssd.write t.dev block data;
      incr_g t "raw_writes")

(** Scatter version of {!raw_write}: install many committed (block, data)
    pairs at once, merged into contiguous commands and dispatched
    concurrently through the bio layer. *)
let raw_write_scatter t pairs =
  match pairs with
  | [] -> ()
  | _ ->
      layer t (fun () ->
          ignore (Bio.write_scatter t.dev pairs);
          Sim.Stats.Counter.incr ~by:(List.length pairs)
            (Sim.Stats.counter t.gstats "raw_writes"))

(** Read a block straight from the device without admitting it to the
    cache — the CAS store's dedup-aware admission policy: content-addressed
    blocks are cached once in the refcounted shared-page table above, so
    admitting them here as well would duplicate them in memory. *)
let raw_read t block =
  layer t (fun () ->
      let data = Device.Ssd.read t.dev block in
      incr_g t "raw_reads";
      data)

(** Scatter version of {!raw_read}: fetch many blocks, merged into
    contiguous commands dispatched concurrently through the bio layer,
    none of them admitted to the cache. Returns (block, data) pairs in
    unspecified order. *)
let raw_read_scatter t blocks =
  match blocks with
  | [] -> []
  | _ ->
      layer t (fun () ->
          let pairs, _cmds = Bio.read_scatter t.dev blocks in
          Sim.Stats.Counter.incr ~by:(List.length blocks)
            (Sim.Stats.counter t.gstats "raw_reads");
          pairs)

(** Durability barrier on the underlying device. *)
let flush t =
  layer t (fun () ->
      Device.Ssd.flush t.dev;
      incr_g t "flushes")

let cached_blocks t =
  Array.fold_left (fun n s -> n + Hashtbl.length s.table) 0 t.shards

(* Invariant checks used by the test suite: per-shard table/refcount/LRU
   consistency plus the sharding invariant itself (every key hashes to
   the shard holding it). *)
let check_invariants t =
  Array.iter
    (fun s ->
      Hashtbl.iter
        (fun block b ->
          if b.block <> block then failwith "bcache: key/block mismatch";
          if block mod t.nshards <> s.sid then
            failwith "bcache: block in wrong shard";
          if b.refcount < 0 then failwith "bcache: negative refcount";
          if b.refcount = 0 && not b.on_lru then
            failwith "bcache: unreferenced buffer off the free list";
          if b.refcount > 0 && b.on_lru then
            failwith "bcache: referenced buffer on the free list")
        s.table;
      if Hashtbl.length s.table > s.cap then failwith "bcache: over capacity";
      (* Walk the free list and check link consistency both ways. *)
      let same a b =
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> x == y
        | _ -> false
      in
      let count = ref 0 in
      let rec walk prev = function
        | None ->
            if not (same s.lru_tail prev) then
              failwith "bcache: lru tail mismatch"
        | Some b ->
            Stdlib.incr count;
            if not b.on_lru then failwith "bcache: off-list buffer linked";
            if b.refcount <> 0 then failwith "bcache: referenced buffer on lru";
            (match Hashtbl.find_opt s.table b.block with
            | Some b' when b' == b -> ()
            | _ -> failwith "bcache: lru node not in table");
            if not (same b.lru_prev prev) then
              failwith "bcache: lru prev link broken";
            if !count > Hashtbl.length s.table then
              failwith "bcache: lru list cycle";
            walk (Some b) b.lru_next
      in
      walk None s.lru_head;
      let unref =
        Hashtbl.fold (fun _ b n -> if b.refcount = 0 then n + 1 else n) s.table 0
      in
      if unref <> !count then failwith "bcache: lru length mismatch")
    t.shards
