(** Content-addressable store for sealed read-only volumes.

    Blocks keyed by content hash, stored once in a reserved region at the
    device tail (cap the file system's KSERVICES block count so it never
    allocates there). A sealed {e manifest} describes a read-only tree;
    {!instantiate} creates it as sparse files and binds their inodes to
    the manifest, after which page faults alias a refcounted shared-page
    table through {!Vfs.cas_ops} — N tenant trees share the same cached
    pages, a warm open+read does no device I/O, and the first write to a
    bound file breaks the share by copy-on-write.

    Durability: commits write data blocks and the inactive half of a
    ping-pong catalog area, flush, then write the next-generation
    superblock and flush. Live state is never overwritten, so a crash at
    any point yields one valid generation — wholly old or wholly new.

    Machine counters: [cas_hits] (alias served from a resident shared
    page), [cas_fills] (shared page filled from the device),
    [cas_shared_pages] (gauge: resident shared pages),
    [dedup_blocks_saved] (blocks sealing did not store again),
    [cas_commits]. *)

type t

(** Raw block access to the device the region lives on — [Bcache.raw_*]
    for the kernel stacks, the FUSE daemon's user bcache for bento_user.
    Reads and writes bypass any buffer cache: shared pages are the only
    cache CAS blocks get (dedup-aware admission). Writes are volatile
    until [b_flush]. *)
type backend = {
  b_block_size : int;
  b_read : int -> Bytes.t;
  b_read_scatter : int list -> (int * Bytes.t) list;
  b_write : (int * Bytes.t) list -> unit;
  b_flush : unit -> unit;
}

val attach : Machine.t -> backend -> base:int -> blocks:int -> t
(** Open the region [\[base, base+blocks)]. Loads the newest valid
    superblock generation; a fresh region is formatted (an empty
    generation is committed). [blocks] must be at least 16. *)

val fnv1a : Bytes.t -> int64
(** The content hash (FNV-1a, 64-bit). *)

val seal_files : t -> name:string -> dirs:string list -> files:(string * Bytes.t) list -> int
(** Seal a tree given directly as data: deduplicate every page against
    the store, write the new blocks and commit. Paths are relative to the
    tree root ([dirs] in any order — they are sorted so parents precede
    children). Returns the manifest id. *)

val find_manifest : t -> string -> int option
val manifest_dirs : t -> int -> string array
val manifest_files : t -> int -> (string * int) array
(** [(path, size)] per file, in binding index order. *)

val instantiate : ?commit_bindings:bool -> t -> Os.t -> mid:int -> root:string -> unit
(** Create manifest [mid]'s tree under [root] (created if missing):
    directories, then each file created and truncated up to its size —
    sparse stubs; content stays in the store — and its inode bound to the
    manifest. [commit_bindings] (default true) makes the bindings durable;
    pass [false] when instantiating many trees and call {!commit} once.
    Raises [Errno.Error] on file-system failure. *)

val commit : t -> unit
(** Make the current in-memory state durable (see module doc). *)

val vfs_hooks : t -> Vfs.cas_ops
(** The hook record to pass to {!Vfs.set_cas}. *)

val binding_of : t -> int -> (int * int) option
(** [(manifest id, file index)] bound to an inode, if any. *)

val resident_pages : t -> int
(** Shared pages currently resident (the [cas_shared_pages] gauge). *)

val used_blocks : t -> int
(** Region blocks in use: superblocks + data watermark + live catalog —
    the store's contribution to total device-block accounting. *)

val verify_manifest : t -> int -> bool
(** Crash oracle: every page of every file of the manifest is in the
    index, allocated below the watermark, and its device bytes hash to
    the sealed value. *)

val register : Machine.t -> t -> unit
(** Record the machine's store so workloads handed only a machine can
    find it with {!of_machine}. Mount paths call this. *)

val unregister : Machine.t -> unit

val of_machine : Machine.t -> t option
