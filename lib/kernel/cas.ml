(* Content-addressable store for sealed read-only volumes.

   Blocks are keyed by an FNV-1a hash of their bytes and stored once in a
   reserved region at the tail of the device (the file-system's KSERVICES
   view is capped so it never allocates there). A sealed *manifest* names
   a tree — directories plus files described by per-page hash arrays — and
   *instantiating* a manifest binds freshly created (sparse) inodes to its
   files. Page faults on bound inodes then alias a refcounted shared-page
   table through {!Vfs.cas_ops}: N tenants' identical files share the same
   cached [Bytes.t], and a warm open+read needs no device I/O at all.

   On-device layout of the region ([base], [base+blocks)):

     [sb0][sb1][ data blocks, append-only --->   ][catalog A][catalog B]

   The two superblock slots ping-pong by generation parity and point at
   the live catalog half (a marshalled blob holding the hash index, the
   manifests, the inode bindings and the allocation watermark). A commit
   writes new data blocks and the inactive catalog half, flushes, then
   writes the next-generation superblock and flushes again — live state is
   never overwritten, so a crash at any point leaves one valid generation:
   either the old state (no manifest / binding still present) or the new
   one (all referenced blocks already durable). *)

type mfile = {
  mf_path : string;  (** slash-separated path relative to the tree root *)
  mf_size : int;
  mf_hashes : int64 array;  (** one content hash per page *)
}

type manifest = {
  m_id : int;
  m_name : string;
  m_dirs : string array;  (** relative dir paths, parents before children *)
  m_files : mfile array;
}

(* the live state a commit makes durable, as marshalled to the catalog *)
type catalog = {
  c_index : (int64 * int) array;  (** content hash -> absolute device block *)
  c_manifests : manifest array;
  c_bindings : (int * (int * int)) array;  (** ino -> (manifest id, file idx) *)
  c_watermark : int;
  c_next_mid : int;
}

(* resident shared page: one Bytes.t aliased by [sp_refs] vnode pages *)
type sp = { sp_data : Bytes.t; mutable sp_refs : int }

type backend = {
  b_block_size : int;
  b_read : int -> Bytes.t;
  b_read_scatter : int list -> (int * Bytes.t) list;
  b_write : (int * Bytes.t) list -> unit;  (** volatile until [b_flush] *)
  b_flush : unit -> unit;
}

type t = {
  machine : Machine.t;
  backend : backend;
  base : int;
  blocks : int;
  data_base : int;
  data_end : int;  (** exclusive; first catalog block *)
  cat_half : int;  (** blocks per catalog half *)
  mutable watermark : int;  (** next free data block (absolute) *)
  mutable gen : int;
  mutable active_half : int;  (** 0 = catalog A live, 1 = catalog B *)
  index : (int64, int) Hashtbl.t;
  manifests : (int, manifest) Hashtbl.t;
  bindings : (int, int * int) Hashtbl.t;
  shared : (int64, sp) Hashtbl.t;
  mutable next_mid : int;
  c_hits : Sim.Stats.Counter.t;
  c_fills : Sim.Stats.Counter.t;
  c_shared_pages : Sim.Stats.Counter.t;  (** gauge: resident shared pages *)
  c_dedup_saved : Sim.Stats.Counter.t;
  c_commits : Sim.Stats.Counter.t;
}

let magic = "BENTOCAS"

let fnv1a (b : Bytes.t) : int64 =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length b - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        0x100000001b3L
  done;
  !h

(* superblock codec: magic, then int64 LE fields, fnv checksum over the
   preceding 48 bytes *)

let encode_sb t ~cat_blocks ~cat_bytes =
  let b = Bytes.make t.backend.b_block_size '\000' in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int t.gen);
  Bytes.set_int64_le b 16 (Int64.of_int t.watermark);
  Bytes.set_int64_le b 24 (Int64.of_int t.active_half);
  Bytes.set_int64_le b 32 (Int64.of_int cat_blocks);
  Bytes.set_int64_le b 40 (Int64.of_int cat_bytes);
  Bytes.set_int64_le b 48 (fnv1a (Bytes.sub b 0 48));
  b

type sb = {
  sb_gen : int;
  sb_watermark : int;
  sb_half : int;
  sb_cat_blocks : int;
  sb_cat_bytes : int;
}

let decode_sb bs (b : Bytes.t) : sb option =
  if Bytes.length b < bs then None
  else if not (String.equal (Bytes.sub_string b 0 8) magic) then None
  else if not (Int64.equal (Bytes.get_int64_le b 48) (fnv1a (Bytes.sub b 0 48)))
  then None
  else
    Some
      {
        sb_gen = Int64.to_int (Bytes.get_int64_le b 8);
        sb_watermark = Int64.to_int (Bytes.get_int64_le b 16);
        sb_half = Int64.to_int (Bytes.get_int64_le b 24);
        sb_cat_blocks = Int64.to_int (Bytes.get_int64_le b 32);
        sb_cat_bytes = Int64.to_int (Bytes.get_int64_le b 40);
      }

let write_chunked t pairs =
  let rec go = function
    | [] -> ()
    | pairs ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | p :: rest -> take (n - 1) (p :: acc) rest
        in
        let chunk, rest = take 256 [] pairs in
        t.backend.b_write chunk;
        go rest
  in
  go pairs

let cat_base t half = t.data_end + (half * t.cat_half)

(** Make the in-memory state durable: inactive catalog half + next-gen
    superblock, each behind a flush barrier. *)
let commit t =
  let cat =
    {
      c_index = Hashtbl.fold (fun h b acc -> (h, b) :: acc) t.index [] |> Array.of_list;
      c_manifests =
        Hashtbl.fold (fun _ m acc -> m :: acc) t.manifests [] |> Array.of_list;
      c_bindings =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) t.bindings [] |> Array.of_list;
      c_watermark = t.watermark;
      c_next_mid = t.next_mid;
    }
  in
  let blob = Marshal.to_bytes cat [] in
  let len = Bytes.length blob in
  let bs = t.backend.b_block_size in
  let nblk = (len + bs - 1) / bs in
  if nblk > t.cat_half then failwith "cas: catalog overflows its half";
  let half = 1 - t.active_half in
  let base = cat_base t half in
  let pairs =
    List.init nblk (fun i ->
        let b = Bytes.make bs '\000' in
        Bytes.blit blob (i * bs) b 0 (min bs (len - (i * bs)));
        (base + i, b))
  in
  write_chunked t pairs;
  t.backend.b_flush ();
  t.gen <- t.gen + 1;
  t.active_half <- half;
  let sb = encode_sb t ~cat_blocks:nblk ~cat_bytes:len in
  t.backend.b_write [ (t.base + (t.gen land 1), sb) ];
  t.backend.b_flush ();
  Sim.Stats.Counter.incr t.c_commits

let load_catalog t (sb : sb) =
  let bs = t.backend.b_block_size in
  let base = cat_base t sb.sb_half in
  let pairs =
    t.backend.b_read_scatter (List.init sb.sb_cat_blocks (fun i -> base + i))
  in
  let blob = Bytes.create (sb.sb_cat_blocks * bs) in
  List.iter (fun (blk, data) -> Bytes.blit data 0 blob ((blk - base) * bs) bs) pairs;
  let cat : catalog = Marshal.from_bytes blob 0 in
  Array.iter (fun (h, b) -> Hashtbl.replace t.index h b) cat.c_index;
  Array.iter (fun m -> Hashtbl.replace t.manifests m.m_id m) cat.c_manifests;
  Array.iter (fun (i, b) -> Hashtbl.replace t.bindings i b) cat.c_bindings;
  t.watermark <- cat.c_watermark;
  t.gen <- sb.sb_gen;
  t.active_half <- sb.sb_half;
  t.next_mid <- cat.c_next_mid

let attach machine backend ~base ~blocks =
  if blocks < 16 then invalid_arg "Cas.attach: region too small";
  let cat_area = max 4 (blocks / 8) in
  let cat_half = cat_area / 2 in
  let t =
    {
      machine;
      backend;
      base;
      blocks;
      data_base = base + 2;
      data_end = base + blocks - (2 * cat_half);
      cat_half;
      watermark = base + 2;
      gen = 0;
      active_half = 1 (* first commit lands in half 0 *);
      index = Hashtbl.create 4096;
      manifests = Hashtbl.create 16;
      bindings = Hashtbl.create 4096;
      shared = Hashtbl.create 4096;
      next_mid = 0;
      c_hits = Machine.counter machine "cas_hits";
      c_fills = Machine.counter machine "cas_fills";
      c_shared_pages = Machine.counter machine "cas_shared_pages";
      c_dedup_saved = Machine.counter machine "dedup_blocks_saved";
      c_commits = Machine.counter machine "cas_commits";
    }
  in
  let bs = backend.b_block_size in
  let sb0 = decode_sb bs (backend.b_read base) in
  let sb1 = decode_sb bs (backend.b_read (base + 1)) in
  let best =
    match (sb0, sb1) with
    | Some a, Some b -> Some (if a.sb_gen >= b.sb_gen then a else b)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  (match best with
  | Some sb -> load_catalog t sb
  | None -> commit t (* format: generation 1, empty catalog *));
  t

(* ------------------------------------------------------------------ *)
(* Sealing                                                            *)

let store_page t new_blocks (page : Bytes.t) : int64 =
  let h = fnv1a page in
  (match Hashtbl.find_opt t.index h with
  | Some _ -> Sim.Stats.Counter.incr t.c_dedup_saved
  | None ->
      if t.watermark >= t.data_end then failwith "cas: data region full";
      let blk = t.watermark in
      t.watermark <- blk + 1;
      Hashtbl.replace t.index h blk;
      new_blocks := (blk, page) :: !new_blocks);
  h

let seal_files t ~name ~dirs ~files =
  let bs = t.backend.b_block_size in
  let new_blocks = ref [] in
  let mfiles =
    List.map
      (fun (path, data) ->
        let size = Bytes.length data in
        let npages = (size + bs - 1) / bs in
        let hashes =
          Array.init npages (fun i ->
              let page = Bytes.make bs '\000' in
              let off = i * bs in
              Bytes.blit data off page 0 (min bs (size - off));
              store_page t new_blocks page)
        in
        { mf_path = path; mf_size = size; mf_hashes = hashes })
      files
  in
  let mid = t.next_mid in
  t.next_mid <- mid + 1;
  let m =
    {
      m_id = mid;
      m_name = name;
      m_dirs = Array.of_list (List.sort compare dirs);
      m_files = Array.of_list mfiles;
    }
  in
  Hashtbl.replace t.manifests mid m;
  write_chunked t (List.rev !new_blocks);
  commit t;
  mid

let find_manifest t name =
  Hashtbl.fold
    (fun mid m acc -> if String.equal m.m_name name then Some mid else acc)
    t.manifests None

let manifest_dirs t mid = (Hashtbl.find t.manifests mid).m_dirs

let manifest_files t mid =
  Array.map (fun f -> (f.mf_path, f.mf_size)) (Hashtbl.find t.manifests mid).m_files

(* ------------------------------------------------------------------ *)
(* Instantiation                                                      *)

let instantiate ?(commit_bindings = true) t os ~mid ~root =
  let m =
    match Hashtbl.find_opt t.manifests mid with
    | Some m -> m
    | None -> invalid_arg "Cas.instantiate: unknown manifest"
  in
  let ( / ) a b = if String.equal a "/" then a ^ b else a ^ "/" ^ b in
  if not (Os.exists os root) then Errno.ok_exn (Os.mkdir os root);
  Array.iter (fun d -> Errno.ok_exn (Os.mkdir os (root / d))) m.m_dirs;
  Array.iteri
    (fun fidx f ->
      let path = root / f.mf_path in
      let fd = Errno.ok_exn (Os.open_ os path Os.(creat wronly)) in
      (* truncate-up only reserves sparse stubs in the file system: the
         content stays in the CAS region, served through the binding *)
      ignore (Errno.ok_exn (Os.ftruncate os fd f.mf_size));
      let st = Errno.ok_exn (Os.fstat os fd) in
      Errno.ok_exn (Os.close os fd);
      Hashtbl.replace t.bindings st.Vfs.st_ino (mid, fidx))
    m.m_files;
  if commit_bindings then commit t

(* ------------------------------------------------------------------ *)
(* Page-cache hooks                                                   *)

let acquire t h =
  match Hashtbl.find_opt t.shared h with
  | Some sp ->
      sp.sp_refs <- sp.sp_refs + 1;
      Sim.Stats.Counter.incr t.c_hits;
      sp.sp_data
  | None -> (
      let blk =
        match Hashtbl.find_opt t.index h with
        | Some b -> b
        | None -> failwith "cas: bound hash missing from index"
      in
      let data = t.backend.b_read blk in
      (* the read blocked: another fiber may have filled the entry *)
      match Hashtbl.find_opt t.shared h with
      | Some sp ->
          sp.sp_refs <- sp.sp_refs + 1;
          Sim.Stats.Counter.incr t.c_hits;
          sp.sp_data
      | None ->
          let sp = { sp_data = data; sp_refs = 1 } in
          Hashtbl.replace t.shared h sp;
          Sim.Stats.Counter.incr t.c_fills;
          Sim.Stats.Counter.incr t.c_shared_pages;
          sp.sp_data)

let release t h =
  match Hashtbl.find_opt t.shared h with
  | None -> failwith "cas: release of a non-resident hash"
  | Some sp ->
      sp.sp_refs <- sp.sp_refs - 1;
      if sp.sp_refs = 0 then begin
        Hashtbl.remove t.shared h;
        Sim.Stats.Counter.incr ~by:(-1) t.c_shared_pages
      end

let unbind_durable t ino =
  if Hashtbl.mem t.bindings ino then begin
    Hashtbl.remove t.bindings ino;
    commit t
  end

let binding_of t ino = Hashtbl.find_opt t.bindings ino
let resident_pages t = Hashtbl.length t.shared

let used_blocks t =
  let live_cat =
    let bs = t.backend.b_block_size in
    match decode_sb bs (t.backend.b_read (t.base + (t.gen land 1))) with
    | Some sb -> sb.sb_cat_blocks
    | None -> 0
  in
  2 + (t.watermark - t.data_base) + live_cat

let vfs_hooks t : Vfs.cas_ops =
  {
    Vfs.cas_lookup =
      (fun ino ->
        match Hashtbl.find_opt t.bindings ino with
        | None -> None
        | Some (mid, fidx) ->
            Some (Hashtbl.find t.manifests mid).m_files.(fidx).mf_hashes);
    cas_acquire = acquire t;
    cas_release = release t;
    cas_refs =
      (fun h ->
        match Hashtbl.find_opt t.shared h with Some sp -> sp.sp_refs | None -> 0);
    cas_cow = (fun ino -> unbind_durable t ino);
    cas_unbind = (fun ino -> unbind_durable t ino);
    cas_debug_refs =
      (fun () -> Hashtbl.fold (fun h sp acc -> (h, sp.sp_refs) :: acc) t.shared []);
  }

(* ------------------------------------------------------------------ *)
(* Crash oracle                                                       *)

let verify_manifest t mid =
  match Hashtbl.find_opt t.manifests mid with
  | None -> false
  | Some m ->
      Array.for_all
        (fun f ->
          Array.for_all
            (fun h ->
              match Hashtbl.find_opt t.index h with
              | None -> false
              | Some blk ->
                  blk >= t.data_base && blk < t.watermark
                  && Int64.equal (fnv1a (t.backend.b_read blk)) h)
            f.mf_hashes)
        m.m_files

(* ------------------------------------------------------------------ *)
(* Machine registry: workloads reach the store through the machine the
   Targets harness hands them                                          *)

let registry : (Machine.t * t) list ref = ref []

let register machine t =
  registry := (machine, t) :: List.filter (fun (m, _) -> m != machine) !registry

let unregister machine =
  registry := List.filter (fun (m, _) -> m != machine) !registry

let of_machine machine =
  List.find_opt (fun (m, _) -> m == machine) !registry |> Option.map snd
