(** Kernel buffer cache with the Linux/xv6 [sb_bread]/[brelse] protocol
    that BentoKS wraps and the C baseline calls directly.

    A [buf] is the in-kernel image of one disk block: [bread] returns it
    with its sleeplock held and reference taken; the holder must [brelse].
    [bwrite] writes through to the device's volatile cache; durability
    needs a separate {!flush} barrier. Pinning ([bpin]) keeps a block
    cached while a log holds it staged. *)

type buf = {
  block : int;
  data : Bytes.t;
  lock : Sim.Sync.Mutex.t;  (** sleeplock held between bread and brelse *)
  mutable valid : bool;
  mutable dirty : bool;
  mutable refcount : int;
  mutable lru_prev : buf option;
      (** intrusive free-list links, maintained by the cache: a buffer is
          linked exactly while its refcount is zero *)
  mutable lru_next : buf option;
  mutable on_lru : bool;
}

type t

exception No_buffers
(** Eviction found no unreferenced, unpinned buffer in the block's shard. *)

val create : ?capacity:int -> ?shards:int -> Machine.t -> t
(** The cache is sharded by block number (per-shard hash + LRU + lock +
    counters) so concurrent lookups of different blocks do not serialise.
    [shards] defaults to a count derived from [capacity] that collapses to
    1 for small caches, preserving exact whole-cache LRU order there; it
    is clamped to [1, capacity]. *)

val stats : t -> Sim.Stats.t
(** Whole-cache statistics: the per-shard counters merged by name,
    refreshed on every call. *)
val block_size : t -> int

val bread : t -> int -> buf
(** Locked buffer with the block's current contents (device read on
    miss). *)

val bread_scatter : t -> int list -> buf list
(** Batched [bread] of distinct blocks: the misses are merged into
    contiguous read commands dispatched concurrently across the device's
    channels (the bio read path). Buffers come back in input order, each
    held exactly as by [bread]. *)

val getblk : t -> int -> buf
(** Locked buffer without reading the device — for full overwrites. *)

val bwrite : t -> buf -> unit
(** Write through to the device (volatile). The buffer must be held. *)

val bwrite_contig : t -> buf list -> unit
(** One device command when the held buffers are consecutive by block
    number (sorted); otherwise falls back to {!bwrite_scatter}. *)

val bwrite_scatter : t -> buf list -> unit
(** Write held buffers in any block order: merges adjacent blocks into
    contiguous commands and dispatches the merged runs concurrently
    across the device's channels, waiting for all completions (the bio
    plug/unplug path). *)

val mark_dirty : buf -> unit

val brelse : t -> buf -> unit
(** Unlock and drop the reference. *)

val bpin : t -> buf -> unit
(** Extra reference so eviction cannot take the block (xv6 [bpin]). *)

val bunpin : t -> buf -> unit

val bunpin_block : t -> int -> unit
(** Drop a pin located by block number (jbd2 checkpointing holds copies,
    not buffers). *)

val raw_write : t -> int -> Bytes.t -> unit
(** Write data for a block straight to the device without touching the
    cached buffer — installing a committed version while the cache holds
    newer uncommitted contents. *)

val raw_write_scatter : t -> (int * Bytes.t) list -> unit
(** Scatter version of {!raw_write}: merge and dispatch the pairs
    concurrently through the bio layer, then wait for all completions.
    Duplicate blocks must not appear. *)

val raw_read : t -> int -> Bytes.t
(** Read a block straight from the device without admitting it to the
    cache. Used by the CAS store, whose blocks are cached once in the
    refcounted shared-page table instead (dedup-aware admission). *)

val raw_read_scatter : t -> int list -> (int * Bytes.t) list
(** Scatter version of {!raw_read}: merged into contiguous commands and
    dispatched concurrently; nothing is admitted to the cache. *)

val flush : t -> unit
(** Device durability barrier. *)

val cached_blocks : t -> int

val check_invariants : t -> unit
(** Raises on violated internal invariants (tests). *)
