(** The simulated machine: engine + CPU cores + attached device + global
    statistics. Every file-system stack in the evaluation runs on one. *)

type t

val create :
  ?cost:Cost.t ->
  ?config:Device.Ssd.config ->
  disk_blocks:int ->
  block_size:int ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val disk : t -> Device.Ssd.t
val cost : t -> Cost.t
val stats : t -> Sim.Stats.t

val tracer : t -> Sim.Trace.t
(** The machine-wide span tracer (disabled by default); shared with the
    attached device so one trace covers syscall-to-flash. *)

val profile : t -> Sim.Profile.t
(** The machine-wide virtual-time profiler (disabled by default); shared
    with the attached device so attribution covers syscall-to-flash. *)

val flight : t -> Sim.Flight.t
(** The machine-wide flight recorder: always on (one ring per core),
    free in virtual time, dumped on triggers (slow op, error, oracle). *)

val with_layer : t -> string -> (unit -> 'a) -> 'a
(** Run a function under a profiler layer frame ("vfs", "bcache", "log",
    ...); just calls the function while profiling is disabled. *)

val register_stats : t -> prefix:string -> Sim.Stats.t -> unit
(** Attach a subsystem's stats registry (bcache, FUSE transport, ...) so
    {!counter_snapshot} covers it, each counter as ["prefix.name"].
    Registering one prefix twice is fine — snapshots sum by name. *)

val counter_snapshot : t -> (string * int64) list
(** All counters of the machine's own registry (prefix "machine"), the
    device ("ssd"), and every registered subsystem, name-sorted. *)

val register_inspector : t -> name:string -> (unit -> Util.Json.t) -> unit
(** Register a live internal-state probe (bcache residency per shard,
    lease table, WFQ queue depths, journal free blocks, ...). Probes run
    only when {!inspect} is called; re-registering a name shadows the
    older probe. *)

val inspect : t -> Util.Json.t
(** Snapshot every registered inspector as one name-sorted JSON object.
    A probe that raises contributes an ["error"] object instead of
    aborting — inspection must work on a wedged machine. *)

val now : t -> int64

val cpu_work : t -> int64 -> unit
(** Burn CPU on one of the machine's cores, queueing when all are busy.
    Every simulated code path accounts for its processing time here. *)

val counter : t -> string -> Sim.Stats.Counter.t
val incr : ?by:int -> t -> string -> unit
val latency : t -> string -> Sim.Stats.Latency.t
val histogram : t -> string -> Sim.Stats.Histogram.t

val spawn : ?name:string -> t -> (unit -> unit) -> unit
(** Start a fiber on this machine. *)

val run : t -> unit
val run_until : t -> int64 -> unit
