(** The kernel log. Silent by default (benchmarks run clean); route it to
    stderr with [set_level] to watch mounts, log recovery, upgrades, and
    fsck activity — the simulated dmesg.

    Messages are prefixed with the virtual timestamp of the machine that
    emitted them, like dmesg's monotonic stamps. *)

type level = Quiet | Err | Info | Debug

let current = ref Quiet

let set_level l = current := l

let level_enabled l =
  match (!current, l) with
  | Quiet, _ -> false
  | Err, Err -> true
  | Err, _ -> false
  | Info, (Err | Info) -> true
  | Info, Debug -> false
  | Debug, _ -> true
  | _, Quiet -> false

let severity_of = function
  | Err -> Sim.Flight.Error
  | Info -> Sim.Flight.Info
  | Debug | Quiet -> Sim.Flight.Debug

let emit machine l fmt =
  Printf.ksprintf
    (fun s ->
      (* Every line lands in the flight recorder regardless of the stderr
         level, so triggered dumps interleave kernel log lines with the
         op/IO entries in event order. *)
      Sim.Flight.note ~sev:(severity_of l) (Machine.flight machine)
        ~kind:"printk" s;
      if level_enabled l then
        Printf.eprintf "[%12.6f] %s\n%!"
          (Int64.to_float (Machine.now machine) /. 1e9)
          s)
    fmt

let err machine fmt = emit machine Err fmt
let info machine fmt = emit machine Info fmt
let debug machine fmt = emit machine Debug fmt
