(** Kernel-side pushdown: validated client functions executed inside a
    lower layer ("BPF for storage", PAPERS.md). A client holding a
    capability registers a small program; lower layers then invoke it in
    place of a round-trip to the caller — a directory scan filters and
    batches attributes inside the fs layer, and an index walk resubmits
    follow-on reads from bio completion context, so a point lookup costs
    one layer crossing instead of depth-many.

    Safety model: registration is gated by an unforgeable capability
    ([grant]/[revoke]); every program carries a step budget, checked
    before each step, so a runaway program is aborted cleanly ([ELOOP])
    without wedging the completion fiber that hosts it. *)

type t
(** A machine's pushdown registry. *)

(** The validated program forms lower layers know how to run. *)
type prog =
  | Dir_filter of { contains : string }
      (** fs-layer readdir filter + stat batch: return only entries whose
          name contains the pattern, each with its attributes. *)
  | Extent_walk of { fanout_bits : int; depth : int }
      (** bio-layer index-block chase: [depth] levels of radix-index
          blocks ([2^fanout_bits] slots each) ending at a value block,
          resubmitted from completion context. *)
  | Kv_get of { fanout_bits : int; depth : int; root : int }
      (** device-side get(key): an [Extent_walk] whose index root was
          bound at registration, so the lookup resolves entirely below
          the syscall layer. *)

type cap
(** Unforgeable client capability; required to register programs. *)

val registry : Machine.t -> t
(** The machine's registry (created on first use; registers a live
    [pushdown] inspector table for [bento_cli inspect]). *)

val grant : t -> client:string -> cap
val revoke : cap -> unit

val register :
  t -> cap:cap -> name:string -> ?budget:int -> prog -> (unit, Errno.t) result
(** Validate and install a program under [name]. [EPERM] when the
    capability is revoked or belongs to another machine's registry;
    [EINVAL] when the program's parameters fail validation. Re-registering
    a name replaces the program. Default budget: 4096 steps. *)

val find : t -> string -> prog option

val set_backend : t -> label:string -> (int -> Bytes.t) -> unit
(** How walk programs read a device block from below the syscall layer.
    The mounting stack attaches it: the kernel runtime reads through the
    buffer cache (sharding + admission respected), the FUSE runtime reads
    the shared device directly — either way, no caller crossing. *)

val table : t -> (string * string * string * int * int * int) list
(** Registered programs: (name, client, kind, budget, invocations,
    aborts) — the inspector's rows. *)

(* ------------------------------------------------------------------ *)
(* Index-block layout shared by builders (bench, tests) and the walker:
   each index block holds [2^fanout_bits] big-endian u32 slots naming the
   next level's device block (0 = hole). *)

val slot_of_key : fanout_bits:int -> depth:int -> level:int -> int64 -> int
val put_slot : Bytes.t -> slot:int -> int -> unit
val get_slot : Bytes.t -> slot:int -> int

val matches : string -> contains:string -> bool
(** The [Dir_filter] predicate, exported so the plain multi-call path and
    the equivalence tests apply exactly the same test. *)

(* ------------------------------------------------------------------ *)
(* Invocation — called from below the crossing. *)

val filter_dir :
  t ->
  name:string ->
  readdir:(unit -> (Vfs.dirent list, Errno.t) result) ->
  getattr:(int -> (Vfs.stat, Errno.t) result) ->
  ((Vfs.dirent * Vfs.stat) list, Errno.t) result
(** Run [Dir_filter name] against a directory: one readdir, then the
    filter and per-entry getattr all inside the hosting layer. [ENOENT]
    when no such program, [EINVAL] when [name] is not a filter, [ELOOP]
    when the scan exceeds the program's step budget. *)

val walk :
  t -> name:string -> root:int -> key:int64 -> (Bytes.t, Errno.t) result
(** Run [Extent_walk name] from index root block [root]: a completion
    fiber chases the index levels, issuing each follow-on read itself
    (counted in the machine's [pushdown_resubmits], never as caller
    crossings), and returns the value block. [ENOENT] for an unregistered
    program or a hole in the index, [ELOOP] on budget exhaustion — the
    hosting fiber survives and holds no buffers either way. *)

val get : t -> name:string -> key:int64 -> (Bytes.t, Errno.t) result
(** Run [Kv_get name]: [walk] from the root bound at registration. *)
