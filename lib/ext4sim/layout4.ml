(** On-disk format of the simplified ext4 (see DESIGN.md: mechanisms kept —
    block groups, extents, a JBD2-style data journal — exact ext4 byte
    layout not attempted).

    Disk layout (blocks):
    [ 0 | 1: superblock | 2: group descriptors | journal | group 0 | group 1 | ... ]

    Each group: [ block bitmap | inode bitmap | inode table | data ... ] *)

let block_size = 4096
let magic = 0xEF53_0001
let root_ino = 1

let inode_size = 256
let inodes_per_block = block_size / inode_size

let inline_extents = 4
let leaf_ptrs = 8
let extents_per_leaf = (block_size - 8) / 12

(** Max mappable file blocks: inline + leaf extents, each extent up to
    [max_extent_len] blocks. *)
let max_extent_len = 32768

let max_file_blocks = (inline_extents + (leaf_ptrs * extents_per_leaf)) * 16
(* a conservative bound used for EFBIG checks; with contiguous allocation
   real files go far beyond this in practice *)

let max_file_size = 1 lsl 40 (* 1 TB: extents make the format limit moot *)

type superblock = {
  total_blocks : int;
  ngroups : int;
  group_size : int;  (** blocks per group *)
  inodes_per_group : int;
  journal_start : int;
  journal_len : int;
  first_group_block : int;
}

let put_superblock b sb =
  Util.Bytesio.set_u32 b 0 magic;
  Util.Bytesio.set_u32 b 4 sb.total_blocks;
  Util.Bytesio.set_u32 b 8 sb.ngroups;
  Util.Bytesio.set_u32 b 12 sb.group_size;
  Util.Bytesio.set_u32 b 16 sb.inodes_per_group;
  Util.Bytesio.set_u32 b 20 sb.journal_start;
  Util.Bytesio.set_u32 b 24 sb.journal_len;
  Util.Bytesio.set_u32 b 28 sb.first_group_block

let get_superblock b : (superblock, string) result =
  if Util.Bytesio.get_u32 b 0 <> magic then Error "ext4: bad magic"
  else
    Ok
      {
        total_blocks = Util.Bytesio.get_u32 b 4;
        ngroups = Util.Bytesio.get_u32 b 8;
        group_size = Util.Bytesio.get_u32 b 12;
        inodes_per_group = Util.Bytesio.get_u32 b 16;
        journal_start = Util.Bytesio.get_u32 b 20;
        journal_len = Util.Bytesio.get_u32 b 24;
        first_group_block = Util.Bytesio.get_u32 b 28;
      }

(* Group geometry. *)
let inode_table_blocks sb = (sb.inodes_per_group + inodes_per_block - 1) / inodes_per_block
let group_start sb g = sb.first_group_block + (g * sb.group_size)
let group_block_bitmap sb g = group_start sb g
let group_inode_bitmap sb g = group_start sb g + 1
let group_inode_table sb g = group_start sb g + 2
let group_data_start sb g = group_inode_table sb g + inode_table_blocks sb
let group_of_block sb blk = (blk - sb.first_group_block) / sb.group_size

let total_inodes sb = sb.ngroups * sb.inodes_per_group

(* Inode numbers are 1-based; ino i lives in group (i-1)/ipg. *)
let group_of_ino sb ino = (ino - 1) / sb.inodes_per_group
let index_in_group sb ino = (ino - 1) mod sb.inodes_per_group

let inode_block sb ino =
  group_inode_table sb (group_of_ino sb ino)
  + (index_in_group sb ino / inodes_per_block)

let inode_slot sb ino = index_in_group sb ino mod inodes_per_block

type extent = { e_logical : int; e_physical : int; e_len : int }

type kind4 = K_free | K_dir | K_file | K_symlink

let kind_to_int = function K_free -> 0 | K_dir -> 1 | K_file -> 2 | K_symlink -> 3

let kind_of_int = function
  | 0 -> Ok K_free
  | 1 -> Ok K_dir
  | 2 -> Ok K_file
  | 3 -> Ok K_symlink
  | n -> Error (Printf.sprintf "ext4: bad inode kind %d" n)

type dinode = {
  kind : kind4;
  nlink : int;
  size : int;
  nextents : int;  (** total extents, inline + in leaves *)
  inline : extent array;  (** first [inline_extents] *)
  leaves : int array;  (** leaf block pointers, 0 = absent *)
}

let zero_dinode =
  {
    kind = K_free;
    nlink = 0;
    size = 0;
    nextents = 0;
    inline = Array.make inline_extents { e_logical = 0; e_physical = 0; e_len = 0 };
    leaves = Array.make leaf_ptrs 0;
  }

let put_extent b off (e : extent) =
  Util.Bytesio.set_u32 b off e.e_logical;
  Util.Bytesio.set_u32 b (off + 4) e.e_physical;
  Util.Bytesio.set_u32 b (off + 8) e.e_len

let get_extent b off =
  {
    e_logical = Util.Bytesio.get_u32 b off;
    e_physical = Util.Bytesio.get_u32 b (off + 4);
    e_len = Util.Bytesio.get_u32 b (off + 8);
  }

let put_dinode block ~slot (d : dinode) =
  let off = slot * inode_size in
  Util.Bytesio.set_u16 block off (kind_to_int d.kind);
  Util.Bytesio.set_u16 block (off + 2) d.nlink;
  Util.Bytesio.set_int_as_u64 block (off + 8) d.size;
  Util.Bytesio.set_u16 block (off + 16) d.nextents;
  Array.iteri (fun i e -> put_extent block (off + 20 + (i * 12)) e) d.inline;
  Array.iteri
    (fun i p -> Util.Bytesio.set_u32 block (off + 20 + (inline_extents * 12) + (i * 4)) p)
    d.leaves

let get_dinode block ~slot : (dinode, string) result =
  let off = slot * inode_size in
  match kind_of_int (Util.Bytesio.get_u16 block off) with
  | Error _ as e -> e
  | Ok kind ->
      Ok
        {
          kind;
          nlink = Util.Bytesio.get_u16 block (off + 2);
          size = Util.Bytesio.get_int64_as_int block (off + 8);
          nextents = Util.Bytesio.get_u16 block (off + 16);
          inline = Array.init inline_extents (fun i -> get_extent block (off + 20 + (i * 12)));
          leaves =
            Array.init leaf_ptrs (fun i ->
                Util.Bytesio.get_u32 block (off + 20 + (inline_extents * 12) + (i * 4)));
        }

(* Extent leaf blocks: u32 count, then packed extents. *)
let put_leaf_count b n = Util.Bytesio.set_u32 b 0 n
let get_leaf_count b = Util.Bytesio.get_u32 b 0
let put_leaf_extent b i e = put_extent b (8 + (i * 12)) e
let get_leaf_extent b i = get_extent b (8 + (i * 12))

(* Directory entries: same fixed 64-byte records as the xv6 build (a
   simplification of ext4's variable-length dirents; see DESIGN.md). *)
let dirent_size = 64
let max_name = dirent_size - 4 - 1
let dirents_per_block = block_size / dirent_size

let put_dirent block ~slot ~ino ~name =
  if String.length name > max_name then invalid_arg "ext4 put_dirent";
  let off = slot * dirent_size in
  Util.Bytesio.set_u32 block off ino;
  Util.Bytesio.set_string block ~off:(off + 4) ~width:(dirent_size - 4) name

let get_dirent block ~slot =
  let off = slot * dirent_size in
  let ino = Util.Bytesio.get_u32 block off in
  if ino = 0 then None
  else Some (ino, Util.Bytesio.get_string block ~off:(off + 4) ~width:(dirent_size - 4))

(* Journal block tags. *)
let j_descriptor = 0xD
let j_commit = 0xC

(* Journal superblock (first journal block): sequence + tail offset. *)
let put_jsb b ~sequence ~tail =
  Bytes.fill b 0 (Bytes.length b) '\000';
  Util.Bytesio.set_u32 b 0 0x4A53;
  Util.Bytesio.set_u64 b 8 (Int64.of_int sequence);
  Util.Bytesio.set_u32 b 16 tail

let get_jsb b =
  if Util.Bytesio.get_u32 b 0 <> 0x4A53 then None
  else
    Some
      ( Int64.to_int (Util.Bytesio.get_u64 b 8),
        Util.Bytesio.get_u32 b 16 )

(* Descriptor block: tag, sequence, count, checksum, then target block
   numbers. *)
let desc_max_targets = (block_size - 32) / 4

let put_descriptor b ~sequence ~count ~checksum ~targets =
  Bytes.fill b 0 (Bytes.length b) '\000';
  Util.Bytesio.set_u32 b 0 j_descriptor;
  Util.Bytesio.set_u64 b 8 (Int64.of_int sequence);
  Util.Bytesio.set_u32 b 16 count;
  Util.Bytesio.set_u64 b 24 checksum;
  Array.iteri (fun i t -> Util.Bytesio.set_u32 b (32 + (i * 4)) t) targets

let get_descriptor b =
  if Util.Bytesio.get_u32 b 0 <> j_descriptor then None
  else begin
    let sequence = Int64.to_int (Util.Bytesio.get_u64 b 8) in
    let count = Util.Bytesio.get_u32 b 16 in
    if count > desc_max_targets then None
    else
      Some
        ( sequence,
          Util.Bytesio.get_u64 b 24,
          Array.init count (fun i -> Util.Bytesio.get_u32 b (32 + (i * 4))) )
  end

let put_commit b ~sequence =
  Bytes.fill b 0 (Bytes.length b) '\000';
  Util.Bytesio.set_u32 b 0 j_commit;
  Util.Bytesio.set_u64 b 8 (Int64.of_int sequence)

let get_commit b =
  if Util.Bytesio.get_u32 b 0 <> j_commit then None
  else Some (Int64.to_int (Util.Bytesio.get_u64 b 8))

(** Same sampled FNV checksum as the xv6 log. *)
(* FNV-1a over every word: a sparse sample can collide with a stale log
   slot left by a previous transaction (see Xv6fs.Layout.checksum_blocks). *)
let checksum_blocks (blocks : Bytes.t list) =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.logxor !h v;
    h := Int64.mul !h 0x100000001b3L
  in
  List.iter
    (fun b ->
      let len = Bytes.length b in
      mix (Int64.of_int len);
      let off = ref 0 in
      while !off + 8 <= len do
        mix (Bytes.get_int64_le b !off);
        off := !off + 8
      done)
    blocks;
  !h

(** Compute a layout: carve a journal then as many full groups as fit. *)
let compute ~size ~group_size ~inodes_per_group ~journal_len =
  if size < 1024 then invalid_arg "ext4 layout: device too small";
  let journal_start = 3 in
  let first_group_block = journal_start + journal_len in
  let ngroups = (size - first_group_block) / group_size in
  if ngroups < 1 then invalid_arg "ext4 layout: no room for groups";
  {
    total_blocks = size;
    ngroups;
    group_size;
    inodes_per_group;
    journal_start;
    journal_len;
    first_group_block;
  }
