(** JBD2-style journal in data-journal mode.

    The structural difference from the xv6 log — and the reason ext4 wins
    the paper's macrobenchmarks — is *lazy checkpointing*: a commit is one
    sequential journal write plus a single FLUSH (the commit record carries
    a checksum, so no barrier is needed between data and commit block);
    installing blocks home happens later in bulk. Simplifications vs. real
    jbd2 are documented in DESIGN.md. *)

type t = {
  machine : Kernel.Machine.t;
  bc : Kernel.Bcache.t;
  jsb_block : int;
  area_start : int;
  capacity : int;
  lock : Sim.Sync.Mutex.t;
  cond : Sim.Sync.Condvar.t;
  mutable sequence : int;
  mutable seq_done : int;
  mutable head : int;
  mutable handles : int;
  mutable committing : bool;
  mutable force_waiters : int;
  running : (int, Bytes.t) Hashtbl.t;
  mutable running_order : int list;
  mutable checkpoint_queue : (int * Bytes.t) list list;
  mutable cp_blocks : int;
  mutable commits : int;
  mutable checkpoints : int;
  mutable active : bool;
  commit_interval : int64;
}

val handle_max_blocks : int
(** Per-handle block reservation; callers chunk larger work. *)

val create :
  ?commit_interval:int64 ->
  Kernel.Machine.t ->
  Kernel.Bcache.t ->
  jstart:int ->
  jlen:int ->
  t

val handle_start : t -> unit
(** journal_start: reserve space in the running transaction; may trigger a
    pressure commit. *)

val handle_stop : t -> unit
(** journal_stop — deliberately does NOT commit: the running transaction
    keeps absorbing operations (group commit). *)

val with_handle : t -> (unit -> 'a) -> 'a

val journal_write : t -> Kernel.Bcache.buf -> unit
(** Record a modified buffer in the running transaction (data=journal: file
    data takes this path too). Pins the buffer until checkpointed. *)

val force_commit : t -> unit
(** Commit the running transaction durably (the fsync path). *)

val shutdown : t -> unit
(** Commit + checkpoint everything; stops the kjournald loop. *)

val start_kjournald : t -> unit
(** The periodic-commit fiber (every [commit_interval]). *)

val recover : t -> unit
(** Mount-time replay: walk the journal area, verify per-transaction
    checksums (multi-descriptor transactions supported), install committed
    transactions in order, reset the journal. *)
