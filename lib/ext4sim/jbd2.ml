(** JBD2-style journal, run in data-journal mode.

    The structural difference from the xv6 log — and the reason ext4 wins
    the paper's macrobenchmarks by 33 %–3.2× — is *lazy checkpointing*: a
    commit is one sequential write into the journal area plus a single
    FLUSH (the commit record carries a checksum, so no flush is needed
    between data and commit block). Installing blocks to their home
    locations happens later, in bulk, when the journal fills or the file
    system unmounts. The xv6 log instead installs synchronously inside
    every commit and pays two flushes.

    Simplification vs. real jbd2 (documented in DESIGN.md): the journal
    area is used linearly and checkpointed wholesale when it fills, rather
    than as a circular buffer with incremental tail advance. Recovery
    semantics are the same: scan, verify checksums, replay committed
    transactions in order. *)

type t = {
  machine : Kernel.Machine.t;
  bc : Kernel.Bcache.t;
  jsb_block : int;
  area_start : int;  (** first journal data block *)
  capacity : int;  (** journal data blocks *)
  lock : Sim.Sync.Mutex.t;
  cond : Sim.Sync.Condvar.t;
  mutable sequence : int;  (** id of the running (accumulating) transaction *)
  mutable seq_done : int;  (** highest transaction made durable *)
  mutable head : int;  (** next free offset within the area *)
  mutable handles : int;
  mutable committing : bool;
  mutable force_waiters : int;
      (** forcers draining running handles to cut a commit; while nonzero
          (and no commit is running) new handles wait so the drain
          terminates under load *)
  running : (int, Bytes.t) Hashtbl.t;  (** target block -> data copy *)
  mutable running_order : int list;  (** reverse order *)
  mutable checkpoint_queue : (int * Bytes.t) list list;  (** oldest first *)
  mutable cp_blocks : int;
  mutable commits : int;
  mutable checkpoints : int;
  mutable active : bool;
  commit_interval : int64;
}

let handle_max_blocks = 64
let bsize = Layout4.block_size

let create ?(commit_interval = Sim.Time.sec 5) machine bc ~jstart ~jlen =
  let t =
    {
      machine;
      bc;
      jsb_block = jstart;
      area_start = jstart + 1;
      capacity = jlen - 1;
      lock = Sim.Sync.Mutex.create ~name:"jbd2" ();
      cond = Sim.Sync.Condvar.create ();
      sequence = 1;
      seq_done = 0;
      head = 0;
      handles = 0;
      committing = false;
      force_waiters = 0;
      running = Hashtbl.create 256;
      running_order = [];
      checkpoint_queue = [];
      cp_blocks = 0;
      commits = 0;
      checkpoints = 0;
      active = true;
      commit_interval;
    }
  in
  Kernel.Machine.register_inspector machine ~name:"jbd2" (fun () ->
      Util.Json.Obj
        [
          ("capacity", Util.Json.Int t.capacity);
          ("free_blocks", Util.Json.Int (t.capacity - t.head));
          ("running_blocks", Util.Json.Int (Hashtbl.length t.running));
          ("checkpoint_blocks", Util.Json.Int t.cp_blocks);
          ("handles", Util.Json.Int t.handles);
          ("commits", Util.Json.Int t.commits);
          ("checkpoints", Util.Json.Int t.checkpoints);
        ]);
  t

let write_jsb t =
  let b = Kernel.Bcache.getblk t.bc t.jsb_block in
  Layout4.put_jsb b.Kernel.Bcache.data ~sequence:t.sequence ~tail:0;
  Kernel.Bcache.bwrite t.bc b;
  Kernel.Bcache.brelse t.bc b

(* Install every committed-but-not-checkpointed transaction to its home
   location, flush, and reset the journal area. Called with the lock held
   (drops it for the I/O). *)
let checkpoint_all_locked t =
  if t.checkpoint_queue <> [] then begin
    let txs = t.checkpoint_queue in
    t.checkpoint_queue <- [];
    t.cp_blocks <- 0;
    Sim.Sync.Mutex.unlock t.lock;
    t.checkpoints <- t.checkpoints + 1;
    (* newest committed data wins: dedupe by target, install straight to
       the device — the cached buffer may hold newer uncommitted contents
       that must not be overwritten or flushed home early *)
    let final = Hashtbl.create 256 in
    List.iter (fun tx -> List.iter (fun (tgt, data) -> Hashtbl.replace final tgt data) tx) txs;
    let targets = Hashtbl.fold (fun tgt data acc -> (tgt, data) :: acc) final [] in
    Kernel.Machine.with_layer t.machine "log" (fun () ->
        (* scatter-install through the bio layer: adjacent targets merge
           into contiguous commands, distinct runs go out concurrently *)
        Kernel.Bcache.raw_write_scatter t.bc targets;
        Kernel.Bcache.flush t.bc);
    (* release the eviction pins, one per (transaction, block) occurrence *)
    List.iter
      (fun tx -> List.iter (fun (tgt, _) -> Kernel.Bcache.bunpin_block t.bc tgt) tx)
      txs;
    Sim.Sync.Mutex.lock t.lock;
    t.head <- 0;
    Sim.Trace.counter
      (Kernel.Machine.tracer t.machine)
      ~cat:"fs" "jbd2:free_blocks"
      (Int64.of_int (t.capacity - t.head));
    write_jsb t
  end

(* Commit the running transaction: descriptor + data + commit record,
   sequentially into the journal area, then one flush. Lock held on entry
   and exit; dropped during I/O. Group commit: the running transaction is
   snapshotted and reset *before* the lock is dropped, so new handles
   join a fresh running transaction during the commit I/O instead of
   convoying on the journal lock. *)
let commit_locked t =
  if t.running_order <> [] then begin
    t.committing <- true;
    let order = List.rev t.running_order in
    let datas = List.map (Hashtbl.find t.running) order in
    Hashtbl.reset t.running;
    t.running_order <- [];
    let n = List.length order in
    (* a transaction larger than one descriptor's target list spans
       several descriptor blocks (as in real jbd2) *)
    let ndesc = (n + Layout4.desc_max_targets - 1) / Layout4.desc_max_targets in
    let needed = n + ndesc + 1 in
    (* allocate the sequence number before [checkpoint_all_locked] can
       drop the lock, so a forcer arriving mid-checkpoint sees this
       transaction as the one in flight *)
    let seq = t.sequence in
    t.sequence <- seq + 1;
    if t.head + needed > t.capacity then checkpoint_all_locked t;
    let base = t.area_start + t.head in
    t.head <- t.head + needed;
    Sim.Trace.counter
      (Kernel.Machine.tracer t.machine)
      ~cat:"fs" "jbd2:free_blocks"
      (Int64.of_int (t.capacity - t.head));
    t.commits <- t.commits + 1;
    Kernel.Machine.incr t.machine "log_commits";
    Kernel.Machine.incr ~by:n t.machine "log_commit_blocks";
    (* waiters may now open handles against the fresh running tx *)
    Sim.Sync.Condvar.broadcast t.cond;
    Sim.Sync.Mutex.unlock t.lock;
    Kernel.Machine.with_layer t.machine "log" @@ fun () ->
    (* the first descriptor carries the checksum over ALL data blocks *)
    let checksum = Layout4.checksum_blocks datas in
    let bufs = ref [] in
    let pos = ref base in
    let rec emit_chunks chunk_idx order datas =
      match order with
      | [] -> ()
      | _ ->
          let rec take k acc_o acc_d o d =
            if k = 0 then (List.rev acc_o, List.rev acc_d, o, d)
            else
              match (o, d) with
              | [], [] -> (List.rev acc_o, List.rev acc_d, [], [])
              | x :: o', y :: d' -> take (k - 1) (x :: acc_o) (y :: acc_d) o' d'
              | _ -> assert false
          in
          let chunk_o, chunk_d, rest_o, rest_d =
            take Layout4.desc_max_targets [] [] order datas
          in
          let desc = Kernel.Bcache.getblk t.bc !pos in
          Layout4.put_descriptor desc.Kernel.Bcache.data ~sequence:seq
            ~count:(List.length chunk_o)
            ~checksum:(if chunk_idx = 0 then checksum else 0L)
            ~targets:(Array.of_list chunk_o);
          incr pos;
          bufs := desc :: !bufs;
          List.iter
            (fun data ->
              let b = Kernel.Bcache.getblk t.bc !pos in
              Kernel.Machine.cpu_work t.machine
                (Kernel.Machine.cost t.machine).Kernel.Cost.log_copy_per_block;
              Bytes.blit data 0 b.Kernel.Bcache.data 0 bsize;
              incr pos;
              bufs := b :: !bufs)
            chunk_d;
          emit_chunks (chunk_idx + 1) rest_o rest_d
    in
    emit_chunks 0 order datas;
    let commit_b = Kernel.Bcache.getblk t.bc !pos in
    Layout4.put_commit commit_b.Kernel.Bcache.data ~sequence:seq;
    bufs := commit_b :: !bufs;
    (* one contiguous sequential write, then a single flush: the jbd2
       checksummed-commit fast path *)
    Kernel.Bcache.bwrite_contig t.bc (List.rev !bufs);
    List.iter (fun b -> Kernel.Bcache.brelse t.bc b) (List.rev !bufs);
    Kernel.Bcache.flush t.bc;
    Sim.Sync.Mutex.lock t.lock;
    t.checkpoint_queue <- t.checkpoint_queue @ [ List.combine order datas ];
    t.cp_blocks <- t.cp_blocks + n;
    t.seq_done <- seq;
    t.committing <- false;
    Sim.Sync.Condvar.broadcast t.cond
  end

(** Open a handle (journal_start): reserves space in the running tx. A
    commit in flight does not block new handles — they join the fresh
    running transaction (group commit). *)
let handle_start t =
  Sim.Sync.Mutex.lock t.lock;
  let rec wait () =
    if t.force_waiters > 0 && not t.committing then begin
      (* an fsync is draining running handles to cut a commit; joining
         now would push the drain out indefinitely under load *)
      Sim.Sync.Condvar.wait t.cond t.lock;
      wait ()
    end
    else if
      Hashtbl.length t.running + ((t.handles + 1) * handle_max_blocks)
      > t.capacity - 64 (* margin for descriptor blocks + commit record *)
    then
      if t.handles = 0 && not t.committing then begin
        commit_locked t;
        wait ()
      end
      else begin
        Sim.Sync.Condvar.wait t.cond t.lock;
        wait ()
      end
    else t.handles <- t.handles + 1
  in
  wait ();
  Sim.Sync.Mutex.unlock t.lock

(** Close a handle (journal_stop). No eager commit: the running tx keeps
    absorbing operations until the timer, an fsync, or pressure. *)
let handle_stop t =
  Sim.Sync.Mutex.lock t.lock;
  t.handles <- t.handles - 1;
  Sim.Sync.Condvar.broadcast t.cond;
  Sim.Sync.Mutex.unlock t.lock

let with_handle t f =
  handle_start t;
  match f () with
  | v ->
      handle_stop t;
      v
  | exception exn ->
      handle_stop t;
      raise exn

(** Record a modified buffer in the running transaction (data=journal:
    file data takes this path too). *)
let journal_write t (buf : Kernel.Bcache.buf) =
  Sim.Sync.Mutex.lock t.lock;
  if t.handles < 1 then begin
    Sim.Sync.Mutex.unlock t.lock;
    invalid_arg "jbd2: journal_write without a handle"
  end;
  let blk = buf.Kernel.Bcache.block in
  Kernel.Machine.cpu_work t.machine
    (Kernel.Machine.cost t.machine).Kernel.Cost.log_copy_per_block;
  if not (Hashtbl.mem t.running blk) then begin
    t.running_order <- blk :: t.running_order;
    (* pin until this transaction is checkpointed, so an eviction cannot
       expose stale on-device contents to a later read *)
    Kernel.Bcache.bpin t.bc buf
  end;
  Hashtbl.replace t.running blk (Bytes.copy buf.Kernel.Bcache.data);
  Sim.Sync.Mutex.unlock t.lock

(** Commit the running transaction and make it durable (fsync path) — the
    group-commit path. The forcer computes the youngest transaction that
    can hold its data; once that transaction is durable it returns,
    whether it drove the commit itself, rode on one already in flight, or
    found a concurrent forcer had covered it (then it never touches the
    device: jbd2 commits always flush). *)
let force_commit t =
  Sim.Sync.Mutex.lock t.lock;
  let target =
    if t.running_order <> [] then t.sequence
    else if t.committing then t.sequence - 1
    else t.seq_done
  in
  if t.seq_done >= target then begin
    Sim.Sync.Mutex.unlock t.lock;
    (* Nothing running and nothing in flight: barrier for stray volatile
       writes (e.g. the journal superblock). *)
    Kernel.Bcache.flush t.bc
  end
  else begin
    t.force_waiters <- t.force_waiters + 1;
    let rec drive () =
      if t.seq_done < target then
        if t.committing || t.handles > 0 then begin
          Sim.Sync.Condvar.wait t.cond t.lock;
          drive ()
        end
        else begin
          commit_locked t;
          drive ()
        end
    in
    drive ();
    t.force_waiters <- t.force_waiters - 1;
    if t.force_waiters = 0 then Sim.Sync.Condvar.broadcast t.cond;
    Sim.Sync.Mutex.unlock t.lock
  end

(** Flush everything including checkpoints (unmount). *)
let shutdown t =
  force_commit t;
  Sim.Sync.Mutex.lock t.lock;
  checkpoint_all_locked t;
  t.active <- false;
  Sim.Sync.Mutex.unlock t.lock;
  Kernel.Bcache.flush t.bc

(** The kjournald fiber: periodic commits of the running transaction. *)
let start_kjournald t =
  Kernel.Machine.spawn ~name:"kjournald" t.machine (fun () ->
      let rec loop () =
        if t.active then begin
          Sim.Engine.sleep t.commit_interval;
          if t.active then begin
            Sim.Sync.Mutex.lock t.lock;
            let rec wait () =
              if t.committing || t.handles > 0 then begin
                Sim.Sync.Condvar.wait t.cond t.lock;
                wait ()
              end
            in
            wait ();
            if t.running_order <> [] then commit_locked t;
            Sim.Sync.Mutex.unlock t.lock;
            loop ()
          end
        end
      in
      loop ())

(** Mount-time recovery: replay committed transactions found in the
    journal area, verifying the commit checksum. *)
let recover t =
  let read blk =
    let b = Kernel.Bcache.bread t.bc blk in
    let d = Bytes.copy b.Kernel.Bcache.data in
    Kernel.Bcache.brelse t.bc b;
    d
  in
  let jsb = read t.jsb_block in
  (match Layout4.get_jsb jsb with
  | None -> () (* fresh/corrupt journal superblock: nothing to replay *)
  | Some (seq0, _tail) ->
      (* Parse one transaction starting at [off]: one or more descriptor
         chunks with the same sequence, then a commit record. Returns the
         offset after the transaction when it is fully valid. *)
      let parse_tx off expect_seq =
        let rec chunks off tx_seq acc_targets acc_datas checksum0 =
          if off + 1 > t.capacity then None
          else begin
            let blkdata = read (t.area_start + off) in
            match Layout4.get_descriptor blkdata with
            | Some (dseq, checksum, targets)
              when (tx_seq = None && dseq >= expect_seq)
                   || tx_seq = Some dseq ->
                let n = Array.length targets in
                if off + n + 1 > t.capacity then None
                else begin
                  let datas =
                    List.init n (fun i -> read (t.area_start + off + 1 + i))
                  in
                  chunks (off + n + 1) (Some dseq)
                    (acc_targets @ Array.to_list targets)
                    (acc_datas @ datas)
                    (if tx_seq = None then checksum else checksum0)
                end
            | _ -> (
                match tx_seq with
                | None -> None
                | Some dseq -> (
                    match Layout4.get_commit blkdata with
                    | Some cseq
                      when cseq = dseq
                           && Int64.equal
                                (Layout4.checksum_blocks acc_datas)
                                checksum0 ->
                        Some (cseq, acc_targets, acc_datas, off + 1)
                    | _ -> None))
          end
        in
        chunks off None [] [] 0L
      in
      let rec scan off seq =
        match parse_tx off seq with
        | None -> seq
        | Some (cseq, targets, datas, next_off) when cseq >= seq0 ->
            let homes =
              List.map2
                (fun tgt data ->
                  let home = Kernel.Bcache.getblk t.bc tgt in
                  Bytes.blit data 0 home.Kernel.Bcache.data 0 bsize;
                  home)
                targets datas
            in
            Kernel.Bcache.bwrite_scatter t.bc homes;
            List.iter (fun b -> Kernel.Bcache.brelse t.bc b) homes;
            scan next_off (cseq + 1)
        | Some _ -> seq
      in
      let final_seq = scan 0 seq0 in
      if final_seq > seq0 then
        Kernel.Printk.info t.machine "jbd2: replayed %d transaction(s)"
          (final_seq - seq0);
      t.sequence <- max t.sequence final_seq;
      (* everything before the running transaction is on disk *)
      t.seq_done <- t.sequence - 1;
      Kernel.Bcache.flush t.bc);
  t.head <- 0;
  Sim.Sync.Mutex.lock t.lock;
  write_jsb t;
  Sim.Sync.Mutex.unlock t.lock;
  Kernel.Bcache.flush t.bc
