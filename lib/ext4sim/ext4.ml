(** The simplified ext4, mounted with data=journal like the paper's
    comparator (§6): block groups, extent-mapped files, and the JBD2-style
    journal from [Jbd2]. A native kernel file system: registers VFS ops
    directly and uses the kernel buffer cache. *)

module L = Layout4

type 'a res = ('a, Kernel.Errno.t) result

let ( let* ) (r : 'a res) f : 'b res = match r with Ok v -> f v | Error _ as e -> e

let bsize = L.block_size

type inode4 = {
  ino : int;
  ilock : Sim.Sync.Mutex.t;
  mutable valid : bool;
  mutable kind : L.kind4;
  mutable nlink : int;
  mutable size : int;
  mutable extents : L.extent list;  (** sorted by logical *)
  mutable leaves : int array;  (** owned on-disk leaf blocks *)
  mutable refcount : int;
  mutable nopen : int;
}

type fs = {
  machine : Kernel.Machine.t;
  bc : Kernel.Bcache.t;
  sb : L.superblock;
  journal : Jbd2.t;
  icache : (int, inode4) Hashtbl.t;
  icache_lock : Sim.Sync.Mutex.t;
  alloc_lock : Sim.Sync.Mutex.t;
  rename_lock : Sim.Sync.Mutex.t;
  group_free_blocks : int array;
  group_free_inodes : int array;
  group_block_rotor : int array;  (** next bit to try per group *)
  group_inode_rotor : int array;
  mutable free_blocks : int;
  mutable free_inodes : int;
}

let cpu fs ns = Kernel.Machine.cpu_work fs.machine ns
let costs fs = Kernel.Machine.cost fs.machine

(* ------------------------------------------------------------------ *)
(* Bitmap helpers (shared little-endian bit order with the xv6 build).  *)

let bit_get data bit = Char.code (Bytes.get data (bit / 8)) land (1 lsl (bit mod 8)) <> 0

let bit_set data bit v =
  let byte = Char.code (Bytes.get data (bit / 8)) in
  let mask = 1 lsl (bit mod 8) in
  Bytes.set data (bit / 8) (Char.chr (if v then byte lor mask else byte land lnot mask))

(* ------------------------------------------------------------------ *)
(* Block allocation: first-fit contiguous runs inside a goal group,
   falling over to later groups (a light version of ext4's allocator;
   combined with allocate-on-writeback this gives the delayed-allocation
   contiguity the paper's comparator enjoys).                           *)

let group_data_bits fs g =
  let data_start = L.group_data_start fs.sb g in
  let gstart = L.group_start fs.sb g in
  let gend = min (gstart + fs.sb.L.group_size) fs.sb.L.total_blocks in
  (data_start - gstart, gend - gstart)

(* Allocate up to [want] contiguous blocks; returns an extent. Inside a
   journal handle. *)
let alloc_extent fs ~goal_group ~want : L.extent res =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let want = max 1 (min want L.max_extent_len) in
  let ngroups = fs.sb.L.ngroups in
  let rec try_group i =
    if i >= ngroups then begin
      Sim.Sync.Mutex.unlock fs.alloc_lock;
      Error Kernel.Errno.ENOSPC
    end
    else begin
      let g = (goal_group + i) mod ngroups in
      if fs.group_free_blocks.(g) = 0 then try_group (i + 1)
      else begin
        let bmb = Kernel.Bcache.bread fs.bc (L.group_block_bitmap fs.sb g) in
        let data = bmb.Kernel.Bcache.data in
        let lo, hi = group_data_bits fs g in
        cpu fs (costs fs).Kernel.Cost.block_alloc;
        (* find first free bit, then extend the run *)
        let rec find bit =
          if bit >= hi then None
          else if not (bit_get data bit) then begin
            let run = ref 1 in
            while
              !run < want && bit + !run < hi && not (bit_get data (bit + !run))
            do
              incr run
            done;
            Some (bit, !run)
          end
          else find (bit + 1)
        in
        (* rotor: resume where the last allocation in this group stopped,
           falling back to a full scan only if the tail is exhausted *)
        let start = max lo fs.group_block_rotor.(g) in
        let found =
          match find start with None when start > lo -> find lo | r -> r
        in
        match found with
        | None ->
            Kernel.Bcache.brelse fs.bc bmb;
            try_group (i + 1)
        | Some (bit, run) ->
            for j = 0 to run - 1 do
              bit_set data (bit + j) true
            done;
            fs.group_block_rotor.(g) <- bit + run;
            Jbd2.journal_write fs.journal bmb;
            Kernel.Bcache.brelse fs.bc bmb;
            fs.group_free_blocks.(g) <- fs.group_free_blocks.(g) - run;
            fs.free_blocks <- fs.free_blocks - run;
            Sim.Sync.Mutex.unlock fs.alloc_lock;
            Ok { L.e_logical = 0; e_physical = L.group_start fs.sb g + bit; e_len = run }
      end
    end
  in
  try_group 0

(* Free [len] blocks starting at [phys] (inside a handle). *)
let free_run fs ~phys ~len =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let remaining = ref len in
  let p = ref phys in
  while !remaining > 0 do
    let g = L.group_of_block fs.sb !p in
    let gstart = L.group_start fs.sb g in
    let in_group = min !remaining (gstart + fs.sb.L.group_size - !p) in
    let bmb = Kernel.Bcache.bread fs.bc (L.group_block_bitmap fs.sb g) in
    for j = 0 to in_group - 1 do
      let bit = !p + j - gstart in
      if not (bit_get bmb.Kernel.Bcache.data bit) then begin
        Kernel.Bcache.brelse fs.bc bmb;
        Sim.Sync.Mutex.unlock fs.alloc_lock;
        failwith "ext4: double free"
      end;
      bit_set bmb.Kernel.Bcache.data bit false
    done;
    Jbd2.journal_write fs.journal bmb;
    Kernel.Bcache.brelse fs.bc bmb;
    fs.group_free_blocks.(g) <- fs.group_free_blocks.(g) + in_group;
    fs.free_blocks <- fs.free_blocks + in_group;
    let first_bit = !p - gstart in
    if first_bit < fs.group_block_rotor.(g) then
      fs.group_block_rotor.(g) <- first_bit;
    p := !p + in_group;
    remaining := !remaining - in_group
  done;
  Sim.Sync.Mutex.unlock fs.alloc_lock

(* ------------------------------------------------------------------ *)
(* Inode allocation (Orlov-lite: directories spread to the freest group,
   files near their parent).                                            *)

let ialloc fs ~goal_group kind : int res =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let ngroups = fs.sb.L.ngroups in
  let goal =
    if kind = L.K_dir then begin
      (* freest group *)
      let best = ref 0 in
      Array.iteri
        (fun g free -> if free > fs.group_free_inodes.(!best) then best := g)
        fs.group_free_inodes;
      ignore (Array.length fs.group_free_inodes);
      !best
    end
    else goal_group
  in
  let rec try_group i =
    if i >= ngroups then begin
      Sim.Sync.Mutex.unlock fs.alloc_lock;
      Error Kernel.Errno.ENOSPC
    end
    else begin
      let g = (goal + i) mod ngroups in
      if fs.group_free_inodes.(g) = 0 then try_group (i + 1)
      else begin
        let bmb = Kernel.Bcache.bread fs.bc (L.group_inode_bitmap fs.sb g) in
        cpu fs (costs fs).Kernel.Cost.block_alloc;
        let ipg = fs.sb.L.inodes_per_group in
        let rec find bit =
          if bit >= ipg then None
          else if not (bit_get bmb.Kernel.Bcache.data bit) then Some bit
          else find (bit + 1)
        in
        let start = min fs.group_inode_rotor.(g) (ipg - 1) in
        let found =
          match find start with None when start > 0 -> find 0 | r -> r
        in
        match found with
        | None ->
            Kernel.Bcache.brelse fs.bc bmb;
            try_group (i + 1)
        | Some bit ->
            bit_set bmb.Kernel.Bcache.data bit true;
            fs.group_inode_rotor.(g) <- bit + 1;
            Jbd2.journal_write fs.journal bmb;
            Kernel.Bcache.brelse fs.bc bmb;
            fs.group_free_inodes.(g) <- fs.group_free_inodes.(g) - 1;
            fs.free_inodes <- fs.free_inodes - 1;
            Sim.Sync.Mutex.unlock fs.alloc_lock;
            Ok ((g * ipg) + bit + 1)
      end
    end
  in
  try_group 0

let ifree_mark fs ino =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let g = L.group_of_ino fs.sb ino in
  let bmb = Kernel.Bcache.bread fs.bc (L.group_inode_bitmap fs.sb g) in
  bit_set bmb.Kernel.Bcache.data (L.index_in_group fs.sb ino) false;
  Jbd2.journal_write fs.journal bmb;
  Kernel.Bcache.brelse fs.bc bmb;
  fs.group_free_inodes.(g) <- fs.group_free_inodes.(g) + 1;
  fs.free_inodes <- fs.free_inodes + 1;
  let bit = L.index_in_group fs.sb ino in
  if bit < fs.group_inode_rotor.(g) then fs.group_inode_rotor.(g) <- bit;
  Sim.Sync.Mutex.unlock fs.alloc_lock

(* ------------------------------------------------------------------ *)
(* In-core inodes.                                                      *)

let iget fs ino =
  Sim.Sync.Mutex.lock fs.icache_lock;
  let ip =
    match Hashtbl.find_opt fs.icache ino with
    | Some ip ->
        ip.refcount <- ip.refcount + 1;
        ip
    | None ->
        let ip =
          {
            ino;
            ilock = Sim.Sync.Mutex.create ();
            valid = false;
            kind = L.K_free;
            nlink = 0;
            size = 0;
            extents = [];
            leaves = Array.make L.leaf_ptrs 0;
            refcount = 1;
            nopen = 0;
          }
        in
        Hashtbl.add fs.icache ino ip;
        ip
  in
  Sim.Sync.Mutex.unlock fs.icache_lock;
  ip

let load_extents fs (d : L.dinode) : L.extent list * int array =
  let inline = Array.to_list (Array.sub d.L.inline 0 (min d.L.nextents L.inline_extents)) in
  let rest = ref [] in
  let remaining = ref (d.L.nextents - L.inline_extents) in
  Array.iter
    (fun leaf ->
      if leaf <> 0 && !remaining > 0 then begin
        let b = Kernel.Bcache.bread fs.bc leaf in
        let n = min (L.get_leaf_count b.Kernel.Bcache.data) !remaining in
        for i = 0 to n - 1 do
          rest := L.get_leaf_extent b.Kernel.Bcache.data i :: !rest
        done;
        remaining := !remaining - n;
        Kernel.Bcache.brelse fs.bc b
      end)
    d.L.leaves;
  (inline @ List.rev !rest, Array.copy d.L.leaves)

let ilock fs ip =
  Sim.Sync.Mutex.lock ip.ilock;
  if not ip.valid then begin
    let b = Kernel.Bcache.bread fs.bc (L.inode_block fs.sb ip.ino) in
    (match L.get_dinode b.Kernel.Bcache.data ~slot:(L.inode_slot fs.sb ip.ino) with
    | Ok d ->
        Kernel.Bcache.brelse fs.bc b;
        ip.kind <- d.L.kind;
        ip.nlink <- d.L.nlink;
        ip.size <- d.L.size;
        let exts, leaves = load_extents fs d in
        ip.extents <- exts;
        ip.leaves <- leaves
    | Error msg ->
        Kernel.Bcache.brelse fs.bc b;
        failwith ("ext4: corrupt inode: " ^ msg));
    ip.valid <- true
  end

let iunlock ip = Sim.Sync.Mutex.unlock ip.ilock

(* Persist inode + extent leaves (inside a handle, ilock held). *)
let iupdate fs ip : unit res =
  let exts = Array.of_list ip.extents in
  let n = Array.length exts in
  let inline = Array.make L.inline_extents { L.e_logical = 0; e_physical = 0; e_len = 0 } in
  for i = 0 to min n L.inline_extents - 1 do
    inline.(i) <- exts.(i)
  done;
  (* how many leaves do we need? *)
  let overflow = max 0 (n - L.inline_extents) in
  let nleaves = (overflow + L.extents_per_leaf - 1) / L.extents_per_leaf in
  if nleaves > L.leaf_ptrs then Error Kernel.Errno.EFBIG
  else begin
    (* allocate / free leaf blocks as the count changes *)
    let r = ref (Ok ()) in
    for li = 0 to L.leaf_ptrs - 1 do
      match !r with
      | Error _ -> ()
      | Ok () ->
          if li < nleaves && ip.leaves.(li) = 0 then begin
            match
              alloc_extent fs ~goal_group:(L.group_of_ino fs.sb ip.ino) ~want:1
            with
            | Ok e -> ip.leaves.(li) <- e.L.e_physical
            | Error e -> r := Error e
          end
          else if li >= nleaves && ip.leaves.(li) <> 0 then begin
            free_run fs ~phys:ip.leaves.(li) ~len:1;
            ip.leaves.(li) <- 0
          end
    done;
    let* () = !r in
    (* write leaves *)
    for li = 0 to nleaves - 1 do
      let b = Kernel.Bcache.getblk fs.bc ip.leaves.(li) in
      let base = L.inline_extents + (li * L.extents_per_leaf) in
      let count = min L.extents_per_leaf (n - base) in
      Bytes.fill b.Kernel.Bcache.data 0 bsize '\000';
      L.put_leaf_count b.Kernel.Bcache.data count;
      for i = 0 to count - 1 do
        L.put_leaf_extent b.Kernel.Bcache.data i exts.(base + i)
      done;
      Jbd2.journal_write fs.journal b;
      Kernel.Bcache.brelse fs.bc b
    done;
    (* write the inode itself *)
    let b = Kernel.Bcache.bread fs.bc (L.inode_block fs.sb ip.ino) in
    L.put_dinode b.Kernel.Bcache.data ~slot:(L.inode_slot fs.sb ip.ino)
      {
        L.kind = ip.kind;
        nlink = ip.nlink;
        size = ip.size;
        nextents = n;
        inline;
        leaves = ip.leaves;
      };
    Jbd2.journal_write fs.journal b;
    Kernel.Bcache.brelse fs.bc b;
    Ok ()
  end

(* Map logical block -> physical (0 if hole). *)
let lookup_block ip logical =
  let rec go = function
    | [] -> 0
    | e :: rest ->
        if logical >= e.L.e_logical && logical < e.L.e_logical + e.L.e_len then
          e.L.e_physical + (logical - e.L.e_logical)
        else go rest
  in
  go ip.extents

(* Append an extent mapping, merging with the last when contiguous. *)
let add_mapping ip (e : L.extent) =
  let rec go = function
    | [] -> [ e ]
    | [ last ] ->
        if
          last.L.e_logical + last.L.e_len = e.L.e_logical
          && last.L.e_physical + last.L.e_len = e.L.e_physical
        then [ { last with L.e_len = last.L.e_len + e.L.e_len } ]
        else [ last; e ]
    | x :: rest -> x :: go rest
  in
  ip.extents <- go ip.extents

(* Allocate mappings for logical blocks [from, from+count) (holes only),
   inside a handle. *)
let rec alloc_range fs ip ~from ~count : unit res =
  if count <= 0 then Ok ()
  else if lookup_block ip from <> 0 then alloc_range fs ip ~from:(from + 1) ~count:(count - 1)
  else begin
    (* length of the hole run *)
    let run = ref 1 in
    while !run < count && lookup_block ip (from + !run) = 0 do
      incr run
    done;
    let* e = alloc_extent fs ~goal_group:(L.group_of_ino fs.sb ip.ino) ~want:!run in
    add_mapping ip { e with L.e_logical = from };
    alloc_range fs ip ~from:(from + e.L.e_len) ~count:(count - e.L.e_len)
  end

(* ------------------------------------------------------------------ *)
(* File content.                                                        *)

let readi fs ip ~off ~len : Bytes.t res =
  let len = max 0 (min len (ip.size - off)) in
  if off < 0 then Error Kernel.Errno.EINVAL
  else if len = 0 then Ok Bytes.empty
  else begin
    let out = Bytes.create len in
    let rec go done_ =
      if done_ >= len then Ok out
      else begin
        let abs = off + done_ in
        let logical = abs / bsize in
        let boff = abs mod bsize in
        let n = min (bsize - boff) (len - done_) in
        let phys = lookup_block ip logical in
        if phys = 0 then Bytes.fill out done_ n '\000'
        else begin
          let b = Kernel.Bcache.bread fs.bc phys in
          Bytes.blit b.Kernel.Bcache.data boff out done_ n;
          Kernel.Bcache.brelse fs.bc b
        end;
        go (done_ + n)
      end
    in
    go 0
  end

(* Write inside the current handle; bounded by the handle reservation. *)
let writei_tx fs ip ~off data ~from ~len : unit res =
  let first = off / bsize in
  let last = (off + len - 1) / bsize in
  let* () = alloc_range fs ip ~from:first ~count:(last - first + 1) in
  let rec go done_ =
    if done_ >= len then Ok ()
    else begin
      let abs = off + done_ in
      let logical = abs / bsize in
      let boff = abs mod bsize in
      let n = min (bsize - boff) (len - done_) in
      let phys = lookup_block ip logical in
      assert (phys <> 0);
      (* a partial write may only skip the read when the whole block lies
         beyond EOF — a block straddling EOF still holds live data *)
      let block_start = abs - boff in
      let fresh = block_start >= ip.size in
      let b =
        if n = bsize || fresh then Kernel.Bcache.getblk fs.bc phys
        else Kernel.Bcache.bread fs.bc phys
      in
      if n <> bsize && fresh then
        Bytes.fill b.Kernel.Bcache.data 0 bsize '\000';
      Bytes.blit data (from + done_) b.Kernel.Bcache.data boff n;
      Jbd2.journal_write fs.journal b;
      Kernel.Bcache.brelse fs.bc b;
      go (done_ + n)
    end
  in
  let* () = go 0 in
  if off + len > ip.size then ip.size <- off + len;
  iupdate fs ip

let write_chunk_blocks = 32

let writei fs ip ~off data : int res =
  let len = Bytes.length data in
  if off < 0 then Error Kernel.Errno.EINVAL
  else if off + len > L.max_file_size then Error Kernel.Errno.EFBIG
  else if len = 0 then Ok 0
  else begin
    let chunk_bytes = write_chunk_blocks * bsize in
    let rec go done_ =
      if done_ >= len then Ok len
      else begin
        let abs = off + done_ in
        let room = chunk_bytes - (abs mod bsize) in
        let n = min room (len - done_) in
        let r =
          Jbd2.with_handle fs.journal (fun () ->
              ilock fs ip;
              let r = writei_tx fs ip ~off:abs data ~from:done_ ~len:n in
              iunlock ip;
              r)
        in
        match r with Ok () -> go (done_ + n) | Error _ as e -> e
      end
    in
    go 0
  end

(* Shrink the mapping to the first [keep] logical blocks, freeing the rest
   in bounded rounds (each its own handle). *)
let itrunc_to fs ip ~keep =
  let rec loop () =
    let more =
      Jbd2.with_handle fs.journal (fun () ->
          ilock fs ip;
          (* extents needing work: those reaching past [keep] *)
          let needs_work e = e.L.e_logical + e.L.e_len > keep in
          let rec split budget kept = function
            | [] -> (List.rev kept, false)
            | e :: rest when not (needs_work e) -> split budget (e :: kept) rest
            | e :: rest when budget = 0 ->
                (List.rev_append kept (e :: rest), true)
            | e :: rest ->
                if e.L.e_logical >= keep then begin
                  free_run fs ~phys:e.L.e_physical ~len:e.L.e_len;
                  split (budget - 1) kept rest
                end
                else begin
                  let keep_len = keep - e.L.e_logical in
                  free_run fs
                    ~phys:(e.L.e_physical + keep_len)
                    ~len:(e.L.e_len - keep_len);
                  split (budget - 1) ({ e with L.e_len = keep_len } :: kept) rest
                end
          in
          let exts, more = split 16 [] ip.extents in
          ip.extents <- exts;
          (match iupdate fs ip with Ok () -> () | Error _ -> ());
          iunlock ip;
          more)
    in
    if more then loop ()
  in
  loop ()

let itrunc_all fs ip =
  itrunc_to fs ip ~keep:0;
  Jbd2.with_handle fs.journal (fun () ->
      ilock fs ip;
      ip.size <- 0;
      (match iupdate fs ip with Ok () -> () | Error _ -> ());
      iunlock ip)

let iput fs ip =
  Sim.Sync.Mutex.lock fs.icache_lock;
  ip.refcount <- ip.refcount - 1;
  let free_now = ip.refcount = 0 && ip.valid && ip.nlink = 0 in
  if free_now then ip.refcount <- 1
  else if ip.refcount = 0 then Hashtbl.remove fs.icache ip.ino;
  Sim.Sync.Mutex.unlock fs.icache_lock;
  if free_now then begin
    itrunc_all fs ip;
    Jbd2.with_handle fs.journal (fun () ->
        ilock fs ip;
        ip.kind <- L.K_free;
        ip.size <- 0;
        (match iupdate fs ip with Ok () -> () | Error _ -> ());
        iunlock ip;
        ifree_mark fs ip.ino);
    Sim.Sync.Mutex.lock fs.icache_lock;
    ip.refcount <- ip.refcount - 1;
    if ip.refcount = 0 then Hashtbl.remove fs.icache ip.ino;
    Sim.Sync.Mutex.unlock fs.icache_lock
  end

(* ------------------------------------------------------------------ *)
(* Directories (fixed 64-byte dirents, linear scan).                    *)

let dirent_count ip = ip.size / L.dirent_size

let dirlookup fs dp name : (int * int) option res =
  if dp.kind <> L.K_dir then Error Kernel.Errno.ENOTDIR
  else begin
    let nblocks_ = (dp.size + bsize - 1) / bsize in
    let rec scan bi =
      if bi >= nblocks_ then Ok None
      else begin
        let phys = lookup_block dp bi in
        if phys = 0 then scan (bi + 1)
        else begin
          let b = Kernel.Bcache.bread fs.bc phys in
          let slots = min L.dirents_per_block (dirent_count dp - (bi * L.dirents_per_block)) in
          cpu fs (Int64.mul (Int64.of_int (max 1 slots)) (costs fs).Kernel.Cost.dirent_scan);
          let rec find s =
            if s >= slots then None
            else
              match L.get_dirent b.Kernel.Bcache.data ~slot:s with
              | Some (ino, n) when String.equal n name -> Some (ino, (bi * L.dirents_per_block) + s)
              | _ -> find (s + 1)
          in
          let hit = find 0 in
          Kernel.Bcache.brelse fs.bc b;
          match hit with Some h -> Ok (Some h) | None -> scan (bi + 1)
        end
      end
    in
    scan 0
  end

let dirlink fs dp ~name ~ino : unit res =
  if String.length name > L.max_name then Error Kernel.Errno.ENAMETOOLONG
  else if String.length name = 0 then Error Kernel.Errno.EINVAL
  else begin
    let total = dirent_count dp in
    let rec find_free s =
      if s >= total then Ok total
      else begin
        let bi = s / L.dirents_per_block in
        let phys = lookup_block dp bi in
        if phys = 0 then Ok s
        else begin
          let b = Kernel.Bcache.bread fs.bc phys in
          let hi = min L.dirents_per_block (total - (bi * L.dirents_per_block)) in
          cpu fs (Int64.mul (Int64.of_int (max 1 hi)) (costs fs).Kernel.Cost.dirent_scan);
          let rec f s' =
            if s' >= hi then None
            else if L.get_dirent b.Kernel.Bcache.data ~slot:s' = None then
              Some ((bi * L.dirents_per_block) + s')
            else f (s' + 1)
          in
          let hit = f (s mod L.dirents_per_block) in
          Kernel.Bcache.brelse fs.bc b;
          match hit with
          | Some slot -> Ok slot
          | None -> find_free ((bi + 1) * L.dirents_per_block)
        end
      end
    in
    let* slot = find_free 0 in
    let ent = Bytes.make L.dirent_size '\000' in
    L.put_dirent ent ~slot:0 ~ino ~name;
    writei_tx fs dp ~off:(slot * L.dirent_size) ~from:0 ~len:L.dirent_size ent
  end

let dirunlink fs dp ~slot : unit res =
  let zero = Bytes.make L.dirent_size '\000' in
  writei_tx fs dp ~off:(slot * L.dirent_size) ~from:0 ~len:L.dirent_size zero

let dir_is_empty fs ip : bool res =
  let total = dirent_count ip in
  let rec scan s =
    if s >= total then Ok true
    else begin
      let bi = s / L.dirents_per_block in
      let phys = lookup_block ip bi in
      if phys = 0 then scan ((bi + 1) * L.dirents_per_block)
      else begin
        let b = Kernel.Bcache.bread fs.bc phys in
        let hi = min L.dirents_per_block (total - (bi * L.dirents_per_block)) in
        let rec f s' =
          if s' >= hi then None
          else
            match L.get_dirent b.Kernel.Bcache.data ~slot:s' with
            | Some (_, n) when n <> "." && n <> ".." -> Some n
            | _ -> f (s' + 1)
        in
        let occ = f (s mod L.dirents_per_block) in
        Kernel.Bcache.brelse fs.bc b;
        match occ with Some _ -> Ok false | None -> scan ((bi + 1) * L.dirents_per_block)
      end
    end
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Stat helpers and entry creation (same call structure as the xv6
   builds, so the benchmarks compare journaling strategies, not call
   graphs).                                                             *)

let kind_to_vfs = function
  | L.K_dir -> Kernel.Vfs.Dir
  | L.K_file -> Kernel.Vfs.Reg
  | L.K_symlink -> Kernel.Vfs.Symlink
  | L.K_free -> Kernel.Vfs.Reg

let stat_of ip =
  {
    Kernel.Vfs.st_ino = ip.ino;
    st_kind = kind_to_vfs ip.kind;
    st_size = ip.size;
    st_nlink = ip.nlink;
  }

let stat_of_ino fs ino : Kernel.Vfs.stat res =
  if ino < 1 || ino > L.total_inodes fs.sb then Error Kernel.Errno.ESTALE
  else begin
    let ip = iget fs ino in
    ilock fs ip;
    let r = if ip.kind = L.K_free then Error Kernel.Errno.ESTALE else Ok (stat_of ip) in
    iunlock ip;
    iput fs ip;
    r
  end

let create_entry fs ~dir name kind : Kernel.Vfs.stat res =
  if String.length name > L.max_name then Error Kernel.Errno.ENAMETOOLONG
  else
    Jbd2.with_handle fs.journal (fun () ->
        let dp = iget fs dir in
        ilock fs dp;
        let finish r =
          iunlock dp;
          iput fs dp;
          r
        in
        if dp.kind <> L.K_dir then finish (Error Kernel.Errno.ENOTDIR)
        else if dp.nlink = 0 then finish (Error Kernel.Errno.ENOENT)
        else
          match dirlookup fs dp name with
          | Error _ as e -> finish e
          | Ok (Some _) -> finish (Error Kernel.Errno.EEXIST)
          | Ok None -> (
              match ialloc fs ~goal_group:(L.group_of_ino fs.sb dir) kind with
              | Error _ as e -> finish e
              | Ok ino ->
                  let ip = iget fs ino in
                  Sim.Sync.Mutex.lock ip.ilock;
                  ip.kind <- kind;
                  ip.nlink <- 1;
                  ip.size <- 0;
                  ip.extents <- [];
                  ip.leaves <- Array.make L.leaf_ptrs 0;
                  ip.valid <- true;
                  let r =
                    let* () = Result.map (fun _ -> ()) (iupdate fs ip) in
                    if kind = L.K_dir then begin
                      let* () = dirlink fs ip ~name:"." ~ino in
                      let* () = dirlink fs ip ~name:".." ~ino:dp.ino in
                      ip.nlink <- 2;
                      let* () = iupdate fs ip in
                      dp.nlink <- dp.nlink + 1;
                      iupdate fs dp
                    end
                    else Ok ()
                  in
                  let r =
                    match r with Error _ as e -> e | Ok () -> dirlink fs dp ~name ~ino
                  in
                  let out =
                    match r with
                    | Error _ as e ->
                        ip.nlink <- 0;
                        (match iupdate fs ip with _ -> ());
                        e
                    | Ok () -> Ok (stat_of ip)
                  in
                  iunlock ip;
                  iput fs ip;
                  finish out))

(* ------------------------------------------------------------------ *)
(* mkfs / mount.                                                        *)

let default_group_size = 32768
let default_inodes_per_group = 8192
let default_journal_len = 8192 (* 32 MB *)

let compute_layout machine =
  let size = Device.Ssd.nblocks (Kernel.Machine.disk machine) in
  let group_size = min default_group_size (max 2048 (size / 2)) in
  let journal_len = min default_journal_len (max 256 (size / 8)) in
  L.compute ~size ~group_size ~inodes_per_group:default_inodes_per_group
    ~journal_len

let mkfs machine : unit res =
  let bc = Kernel.Bcache.create machine in
  let sb = compute_layout machine in
  let put blk f =
    let b = Kernel.Bcache.getblk bc blk in
    Bytes.fill b.Kernel.Bcache.data 0 bsize '\000';
    f b.Kernel.Bcache.data;
    Kernel.Bcache.bwrite bc b;
    Kernel.Bcache.brelse bc b
  in
  put 1 (fun d -> L.put_superblock d sb);
  put sb.L.journal_start (fun d -> L.put_jsb d ~sequence:1 ~tail:0);
  (* group metadata *)
  for g = 0 to sb.L.ngroups - 1 do
    let meta_end = L.group_data_start sb g in
    put (L.group_block_bitmap sb g) (fun d ->
        (* mark the group's own metadata blocks used *)
        let gstart = L.group_start sb g in
        for blk = gstart to meta_end - 1 do
          bit_set d (blk - gstart) true
        done;
        (* mark bits beyond the device used *)
        let gend = gstart + sb.L.group_size in
        if gend > sb.L.total_blocks then
          for blk = sb.L.total_blocks to gend - 1 do
            bit_set d (blk - gstart) true
          done);
    put (L.group_inode_bitmap sb g) (fun _ -> ());
    for i = 0 to L.inode_table_blocks sb - 1 do
      put (L.group_inode_table sb g + i) (fun _ -> ())
    done
  done;
  (* root directory: ino 1 in group 0 *)
  let root_block =
    (* first data block of group 0 *)
    L.group_data_start sb 0
  in
  let b = Kernel.Bcache.bread bc (L.group_block_bitmap sb 0) in
  bit_set b.Kernel.Bcache.data (root_block - L.group_start sb 0) true;
  Kernel.Bcache.bwrite bc b;
  Kernel.Bcache.brelse bc b;
  let b = Kernel.Bcache.bread bc (L.group_inode_bitmap sb 0) in
  bit_set b.Kernel.Bcache.data 0 true;
  Kernel.Bcache.bwrite bc b;
  Kernel.Bcache.brelse bc b;
  put root_block (fun d ->
      L.put_dirent d ~slot:0 ~ino:L.root_ino ~name:".";
      L.put_dirent d ~slot:1 ~ino:L.root_ino ~name:"..");
  let b = Kernel.Bcache.bread bc (L.inode_block sb L.root_ino) in
  let inline = Array.make L.inline_extents { L.e_logical = 0; e_physical = 0; e_len = 0 } in
  inline.(0) <- { L.e_logical = 0; e_physical = root_block; e_len = 1 };
  L.put_dinode b.Kernel.Bcache.data ~slot:(L.inode_slot sb L.root_ino)
    {
      L.kind = L.K_dir;
      nlink = 2;
      size = 2 * L.dirent_size;
      nextents = 1;
      inline;
      leaves = Array.make L.leaf_ptrs 0;
    };
  Kernel.Bcache.bwrite bc b;
  Kernel.Bcache.brelse bc b;
  Kernel.Bcache.flush bc;
  Ok ()

let count_free fs =
  for g = 0 to fs.sb.L.ngroups - 1 do
    let b = Kernel.Bcache.bread fs.bc (L.group_block_bitmap fs.sb g) in
    let lo, hi = group_data_bits fs g in
    let free = ref 0 in
    for bit = lo to hi - 1 do
      if not (bit_get b.Kernel.Bcache.data bit) then incr free
    done;
    Kernel.Bcache.brelse fs.bc b;
    fs.group_free_blocks.(g) <- !free;
    let b = Kernel.Bcache.bread fs.bc (L.group_inode_bitmap fs.sb g) in
    let ifree = ref 0 in
    for bit = 0 to fs.sb.L.inodes_per_group - 1 do
      if not (bit_get b.Kernel.Bcache.data bit) then incr ifree
    done;
    Kernel.Bcache.brelse fs.bc b;
    fs.group_free_inodes.(g) <- !ifree
  done;
  fs.free_blocks <- Array.fold_left ( + ) 0 fs.group_free_blocks;
  fs.free_inodes <- Array.fold_left ( + ) 0 fs.group_free_inodes

let vfs_readdir fs ino : Kernel.Vfs.dirent list res =
  let dp = iget fs ino in
  ilock fs dp;
  let r =
    if dp.kind <> L.K_dir then Error Kernel.Errno.ENOTDIR
    else begin
      let total = dirent_count dp in
      let out = ref [] in
      let rec scan s =
        if s >= total then Ok (List.rev !out)
        else begin
          let bi = s / L.dirents_per_block in
          let phys = lookup_block dp bi in
          (if phys <> 0 then begin
             let b = Kernel.Bcache.bread fs.bc phys in
             let hi = min L.dirents_per_block (total - (bi * L.dirents_per_block)) in
             for s' = 0 to hi - 1 do
               match L.get_dirent b.Kernel.Bcache.data ~slot:s' with
               | Some (ino', n) ->
                   out :=
                     { Kernel.Vfs.d_name = n; d_ino = ino'; d_kind = Kernel.Vfs.Reg }
                     :: !out
               | None -> ()
             done;
             Kernel.Bcache.brelse fs.bc b
           end);
          scan ((bi + 1) * L.dirents_per_block)
        end
      in
      scan 0
    end
  in
  iunlock dp;
  iput fs dp;
  match r with
  | Error _ as e -> e
  | Ok entries ->
      Ok
        (List.map
           (fun d ->
             if d.Kernel.Vfs.d_name = "." || d.Kernel.Vfs.d_name = ".." then
               { d with Kernel.Vfs.d_kind = Kernel.Vfs.Dir }
             else
               match stat_of_ino fs d.Kernel.Vfs.d_ino with
               | Ok st -> { d with Kernel.Vfs.d_kind = st.Kernel.Vfs.st_kind }
               | Error _ -> d)
           entries)

type handle = { fs : fs }

let mount ?dirty_limit ?background ?commit_interval machine :
    (Kernel.Vfs.t * handle, Kernel.Errno.t) result =
  let bc = Kernel.Bcache.create ~capacity:16384 machine in
  let b = Kernel.Bcache.bread bc 1 in
  let sb_r = L.get_superblock b.Kernel.Bcache.data in
  Kernel.Bcache.brelse bc b;
  match sb_r with
  | Error _ -> Error Kernel.Errno.EINVAL
  | Ok sb ->
      let journal =
        Jbd2.create ?commit_interval machine bc ~jstart:sb.L.journal_start
          ~jlen:sb.L.journal_len
      in
      let fs =
        {
          machine;
          bc;
          sb;
          journal;
          icache = Hashtbl.create 1024;
          icache_lock = Sim.Sync.Mutex.create ();
          alloc_lock = Sim.Sync.Mutex.create ();
          rename_lock = Sim.Sync.Mutex.create ();
          group_free_blocks = Array.make sb.L.ngroups 0;
          group_free_inodes = Array.make sb.L.ngroups 0;
          group_block_rotor = Array.make sb.L.ngroups 0;
          group_inode_rotor = Array.make sb.L.ngroups 0;
          free_blocks = 0;
          free_inodes = 0;
        }
      in
      Jbd2.recover journal;
      count_free fs;
      (match background with
      | Some false -> ()
      | _ -> Jbd2.start_kjournald journal);
      let unlink_like ~isdir ~dir name : unit res =
        if name = "." || name = ".." then Error Kernel.Errno.EINVAL
        else begin
          let victim = ref None in
          let r =
            Jbd2.with_handle fs.journal (fun () ->
                let dp = iget fs dir in
                ilock fs dp;
                let finish r =
                  iunlock dp;
                  iput fs dp;
                  r
                in
                if dp.kind <> L.K_dir then finish (Error Kernel.Errno.ENOTDIR)
                else
                  match dirlookup fs dp name with
                  | Error _ as e -> finish e
                  | Ok None -> finish (Error Kernel.Errno.ENOENT)
                  | Ok (Some (ino, slot)) -> (
                      let ip = iget fs ino in
                      ilock fs ip;
                      let bad =
                        if isdir then
                          if ip.kind <> L.K_dir then Some Kernel.Errno.ENOTDIR
                          else None
                        else if ip.kind = L.K_dir then Some Kernel.Errno.EISDIR
                        else None
                      in
                      match bad with
                      | Some e ->
                          iunlock ip;
                          iput fs ip;
                          finish (Error e)
                      | None -> (
                          let* _empty_ok =
                            if isdir then
                              match dir_is_empty fs ip with
                              | Error _ as e ->
                                  iunlock ip;
                                  iput fs ip;
                                  ignore (finish (Ok ()));
                                  e
                              | Ok false ->
                                  iunlock ip;
                                  iput fs ip;
                                  ignore (finish (Ok ()));
                                  Error Kernel.Errno.ENOTEMPTY
                              | Ok true -> Ok true
                            else Ok true
                          in
                          match dirunlink fs dp ~slot with
                          | Error _ as e ->
                              iunlock ip;
                              iput fs ip;
                              finish e
                          | Ok () ->
                              if isdir then begin
                                dp.nlink <- dp.nlink - 1;
                                (match iupdate fs dp with _ -> ());
                                ip.nlink <- 0
                              end
                              else ip.nlink <- ip.nlink - 1;
                              (match iupdate fs ip with _ -> ());
                              iunlock ip;
                              victim := Some ip;
                              finish (Ok ()))))
          in
          (match !victim with Some ip -> iput fs ip | None -> ());
          r
        end
      in
      let ops : Kernel.Vfs.fs_ops =
        Kernel.Vfs.profiled_ops machine "fs"
        {
          Kernel.Vfs.fs_name = "ext4";
          root_ino = L.root_ino;
          lookup =
            (fun ~dir name ->
              let dp = iget fs dir in
              ilock fs dp;
              let r = dirlookup fs dp name in
              iunlock dp;
              iput fs dp;
              match r with
              | Error _ as e -> e
              | Ok None -> Error Kernel.Errno.ENOENT
              | Ok (Some (ino, _)) -> stat_of_ino fs ino);
          getattr = (fun ino -> stat_of_ino fs ino);
          create = (fun ~dir name -> create_entry fs ~dir name L.K_file);
          mkdir = (fun ~dir name -> create_entry fs ~dir name L.K_dir);
          unlink = (fun ~dir name -> unlink_like ~isdir:false ~dir name);
          rmdir = (fun ~dir name -> unlink_like ~isdir:true ~dir name);
          rename =
            (fun ~olddir ~oldname ~newdir ~newname ->
              (* rename: link under the new name, unlink the old; target
                 replaced if present. Serialised like vfs_rename. *)
              Sim.Sync.Mutex.lock fs.rename_lock;
              let r =
                Jbd2.with_handle fs.journal (fun () ->
                    let dp_old = iget fs olddir in
                    let dp_new = if newdir = olddir then dp_old else iget fs newdir in
                    (if dp_old == dp_new then ilock fs dp_old
                     else if dp_old.ino < dp_new.ino then begin
                       ilock fs dp_old;
                       ilock fs dp_new
                     end
                     else begin
                       ilock fs dp_new;
                       ilock fs dp_old
                     end);
                    let finish r =
                      (if dp_old == dp_new then iunlock dp_old
                       else begin
                         iunlock dp_old;
                         iunlock dp_new
                       end);
                      iput fs dp_old;
                      if dp_new != dp_old then iput fs dp_new;
                      r
                    in
                    match dirlookup fs dp_old oldname with
                    | Error _ as e -> finish e
                    | Ok None -> finish (Error Kernel.Errno.ENOENT)
                    | Ok (Some (src_ino, src_slot)) -> (
                        match dirlookup fs dp_new newname with
                        | Error _ as e -> finish e
                        | Ok existing -> (
                            let drop =
                              match existing with
                              | Some (dst_ino, dst_slot) when dst_ino <> src_ino -> (
                                  let dst = iget fs dst_ino in
                                  ilock fs dst;
                                  match dirunlink fs dp_new ~slot:dst_slot with
                                  | Error _ as e ->
                                      iunlock dst;
                                      iput fs dst;
                                      Error e
                                  | Ok () ->
                                      (if dst.kind = L.K_dir then begin
                                         dst.nlink <- 0;
                                         dp_new.nlink <- dp_new.nlink - 1;
                                         match iupdate fs dp_new with _ -> ()
                                       end
                                       else dst.nlink <- dst.nlink - 1);
                                      (match iupdate fs dst with _ -> ());
                                      iunlock dst;
                                      Ok (Some dst))
                              | _ -> Ok None
                            in
                            match drop with
                            | Error e -> finish e
                            | Ok victim -> (
                                let r =
                                  let* () = dirlink fs dp_new ~name:newname ~ino:src_ino in
                                  dirunlink fs dp_old ~slot:src_slot
                                in
                                match r with
                                | Error _ as e -> finish e
                                | Ok () -> (
                                    (* moving a directory across parents:
                                       rewrite its ".." and fix both
                                       parents' link counts (divergence vs
                                       xv6 found by the differential
                                       checker) *)
                                    let fixup =
                                      let src = iget fs src_ino in
                                      ilock fs src;
                                      let r =
                                        if
                                          src.kind = L.K_dir
                                          && dp_old.ino <> dp_new.ino
                                        then
                                          match dirlookup fs src ".." with
                                          | Error _ as e -> e
                                          | Ok None -> Ok ()
                                          | Ok (Some (_, dd_slot)) ->
                                              let* () =
                                                dirunlink fs src ~slot:dd_slot
                                              in
                                              let* () =
                                                dirlink fs src ~name:".."
                                                  ~ino:dp_new.ino
                                              in
                                              dp_old.nlink <- dp_old.nlink - 1;
                                              let* () = iupdate fs dp_old in
                                              dp_new.nlink <- dp_new.nlink + 1;
                                              iupdate fs dp_new
                                        else Ok ()
                                      in
                                      iunlock src;
                                      iput fs src;
                                      r
                                    in
                                    match fixup with
                                    | Error _ as e -> finish e
                                    | Ok () ->
                                        let out = finish (Ok ()) in
                                        (match victim with
                                        | Some ip -> iput fs ip
                                        | None -> ());
                                        out)))))
              in
              Sim.Sync.Mutex.unlock fs.rename_lock;
              r);
          link =
            (fun ~ino ~dir name ->
              Jbd2.with_handle fs.journal (fun () ->
                  let ip = iget fs ino in
                  ilock fs ip;
                  if ip.kind = L.K_dir then begin
                    iunlock ip;
                    iput fs ip;
                    Error Kernel.Errno.EPERM
                  end
                  else begin
                    ip.nlink <- ip.nlink + 1;
                    (match iupdate fs ip with _ -> ());
                    let a = stat_of ip in
                    iunlock ip;
                    let dp = iget fs dir in
                    ilock fs dp;
                    let r =
                      match dirlookup fs dp name with
                      | Error _ as e -> e
                      | Ok (Some _) -> Error Kernel.Errno.EEXIST
                      | Ok None -> dirlink fs dp ~name ~ino
                    in
                    iunlock dp;
                    iput fs dp;
                    match r with
                    | Ok () ->
                        iput fs ip;
                        Ok a
                    | Error _ as e ->
                        ilock fs ip;
                        ip.nlink <- ip.nlink - 1;
                        (match iupdate fs ip with _ -> ());
                        iunlock ip;
                        iput fs ip;
                        e
                  end));
          symlink =
            (fun ~dir name ~target ->
              if String.length target > bsize then
                Error Kernel.Errno.ENAMETOOLONG
              else
                match create_entry fs ~dir name L.K_symlink with
                | Error _ as e -> e
                | Ok st ->
                    let ip = iget fs st.Kernel.Vfs.st_ino in
                    let r =
                      Jbd2.with_handle fs.journal (fun () ->
                          ilock fs ip;
                          let r =
                            writei_tx fs ip ~off:0
                              (Bytes.of_string target)
                              ~from:0
                              ~len:(String.length target)
                          in
                          iunlock ip;
                          r)
                    in
                    iput fs ip;
                    (match r with
                    | Ok () ->
                        Ok { st with Kernel.Vfs.st_size = String.length target }
                    | Error _ as e -> e));
          readlink =
            (fun ~ino ->
              let ip = iget fs ino in
              ilock fs ip;
              let r =
                if ip.kind <> L.K_symlink then Error Kernel.Errno.EINVAL
                else
                  match readi fs ip ~off:0 ~len:ip.size with
                  | Ok b -> Ok (Bytes.to_string b)
                  | Error _ as e -> e
              in
              iunlock ip;
              iput fs ip;
              r);
          readdir = (fun ino -> vfs_readdir fs ino);
          readdir_filter =
            (fun ino ~prog ->
              Kernel.Pushdown.filter_dir
                (Kernel.Pushdown.registry machine)
                ~name:prog
                ~readdir:(fun () -> vfs_readdir fs ino)
                ~getattr:(fun ino -> stat_of_ino fs ino));
          bmap =
            (fun ~ino ~fbn ->
              if fbn < 0 then Error Kernel.Errno.EINVAL
              else begin
                let ip = iget fs ino in
                ilock fs ip;
                let r =
                  if ip.kind = L.K_free then Error Kernel.Errno.ESTALE
                  else Ok (lookup_block ip fbn)
                in
                iunlock ip;
                iput fs ip;
                r
              end);
          readpage =
            (fun ~ino ~index ->
              let ip = iget fs ino in
              ilock fs ip;
              let r = readi fs ip ~off:(index * bsize) ~len:bsize in
              iunlock ip;
              iput fs ip;
              match r with
              | Error _ as e -> e
              | Ok data ->
                  if Bytes.length data = bsize then Ok data
                  else begin
                    let page = Bytes.make bsize '\000' in
                    Bytes.blit data 0 page 0 (Bytes.length data);
                    Ok page
                  end);
          readahead =
            (fun ~ino ~start ~count ->
              (* One readi over the whole window; blocks still come
                 through the cache one bread at a time. *)
              let ip = iget fs ino in
              ilock fs ip;
              let r = readi fs ip ~off:(start * bsize) ~len:(count * bsize) in
              iunlock ip;
              iput fs ip;
              match r with
              | Error _ as e -> e
              | Ok data ->
                  Ok
                    (Array.init count (fun i ->
                         let page = Bytes.make bsize '\000' in
                         let off = i * bsize in
                         let n = min bsize (max 0 (Bytes.length data - off)) in
                         if n > 0 then Bytes.blit data off page 0 n;
                         page)));
          write_pages =
            (fun ~ino ~isize pages ->
              match Array.length pages with
              | 0 -> Ok ()
              | n ->
                  let first_index = fst pages.(0) in
                  let buf = Bytes.create (n * bsize) in
                  Array.iteri (fun i (_, d) -> Bytes.blit d 0 buf (i * bsize) bsize) pages;
                  let off = first_index * bsize in
                  let len = min (Bytes.length buf) (max 0 (isize - off)) in
                  if len = 0 then Ok ()
                  else begin
                    let ip = iget fs ino in
                    let r = writei fs ip ~off (Bytes.sub buf 0 len) in
                    iput fs ip;
                    match r with Ok _ -> Ok () | Error _ as e -> e
                  end);
          truncate =
            (fun ~ino size ->
              if size < 0 then Error Kernel.Errno.EINVAL
              else if size > L.max_file_size then Error Kernel.Errno.EFBIG
              else begin
                let ip = iget fs ino in
                ilock fs ip;
                let old = ip.size in
                iunlock ip;
                let r =
                  if size = 0 then begin
                    itrunc_all fs ip;
                    Ok ()
                  end
                  else if size < old then begin
                    let keep = (size + bsize - 1) / bsize in
                    itrunc_to fs ip ~keep;
                    Jbd2.with_handle fs.journal (fun () ->
                        ilock fs ip;
                        (* zero the retained slack of the tail block *)
                        (if size mod bsize <> 0 then
                           let phys = lookup_block ip (size / bsize) in
                           if phys <> 0 then begin
                             let b = Kernel.Bcache.bread fs.bc phys in
                             Bytes.fill b.Kernel.Bcache.data (size mod bsize)
                               (bsize - (size mod bsize)) '\000';
                             Jbd2.journal_write fs.journal b;
                             Kernel.Bcache.brelse fs.bc b
                           end);
                        ip.size <- size;
                        let r = iupdate fs ip in
                        iunlock ip;
                        r)
                  end
                  else
                    Jbd2.with_handle fs.journal (fun () ->
                        ilock fs ip;
                        ip.size <- size;
                        let r = iupdate fs ip in
                        iunlock ip;
                        r)
                in
                iput fs ip;
                r
              end);
          fsync =
            (fun ~ino:_ ->
              Jbd2.force_commit fs.journal;
              Ok ());
          sync_fs =
            (fun () ->
              Jbd2.force_commit fs.journal;
              Ok ());
          iopen =
            (fun ~ino ->
              let ip = iget fs ino in
              if not ip.valid then begin
                ilock fs ip;
                iunlock ip
              end;
              if ip.kind = L.K_free then begin
                iput fs ip;
                Error Kernel.Errno.ESTALE
              end
              else begin
                ip.nopen <- ip.nopen + 1;
                Ok ()
              end);
          irelease =
            (fun ~ino ->
              match Hashtbl.find_opt fs.icache ino with
              | None -> ()
              | Some ip ->
                  if ip.nopen > 0 then begin
                    ip.nopen <- ip.nopen - 1;
                    iput fs ip
                  end);
          statfs =
            (fun () ->
              {
                Kernel.Vfs.f_blocks =
                  fs.sb.L.ngroups
                  * (fs.sb.L.group_size - (L.group_data_start fs.sb 0 - L.group_start fs.sb 0));
                f_bfree = fs.free_blocks;
                f_files = L.total_inodes fs.sb;
                f_ffree = fs.free_inodes;
              });
          wb_batch = 256;
          max_file_size = L.max_file_size;
        }
      in
      (* Pushdown walks read through the same buffer cache the fs uses,
         from below the syscall layer. *)
      Kernel.Pushdown.set_backend
        (Kernel.Pushdown.registry machine)
        ~label:"bcache"
        (fun blk ->
          let b = Kernel.Bcache.bread bc blk in
          let d = Bytes.copy b.Kernel.Bcache.data in
          Kernel.Bcache.brelse bc b;
          d);
      let vfs = Kernel.Vfs.mount ?dirty_limit ?background machine ops in
      Ok (vfs, { fs })

let unmount vfs (h : handle) =
  Kernel.Vfs.unmount vfs;
  Jbd2.shutdown h.fs.journal

let journal_stats (h : handle) =
  (h.fs.journal.Jbd2.commits, h.fs.journal.Jbd2.checkpoints)
