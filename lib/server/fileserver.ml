(** The multi-tenant file server: a connection acceptor, per-client
    sessions (one fiber per connection, one per in-flight request), the
    open/read/write/commit/readdir protocol executed against {!Kernel.Os},
    lease-based cache coherence ({!Lease}) and weighted-fair per-tenant
    scheduling ({!Qos}).

    Life of a request: the session fiber decodes the frame and spawns a
    handler fiber; the handler resolves paths and acquires the leases the
    op needs (waiting out recalls *before* taking an execution slot, so a
    blocked recall can never starve the slot pool), enters the WFQ gate,
    executes against the VFS, releases its pins, and sends the reply.

    Attr reads ([Getattr], [Lookup], [Read]) take a transient read lease
    on the target inode, which forces any other session's dirty
    write-delegated cache to be flushed first — the server never serves an
    attribute or byte that a client cache has superseded. *)

module Errno = Kernel.Errno

type config = {
  tenants : (string * Qos.tclass) list;
  max_inflight_total : int;  (** global execution-slot pool *)
}

let default_config =
  {
    tenants = [ ("default", Qos.default_class) ];
    max_inflight_total = 32;
  }

type session = { s_id : int; s_tenant : string; s_conn : Wire.conn }

type t = {
  sv_machine : Kernel.Machine.t;
  sv_os : Kernel.Os.t;
  sv_listener : Wire.listener;
  sv_qos : Qos.t;
  sv_leases : Lease.t;
  sv_paths : (int, string) Hashtbl.t;  (** ino -> path (file handle cache) *)
  sv_fds : (int, int) Hashtbl.t;  (** ino -> server-side open fd *)
  sv_change : (int, int) Hashtbl.t;  (** ino -> change attribute *)
  sv_sessions : (int, session) Hashtbl.t;
  mutable sv_next_sid : int;
  sv_root : int;
  mutable sv_self_mutating : int;
      (** depth of server-initiated mutations, so the VFS modify hook can
          tell an underneath write from the server's own *)
  mutable sv_stopped : bool;
  sv_req_lat : Sim.Stats.Histogram.t;
  sv_malformed : Sim.Stats.Counter.t;
  sv_slo : Slo.t;
}

let ( let* ) = Result.bind

let machine t = t.sv_machine
let listener t = t.sv_listener
let qos t = t.sv_qos
let leases t = t.sv_leases
let slo t = t.sv_slo
let root_ino t = t.sv_root

let change_of t ino =
  match Hashtbl.find_opt t.sv_change ino with Some c -> c | None -> 0

let bump_change t ino = Hashtbl.replace t.sv_change ino (change_of t ino + 1)

let kind_code = function
  | Kernel.Vfs.Reg -> 0
  | Kernel.Vfs.Dir -> 1
  | Kernel.Vfs.Symlink -> 2

let attr_of t (st : Kernel.Vfs.stat) : Proto.attr =
  {
    ino = st.st_ino;
    kind = kind_code st.st_kind;
    size = st.st_size;
    nlink = st.st_nlink;
    change = change_of t st.st_ino;
  }

let path_of t ino : (string, Errno.t) result =
  if ino = t.sv_root then Ok "/"
  else
    match Hashtbl.find_opt t.sv_paths ino with
    | Some p -> Ok p
    | None -> Error Errno.ESTALE

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

(* Run a server-initiated mutation with the modify hook told it is us. *)
let with_self t f =
  t.sv_self_mutating <- t.sv_self_mutating + 1;
  Fun.protect ~finally:(fun () -> t.sv_self_mutating <- t.sv_self_mutating - 1) f

let fd_of t ino : (int, Errno.t) result =
  match Hashtbl.find_opt t.sv_fds ino with
  | Some fd -> Ok fd
  | None ->
      let* path = path_of t ino in
      let* fd = Kernel.Os.open_ t.sv_os path Kernel.Os.rdwr in
      Hashtbl.replace t.sv_fds ino fd;
      Ok fd

let stat_attr t path : (Proto.attr, Errno.t) result =
  let* st = Kernel.Os.stat t.sv_os path in
  Ok (attr_of t st)

(* ------------------------------------------------------------------ *)
(* Request execution (handler fiber, slot held)                        *)
(* ------------------------------------------------------------------ *)

let exec t (req : Proto.request) : Proto.reply =
  let reply_of = function Ok r -> r | Error e -> Proto.R_err e in
  match req with
  | Proto.Getattr { ino } ->
      reply_of
        (let* path = path_of t ino in
         let* a = stat_attr t path in
         Ok (Proto.R_attr a))
  | Proto.Lookup { dir; name } ->
      reply_of
        (let* dpath = path_of t dir in
         let p = join dpath name in
         let* st = Kernel.Os.stat t.sv_os p in
         Hashtbl.replace t.sv_paths st.st_ino p;
         Ok (Proto.R_attr (attr_of t st)))
  | Proto.Mkdir { dir; name } ->
      reply_of
        (let* dpath = path_of t dir in
         let p = join dpath name in
         let* () = Kernel.Os.mkdir t.sv_os p in
         let* st = Kernel.Os.stat t.sv_os p in
         Hashtbl.replace t.sv_paths st.st_ino p;
         Ok (Proto.R_attr (attr_of t st)))
  | Proto.Read { ino; off; len } ->
      reply_of
        (let* fd = fd_of t ino in
         let* data = Kernel.Os.pread t.sv_os fd ~pos:off ~len in
         let* st = Kernel.Os.fstat t.sv_os fd in
         Ok (Proto.R_read { rdata = data; rattr = attr_of t st }))
  | Proto.Write { ino; off; data; stable } ->
      reply_of
        (let* fd = fd_of t ino in
         let* n = with_self t (fun () -> Kernel.Os.pwrite t.sv_os fd ~pos:off data) in
         let* () =
           if stable then with_self t (fun () -> Kernel.Os.fsync t.sv_os fd)
           else Ok ()
         in
         let* st = Kernel.Os.fstat t.sv_os fd in
         Ok (Proto.R_write { count = n; wattr = attr_of t st }))
  | Proto.Commit { ino } ->
      reply_of
        (let* fd = fd_of t ino in
         let* () = with_self t (fun () -> Kernel.Os.fsync t.sv_os fd) in
         Ok Proto.R_ok)
  | Proto.Readdir { ino } ->
      reply_of
        (let* path = path_of t ino in
         let* des = Kernel.Os.readdir t.sv_os path in
         let des =
           List.map
             (fun (d : Kernel.Vfs.dirent) ->
               if d.d_name <> "." && d.d_name <> ".." then
                 Hashtbl.replace t.sv_paths d.d_ino (join path d.d_name);
               (d.d_name, d.d_ino, kind_code d.d_kind))
             des
         in
         Ok (Proto.R_dirents des))
  | Proto.Readdir_filter { dir; prog } ->
      reply_of
        (let* path = path_of t dir in
         let* des = Kernel.Os.readdir_filtered t.sv_os path ~prog in
         Ok
           (Proto.R_dirents_plus
              (List.map
                 (fun ((d : Kernel.Vfs.dirent), (st : Kernel.Vfs.stat)) ->
                   if d.d_name <> "." && d.d_name <> ".." then
                     Hashtbl.replace t.sv_paths d.d_ino (join path d.d_name);
                   (d.d_name, attr_of t st))
                 des)))
  | Proto.Pushdown_get { prog; key } ->
      reply_of
        (let* v = Kernel.Os.pushdown_get t.sv_os ~prog ~key in
         Ok (Proto.R_value v))
  | Proto.Unlink { dir; name } ->
      reply_of
        (let* dpath = path_of t dir in
         let p = join dpath name in
         let* st = Kernel.Os.stat t.sv_os p in
         (* Pop the handle tables before anything yields: both the
            unlink and the fd close sleep on the log, and once the ino
            is free a concurrent Create can reuse and re-register it —
            a drop performed after resuming would wipe the new file's
            entries (the Create allocates before it can take the new
            ino's lease, so our lease pin does not order it). *)
         let fd = Hashtbl.find_opt t.sv_fds st.st_ino in
         let change = Hashtbl.find_opt t.sv_change st.st_ino in
         Hashtbl.remove t.sv_fds st.st_ino;
         Hashtbl.remove t.sv_paths st.st_ino;
         Hashtbl.remove t.sv_change st.st_ino;
         match with_self t (fun () -> Kernel.Os.unlink t.sv_os p) with
         | Error e ->
             (* nothing was freed, so the ino cannot have been reused:
                restore the handles *)
             (match fd with
             | Some fd -> Hashtbl.replace t.sv_fds st.st_ino fd
             | None -> ());
             (match change with
             | Some c -> Hashtbl.replace t.sv_change st.st_ino c
             | None -> ());
             Hashtbl.replace t.sv_paths st.st_ino p;
             Error e
         | Ok () ->
             (match fd with
             | Some fd -> ignore (Kernel.Os.close t.sv_os fd)
             | None -> ());
             Ok Proto.R_ok)
  | Proto.Open _ | Proto.Create _ | Proto.Release _ | Proto.Attach _
  | Proto.Lease_return _ | Proto.Detach ->
      (* handled outside [exec] *)
      Proto.R_err Errno.EINVAL

(* ------------------------------------------------------------------ *)
(* Handler fiber: leases, scheduling, reply                            *)
(* ------------------------------------------------------------------ *)

let request_cost (req : Proto.request) =
  let payload =
    match req with
    | Proto.Read { len; _ } -> len
    | Proto.Write { data; _ } -> Bytes.length data
    | _ -> 0
  in
  1.0 +. (float_of_int payload /. 65536.)

let send_reply sess xid reply =
  Wire.send_smsg sess.s_conn (Proto.encode_smsg (Proto.Reply { xid; reply }))

(* The lease an op needs, with the target ino resolved ahead of time.
   Resolution itself is a read of stable namespace state — only the data
   and size attributes are delegated to clients, so it needs no lease. *)
let lease_plan t (req : Proto.request) : (int * Lease.kind) option =
  let resolve dir name =
    match path_of t dir with
    | Error _ -> None
    | Ok dpath -> (
        match Kernel.Os.stat t.sv_os (join dpath name) with
        | Ok st -> Some st.st_ino
        | Error _ -> None)
  in
  match req with
  | Proto.Getattr { ino } | Proto.Read { ino; _ } | Proto.Commit { ino } ->
      Some (ino, Lease.Read)
  | Proto.Write { ino; _ } -> Some (ino, Lease.Write)
  | Proto.Lookup { dir; name } -> (
      match resolve dir name with
      | Some ino -> Some (ino, Lease.Read)
      | None -> None)
  | Proto.Unlink { dir; name } -> (
      match resolve dir name with
      | Some ino -> Some (ino, Lease.Write)
      | None -> None)
  | _ -> None

let handle t (sess : session) xid (req : Proto.request) =
  let t0 = Kernel.Machine.now t.sv_machine in
  let tenant = sess.s_tenant in
  Sim.Flight.note
    (Kernel.Machine.flight t.sv_machine)
    ~kind:"server"
    (Printf.sprintf "%s xid=%d tenant=%s" (Proto.request_name req) xid tenant);
  let cost = request_cost req in
  let reply =
    match req with
    | Proto.Open { ino; write } -> (
        match path_of t ino with
        | Error e -> Proto.R_err e
        | Ok path -> (
            let kind = if write then Lease.Write else Lease.Read in
            Lease.acquire t.sv_leases ~session:sess.s_id ~ino ~durable:true kind;
            let r =
              Qos.with_slot t.sv_qos ~tenant ~cost (fun () ->
                  Kernel.Machine.with_layer t.sv_machine "server" (fun () ->
                      match stat_attr t path with
                      | Ok a ->
                          Proto.R_open
                            {
                              oattr = a;
                              olease =
                                (if write then Proto.L_write else Proto.L_read);
                            }
                      | Error e -> Proto.R_err e))
            in
            Lease.release_pin t.sv_leases ~session:sess.s_id ~ino;
            match r with
            | Proto.R_err _ as e ->
                Lease.unlease t.sv_leases ~session:sess.s_id ~ino;
                e
            | r -> r))
    | Proto.Create { dir; name; write } -> (
        let created =
          Qos.with_slot t.sv_qos ~tenant ~cost (fun () ->
              Kernel.Machine.with_layer t.sv_machine "server" (fun () ->
                  let* dpath = path_of t dir in
                  let p = join dpath name in
                  let* fd =
                    with_self t (fun () ->
                        Kernel.Os.open_ t.sv_os p
                          Kernel.Os.(creat rdwr))
                  in
                  let* st = Kernel.Os.fstat t.sv_os fd in
                  Hashtbl.replace t.sv_paths st.st_ino p;
                  Hashtbl.replace t.sv_fds st.st_ino fd;
                  Ok (st.st_ino, attr_of t st)))
        in
        match created with
        | Error e -> Proto.R_err e
        | Ok (ino, a) ->
            let kind = if write then Lease.Write else Lease.Read in
            Lease.acquire t.sv_leases ~session:sess.s_id ~ino ~durable:true kind;
            Lease.release_pin t.sv_leases ~session:sess.s_id ~ino;
            Proto.R_open
              {
                oattr = a;
                olease = (if write then Proto.L_write else Proto.L_read);
              })
    | Proto.Release { ino } ->
        Lease.unlease t.sv_leases ~session:sess.s_id ~ino;
        Proto.R_ok
    | req -> (
        match lease_plan t req with
        | None ->
            Qos.with_slot t.sv_qos ~tenant ~cost (fun () ->
                Kernel.Machine.with_layer t.sv_machine "server" (fun () ->
                    exec t req))
        | Some (ino, kind) ->
            Lease.acquire t.sv_leases ~session:sess.s_id ~ino kind;
            Fun.protect
              ~finally:(fun () ->
                Lease.release_pin t.sv_leases ~session:sess.s_id ~ino)
              (fun () ->
                Qos.with_slot t.sv_qos ~tenant ~cost (fun () ->
                    Kernel.Machine.with_layer t.sv_machine "server" (fun () ->
                        exec t req))))
  in
  let lat = Int64.sub (Kernel.Machine.now t.sv_machine) t0 in
  Sim.Stats.Histogram.record t.sv_req_lat lat;
  Slo.record t.sv_slo ~tenant lat;
  send_reply sess xid reply;
  (* Only once the granting reply is on the wire may the lease be
     recalled — a recall overtaking its grant would be acked by a client
     that does not yet know it holds the lease. *)
  match reply with
  | Proto.R_open { oattr; _ } ->
      Lease.grant_ready t.sv_leases ~session:sess.s_id ~ino:oattr.Proto.ino
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Sessions and the acceptor                                           *)
(* ------------------------------------------------------------------ *)

let recall_session t ~session ~ino =
  match Hashtbl.find_opt t.sv_sessions session with
  | None ->
      (* session gone: its durable leases are dropped by teardown *)
      ()
  | Some sess ->
      Kernel.Machine.spawn ~name:"server-recall" t.sv_machine (fun () ->
          Wire.send_smsg sess.s_conn
            (Proto.encode_smsg (Proto.Recall { ino })))

let serve_conn t (conn : Wire.conn) =
  let sess = ref None in
  let cleanup () =
    match !sess with
    | None -> ()
    | Some s ->
        Lease.release_session t.sv_leases ~session:s.s_id;
        Hashtbl.remove t.sv_sessions s.s_id;
        sess := None
  in
  let rec loop () =
    match Wire.recv_request conn with
    | None -> cleanup ()
    | Some bytes ->
        (match Proto.decode_request bytes with
        | Error _ ->
            Sim.Stats.Counter.incr t.sv_malformed;
            Wire.send_smsg conn
              (Proto.encode_smsg
                 (Proto.Reply { xid = 0; reply = Proto.R_err Kernel.Errno.EINVAL }))
        | Ok (xid, req) -> (
            match (req, !sess) with
            | Proto.Attach { tenant }, None ->
                if Qos.has_tenant t.sv_qos tenant then begin
                  let sid = t.sv_next_sid in
                  t.sv_next_sid <- sid + 1;
                  let s = { s_id = sid; s_tenant = tenant; s_conn = conn } in
                  Hashtbl.replace t.sv_sessions sid s;
                  sess := Some s;
                  let reply =
                    match stat_attr t "/" with
                    | Ok a -> Proto.R_attr a
                    | Error e -> Proto.R_err e
                  in
                  Wire.send_smsg conn
                    (Proto.encode_smsg (Proto.Reply { xid; reply }))
                end
                else
                  Wire.send_smsg conn
                    (Proto.encode_smsg
                       (Proto.Reply { xid; reply = Proto.R_err Kernel.Errno.EINVAL }))
            | _, None | Proto.Attach _, Some _ ->
                Wire.send_smsg conn
                  (Proto.encode_smsg
                     (Proto.Reply { xid; reply = Proto.R_err Kernel.Errno.EINVAL }))
            | Proto.Lease_return { ino }, Some s ->
                Lease.unlease t.sv_leases ~session:s.s_id ~ino;
                send_reply s xid Proto.R_ok
            | Proto.Detach, Some s ->
                send_reply s xid Proto.R_ok;
                Wire.close conn
            | req, Some s ->
                (* Mint the causal request id from the wire xid arrival:
                   set it on the session fiber so the handler fiber
                   inherits it at spawn, and stitch the cross-fiber hop
                   with a dispatch flow edge. The session fiber drops the
                   id right after — decoding the next request is not part
                   of this one. *)
                let eng = Kernel.Machine.engine t.sv_machine in
                let tr = Kernel.Machine.tracer t.sv_machine in
                Sim.Engine.set_current_req eng (Sim.Engine.next_req_id eng);
                let edge = Sim.Trace.flow_begin tr ~cat:"server" "server:dispatch" in
                Kernel.Machine.spawn ~name:"server-op" t.sv_machine (fun () ->
                    Sim.Trace.flow_end tr ~cat:"server" "server:dispatch" edge;
                    handle t s xid req);
                Sim.Engine.set_current_req eng 0L));
        loop ()
  in
  loop ()

(** Bring up the server on an already-mounted stack. Must run inside a
    simulation fiber. Spawns the acceptor; clients reach it through
    {!listener}. *)
let start machine os (config : config) : t =
  let listener = Wire.listen machine in
  let qos = Qos.create machine ~max_total:config.max_inflight_total config.tenants in
  let leases = Lease.create machine in
  let slo = Slo.create machine (List.map fst config.tenants) in
  let root =
    match Kernel.Os.stat os "/" with
    | Ok st -> st.Kernel.Vfs.st_ino
    | Error e -> failwith ("server: cannot stat root: " ^ Kernel.Errno.to_string e)
  in
  let t =
    {
      sv_machine = machine;
      sv_os = os;
      sv_listener = listener;
      sv_qos = qos;
      sv_leases = leases;
      sv_paths = Hashtbl.create 1024;
      sv_fds = Hashtbl.create 256;
      sv_change = Hashtbl.create 1024;
      sv_sessions = Hashtbl.create 64;
      sv_next_sid = 1;
      sv_root = root;
      sv_self_mutating = 0;
      sv_stopped = false;
      sv_req_lat = Kernel.Machine.histogram machine "server_req_lat";
      sv_malformed = Kernel.Machine.counter machine "server_malformed";
      sv_slo = slo;
    }
  in
  Lease.set_recall leases (fun ~session ~ino -> recall_session t ~session ~ino);
  Kernel.Machine.register_inspector machine ~name:"leases" (fun () ->
      Lease.inspect leases);
  Kernel.Machine.register_inspector machine ~name:"qos" (fun () ->
      Qos.inspect qos);
  Kernel.Machine.register_inspector machine ~name:"slo" (fun () ->
      Slo.inspect slo);
  Kernel.Machine.register_inspector machine ~name:"sessions" (fun () ->
      Util.Json.Obj [ ("count", Util.Json.Int (Hashtbl.length t.sv_sessions)) ]);
  (* Lease hook: a write underneath the server (not through a session)
     bumps the change attribute and breaks the leases on that inode, as if
     a conflicting local writer had opened the file. *)
  Kernel.Vfs.set_modify_hook (Kernel.Os.vfs os)
    (Some
       (fun ino ->
         bump_change t ino;
         if t.sv_self_mutating = 0 && not t.sv_stopped then
           Kernel.Machine.spawn ~name:"server-break-lease" t.sv_machine
             (fun () ->
               Lease.acquire t.sv_leases ~session:(-1) ~ino Lease.Write;
               Lease.release_pin t.sv_leases ~session:(-1) ~ino)));
  Kernel.Machine.spawn ~name:"server-accept" machine (fun () ->
      let rec accept_loop () =
        match Wire.accept listener with
        | None -> ()
        | Some conn ->
            Kernel.Machine.spawn ~name:"server-session" machine (fun () ->
                serve_conn t conn);
            accept_loop ()
      in
      accept_loop ());
  t

(** Shut down: stop accepting, drop the hook, close every session. Safe
    once all clients have detached. *)
let stop t =
  t.sv_stopped <- true;
  Kernel.Vfs.set_modify_hook (Kernel.Os.vfs t.sv_os) None;
  Wire.close_listener t.sv_listener;
  Hashtbl.iter (fun _ s -> Wire.close s.s_conn) t.sv_sessions;
  Hashtbl.iter (fun _ fd -> ignore (Kernel.Os.close t.sv_os fd)) t.sv_fds;
  Hashtbl.reset t.sv_fds
