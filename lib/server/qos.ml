(** Per-tenant request scheduling: weighted fair queueing over tenant
    queues plus per-tenant inflight caps, in front of a bounded pool of
    server execution slots.

    The scheduler is an admission gate, not a worker pool: a session's
    handler fiber calls {!enter} before executing its operation and
    {!leave} after. While the server is saturated, waiting requests are
    dispatched in virtual-finish-time order — each tenant's requests are
    stamped with start/finish tags advanced at a rate inversely
    proportional to the tenant's weight, the classic WFQ discipline — so a
    tenant flooding the server can only consume its weighted share, which
    is what the fairness regression test pins down. *)

type tclass = { weight : int; max_inflight : int }

let default_class = { weight = 1; max_inflight = 8 }

type waiter = {
  w_start : float;
  w_finish : float;
  w_ivar : unit Sim.Sync.Ivar.t;
  w_enq_ns : int64;
}

type tenant = {
  t_name : string;
  t_class : tclass;
  t_queue : waiter Queue.t;
  mutable t_inflight : int;
  mutable t_last_finish : float;
  mutable t_max_inflight : int;  (** high-water mark, for the cap test *)
  mutable t_completed : int;
  t_wait : Sim.Stats.Histogram.t;  (** queue wait per admitted request *)
}

type t = {
  q_machine : Kernel.Machine.t;
  mu : Sim.Sync.Mutex.t;
  tenants : (string, tenant) Hashtbl.t;
  order : string list;  (** deterministic iteration order *)
  mutable vtime : float;
  mutable total_inflight : int;
  max_total : int;
}

exception Unknown_tenant of string

let create machine ~max_total (classes : (string * tclass) list) =
  let tenants = Hashtbl.create 8 in
  List.iter
    (fun (name, cls) ->
      Hashtbl.replace tenants name
        {
          t_name = name;
          t_class = { cls with weight = max 1 cls.weight };
          t_queue = Queue.create ();
          t_inflight = 0;
          t_last_finish = 0.;
          t_max_inflight = 0;
          t_completed = 0;
          t_wait = Sim.Stats.Histogram.create (name ^ "_qos_wait");
        })
    classes;
  {
    q_machine = machine;
    mu = Sim.Sync.Mutex.create ~name:"qos" ();
    tenants;
    order = List.map fst classes;
    vtime = 0.;
    total_inflight = 0;
    max_total = max 1 max_total;
  }

let tenant_exn t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None -> raise (Unknown_tenant name)

let has_tenant t name = Hashtbl.mem t.tenants name

let admit t tn =
  tn.t_inflight <- tn.t_inflight + 1;
  if tn.t_inflight > tn.t_max_inflight then tn.t_max_inflight <- tn.t_inflight;
  t.total_inflight <- t.total_inflight + 1

(* Wake eligible waiters in virtual-finish-time order until slots run out.
   Called with the mutex held. *)
let dispatch t =
  let rec go () =
    if t.total_inflight < t.max_total then begin
      let best =
        List.fold_left
          (fun acc name ->
            let tn = tenant_exn t name in
            if
              Queue.is_empty tn.t_queue
              || tn.t_inflight >= tn.t_class.max_inflight
            then acc
            else
              let w = Queue.peek tn.t_queue in
              match acc with
              | Some (_, w') when w'.w_finish <= w.w_finish -> acc
              | _ -> Some (tn, w))
          None t.order
      in
      match best with
      | None -> ()
      | Some (tn, _) ->
          let w = Queue.pop tn.t_queue in
          if w.w_start > t.vtime then t.vtime <- w.w_start;
          admit t tn;
          Sim.Stats.Histogram.record tn.t_wait
            (Int64.sub (Kernel.Machine.now t.q_machine) w.w_enq_ns);
          Sim.Sync.Ivar.fill w.w_ivar ();
          go ()
    end
  in
  go ()

(** Block until this request is admitted. [cost] is the request's service
    demand in abstract units (payload-scaled); a tenant's virtual time
    advances by [cost / weight] per request. *)
let enter t ~tenant ~cost =
  Sim.Sync.Mutex.lock t.mu;
  let tn = tenant_exn t tenant in
  let start = Float.max t.vtime tn.t_last_finish in
  let finish = start +. (cost /. float_of_int tn.t_class.weight) in
  tn.t_last_finish <- finish;
  if
    Queue.is_empty tn.t_queue
    && tn.t_inflight < tn.t_class.max_inflight
    && t.total_inflight < t.max_total
  then begin
    (* Uncontended fast path: admit in place. Any queued waiters elsewhere
       are queued only because their own tenant is at its cap. *)
    admit t tn;
    Sim.Stats.Histogram.record tn.t_wait 0L;
    Sim.Sync.Mutex.unlock t.mu
  end
  else begin
    let w =
      {
        w_start = start;
        w_finish = finish;
        w_ivar = Sim.Sync.Ivar.create ();
        w_enq_ns = Kernel.Machine.now t.q_machine;
      }
    in
    Queue.push w tn.t_queue;
    Sim.Sync.Mutex.unlock t.mu;
    Sim.Sync.Ivar.read w.w_ivar
  end

let leave t ~tenant =
  Sim.Sync.Mutex.lock t.mu;
  let tn = tenant_exn t tenant in
  tn.t_inflight <- tn.t_inflight - 1;
  tn.t_completed <- tn.t_completed + 1;
  t.total_inflight <- t.total_inflight - 1;
  dispatch t;
  Sim.Sync.Mutex.unlock t.mu

let with_slot t ~tenant ~cost f =
  enter t ~tenant ~cost;
  Fun.protect ~finally:(fun () -> leave t ~tenant) f

(** {1 Exposed for tests and reporting} *)

type tenant_stats = {
  ts_completed : int;
  ts_max_inflight : int;
  ts_wait : Sim.Stats.Histogram.t;
}

let tenant_stats t name =
  let tn = tenant_exn t name in
  {
    ts_completed = tn.t_completed;
    ts_max_inflight = tn.t_max_inflight;
    ts_wait = tn.t_wait;
  }

(** Live queue-depth probe for [Machine.inspect]: per-tenant queued
    waiters, inflight slots, high-water mark and completions, plus the
    global slot pool. *)
let inspect t =
  let open Util.Json in
  let tenants =
    List.map
      (fun name ->
        let tn = tenant_exn t name in
        ( name,
          Obj
            [
              ("queued", Int (Queue.length tn.t_queue));
              ("inflight", Int tn.t_inflight);
              ("max_inflight", Int tn.t_max_inflight);
              ("completed", Int tn.t_completed);
            ] ))
      t.order
  in
  Obj
    [
      ("total_inflight", Int t.total_inflight);
      ("max_total", Int t.max_total);
      ("tenants", Obj tenants);
    ]
