(** The file-server wire protocol (NFS/9p-flavoured).

    Requests and server messages really are serialised to bytes and parsed
    back on the other side — the copies are what the wire crossing charges
    for, and the round trip is covered by property tests. Unlike the FUSE
    protocol, the decoders here are total: a truncated or corrupted frame
    comes back as [Error reason], never as an exception, because a server
    must survive garbage from a client.

    Framing:

      request = u16 opcode | u64 xid | payload
      smsg    = u16 mtag   | body
        mtag 1 (reply):  u64 xid | i32 errno (0 = ok) | u16 tag | payload
        mtag 2 (recall): u64 ino

    A recall is the server-initiated callback of NFSv4 delegations: it
    shares the reply channel but carries no xid — the client answers with a
    [Lease_return] request once it has flushed and dropped its cache. *)

type attr = { ino : int; kind : int; size : int; nlink : int; change : int }
(** kind: 0 = regular, 1 = directory, 2 = symlink. [change] is the server's
    change attribute, bumped on every data mutation — the client's cache
    validation handle (NFSv4 "change"). *)

type lease = L_none | L_read | L_write

type request =
  | Attach of { tenant : string }  (** session hello; binds the QoS class *)
  | Lookup of { dir : int; name : string }
  | Getattr of { ino : int }
  | Open of { ino : int; write : bool }
  | Create of { dir : int; name : string; write : bool }
  | Mkdir of { dir : int; name : string }
  | Unlink of { dir : int; name : string }
  | Read of { ino : int; off : int; len : int }
  | Write of { ino : int; off : int; data : Bytes.t; stable : bool }
  | Commit of { ino : int }
  | Readdir of { ino : int }
  | Release of { ino : int }
  | Lease_return of { ino : int }  (** recall ack: lease dropped *)
  | Readdir_filter of { dir : int; prog : string }
      (** pushdown scan: filter + stat batch in ONE round trip *)
  | Pushdown_get of { prog : string; key : int64 }
      (** device-side get(key): the server resolves the whole lookup below
          its syscall layer *)
  | Detach

type reply =
  | R_err of Kernel.Errno.t
  | R_ok
  | R_attr of attr
  | R_open of { oattr : attr; olease : lease }
  | R_read of { rdata : Bytes.t; rattr : attr }
  | R_write of { count : int; wattr : attr }
  | R_dirents of (string * int * int) list  (** name, ino, kind *)
  | R_dirents_plus of (string * attr) list
      (** pushdown scan result: surviving entries with attributes *)
  | R_value of Bytes.t  (** pushdown get result *)

type smsg = Reply of { xid : int; reply : reply } | Recall of { ino : int }

let opcode = function
  | Attach _ -> 1
  | Lookup _ -> 2
  | Getattr _ -> 3
  | Open _ -> 4
  | Create _ -> 5
  | Mkdir _ -> 6
  | Unlink _ -> 7
  | Read _ -> 8
  | Write _ -> 9
  | Commit _ -> 10
  | Readdir _ -> 11
  | Release _ -> 12
  | Lease_return _ -> 13
  | Detach -> 14
  | Readdir_filter _ -> 15
  | Pushdown_get _ -> 16

(** Human-readable op name, for flight-recorder notes and trace labels. *)
let request_name = function
  | Attach _ -> "attach"
  | Lookup _ -> "lookup"
  | Getattr _ -> "getattr"
  | Open _ -> "open"
  | Create _ -> "create"
  | Mkdir _ -> "mkdir"
  | Unlink _ -> "unlink"
  | Read _ -> "read"
  | Write _ -> "write"
  | Commit _ -> "commit"
  | Readdir _ -> "readdir"
  | Release _ -> "release"
  | Lease_return _ -> "lease_return"
  | Readdir_filter _ -> "readdir_filter"
  | Pushdown_get _ -> "pushdown_get"
  | Detach -> "detach"

exception Malformed of string
(* internal only: the public decoders catch it and return [Error _] *)

(* --- little builders over a Buffer ------------------------------- *)

let add_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let add_u64 b v =
  let x = Bytes.create 8 in
  Bytes.set_int64_le x 0 (Int64.of_int v);
  Buffer.add_bytes b x

let add_str b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_bytes b d =
  add_u64 b (Bytes.length d);
  Buffer.add_bytes b d

let add_bool b v = add_u16 b (if v then 1 else 0)

type cursor = { buf : Bytes.t; mutable pos : int }

let need c n =
  if n < 0 || c.pos + n > Bytes.length c.buf then
    raise (Malformed "short message")

let get_u16 c =
  need c 2;
  let v = Util.Bytesio.get_u16 c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let get_u64 c =
  need c 8;
  let v =
    try Util.Bytesio.get_int64_as_int c.buf c.pos
    with Invalid_argument _ -> raise (Malformed "u64 out of range")
  in
  c.pos <- c.pos + 8;
  if v < 0 then raise (Malformed "negative u64");
  v

let get_i32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

(* raw 64-bit value — pushdown keys use the full int64 range *)
let get_i64 c =
  need c 8;
  let v = Bytes.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_str c =
  let n = get_u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_data c =
  let n = get_u64 c in
  need c n;
  let d = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  d

let get_bool c = get_u16 c <> 0

(* --- requests ------------------------------------------------------ *)

let encode_request ~xid (r : request) : Bytes.t =
  let b = Buffer.create 64 in
  add_u16 b (opcode r);
  add_u64 b xid;
  (match r with
  | Attach { tenant } -> add_str b tenant
  | Lookup { dir; name } | Mkdir { dir; name } | Unlink { dir; name } ->
      add_u64 b dir;
      add_str b name
  | Getattr { ino }
  | Commit { ino }
  | Readdir { ino }
  | Release { ino }
  | Lease_return { ino } ->
      add_u64 b ino
  | Open { ino; write } ->
      add_u64 b ino;
      add_bool b write
  | Create { dir; name; write } ->
      add_u64 b dir;
      add_str b name;
      add_bool b write
  | Read { ino; off; len } ->
      add_u64 b ino;
      add_u64 b off;
      add_u64 b len
  | Write { ino; off; data; stable } ->
      add_u64 b ino;
      add_u64 b off;
      add_bool b stable;
      add_bytes b data
  | Readdir_filter { dir; prog } ->
      add_u64 b dir;
      add_str b prog
  | Pushdown_get { prog; key } ->
      add_str b prog;
      let x = Bytes.create 8 in
      Bytes.set_int64_le x 0 key;
      Buffer.add_bytes b x
  | Detach -> ());
  Buffer.to_bytes b

let decode_request_exn (m : Bytes.t) : int * request =
  let c = { buf = m; pos = 0 } in
  let op = get_u16 c in
  let xid = get_u64 c in
  let req =
    match op with
    | 1 -> Attach { tenant = get_str c }
    | 2 ->
        let dir = get_u64 c in
        Lookup { dir; name = get_str c }
    | 3 -> Getattr { ino = get_u64 c }
    | 4 ->
        let ino = get_u64 c in
        Open { ino; write = get_bool c }
    | 5 ->
        let dir = get_u64 c in
        let name = get_str c in
        Create { dir; name; write = get_bool c }
    | 6 ->
        let dir = get_u64 c in
        Mkdir { dir; name = get_str c }
    | 7 ->
        let dir = get_u64 c in
        Unlink { dir; name = get_str c }
    | 8 ->
        let ino = get_u64 c in
        let off = get_u64 c in
        Read { ino; off; len = get_u64 c }
    | 9 ->
        let ino = get_u64 c in
        let off = get_u64 c in
        let stable = get_bool c in
        Write { ino; off; data = get_data c; stable }
    | 10 -> Commit { ino = get_u64 c }
    | 11 -> Readdir { ino = get_u64 c }
    | 12 -> Release { ino = get_u64 c }
    | 13 -> Lease_return { ino = get_u64 c }
    | 14 -> Detach
    | 15 ->
        let dir = get_u64 c in
        Readdir_filter { dir; prog = get_str c }
    | 16 ->
        let prog = get_str c in
        Pushdown_get { prog; key = get_i64 c }
    | n -> raise (Malformed (Printf.sprintf "bad opcode %d" n))
  in
  (xid, req)

let decode_request (m : Bytes.t) : (int * request, string) result =
  match decode_request_exn m with
  | v -> Ok v
  | exception Malformed why -> Error why
  | exception Invalid_argument why -> Error why

(* --- server messages ----------------------------------------------- *)

let add_attr b (a : attr) =
  add_u64 b a.ino;
  add_u16 b a.kind;
  add_u64 b a.size;
  add_u64 b a.nlink;
  add_u64 b a.change

let get_attr c =
  let ino = get_u64 c in
  let kind = get_u16 c in
  let size = get_u64 c in
  let nlink = get_u64 c in
  let change = get_u64 c in
  { ino; kind; size; nlink; change }

let lease_code = function L_none -> 0 | L_read -> 1 | L_write -> 2

let lease_of_code = function
  | 0 -> L_none
  | 1 -> L_read
  | 2 -> L_write
  | n -> raise (Malformed (Printf.sprintf "bad lease code %d" n))

let encode_smsg (m : smsg) : Bytes.t =
  let b = Buffer.create 64 in
  (match m with
  | Recall { ino } ->
      add_u16 b 2;
      add_u64 b ino
  | Reply { xid; reply } ->
      add_u16 b 1;
      add_u64 b xid;
      let err, tag =
        match reply with
        | R_err e -> (Kernel.Errno.to_code e, 0)
        | R_ok -> (0, 1)
        | R_attr _ -> (0, 2)
        | R_open _ -> (0, 3)
        | R_read _ -> (0, 4)
        | R_write _ -> (0, 5)
        | R_dirents _ -> (0, 6)
        | R_dirents_plus _ -> (0, 7)
        | R_value _ -> (0, 8)
      in
      let x = Bytes.create 4 in
      Bytes.set_int32_le x 0 (Int32.of_int err);
      Buffer.add_bytes b x;
      add_u16 b tag;
      (match reply with
      | R_err _ | R_ok -> ()
      | R_attr a -> add_attr b a
      | R_open { oattr; olease } ->
          add_attr b oattr;
          add_u16 b (lease_code olease)
      | R_read { rdata; rattr } ->
          add_attr b rattr;
          add_bytes b rdata
      | R_write { count; wattr } ->
          add_u64 b count;
          add_attr b wattr
      | R_dirents des ->
          add_u64 b (List.length des);
          List.iter
            (fun (name, ino, kind) ->
              add_str b name;
              add_u64 b ino;
              add_u16 b kind)
            des
      | R_dirents_plus des ->
          add_u64 b (List.length des);
          List.iter
            (fun (name, a) ->
              add_str b name;
              add_attr b a)
            des
      | R_value d -> add_bytes b d));
  Buffer.to_bytes b

let decode_smsg_exn (m : Bytes.t) : smsg =
  let c = { buf = m; pos = 0 } in
  match get_u16 c with
  | 2 -> Recall { ino = get_u64 c }
  | 1 ->
      let xid = get_u64 c in
      let err = get_i32 c in
      let tag = get_u16 c in
      let reply =
        if err <> 0 then
          match Kernel.Errno.of_code err with
          | Some e -> R_err e
          | None -> R_err Kernel.Errno.EIO
        else
          match tag with
          | 1 -> R_ok
          | 2 -> R_attr (get_attr c)
          | 3 ->
              let oattr = get_attr c in
              R_open { oattr; olease = lease_of_code (get_u16 c) }
          | 4 ->
              let rattr = get_attr c in
              R_read { rdata = get_data c; rattr }
          | 5 ->
              let count = get_u64 c in
              R_write { count; wattr = get_attr c }
          | 6 ->
              let n = get_u64 c in
              if n > Bytes.length c.buf then raise (Malformed "dirent count");
              R_dirents
                (List.init n (fun _ ->
                     let name = get_str c in
                     let ino = get_u64 c in
                     let kind = get_u16 c in
                     (name, ino, kind)))
          | 7 ->
              let n = get_u64 c in
              if n > Bytes.length c.buf then raise (Malformed "dirent count");
              R_dirents_plus
                (List.init n (fun _ ->
                     let name = get_str c in
                     (name, get_attr c)))
          | 8 -> R_value (get_data c)
          | n -> raise (Malformed (Printf.sprintf "bad reply tag %d" n))
      in
      Reply { xid; reply }
  | n -> raise (Malformed (Printf.sprintf "bad message tag %d" n))

let decode_smsg (m : Bytes.t) : (smsg, string) result =
  match decode_smsg_exn m with
  | v -> Ok v
  | exception Malformed why -> Error why
  | exception Invalid_argument why -> Error why
