(** File-server client: RPC plumbing plus the attribute and data caches
    that leases make safe.

    While the client holds a lease on an inode it may answer [getattr]
    and [read] from its cache, and under a write lease it buffers writes
    locally (a dirty extent flushed on [commit], [close_] or recall).
    When the server recalls the lease — some other session wants
    conflicting access — a recall fiber flushes the dirty extent with a
    stable write, drops the cache, and answers [Lease_return]; only then
    does the server admit the conflicting op, so no other client can ever
    observe pre-flush state, and this client stops trusting its cache the
    moment the lease is gone. *)

module Errno = Kernel.Errno
module Ivar = Sim.Sync.Ivar

type cfile = {
  f_ino : int;
  mutable f_lease : Proto.lease;
  mutable f_attr : Proto.attr;  (** local view (size includes dirty bytes) *)
  mutable f_srv_size : int;  (** size last confirmed by the server *)
  mutable f_data : Bytes.t;
  mutable f_have : int;  (** [0, f_have) of [f_data] mirrors the server *)
  mutable f_dirty_lo : int;
  mutable f_dirty_hi : int;  (** dirty extent [lo, hi); lo >= hi = clean *)
}

type t = {
  cl_machine : Kernel.Machine.t;
  cl_conn : Wire.conn;
  cl_tenant : string;
  mutable cl_next_xid : int;
  cl_pending : (int, Proto.reply Ivar.t) Hashtbl.t;
  cl_files : (int, cfile) Hashtbl.t;
  mutable cl_root : Proto.attr option;
  cl_hits : Sim.Stats.Counter.t;
  cl_misses : Sim.Stats.Counter.t;
  cl_local_writes : Sim.Stats.Counter.t;
}

let tenant t = t.cl_tenant
let root t = match t.cl_root with Some a -> a | None -> invalid_arg "no root"

let rpc t (req : Proto.request) : Proto.reply =
  let xid = t.cl_next_xid in
  t.cl_next_xid <- xid + 1;
  let iv = Ivar.create () in
  Hashtbl.replace t.cl_pending xid iv;
  (try Wire.send_request t.cl_conn (Proto.encode_request ~xid req)
   with Wire.Connection_closed ->
     if not (Ivar.is_full iv) then Ivar.fill iv (Proto.R_err Errno.EIO));
  let r = Ivar.read iv in
  Hashtbl.remove t.cl_pending xid;
  r

(* --- cache bookkeeping -------------------------------------------- *)

let dirty f = f.f_dirty_hi > f.f_dirty_lo

let ensure_cap f n =
  if Bytes.length f.f_data < n then begin
    let nd = Bytes.make (max n ((2 * Bytes.length f.f_data) + 4096)) '\000' in
    Bytes.blit f.f_data 0 nd 0 (Bytes.length f.f_data);
    f.f_data <- nd
  end

let note_attr f (a : Proto.attr) =
  f.f_srv_size <- a.size;
  if f.f_lease = Proto.L_write then
    f.f_attr <- { a with size = max a.size f.f_attr.size }
  else f.f_attr <- a

let drop_cache f =
  f.f_have <- 0;
  f.f_dirty_lo <- 0;
  f.f_dirty_hi <- 0

let fresh_cfile ino (a : Proto.attr) lease =
  {
    f_ino = ino;
    f_lease = lease;
    f_attr = a;
    f_srv_size = a.size;
    f_data = Bytes.create 0;
    f_have = 0;
    f_dirty_lo = 0;
    f_dirty_hi = 0;
  }

(* [lo, hi) readable from cache? The valid region is the server-backed
   prefix [0, f_have) plus the dirty extent. *)
let covered f lo hi =
  let contig =
    if f.f_dirty_lo <= f.f_have && f.f_dirty_hi > f.f_have then f.f_dirty_hi
    else f.f_have
  in
  hi <= contig || (lo >= f.f_dirty_lo && hi <= f.f_dirty_hi)

let flush_dirty t f =
  if dirty f then begin
    let lo = f.f_dirty_lo and hi = f.f_dirty_hi in
    f.f_dirty_lo <- 0;
    f.f_dirty_hi <- 0;
    let data = Bytes.sub f.f_data lo (hi - lo) in
    match rpc t (Proto.Write { ino = f.f_ino; off = lo; data; stable = true }) with
    | Proto.R_write { wattr; _ } ->
        note_attr f wattr;
        (* the flushed extent is now server-backed *)
        if lo <= f.f_have then f.f_have <- max f.f_have hi;
        Ok ()
    | Proto.R_err e -> Error e
    | _ -> Error Errno.EIO
  end
  else Ok ()

(* --- recall handling ------------------------------------------------ *)

let handle_recall t ino =
  (match Hashtbl.find_opt t.cl_files ino with
  | None -> ()
  | Some f ->
      (* Stop trusting the cache first, then flush, then return. *)
      f.f_lease <- Proto.L_none;
      ignore (flush_dirty t f);
      drop_cache f);
  ignore (rpc t (Proto.Lease_return { ino }))

let rec recv_loop t =
  match Wire.recv_smsg t.cl_conn with
  | None ->
      Hashtbl.iter
        (fun _ iv ->
          if not (Ivar.is_full iv) then Ivar.fill iv (Proto.R_err Errno.EIO))
        t.cl_pending
  | Some m ->
      (match Proto.decode_smsg m with
      | Error _ -> ()
      | Ok (Proto.Reply { xid; reply }) -> (
          match Hashtbl.find_opt t.cl_pending xid with
          | Some iv when not (Ivar.is_full iv) -> Ivar.fill iv reply
          | _ -> ())
      | Ok (Proto.Recall { ino }) ->
          (* A recall needs its own fiber: flushing sends RPCs whose
             replies arrive on the very channel this loop drains. *)
          Kernel.Machine.spawn ~name:"client-recall" t.cl_machine (fun () ->
              handle_recall t ino));
      recv_loop t

(* --- session --------------------------------------------------------- *)

(** Connect and attach as [tenant]. Must run inside a simulation fiber. *)
let attach machine listener ~tenant : (t, Errno.t) result =
  let conn = Wire.connect listener in
  let t =
    {
      cl_machine = machine;
      cl_conn = conn;
      cl_tenant = tenant;
      cl_next_xid = 1;
      cl_pending = Hashtbl.create 16;
      cl_files = Hashtbl.create 16;
      cl_root = None;
      cl_hits = Kernel.Machine.counter machine "client_cache_hits";
      cl_misses = Kernel.Machine.counter machine "client_cache_misses";
      cl_local_writes = Kernel.Machine.counter machine "client_local_writes";
    }
  in
  Kernel.Machine.spawn ~name:"client-recv" machine (fun () -> recv_loop t);
  match rpc t (Proto.Attach { tenant }) with
  | Proto.R_attr a ->
      t.cl_root <- Some a;
      Ok t
  | r ->
      Wire.close conn;
      (match r with Proto.R_err e -> Error e | _ -> Error Errno.EIO)

(** Flush nothing, just leave: callers [close_] files first. *)
let detach t =
  (match rpc t Proto.Detach with _ -> ());
  Wire.close t.cl_conn

(* --- namespace ops (always remote) ---------------------------------- *)

let expect_attr = function
  | Proto.R_attr a -> Ok a
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

let lookup t ~dir ~name = expect_attr (rpc t (Proto.Lookup { dir; name }))
let mkdir t ~dir ~name = expect_attr (rpc t (Proto.Mkdir { dir; name }))

let readdir t ino =
  match rpc t (Proto.Readdir { ino }) with
  | Proto.R_dirents des -> Ok des
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

(* Pushdown scan: the server runs the registered filter program and ships
   back only the survivors, each with attributes — one round trip instead
   of readdir + per-entry getattr. *)
let readdir_filter t ino ~prog =
  match rpc t (Proto.Readdir_filter { dir = ino; prog }) with
  | Proto.R_dirents_plus des -> Ok des
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

(* Device-side get(key): resolved entirely below the server's syscall
   layer. *)
let pushdown_get t ~prog ~key =
  match rpc t (Proto.Pushdown_get { prog; key }) with
  | Proto.R_value v -> Ok v
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

let unlink t ~dir ~name =
  match rpc t (Proto.Unlink { dir; name }) with
  | Proto.R_ok -> Ok ()
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

(* --- files ----------------------------------------------------------- *)

let register_open t ino (oattr : Proto.attr) olease =
  (match Hashtbl.find_opt t.cl_files ino with
  | Some f ->
      (* Cache survives re-open only if nothing changed server-side. *)
      if f.f_attr.change <> oattr.change then drop_cache f;
      f.f_lease <- olease;
      f.f_attr <- oattr;
      f.f_srv_size <- oattr.size
  | None -> Hashtbl.replace t.cl_files ino (fresh_cfile ino oattr olease));
  oattr

let open_ t ino ~write : (Proto.attr, Errno.t) result =
  match rpc t (Proto.Open { ino; write }) with
  | Proto.R_open { oattr; olease } -> Ok (register_open t ino oattr olease)
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

let create t ~dir ~name ~write : (Proto.attr, Errno.t) result =
  match rpc t (Proto.Create { dir; name; write }) with
  | Proto.R_open { oattr; olease } ->
      Ok (register_open t oattr.ino oattr olease)
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

let getattr t ino : (Proto.attr, Errno.t) result =
  match Hashtbl.find_opt t.cl_files ino with
  | Some f when f.f_lease <> Proto.L_none ->
      Sim.Stats.Counter.incr t.cl_hits;
      Ok f.f_attr
  | cf -> (
      Sim.Stats.Counter.incr t.cl_misses;
      match rpc t (Proto.Getattr { ino }) with
      | Proto.R_attr a ->
          (match cf with Some f -> note_attr f a | None -> ());
          Ok a
      | Proto.R_err e -> Error e
      | _ -> Error Errno.EIO)

let remote_read t ino ~off ~len =
  match rpc t (Proto.Read { ino; off; len }) with
  | Proto.R_read { rdata; rattr } -> Ok (rdata, rattr)
  | Proto.R_err e -> Error e
  | _ -> Error Errno.EIO

let read t ino ~off ~len : (Bytes.t, Errno.t) result =
  match Hashtbl.find_opt t.cl_files ino with
  | Some f when f.f_lease <> Proto.L_none ->
      let size = f.f_attr.size in
      let off = min off size in
      let len_eff = max 0 (min len (size - off)) in
      let hi = off + len_eff in
      if covered f off hi then begin
        Sim.Stats.Counter.incr t.cl_hits;
        Ok (Bytes.sub f.f_data off len_eff)
      end
      else begin
        Sim.Stats.Counter.incr t.cl_misses;
        match remote_read t ino ~off ~len with
        | Error e -> Error e
        | Ok (rdata, rattr) ->
            note_attr f rattr;
            let n = Bytes.length rdata in
            (* Absorb into the prefix cache — without clobbering dirty
               bytes, which are newer than what the server sent. *)
            if f.f_lease <> Proto.L_none && off <= f.f_have && n > 0 then begin
              ensure_cap f (off + n);
              let dl = f.f_dirty_lo and dh = f.f_dirty_hi in
              let saved =
                if dirty f then Bytes.sub f.f_data dl (dh - dl)
                else Bytes.empty
              in
              Bytes.blit rdata 0 f.f_data off n;
              if dirty f then Bytes.blit saved 0 f.f_data dl (dh - dl);
              f.f_have <- max f.f_have (off + n)
            end;
            Ok rdata
      end
  | _ -> (
      Sim.Stats.Counter.incr t.cl_misses;
      match remote_read t ino ~off ~len with
      | Ok (rdata, _) -> Ok rdata
      | Error e -> Error e)

(* Is it safe to grow the dirty extent to swallow the gap between it and
   a new write at [off, off+n)? Only if the gap bytes we would flush are
   known-correct: either server-backed cache, or past the server's EOF
   (zeros, exactly what a hole would read back as). *)
let merge_safe f off n =
  if not (dirty f) then true
  else if off <= f.f_dirty_hi && off + n >= f.f_dirty_lo then true
  else
    let glo, ghi =
      if off >= f.f_dirty_hi then (f.f_dirty_hi, off)
      else (off + n, f.f_dirty_lo)
    in
    ghi <= f.f_have || glo >= f.f_srv_size

let write t ino ~off (data : Bytes.t) : (int, Errno.t) result =
  let n = Bytes.length data in
  match Hashtbl.find_opt t.cl_files ino with
  | Some f when f.f_lease = Proto.L_write ->
      let buffer () =
        ensure_cap f (off + n);
        Bytes.blit data 0 f.f_data off n;
        if dirty f then begin
          f.f_dirty_lo <- min f.f_dirty_lo off;
          f.f_dirty_hi <- max f.f_dirty_hi (off + n)
        end
        else begin
          f.f_dirty_lo <- off;
          f.f_dirty_hi <- off + n
        end;
        if off + n > f.f_attr.size then
          f.f_attr <- { f.f_attr with size = off + n };
        Sim.Stats.Counter.incr t.cl_local_writes;
        Ok n
      in
      if merge_safe f off n then buffer ()
      else begin
        match flush_dirty t f with Error e -> Error e | Ok () -> buffer ()
      end
  | cf -> (
      match rpc t (Proto.Write { ino; off; data; stable = false }) with
      | Proto.R_write { count; wattr } ->
          (match cf with Some f -> note_attr f wattr | None -> ());
          Ok count
      | Proto.R_err e -> Error e
      | _ -> Error Errno.EIO)

(** Flush this client's buffered writes and make the file durable. *)
let commit t ino : (unit, Errno.t) result =
  let flushed =
    match Hashtbl.find_opt t.cl_files ino with
    | Some f -> flush_dirty t f
    | None -> Ok ()
  in
  match flushed with
  | Error e -> Error e
  | Ok () -> (
      match rpc t (Proto.Commit { ino }) with
      | Proto.R_ok -> Ok ()
      | Proto.R_err e -> Error e
      | _ -> Error Errno.EIO)

(** Flush, give the lease back, forget the file. *)
let close_ t ino : (unit, Errno.t) result =
  match Hashtbl.find_opt t.cl_files ino with
  | None -> Ok ()
  | Some f -> (
      let flushed = flush_dirty t f in
      f.f_lease <- Proto.L_none;
      Hashtbl.remove t.cl_files ino;
      match (flushed, rpc t (Proto.Release { ino = f.f_ino })) with
      | Error e, _ -> Error e
      | Ok (), (Proto.R_ok | Proto.R_err _) -> Ok ()
      | Ok (), _ -> Ok ())

(** {1 Exposed for tests} *)

let lease t ino =
  match Hashtbl.find_opt t.cl_files ino with
  | Some f -> f.f_lease
  | None -> Proto.L_none

let cached_size t ino =
  match Hashtbl.find_opt t.cl_files ino with
  | Some f -> Some f.f_attr.size
  | None -> None

(** Inject a raw frame — used by the garbage-fuzz test. *)
let send_raw t bytes = Wire.send_request t.cl_conn bytes
