(** Per-tenant SLO monitoring: sliding-window latency percentiles,
    throughput, and burn-rate breach detection for the file server.

    Each tenant class gets a monitor fed one sample per completed request
    (virtual completion time + latency). The monitor keeps a sliding
    window of recent samples and maintains, in O(1) per sample, the count
    of window samples over the tenant's latency target. The *burn rate*
    is the fraction of the window over target; when it exceeds the error
    budget the tenant enters a breach episode — counted once per episode
    (edge-triggered), noted in the flight recorder, and cleared when the
    burn rate falls back under budget.

    Counters ([<tenant>_ops], [<tenant>_over_target], [<tenant>_breaches])
    live in a stats registry the constructor registers with the machine
    under the ["slo"] prefix, so [Machine.counter_snapshot] — and
    therefore [bench --json] and the bench-diff gate — see them without
    extra plumbing. Percentiles are computed on demand from the window
    ({!summary}), which is how the bench extracts slo_p99_ms rows. *)

type monitor = {
  m_tenant : string;
  m_target_ns : int64;
  m_window : (int64 * int64) Queue.t;  (** (completion ts, latency) *)
  mutable m_over : int;  (** window samples over target *)
  mutable m_breaching : bool;  (** currently inside a breach episode *)
  m_ops : Sim.Stats.Counter.t;
  m_over_total : Sim.Stats.Counter.t;
  m_breaches : Sim.Stats.Counter.t;
}

type t = {
  machine : Kernel.Machine.t;
  stats : Sim.Stats.t;
  monitors : (string, monitor) Hashtbl.t;
  order : string list;
  window_ns : int64;
  budget : float;  (** tolerated over-target fraction of the window *)
  min_samples : int;  (** no breach verdicts from a near-empty window *)
}

let default_target_ns = 20_000_000L (* 20 ms *)
let default_window_ns = 1_000_000_000L (* 1 s of virtual time *)
let default_budget = 0.01

(** One monitor per tenant class. [targets] overrides the per-tenant p99
    target (ns); tenants not listed get [default_target_ns]. *)
let create ?(window_ns = default_window_ns) ?(budget = default_budget)
    ?(min_samples = 20) ?(targets = []) machine tenants =
  let stats = Sim.Stats.create () in
  Kernel.Machine.register_stats machine ~prefix:"slo" stats;
  let monitors = Hashtbl.create 8 in
  List.iter
    (fun name ->
      Hashtbl.replace monitors name
        {
          m_tenant = name;
          m_target_ns =
            Option.value ~default:default_target_ns
              (List.assoc_opt name targets);
          m_window = Queue.create ();
          m_over = 0;
          m_breaching = false;
          m_ops = Sim.Stats.counter stats (name ^ "_ops");
          m_over_total = Sim.Stats.counter stats (name ^ "_over_target");
          m_breaches = Sim.Stats.counter stats (name ^ "_breaches");
        })
    tenants;
  { machine; stats; monitors; order = tenants; window_ns; budget; min_samples }

let monitor_exn t tenant =
  match Hashtbl.find_opt t.monitors tenant with
  | Some m -> m
  | None -> invalid_arg ("Slo.record: unknown tenant " ^ tenant)

let evict t m now =
  let horizon = Int64.sub now t.window_ns in
  let rec go () =
    match Queue.peek_opt m.m_window with
    | Some (ts, lat) when Int64.compare ts horizon < 0 ->
        ignore (Queue.pop m.m_window);
        if Int64.compare lat m.m_target_ns > 0 then m.m_over <- m.m_over - 1;
        go ()
    | _ -> ()
  in
  go ()

(** Feed one completed request. O(1) amortised. *)
let record t ~tenant lat_ns =
  let m = monitor_exn t tenant in
  let now = Kernel.Machine.now t.machine in
  evict t m now;
  Queue.push (now, lat_ns) m.m_window;
  Sim.Stats.Counter.incr m.m_ops;
  let over = Int64.compare lat_ns m.m_target_ns > 0 in
  if over then begin
    m.m_over <- m.m_over + 1;
    Sim.Stats.Counter.incr m.m_over_total
  end;
  let n = Queue.length m.m_window in
  if n >= t.min_samples then begin
    let burn = float_of_int m.m_over /. float_of_int n in
    if burn > t.budget && not m.m_breaching then begin
      m.m_breaching <- true;
      Sim.Stats.Counter.incr m.m_breaches;
      Sim.Flight.note ~sev:Sim.Flight.Warn
        (Kernel.Machine.flight t.machine)
        ~kind:"slo"
        (Printf.sprintf "tenant %s burn rate %.3f over budget %.3f (%d/%d over %Ld ns)"
           tenant burn t.budget m.m_over n m.m_target_ns)
    end
    else if burn <= t.budget && m.m_breaching then m.m_breaching <- false
  end

type summary = {
  s_tenant : string;
  s_target_ns : int64;
  s_ops : int64;  (** total requests ever recorded *)
  s_window : int;  (** samples currently in the window *)
  s_p50_ns : int64;
  s_p99_ns : int64;
  s_throughput : float;  (** window ops per virtual second *)
  s_over_target : int64;
  s_breaches : int64;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0L
  else sorted.(min (n - 1) (int_of_float (float_of_int (n - 1) *. p)))

(** Current window view of one tenant (evicts stale samples first). *)
let summary t tenant =
  let m = monitor_exn t tenant in
  evict t m (Kernel.Machine.now t.machine);
  let lats =
    Queue.fold (fun acc (_, lat) -> lat :: acc) [] m.m_window
    |> Array.of_list
  in
  Array.sort Int64.compare lats;
  let n = Queue.length m.m_window in
  let throughput =
    if n = 0 then 0.
    else
      let span =
        match (Queue.peek_opt m.m_window, Queue.fold (fun _ s -> Some s) None m.m_window) with
        | Some (first, _), Some (last, _) when Int64.compare last first > 0 ->
            Int64.to_float (Int64.sub last first) /. 1e9
        | _ -> 0.
      in
      if span > 0. then float_of_int n /. span
      else float_of_int n /. (Int64.to_float t.window_ns /. 1e9)
  in
  {
    s_tenant = tenant;
    s_target_ns = m.m_target_ns;
    s_ops = Sim.Stats.Counter.get m.m_ops;
    s_window = n;
    s_p50_ns = percentile lats 0.50;
    s_p99_ns = percentile lats 0.99;
    s_throughput = throughput;
    s_over_target = Sim.Stats.Counter.get m.m_over_total;
    s_breaches = Sim.Stats.Counter.get m.m_breaches;
  }

let summaries t = List.map (summary t) t.order
let tenants t = t.order

let set_target t ~tenant ns =
  let m = monitor_exn t tenant in
  (* rebuild the over-count against the new target *)
  let m' = { m with m_target_ns = ns } in
  m'.m_over <- 0;
  Queue.iter
    (fun (_, lat) ->
      if Int64.compare lat ns > 0 then m'.m_over <- m'.m_over + 1)
    m'.m_window;
  Hashtbl.replace t.monitors tenant m'

(** Live probe for [Machine.inspect]: per-tenant window percentiles,
    throughput, and breach counters. *)
let inspect t =
  let open Util.Json in
  Obj
    (List.map
       (fun s ->
         ( s.s_tenant,
           Obj
             [
               ("target_ms", Float (Int64.to_float s.s_target_ns /. 1e6));
               ("ops", Int (Int64.to_int s.s_ops));
               ("window_samples", Int s.s_window);
               ("p50_ms", Float (Int64.to_float s.s_p50_ns /. 1e6));
               ("p99_ms", Float (Int64.to_float s.s_p99_ns /. 1e6));
               ("throughput_ops_s", Float s.s_throughput);
               ("over_target", Int (Int64.to_int s.s_over_target));
               ("breaches", Int (Int64.to_int s.s_breaches));
             ] ))
       (summaries t))
