(** Server-side lease (delegation) table, the coherence heart of the
    server: a client may serve reads (and buffer writes) from its local
    cache only while it holds a lease on the inode, and the server admits
    no conflicting access until every conflicting lease has been recalled
    and returned — so a stale client cache is impossible by construction.

    Grants per inode:
    - any number of read leases may coexist;
    - a write lease is exclusive against every other session.

    Two flavours of holding:
    - *durable* holds back an [Open]/[Create] grant: the client caches
      until the server recalls (callback over the wire; the client flushes
      dirty data and answers [Lease_return]) or the client releases;
    - *transient* pins taken around a single server-side operation, so an
      in-flight conflicting op also blocks a new grant. Transient pins are
      never recalled — they drain by themselves.

    A session's own pins and durable lease never conflict with each other,
    which is what lets a client flush dirty writes *during* the recall of
    the very lease that made them dirty. *)

type kind = Read | Write

type holder = {
  h_session : int;
  mutable h_kind : kind;
  mutable h_pins : int;  (** in-flight ops by this session *)
  mutable h_durable : bool;  (** client-visible grant *)
  mutable h_recalled : bool;  (** recall sent, waiting for Lease_return *)
  mutable h_ready : bool;
      (** the grant's reply has been put on the wire. A recall enqueued
          before the granting [R_open] would be processed first by the
          client — acking a lease it does not know it holds — so recalls
          wait for readiness (see {!grant_ready}). *)
}

type entry = { mutable holders : holder list }

type t = {
  mu : Sim.Sync.Mutex.t;
  cv : Sim.Sync.Condvar.t;
  entries : (int, entry) Hashtbl.t;
  mutable recall : session:int -> ino:int -> unit;
      (** wired to the server's recall callback after construction *)
  recalls : Sim.Stats.Counter.t;
}

let create machine =
  {
    mu = Sim.Sync.Mutex.create ~name:"lease" ();
    cv = Sim.Sync.Condvar.create ();
    entries = Hashtbl.create 256;
    recall = (fun ~session:_ ~ino:_ -> ());
    recalls = Kernel.Machine.counter machine "server_recalls";
  }

let set_recall t f = t.recall <- f

let entry_of t ino =
  match Hashtbl.find_opt t.entries ino with
  | Some e -> e
  | None ->
      let e = { holders = [] } in
      Hashtbl.replace t.entries ino e;
      e

let holder_gone t ino e h =
  if h.h_pins = 0 && not h.h_durable then begin
    e.holders <- List.filter (fun x -> x != h) e.holders;
    if e.holders = [] then Hashtbl.remove t.entries ino
  end

(* Does [h] (held by another session) conflict with a [kind] acquisition? *)
let conflicts kind h =
  match kind with Read -> h.h_kind = Write | Write -> true

(** Pin [ino] for one operation by [session], waiting out (and recalling)
    conflicting leases. If [durable] the pin also grants — or upgrades
    to — a client-visible lease of the same kind. Returns the granted
    durable kind (the acquisition kind when [durable]). *)
let acquire t ~session ~ino ?(durable = false) kind =
  Sim.Sync.Mutex.lock t.mu;
  let rec try_acquire () =
    let e = entry_of t ino in
    let mine =
      List.find_opt (fun h -> h.h_session = session) e.holders
    in
    let others = List.filter (fun h -> h.h_session <> session) e.holders in
    let blocking = List.filter (conflicts kind) others in
    (* A durable re-grant must not slip in while our own previous grant
       has a recall outstanding: the in-flight [Lease_return] would land
       after the re-grant and silently revoke it, leaving the client
       caching under a lease the server no longer tracks. Wait for the
       return to complete first. Transient pins stay exempt — the flush
       that answers the recall needs them. *)
    let own_recall_pending =
      durable
      && match mine with Some h -> h.h_recalled | None -> false
    in
    if blocking = [] && not own_recall_pending then begin
      (match mine with
      | Some h ->
          h.h_pins <- h.h_pins + 1;
          if kind = Write then h.h_kind <- Write;
          if durable then begin
            h.h_durable <- true;
            h.h_ready <- false
          end
      | None ->
          e.holders <-
            {
              h_session = session;
              h_kind = kind;
              h_pins = 1;
              h_durable = durable;
              h_recalled = false;
              h_ready = not durable;
            }
            :: e.holders)
    end
    else begin
      (* Break durable conflicting leases; transient pins just drain. A
         grant whose reply is not yet on the wire cannot be recalled —
         {!grant_ready} will broadcast once it is. *)
      List.iter
        (fun h ->
          if h.h_durable && h.h_ready && not h.h_recalled then begin
            h.h_recalled <- true;
            Sim.Stats.Counter.incr t.recalls;
            t.recall ~session:h.h_session ~ino
          end)
        blocking;
      Sim.Sync.Condvar.wait t.cv t.mu;
      try_acquire ()
    end
  in
  try_acquire ();
  Sim.Sync.Mutex.unlock t.mu

(** The reply carrying this session's durable grant has been enqueued on
    the connection: the lease may be recalled from now on. *)
let grant_ready t ~session ~ino =
  Sim.Sync.Mutex.lock t.mu;
  (match Hashtbl.find_opt t.entries ino with
  | None -> ()
  | Some e -> (
      match List.find_opt (fun h -> h.h_session = session) e.holders with
      | Some h -> h.h_ready <- true
      | None -> ()));
  Sim.Sync.Condvar.broadcast t.cv;
  Sim.Sync.Mutex.unlock t.mu

(** Drop one operation pin. *)
let release_pin t ~session ~ino =
  Sim.Sync.Mutex.lock t.mu;
  (match Hashtbl.find_opt t.entries ino with
  | None -> ()
  | Some e -> (
      match List.find_opt (fun h -> h.h_session = session) e.holders with
      | None -> ()
      | Some h ->
          h.h_pins <- max 0 (h.h_pins - 1);
          holder_gone t ino e h));
  Sim.Sync.Condvar.broadcast t.cv;
  Sim.Sync.Mutex.unlock t.mu

(** Drop the durable grant ([Release] or [Lease_return] from the client). *)
let unlease t ~session ~ino =
  Sim.Sync.Mutex.lock t.mu;
  (match Hashtbl.find_opt t.entries ino with
  | None -> ()
  | Some e -> (
      match List.find_opt (fun h -> h.h_session = session) e.holders with
      | None -> ()
      | Some h ->
          h.h_durable <- false;
          h.h_recalled <- false;
          h.h_ready <- true;
          holder_gone t ino e h));
  Sim.Sync.Condvar.broadcast t.cv;
  Sim.Sync.Mutex.unlock t.mu

(** Session teardown: drop every durable grant the session still holds. *)
let release_session t ~session =
  Sim.Sync.Mutex.lock t.mu;
  let inos =
    Hashtbl.fold
      (fun ino e acc ->
        if List.exists (fun h -> h.h_session = session && h.h_durable) e.holders
        then ino :: acc
        else acc)
      t.entries []
  in
  List.iter
    (fun ino ->
      let e = Hashtbl.find t.entries ino in
      List.iter
        (fun h ->
          if h.h_session = session then begin
            h.h_durable <- false;
            h.h_recalled <- false;
            h.h_ready <- true;
            holder_gone t ino e h
          end)
        e.holders)
    inos;
  Sim.Sync.Condvar.broadcast t.cv;
  Sim.Sync.Mutex.unlock t.mu

(** {1 Exposed for tests} *)

(** Sessions holding a durable lease on [ino], with the kind. *)
let durable_holders t ino =
  Sim.Sync.Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.entries ino with
    | None -> []
    | Some e ->
        List.filter_map
          (fun h -> if h.h_durable then Some (h.h_session, h.h_kind) else None)
          e.holders
  in
  Sim.Sync.Mutex.unlock t.mu;
  r

let recall_count t = Sim.Stats.Counter.get t.recalls

(** Live lease-table probe for [Machine.inspect]: every leased inode with
    its holders (session, kind, pins, durable/recalled/ready flags). *)
let inspect t =
  let open Util.Json in
  Sim.Sync.Mutex.lock t.mu;
  let entries =
    Hashtbl.fold
      (fun ino e acc -> if e.holders = [] then acc else (ino, e) :: acc)
      t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let r =
    Obj
      [
        ("inodes", Int (List.length entries));
        ("recalls", Int (Int64.to_int (Sim.Stats.Counter.get t.recalls)));
        ( "entries",
          List
            (List.map
               (fun (ino, e) ->
                 Obj
                   [
                     ("ino", Int ino);
                     ( "holders",
                       List
                         (List.map
                            (fun h ->
                              Obj
                                [
                                  ("session", Int h.h_session);
                                  ( "kind",
                                    String
                                      (match h.h_kind with
                                      | Read -> "read"
                                      | Write -> "write") );
                                  ("pins", Int h.h_pins);
                                  ("durable", Bool h.h_durable);
                                  ("recalled", Bool h.h_recalled);
                                  ("ready", Bool h.h_ready);
                                ])
                            e.holders) );
                   ])
               entries) );
      ]
  in
  Sim.Sync.Mutex.unlock t.mu;
  r
