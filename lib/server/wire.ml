(** The server wire: a simulated connection between a client session and
    the file server, plus the listener the acceptor blocks on.

    Each direction charges the per-message request cost and a copy of the
    payload at the server copy bandwidth — the per-request overhead a file
    *server* pays on top of the file system under it, the quantity the
    per-tenant benchmarks sweep. Requests flow client-to-server on [c2s];
    replies and lease recalls flow back on [s2c]. *)

type net = {
  machine : Kernel.Machine.t;
  stats : Sim.Stats.t;
  crossings : Sim.Stats.Counter.t;
      (** machine-wide count of wire crossings, one per message *)
}

type conn = {
  net : net;
  c2s : Bytes.t Sim.Sync.Channel.t;
  s2c : Bytes.t Sim.Sync.Channel.t;
  mutable conn_closed : bool;
}

type listener = { l_net : net; backlog : conn Sim.Sync.Channel.t }

exception Connection_closed

let listen machine =
  let stats = Sim.Stats.create () in
  (* Expose message counts in machine-wide counter snapshots. *)
  Kernel.Machine.register_stats machine ~prefix:"server" stats;
  {
    l_net =
      {
        machine;
        stats;
        crossings = Kernel.Machine.counter machine "server_crossings";
      };
    backlog = Sim.Sync.Channel.create ();
  }

let machine t = t.net.machine
let incr_stat t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.stats name)

let charge t nbytes =
  let c = Kernel.Machine.cost t.machine in
  Sim.Stats.Counter.incr t.crossings;
  Kernel.Machine.with_layer t.machine "server-wire" (fun () ->
      Kernel.Machine.cpu_work t.machine
        (Int64.add c.Kernel.Cost.server_request
           (Kernel.Cost.copy_time ~bw:c.Kernel.Cost.server_copy_bw nbytes)))

(** Client side: open a connection and queue it for the acceptor. *)
let connect (l : listener) : conn =
  let conn =
    {
      net = l.l_net;
      c2s = Sim.Sync.Channel.create ();
      s2c = Sim.Sync.Channel.create ();
      conn_closed = false;
    }
  in
  incr_stat l.l_net "connects";
  (match Sim.Sync.Channel.send l.backlog conn with
  | () -> ()
  | exception Sim.Sync.Channel.Closed -> raise Connection_closed);
  conn

(** Server side: block for the next incoming connection; [None] once the
    listener is shut down. *)
let accept (l : listener) : conn option = Sim.Sync.Channel.recv_opt l.backlog

let close_listener (l : listener) = Sim.Sync.Channel.close l.backlog

let send_request (c : conn) (msg : Bytes.t) =
  if c.conn_closed then raise Connection_closed;
  incr_stat c.net "requests";
  charge c.net (Bytes.length msg);
  match Sim.Sync.Channel.send c.c2s msg with
  | () -> ()
  | exception Sim.Sync.Channel.Closed -> raise Connection_closed

let recv_request (c : conn) : Bytes.t option = Sim.Sync.Channel.recv_opt c.c2s

let send_smsg (c : conn) (msg : Bytes.t) =
  incr_stat c.net "replies";
  charge c.net (Bytes.length msg);
  match Sim.Sync.Channel.send c.s2c msg with
  | () -> ()
  | exception Sim.Sync.Channel.Closed -> () (* client already gone *)

let recv_smsg (c : conn) : Bytes.t option = Sim.Sync.Channel.recv_opt c.s2c

let close (c : conn) =
  if not c.conn_closed then begin
    c.conn_closed <- true;
    Sim.Sync.Channel.close c.c2s;
    Sim.Sync.Channel.close c.s2c
  end
