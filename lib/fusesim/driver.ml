(** The FUSE kernel driver: implements the kernel VFS ops by forwarding
    every operation over the transport to the userspace daemon.

    Runs in writeback-cache mode (as the paper's Rust FUSE baseline did):
    file reads and writes go through the kernel page cache, and dirty pages
    are shipped to the daemon in requests of up to [max_write] bytes. *)

let max_write_pages = 32 (* 128 KB max_write, the libfuse default *)

type t = { transport : Transport.t; page_size : int }

let errno_of_reply = function
  | Proto.R_err e -> e
  | _ -> Kernel.Errno.EIO (* protocol confusion *)

let kind_to_vfs = function
  | 1 -> Kernel.Vfs.Dir
  | 2 -> Kernel.Vfs.Symlink
  | _ -> Kernel.Vfs.Reg

let stat_of_attr (a : Proto.attr) =
  {
    Kernel.Vfs.st_ino = a.Proto.ino;
    st_kind = kind_to_vfs a.Proto.kind;
    st_size = a.Proto.size;
    st_nlink = a.Proto.nlink;
  }

let call_attr t req : (Kernel.Vfs.stat, Kernel.Errno.t) result =
  match Transport.call t.transport req with
  | Proto.R_attr a -> Ok (stat_of_attr a)
  | r -> Error (errno_of_reply r)

let call_unit t req : (unit, Kernel.Errno.t) result =
  match Transport.call t.transport req with
  | Proto.R_none -> Ok ()
  | r -> Error (errno_of_reply r)

(** Build the VFS ops table for a FUSE mount over [transport]. *)
let vfs_ops (t : t) ~max_file_size : Kernel.Vfs.fs_ops =
  {
    Kernel.Vfs.fs_name = "fuse";
    root_ino = 1;
    lookup = (fun ~dir name -> call_attr t (Proto.Lookup { dir; name }));
    getattr = (fun ino -> call_attr t (Proto.Getattr { ino }));
    create = (fun ~dir name -> call_attr t (Proto.Create { dir; name }));
    mkdir = (fun ~dir name -> call_attr t (Proto.Mkdir { dir; name }));
    unlink = (fun ~dir name -> call_unit t (Proto.Unlink { dir; name }));
    rmdir = (fun ~dir name -> call_unit t (Proto.Rmdir { dir; name }));
    rename =
      (fun ~olddir ~oldname ~newdir ~newname ->
        call_unit t (Proto.Rename { olddir; oldname; newdir; newname }));
    link = (fun ~ino ~dir name -> call_attr t (Proto.Link { ino; dir; name }));
    symlink =
      (fun ~dir name ~target -> call_attr t (Proto.Symlink { dir; name; target }));
    readlink =
      (fun ~ino ->
        match Transport.call t.transport (Proto.Readlink { ino }) with
        | Proto.R_target s -> Ok s
        | r -> Error (errno_of_reply r));
    readdir =
      (fun ino ->
        match Transport.call t.transport (Proto.Readdir { ino }) with
        | Proto.R_dirents des ->
            Ok
              (List.map
                 (fun (name, ino', kind) ->
                   {
                     Kernel.Vfs.d_name = name;
                     d_ino = ino';
                     d_kind = kind_to_vfs kind;
                   })
                 des)
        | r -> Error (errno_of_reply r));
    readdir_filter =
      (fun ino ~prog ->
        (* The whole filtered scan is ONE wire round trip; the daemon runs
           the registered program and ships back only the survivors, each
           with its attributes — no per-entry GETATTR requests. *)
        match
          Transport.call t.transport (Proto.ReaddirFilter { dir = ino; prog })
        with
        | Proto.R_dirents_plus des ->
            Ok
              (List.map
                 (fun (name, (a : Proto.attr)) ->
                   ( {
                       Kernel.Vfs.d_name = name;
                       d_ino = a.Proto.ino;
                       d_kind = kind_to_vfs a.Proto.kind;
                     },
                     stat_of_attr a ))
                 des)
        | r -> Error (errno_of_reply r));
    bmap =
      (fun ~ino ~fbn ->
        match Transport.call t.transport (Proto.Bmap { ino; fbn }) with
        | Proto.R_block n -> Ok n
        | r -> Error (errno_of_reply r));
    readpage =
      (fun ~ino ~index ->
        match
          Transport.call t.transport
            (Proto.Read { ino; off = index * t.page_size; len = t.page_size })
        with
        | Proto.R_data d ->
            if Bytes.length d = t.page_size then Ok d
            else begin
              let page = Bytes.make t.page_size '\000' in
              Bytes.blit d 0 page 0 (Bytes.length d);
              Ok page
            end
        | r -> Error (errno_of_reply r));
    readahead =
      (fun ~ino ~start ~count ->
        (* One READ request for the whole window (bounded by max_read);
           the daemon still reads its blocks one at a time — FUSE pays
           the crossing once but gets no device parallelism. *)
        let count = min count max_write_pages in
        match
          Transport.call t.transport
            (Proto.Read
               {
                 ino;
                 off = start * t.page_size;
                 len = count * t.page_size;
               })
        with
        | Proto.R_data d ->
            Ok
              (Array.init count (fun i ->
                   let page = Bytes.make t.page_size '\000' in
                   let off = i * t.page_size in
                   let n = min t.page_size (max 0 (Bytes.length d - off)) in
                   if n > 0 then Bytes.blit d off page 0 n;
                   page))
        | r -> Error (errno_of_reply r));
    write_pages =
      (fun ~ino ~isize pages ->
        (* ship the contiguous run in max_write-sized WRITE requests *)
        let n = Array.length pages in
        if n = 0 then Ok ()
        else begin
          let rec ship i : (unit, Kernel.Errno.t) result =
            if i >= n then Ok ()
            else begin
              let chunk = min max_write_pages (n - i) in
              let first_index = fst pages.(i) in
              let buf = Bytes.create (chunk * t.page_size) in
              for j = 0 to chunk - 1 do
                Bytes.blit (snd pages.(i + j)) 0 buf (j * t.page_size)
                  t.page_size
              done;
              let off = first_index * t.page_size in
              let len = min (Bytes.length buf) (max 0 (isize - off)) in
              if len = 0 then ship (i + chunk)
              else
                match
                  Transport.call t.transport
                    (Proto.Write { ino; off; data = Bytes.sub buf 0 len })
                with
                | Proto.R_written _ -> ship (i + chunk)
                | r -> Error (errno_of_reply r)
            end
          in
          ship 0
        end);
    truncate = (fun ~ino size -> call_unit t (Proto.Truncate { ino; size }));
    fsync = (fun ~ino -> call_unit t (Proto.Fsync { ino }));
    sync_fs = (fun () -> call_unit t Proto.Syncfs);
    iopen = (fun ~ino -> call_unit t (Proto.Open { ino }));
    irelease =
      (fun ~ino ->
        match Transport.call t.transport (Proto.Release { ino }) with
        | _ -> ());
    statfs =
      (fun () ->
        match Transport.call t.transport Proto.Statfs with
        | Proto.R_statfs { blocks; bfree; files; ffree } ->
            { Kernel.Vfs.f_blocks = blocks; f_bfree = bfree; f_files = files; f_ffree = ffree }
        | _ ->
            { Kernel.Vfs.f_blocks = 0; f_bfree = 0; f_files = 0; f_ffree = 0 });
    wb_batch = max_write_pages;
    max_file_size;
  }

let create machine transport =
  { transport; page_size = Device.Ssd.block_size (Kernel.Machine.disk machine) }

(** Send DESTROY and close the connection (unmount). *)
let shutdown t =
  (match Transport.call t.transport Proto.Destroy with
  | _ -> ()
  | exception Transport.Connection_closed -> ());
  Transport.close t.transport
