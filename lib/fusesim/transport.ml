(** The /dev/fuse pipe: encoded requests flow from the kernel driver to the
    userspace daemon, replies flow back, correlated by unique id.

    Each direction charges the crossing cost and a copy of the payload at
    the FUSE copy bandwidth — the per-request overhead FUSE pays that an
    in-kernel file system does not (§2.2, §7.1). *)

type t = {
  machine : Kernel.Machine.t;
  requests : Bytes.t Sim.Sync.Channel.t;
  pending : (int, Bytes.t Sim.Sync.Ivar.t) Hashtbl.t;
  mutable next_unique : int;
  mutable closed : bool;
  stats : Sim.Stats.t;
  tracer : Sim.Trace.t;
  rtt : Sim.Stats.Histogram.t;  (** kernel-side round-trip per request *)
  crossings : Sim.Stats.Counter.t;
      (** machine-wide user/kernel crossing count, one per direction —
          the paper's explanatory metric for FUSE overhead *)
}

exception Connection_closed

let create machine =
  let stats = Sim.Stats.create () in
  (* Expose requests/replies in machine-wide counter snapshots. *)
  Kernel.Machine.register_stats machine ~prefix:"fuse" stats;
  {
    machine;
    requests = Sim.Sync.Channel.create ();
    pending = Hashtbl.create 64;
    next_unique = 1;
    closed = false;
    stats;
    tracer = Kernel.Machine.tracer machine;
    rtt = Kernel.Machine.histogram machine "fuse_rtt";
    crossings = Kernel.Machine.counter machine "fuse_crossings";
  }

let machine t = t.machine
let stats t = t.stats
let incr t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.stats name)

let fresh_unique t =
  let u = t.next_unique in
  t.next_unique <- t.next_unique + 1;
  u

let charge_crossing t nbytes =
  let c = Kernel.Machine.cost t.machine in
  Kernel.Machine.cpu_work t.machine
    (Int64.add c.Kernel.Cost.fuse_request
       (Kernel.Cost.copy_time ~bw:c.Kernel.Cost.fuse_copy_bw nbytes))

(** Kernel side: send a request and block until the daemon replies. *)
let call t (req : Proto.request) : Proto.reply =
  if t.closed then raise Connection_closed;
  let unique = fresh_unique t in
  let msg = Proto.encode_request ~unique req in
  incr t "requests";
  Sim.Stats.Counter.incr t.crossings;
  (* The crossing charge runs under the "fuse-transport" frame; the wait
     for the reply is attributed to whatever the daemon is doing. *)
  Kernel.Machine.with_layer t.machine "fuse-transport" @@ fun () ->
  Sim.Trace.span_begin t.tracer ~cat:"fuse" "fuse:call";
  let t0 = Kernel.Machine.now t.machine in
  charge_crossing t (Bytes.length msg);
  let ivar = Sim.Sync.Ivar.create () in
  Hashtbl.replace t.pending unique ivar;
  Sim.Sync.Channel.send t.requests msg;
  let reply_bytes = Sim.Sync.Ivar.read ivar in
  Hashtbl.remove t.pending unique;
  Sim.Stats.Histogram.record t.rtt
    (Int64.sub (Kernel.Machine.now t.machine) t0);
  Sim.Trace.span_end t.tracer ~cat:"fuse" "fuse:call";
  let unique', reply = Proto.decode_reply reply_bytes in
  if unique' <> unique then raise (Proto.Malformed "unique mismatch");
  reply

(** Daemon side: block for the next request. Returns [None] once the
    connection is closed and drained. *)
let next t : Bytes.t option =
  match Sim.Sync.Channel.recv t.requests with
  | msg -> Some msg
  | exception Sim.Sync.Channel.Closed -> None

(** Daemon side: reply to a request by unique id. *)
let reply t ~unique (r : Proto.reply) =
  let msg = Proto.encode_reply ~unique r in
  incr t "replies";
  Sim.Stats.Counter.incr t.crossings;
  Kernel.Machine.with_layer t.machine "fuse-transport" (fun () ->
      charge_crossing t (Bytes.length msg));
  match Hashtbl.find_opt t.pending unique with
  | Some ivar -> Sim.Sync.Ivar.fill ivar msg
  | None -> () (* request was abandoned *)

let close t =
  t.closed <- true;
  Sim.Sync.Channel.close t.requests
