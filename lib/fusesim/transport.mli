(** The /dev/fuse pipe: encoded requests flow from the kernel driver to the
    userspace daemon, replies flow back, correlated by unique id. Each
    direction charges the crossing cost plus a payload copy at the FUSE
    copy bandwidth — the per-request tax FUSE pays that an in-kernel file
    system does not. *)

type t

exception Connection_closed

val create : Kernel.Machine.t -> t
(** Also registers the transport's stats registry with the machine (prefix
    "fuse") and counts each direction in the machine-wide "fuse_crossings"
    counter — the paper's crossings-per-op explanatory metric. *)

val machine : t -> Kernel.Machine.t

val stats : t -> Sim.Stats.t

val call : t -> Proto.request -> Proto.reply
(** Kernel side: send a request and block until the daemon replies. *)

val next : t -> Bytes.t option
(** Daemon side: block for the next encoded request; [None] after close. *)

val reply : t -> unique:int -> Proto.reply -> unit
(** Daemon side: answer a request by its unique id. *)

val close : t -> unit
