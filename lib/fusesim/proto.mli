(** The FUSE wire protocol (low-level API subset). Requests and replies are
    really serialised to bytes and parsed on the other side; round-trips
    are covered by property tests.

    Framing:
    - request = u16 opcode | u64 unique | payload
    - reply   = u64 unique | i32 errno (0 = ok) | u16 tag | payload *)

type attr = { ino : int; kind : int; size : int; nlink : int }
(** kind: 0 = regular, 1 = directory, 2 = symlink *)

type request =
  | Lookup of { dir : int; name : string }
  | Getattr of { ino : int }
  | Create of { dir : int; name : string }
  | Mkdir of { dir : int; name : string }
  | Unlink of { dir : int; name : string }
  | Rmdir of { dir : int; name : string }
  | Rename of { olddir : int; oldname : string; newdir : int; newname : string }
  | Link of { ino : int; dir : int; name : string }
  | Read of { ino : int; off : int; len : int }
  | Write of { ino : int; off : int; data : Bytes.t }
  | Truncate of { ino : int; size : int }
  | Fsync of { ino : int }
  | Syncfs
  | Readdir of { ino : int }
  | Open of { ino : int }
  | Release of { ino : int }
  | Statfs
  | Destroy
  | Symlink of { dir : int; name : string; target : string }
  | Readlink of { ino : int }
  | ReaddirFilter of { dir : int; prog : string }
      (** pushdown scan: filter + stat batch in ONE round trip *)
  | Bmap of { ino : int; fbn : int }  (** FIBMAP *)

type reply =
  | R_err of Kernel.Errno.t
  | R_none
  | R_attr of attr
  | R_data of Bytes.t
  | R_written of int
  | R_dirents of (string * int * int) list  (** name, ino, kind *)
  | R_statfs of { blocks : int; bfree : int; files : int; ffree : int }
  | R_target of string  (** readlink *)
  | R_dirents_plus of (string * attr) list
      (** pushdown scan result: surviving entries with their attributes *)
  | R_block of int  (** bmap result (0 = hole) *)

exception Malformed of string
(** Raised by the decoders on truncated or corrupt messages. *)

val opcode : request -> int
val encode_request : unique:int -> request -> Bytes.t
val decode_request : Bytes.t -> int * request
val encode_reply : unique:int -> reply -> Bytes.t
val decode_reply : Bytes.t -> int * reply
