(** A user-level buffer cache over the O_DIRECT disk file — the userspace
    replacement for the kernel buffer cache that the FUSE build of the file
    system needs (O_DIRECT bypasses the kernel's caches entirely, so the
    daemon must cache blocks itself). *)

type buf = {
  block : int;
  data : Bytes.t;
  mutable valid : bool;
  mutable refcount : int;
  mutable pinned : int;
  mutable lru_tick : int;
}

type t = {
  ufile : Ufile.t;
  capacity : int;
  table : (int, buf) Hashtbl.t;
  mutable tick : int;
  stats : Sim.Stats.t;
}

exception No_buffers

let create ?(capacity = 8192) ufile =
  { ufile; capacity; table = Hashtbl.create (2 * capacity); tick = 0; stats = Sim.Stats.create () }

let stats t = t.stats
let incr t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.stats name)

let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ b ->
      if b.refcount = 0 && b.pinned = 0 then
        match !victim with
        | Some v when v.lru_tick <= b.lru_tick -> ()
        | _ -> victim := Some b)
    t.table;
  match !victim with
  | None -> raise No_buffers
  | Some b ->
      Hashtbl.remove t.table b.block;
      incr t "evictions"

let getbuf t block =
  match Hashtbl.find_opt t.table block with
  | Some b ->
      incr t "hits";
      b.refcount <- b.refcount + 1;
      b
  | None ->
      incr t "misses";
      if Hashtbl.length t.table >= t.capacity then evict_one t;
      let b =
        {
          block;
          data = Bytes.make (Ufile.block_size t.ufile) '\000';
          valid = false;
          refcount = 1;
          pinned = 0;
          lru_tick = 0;
        }
      in
      Hashtbl.add t.table block b;
      b

(** Read-through: pread(2) on the disk file on a miss. *)
let bread t block =
  let b = getbuf t block in
  if not b.valid then begin
    let data = Ufile.pread_block t.ufile block in
    Bytes.blit data 0 b.data 0 (Bytes.length data);
    b.valid <- true
  end;
  b

let getblk t block =
  let b = getbuf t block in
  if not b.valid then begin
    Bytes.fill b.data 0 (Bytes.length b.data) '\000';
    b.valid <- true
  end;
  b

(** Write-through: pwrite(2) with O_DIRECT (volatile until [flush]). *)
let bwrite t b = Ufile.pwrite_block t.ufile b.block b.data

(* Install a committed image straight to the disk file without touching
   the cached buffer — it may hold newer, uncommitted contents. *)
let raw_write t block data = Ufile.pwrite_block t.ufile block data

(* Read a block without admitting it to the cache: CAS blocks are cached
   once in the shared-page table instead. *)
let raw_read t block =
  incr t "raw_reads";
  Ufile.pread_block t.ufile block

let brelse t b =
  if b.refcount <= 0 then invalid_arg "Ubcache.brelse";
  b.refcount <- b.refcount - 1;
  t.tick <- t.tick + 1;
  b.lru_tick <- t.tick

let pin b = b.pinned <- b.pinned + 1

let unpin b =
  if b.pinned <= 0 then invalid_arg "Ubcache.unpin";
  b.pinned <- b.pinned - 1

(** fsync(2) on the whole disk file — the only durability tool userspace
    has. *)
let flush t = Ufile.fsync_disk t.ufile

let cached_blocks t = Hashtbl.length t.table
