(** The FUSE wire protocol (low-level API subset).

    Requests and replies really are serialised to bytes and parsed back on
    the other side — the copies are what the user/kernel crossing charges
    for, and the round-trip through this module is covered by property
    tests. Framing:

    request  = u16 opcode | u64 unique | u64 nodeid | payload
    reply    = u64 unique | i32 errno (0 = ok) | payload *)

type attr = { ino : int; kind : int; size : int; nlink : int }
(** kind: 0 = regular, 1 = directory, 2 = symlink *)

type request =
  | Lookup of { dir : int; name : string }
  | Getattr of { ino : int }
  | Create of { dir : int; name : string }
  | Mkdir of { dir : int; name : string }
  | Unlink of { dir : int; name : string }
  | Rmdir of { dir : int; name : string }
  | Rename of { olddir : int; oldname : string; newdir : int; newname : string }
  | Link of { ino : int; dir : int; name : string }
  | Read of { ino : int; off : int; len : int }
  | Write of { ino : int; off : int; data : Bytes.t }
  | Truncate of { ino : int; size : int }
  | Fsync of { ino : int }
  | Syncfs
  | Readdir of { ino : int }
  | Open of { ino : int }
  | Release of { ino : int }
  | Statfs
  | Destroy
  | Symlink of { dir : int; name : string; target : string }
  | Readlink of { ino : int }
  | ReaddirFilter of { dir : int; prog : string }
      (** pushdown scan: filter + stat batch in ONE round trip *)
  | Bmap of { ino : int; fbn : int }  (** FIBMAP *)

type reply =
  | R_err of Kernel.Errno.t
  | R_none
  | R_attr of attr
  | R_data of Bytes.t
  | R_written of int
  | R_dirents of (string * int * int) list  (** name, ino, kind *)
  | R_statfs of { blocks : int; bfree : int; files : int; ffree : int }
  | R_target of string  (** readlink result *)
  | R_dirents_plus of (string * attr) list
      (** pushdown scan result: surviving entries with their attributes *)
  | R_block of int  (** bmap result (0 = hole) *)

let opcode = function
  | Lookup _ -> 1
  | Getattr _ -> 2
  | Create _ -> 3
  | Mkdir _ -> 4
  | Unlink _ -> 5
  | Rmdir _ -> 6
  | Rename _ -> 7
  | Link _ -> 8
  | Read _ -> 9
  | Write _ -> 10
  | Truncate _ -> 11
  | Fsync _ -> 12
  | Syncfs -> 13
  | Readdir _ -> 14
  | Open _ -> 15
  | Release _ -> 16
  | Statfs -> 17
  | Destroy -> 18
  | Symlink _ -> 19
  | Readlink _ -> 20
  | ReaddirFilter _ -> 21
  | Bmap _ -> 22

exception Malformed of string

(* --- little builders over a Buffer ------------------------------- *)

let add_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let add_u64 b v =
  let x = Bytes.create 8 in
  Bytes.set_int64_le x 0 (Int64.of_int v);
  Buffer.add_bytes b x

let add_str b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_bytes b d =
  add_u64 b (Bytes.length d);
  Buffer.add_bytes b d

type cursor = { buf : Bytes.t; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.buf then raise (Malformed "short message")

let get_u16 c =
  need c 2;
  let v = Util.Bytesio.get_u16 c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let get_u64 c =
  need c 8;
  let v =
    try Util.Bytesio.get_int64_as_int c.buf c.pos
    with Invalid_argument _ -> raise (Malformed "u64 out of range")
  in
  c.pos <- c.pos + 8;
  v

let get_i32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

let get_str c =
  let n = get_u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_data c =
  let n = get_u64 c in
  need c n;
  let d = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  d

(* --- requests ------------------------------------------------------ *)

let encode_request ~unique (r : request) : Bytes.t =
  let b = Buffer.create 64 in
  add_u16 b (opcode r);
  add_u64 b unique;
  (match r with
  | Lookup { dir; name }
  | Create { dir; name }
  | Mkdir { dir; name }
  | Unlink { dir; name }
  | Rmdir { dir; name } ->
      add_u64 b dir;
      add_str b name
  | Getattr { ino } | Fsync { ino } | Readdir { ino } | Open { ino }
  | Release { ino } ->
      add_u64 b ino
  | Rename { olddir; oldname; newdir; newname } ->
      add_u64 b olddir;
      add_str b oldname;
      add_u64 b newdir;
      add_str b newname
  | Link { ino; dir; name } ->
      add_u64 b ino;
      add_u64 b dir;
      add_str b name
  | Read { ino; off; len } ->
      add_u64 b ino;
      add_u64 b off;
      add_u64 b len
  | Write { ino; off; data } ->
      add_u64 b ino;
      add_u64 b off;
      add_bytes b data
  | Truncate { ino; size } ->
      add_u64 b ino;
      add_u64 b size
  | Symlink { dir; name; target } ->
      add_u64 b dir;
      add_str b name;
      add_str b target
  | Readlink { ino } -> add_u64 b ino
  | ReaddirFilter { dir; prog } ->
      add_u64 b dir;
      add_str b prog
  | Bmap { ino; fbn } ->
      add_u64 b ino;
      add_u64 b fbn
  | Syncfs | Statfs | Destroy -> ());
  Buffer.to_bytes b

let decode_request (m : Bytes.t) : int * request =
  let c = { buf = m; pos = 0 } in
  let op = get_u16 c in
  let unique = get_u64 c in
  let req =
    match op with
    | 1 ->
        let dir = get_u64 c in
        Lookup { dir; name = get_str c }
    | 2 -> Getattr { ino = get_u64 c }
    | 3 ->
        let dir = get_u64 c in
        Create { dir; name = get_str c }
    | 4 ->
        let dir = get_u64 c in
        Mkdir { dir; name = get_str c }
    | 5 ->
        let dir = get_u64 c in
        Unlink { dir; name = get_str c }
    | 6 ->
        let dir = get_u64 c in
        Rmdir { dir; name = get_str c }
    | 7 ->
        let olddir = get_u64 c in
        let oldname = get_str c in
        let newdir = get_u64 c in
        Rename { olddir; oldname; newdir; newname = get_str c }
    | 8 ->
        let ino = get_u64 c in
        let dir = get_u64 c in
        Link { ino; dir; name = get_str c }
    | 9 ->
        let ino = get_u64 c in
        let off = get_u64 c in
        Read { ino; off; len = get_u64 c }
    | 10 ->
        let ino = get_u64 c in
        let off = get_u64 c in
        Write { ino; off; data = get_data c }
    | 11 ->
        let ino = get_u64 c in
        Truncate { ino; size = get_u64 c }
    | 12 -> Fsync { ino = get_u64 c }
    | 13 -> Syncfs
    | 14 -> Readdir { ino = get_u64 c }
    | 15 -> Open { ino = get_u64 c }
    | 16 -> Release { ino = get_u64 c }
    | 17 -> Statfs
    | 18 -> Destroy
    | 19 ->
        let dir = get_u64 c in
        let name = get_str c in
        Symlink { dir; name; target = get_str c }
    | 20 -> Readlink { ino = get_u64 c }
    | 21 ->
        let dir = get_u64 c in
        ReaddirFilter { dir; prog = get_str c }
    | 22 ->
        let ino = get_u64 c in
        Bmap { ino; fbn = get_u64 c }
    | n -> raise (Malformed (Printf.sprintf "bad opcode %d" n))
  in
  (unique, req)

(* --- replies ------------------------------------------------------- *)

let add_attr b (a : attr) =
  add_u64 b a.ino;
  add_u16 b a.kind;
  add_u64 b a.size;
  add_u64 b a.nlink

let get_attr c =
  let ino = get_u64 c in
  let kind = get_u16 c in
  let size = get_u64 c in
  let nlink = get_u64 c in
  { ino; kind; size; nlink }

let encode_reply ~unique (r : reply) : Bytes.t =
  let b = Buffer.create 64 in
  add_u64 b unique;
  let err, tag =
    match r with
    | R_err e -> (Kernel.Errno.to_code e, 0)
    | R_none -> (0, 1)
    | R_attr _ -> (0, 2)
    | R_data _ -> (0, 3)
    | R_written _ -> (0, 4)
    | R_dirents _ -> (0, 5)
    | R_statfs _ -> (0, 6)
    | R_target _ -> (0, 7)
    | R_dirents_plus _ -> (0, 8)
    | R_block _ -> (0, 9)
  in
  let x = Bytes.create 4 in
  Bytes.set_int32_le x 0 (Int32.of_int err);
  Buffer.add_bytes b x;
  add_u16 b tag;
  (match r with
  | R_err _ | R_none -> ()
  | R_attr a -> add_attr b a
  | R_data d -> add_bytes b d
  | R_written n -> add_u64 b n
  | R_dirents des ->
      add_u64 b (List.length des);
      List.iter
        (fun (name, ino, kind) ->
          add_str b name;
          add_u64 b ino;
          add_u16 b kind)
        des
  | R_statfs { blocks; bfree; files; ffree } ->
      add_u64 b blocks;
      add_u64 b bfree;
      add_u64 b files;
      add_u64 b ffree
  | R_target s -> add_str b s
  | R_dirents_plus des ->
      add_u64 b (List.length des);
      List.iter
        (fun (name, a) ->
          add_str b name;
          add_attr b a)
        des
  | R_block n -> add_u64 b n);
  Buffer.to_bytes b

let decode_reply (m : Bytes.t) : int * reply =
  let c = { buf = m; pos = 0 } in
  let unique = get_u64 c in
  let err = get_i32 c in
  let tag = get_u16 c in
  let r =
    if err <> 0 then
      match Kernel.Errno.of_code err with
      | Some e -> R_err e
      | None -> R_err Kernel.Errno.EIO
    else
      match tag with
      | 1 -> R_none
      | 2 -> R_attr (get_attr c)
      | 3 -> R_data (get_data c)
      | 4 -> R_written (get_u64 c)
      | 5 ->
          let n = get_u64 c in
          R_dirents
            (List.init n (fun _ ->
                 let name = get_str c in
                 let ino = get_u64 c in
                 let kind = get_u16 c in
                 (name, ino, kind)))
      | 6 ->
          let blocks = get_u64 c in
          let bfree = get_u64 c in
          let files = get_u64 c in
          R_statfs { blocks; bfree; files; ffree = get_u64 c }
      | 7 -> R_target (get_str c)
      | 8 ->
          let n = get_u64 c in
          R_dirents_plus
            (List.init n (fun _ ->
                 let name = get_str c in
                 (name, get_attr c)))
      | 9 -> R_block (get_u64 c)
      | n -> raise (Malformed (Printf.sprintf "bad reply tag %d" n))
  in
  (unique, r)
