(** The userspace FUSE daemon: a single-threaded loop (like libfuse's
    default session loop) that decodes requests, dispatches them to the
    user file system's handler table, and sends encoded replies. *)

type handler = {
  h_lookup : dir:int -> string -> (Proto.attr, Kernel.Errno.t) result;
  h_getattr : ino:int -> (Proto.attr, Kernel.Errno.t) result;
  h_create : dir:int -> string -> (Proto.attr, Kernel.Errno.t) result;
  h_mkdir : dir:int -> string -> (Proto.attr, Kernel.Errno.t) result;
  h_unlink : dir:int -> string -> (unit, Kernel.Errno.t) result;
  h_rmdir : dir:int -> string -> (unit, Kernel.Errno.t) result;
  h_rename :
    olddir:int ->
    oldname:string ->
    newdir:int ->
    newname:string ->
    (unit, Kernel.Errno.t) result;
  h_link : ino:int -> dir:int -> string -> (Proto.attr, Kernel.Errno.t) result;
  h_read : ino:int -> off:int -> len:int -> (Bytes.t, Kernel.Errno.t) result;
  h_write : ino:int -> off:int -> Bytes.t -> (int, Kernel.Errno.t) result;
  h_truncate : ino:int -> size:int -> (unit, Kernel.Errno.t) result;
  h_fsync : ino:int -> (unit, Kernel.Errno.t) result;
  h_syncfs : unit -> (unit, Kernel.Errno.t) result;
  h_readdir : ino:int -> ((string * int * int) list, Kernel.Errno.t) result;
  h_readdir_filter :
    ino:int -> prog:string -> ((string * Proto.attr) list, Kernel.Errno.t) result;
  h_bmap : ino:int -> fbn:int -> (int, Kernel.Errno.t) result;
  h_open : ino:int -> (unit, Kernel.Errno.t) result;
  h_release : ino:int -> unit;
  h_statfs : unit -> int * int * int * int;  (** blocks, bfree, files, ffree *)
  h_symlink :
    dir:int -> string -> target:string -> (Proto.attr, Kernel.Errno.t) result;
  h_readlink : ino:int -> (string, Kernel.Errno.t) result;
  h_destroy : unit -> unit;
}

let dispatch (h : handler) (req : Proto.request) : Proto.reply =
  let attr_reply = function
    | Ok a -> Proto.R_attr a
    | Error e -> Proto.R_err e
  in
  let unit_reply = function Ok () -> Proto.R_none | Error e -> Proto.R_err e in
  match req with
  | Proto.Lookup { dir; name } -> attr_reply (h.h_lookup ~dir name)
  | Proto.Getattr { ino } -> attr_reply (h.h_getattr ~ino)
  | Proto.Create { dir; name } -> attr_reply (h.h_create ~dir name)
  | Proto.Mkdir { dir; name } -> attr_reply (h.h_mkdir ~dir name)
  | Proto.Unlink { dir; name } -> unit_reply (h.h_unlink ~dir name)
  | Proto.Rmdir { dir; name } -> unit_reply (h.h_rmdir ~dir name)
  | Proto.Rename { olddir; oldname; newdir; newname } ->
      unit_reply (h.h_rename ~olddir ~oldname ~newdir ~newname)
  | Proto.Link { ino; dir; name } -> attr_reply (h.h_link ~ino ~dir name)
  | Proto.Read { ino; off; len } -> (
      match h.h_read ~ino ~off ~len with
      | Ok d -> Proto.R_data d
      | Error e -> Proto.R_err e)
  | Proto.Write { ino; off; data } -> (
      match h.h_write ~ino ~off data with
      | Ok n -> Proto.R_written n
      | Error e -> Proto.R_err e)
  | Proto.Truncate { ino; size } -> unit_reply (h.h_truncate ~ino ~size)
  | Proto.Fsync { ino } -> unit_reply (h.h_fsync ~ino)
  | Proto.Syncfs -> unit_reply (h.h_syncfs ())
  | Proto.Readdir { ino } -> (
      match h.h_readdir ~ino with
      | Ok des -> Proto.R_dirents des
      | Error e -> Proto.R_err e)
  | Proto.ReaddirFilter { dir; prog } -> (
      match h.h_readdir_filter ~ino:dir ~prog with
      | Ok des -> Proto.R_dirents_plus des
      | Error e -> Proto.R_err e)
  | Proto.Bmap { ino; fbn } -> (
      match h.h_bmap ~ino ~fbn with
      | Ok n -> Proto.R_block n
      | Error e -> Proto.R_err e)
  | Proto.Open { ino } -> unit_reply (h.h_open ~ino)
  | Proto.Release { ino } ->
      h.h_release ~ino;
      Proto.R_none
  | Proto.Statfs ->
      let blocks, bfree, files, ffree = h.h_statfs () in
      Proto.R_statfs { blocks; bfree; files; ffree }
  | Proto.Symlink { dir; name; target } -> attr_reply (h.h_symlink ~dir name ~target)
  | Proto.Readlink { ino } -> (
      match h.h_readlink ~ino with
      | Ok t -> Proto.R_target t
      | Error e -> Proto.R_err e)
  | Proto.Destroy ->
      h.h_destroy ();
      Proto.R_none

(** The daemon main loop; run it in its own fiber. Returns when the
    connection closes or after replying to [Destroy]. *)
let run (transport : Transport.t) (h : handler) =
  let machine = Transport.machine transport in
  let rec loop () =
    match Transport.next transport with
    | None -> ()
    | Some msg -> (
        match Proto.decode_request msg with
        | exception Proto.Malformed _ -> loop ()
        | unique, req ->
            (* Request processing is file-system work: the daemon runs the
               fs functor over user-level services. *)
            let reply =
              Kernel.Machine.with_layer machine "fs" (fun () -> dispatch h req)
            in
            Transport.reply transport ~unique reply;
            (* libfuse exits its session loop after DESTROY *)
            if req = Proto.Destroy then () else loop ())
  in
  loop ()
