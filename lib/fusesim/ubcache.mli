(** User-level buffer cache over the O_DIRECT disk file — the userspace
    replacement for the kernel buffer cache (O_DIRECT bypasses kernel
    caches, so the daemon must cache blocks itself). *)

type buf = {
  block : int;
  data : Bytes.t;
  mutable valid : bool;
  mutable refcount : int;
  mutable pinned : int;
  mutable lru_tick : int;
}

type t

exception No_buffers

val create : ?capacity:int -> Ufile.t -> t
val stats : t -> Sim.Stats.t

val bread : t -> int -> buf
(** Read-through: pread(2) on the disk file on a miss. *)

val getblk : t -> int -> buf

val bwrite : t -> buf -> unit
(** Write-through: pwrite(2) with O_DIRECT (volatile until {!flush}). *)

val raw_write : t -> int -> Bytes.t -> unit
(** Write data for a block straight to the disk file without touching the
    cached buffer — installing a committed version while the cache may
    hold newer uncommitted contents. *)

val raw_read : t -> int -> Bytes.t
(** Read a block without admitting it to the cache — the CAS store's
    shared-page table is the only cache its blocks get. *)

val brelse : t -> buf -> unit
val pin : buf -> unit
val unpin : buf -> unit

val flush : t -> unit
(** fsync(2) on the whole disk file — the only durability tool userspace
    has, and FUSE's downfall in the evaluation. *)

val cached_blocks : t -> int
