(** The Bento userspace runtime (§4.9 + the paper's FUSE baseline, §6.2).

    [user_services] implements the same [Bentoks.KSERVICES] signature as the
    kernel runtime, but over userspace facilities: an O_DIRECT disk file and
    a user-level buffer cache instead of `sb_bread`, and fsync(2) on the
    whole disk file instead of a device barrier. Because the file system is
    a functor over the services, the *same* file-system code that runs in
    the kernel under BentoFS runs here behind FUSE — the paper's "same code
    in both environments" debugging story, and simultaneously its FUSE
    performance baseline.

    [mount] assembles the whole userspace stack: daemon fiber + FUSE kernel
    driver + VFS mount. *)

exception Use_after_release = Bento.Bentoks.Use_after_release
exception Double_release = Bento.Bentoks.Double_release

let user_services ?nblocks_cap (machine : Kernel.Machine.t)
    (ubc : Fusesim.Ubcache.t) : (module Bento.Bentoks.KSERVICES) =
  let stats = Kernel.Machine.stats machine in
  (module struct
    module Buffer = struct
      type t = { ub : Fusesim.Ubcache.buf; mutable released : bool }

      let block b = b.ub.Fusesim.Ubcache.block

      let data b =
        if b.released then raise (Use_after_release "user buffer");
        b.ub.Fusesim.Ubcache.data

      let mark_dirty b = if b.released then raise (Use_after_release "user buffer")
    end

    let bread n = { Buffer.ub = Fusesim.Ubcache.bread ubc n; released = false }
    let getblk n = { Buffer.ub = Fusesim.Ubcache.getblk ubc n; released = false }

    (* One daemon thread, O_DIRECT preads: no channel parallelism to
       exploit from userspace, so the batched read degenerates to a
       sequential loop. *)
    let bread_multi blocks = List.map bread blocks

    let bwrite (b : Buffer.t) =
      if b.Buffer.released then raise (Use_after_release "bwrite");
      Fusesim.Ubcache.bwrite ubc b.Buffer.ub

    (* No batching from userspace: O_DIRECT pwrites go out one block at a
       time, sequentially — the daemon has one thread. *)
    let bwrite_seq bs = List.iter bwrite bs
    let bwrite_all = bwrite_seq

    (* Same plug/unplug surface as the kernel runtime, but with one daemon
       thread there is nothing to overlap: staged writes go out
       sequentially at the barrier, in the kernel's canonical merged-run
       order so both hosts touch the disk image identically. *)
    module Bio = struct
      type plug = { mutable staged : Buffer.t list }

      let plug () = { staged = [] }

      let add p (b : Buffer.t) =
        if b.Buffer.released then raise (Use_after_release "Bio.add");
        p.staged <- b :: p.staged

      let unplug _ = ()

      let wait p =
        List.iter
          (fun (_start, run) -> List.iter bwrite run)
          (Kernel.Bio.runs
             (List.map (fun b -> (Buffer.block b, b)) p.staged));
        p.staged <- []
    end

    let brelse (b : Buffer.t) =
      if b.Buffer.released then raise (Double_release "user buffer");
      b.Buffer.released <- true;
      Fusesim.Ubcache.brelse ubc b.Buffer.ub

    (* Cache-bypassing installs are just O_DIRECT pwrites, one at a time,
       sorted so both hosts touch the disk image in the same order. *)
    let raw_write_scatter pairs =
      List.iter
        (fun (blk, data) -> Fusesim.Ubcache.raw_write ubc blk data)
        (List.sort (fun (a, _) (b, _) -> compare a b) pairs)

    let pin (b : Buffer.t) =
      if b.Buffer.released then raise (Use_after_release "pin");
      Fusesim.Ubcache.pin b.Buffer.ub

    let unpin (b : Buffer.t) =
      if b.Buffer.released then raise (Use_after_release "unpin");
      Fusesim.Ubcache.unpin b.Buffer.ub

    let with_bread n f =
      let b = bread n in
      match f b with
      | v ->
          brelse b;
          v
      | exception exn ->
          brelse b;
          raise exn

    let with_getblk n f =
      let b = getblk n in
      match f b with
      | v ->
          brelse b;
          v
      | exception exn ->
          brelse b;
          raise exn

    let flush () = Fusesim.Ubcache.flush ubc

    let block_size = Device.Ssd.block_size (Kernel.Machine.disk machine)

    let nblocks =
      let total = Device.Ssd.nblocks (Kernel.Machine.disk machine) in
      match nblocks_cap with Some n -> min n total | None -> total
    let cpu ns = Kernel.Machine.cpu_work machine ns
    let costs = Kernel.Machine.cost machine
    let now () = Kernel.Machine.now machine

    module Kmutex = struct
      type t = Sim.Sync.Mutex.t

      let create ?name () = Sim.Sync.Mutex.create ?name ()
      let lock = Sim.Sync.Mutex.lock
      let unlock = Sim.Sync.Mutex.unlock
      let with_lock = Sim.Sync.Mutex.with_lock
    end

    module Kcondvar = struct
      type t = Sim.Sync.Condvar.t

      let create () = Sim.Sync.Condvar.create ()
      let wait = Sim.Sync.Condvar.wait
      let signal = Sim.Sync.Condvar.signal
      let broadcast = Sim.Sync.Condvar.broadcast
    end

    let counter name () = Sim.Stats.Counter.incr (Sim.Stats.counter stats name)

    let counter_add name n =
      Sim.Stats.Counter.incr ~by:n (Sim.Stats.counter stats name)

    let profile layer f = Kernel.Machine.with_layer machine layer f

    let trace_counter name v =
      Sim.Trace.counter (Kernel.Machine.tracer machine) ~cat:"fs" name
        (Int64.of_int v)

    let register_inspector name probe =
      Kernel.Machine.register_inspector machine ~name (fun () ->
          Util.Json.Obj
            (List.map (fun (k, v) -> (k, Util.Json.Int v)) (probe ())))

    let printk msg = Kernel.Printk.info machine "fuse-daemon: %s" msg
    let pushdown = Kernel.Pushdown.registry machine
  end)

(* Translate the Fs_api dispatch into the daemon handler table. [machine]
   locates the pushdown registry the filtered-scan handler runs against. *)
let handler_of machine (d : Bento.Fs_api.dispatch) : Fusesim.Daemon.handler =
  let kind_code = function
    | Bento.Fs_api.File -> 0
    | Bento.Fs_api.Directory -> 1
    | Bento.Fs_api.Symlink -> 2
  in
  let attr (a : Bento.Fs_api.attr) =
    {
      Fusesim.Proto.ino = a.Bento.Fs_api.a_ino;
      kind = kind_code a.Bento.Fs_api.a_kind;
      size = a.Bento.Fs_api.a_size;
      nlink = a.Bento.Fs_api.a_nlink;
    }
  in
  let amap = Result.map attr in
  {
    Fusesim.Daemon.h_lookup = (fun ~dir name -> amap (d.Bento.Fs_api.d_lookup ~dir name));
    h_getattr = (fun ~ino -> amap (d.Bento.Fs_api.d_getattr ~ino));
    h_create = (fun ~dir name -> amap (d.Bento.Fs_api.d_create ~dir name));
    h_mkdir = (fun ~dir name -> amap (d.Bento.Fs_api.d_mkdir ~dir name));
    h_unlink = (fun ~dir name -> d.Bento.Fs_api.d_unlink ~dir name);
    h_rmdir = (fun ~dir name -> d.Bento.Fs_api.d_rmdir ~dir name);
    h_rename =
      (fun ~olddir ~oldname ~newdir ~newname ->
        d.Bento.Fs_api.d_rename ~olddir ~oldname ~newdir ~newname);
    h_link = (fun ~ino ~dir name -> amap (d.Bento.Fs_api.d_link ~ino ~dir name));
    h_read = (fun ~ino ~off ~len -> d.Bento.Fs_api.d_read ~ino ~off ~len);
    h_write = (fun ~ino ~off data -> d.Bento.Fs_api.d_write ~ino ~off data);
    h_truncate = (fun ~ino ~size -> d.Bento.Fs_api.d_truncate ~ino ~size);
    h_fsync = (fun ~ino -> d.Bento.Fs_api.d_fsync ~ino);
    h_syncfs = (fun () -> d.Bento.Fs_api.d_sync ());
    h_readdir =
      (fun ~ino ->
        Result.map
          (List.map (fun de ->
               ( de.Bento.Fs_api.name,
                 de.Bento.Fs_api.ino,
                 kind_code de.Bento.Fs_api.kind )))
          (d.Bento.Fs_api.d_readdir ~ino));
    h_readdir_filter =
      (fun ~ino ~prog ->
        (* Daemon-side pushdown: readdir, filter, and per-entry getattr all
           happen here, below the wire — the kernel paid ONE round trip. *)
        Result.map
          (List.map (fun ((de : Kernel.Vfs.dirent), (st : Kernel.Vfs.stat)) ->
               ( de.Kernel.Vfs.d_name,
                 {
                   Fusesim.Proto.ino = st.Kernel.Vfs.st_ino;
                   kind =
                     (match st.Kernel.Vfs.st_kind with
                     | Kernel.Vfs.Reg -> 0
                     | Kernel.Vfs.Dir -> 1
                     | Kernel.Vfs.Symlink -> 2);
                   size = st.Kernel.Vfs.st_size;
                   nlink = st.Kernel.Vfs.st_nlink;
                 } )))
          (Kernel.Pushdown.filter_dir
             (Kernel.Pushdown.registry machine)
             ~name:prog
             ~readdir:(fun () ->
               Result.map
                 (List.map (fun (de : Bento.Fs_api.dentry) ->
                      {
                        Kernel.Vfs.d_name = de.Bento.Fs_api.name;
                        d_ino = de.Bento.Fs_api.ino;
                        d_kind = Bento.Fs_api.vfs_kind de.Bento.Fs_api.kind;
                      }))
                 (d.Bento.Fs_api.d_readdir ~ino))
             ~getattr:(fun ino ->
               Result.map Bento.Fs_api.vfs_stat (d.Bento.Fs_api.d_getattr ~ino))));
    h_bmap = (fun ~ino ~fbn -> d.Bento.Fs_api.d_bmap ~ino ~fbn);
    h_open = (fun ~ino -> d.Bento.Fs_api.d_iopen ~ino);
    h_release = (fun ~ino -> d.Bento.Fs_api.d_irelease ~ino);
    h_statfs =
      (fun () ->
        let s = d.Bento.Fs_api.d_statfs () in
        ( s.Bento.Fs_api.s_blocks,
          s.Bento.Fs_api.s_bfree,
          s.Bento.Fs_api.s_files,
          s.Bento.Fs_api.s_ffree ));
    h_symlink =
      (fun ~dir name ~target -> amap (d.Bento.Fs_api.d_symlink ~dir name ~target));
    h_readlink = (fun ~ino -> d.Bento.Fs_api.d_readlink ~ino);
    h_destroy = (fun () -> d.Bento.Fs_api.d_destroy ());
  }

type mount_handle = {
  driver : Fusesim.Driver.t;
  transport : Fusesim.Transport.t;
  ubcache : Fusesim.Ubcache.t;
  cas : Kernel.Cas.t option;
}

(* CAS block access on this stack goes through the daemon's user bcache
   raw path (uncached pread/pwrite on the disk file): the shared-page
   table is the only cache, same dedup-aware admission as the kernel
   stack. The wire crossing per *open* is still paid by the VFS driver —
   the CAS saves device I/O, not FUSE round-trips. *)
let cas_backend machine ubc =
  {
    Kernel.Cas.b_block_size = Device.Ssd.block_size (Kernel.Machine.disk machine);
    b_read = Fusesim.Ubcache.raw_read ubc;
    b_read_scatter =
      (fun blocks ->
        List.map (fun b -> (b, Fusesim.Ubcache.raw_read ubc b)) blocks);
    b_write = List.iter (fun (b, d) -> Fusesim.Ubcache.raw_write ubc b d);
    b_flush = (fun () -> Fusesim.Ubcache.flush ubc);
  }

(** Mount a Bento file system as a userspace FUSE daemon: same fs code,
    user services, the real wire protocol in between. *)
let mount ?dirty_limit ?page_cap ?background ?nominal_gb ?cas_blocks
    (machine : Kernel.Machine.t) (maker : (module Bento.Fs_api.FS_MAKER)) :
    (Kernel.Vfs.t * mount_handle, Kernel.Errno.t) result =
  let ufile = Fusesim.Ufile.create ?nominal_gb machine in
  let ubc = Fusesim.Ubcache.create ufile in
  (* The user-level buffer cache plays the bcache role on this stack, so
     its hits/misses publish under the same prefix for the bench
     hit-ratio metric. *)
  Kernel.Machine.register_stats machine ~prefix:"bcache"
    (Fusesim.Ubcache.stats ubc);
  let nblocks_cap =
    match cas_blocks with
    | None | Some 0 -> None
    | Some n -> Some (Device.Ssd.nblocks (Kernel.Machine.disk machine) - n)
  in
  let services = user_services ?nblocks_cap machine ubc in
  let module K = (val services) in
  let module Maker = (val maker) in
  let module F = Maker (K) in
  match F.mount () with
  | Error _ as e -> e
  | Ok fs ->
      let cas =
        match cas_blocks with
        | None | Some 0 -> None
        | Some n ->
            let base = Device.Ssd.nblocks (Kernel.Machine.disk machine) - n in
            let store =
              Kernel.Cas.attach machine (cas_backend machine ubc) ~base
                ~blocks:n
            in
            Kernel.Cas.register machine store;
            Some store
      in
      let dispatch = Bento.Fs_api.dispatch_of (module F) fs in
      let handler = handler_of machine dispatch in
      (* Pushdown walks on this stack read through the daemon's user-level
         buffer cache — below the syscall layer AND below the wire, so a
         chase costs zero FUSE round trips and repeats run warm. *)
      Kernel.Pushdown.set_backend
        (Kernel.Pushdown.registry machine)
        ~label:"ubcache"
        (fun blk ->
          let b = Fusesim.Ubcache.bread ubc blk in
          let d = Bytes.copy b.Fusesim.Ubcache.data in
          Fusesim.Ubcache.brelse ubc b;
          d);
      let transport = Fusesim.Transport.create machine in
      Kernel.Machine.spawn ~name:"fuse-daemon" machine (fun () ->
          Fusesim.Daemon.run transport handler);
      let driver = Fusesim.Driver.create machine transport in
      let ops =
        Fusesim.Driver.vfs_ops driver
          ~max_file_size:dispatch.Bento.Fs_api.d_max_file_size
      in
      let vfs = Kernel.Vfs.mount ?dirty_limit ?page_cap ?background machine ops in
      Option.iter
        (fun store -> Kernel.Vfs.set_cas vfs (Some (Kernel.Cas.vfs_hooks store)))
        cas;
      Ok (vfs, { driver; transport; ubcache = ubc; cas })

(** Unmount: flush the VFS (through the wire), destroy the daemon-side fs,
    close the connection. *)
let unmount (vfs : Kernel.Vfs.t) (h : mount_handle) =
  Kernel.Vfs.unmount vfs;
  (match h.cas with
  | Some _ -> Kernel.Cas.unregister (Kernel.Vfs.machine vfs)
  | None -> ());
  Fusesim.Driver.shutdown h.driver
