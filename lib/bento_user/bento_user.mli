(** The Bento userspace runtime: the §4.9 debugging story and the paper's
    FUSE baseline in one.

    [user_services] implements the same [Bentoks.KSERVICES] signature as
    the kernel runtime but over userspace facilities — a user-level buffer
    cache on an O_DIRECT disk file, and whole-disk-file fsync(2) as the
    durability barrier. Because a Bento file system is a functor over its
    services, the same fs code that runs in the kernel under BentoFS runs
    here behind the simulated FUSE transport, and both runtimes read the
    same disk image. *)

exception Use_after_release of string
exception Double_release of string

val user_services :
  ?nblocks_cap:int ->
  Kernel.Machine.t ->
  Fusesim.Ubcache.t ->
  (module Bento.Bentoks.KSERVICES)
(** [nblocks_cap] caps the device size the fs sees, reserving the tail
    for a {!Kernel.Cas} region. *)

val handler_of :
  Kernel.Machine.t -> Bento.Fs_api.dispatch -> Fusesim.Daemon.handler
(** Expose a mounted fs's dispatch table as a FUSE daemon handler. The
    machine locates the {!Kernel.Pushdown} registry the daemon-side
    filtered-scan handler runs against. *)

type mount_handle = {
  driver : Fusesim.Driver.t;
  transport : Fusesim.Transport.t;
  ubcache : Fusesim.Ubcache.t;
  cas : Kernel.Cas.t option;
}

val mount :
  ?dirty_limit:int ->
  ?page_cap:int ->
  ?background:bool ->
  ?nominal_gb:int ->
  ?cas_blocks:int ->
  Kernel.Machine.t ->
  (module Bento.Fs_api.FS_MAKER) ->
  (Kernel.Vfs.t * mount_handle, Kernel.Errno.t) result
(** Assemble the whole userspace stack: instantiate the fs against user
    services, start the daemon fiber, mount the FUSE driver on the VFS.
    [nominal_gb] sizes the disk file whose mapping fsync walks (default
    512, the paper's). [cas_blocks > 0] reserves the device tail for a
    {!Kernel.Cas} store backed by the daemon's raw (uncached) disk-file
    access and installs its page-sharing hooks — the CAS removes device
    I/O from warm opens, but the FUSE wire crossing per open remains. *)

val unmount : Kernel.Vfs.t -> mount_handle -> unit
(** Flush through the wire, send DESTROY, close the connection. *)
