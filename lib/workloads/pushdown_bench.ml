(** Pushdown benchmarks (ISSUE 10): measure what a registered kernel-side
    program saves in layer crossings versus the plain multi-call path.

    Three pairs of arms, each a timed loop in virtual time:
    - filtered scan: plain = readdir + one stat per surviving entry
      (the filter predicate is {!Kernel.Pushdown.matches}, shared with
      the kernel so both arms return identical rows) vs pushdown = one
      [readdir_filtered] syscall running the filter + stat batch in the
      fs layer.
    - extent walk: plain = chase a [depth]-level radix index with one
      warm pread per level plus the value read (depth+1 crossings) vs
      pushdown = one [pushdown_walk] syscall whose completion fiber
      resubmits the follow-on reads itself.
    - kv get: the walk with the root bound at registration — get(key)
      entirely below the syscall layer.

    Each arm reports crossings/op measured from the in-window delta of
    the machine's ["syscalls"] + ["fuse_crossings"] counters, the same
    derivation the harness applies to whole runs, so the bench section
    can gate exact values (extent walk: 1.0 with pushdown, depth+1
    without, on every stack). *)

let ok = Kernel.Errno.ok_exn
let bsize = 4096

type r = { br : Bench_result.t; crossings_per_op : float }

let crossings machine =
  Int64.add
    (Sim.Stats.Counter.get (Kernel.Machine.counter machine "syscalls"))
    (Sim.Stats.Counter.get (Kernel.Machine.counter machine "fuse_crossings"))

(* Timed single-fiber loop; returns ops, elapsed and the in-window
   crossings/op. Latencies land in the machine's [op_lat] histogram. *)
let timed machine ~duration body =
  let lat = Micro.op_lat machine in
  let t_start = Kernel.Machine.now machine in
  let deadline = Int64.add t_start duration in
  let c0 = crossings machine in
  let ops = ref 0 in
  let rec loop () =
    let t0 = Kernel.Machine.now machine in
    if Int64.compare t0 deadline < 0 then begin
      body ();
      let t1 = Kernel.Machine.now machine in
      if Int64.compare t1 deadline <= 0 then
        Sim.Stats.Histogram.record lat (Int64.sub t1 t0);
      incr ops;
      loop ()
    end
  in
  loop ();
  let elapsed = Int64.sub (Kernel.Machine.now machine) t_start in
  let dc = Int64.sub (crossings machine) c0 in
  (!ops, elapsed, Int64.to_float dc /. float_of_int (max 1 !ops), lat)

(* ------------------------------------------------------------------ *)
(* Filtered directory scan.                                            *)

let scan_dir = "/scan"
let scan_width = 96
let scan_pat = ".log"
let scan_name i =
  if i mod 6 = 0 then Printf.sprintf "f%03d.log" i
  else Printf.sprintf "f%03d.dat" i

(** One matching entry in six across [scan_width] files; the plain arm
    pays readdir + a stat per survivor, the pushdown arm exactly one
    crossing into the fs layer (per wire round-trip on FUSE). *)
let filtered_scan os ~pushdown ~duration : r =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  if not (Kernel.Os.exists os scan_dir) then begin
    ok (Kernel.Os.mkdir os scan_dir);
    for i = 0 to scan_width - 1 do
      let fd =
        ok
          (Kernel.Os.open_ os
             (scan_dir ^ "/" ^ scan_name i)
             Kernel.Os.(creat wronly))
      in
      ok (Kernel.Os.close os fd)
    done
  end;
  let reg = Kernel.Pushdown.registry machine in
  (match Kernel.Pushdown.find reg "scanlog" with
  | Some _ -> ()
  | None ->
      let cap = Kernel.Pushdown.grant reg ~client:"bench" in
      Result.get_ok
        (Kernel.Pushdown.register reg ~cap ~name:"scanlog"
           (Kernel.Pushdown.Dir_filter { contains = scan_pat })));
  (* warm the dcache / daemon path once outside the window *)
  ignore (ok (Kernel.Os.readdir os scan_dir));
  let body () =
    if pushdown then
      ignore (ok (Kernel.Os.readdir_filtered os scan_dir ~prog:"scanlog"))
    else
      let des = ok (Kernel.Os.readdir os scan_dir) in
      List.iter
        (fun (d : Kernel.Vfs.dirent) ->
          if Kernel.Pushdown.matches d.d_name ~contains:scan_pat then
            ignore (ok (Kernel.Os.stat os (scan_dir ^ "/" ^ d.d_name))))
        des
  in
  let ops, elapsed, cpo, lat = timed machine ~duration body in
  {
    br =
      {
        Bench_result.label =
          (if pushdown then "scan/pushdown" else "scan/plain");
        ops;
        bytes = 0;
        elapsed_ns = elapsed;
        lat = Some lat;
      };
    crossings_per_op = cpo;
  }

(* ------------------------------------------------------------------ *)
(* Radix index built inside a regular file, slots holding DEVICE block
   numbers (via bmap), so the walker can chase them below the fs. *)

type index = {
  ix_fd : int;
  ix_path : string;
  ix_root_dev : int;
  ix_keys : int64 array;
  ix_fbn_of_dev : (int, int) Hashtbl.t;
  ix_nblocks : int;
}

type node = {
  n_fbn : int;
  slot_fbn : int array;  (* child file block, -1 = hole *)
  kids : node option array;  (* interior children *)
}

let value_payload key =
  let b = Bytes.make bsize '\000' in
  Bytes.set_int64_le b 0 key;
  for i = 8 to 63 do
    Bytes.set b i (Char.chr ((Int64.to_int key * 31 + i) land 0xff))
  done;
  b

(** Build a [depth]-level index over [nkeys] distinct random keys in
    [path]: write value + placeholder blocks, fsync (allocating home
    blocks), resolve every file block to its device block with bmap,
    then fill the index blocks with device pointers and flush. *)
let build_index os ~path ~fanout_bits ~depth ~nkeys ~seed : index =
  let fanout = 1 lsl fanout_bits in
  let rng = Sim.Rng.create seed in
  let keyspace = 1 lsl (fanout_bits * depth) in
  let seen = Hashtbl.create nkeys in
  while Hashtbl.length seen < nkeys do
    Hashtbl.replace seen (Sim.Rng.int rng keyspace) ()
  done;
  let keys =
    Array.of_list
      (Hashtbl.fold (fun k () acc -> Int64.of_int k :: acc) seen [])
  in
  Array.sort compare keys;
  let next = ref 0 in
  let alloc () =
    let f = !next in
    incr next;
    f
  in
  let mknode () =
    {
      n_fbn = alloc ();
      slot_fbn = Array.make fanout (-1);
      kids = Array.make fanout None;
    }
  in
  let root = mknode () in
  let key_of_leaf = Hashtbl.create nkeys in
  Array.iter
    (fun key ->
      let rec ins n level =
        let s = Kernel.Pushdown.slot_of_key ~fanout_bits ~depth ~level key in
        if level = depth - 1 then begin
          if n.slot_fbn.(s) < 0 then n.slot_fbn.(s) <- alloc ();
          Hashtbl.replace key_of_leaf n.slot_fbn.(s) key
        end
        else begin
          (match n.kids.(s) with
          | None ->
              let c = mknode () in
              n.kids.(s) <- Some c;
              n.slot_fbn.(s) <- c.n_fbn
          | Some _ -> ());
          match n.kids.(s) with
          | Some c -> ins c (level + 1)
          | None -> assert false
        end
      in
      ins root 0)
    keys;
  let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat rdwr)) in
  let zero = Bytes.make bsize '\000' in
  let rec each n f =
    f n;
    Array.iter (function Some c -> each c f | None -> ()) n.kids
  in
  (* pass 1: placeholders + values, so every file block has a home *)
  each root (fun n ->
      ignore (ok (Kernel.Os.pwrite os fd ~pos:(n.n_fbn * bsize) zero)));
  Hashtbl.iter
    (fun fbn key ->
      ignore (ok (Kernel.Os.pwrite os fd ~pos:(fbn * bsize) (value_payload key))))
    key_of_leaf;
  ok (Kernel.Os.fsync os fd);
  (* pass 2: file block -> device block *)
  let dev = Array.make !next 0 in
  for fbn = 0 to !next - 1 do
    dev.(fbn) <- ok (Kernel.Os.bmap os path ~fbn)
  done;
  (* pass 3: fill index blocks with device pointers *)
  each root (fun n ->
      let b = Bytes.make bsize '\000' in
      Array.iteri
        (fun s f ->
          if f >= 0 then Kernel.Pushdown.put_slot b ~slot:s dev.(f))
        n.slot_fbn;
      ignore (ok (Kernel.Os.pwrite os fd ~pos:(n.n_fbn * bsize) b)));
  ok (Kernel.Os.fsync os fd);
  ok (Kernel.Os.sync os);
  let fbn_of_dev = Hashtbl.create (2 * !next) in
  Array.iteri (fun fbn d -> Hashtbl.replace fbn_of_dev d fbn) dev;
  {
    ix_fd = fd;
    ix_path = path;
    ix_root_dev = dev.(0);
    ix_keys = keys;
    ix_fbn_of_dev = fbn_of_dev;
    ix_nblocks = !next;
  }

(** The plain arm's chase: one pread per index level plus the value read
    — every hop a full caller crossing. *)
let plain_lookup os ix ~fanout_bits ~depth key : Bytes.t =
  let rec chase blk level =
    let fbn = Hashtbl.find ix.ix_fbn_of_dev blk in
    let b = ok (Kernel.Os.pread os ix.ix_fd ~pos:(fbn * bsize) ~len:bsize) in
    if level >= depth then b
    else
      chase
        (Kernel.Pushdown.get_slot b
           ~slot:(Kernel.Pushdown.slot_of_key ~fanout_bits ~depth ~level key))
        (level + 1)
  in
  chase ix.ix_root_dev 0

let walk_fanout_bits = 4
let walk_depth = 3
let walk_nkeys = 24

let setup_index os ~seed =
  let path = "/pushdown.idx" in
  let ix =
    build_index os ~path ~fanout_bits:walk_fanout_bits ~depth:walk_depth
      ~nkeys:walk_nkeys ~seed
  in
  (* warm the page cache so the plain arm's preads are pure crossings *)
  for fbn = 0 to ix.ix_nblocks - 1 do
    ignore (ok (Kernel.Os.pread os ix.ix_fd ~pos:(fbn * bsize) ~len:bsize))
  done;
  ix

(** Point lookups over the index: depth+1 crossings plain, exactly one
    with the walk pushed down to bio completion context. *)
let extent_walk os ~pushdown ~duration ~seed : r =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let ix = setup_index os ~seed in
  let reg = Kernel.Pushdown.registry machine in
  let cap = Kernel.Pushdown.grant reg ~client:"bench" in
  Result.get_ok
    (Kernel.Pushdown.register reg ~cap ~name:"extwalk"
       (Kernel.Pushdown.Extent_walk
          { fanout_bits = walk_fanout_bits; depth = walk_depth }));
  let rng = Sim.Rng.create (seed + 1) in
  let nkeys = Array.length ix.ix_keys in
  let body () =
    let key = ix.ix_keys.(Sim.Rng.int rng nkeys) in
    let v =
      if pushdown then
        ok (Kernel.Os.pushdown_walk os ~prog:"extwalk" ~root:ix.ix_root_dev ~key)
      else
        plain_lookup os ix ~fanout_bits:walk_fanout_bits ~depth:walk_depth key
    in
    assert (Bytes.get_int64_le v 0 = key)
  in
  let ops, elapsed, cpo, lat = timed machine ~duration body in
  ok (Kernel.Os.close os ix.ix_fd);
  {
    br =
      {
        Bench_result.label =
          (if pushdown then "walk/pushdown" else "walk/plain");
        ops;
        bytes = ops * bsize;
        elapsed_ns = elapsed;
        lat = Some lat;
      };
    crossings_per_op = cpo;
  }

(** get(key) below the syscall layer: the walk's root is bound at
    registration, so the caller ships only the key. *)
let kv_get os ~duration ~seed : r =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let ix = setup_index os ~seed in
  let reg = Kernel.Pushdown.registry machine in
  let cap = Kernel.Pushdown.grant reg ~client:"bench" in
  Result.get_ok
    (Kernel.Pushdown.register reg ~cap ~name:"kv"
       (Kernel.Pushdown.Kv_get
          {
            fanout_bits = walk_fanout_bits;
            depth = walk_depth;
            root = ix.ix_root_dev;
          }));
  let rng = Sim.Rng.create (seed + 2) in
  let nkeys = Array.length ix.ix_keys in
  let body () =
    let key = ix.ix_keys.(Sim.Rng.int rng nkeys) in
    let v = ok (Kernel.Os.pushdown_get os ~prog:"kv" ~key) in
    assert (Bytes.get_int64_le v 0 = key)
  in
  let ops, elapsed, cpo, lat = timed machine ~duration body in
  ok (Kernel.Os.close os ix.ix_fd);
  {
    br =
      {
        Bench_result.label = "get/pushdown";
        ops;
        bytes = ops * bsize;
        elapsed_ns = elapsed;
        lat = Some lat;
      };
    crossings_per_op = cpo;
  }
