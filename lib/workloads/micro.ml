(** filebench-style microbenchmarks: read / write (sequential & random,
    several I/O sizes, 1 or 32 threads), createfiles, deletefiles (§6.4).

    Protocols follow the filebench personalities the paper ran: timed loops
    over a pre-created fileset, counting completed operations in virtual
    time. Threads of the read benchmarks share one open file, as filebench
    threads share the fileset entry. *)

let ok = Kernel.Errno.ok_exn

(* filebench serialises fileset-entry selection and per-op bookkeeping on
   fileset-internal locks, so its metadata personalities are effectively
   serial even at 32 threads — the paper's near-identical 1t and 32t
   columns (Tables 4/5, Figures 2-4). The per-op overheads are calibrated
   from the paper's own data: untar creates ~3500 files/s while filebench
   createfiles manages ~1100/s on the same file system, a ~550 us gap that
   can only live in the benchmark personality. *)
let createfiles_overhead = Sim.Time.us 550
let deletefiles_overhead = Sim.Time.us 25
let readwrite_overhead = Sim.Time.ns 2500

(* The histogram the timed loops record per-op latencies into; one per
   machine, so a fresh stack (as the bench harness builds per run) starts
   empty. *)
let op_lat machine = Kernel.Machine.histogram machine "op_lat"

(* Spawn [nthreads] fibers running [body thread_index] until [deadline];
   wait for all of them; returns per-thread op counts. Each completed op's
   latency lands in the machine's [op_lat] histogram, except ops that were
   still in flight at the deadline (their tail would be an artifact of the
   cutoff, e.g. deletefiles parking until the deadline). *)
let run_threads machine ~nthreads ~deadline body =
  let lat = op_lat machine in
  let done_ = Sim.Sync.Semaphore.create 0 in
  let counts = Array.make nthreads 0 in
  for i = 0 to nthreads - 1 do
    Kernel.Machine.spawn ~name:(Printf.sprintf "worker%d" i) machine (fun () ->
        let rec loop () =
          let t0 = Kernel.Machine.now machine in
          if Int64.compare t0 deadline < 0 then begin
            body i;
            let t1 = Kernel.Machine.now machine in
            if Int64.compare t1 deadline <= 0 then
              Sim.Stats.Histogram.record lat (Int64.sub t1 t0);
            counts.(i) <- counts.(i) + 1;
            loop ()
          end
        in
        loop ();
        Sim.Sync.Semaphore.release done_)
  done;
  for _ = 1 to nthreads do
    Sim.Sync.Semaphore.acquire done_
  done;
  Array.fold_left ( + ) 0 counts

(* ------------------------------------------------------------------ *)
(* Read benchmark.                                                     *)

type pattern = Seq | Rnd

let pattern_name = function Seq -> "seq" | Rnd -> "rnd"

(** Timed reads of [iosize] bytes from one [file_mb] file.
    Sequential readers share a single fd (f_pos serialised, wrapping at
    EOF); random readers pread at uniformly random aligned offsets. *)
let read_bench os ~iosize ~pattern ~nthreads ~duration ~file_mb ~seed :
    Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let file_size = file_mb * 1024 * 1024 in
  let path = "/readfile" in
  (* fileset pre-creation + warm the cache like a filebench warmup pass *)
  if not (Kernel.Os.exists os path) then begin
    let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
    let chunk = Bytes.make (1024 * 1024) 'r' in
    for i = 0 to file_mb - 1 do
      ignore (ok (Kernel.Os.pwrite os fd ~pos:(i * 1024 * 1024) chunk))
    done;
    ok (Kernel.Os.fsync os fd);
    ok (Kernel.Os.close os fd)
  end;
  let warm = ok (Kernel.Os.open_ os path Kernel.Os.rdonly) in
  let pos = ref 0 in
  while !pos < file_size do
    ignore (ok (Kernel.Os.pread os warm ~pos:!pos ~len:(1024 * 1024)));
    pos := !pos + (1024 * 1024)
  done;
  ok (Kernel.Os.close os warm);
  (* shared fd, as filebench threads share the fileset entry *)
  let fd = ok (Kernel.Os.open_ os path Kernel.Os.rdonly) in
  let rng = Sim.Rng.create seed in
  let rngs = Array.init nthreads (fun _ -> Sim.Rng.split rng) in
  let fileset_lock = Sim.Sync.Mutex.create ~name:"fileset" () in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let body i =
    Sim.Sync.Mutex.with_lock fileset_lock (fun () ->
        Kernel.Machine.cpu_work machine readwrite_overhead;
        match pattern with
        | Seq ->
            let data = ok (Kernel.Os.read os fd ~len:iosize) in
            if Bytes.length data < iosize then ok (Kernel.Os.lseek os fd 0)
        | Rnd ->
            let slots = file_size / iosize in
            let pos = Sim.Rng.int rngs.(i) slots * iosize in
            ignore (ok (Kernel.Os.pread os fd ~pos ~len:iosize)))
  in
  let ops = run_threads machine ~nthreads ~deadline body in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  ok (Kernel.Os.close os fd);
  {
    Bench_result.label =
      Printf.sprintf "read-%s-%dk-%dt" (pattern_name pattern) (iosize / 1024)
        nthreads;
    ops;
    bytes = ops * iosize;
    elapsed_ns = elapsed;
    lat = Some (op_lat machine);
  }

(** Cold-cache sequential read: write [file_mb] MB, sync, drop the page
    cache, then stream the whole file once in [iosize] reads. Fixed work
    rather than a timed window — elapsed time is the figure of merit (the
    readahead/bulk-read ablations change it directly); MBps derives from
    it. *)
let seqread_cold_bench os ~iosize ~file_mb : Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let file_size = file_mb * 1024 * 1024 in
  let path = "/coldfile" in
  if not (Kernel.Os.exists os path) then begin
    let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
    let chunk = Bytes.make (1024 * 1024) 's' in
    for i = 0 to file_mb - 1 do
      ignore (ok (Kernel.Os.pwrite os fd ~pos:(i * 1024 * 1024) chunk))
    done;
    ok (Kernel.Os.fsync os fd);
    ok (Kernel.Os.close os fd)
  end;
  ok (Kernel.Vfs.drop_caches (Kernel.Os.vfs os));
  let fd = ok (Kernel.Os.open_ os path Kernel.Os.rdonly) in
  let lat = op_lat machine in
  let t0 = Kernel.Machine.now machine in
  let pos = ref 0 in
  while !pos < file_size do
    let s0 = Kernel.Machine.now machine in
    Kernel.Machine.cpu_work machine readwrite_overhead;
    ignore (ok (Kernel.Os.pread os fd ~pos:!pos ~len:iosize));
    Sim.Stats.Histogram.record lat (Int64.sub (Kernel.Machine.now machine) s0);
    pos := !pos + iosize
  done;
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  ok (Kernel.Os.close os fd);
  {
    Bench_result.label = Printf.sprintf "seqread-cold-%dk" (iosize / 1024);
    ops = file_size / iosize;
    bytes = file_size;
    elapsed_ns = elapsed;
    lat = Some lat;
  }

(* ------------------------------------------------------------------ *)
(* Scaling benchmark: per-thread private files, no fileset lock.       *)

(** Timed reads where every thread owns a private [file_mb] file, fd, rng,
    and position — no shared fileset entry and no fileset lock, unlike
    {!read_bench}, whose filebench-style fileset lock serialises the
    threads by design. Files are pre-created and warmed, so the timed
    window exercises the contention path of the stack itself (page-cache
    and buffer-cache locks, per-core accounting) rather than the device:
    aggregate ops at N threads over ops at 1 thread is the many-core
    scaling factor. *)
let scaling_read_bench os ~iosize ~pattern ~nthreads ~duration ~file_mb ~seed :
    Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let file_size = file_mb * 1024 * 1024 in
  let prefix = "/scale" in
  if not (Kernel.Os.exists os prefix) then ok (Kernel.Os.mkdir os prefix);
  let path i = Printf.sprintf "%s/f%03d" prefix i in
  let chunk = Bytes.make (1024 * 1024) 'p' in
  for i = 0 to nthreads - 1 do
    if not (Kernel.Os.exists os (path i)) then begin
      let fd = ok (Kernel.Os.open_ os (path i) Kernel.Os.(creat wronly)) in
      for m = 0 to file_mb - 1 do
        ignore (ok (Kernel.Os.pwrite os fd ~pos:(m * 1024 * 1024) chunk))
      done;
      ok (Kernel.Os.close os fd)
    end
  done;
  ok (Kernel.Os.sync os);
  (* warm each file so the timed window measures the contention path, not
     first-touch misses *)
  for i = 0 to nthreads - 1 do
    let fd = ok (Kernel.Os.open_ os (path i) Kernel.Os.rdonly) in
    let pos = ref 0 in
    while !pos < file_size do
      ignore (ok (Kernel.Os.pread os fd ~pos:!pos ~len:(1024 * 1024)));
      pos := !pos + (1024 * 1024)
    done;
    ok (Kernel.Os.close os fd)
  done;
  let fds =
    Array.init nthreads (fun i ->
        ok (Kernel.Os.open_ os (path i) Kernel.Os.rdonly))
  in
  let rng = Sim.Rng.create seed in
  let rngs = Array.init nthreads (fun _ -> Sim.Rng.split rng) in
  let positions = Array.make nthreads 0 in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let body i =
    Kernel.Machine.cpu_work machine readwrite_overhead;
    match pattern with
    | Seq ->
        let pos = positions.(i) in
        positions.(i) <- (pos + iosize) mod file_size;
        ignore (ok (Kernel.Os.pread os fds.(i) ~pos ~len:iosize))
    | Rnd ->
        let slots = file_size / iosize in
        let pos = Sim.Rng.int rngs.(i) slots * iosize in
        ignore (ok (Kernel.Os.pread os fds.(i) ~pos ~len:iosize))
  in
  let ops = run_threads machine ~nthreads ~deadline body in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  Array.iter (fun fd -> ok (Kernel.Os.close os fd)) fds;
  {
    Bench_result.label =
      Printf.sprintf "scale-read-%s-%dk-%dt" (pattern_name pattern)
        (iosize / 1024) nthreads;
    ops;
    bytes = ops * iosize;
    elapsed_ns = elapsed;
    lat = Some (op_lat machine);
  }

(* ------------------------------------------------------------------ *)
(* Write benchmark.                                                    *)

(** Timed writes of [iosize] bytes over a [file_mb] file (rewrite in
    place, like filebench's write personalities). *)
let write_bench os ~iosize ~pattern ~nthreads ~duration ~file_mb ~seed :
    Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let file_size = file_mb * 1024 * 1024 in
  let path = "/writefile" in
  let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat rdwr)) in
  (* preallocate so rewrites hit allocated blocks *)
  let chunk = Bytes.make (1024 * 1024) 'w' in
  for i = 0 to file_mb - 1 do
    ignore (ok (Kernel.Os.pwrite os fd ~pos:(i * 1024 * 1024) chunk))
  done;
  ok (Kernel.Os.fsync os fd);
  let payload = Bytes.make iosize 'W' in
  let rng = Sim.Rng.create seed in
  let rngs = Array.init nthreads (fun _ -> Sim.Rng.split rng) in
  let seq_pos = ref 0 in
  let fileset_lock = Sim.Sync.Mutex.create ~name:"fileset" () in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let body i =
    Sim.Sync.Mutex.with_lock fileset_lock (fun () ->
        Kernel.Machine.cpu_work machine readwrite_overhead;
        match pattern with
        | Seq ->
            let pos = !seq_pos in
            seq_pos := (pos + iosize) mod file_size;
            ignore (ok (Kernel.Os.pwrite os fd ~pos payload))
        | Rnd ->
            let slots = file_size / iosize in
            let pos = Sim.Rng.int rngs.(i) slots * iosize in
            ignore (ok (Kernel.Os.pwrite os fd ~pos payload)))
  in
  let ops = run_threads machine ~nthreads ~deadline body in
  (* drain what is still dirty so the measured window includes the
     device work it generated *)
  ok (Kernel.Os.fsync os fd);
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  ok (Kernel.Os.close os fd);
  {
    Bench_result.label =
      Printf.sprintf "write-%s-%dk-%dt" (pattern_name pattern) (iosize / 1024)
        nthreads;
    ops;
    bytes = ops * iosize;
    elapsed_ns = elapsed;
    lat = Some (op_lat machine);
  }

(* ------------------------------------------------------------------ *)
(* Create / delete benchmarks (filebench createfiles / deletefiles:
   16 KB mean file size, files spread over directories).               *)

let dir_of_file ~dirwidth i = i / dirwidth

let ensure_dirs os ~prefix ~ndirs =
  if not (Kernel.Os.exists os prefix) then ok (Kernel.Os.mkdir os prefix);
  for d = 0 to ndirs - 1 do
    let p = Printf.sprintf "%s/d%04d" prefix d in
    if not (Kernel.Os.exists os p) then ok (Kernel.Os.mkdir os p)
  done

(** Timed file creations: each op creates a fresh file, writes ~16 KB,
    closes. *)
let create_bench os ~nthreads ~duration ~dirwidth ~mean_size ~seed :
    Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let prefix = "/createset" in
  if not (Kernel.Os.exists os prefix) then ok (Kernel.Os.mkdir os prefix);
  let dirs_made = ref 0 in
  let ensure_dir d =
    (* directories are grown lazily as the fileset expands *)
    while !dirs_made <= d do
      ok (Kernel.Os.mkdir os (Printf.sprintf "%s/d%04d" prefix !dirs_made));
      incr dirs_made
    done
  in
  let next = ref 0 in
  let rng = Sim.Rng.create seed in
  let rngs = Array.init nthreads (fun _ -> Sim.Rng.split rng) in
  let fileset_lock = Sim.Sync.Mutex.create ~name:"fileset" () in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let bytes = ref 0 in
  let body i =
    Sim.Sync.Mutex.with_lock fileset_lock (fun () ->
        Kernel.Machine.cpu_work machine createfiles_overhead;
        let id = !next in
        next := id + 1;
        let size =
          max 4096
            (int_of_float (Sim.Rng.exponential rngs.(i) ~mean:(float_of_int mean_size)))
        in
        let size = min size (16 * 16384) in
        let dir = dir_of_file ~dirwidth id in
        ensure_dir dir;
        let path = Printf.sprintf "%s/d%04d/f%07d" prefix dir id in
        let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
        ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make size 'c')));
        ok (Kernel.Os.close os fd);
        bytes := !bytes + size)
  in
  let ops = run_threads machine ~nthreads ~deadline body in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  {
    Bench_result.label = Printf.sprintf "create-%dt" nthreads;
    ops;
    bytes = !bytes;
    elapsed_ns = elapsed;
    lat = Some (op_lat machine);
  }

(** Timed deletions over a pre-created fileset. *)
let delete_bench os ~nthreads ~duration ~dirwidth ~precreate ~seed :
    Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let prefix = "/deleteset" in
  ensure_dirs os ~prefix ~ndirs:((precreate / dirwidth) + 1);
  ignore seed;
  for id = 0 to precreate - 1 do
    let path =
      Printf.sprintf "%s/d%04d/f%07d" prefix (dir_of_file ~dirwidth id) id
    in
    let fd = ok (Kernel.Os.open_ os path Kernel.Os.(creat wronly)) in
    ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make 4096 'd')));
    ok (Kernel.Os.close os fd)
  done;
  ok (Kernel.Os.sync os);
  let next = ref 0 in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let stop = ref false in
  let sleep_out () =
    (* fileset exhausted: park until the deadline so the timed loop ends *)
    let now = Kernel.Machine.now machine in
    if Int64.compare now deadline < 0 then
      Sim.Engine.sleep (Int64.add (Int64.sub deadline now) 1L)
  in
  let fileset_lock = Sim.Sync.Mutex.create ~name:"fileset" () in
  let body _i =
    if !stop then sleep_out ()
    else
      Sim.Sync.Mutex.with_lock fileset_lock (fun () ->
          Kernel.Machine.cpu_work machine deletefiles_overhead;
          let id = !next in
          next := id + 1;
          if id >= precreate then begin
            stop := true;
            sleep_out ()
          end
          else
            let path =
              Printf.sprintf "%s/d%04d/f%07d" prefix (dir_of_file ~dirwidth id) id
            in
            ok (Kernel.Os.unlink os path))
  in
  let ops = run_threads machine ~nthreads ~deadline body in
  let ops = min ops precreate in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  {
    Bench_result.label = Printf.sprintf "delete-%dt" nthreads;
    ops;
    bytes = 0;
    elapsed_ns = elapsed;
    lat = Some (op_lat machine);
  }
