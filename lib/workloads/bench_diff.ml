(** Regression gate over two [bench --json] documents.

    The harness writes {meta, results} documents (see bench/main.ml); this
    module matches result rows between an old and a new document by
    (section, system, config), computes per-metric deltas, and decides
    whether any *gated* metric regressed beyond a tolerance. Runs whose
    metadata differ in ways that make the numbers incomparable (seed,
    virtual duration, workload scale, cost-model version, block size) are
    refused outright — comparing a 0.5 s run against a 2 s run, or runs
    from different cost models, produces deltas that mean nothing. *)

(* ------------------------------------------------------------------ *)
(* Metric directions: which way is better, and which metrics gate.     *)

type direction = Higher_better | Lower_better | Informational

(* Gated metrics. Throughput up is good; latency percentiles, layer
   crossings, and write amplification down are good. [lat_max_ns] and raw
   counters are reported but never gate: a single outlier op or a counter
   whose magnitude scales with throughput would make the gate flappy. *)
let direction_of = function
  | "ops_per_sec" | "mbps" | "bcache_hit_ratio" -> Higher_better
  | "scaling_efficiency" -> Higher_better
      (* synthetic rows from the scaling section: throughput at N fibers
         over throughput at 1 fiber — a drop means a scalability loss even
         if absolute single-fiber throughput held steady *)
  | "lat_p50_ns" | "lat_p90_ns" | "lat_p99_ns" -> Lower_better
  | "write_amplification" | "crossings_per_op" -> Lower_better
  | "cas_shared_ratio" -> Higher_better
      (* fraction of CAS page faults served by a resident shared page —
         a drop means tenants stopped sharing *)
  | "warm_device_reads" | "device_blocks" -> Lower_better
      (* synthetic rows from the coldstart section: device reads during
         the warm sweep (0 on Bento — any rise re-opens the cold path)
         and total device blocks in use (the dedup claim) *)
  | "slo_p99_ms" | "slo_breaches" -> Lower_better
  | "causal_connected_ratio" -> Higher_better
      (* synthetic rows from traced sections: fraction of requests whose
         spans and flow edges reconstruct into one connected causal DAG —
         a drop means a propagation hop lost its reqid or flow stitch *)
      (* synthetic rows from the server section: per-tenant sliding-window
         p99 and burn-rate breach episodes from the server's SLO monitor —
         a rise means a tenant class lost its latency objective *)
  | _ -> Informational

(* ------------------------------------------------------------------ *)
(* Document model.                                                     *)

type row = {
  section : string;
  system : string;
  config : string;
  metrics : (string * float) list;  (* numeric top-level fields, in order *)
}

type doc = {
  meta : (string * Util.Json.t) list;
  rows : row list;
}

type delta = {
  metric : string;
  dir : direction;
  old_v : float;
  new_v : float;
  change_pct : float;  (* signed (new-old)/old in percent; 0 when old=0 *)
  regressed : bool;
}

type row_delta = {
  key : string * string * string;  (* section, system, config *)
  deltas : delta list;
}

type report = {
  compared : row_delta list;
  only_old : (string * string * string) list;
  only_new : (string * string * string) list;
  regressions : int;
}

type error =
  | Bad_input of string  (** malformed JSON / not a bench document *)
  | Incomparable of string  (** run metadata differs; refuse to compare *)

let error_to_string = function
  | Bad_input m -> "bad input: " ^ m
  | Incomparable m -> "incomparable runs: " ^ m

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

let parse_tolerance s =
  let s = String.trim s in
  let body, scale =
    if String.length s > 0 && s.[String.length s - 1] = '%' then
      (String.sub s 0 (String.length s - 1), 0.01)
    else (s, 1.0)
  in
  match float_of_string_opt (String.trim body) with
  | Some v when v >= 0. -> Ok (v *. scale)
  | Some _ -> Error (Printf.sprintf "tolerance must be >= 0: %S" s)
  | None -> Error (Printf.sprintf "cannot parse tolerance %S (use 5%% or 0.05)" s)

let row_of_json j =
  let open Util.Json in
  let str field =
    match Option.bind (member field j) to_string_opt with
    | Some s -> s
    | None -> ""
  in
  let metrics =
    match j with
    | Obj kvs ->
        List.filter_map
          (fun (k, v) ->
            match to_float_opt v with Some f -> Some (k, f) | None -> None)
          kvs
    | _ -> []
  in
  { section = str "section"; system = str "system"; config = str "config";
    metrics }

let doc_of_json (j : Util.Json.t) : (doc, error) result =
  let open Util.Json in
  match (member "meta" j, member "results" j) with
  | Some (Obj meta), Some (List rows) ->
      Ok { meta; rows = List.map row_of_json rows }
  | _ -> Error (Bad_input "expected an object with \"meta\" and \"results\"")

let doc_of_string s =
  match Util.Json.parse s with
  | Ok j -> doc_of_json j
  | Error m -> Error (Bad_input m)

(* ------------------------------------------------------------------ *)
(* Metadata compatibility.                                             *)

(* Fields that must match for the numbers to be comparable. git_describe
   legitimately differs between the two runs (that is the whole point);
   everything that shapes the workload or the cost model must not. *)
let compat_fields =
  [ "seed"; "duration_s"; "untar_files"; "cost_model"; "block_size" ]

let meta_compatible (old_meta : (string * Util.Json.t) list) new_meta =
  let value m f = List.assoc_opt f m in
  let mismatches =
    List.filter_map
      (fun f ->
        let o = value old_meta f and n = value new_meta f in
        if o = n then None
        else
          let show = function
            | None -> "<absent>"
            | Some v -> Util.Json.to_string v
          in
          Some (Printf.sprintf "%s: %s vs %s" f (show o) (show n)))
      compat_fields
  in
  match mismatches with
  | [] -> Ok ()
  | ms -> Error (Incomparable (String.concat "; " ms))

(* ------------------------------------------------------------------ *)
(* Comparison.                                                         *)

let key r = (r.section, r.system, r.config)

let delta ~tolerance metric old_v new_v =
  let dir = direction_of metric in
  let change_pct = if old_v = 0. then 0. else (new_v -. old_v) /. old_v *. 100. in
  let regressed =
    match dir with
    | Informational -> false
    | Higher_better -> new_v < old_v *. (1. -. tolerance)
    | Lower_better ->
        if old_v = 0. then new_v > 0. else new_v > old_v *. (1. +. tolerance)
  in
  { metric; dir; old_v; new_v; change_pct; regressed }

let diff_rows ~tolerance (old_r : row) (new_r : row) : row_delta =
  let deltas =
    List.filter_map
      (fun (m, ov) ->
        match List.assoc_opt m new_r.metrics with
        | Some nv -> Some (delta ~tolerance m ov nv)
        | None -> None)
      old_r.metrics
  in
  { key = key old_r; deltas }

let diff ?(tolerance = 0.05) (old_doc : doc) (new_doc : doc) :
    (report, error) result =
  match meta_compatible old_doc.meta new_doc.meta with
  | Error e -> Error e
  | Ok () ->
      let find d k = List.find_opt (fun r -> key r = k) d.rows in
      let compared =
        List.filter_map
          (fun old_r ->
            match find new_doc (key old_r) with
            | Some new_r -> Some (diff_rows ~tolerance old_r new_r)
            | None -> None)
          old_doc.rows
      in
      if compared = [] then
        Error
          (Bad_input
             "no rows matched between the two documents (did the runs cover \
              the same sections?)")
      else
        let matched k = List.exists (fun rd -> rd.key = k) compared in
        let only_old =
          List.filter_map
            (fun r -> if matched (key r) then None else Some (key r))
            old_doc.rows
        in
        let only_new =
          List.filter_map
            (fun r -> if matched (key r) then None else Some (key r))
            new_doc.rows
        in
        let regressions =
          List.fold_left
            (fun acc rd ->
              acc
              + List.length (List.filter (fun d -> d.regressed) rd.deltas))
            0 compared
        in
        Ok { compared; only_old; only_new; regressions }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let pp_key ppf (s, sys, c) = Fmt.pf ppf "%s/%s/%s" s sys c

let render ?(tolerance = 0.05) (r : report) : string =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let arrow d =
    match d.dir with
    | Informational -> " "
    | _ when d.regressed -> "!"
    | Higher_better when d.change_pct > 0.005 -> "+"
    | Lower_better when d.change_pct < -0.005 -> "+"
    | _ -> " "
  in
  List.iter
    (fun rd ->
      let interesting =
        List.filter
          (fun d -> d.regressed || Float.abs d.change_pct >= tolerance *. 100.)
          rd.deltas
      in
      if interesting <> [] then begin
        pf "%s\n" (Fmt.str "%a" pp_key rd.key);
        List.iter
          (fun d ->
            pf "  %s %-22s %14.3f -> %14.3f  %+7.2f%%%s\n" (arrow d) d.metric
              d.old_v d.new_v d.change_pct
              (if d.regressed then "  REGRESSION" else ""))
          interesting
      end)
    r.compared;
  List.iter
    (fun k -> pf "only in old run: %s\n" (Fmt.str "%a" pp_key k))
    r.only_old;
  List.iter
    (fun k -> pf "only in new run: %s\n" (Fmt.str "%a" pp_key k))
    r.only_new;
  let gated =
    List.fold_left
      (fun acc rd ->
        acc
        + List.length
            (List.filter (fun d -> d.dir <> Informational) rd.deltas))
      0 r.compared
  in
  pf "%d rows compared, %d gated metrics checked, %d regression%s (tolerance %.1f%%)\n"
    (List.length r.compared) gated r.regressions
    (if r.regressions = 1 then "" else "s")
    (tolerance *. 100.);
  Buffer.contents buf
