(** Coldstart: one sealed Linux-source-style manifest instantiated as N
    tenant trees.

    The dependency-tree scenario behind the CAS layer: every tenant gets
    the same read-only tree. With content addressing ({!Kernel.Cas}) the
    tree's blocks live on the device once and all tenants alias the same
    cached pages, so after the first tenant faults them in, a warm
    open+read across every other tenant does {e zero} device I/O; the
    naive baseline writes N private copies and caches N private page
    sets. Reported per run: the warm open+read sweep (ops = open+read of
    one file), device reads observed during the warm sweep, page-cache
    residency, and total device blocks used. *)

let ok = Kernel.Errno.ok_exn

(* ------------------------------------------------------------------ *)
(* The sealed tree: Macro's Linux-like shape, paths made root-relative,
   with deterministic content. A quarter of the files are exact
   duplicates of earlier ones (vendored/generated files), so sealing
   also dedups within one manifest.                                     *)

let tree ~nfiles ~ndirs ~seed =
  let m = Macro.linux_tree_manifest ~nfiles ~ndirs ~seed () in
  let strip p =
    (* "/linux/arch/sub0001" -> "arch/sub0001" *)
    let prefix = "/linux/" in
    if String.length p > String.length prefix then
      String.sub p (String.length prefix) (String.length p - String.length prefix)
    else ""
  in
  let dirs = List.filter_map (fun d ->
      match strip d with "" -> None | r -> Some r)
      m.Macro.dirs
  in
  let dup_base = max 1 (nfiles * 3 / 4) in
  let content i size =
    let rng = Sim.Rng.create (seed + (i mod dup_base)) in
    (* block-aligned repeating payload so equal seeds give equal pages *)
    let b = Bytes.create size in
    let word = ref (Sim.Rng.int rng 0x1000000) in
    for j = 0 to size - 1 do
      if j land 63 = 0 then word := Sim.Rng.int rng 0x1000000;
      Bytes.unsafe_set b j (Char.unsafe_chr ((!word + j) land 0xff))
    done;
    b
  in
  let files =
    List.mapi
      (fun i { Macro.me_path; me_size } ->
        (* duplicate files must share sizes too, or their pages differ *)
        let size =
          let rng = Sim.Rng.create (seed + 7919 + (i mod dup_base)) in
          max 128 (min me_size (2048 + Sim.Rng.int rng 16384))
        in
        (strip me_path, content i size))
      m.Macro.files
  in
  (dirs, files)

type result = {
  r_sweep : Bench_result.t;  (** warm open+read over every tenant's files *)
  r_warm_device_reads : int;  (** device blocks read during the warm sweep *)
  r_resident_pages : int;  (** VFS page-cache residency after the sweep *)
  r_shared_pages : int;  (** CAS shared-table residency (0 for naive) *)
  r_device_blocks : int;  (** fs blocks in use + CAS region blocks in use *)
}

let root_of k = Printf.sprintf "/t%04d" k

let device_blocks_used os store =
  let s = Kernel.Os.statfs os in
  let fs_used = s.Kernel.Vfs.f_blocks - s.Kernel.Vfs.f_bfree in
  fs_used + (match store with Some c -> Kernel.Cas.used_blocks c | None -> 0)

(* Warm open+read sweep: for every tenant, open each file, read it whole,
   close. One op = one open+read+close. *)
let sweep ?lat os ~tenants files =
  let bytes = ref 0 in
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  for k = 0 to tenants - 1 do
    let root = root_of k in
    List.iter
      (fun (path, size) ->
        let f0 = Kernel.Machine.now machine in
        let fd = ok (Kernel.Os.open_ os (root ^ "/" ^ path) Kernel.Os.rdonly) in
        let data = ok (Kernel.Os.pread os fd ~pos:0 ~len:size) in
        ok (Kernel.Os.close os fd);
        bytes := !bytes + Bytes.length data;
        match lat with
        | Some h ->
            Sim.Stats.Histogram.record h
              (Int64.sub (Kernel.Machine.now machine) f0)
        | None -> ())
      files
  done;
  !bytes

let blocks_read_counter machine =
  Sim.Stats.counter (Device.Ssd.stats (Kernel.Machine.disk machine)) "blocks_read"

let measured_sweep ~label os ~tenants files =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let store = Kernel.Cas.of_machine machine in
  let br = blocks_read_counter machine in
  let br0 = Sim.Stats.Counter.get br in
  let lat = Sim.Stats.Histogram.create "coldstart_open_read" in
  let t0 = Kernel.Machine.now machine in
  let bytes = sweep ~lat os ~tenants files in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  (* the device-read delta must close before [device_blocks_used] reads
     the CAS superblock, or that read pollutes the warm count *)
  let warm_reads = Int64.to_int (Int64.sub (Sim.Stats.Counter.get br) br0) in
  {
    r_sweep =
      {
        Bench_result.label;
        ops = tenants * List.length files;
        bytes;
        elapsed_ns = elapsed;
        lat = Some lat;
      };
    r_warm_device_reads = warm_reads;
    r_resident_pages = Kernel.Vfs.cached_pages (Kernel.Os.vfs os);
    r_shared_pages =
      (match store with Some c -> Kernel.Cas.resident_pages c | None -> 0);
    r_device_blocks = device_blocks_used os store;
  }

(** Seal the tree once, instantiate it as [tenants] trees (one durable
    commit for all the bindings), fault the shared pages in with one cold
    pass over the first tenant, then run the measured warm sweep over all
    tenants. Requires the mount to have a CAS store attached. *)
let cas_run os ~tenants ~nfiles ~ndirs ~seed : result =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let store =
    match Kernel.Cas.of_machine machine with
    | Some s -> s
    | None -> failwith "coldstart: mount has no CAS store attached"
  in
  let dirs, files = tree ~nfiles ~ndirs ~seed in
  let mid = Kernel.Cas.seal_files store ~name:"coldstart" ~dirs ~files in
  for k = 0 to tenants - 1 do
    Kernel.Cas.instantiate ~commit_bindings:false store os ~mid
      ~root:(root_of k)
  done;
  Kernel.Cas.commit store;
  let files = List.map (fun (p, d) -> (p, Bytes.length d)) files in
  ignore (sweep os ~tenants:1 files : int);
  measured_sweep ~label:"coldstart-cas" os ~tenants files

(** The naive-copy baseline: write [tenants] private copies of the same
    tree, sync, then run the same measured warm sweep. *)
let naive_run os ~tenants ~nfiles ~ndirs ~seed : result =
  let dirs, files = tree ~nfiles ~ndirs ~seed in
  for k = 0 to tenants - 1 do
    let root = root_of k in
    ok (Kernel.Os.mkdir os root);
    List.iter (fun d -> ok (Kernel.Os.mkdir os (root ^ "/" ^ d))) dirs;
    List.iter
      (fun (p, data) -> ok (Kernel.Os.write_file os (root ^ "/" ^ p) data))
      files
  done;
  ok (Kernel.Os.sync os);
  let files = List.map (fun (p, d) -> (p, Bytes.length d)) files in
  ignore (sweep os ~tenants:1 files : int);
  measured_sweep ~label:"coldstart-naive" os ~tenants files
