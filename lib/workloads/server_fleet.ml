(** Multi-tenant file-server fleets: client populations driving the
    {!Server.Fileserver} over its wire protocol, split across QoS tenant
    classes.

    webserver — a fleet of web frontends serving a shared small-file
    corpus: each client loops picking a file by a Zipf popularity draw,
    opens it once with a read lease, and then serves it — from its lease
    cache after warmup, over the wire on a miss. Mostly cache hits and
    attribute checks; the canonical many-clients/small-reads personality.

    ci — a fleet of CI workers: each job creates a private build
    directory, writes a tree of intermediate files through a write-lease
    cache, commits them, then scans the tree back (readdir + read) and
    cleans up. Write-heavy, bursty, lease churn.

    Both report one {!Bench_result} per tenant class so the bench can
    print per-class throughput and p99 — the fairness story. *)

let ok = Kernel.Errno.ok_exn

let ok_r = function
  | Ok v -> v
  | Error e -> failwith ("server_fleet: " ^ Kernel.Errno.to_string e)

(** The two tenant classes every fleet runs with: [gold] holds 4x the
    weight and a deeper inflight allowance than [bronze]. *)
let tenant_classes =
  [
    ("gold", { Server.Qos.weight = 4; max_inflight = 16 });
    ("bronze", { Server.Qos.weight = 1; max_inflight = 8 });
  ]

let tenant_of i = if i mod 2 = 0 then "gold" else "bronze"

type per_tenant = {
  mutable pt_ops : int;
  mutable pt_bytes : int;
  pt_lat : Sim.Stats.Histogram.t;
}

let per_tenant_table label =
  List.map
    (fun (name, _) ->
      ( name,
        {
          pt_ops = 0;
          pt_bytes = 0;
          pt_lat =
            Sim.Stats.Histogram.create
              (Printf.sprintf "%s_%s_lat" label name);
        } ))
    tenant_classes

let results_of label table t0 machine =
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  List.map
    (fun (name, pt) ->
      ( name,
        {
          Bench_result.label = label ^ "-" ^ name;
          ops = pt.pt_ops;
          bytes = pt.pt_bytes;
          elapsed_ns = elapsed;
          lat = Some pt.pt_lat;
        } ))
    table

(* Run [nclients] client fibers against a fresh server on [os]; [body]
   gets (client index, tenant accounting, deadline, client session).
   [slo_out], when given, receives the server's per-tenant SLO summaries
   taken right before shutdown (the server object dies with the fleet). *)
let run_fleet os ~label ~nclients ~duration ~max_total ?slo_out body =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let server =
    Server.Fileserver.start machine os
      { Server.Fileserver.tenants = tenant_classes; max_inflight_total = max_total }
  in
  let listener = Server.Fileserver.listener server in
  let table = per_tenant_table label in
  let done_ = Sim.Sync.Semaphore.create 0 in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  for i = 0 to nclients - 1 do
    Kernel.Machine.spawn ~name:(Printf.sprintf "fleet-%d" i) machine (fun () ->
        let tenant = tenant_of i in
        let pt = List.assoc tenant table in
        (match Server.Client.attach machine listener ~tenant with
        | Error e -> failwith ("fleet attach: " ^ Kernel.Errno.to_string e)
        | Ok cl ->
            body i pt deadline cl;
            Server.Client.detach cl);
        Sim.Sync.Semaphore.release done_)
  done;
  for _ = 1 to nclients do
    Sim.Sync.Semaphore.acquire done_
  done;
  let r = results_of label table t0 machine in
  (match slo_out with
  | Some cell -> cell := Server.Slo.summaries (Server.Fileserver.slo server)
  | None -> ());
  Server.Fileserver.stop server;
  r

(* ------------------------------------------------------------------ *)
(* webserver fleet                                                      *)

(** Per-request client-side service time (parse request, fill response):
    virtual time the client spends off the wire, so a cache-hit loop
    still advances the clock without touching the server's cores. *)
let web_think_ns = 20_000L

let webserver_fleet os ?(nfiles = 300) ?(fsize = 16384) ?slo_out ~nclients
    ~duration ~seed () : (string * Bench_result.t) list =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  (* Build the document corpus before the server comes up. *)
  ok (Kernel.Os.mkdir os "/srv");
  let name id = Printf.sprintf "doc%04d" id in
  for id = 0 to nfiles - 1 do
    ok
      (Kernel.Os.write_file os
         (Printf.sprintf "/srv/%s" (name id))
         (Bytes.make fsize (Char.chr (65 + (id mod 26)))))
  done;
  ok (Kernel.Os.sync os);
  let rng0 = Sim.Rng.create seed in
  let rngs = Array.init nclients (fun _ -> Sim.Rng.split rng0) in
  run_fleet os ~label:"web" ~nclients ~duration ~max_total:64 ?slo_out
    (fun i pt deadline cl ->
      let rng = rngs.(i) in
      let root = (Server.Client.root cl).Server.Proto.ino in
      let srv = ok_r (Server.Client.lookup cl ~dir:root ~name:"srv") in
      let inos = Array.make nfiles 0 in
      let rec serve () =
        if Kernel.Machine.now machine < deadline then begin
          let id = Sim.Rng.zipf rng ~n:nfiles ~theta:0.9 in
          let t0 = Kernel.Machine.now machine in
          (if inos.(id) = 0 then begin
             let a =
               ok_r
                 (Server.Client.lookup cl ~dir:srv.Server.Proto.ino
                    ~name:(name id))
             in
             inos.(id) <- a.Server.Proto.ino;
             ignore (ok_r (Server.Client.open_ cl inos.(id) ~write:false))
           end);
          (match Server.Client.read cl inos.(id) ~off:0 ~len:fsize with
          | Ok d -> pt.pt_bytes <- pt.pt_bytes + Bytes.length d
          | Error _ -> ());
          Sim.Engine.sleep web_think_ns;
          pt.pt_ops <- pt.pt_ops + 1;
          Sim.Stats.Histogram.record pt.pt_lat
            (Int64.sub (Kernel.Machine.now machine) t0);
          serve ()
        end
      in
      serve ())

(* ------------------------------------------------------------------ *)
(* CI fleet                                                             *)

let ci_fleet os ?(files_per_job = 12) ?(fsize = 24576) ?slo_out ~nclients
    ~duration ~seed () : (string * Bench_result.t) list =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  ok (Kernel.Os.mkdir os "/ci");
  ignore seed;
  run_fleet os ~label:"ci" ~nclients ~duration ~max_total:64 ?slo_out
    (fun i pt deadline cl ->
      let root = (Server.Client.root cl).Server.Proto.ino in
      let ci = ok_r (Server.Client.lookup cl ~dir:root ~name:"ci") in
      let job = ref 0 in
      let rec run_job () =
        if Kernel.Machine.now machine < deadline then begin
          let t0 = Kernel.Machine.now machine in
          let dirname = Printf.sprintf "w%04d-j%04d" i !job in
          incr job;
          let dir =
            ok_r (Server.Client.mkdir cl ~dir:ci.Server.Proto.ino ~name:dirname)
          in
          let dino = dir.Server.Proto.ino in
          (* build: write the intermediate tree through the lease cache *)
          for f = 0 to files_per_job - 1 do
            let a =
              ok_r
                (Server.Client.create cl ~dir:dino
                   ~name:(Printf.sprintf "o%03d" f)
                   ~write:true)
            in
            let ino = a.Server.Proto.ino in
            let chunk = Bytes.make 8192 (Char.chr (97 + (f mod 26))) in
            let rec put off =
              if off < fsize then begin
                ignore (ok_r (Server.Client.write cl ino ~off chunk));
                put (off + 8192)
              end
            in
            put 0;
            ok_r (Server.Client.commit cl ino);
            ok_r (Server.Client.close_ cl ino);
            pt.pt_bytes <- pt.pt_bytes + fsize
          done;
          (* scan: readdir + read everything back *)
          let des = ok_r (Server.Client.readdir cl dino) in
          List.iter
            (fun (_, ino, kind) ->
              if kind = 0 then begin
                ignore (ok_r (Server.Client.open_ cl ino ~write:false));
                (match Server.Client.read cl ino ~off:0 ~len:fsize with
                | Ok d -> pt.pt_bytes <- pt.pt_bytes + Bytes.length d
                | Error _ -> ());
                ok_r (Server.Client.close_ cl ino)
              end)
            des;
          (* clean the workspace *)
          List.iter
            (fun (n, _, kind) ->
              if kind = 0 then ok_r (Server.Client.unlink cl ~dir:dino ~name:n))
            des;
          pt.pt_ops <- pt.pt_ops + 1;
          Sim.Stats.Histogram.record pt.pt_lat
            (Int64.sub (Kernel.Machine.now machine) t0);
          run_job ()
        end
      in
      run_job ())
