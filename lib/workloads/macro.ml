(** Macrobenchmarks: filebench's varmail and fileserver personalities, and
    the untar-Linux benchmark (§6.6).

    varmail — a mail server: a fileset of small files; each loop deletes a
    mail file, creates + appends + fsyncs a new one, reads + appends +
    fsyncs another, and reads a whole file. Reported unit: completed mail
    transactions (loops) per second.

    fileserver — a file-serving mix: create + write whole file, append,
    read whole file, delete, stat. Reported unit: loops per second.

    untar — unpack a synthetic Linux-source-like tree (directory shape and
    lognormal size distribution modelled on a v4.x kernel tree): mkdir +
    create + write + close per file, single thread, total seconds. *)

let ok = Kernel.Errno.ok_exn

(* ------------------------------------------------------------------ *)
(* varmail                                                              *)

type varmail_config = {
  vm_nfiles : int;
  vm_mean_size : int;
  vm_nthreads : int;
  vm_dirwidth : int;
}

(* nthreads = 1: the paper's varmail throughput (320-785 ops/s across all
   four systems) is only consistent with a single-threaded run of the
   personality; filebench's 16-thread default would put even the slow xv6
   port into the thousands. *)
let varmail_default =
  { vm_nfiles = 1000; vm_mean_size = 16384; vm_nthreads = 1; vm_dirwidth = 100 }

let varmail os ~duration ?(config = varmail_default) ~seed () : Bench_result.t
    =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let c = config in
  let prefix = "/varmail" in
  Micro.ensure_dirs os ~prefix ~ndirs:((c.vm_nfiles / c.vm_dirwidth) + 1);
  let path id =
    Printf.sprintf "%s/d%04d/m%06d" prefix (id / c.vm_dirwidth) id
  in
  let rng = Sim.Rng.create seed in
  (* pre-populate the mail fileset *)
  for id = 0 to c.vm_nfiles - 1 do
    let size =
      max 2048
        (int_of_float (Sim.Rng.exponential rng ~mean:(float_of_int c.vm_mean_size)))
    in
    let fd = ok (Kernel.Os.open_ os (path id) Kernel.Os.(creat wronly)) in
    ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make (min size 65536) 'm')));
    ok (Kernel.Os.close os fd)
  done;
  ok (Kernel.Os.sync os);
  let rngs = Array.init c.vm_nthreads (fun _ -> Sim.Rng.split rng) in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let append_sync id rng =
    let fd = ok (Kernel.Os.open_ os (path id) Kernel.Os.(creat (appendf wronly))) in
    let n =
      max 1024 (int_of_float (Sim.Rng.exponential rng ~mean:(float_of_int (c.vm_mean_size / 2))))
    in
    ignore (ok (Kernel.Os.write os fd (Bytes.make (min n 65536) 'a')));
    ok (Kernel.Os.fsync os fd);
    ok (Kernel.Os.close os fd)
  in
  let read_whole id =
    match Kernel.Os.read_file os (path id) with Ok _ -> () | Error _ -> ()
  in
  let body i =
    let rng = rngs.(i) in
    let victim = Sim.Rng.int rng c.vm_nfiles in
    (* delete + recreate with append&fsync (new mail) *)
    (match Kernel.Os.unlink os (path victim) with Ok () | (exception _) -> () | Error _ -> ());
    append_sync victim rng;
    (* read existing mail, append a reply, fsync *)
    let other = Sim.Rng.int rng c.vm_nfiles in
    read_whole other;
    append_sync other rng;
    (* read a whole mailbox file *)
    read_whole (Sim.Rng.int rng c.vm_nfiles)
  in
  let ops = Micro.run_threads machine ~nthreads:c.vm_nthreads ~deadline body in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  {
    Bench_result.label = "varmail";
    ops;
    bytes = 0;
    elapsed_ns = elapsed;
    lat = Some (Micro.op_lat machine);
  }

(* ------------------------------------------------------------------ *)
(* fileserver                                                           *)

type fileserver_config = {
  fsv_nfiles : int;
  fsv_mean_size : int;
  fsv_append_size : int;
  fsv_nthreads : int;
  fsv_dirwidth : int;
}

let fileserver_default =
  {
    fsv_nfiles = 2000;
    fsv_mean_size = 131072;
    fsv_append_size = 16384;
    fsv_nthreads = 50;
    fsv_dirwidth = 20;
  }

let fileserver os ~duration ?(config = fileserver_default) ~seed () :
    Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let c = config in
  let prefix = "/fileserver" in
  Micro.ensure_dirs os ~prefix ~ndirs:((c.fsv_nfiles / c.fsv_dirwidth) + 1);
  let path id =
    Printf.sprintf "%s/d%04d/f%06d" prefix (id / c.fsv_dirwidth) id
  in
  let rng = Sim.Rng.create seed in
  let exists = Array.make c.fsv_nfiles false in
  (* half-populate so creates and deletes both find work immediately *)
  for id = 0 to (c.fsv_nfiles / 2) - 1 do
    let fd = ok (Kernel.Os.open_ os (path id) Kernel.Os.(creat wronly)) in
    let size =
      max 4096
        (int_of_float (Sim.Rng.exponential rng ~mean:(float_of_int c.fsv_mean_size)))
    in
    ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make (min size 1048576) 'f')));
    ok (Kernel.Os.close os fd);
    exists.(id) <- true
  done;
  ok (Kernel.Os.sync os);
  let rngs = Array.init c.fsv_nthreads (fun _ -> Sim.Rng.split rng) in
  let bytes = ref 0 in
  let t0 = Kernel.Machine.now machine in
  let deadline = Int64.add t0 duration in
  let body i =
    let rng = rngs.(i) in
    let id = Sim.Rng.int rng c.fsv_nfiles in
    (* create + write whole file *)
    (if not exists.(id) then begin
       let size =
         max 4096
           (int_of_float (Sim.Rng.exponential rng ~mean:(float_of_int c.fsv_mean_size)))
       in
       let size = min size 1048576 in
       let fd = ok (Kernel.Os.open_ os (path id) Kernel.Os.(creat wronly)) in
       ignore (ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make size 'F')));
       ok (Kernel.Os.close os fd);
       exists.(id) <- true;
       bytes := !bytes + size
     end);
    (* append *)
    let id2 = Sim.Rng.int rng c.fsv_nfiles in
    (if exists.(id2) then
       match Kernel.Os.open_ os (path id2) Kernel.Os.(appendf wronly) with
       | Ok fd ->
           ignore (ok (Kernel.Os.write os fd (Bytes.make c.fsv_append_size 'A')));
           ok (Kernel.Os.close os fd);
           bytes := !bytes + c.fsv_append_size
       | Error _ -> ());
    (* read whole file *)
    let id3 = Sim.Rng.int rng c.fsv_nfiles in
    (if exists.(id3) then
       match Kernel.Os.read_file os (path id3) with
       | Ok d -> bytes := !bytes + Bytes.length d
       | Error _ -> ());
    (* stat + delete *)
    let id4 = Sim.Rng.int rng c.fsv_nfiles in
    if exists.(id4) then begin
      (match Kernel.Os.stat os (path id4) with Ok _ | Error _ -> ());
      match Kernel.Os.unlink os (path id4) with
      | Ok () -> exists.(id4) <- false
      | Error _ -> ()
    end
  in
  let ops = Micro.run_threads machine ~nthreads:c.fsv_nthreads ~deadline body in
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  {
    Bench_result.label = "fileserver";
    ops;
    bytes = !bytes;
    elapsed_ns = elapsed;
    lat = Some (Micro.op_lat machine);
  }

(* ------------------------------------------------------------------ *)
(* untar                                                                *)

type manifest_entry = { me_path : string; me_size : int }

type manifest = {
  dirs : string list;  (** creation order, parents first *)
  files : manifest_entry list;
  total_bytes : int;
}

(** Synthesise a Linux-kernel-source-like tree: [nfiles] files over
    [ndirs] directories up to 4 levels deep, lognormal sizes (median
    ~5 KB, mean ~15 KB — measured shape of a v4.x tree). *)
let linux_tree_manifest ?(nfiles = 70_000) ?(ndirs = 4_200) ~seed () : manifest =
  let rng = Sim.Rng.create seed in
  let top_names =
    [| "arch"; "drivers"; "fs"; "include"; "kernel"; "net"; "sound"; "tools";
       "mm"; "lib"; "block"; "crypto"; "security"; "scripts"; "firmware" |]
  in
  (* directory tree *)
  let dirs = Array.make ndirs "" in
  let dir_list = ref [] in
  for d = 0 to ndirs - 1 do
    let name =
      if d < Array.length top_names then "/linux/" ^ top_names.(d)
      else begin
        (* attach under a random earlier directory, capping depth *)
        let parent = dirs.(Sim.Rng.int rng d) in
        let depth = List.length (String.split_on_char '/' parent) in
        let parent = if depth > 6 then dirs.(Sim.Rng.int rng (Array.length top_names)) else parent in
        Printf.sprintf "%s/sub%04d" parent d
      end
    in
    dirs.(d) <- name;
    dir_list := name :: !dir_list
  done;
  (* files with lognormal sizes *)
  let exts = [| ".c"; ".h"; ".S"; ".txt"; ".rst"; ".Kconfig"; ".Makefile" |] in
  let files = ref [] in
  let total = ref 0 in
  for f = 0 to nfiles - 1 do
    let dir = dirs.(Sim.Rng.int rng ndirs) in
    let size =
      let s = Sim.Rng.lognormal rng ~mu:8.55 ~sigma:1.2 in
      max 128 (min 524_288 (int_of_float s))
    in
    let ext = exts.(Sim.Rng.int rng (Array.length exts)) in
    files := { me_path = Printf.sprintf "%s/f%06d%s" dir f ext; me_size = size } :: !files;
    total := !total + size
  done;
  { dirs = "/linux" :: List.rev !dir_list; files = List.rev !files; total_bytes = !total }

(** Unpack the manifest (tar xf): single-threaded create + write in 64 KB
    chunks + close, directories first. Returns total virtual seconds. *)
let untar os (m : manifest) : Bench_result.t =
  let machine = Kernel.Vfs.machine (Kernel.Os.vfs os) in
  let t0 = Kernel.Machine.now machine in
  List.iter (fun d -> ok (Kernel.Os.mkdir os d)) m.dirs;
  let chunk = Bytes.make 65536 't' in
  let lat = Micro.op_lat machine in
  List.iter
    (fun { me_path; me_size } ->
      let f0 = Kernel.Machine.now machine in
      let fd = ok (Kernel.Os.open_ os me_path Kernel.Os.(creat wronly)) in
      let rec put off =
        if off < me_size then begin
          let n = min 65536 (me_size - off) in
          ignore (ok (Kernel.Os.pwrite os fd ~pos:off (Bytes.sub chunk 0 n)));
          put (off + n)
        end
      in
      put 0;
      ok (Kernel.Os.close os fd);
      Sim.Stats.Histogram.record lat
        (Int64.sub (Kernel.Machine.now machine) f0))
    m.files;
  (* tar exits; like the paper we then account the time to quiesce *)
  ok (Kernel.Os.sync os);
  let elapsed = Int64.sub (Kernel.Machine.now machine) t0 in
  {
    Bench_result.label = "untar";
    ops = List.length m.files;
    bytes = m.total_bytes;
    elapsed_ns = elapsed;
    lat = Some lat;
  }
