(** Results of a timed workload run on the simulated machine. *)

type t = {
  label : string;
  ops : int;  (** completed operations (benchmark-defined unit) *)
  bytes : int;  (** payload bytes moved, for throughput benchmarks *)
  elapsed_ns : int64;  (** virtual time *)
  lat : Sim.Stats.Histogram.t option;
      (** per-op latency (virtual ns), when the workload records it *)
}

let elapsed_sec r = Int64.to_float r.elapsed_ns /. 1e9

let ops_per_sec r =
  let s = elapsed_sec r in
  if s <= 0. then 0. else float_of_int r.ops /. s

let mbps r =
  let s = elapsed_sec r in
  if s <= 0. then 0. else float_of_int r.bytes /. 1e6 /. s

let lat_percentile r q =
  match r.lat with
  | Some h when Sim.Stats.Histogram.count h > 0 ->
      Some (Sim.Stats.Histogram.percentile h q)
  | _ -> None

let pp ppf r =
  Fmt.pf ppf "%s: %d ops, %.1f ops/s, %.1f MB/s in %.3fs" r.label r.ops
    (ops_per_sec r) (mbps r) (elapsed_sec r);
  match (lat_percentile r 50.0, lat_percentile r 99.0) with
  | Some p50, Some p99 ->
      Fmt.pf ppf " (p50 %.1fus, p99 %.1fus)"
        (Int64.to_float p50 /. 1e3)
        (Int64.to_float p99 /. 1e3)
  | _ -> ()
