(** Result of a timed workload run, in virtual time. *)

type t = {
  label : string;
  ops : int;  (** completed operations (benchmark-defined unit) *)
  bytes : int;  (** payload bytes moved, for throughput benchmarks *)
  elapsed_ns : int64;
  lat : Sim.Stats.Histogram.t option;
      (** per-op latency (virtual ns), when the workload records it *)
}

val elapsed_sec : t -> float
val ops_per_sec : t -> float
val mbps : t -> float

val lat_percentile : t -> float -> int64 option
(** [lat_percentile r q] is the [q]-th percentile of per-op latency in
    virtual ns, or [None] if the workload recorded no latencies. *)

val pp : Format.formatter -> t -> unit
