(** Regression gate over two [bench --json] documents.

    Matches result rows by (section, system, config), computes per-metric
    deltas, and reports whether any gated metric (throughput down, latency
    percentile / crossings-per-op / write-amplification up) moved beyond a
    tolerance. Runs whose metadata differ on anything that shapes the
    numbers (seed, duration, workload scale, cost-model version, block
    size) are refused as [Incomparable]. *)

type direction = Higher_better | Lower_better | Informational

val direction_of : string -> direction
(** Gate direction for a metric name; unknown metrics are
    [Informational] (reported, never gating). *)

type row = {
  section : string;
  system : string;
  config : string;
  metrics : (string * float) list;
}

type doc = {
  meta : (string * Util.Json.t) list;
  rows : row list;
}

type delta = {
  metric : string;
  dir : direction;
  old_v : float;
  new_v : float;
  change_pct : float;  (** signed (new-old)/old in percent; 0 when old=0 *)
  regressed : bool;
}

type row_delta = {
  key : string * string * string;  (** section, system, config *)
  deltas : delta list;
}

type report = {
  compared : row_delta list;
  only_old : (string * string * string) list;
  only_new : (string * string * string) list;
  regressions : int;  (** total regressed gated metrics across all rows *)
}

type error =
  | Bad_input of string  (** malformed JSON or not a bench document *)
  | Incomparable of string  (** metadata differs; numbers not comparable *)

val error_to_string : error -> string

val parse_tolerance : string -> (float, string) result
(** Accepts ["5%"] (percent) or ["0.05"] (fraction). *)

val doc_of_string : string -> (doc, error) result
val doc_of_json : Util.Json.t -> (doc, error) result

val diff : ?tolerance:float -> doc -> doc -> (report, error) result
(** Compare [old] against [new]. [Error Incomparable] when metadata
    differs, [Error Bad_input] when no rows match at all. Default
    tolerance 5%. *)

val render : ?tolerance:float -> report -> string
(** Human-readable report: changed metrics per row (quiet rows elided),
    unmatched rows, and a summary line. *)
