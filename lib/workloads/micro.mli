(** filebench-style microbenchmarks (§6.4/§6.5): read and write with
    sequential/random patterns, several I/O sizes, and 1 or 32 threads;
    createfiles and deletefiles.

    Protocols follow the filebench personalities the paper ran: timed
    loops over a pre-created fileset, counted in virtual time, with
    filebench's fileset-entry serialisation and per-op bookkeeping
    modelled explicitly (EXPERIMENTS.md documents the calibration). *)

type pattern = Seq | Rnd

val pattern_name : pattern -> string

val op_lat : Kernel.Machine.t -> Sim.Stats.Histogram.t
(** The machine's per-op latency histogram (["op_lat"]) that the timed
    loops record into; exposed so macro personalities share it. *)

val run_threads :
  Kernel.Machine.t -> nthreads:int -> deadline:int64 -> (int -> unit) -> int
(** Spawn workers running the body until the virtual deadline; returns the
    total completed iterations. Exposed for the macro personalities. Each
    iteration that finishes before the deadline records its latency in
    {!op_lat}. *)

val ensure_dirs : Kernel.Os.t -> prefix:string -> ndirs:int -> unit
val dir_of_file : dirwidth:int -> int -> int

val read_bench :
  Kernel.Os.t ->
  iosize:int ->
  pattern:pattern ->
  nthreads:int ->
  duration:int64 ->
  file_mb:int ->
  seed:int ->
  Bench_result.t
(** Timed reads from one shared, pre-warmed file (Figures 2 and 3).
    Sequential readers share a file offset; random readers pread at
    uniform aligned offsets. *)

val scaling_read_bench :
  Kernel.Os.t ->
  iosize:int ->
  pattern:pattern ->
  nthreads:int ->
  duration:int64 ->
  file_mb:int ->
  seed:int ->
  Bench_result.t
(** Timed reads where every thread owns a private pre-warmed [file_mb]
    file, fd, rng, and position — no shared fileset entry or lock — so
    aggregate throughput is limited only by the stack's own locks and the
    machine's cores. The many-core scaling probe (bench [scaling]). *)

val seqread_cold_bench :
  Kernel.Os.t -> iosize:int -> file_mb:int -> Bench_result.t
(** Cold-cache sequential read: create the file, sync, [Vfs.drop_caches],
    then stream it once in [iosize] reads. Fixed work — elapsed time is
    the figure of merit; the readahead ablation compares it directly. *)

val write_bench :
  Kernel.Os.t ->
  iosize:int ->
  pattern:pattern ->
  nthreads:int ->
  duration:int64 ->
  file_mb:int ->
  seed:int ->
  Bench_result.t
(** Timed in-place rewrites of a preallocated file (Figure 4); the final
    fsync is inside the measured window so deferred writeback is paid. *)

val create_bench :
  Kernel.Os.t ->
  nthreads:int ->
  duration:int64 ->
  dirwidth:int ->
  mean_size:int ->
  seed:int ->
  Bench_result.t
(** filebench createfiles (Table 4): create, write ~[mean_size], close. *)

val delete_bench :
  Kernel.Os.t ->
  nthreads:int ->
  duration:int64 ->
  dirwidth:int ->
  precreate:int ->
  seed:int ->
  Bench_result.t
(** filebench deletefiles (Table 5) over a pre-created fileset. *)
