(** Crash consistency under the multi-tenant file server.

    The plain checker crashes a stack under a local syscall workload; this
    module crashes it under the *server*: N client sessions attach over the
    wire, create one file each, buffer writes in their write-lease caches
    (nothing reaches the server until flush), then commit at staggered
    times. The SSD command hook snapshots a crash point at every device
    write/flush boundary — i.e. mid-commit of one session while the
    others still hold dirty client caches — together with which sessions'
    [Commit] RPCs had already returned at that instant.

    Replay rebuilds each sampled crash image on a fresh machine, mounts
    (which runs log recovery), runs the offline fsck, and checks the
    per-session oracle:

    - a session whose [Commit] returned before the crash point must find
      its file with exactly the payload it wrote — the commit reply is a
      durability promise made over the wire, and the flush that backs it
      completed before the hook could observe the point;
    - an uncommitted session's file may be missing, or present at any
      size up to the payload length with every page either the payload
      bytes or still zero — never garbage, never a torn page.

    Sound for the same reason the plain checker is: the envelope
    over-approximates what the ordered log can legally produce, so every
    reported violation is a real bug. xv6 (BentoFS) stack only — that is
    the stack the server runs on. *)

let default_disk_blocks = 32768

type point = {
  pid : int;  (** 1-based capture index *)
  epoch : int;  (** device stable epoch at capture *)
  stable : (int * Bytes.t) array;  (** durable image, sparse; shared *)
  volatile : (int * Bytes.t) list;  (** in-cache blocks at stake *)
  p_committed : bool array;  (** per session: Commit RPC returned *)
}

type violation = {
  sv_point : int;
  sv_torn : float option;
  sv_session : int;  (** -1: not about one session (mount/fsck) *)
  sv_detail : string;
}

type report = {
  s_sessions : int;
  s_points_captured : int;
  s_points_tested : int;
  s_torn_tested : int;
  s_points_mixed : int;
      (** tested points where some sessions had committed and others not —
          the interesting mid-commit interleavings *)
  s_committed_at_end : int;
  s_violations : violation list;
}

let report_ok r = r.s_violations = []

let session_path i = Printf.sprintf "/crash%02d" i
let session_len i = 8192 + 1500 + (700 * i)
let session_payload ~seed i =
  Workload.payload ~seed ~opidx:(1000 + i) ~len:(session_len i)

let tenants =
  [
    ("gold", { Server.Qos.weight = 4; max_inflight = 16 });
    ("bronze", { Server.Qos.weight = 1; max_inflight = 8 });
  ]

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

let capture_run ~disk_blocks ~sessions ~seed : point list * bool array =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let dev = Kernel.Machine.disk machine in
  let committed = Array.make sessions false in
  let points = ref [] in
  let npoints = ref 0 in
  let cached_epoch = ref (-1) in
  let cached_stable = ref [||] in
  let capture cmd =
    match cmd with
    | Device.Ssd.Cmd_read -> ()
    | Device.Ssd.Cmd_write | Device.Ssd.Cmd_flush ->
        let epoch = Device.Ssd.stable_epoch dev in
        if !cached_epoch <> epoch then begin
          let acc = ref [] in
          Array.iteri
            (fun i o -> match o with Some b -> acc := (i, b) :: !acc | None -> ())
            (Device.Ssd.crash_view dev);
          cached_stable := Array.of_list (List.rev !acc);
          cached_epoch := epoch
        end;
        incr npoints;
        points :=
          {
            pid = !npoints;
            epoch;
            stable = !cached_stable;
            volatile = Device.Ssd.volatile_view dev;
            p_committed = Array.copy committed;
          }
          :: !points
  in
  Kernel.Machine.spawn ~name:"server-crash" machine (fun () ->
      Stack.mkfs Stack.Xv6 machine;
      (* a crash before any commit must still find a mountable image *)
      Device.Ssd.flush dev;
      let m = Stack.mount Stack.Xv6 machine in
      let server =
        Server.Fileserver.start machine m.Stack.os
          { Server.Fileserver.tenants; max_inflight_total = 32 }
      in
      let listener = Server.Fileserver.listener server in
      Device.Ssd.set_command_hook dev (Some capture);
      let done_ = Sim.Sync.Semaphore.create 0 in
      for i = 0 to sessions - 1 do
        Kernel.Machine.spawn ~name:(Printf.sprintf "crash-cl-%d" i) machine
          (fun () ->
            let tenant = if i mod 2 = 0 then "gold" else "bronze" in
            (match Server.Client.attach machine listener ~tenant with
            | Error e ->
                failwith ("server_crash attach: " ^ Kernel.Errno.to_string e)
            | Ok cl ->
                let root = (Server.Client.root cl).Server.Proto.ino in
                (* stagger the sessions so commits interleave with other
                   sessions' still-dirty caches *)
                Sim.Engine.sleep (Int64.of_int (20_000 * i));
                let name = Printf.sprintf "crash%02d" i in
                (match Server.Client.create cl ~dir:root ~name ~write:true with
                | Error e ->
                    failwith
                      ("server_crash create: " ^ Kernel.Errno.to_string e)
                | Ok a ->
                    let ino = a.Server.Proto.ino in
                    let payload = session_payload ~seed i in
                    let len = Bytes.length payload in
                    (* buffer locally under the write lease, 2 KB at a
                       time: the client cache stays dirty until commit *)
                    let off = ref 0 in
                    while !off < len do
                      let n = min 2048 (len - !off) in
                      (match
                         Server.Client.write cl ino ~off:!off
                           (Bytes.sub payload !off n)
                       with
                      | Ok _ -> ()
                      | Error e ->
                          failwith
                            ("server_crash write: " ^ Kernel.Errno.to_string e));
                      off := !off + n;
                      Sim.Engine.sleep 10_000L
                    done;
                    Sim.Engine.sleep 30_000L;
                    (match Server.Client.commit cl ino with
                    | Ok () -> committed.(i) <- true
                    | Error e ->
                        failwith
                          ("server_crash commit: " ^ Kernel.Errno.to_string e));
                    ignore (Server.Client.close_ cl ino));
                Server.Client.detach cl);
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 1 to sessions do
        Sim.Sync.Semaphore.acquire done_
      done;
      Device.Ssd.set_command_hook dev None;
      Server.Fileserver.stop server;
      m.Stack.unmount ());
  Kernel.Machine.run machine;
  (List.rev !points, committed)

(* ------------------------------------------------------------------ *)
(* Replay and legality                                                 *)
(* ------------------------------------------------------------------ *)

let all_zero b =
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.get b i = '\000' && go (i + 1)) in
  go 0

let page_size = 4096

(** One session's recovered file against its envelope. *)
let check_file ~payload ~committed
    (content : (Bytes.t, Kernel.Errno.t) result) : (unit, string) result =
  let len = Bytes.length payload in
  match (content, committed) with
  | Error Kernel.Errno.ENOENT, false -> Ok () (* create not yet durable *)
  | Error e, false -> Error ("unreadable: " ^ Kernel.Errno.to_string e)
  | Error e, true ->
      Error ("committed but lost: " ^ Kernel.Errno.to_string e)
  | Ok b, true ->
      if Bytes.equal b payload then Ok ()
      else
        Error
          (Printf.sprintf "committed file corrupt: size %d (want %d)%s"
             (Bytes.length b) len
             (if Bytes.length b = len then ", bytes differ" else ""))
  | Ok b, false ->
      let s = Bytes.length b in
      if s > len then
        Error (Printf.sprintf "size %d beyond anything written (%d)" s len)
      else begin
        let npages = (s + page_size - 1) / page_size in
        let bad = ref None in
        for p = 0 to npages - 1 do
          if !bad = None then begin
            let off = p * page_size in
            let plen = min page_size (s - off) in
            let rslice = Bytes.sub b off plen in
            let want = Bytes.sub payload off plen in
            if not (Bytes.equal rslice want || all_zero rslice) then
              bad :=
                Some
                  (Printf.sprintf
                     "page %d is neither the written bytes nor zero" p)
          end
        done;
        match !bad with None -> Ok () | Some m -> Error m
      end

let replay_point ~disk_blocks ~inject_bug ~sessions ~seed (pt : point)
    ~(tear : (float * Sim.Rng.t) option) : violation list =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let dev = Kernel.Machine.disk machine in
  Array.iter (fun (blk, b) -> Device.Ssd.Offline.write dev blk b) pt.stable;
  (match tear with
  | None -> ()
  | Some (p, rng) ->
      List.iter
        (fun (blk, b) ->
          if Sim.Rng.float rng < p then Device.Ssd.Offline.write dev blk b)
        pt.volatile);
  if inject_bug then Stack.nuke_log Stack.Xv6 machine;
  let contents =
    Array.make sessions (Error Kernel.Errno.EIO : (Bytes.t, _) result)
  in
  let failed = ref None in
  Kernel.Machine.spawn ~name:"server-crash-replay" machine (fun () ->
      match Stack.mount Stack.Xv6 machine with
      | m ->
          for i = 0 to sessions - 1 do
            contents.(i) <- Kernel.Os.read_file m.Stack.os (session_path i)
          done;
          m.Stack.unmount ()
      | exception Kernel.Errno.Error e ->
          failed := Some ("mount: " ^ Kernel.Errno.to_string e));
  (try Kernel.Machine.run machine
   with e -> failed := Some ("simulation: " ^ Printexc.to_string e));
  let torn = match tear with Some (p, _) -> Some p | None -> None in
  let fail ~session detail =
    { sv_point = pt.pid; sv_torn = torn; sv_session = session; sv_detail = detail }
  in
  match !failed with
  | Some m -> [ fail ~session:(-1) ("recovery failed: " ^ m) ]
  | None -> (
      match Stack.fsck_errors Stack.Xv6 machine with
      | _ :: _ as errs ->
          [
            fail ~session:(-1)
              (Printf.sprintf "fsck: %s"
                 (String.concat "; " (List.filteri (fun i _ -> i < 3) errs)));
          ]
      | [] ->
          let vs = ref [] in
          for i = sessions - 1 downto 0 do
            match
              check_file
                ~payload:(session_payload ~seed i)
                ~committed:pt.p_committed.(i) contents.(i)
            with
            | Ok () -> ()
            | Error d ->
                vs := fail ~session:i (session_path i ^ ": " ^ d) :: !vs
          done;
          !vs)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Last capture of each distinct stable epoch: the deterministic crash
   states, deduplicated. *)
let distinct_epochs points =
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest -> (
        match rest with
        | q :: _ when q.epoch = p.epoch -> go acc rest
        | _ -> go (p :: acc) rest)
  in
  go [] points

let sample_list rng k l =
  if List.length l <= k then l
  else begin
    let arr = Array.of_list l in
    Sim.Rng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 k)
    |> List.sort (fun a b -> compare a.pid b.pid)
  end

let mixed p =
  Array.exists (fun c -> c) p.p_committed
  && Array.exists (fun c -> not c) p.p_committed

let run ?(disk_blocks = default_disk_blocks) ?(max_points = 24)
    ?(inject_bug = false) ~sessions ~seed () : report =
  let points, committed = capture_run ~disk_blocks ~sessions ~seed in
  let rng = Sim.Rng.create (seed + 0x7e57) in
  let clean = sample_list rng max_points (distinct_epochs points) in
  let torn =
    sample_list rng (max 1 (max_points / 3)) points
    |> List.map (fun p ->
           let survive = [| 0.3; 0.6; 0.9 |].(Sim.Rng.int rng 3) in
           (p, survive, Sim.Rng.split rng))
  in
  let violations = ref [] in
  List.iter
    (fun p ->
      violations :=
        !violations
        @ replay_point ~disk_blocks ~inject_bug ~sessions ~seed p ~tear:None)
    clean;
  List.iter
    (fun (p, survive, r) ->
      violations :=
        !violations
        @ replay_point ~disk_blocks ~inject_bug ~sessions ~seed p
            ~tear:(Some (survive, r)))
    torn;
  {
    s_sessions = sessions;
    s_points_captured = List.length points;
    s_points_tested = List.length clean;
    s_torn_tested = List.length torn;
    s_points_mixed =
      List.length (List.filter mixed clean)
      + List.length (List.filter (fun (p, _, _) -> mixed p) torn);
    s_committed_at_end = Array.fold_left (fun a c -> if c then a + 1 else a) 0 committed;
    s_violations = !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "server-crash: %d sessions, %d points captured, %d clean + %d torn \
     replayed (%d mid-commit), %d committed, %d violation(s)@."
    r.s_sessions r.s_points_captured r.s_points_tested r.s_torn_tested
    r.s_points_mixed r.s_committed_at_end
    (List.length r.s_violations);
  List.iter
    (fun v ->
      Format.fprintf ppf
        "  VIOLATION crash-point %d%s%s: %s@."
        v.sv_point
        (match v.sv_torn with
        | Some p -> Printf.sprintf " (torn, survive=%.1f)" p
        | None -> "")
        (if v.sv_session >= 0 then Printf.sprintf " session %d" v.sv_session
         else "")
        v.sv_detail)
    r.s_violations
