(** POSIX oracle: a pure in-memory reference model of the file-operations
    API, mirroring the semantics of {!Kernel.Os} (path resolution, symlink
    following, errno choices) exactly.

    The model is persistent: applying an operation returns a new state and
    shares structure with the old one, so the crash checker can keep the
    state after every metadata operation and ask, for a recovered tree,
    "which prefix of the metadata history is this?".

    Durability is modelled by the checker on top (see {!Checker}): all
    three stacks journal the whole file system through a single ordered
    log, so a legal post-crash namespace is some prefix of the metadata
    history no older than the last completed durability barrier, and legal
    post-crash file contents are, per page, the value at some write no
    older than the last fsync covering that file. *)

module SM = Map.Make (String)
module IM = Map.Make (Int)

type op =
  | Create of string
  | Write of { path : string; pos : int; len : int }
  | Read of string
  | Mkdir of string
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Link of string * string  (** [Link (existing, fresh)] *)
  | Symlink of { target : string; link : string }
  | Readlink of string
  | Stat of string
  | Readdir of string
  | Fsync of string
  | Sync

(* Namespace-changing op slots. Failed ops of these kinds still occupy a
   slot in the metadata history (as identity transitions), which keeps the
   op-index accounting trivial. *)
let is_metadata = function
  | Create _ | Mkdir _ | Unlink _ | Rmdir _ | Rename _ | Link _ | Symlink _
    ->
      true
  | Write _ | Read _ | Readlink _ | Stat _ | Readdir _ | Fsync _ | Sync ->
      false

let pp_op ppf op =
  let p = Format.fprintf in
  match op with
  | Create s -> p ppf "create %s" s
  | Write { path; pos; len } -> p ppf "write %s pos=%d len=%d" path pos len
  | Read s -> p ppf "read %s" s
  | Mkdir s -> p ppf "mkdir %s" s
  | Unlink s -> p ppf "unlink %s" s
  | Rmdir s -> p ppf "rmdir %s" s
  | Rename (a, b) -> p ppf "rename %s -> %s" a b
  | Link (a, b) -> p ppf "link %s -> %s" a b
  | Symlink { target; link } -> p ppf "symlink %s -> %s" link target
  | Readlink s -> p ppf "readlink %s" s
  | Stat s -> p ppf "stat %s" s
  | Readdir s -> p ppf "readdir %s" s
  | Fsync s -> p ppf "fsync %s" s
  | Sync -> p ppf "sync"

let op_to_string op = Format.asprintf "%a" pp_op op

type kind = KFile | KDir | KSymlink

let kind_to_string = function
  | KFile -> "file"
  | KDir -> "dir"
  | KSymlink -> "symlink"

(** Observable result of an operation, normalized so all three stacks can
    be compared against it. File contents are digests; readdir is a sorted
    name list; stat omits st_ino (implementation-defined) and sizes of
    non-regular files (dirent-block vs target-length conventions differ
    across stacks). *)
type outcome =
  | Ok_unit
  | Ok_data of string
  | Ok_stat of { kind : kind; size : int option; nlink : int }
  | Ok_names of string list
  | Err of Kernel.Errno.t

let outcome_to_string = function
  | Ok_unit -> "ok"
  | Ok_data d -> Printf.sprintf "ok data=%s" d
  | Ok_stat { kind; size; nlink } ->
      Printf.sprintf "ok stat kind=%s size=%s nlink=%d" (kind_to_string kind)
        (match size with None -> "-" | Some s -> string_of_int s)
        nlink
  | Ok_names l -> Printf.sprintf "ok names=[%s]" (String.concat "," l)
  | Err e -> Printf.sprintf "err %s" (Kernel.Errno.to_string e)

let outcome_equal (a : outcome) (b : outcome) = a = b

(* ------------------------------------------------------------------ *)
(* Namespace state                                                     *)
(* ------------------------------------------------------------------ *)

type node =
  | NDir of int SM.t  (** name -> node id; no "." / ".." entries *)
  | NFile  (** contents live in the trace builder, keyed by node id *)
  | NSymlink of string

type state = {
  nodes : node IM.t;  (** node id -> node; id 0 is the root *)
  next_id : int;
}

let root_id = 0

let empty =
  { nodes = IM.add root_id (NDir SM.empty) IM.empty; next_id = 1 }

let node_of st id = IM.find id st.nodes

(* ------------------------------------------------------------------ *)
(* Path resolution — mirrors Kernel.Os exactly:                        *)
(*   - absolute paths only, "" and "." components dropped;             *)
(*   - symlinks followed up to depth 8, then ELOOP;                    *)
(*   - walking through a non-dir is ENOTDIR;                           *)
(*   - resolve_parent of "/" is EINVAL.                                *)
(* The generator never emits ".." (Os treats it as a literal dirent    *)
(* lookup, which the model does not track).                            *)
(* ------------------------------------------------------------------ *)

let max_symlink_depth = 8

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else
    Some
      (String.split_on_char '/' path
      |> List.filter (fun c -> c <> "" && c <> "."))

let rec resolve_from st ~follow_last ~depth id comps :
    (int, Kernel.Errno.t) result =
  match comps with
  | [] -> Ok id
  | name :: rest -> (
      match node_of st id with
      | NDir entries -> (
          match SM.find_opt name entries with
          | None -> Error Kernel.Errno.ENOENT
          | Some cid -> (
              let is_last = rest = [] in
              match node_of st cid with
              | NSymlink target when (not is_last) || follow_last ->
                  if depth >= max_symlink_depth then
                    Error Kernel.Errno.ELOOP
                  else begin
                    match split_path target with
                    | None -> Error Kernel.Errno.EINVAL
                    | Some tcomps -> (
                        match
                          resolve_from st ~follow_last:true
                            ~depth:(depth + 1) root_id tcomps
                        with
                        | Error _ as e -> e
                        | Ok tid -> resolve_from st ~follow_last ~depth tid rest
                        )
                  end
              | _ -> resolve_from st ~follow_last ~depth cid rest))
      | _ -> Error Kernel.Errno.ENOTDIR)

let resolve ?(follow_last = true) st path =
  match split_path path with
  | None -> Error Kernel.Errno.EINVAL
  | Some comps -> resolve_from st ~follow_last ~depth:0 root_id comps

(** [resolve_parent st path] = (parent dir id, basename). Intermediate
    symlinks are followed; the final component is not resolved. *)
let resolve_parent st path : (int * string, Kernel.Errno.t) result =
  match split_path path with
  | None | Some [] -> Error Kernel.Errno.EINVAL
  | Some comps -> (
      let rev = List.rev comps in
      let base = List.hd rev and parents = List.rev (List.tl rev) in
      match resolve_from st ~follow_last:true ~depth:0 root_id parents with
      | Error _ as e -> e
      | Ok id -> (
          match node_of st id with
          | NDir _ -> Ok (id, base)
          | _ -> Error Kernel.Errno.ENOTDIR))

(* ------------------------------------------------------------------ *)
(* Derived queries                                                     *)
(* ------------------------------------------------------------------ *)

(* st_nlink, computed the POSIX way: a file counts its directory entries;
   a directory counts 2 ("." and parent entry — or both self-links for
   the root) plus one ".." per subdirectory; a symlink is 1. *)
let nlink st id =
  match node_of st id with
  | NSymlink _ -> 1
  | NFile ->
      IM.fold
        (fun _ n acc ->
          match n with
          | NDir entries ->
              SM.fold (fun _ cid a -> if cid = id then a + 1 else a) entries acc
          | _ -> acc)
        st.nodes 0
  | NDir entries ->
      2
      + SM.fold
          (fun _ cid a ->
            match node_of st cid with NDir _ -> a + 1 | _ -> a)
          entries 0

let kind_of_node = function
  | NDir _ -> KDir
  | NFile -> KFile
  | NSymlink _ -> KSymlink

(** Depth-first listing of every path in the namespace (root excluded),
    sorted, with node ids. *)
let rows st : (string * int * node) list =
  let out = ref [] in
  let rec go prefix entries =
    SM.iter
      (fun name id ->
        let path = prefix ^ "/" ^ name in
        let n = node_of st id in
        out := (path, id, n) :: !out;
        match n with NDir sub -> go path sub | _ -> ())
      entries
  in
  (match node_of st root_id with NDir e -> go "" e | _ -> assert false);
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !out

(** One path per distinct regular file (hard links collapse onto the
    lexicographically first path). *)
let files st : (string * int) list =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (path, id, n) ->
      match n with
      | NFile when not (Hashtbl.mem seen id) ->
          Hashtbl.add seen id ();
          Some (path, id)
      | _ -> None)
    (rows st)

(** Canonical digest of the namespace shape: paths, kinds, symlink
    targets, and hard-link grouping — but not file sizes or contents
    (checked separately, since data durability is per-file). *)
let canon st =
  let group = Hashtbl.create 16 in
  let next_group = ref 0 in
  let lines =
    List.map
      (fun (path, id, n) ->
        match n with
        | NDir _ -> Printf.sprintf "d %s" path
        | NSymlink target -> Printf.sprintf "s %s -> %s" path target
        | NFile ->
            let g =
              match Hashtbl.find_opt group id with
              | Some g -> g
              | None ->
                  let g = !next_group in
                  incr next_group;
                  Hashtbl.add group id g;
                  g
            in
            Printf.sprintf "f %s g%d" path g)
      (rows st)
  in
  String.concat "\n" lines

(** Is [id] a strict descendant of (or equal to) directory [anc]? Used by
    the generator to refuse directory renames into their own subtree —
    POSIX EINVAL territory that xv6fs only polices one level deep. *)
let in_subtree st ~anc id =
  if anc = id then true
  else
    let rec search d =
      match node_of st d with
      | NDir entries ->
          SM.exists (fun _ cid -> cid = id || search cid) entries
      | _ -> false
    in
    search anc

(* ------------------------------------------------------------------ *)
(* Transition function                                                 *)
(* ------------------------------------------------------------------ *)

(** What [apply] tells its caller beyond the new state; the trace builder
    turns these into expected {!outcome}s plus its own content/durability
    bookkeeping (it owns the file contents, keyed by node id). *)
type result_ =
  | R_unit
  | R_err of Kernel.Errno.t
  | R_created of int  (** new empty file, node id *)
  | R_wrote of int  (** write applied to file id *)
  | R_read of int  (** read of file id *)
  | R_stat of { kind : kind; file : int option; nlink : int }
  | R_readlink of string
  | R_names of string list
  | R_fsync of int  (** fsync completed on file id *)
  | R_sync

let add_node st node =
  let id = st.next_id in
  ({ nodes = IM.add id node st.nodes; next_id = id + 1 }, id)

let update_dir st id entries =
  { st with nodes = IM.add id (NDir entries) st.nodes }

let err e = R_err e

let apply st op : state * result_ =
  let module E = Kernel.Errno in
  match op with
  | Create path -> (
      match resolve st path with
      | Ok id -> (
          (* open O_CREAT on an existing object *)
          match node_of st id with
          | NDir _ -> (st, err E.EISDIR)
          | _ -> (st, R_unit))
      | Error E.ENOENT -> (
          match resolve_parent st path with
          | Error e -> (st, err e)
          | Ok (pid, base) -> (
              match node_of st pid with
              | NDir entries ->
                  if SM.mem base entries then
                    (* dangling final symlink: Os's O_CREAT retry path
                       resolves it again and reports ENOENT *)
                    (st, err E.ENOENT)
                  else
                    let st, id = add_node st NFile in
                    (update_dir st pid (SM.add base id entries), R_created id)
              | _ -> (st, err E.ENOTDIR)))
      | Error e -> (st, err e))
  | Write { path; _ } -> (
      match resolve st path with
      | Error e -> (st, err e)
      | Ok id -> (
          match node_of st id with
          | NDir _ -> (st, err E.EISDIR)
          | NFile -> (st, R_wrote id)
          | NSymlink _ -> assert false))
  | Read path -> (
      match resolve st path with
      | Error e -> (st, err e)
      | Ok id -> (
          match node_of st id with
          | NDir _ -> (st, err E.EISDIR)
          | NFile -> (st, R_read id)
          | NSymlink _ -> assert false))
  | Mkdir path -> (
      match resolve_parent st path with
      | Error e -> (st, err e)
      | Ok (pid, base) -> (
          match node_of st pid with
          | NDir entries ->
              if SM.mem base entries then (st, err E.EEXIST)
              else
                let st, id = add_node st (NDir SM.empty) in
                (update_dir st pid (SM.add base id entries), R_unit)
          | _ -> (st, err E.ENOTDIR)))
  | Unlink path -> (
      match resolve_parent st path with
      | Error e -> (st, err e)
      | Ok (pid, base) -> (
          match node_of st pid with
          | NDir entries -> (
              match SM.find_opt base entries with
              | None -> (st, err E.ENOENT)
              | Some id -> (
                  match node_of st id with
                  | NDir _ -> (st, err E.EISDIR)
                  | _ -> (update_dir st pid (SM.remove base entries), R_unit)))
          | _ -> (st, err E.ENOTDIR)))
  | Rmdir path -> (
      match resolve_parent st path with
      | Error e -> (st, err e)
      | Ok (pid, base) -> (
          match node_of st pid with
          | NDir entries -> (
              match SM.find_opt base entries with
              | None -> (st, err E.ENOENT)
              | Some id -> (
                  match node_of st id with
                  | NDir sub ->
                      if not (SM.is_empty sub) then (st, err E.ENOTEMPTY)
                      else
                        (update_dir st pid (SM.remove base entries), R_unit)
                  | _ -> (st, err E.ENOTDIR)))
          | _ -> (st, err E.ENOTDIR)))
  | Rename (oldp, newp) -> (
      match resolve_parent st oldp with
      | Error e -> (st, err e)
      | Ok (opid, oname) -> (
          match resolve_parent st newp with
          | Error e -> (st, err e)
          | Ok (npid, nname) -> (
              let oentries =
                match node_of st opid with
                | NDir e -> e
                | _ -> assert false
              in
              match SM.find_opt oname oentries with
              | None -> (st, err E.ENOENT)
              | Some src -> (
                  if src = npid then (st, err E.EINVAL)
                  else
                    let nentries =
                      match node_of st npid with
                      | NDir e -> e
                      | _ -> assert false
                    in
                    match SM.find_opt nname nentries with
                    | Some dst when dst = src ->
                        (* POSIX: same object, do nothing *)
                        (st, R_unit)
                    | Some dst -> (
                        let src_dir =
                          match node_of st src with
                          | NDir _ -> true
                          | _ -> false
                        in
                        match node_of st dst with
                        | NDir sub ->
                            if not src_dir then (st, err E.EISDIR)
                            else if not (SM.is_empty sub) then
                              (st, err E.ENOTEMPTY)
                            else
                              let st =
                                update_dir st opid (SM.remove oname oentries)
                              in
                              let nentries =
                                match node_of st npid with
                                | NDir e -> e
                                | _ -> assert false
                              in
                              ( update_dir st npid
                                  (SM.add nname src nentries),
                                R_unit )
                        | _ ->
                            if src_dir then (st, err E.ENOTDIR)
                            else
                              let st =
                                update_dir st opid (SM.remove oname oentries)
                              in
                              let nentries =
                                match node_of st npid with
                                | NDir e -> e
                                | _ -> assert false
                              in
                              ( update_dir st npid
                                  (SM.add nname src nentries),
                                R_unit ))
                    | None ->
                        let st =
                          update_dir st opid (SM.remove oname oentries)
                        in
                        let nentries =
                          match node_of st npid with
                          | NDir e -> e
                          | _ -> assert false
                        in
                        (update_dir st npid (SM.add nname src nentries), R_unit)
                  ))))
  | Link (oldp, newp) -> (
      match resolve st oldp with
      | Error e -> (st, err e)
      | Ok id -> (
          match node_of st id with
          | NDir _ -> (st, err E.EPERM)
          | _ -> (
              match resolve_parent st newp with
              | Error e -> (st, err e)
              | Ok (pid, base) -> (
                  match node_of st pid with
                  | NDir entries ->
                      if SM.mem base entries then (st, err E.EEXIST)
                      else (update_dir st pid (SM.add base id entries), R_unit)
                  | _ -> (st, err E.ENOTDIR)))))
  | Symlink { target; link } -> (
      match resolve_parent st link with
      | Error e -> (st, err e)
      | Ok (pid, base) -> (
          match node_of st pid with
          | NDir entries ->
              if SM.mem base entries then (st, err E.EEXIST)
              else
                let st, id = add_node st (NSymlink target) in
                (update_dir st pid (SM.add base id entries), R_unit)
          | _ -> (st, err E.ENOTDIR)))
  | Readlink path -> (
      match resolve ~follow_last:false st path with
      | Error e -> (st, err e)
      | Ok id -> (
          match node_of st id with
          | NSymlink target -> (st, R_readlink target)
          | _ -> (st, err E.EINVAL)))
  | Stat path -> (
      match resolve st path with
      | Error e -> (st, err e)
      | Ok id ->
          let n = node_of st id in
          ( st,
            R_stat
              {
                kind = kind_of_node n;
                file = (match n with NFile -> Some id | _ -> None);
                nlink = nlink st id;
              } ))
  | Readdir path -> (
      match resolve st path with
      | Error e -> (st, err e)
      | Ok id -> (
          match node_of st id with
          | NDir entries ->
              let names =
                "." :: ".." :: List.map fst (SM.bindings entries)
                |> List.sort compare
              in
              (st, R_names names)
          | _ -> (st, err E.ENOTDIR)))
  | Fsync path -> (
      match resolve st path with
      | Error e -> (st, err e)
      | Ok id -> (
          match node_of st id with
          | NFile -> (st, R_fsync id)
          | NDir _ -> (st, R_unit)
          | NSymlink _ -> assert false))
  | Sync -> (st, R_sync)
