(** The three file-system stacks from the paper behind one face, so the
    differential driver and the crash-point enumerator can treat "mount,
    run ops, unmount, fsck" uniformly:

    - [Xv6]: Bento xv6fs inserted into the simulated kernel (BentoFS);
    - [Fuse]: the same xv6fs code running as a userspace daemon behind
      the FUSE transport — same on-disk format, different runtime;
    - [Ext4]: the native ext4 comparator in data=journal mode.

    All mounts are [~background:false] so a bounded run drains cleanly. *)

type kind = Xv6 | Fuse | Ext4

let name = function Xv6 -> "xv6" | Fuse -> "fuse" | Ext4 -> "ext4"

let of_string = function
  | "xv6" -> Some Xv6
  | "fuse" -> Some Fuse
  | "ext4" -> Some Ext4
  | _ -> None

let all = [ Xv6; Fuse; Ext4 ]

let xv6_maker : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

type mounted = { os : Kernel.Os.t; unmount : unit -> unit }

let mkfs kind machine =
  Kernel.Errno.ok_exn
    (match kind with
    | Xv6 | Fuse -> Bento.Bentofs.mkfs machine xv6_maker
    | Ext4 -> Ext4sim.Ext4.mkfs machine)

(** Mount; for xv6-format stacks this replays the log, for ext4 it runs
    [Jbd2.recover] — exactly the recovery path the crash checker tests. *)
let mount kind machine =
  match kind with
  | Xv6 ->
      let vfs, h =
        Kernel.Errno.ok_exn
          (Bento.Bentofs.mount ~background:false machine xv6_maker)
      in
      { os = Kernel.Os.create vfs; unmount = (fun () -> Bento.Bentofs.unmount vfs h) }
  | Fuse ->
      let vfs, h =
        Kernel.Errno.ok_exn
          (Bento_user.mount ~background:false machine xv6_maker)
      in
      { os = Kernel.Os.create vfs; unmount = (fun () -> Bento_user.unmount vfs h) }
  | Ext4 ->
      let vfs, h =
        Kernel.Errno.ok_exn (Ext4sim.Ext4.mount ~background:false machine)
      in
      { os = Kernel.Os.create vfs; unmount = (fun () -> Ext4sim.Ext4.unmount vfs h) }

(** Offline consistency check of the device's current contents. *)
let fsck_errors kind machine =
  let dev = Kernel.Machine.disk machine in
  match kind with
  | Xv6 | Fuse ->
      let r = Xv6fs.Fsck.check_device dev in
      r.Xv6fs.Fsck.errors
  | Ext4 ->
      let r = Ext4sim.Fsck4.check_device dev in
      r.Ext4sim.Fsck4.errors

(** Deliberate bug injection for checker self-tests: zero the block that
    recovery reads first (the xv6 log header / the JBD2 journal
    superblock), which silently turns replay into a no-op — the class of
    bug the checker exists to catch. *)
let nuke_log kind machine =
  let dev = Kernel.Machine.disk machine in
  let zero = Bytes.make (Device.Ssd.block_size dev) '\000' in
  let blk =
    match kind with
    | Xv6 | Fuse -> (
        match Xv6fs.Layout.get_superblock (Device.Ssd.Offline.read dev 1) with
        | Ok sb -> sb.Xv6fs.Layout.logstart
        | Error m -> failwith ("nuke_log: bad xv6 superblock: " ^ m))
    | Ext4 -> (
        match Ext4sim.Layout4.get_superblock (Device.Ssd.Offline.read dev 1) with
        | Ok sb -> sb.Ext4sim.Layout4.journal_start
        | Error m -> failwith ("nuke_log: bad ext4 superblock: " ^ m))
  in
  Device.Ssd.Offline.write dev blk zero
