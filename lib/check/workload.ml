(** Seeded property-based workload generation, plus the trace bookkeeping
    the crash checker needs: the oracle state after every metadata
    operation, every version a file's contents ever took, and the
    durability barriers (fsync/sync) that pin them down.

    Everything is derived deterministically from the seed, so a failing
    run reproduces with one command. *)

let digest b =
  Printf.sprintf "%d:%s" (Bytes.length b) (Digest.to_hex (Digest.bytes b))

(** Deterministic payload for the write at op index [opidx]: both the
    trace builder (expected contents) and the executors (actual writes)
    call this, so contents can be compared without shipping bytes around. *)
let payload ~seed ~opidx ~len =
  let r = Sim.Rng.create ((seed * 1_000_003) + (opidx * 7919) + len) in
  Bytes.init len (fun _ -> Char.chr (97 + Sim.Rng.int r 26))

type trace = {
  seed : int;
  ops : Model.op array;
  expected : Model.outcome array;  (** oracle outcome per op *)
  md_before : int array;
      (** [md_before.(i)] = metadata slots among ops[0..i-1]; length n+1 *)
  md_states : Model.state array;
      (** [md_states.(j)] = namespace after the first [j] metadata slots *)
  versions : (int, (int * Bytes.t) list) Hashtbl.t;
      (** file id -> (op index, full contents after that op), newest first *)
  fsyncs : (int, int list) Hashtbl.t;
      (** file id -> op indices of successful fsyncs, newest first *)
  syncs : int list;  (** op indices of successful syncs, newest first *)
  final : Model.state;
}

let n_ops t = Array.length t.ops

(* ------------------------------------------------------------------ *)
(* Trace builder: replay an op list through the oracle                 *)
(* ------------------------------------------------------------------ *)

let build ~seed (ops_list : Model.op list) : trace =
  let n = List.length ops_list in
  let ops = Array.of_list ops_list in
  let expected = Array.make n Model.Ok_unit in
  let md_before = Array.make (n + 1) 0 in
  let md_states = ref [ Model.empty ] in
  let versions = Hashtbl.create 64 in
  let fsyncs = Hashtbl.create 64 in
  let syncs = ref [] in
  let contents = Hashtbl.create 64 in
  let content_of id =
    match Hashtbl.find_opt contents id with
    | Some b -> b
    | None -> Bytes.empty
  in
  let st = ref Model.empty in
  Array.iteri
    (fun i op ->
      let st', res = Model.apply !st op in
      st := st';
      md_before.(i + 1) <- md_before.(i) + if Model.is_metadata op then 1 else 0;
      if Model.is_metadata op then md_states := st' :: !md_states;
      let record_version id b =
        Hashtbl.replace contents id b;
        let prev =
          match Hashtbl.find_opt versions id with Some l -> l | None -> []
        in
        Hashtbl.replace versions id ((i, b) :: prev)
      in
      expected.(i) <-
        (match res with
        | Model.R_unit -> Model.Ok_unit
        | Model.R_err e -> Model.Err e
        | Model.R_created id ->
            record_version id Bytes.empty;
            Model.Ok_unit
        | Model.R_wrote id ->
            let pos, len =
              match op with
              | Model.Write { pos; len; _ } -> (pos, len)
              | _ -> assert false
            in
            let cur = content_of id in
            let newlen = max (Bytes.length cur) (pos + len) in
            let b = Bytes.make newlen '\000' in
            Bytes.blit cur 0 b 0 (Bytes.length cur);
            Bytes.blit (payload ~seed ~opidx:i ~len) 0 b pos len;
            record_version id b;
            Model.Ok_unit
        | Model.R_read id -> Model.Ok_data (digest (content_of id))
        | Model.R_stat { kind; file; nlink } ->
            Model.Ok_stat
              {
                kind;
                size =
                  (match file with
                  | Some id -> Some (Bytes.length (content_of id))
                  | None -> None);
                nlink;
              }
        | Model.R_readlink target -> Model.Ok_data target
        | Model.R_names l -> Model.Ok_names l
        | Model.R_fsync id ->
            let prev =
              match Hashtbl.find_opt fsyncs id with Some l -> l | None -> []
            in
            Hashtbl.replace fsyncs id (i :: prev);
            Model.Ok_unit
        | Model.R_sync ->
            syncs := i :: !syncs;
            Model.Ok_unit))
    ops;
  {
    seed;
    ops;
    expected;
    md_before;
    md_states = Array.of_list (List.rev !md_states);
    versions;
    fsyncs;
    syncs = !syncs;
    final = !st;
  }

let of_ops ~seed ops_list = build ~seed ops_list

(* ------------------------------------------------------------------ *)
(* Random generation                                                   *)
(* ------------------------------------------------------------------ *)

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let depth path =
  String.fold_left (fun a c -> if c = '/' then a + 1 else a) 0 path

(** Generate [ops] operations from [seed]. The generator drives its
    choices off the live oracle state so most operations succeed, with a
    controlled rate of deliberate error cases (ENOENT lookups,
    ENOTEMPTY rmdirs, dangling symlinks). It avoids the few spots where
    the implementations legitimately disagree with POSIX or each other:
    ".." components, names over xv6's 59-byte limit, directory renames
    into their own subtree, and rename between two links of one inode. *)
let generate ~seed ~ops () : trace =
  let rng = Sim.Rng.create seed in
  let st = ref Model.empty in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let gsizes = Hashtbl.create 64 in
  let acc = ref [] in
  let pick l = List.nth l (Sim.Rng.int rng (List.length l)) in
  for _ = 1 to ops do
    let rows = Model.rows !st in
    let files =
      List.filter_map
        (fun (p, id, n) ->
          match n with Model.NFile -> Some (p, id) | _ -> None)
        rows
    in
    let dirs =
      ("/", Model.root_id, Model.SM.empty)
      :: List.filter_map
           (fun (p, id, n) ->
             match n with Model.NDir e -> Some (p, id, e) | _ -> None)
           rows
    in
    let symlinks =
      List.filter_map
        (fun (p, _, n) ->
          match n with Model.NSymlink _ -> Some p | _ -> None)
        rows
    in
    let shallow_dirs =
      List.filter (fun (p, _, _) -> depth p < 4) dirs
    in
    let rand_dir () =
      let pool = if shallow_dirs = [] then dirs else shallow_dirs in
      pick pool
    in
    let gen_len () =
      let roll = Sim.Rng.int rng 100 in
      if roll < 50 then 1 + Sim.Rng.int rng 512
      else if roll < 80 then 1 + Sim.Rng.int rng 4096
      else 1 + Sim.Rng.int rng 16384
    in
    let mk_create () =
      let d, _, _ = rand_dir () in
      Model.Create (join d (fresh "f"))
    in
    let op =
      let roll = Sim.Rng.int rng 100 in
      if roll < 12 then mk_create ()
      else if roll < 32 then (
        (* write: append 60%, rewrite 40%; cap file size at 128 KiB *)
        match files with
        | [] -> mk_create ()
        | fs ->
            let p, id = pick fs in
            let size =
              match Hashtbl.find_opt gsizes id with Some s -> s | None -> 0
            in
            let len = gen_len () in
            let pos =
              if size + len > 131072 || (size > 0 && Sim.Rng.int rng 100 < 40)
              then Sim.Rng.int rng (max 1 size)
              else size
            in
            Model.Write { path = p; pos; len })
      else if roll < 39 then (
        match files with
        | [] -> mk_create ()
        | fs -> Model.Read (fst (pick fs)))
      else if roll < 45 then
        let d, _, _ = rand_dir () in
        Model.Mkdir (join d (fresh "d"))
      else if roll < 52 then (
        match files @ List.map (fun p -> (p, -1)) symlinks with
        | [] -> mk_create ()
        | pool -> Model.Unlink (fst (pick pool)))
      else if roll < 55 then (
        match List.filter (fun (p, _, _) -> p <> "/") dirs with
        | [] ->
            let d, _, _ = rand_dir () in
            Model.Mkdir (join d (fresh "d"))
        | pool ->
            let p, _, _ = pick pool in
            Model.Rmdir p)
      else if roll < 63 then (
        (* rename *)
        let movable = List.filter (fun (p, _, _) -> p <> "/") rows in
        match movable with
        | [] -> mk_create ()
        | pool -> (
            let sp, sid, sn = pick pool in
            let src_is_dir =
              match sn with Model.NDir _ -> true | _ -> false
            in
            let dst_dir_ok (_, did, _) =
              (not src_is_dir) || not (Model.in_subtree !st ~anc:sid did)
            in
            let fresh_dst () =
              match List.filter dst_dir_ok dirs with
              | [] -> None
              | ok ->
                  let d, _, _ = pick ok in
                  Some (join d (fresh "r"))
            in
            let existing_dst () =
              if src_is_dir then
                List.filter_map
                  (fun (p, id, n) ->
                    match n with
                    | Model.NDir e
                      when Model.SM.is_empty e && id <> sid
                           && not (Model.in_subtree !st ~anc:sid id) -> (
                        match Model.resolve_parent !st p with
                        | Ok (pid, _)
                          when not (Model.in_subtree !st ~anc:sid pid) ->
                            Some p
                        | _ -> None)
                    | _ -> None)
                  rows
              else
                List.filter_map
                  (fun (p, id, n) ->
                    match n with
                    | (Model.NFile | Model.NSymlink _) when id <> sid ->
                        Some p
                    | _ -> None)
                  rows
            in
            let dst =
              if Sim.Rng.int rng 100 < 40 then
                match existing_dst () with
                | [] -> fresh_dst ()
                | pool -> Some (pick pool)
              else fresh_dst ()
            in
            match dst with
            | Some d -> Model.Rename (sp, d)
            | None -> mk_create ()))
      else if roll < 67 then (
        match files with
        | [] -> mk_create ()
        | fs ->
            let d, _, _ = rand_dir () in
            Model.Link (fst (pick fs), join d (fresh "l")))
      else if roll < 72 then
        let target =
          if Sim.Rng.int rng 100 < 70 && rows <> [] then
            let p, _, _ = pick rows in
            p
          else "/" ^ fresh "dangling"
        in
        let d, _, _ = rand_dir () in
        Model.Symlink { target; link = join d (fresh "s") }
      else if roll < 75 then (
        match symlinks with
        | [] -> (
            match rows with
            | [] -> mk_create ()
            | _ ->
                let p, _, _ = pick rows in
                Model.Stat p)
        | ss -> Model.Readlink (pick ss))
      else if roll < 81 then (
        match rows with
        | [] -> Model.Stat "/"
        | _ ->
            let p, _, _ = pick rows in
            Model.Stat p)
      else if roll < 84 then
        let d, _, _ = rand_dir () in
        Model.Readdir d
      else if roll < 94 then (
        match files with
        | [] -> Model.Sync
        | fs -> Model.Fsync (fst (pick fs)))
      else if roll < 97 then Model.Sync
      else Model.Stat ("/" ^ fresh "nope")
    in
    (* keep the generator's view of the namespace and sizes current *)
    let st', res = Model.apply !st op in
    st := st';
    (match res with
    | Model.R_created id -> Hashtbl.replace gsizes id 0
    | Model.R_wrote id ->
        let pos, len =
          match op with
          | Model.Write { pos; len; _ } -> (pos, len)
          | _ -> assert false
        in
        let size =
          match Hashtbl.find_opt gsizes id with Some s -> s | None -> 0
        in
        Hashtbl.replace gsizes id (max size (pos + len))
    | _ -> ());
    acc := op :: !acc
  done;
  build ~seed (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Durability queries used by the crash checker                        *)
(* ------------------------------------------------------------------ *)

(** Latest successful durability barrier covering file [id] at or before
    op [completed]: an fsync of [id] or a global sync. *)
let barrier_for t ~id ~completed =
  let best l =
    List.fold_left
      (fun acc i -> if i <= completed then max acc i else acc)
      (-1) l
  in
  let f = match Hashtbl.find_opt t.fsyncs id with Some l -> best l | None -> -1 in
  let s = best t.syncs in
  let m = max f s in
  if m < 0 then None else Some m

(** Versions of file [id] with op index <= [upto], newest first. *)
let versions_upto t ~id ~upto =
  match Hashtbl.find_opt t.versions id with
  | None -> []
  | Some l -> List.filter (fun (i, _) -> i <= upto) l
