(** The crash-consistency and differential-correctness checker.

    Three moving parts:

    - an executor that replays a {!Workload.trace} through a mounted
      stack's syscall layer and normalizes each result to a
      {!Model.outcome};
    - a differential driver that runs the same trace through any subset
      of the three stacks and diffs every op's outcome against the
      oracle's;
    - a crash-point enumerator: during one live run it snapshots the
      device at every write/flush command boundary
      ({!Device.Ssd.set_command_hook}), then for each snapshot builds a
      fresh machine with exactly the blocks a power failure would have
      left (optionally plus a random subset of the volatile cache —
      torn crashes), mounts (which runs log replay / [Jbd2.recover]),
      runs the offline fsck, and checks that the recovered tree is one
      of the oracle's legal post-crash states.

    Legality, as tracked by the oracle: the recovered namespace must be
    a prefix of the metadata history no older than the last completed
    durability barrier (fsync/sync) and no newer than the op in flight
    at the crash; each file's contents must match, per page, some
    version no older than the file's last fsync-covered version; sizes
    must come from recorded versions. This is a sound over-approximation
    of what the single ordered journal in each stack can produce, so a
    reported violation is always a real bug. *)

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let kind_of_vfs = function
  | Kernel.Vfs.Reg -> Model.KFile
  | Kernel.Vfs.Dir -> Model.KDir
  | Kernel.Vfs.Symlink -> Model.KSymlink

(** Run one op through the syscall layer; normalize to an oracle outcome. *)
let exec_op os ~seed ~opidx (op : Model.op) : Model.outcome =
  let module O = Kernel.Os in
  let norm = function Ok () -> Model.Ok_unit | Error e -> Model.Err e in
  match op with
  | Model.Create path -> (
      match O.open_ os path (O.creat O.wronly) with
      | Error e -> Model.Err e
      | Ok fd ->
          ignore (O.close os fd);
          Model.Ok_unit)
  | Model.Write { path; pos; len } -> (
      match O.open_ os path O.wronly with
      | Error e -> Model.Err e
      | Ok fd ->
          let data = Workload.payload ~seed ~opidx ~len in
          let r = O.pwrite os fd ~pos data in
          ignore (O.close os fd);
          (match r with
          | Ok n when n = len -> Model.Ok_unit
          | Ok _ -> Model.Err Kernel.Errno.EIO (* short write *)
          | Error e -> Model.Err e))
  | Model.Read path -> (
      match O.read_file os path with
      | Ok b -> Model.Ok_data (Workload.digest b)
      | Error e -> Model.Err e)
  | Model.Mkdir p -> norm (O.mkdir os p)
  | Model.Unlink p -> norm (O.unlink os p)
  | Model.Rmdir p -> norm (O.rmdir os p)
  | Model.Rename (a, b) -> norm (O.rename os a b)
  | Model.Link (a, b) -> norm (O.link os a b)
  | Model.Symlink { target; link } -> norm (O.symlink os target link)
  | Model.Readlink p -> (
      match O.readlink os p with
      | Ok s -> Model.Ok_data s
      | Error e -> Model.Err e)
  | Model.Stat p -> (
      match O.stat os p with
      | Ok st ->
          Model.Ok_stat
            {
              kind = kind_of_vfs st.Kernel.Vfs.st_kind;
              size =
                (if st.Kernel.Vfs.st_kind = Kernel.Vfs.Reg then
                   Some st.Kernel.Vfs.st_size
                 else None);
              nlink = st.Kernel.Vfs.st_nlink;
            }
      | Error e -> Model.Err e)
  | Model.Readdir p -> (
      match O.readdir os p with
      | Ok l ->
          Model.Ok_names
            (List.map (fun d -> d.Kernel.Vfs.d_name) l |> List.sort compare)
      | Error e -> Model.Err e)
  | Model.Fsync p -> (
      match O.open_ os p O.rdonly with
      | Error e -> Model.Err e
      | Ok fd ->
          let r = O.fsync os fd in
          ignore (O.close os fd);
          norm r)
  | Model.Sync -> norm (O.sync os)

(* ------------------------------------------------------------------ *)
(* Differential driver                                                 *)
(* ------------------------------------------------------------------ *)

type divergence = {
  d_idx : int;
  d_op : string;
  d_expected : string;
  d_got : (string * string) list;  (** (stack, outcome) for every stack *)
}

let default_disk_blocks = 32768 (* 128 MB *)

(** Run the whole trace through one stack on a fresh machine. *)
let run_stack ?(disk_blocks = default_disk_blocks) (trace : Workload.trace)
    kind : Model.outcome array =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let n = Workload.n_ops trace in
  let out = Array.make n Model.Ok_unit in
  Kernel.Machine.spawn ~name:("check-" ^ Stack.name kind) machine (fun () ->
      Stack.mkfs kind machine;
      let m = Stack.mount kind machine in
      Array.iteri
        (fun i op ->
          out.(i) <- exec_op m.Stack.os ~seed:trace.Workload.seed ~opidx:i op)
        trace.Workload.ops;
      m.Stack.unmount ());
  Kernel.Machine.run machine;
  out

(** Diff every stack's per-op outcomes against the oracle's. *)
let differential ?disk_blocks (trace : Workload.trace)
    (stacks : Stack.kind list) : divergence list =
  let results =
    List.map (fun k -> (k, run_stack ?disk_blocks trace k)) stacks
  in
  let divs = ref [] in
  Array.iteri
    (fun i expected ->
      let got = List.map (fun (k, out) -> (k, out.(i))) results in
      if
        List.exists
          (fun (_, o) -> not (Model.outcome_equal o expected))
          got
      then
        divs :=
          {
            d_idx = i;
            d_op = Model.op_to_string trace.Workload.ops.(i);
            d_expected = Model.outcome_to_string expected;
            d_got =
              List.map
                (fun (k, o) -> (Stack.name k, Model.outcome_to_string o))
                got;
          }
          :: !divs)
    trace.Workload.expected;
  List.rev !divs

(* ------------------------------------------------------------------ *)
(* Crash-point capture                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = { started : int; completed : int; barrier : int }

type point = {
  pid : int;  (** 1-based capture index *)
  epoch : int;  (** device stable epoch at capture *)
  stable : (int * Bytes.t) array;  (** durable image, sparse; shared *)
  volatile : (int * Bytes.t) list;  (** in-cache blocks at stake *)
  pctx : ctx;
}

(** Live run of the trace on [kind] with the device hook installed:
    returns every crash point (one per write/flush command boundary). *)
let capture_run ?(disk_blocks = default_disk_blocks) (trace : Workload.trace)
    kind : point list =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let dev = Kernel.Machine.disk machine in
  let points = ref [] in
  let npoints = ref 0 in
  let cached_epoch = ref (-1) in
  let cached_stable = ref [||] in
  let started = ref 0 and completed = ref (-1) and barrier = ref (-1) in
  let capture cmd =
    match cmd with
    | Device.Ssd.Cmd_read -> ()
    | Device.Ssd.Cmd_write | Device.Ssd.Cmd_flush ->
        let epoch = Device.Ssd.stable_epoch dev in
        if !cached_epoch <> epoch then begin
          let acc = ref [] in
          Array.iteri
            (fun i o -> match o with Some b -> acc := (i, b) :: !acc | None -> ())
            (Device.Ssd.crash_view dev);
          cached_stable := Array.of_list (List.rev !acc);
          cached_epoch := epoch
        end;
        incr npoints;
        points :=
          {
            pid = !npoints;
            epoch;
            stable = !cached_stable;
            volatile = Device.Ssd.volatile_view dev;
            pctx =
              { started = !started; completed = !completed; barrier = !barrier };
          }
          :: !points
  in
  Kernel.Machine.spawn ~name:("crash-" ^ Stack.name kind) machine (fun () ->
      Stack.mkfs kind machine;
      (* Make the fresh image durable: a crash before the first barrier
         must still find a mountable file system. *)
      Device.Ssd.flush dev;
      let m = Stack.mount kind machine in
      Device.Ssd.set_command_hook dev (Some capture);
      Array.iteri
        (fun i op ->
          started := i;
          let o = exec_op m.Stack.os ~seed:trace.Workload.seed ~opidx:i op in
          completed := i;
          match (op, o) with
          | (Model.Fsync _ | Model.Sync), Model.Ok_unit -> barrier := i
          | _ -> ())
        trace.Workload.ops;
      (* Crash points inside unmount writeback are still bounded by the
         final op. *)
      m.Stack.unmount ();
      Device.Ssd.set_command_hook dev None);
  Kernel.Machine.run machine;
  List.rev !points

(* ------------------------------------------------------------------ *)
(* Recovered-tree walk and legality                                    *)
(* ------------------------------------------------------------------ *)

type rnode = RDir | RFile of Bytes.t | RSym of string

exception Walk_failed of string

let walk os : (string * int * rnode) list =
  let module O = Kernel.Os in
  let out = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> raise (Walk_failed s)) fmt in
  let get what path = function
    | Ok v -> v
    | Error e -> fail "%s %s: %s" what path (Kernel.Errno.to_string e)
  in
  let rec go path =
    let ents = get "readdir" path (O.readdir os path) in
    List.iter
      (fun d ->
        let name = d.Kernel.Vfs.d_name in
        if name <> "." && name <> ".." then begin
          let p = Workload.join path name in
          let st = get "lstat" p (O.lstat os p) in
          match st.Kernel.Vfs.st_kind with
          | Kernel.Vfs.Dir ->
              out := (p, st.Kernel.Vfs.st_ino, RDir) :: !out;
              go p
          | Kernel.Vfs.Symlink ->
              let t = get "readlink" p (O.readlink os p) in
              out := (p, st.Kernel.Vfs.st_ino, RSym t) :: !out
          | Kernel.Vfs.Reg ->
              let b = get "read" p (O.read_file os p) in
              out := (p, st.Kernel.Vfs.st_ino, RFile b) :: !out
        end)
      ents
  in
  go "/";
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !out

(* Same canonical form as Model.canon: hard-link groups numbered by first
   appearance in sorted path order. *)
let canon_rows rows =
  let group = Hashtbl.create 16 in
  let next = ref 0 in
  let lines =
    List.map
      (fun (p, ino, n) ->
        match n with
        | RDir -> Printf.sprintf "d %s" p
        | RSym t -> Printf.sprintf "s %s -> %s" p t
        | RFile _ ->
            let g =
              match Hashtbl.find_opt group ino with
              | Some g -> g
              | None ->
                  let g = !next in
                  incr next;
                  Hashtbl.add group ino g;
                  g
            in
            Printf.sprintf "f %s g%d" p g)
      rows
  in
  String.concat "\n" lines

let all_zero b =
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.get b i = '\000' && go (i + 1)) in
  go 0

let page_size = 4096

(** Check one file's recovered contents against its legal versions. *)
let data_check_file trace ~started ~completed ~path ~id (r : Bytes.t) :
    (unit, string) result =
  let s = Bytes.length r in
  let versions = Workload.versions_upto trace ~id ~upto:started in
  let floor =
    match Workload.barrier_for trace ~id ~completed with
    | None -> None
    | Some b -> List.find_opt (fun (i, _) -> i <= b) versions
  in
  let allowed =
    match floor with
    | None -> versions
    | Some (fi, _) -> List.filter (fun (i, _) -> i >= fi) versions
  in
  if allowed = [] then
    Error (Printf.sprintf "%s: no recorded version at all" path)
  else if
    (match floor with
    | Some (_, fb) -> s < Bytes.length fb
    | None -> false)
  then
    Error
      (Printf.sprintf "%s: size %d below fsynced size %d" path s
         (match floor with Some (_, fb) -> Bytes.length fb | None -> 0))
  else if not (List.exists (fun (_, b) -> Bytes.length b = s) allowed) then
    Error
      (Printf.sprintf "%s: size %d matches no legal version (allowed: %s)"
         path s
         (String.concat ","
            (List.map (fun (i, b) -> Printf.sprintf "%d@op%d" (Bytes.length b) i)
               allowed)))
  else begin
    let npages = (s + page_size - 1) / page_size in
    let bad = ref None in
    for p = 0 to npages - 1 do
      if !bad = None then begin
        let off = p * page_size in
        let plen = min page_size (s - off) in
        let rslice = Bytes.sub r off plen in
        let matches (_, v) =
          let vs = Bytes.make plen '\000' in
          let avail = min plen (max 0 (Bytes.length v - off)) in
          if avail > 0 then Bytes.blit v off vs 0 avail;
          Bytes.equal vs rslice
        in
        let zero_ok =
          all_zero rslice
          &&
          match floor with
          | None -> true
          | Some (_, fb) -> off >= Bytes.length fb
        in
        if not (List.exists matches allowed || zero_ok) then
          bad :=
            Some
              (Printf.sprintf
                 "%s: page %d (%s) matches no legal version of ops [%s]" path p
                 (Workload.digest rslice)
                 (String.concat ","
                    (List.map (fun (i, _) -> string_of_int i) allowed)))
      end
    done;
    match !bad with None -> Ok () | Some m -> Error m
  end

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go = function
    | x :: xs, y :: ys -> if x = y then go (xs, ys) else Some (x, y)
    | x :: _, [] -> Some (x, "<missing>")
    | [], y :: _ -> Some ("<missing>", y)
    | [], [] -> None
  in
  go (la, lb)

(** Is the recovered tree one of the oracle's legal post-crash states for
    this crash point? *)
let check_recovered (trace : Workload.trace) ~(canons : string array)
    (pctx : ctx) rows : (unit, string) result =
  let lo = trace.Workload.md_before.(pctx.barrier + 1) in
  let hi = trace.Workload.md_before.(pctx.started + 1) in
  let rcanon = canon_rows rows in
  let content = Hashtbl.create 16 in
  List.iter
    (fun (p, _, n) ->
      match n with RFile b -> Hashtbl.replace content p b | _ -> ())
    rows;
  let matched = ref 0 in
  let data_err = ref None in
  let rec try_j j =
    if j < lo then begin
      if !matched = 0 then
        Error
          (Printf.sprintf
             "namespace matches no legal metadata prefix in [%d,%d]%s" lo hi
             (match first_diff_line rcanon canons.(hi) with
             | Some (got, want) ->
                 Printf.sprintf " (vs prefix %d: got %S, want %S)" hi got want
             | None -> ""))
      else
        Error
          (Printf.sprintf
             "namespace legal but data is not: %s"
             (match !data_err with Some e -> e | None -> "?"))
    end
    else if String.equal canons.(j) rcanon then begin
      incr matched;
      match
        List.fold_left
          (fun acc (path, id) ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
                match Hashtbl.find_opt content path with
                | None -> Error (path ^ ": in model but not recovered")
                | Some r ->
                    data_check_file trace ~started:pctx.started
                      ~completed:pctx.completed ~path ~id r))
          (Ok ())
          (Model.files trace.Workload.md_states.(j))
      with
      | Ok () -> Ok ()
      | Error e ->
          if !data_err = None then data_err := Some e;
          try_j (j - 1)
    end
    else try_j (j - 1)
  in
  try_j hi

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type violation = {
  v_point : int;
  v_torn : float option;  (** survive probability, for torn replays *)
  v_started : int;
  v_completed : int;
  v_barrier : int;
  v_detail : string;
  v_ops : (int * string) list;
      (** the op window at stake: last barrier through the in-flight op *)
}

let op_window (trace : Workload.trace) (pctx : ctx) =
  let lo = max 0 pctx.barrier and hi = pctx.started in
  let lo = max lo (hi - 7) in
  List.init
    (max 0 (hi - lo + 1))
    (fun k ->
      let i = lo + k in
      (i, Model.op_to_string trace.Workload.ops.(i)))

(** Rebuild the crashed image on a fresh machine, mount (= recover),
    fsck, walk, and check legality. [tear]: additionally let each
    volatile block survive with the given probability (torn crash). *)
let replay_point ?(disk_blocks = default_disk_blocks) ?(inject_bug = false)
    (trace : Workload.trace) ~canons kind (pt : point)
    ~(tear : (float * Sim.Rng.t) option) : violation option =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let dev = Kernel.Machine.disk machine in
  Array.iter (fun (blk, b) -> Device.Ssd.Offline.write dev blk b) pt.stable;
  (match tear with
  | None -> ()
  | Some (p, rng) ->
      List.iter
        (fun (blk, b) ->
          if Sim.Rng.float rng < p then Device.Ssd.Offline.write dev blk b)
        pt.volatile);
  if inject_bug then Stack.nuke_log kind machine;
  let rows = ref [] in
  let failed = ref None in
  Kernel.Machine.spawn ~name:"replay" machine (fun () ->
      match Stack.mount kind machine with
      | m ->
          (* always unmount, even when the walk fails: the FUSE daemon
             fiber must be stopped or the machine can never drain *)
          (try rows := walk m.Stack.os
           with
          | Walk_failed msg -> failed := Some msg
          | Kernel.Errno.Error e ->
              failed := Some ("walk: " ^ Kernel.Errno.to_string e));
          m.Stack.unmount ()
      | exception Kernel.Errno.Error e ->
          failed := Some ("mount: " ^ Kernel.Errno.to_string e));
  (try Kernel.Machine.run machine
   with e -> failed := Some ("simulation: " ^ Printexc.to_string e));
  let result =
    match !failed with
    | Some m -> Error ("recovery failed: " ^ m)
    | None -> (
        match Stack.fsck_errors kind machine with
        | [] -> check_recovered trace ~canons pt.pctx !rows
        | errs ->
            Error
              (Printf.sprintf "fsck: %s"
                 (String.concat "; "
                    (List.filteri (fun i _ -> i < 3) errs))))
  in
  match result with
  | Ok () -> None
  | Error detail ->
      Some
        {
          v_point = pt.pid;
          v_torn = (match tear with Some (p, _) -> Some p | None -> None);
          v_started = pt.pctx.started;
          v_completed = pt.pctx.completed;
          v_barrier = pt.pctx.barrier;
          v_detail = detail;
          v_ops = op_window trace pt.pctx;
        }

(* ------------------------------------------------------------------ *)
(* Crash check driver                                                  *)
(* ------------------------------------------------------------------ *)

type crash_summary = {
  c_stack : string;
  c_points_captured : int;
  c_points_tested : int;
  c_torn_tested : int;
  c_violations : violation list;
}

type mode = All | Sample of int

(* Last capture of each distinct stable epoch: the deterministic
   (survive = 0) crash states, deduplicated. *)
let distinct_epochs points =
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest -> (
        match rest with
        | q :: _ when q.epoch = p.epoch -> go acc rest
        | _ -> go (p :: acc) rest)
  in
  go [] points

let sample_list rng k l =
  if List.length l <= k then l
  else begin
    let arr = Array.of_list l in
    Sim.Rng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 k)
    |> List.sort (fun a b -> compare a.pid b.pid)
  end

(** Enumerate crash points for [trace] on [kind] and check every selected
    one. [All] replays each distinct durable state; [Sample n] replays a
    seeded sample plus as many torn variants (random subsets of the
    volatile cache surviving). *)
let crash_check ?disk_blocks ?(inject_bug = false) ?(mode = All)
    (trace : Workload.trace) kind : crash_summary =
  let points = capture_run ?disk_blocks trace kind in
  let canons =
    Array.map Model.canon trace.Workload.md_states
  in
  let rng = Sim.Rng.create (trace.Workload.seed + 0x5eed) in
  let clean, torn =
    match mode with
    | All -> (distinct_epochs points, [])
    | Sample n ->
        let clean = sample_list rng (max 1 (n / 2)) (distinct_epochs points) in
        let torn =
          sample_list rng (max 1 (n - List.length clean)) points
          |> List.map (fun p ->
                 let survive = [| 0.3; 0.6; 0.9 |].(Sim.Rng.int rng 3) in
                 (p, survive, Sim.Rng.split rng))
        in
        (clean, torn)
  in
  let violations = ref [] in
  List.iter
    (fun p ->
      match
        replay_point ?disk_blocks ~inject_bug trace ~canons kind p ~tear:None
      with
      | Some v -> violations := v :: !violations
      | None -> ())
    clean;
  List.iter
    (fun (p, survive, r) ->
      match
        replay_point ?disk_blocks ~inject_bug trace ~canons kind p
          ~tear:(Some (survive, r))
      with
      | Some v -> violations := v :: !violations
      | None -> ())
    torn;
  {
    c_stack = Stack.name kind;
    c_points_captured = List.length points;
    c_points_tested = List.length clean;
    c_torn_tested = List.length torn;
    c_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Top-level report                                                    *)
(* ------------------------------------------------------------------ *)

type report = {
  r_seed : int;
  r_ops : int;
  r_divergences : divergence list;
  r_crashes : crash_summary list;
}

let report_ok r =
  r.r_divergences = []
  && List.for_all (fun c -> c.c_violations = []) r.r_crashes

(** Run the full checker over an already-built trace. *)
let run_trace ?disk_blocks ?inject_bug ?(mode = Some (Sample 32))
    ~(stacks : Stack.kind list) (trace : Workload.trace) : report =
  let divergences = differential ?disk_blocks trace stacks in
  let crashes =
    match mode with
    | None -> []
    | Some mode ->
        List.map
          (fun k -> crash_check ?disk_blocks ?inject_bug ~mode trace k)
          stacks
  in
  {
    r_seed = trace.Workload.seed;
    r_ops = Workload.n_ops trace;
    r_divergences = divergences;
    r_crashes = crashes;
  }

(** Generate the workload from [seed] and run the full checker. *)
let run ?disk_blocks ?inject_bug ?mode ~seed ~ops ~stacks () : report =
  let trace = Workload.generate ~seed ~ops () in
  run_trace ?disk_blocks ?inject_bug ?mode ~stacks trace

let pp_violation ~seed ~stack ppf (v : violation) =
  Format.fprintf ppf
    "@[<v2>VIOLATION %s crash-point %d%s (op in flight: %d, last completed: \
     %d, last barrier: %d):@ %s@ op trace:%t@ reproduce: bento_cli check \
     --seed %d --fs %s --crash-points all@]"
    stack v.v_point
    (match v.v_torn with
    | Some p -> Printf.sprintf " (torn, survive=%.1f)" p
    | None -> "")
    v.v_started v.v_completed v.v_barrier v.v_detail
    (fun ppf ->
      List.iter
        (fun (i, s) -> Format.fprintf ppf "@   op %d: %s" i s)
        v.v_ops)
    seed stack

let pp_report ppf r =
  Format.fprintf ppf "check: seed=%d ops=%d@." r.r_seed r.r_ops;
  (match r.r_divergences with
  | [] -> Format.fprintf ppf "differential: 0 divergences@."
  | divs ->
      Format.fprintf ppf "differential: %d divergence(s)@." (List.length divs);
      List.iter
        (fun d ->
          Format.fprintf ppf "  op %d: %s@.    oracle: %s@." d.d_idx d.d_op
            d.d_expected;
          List.iter
            (fun (s, o) -> Format.fprintf ppf "    %-5s: %s@." s o)
            d.d_got)
        divs);
  List.iter
    (fun c ->
      Format.fprintf ppf
        "crash %-5s: %d points captured, %d clean + %d torn replayed, %d \
         violation(s)@."
        c.c_stack c.c_points_captured c.c_points_tested c.c_torn_tested
        (List.length c.c_violations);
      List.iter
        (fun v ->
          Format.fprintf ppf "  %a@."
            (pp_violation ~seed:r.r_seed ~stack:c.c_stack)
            v)
        c.c_violations)
    r.r_crashes
