(** NVMe SSD model.

    The model reproduces the device-side phenomena the Bento evaluation
    depends on:

    - per-command latency = fixed base + size / bandwidth, so batching many
      contiguous blocks into one command ([writepages]) beats issuing one
      command per block ([writepage]);
    - internal parallelism: [channels] commands can be in flight at once,
      which is what lets 32-thread filebench runs outscore 1-thread runs;
    - a volatile write cache: writes complete fast but are not durable until
      a FLUSH, whose cost grows with the amount of unflushed data — the
      mechanism behind fsync-bound workloads (varmail, create/delete);
    - crash semantics: on [crash], unflushed writes are lost (optionally a
      random subset survives, modelling reordered internal writeback), which
      the journal/log recovery tests exercise.

    All timing is virtual; data is held in memory. *)

type config = {
  read_base : int64;  (** per-command read latency floor *)
  write_base : int64;  (** per-command write latency floor (cache hit) *)
  flush_base : int64;  (** FLUSH floor *)
  read_bw : float;  (** bytes/sec streaming read *)
  write_bw : float;  (** bytes/sec streaming write into cache *)
  flush_bw : float;  (** bytes/sec draining cache to flash on FLUSH *)
  channels : int;  (** parallel in-flight commands *)
  cache_blocks : int;  (** volatile cache capacity; exceeding it forces
                            background drain at flush_bw *)
}

(** Loosely calibrated to a Samsung PM981-class NVMe SSD (the paper's
    testbed device): ~80 us 4K random read, fast buffered writes, ~3.2/2.4
    GB/s streaming read/write, costly FLUSH. *)
let default_config =
  {
    read_base = 70_000L;
    write_base = 6_000L;
    flush_base = 15_000L;
    read_bw = 3.2e9;
    write_bw = 2.4e9;
    flush_bw = 1.2e9;
    channels = 8;
    cache_blocks = 4096;
  }

type cmd = Cmd_read | Cmd_write | Cmd_flush

type t = {
  engine : Sim.Engine.t;
  config : config;
  block_size : int;
  nblocks : int;
  stable : Bytes.t option array;  (** durable contents, [None] = zeroes *)
  volatile : (int, Bytes.t) Hashtbl.t;  (** written, not yet flushed *)
  write_order : int Queue.t;
      (** volatile-cache insertion order (oldest first). May contain stale
          entries for blocks since flushed or evicted; consumers skip
          anything no longer in [volatile]. *)
  channels : Sim.Resource.t;
  flush_lock : Sim.Sync.Mutex.t;
  stats : Sim.Stats.t;
  tracer : Sim.Trace.t;
  profile : Sim.Profile.t;  (** owns the "device-queue"/"device-io" frames *)
  read_lat : Sim.Stats.Histogram.t;  (** command service incl. queueing *)
  write_lat : Sim.Stats.Histogram.t;
  mutable failed : bool;  (** set by [crash]: all subsequent I/O fails *)
  mutable stable_epoch : int;  (** bumped whenever stable contents change *)
  mutable on_command : (cmd -> unit) option;
      (** crash-point enumeration hook, fired after each completed command *)
}

exception Out_of_range of int
exception Device_failed

let create ?(config = default_config) ?tracer ?profile ~nblocks ~block_size
    engine =
  if nblocks <= 0 || block_size <= 0 then invalid_arg "Ssd.create";
  let stats = Sim.Stats.create () in
  {
    engine;
    config;
    block_size;
    nblocks;
    stable = Array.make nblocks None;
    volatile = Hashtbl.create 1024;
    write_order = Queue.create ();
    channels = Sim.Resource.create ~name:"ssd-channels" config.channels;
    flush_lock = Sim.Sync.Mutex.create ~name:"ssd-flush" ();
    stats;
    tracer =
      (match tracer with Some tr -> tr | None -> Sim.Trace.create engine);
    profile =
      (match profile with Some p -> p | None -> Sim.Profile.create engine);
    read_lat = Sim.Stats.histogram stats "cmd_read_lat";
    write_lat = Sim.Stats.histogram stats "cmd_write_lat";
    failed = false;
    stable_epoch = 0;
    on_command = None;
  }

let stable_epoch t = t.stable_epoch
let set_command_hook t hook = t.on_command <- hook

let notify t cmd =
  match t.on_command with None -> () | Some f -> f cmd

(* Everything stored in [stable] is replace-only (writers always install a
   fresh copy), so a shallow copy of the array is a faithful snapshot of
   what an immediate power failure would leave behind. Callers must treat
   the payloads as read-only. *)
let crash_view t = Array.copy t.stable

let block_size t = t.block_size
let nblocks t = t.nblocks
let stats t = t.stats

let check t block =
  if t.failed then raise Device_failed;
  if block < 0 || block >= t.nblocks then raise (Out_of_range block)

let counter t name = Sim.Stats.counter t.stats name

let xfer_time ~base ~bw ~bytes =
  Int64.add base (Sim.Time.of_bandwidth ~bytes ~bytes_per_sec:bw)

(* Sample the in-flight + queued command count as a Perfetto counter
   track (no-op while tracing is disabled). *)
let sample_inflight t =
  Sim.Trace.counter t.tracer ~cat:"device" "ssd:inflight"
    (Int64.of_int (Sim.Resource.in_use t.channels + Sim.Resource.queued t.channels))

let sample_dirty t =
  Sim.Trace.counter t.tracer ~cat:"device" "ssd:dirty_blocks"
    (Int64.of_int (Hashtbl.length t.volatile))

(* One command's occupancy of a device channel, split into the queueing
   wait ("device-queue") and the transfer itself ("device-io") so the
   profiler can attribute them separately. *)
let channel_io t dur =
  Sim.Profile.with_frame t.profile "device-queue" (fun () ->
      Sim.Resource.acquire t.channels);
  sample_inflight t;
  Fun.protect
    ~finally:(fun () ->
      Sim.Resource.release t.channels;
      sample_inflight t)
    (fun () ->
      Sim.Profile.with_frame t.profile "device-io" (fun () ->
          Sim.Resource.busy_sleep t.channels dur))

(* Fetch current durable-or-volatile contents of [block] as a fresh copy. *)
let peek t block =
  match Hashtbl.find_opt t.volatile block with
  | Some b -> Bytes.copy b
  | None -> (
      match t.stable.(block) with
      | Some b -> Bytes.copy b
      | None -> Bytes.make t.block_size '\000')

(* One read command covering [count] consecutive blocks (fiber-blocking). *)
let read_cmd t ~start ~count =
  check t start;
  check t (start + count - 1);
  Sim.Stats.Counter.incr (counter t "read_cmds");
  Sim.Stats.Counter.incr ~by:count (counter t "blocks_read");
  let bytes = count * t.block_size in
  let dur = xfer_time ~base:t.config.read_base ~bw:t.config.read_bw ~bytes in
  Sim.Trace.span_begin t.tracer ~cat:"device" "ssd:read";
  let t0 = Sim.Engine.now t.engine in
  channel_io t dur;
  Sim.Stats.Histogram.record t.read_lat
    (Int64.sub (Sim.Engine.now t.engine) t0);
  Sim.Trace.span_end t.tracer ~cat:"device" "ssd:read";
  if t.failed then raise Device_failed;
  let result = Array.init count (fun i -> peek t (start + i)) in
  notify t Cmd_read;
  result

(* Record block contents in the volatile cache (timing handled by caller).
   A block keeps its original queue position across rewrites, so eviction
   order is strict FIFO on first insertion. *)
let store_volatile t block data =
  if Bytes.length data <> t.block_size then
    invalid_arg "Ssd.write: bad block size";
  if not (Hashtbl.mem t.volatile block) then Queue.push block t.write_order;
  Hashtbl.replace t.volatile block (Bytes.copy data)

(* If the volatile cache overflows, the device stalls the command while it
   drains the overflow to flash at flush bandwidth. Victims leave in FIFO
   insertion order — the oldest cached blocks become durable first, the way
   a real device's internal writeback empties its ring. *)
let drain_overflow t =
  let excess = Hashtbl.length t.volatile - t.config.cache_blocks in
  if excess > 0 then begin
    let bytes = excess * t.block_size in
    let dur =
      Sim.Time.of_bandwidth ~bytes ~bytes_per_sec:t.config.flush_bw
    in
    Sim.Profile.with_frame t.profile "device-io" (fun () ->
        Sim.Engine.sleep dur);
    let moved = ref 0 in
    while !moved < excess && not (Queue.is_empty t.write_order) do
      let blk = Queue.pop t.write_order in
      (* Skip stale queue entries (block flushed or evicted since). *)
      match Hashtbl.find_opt t.volatile blk with
      | None -> ()
      | Some data ->
          t.stable.(blk) <- Some data;
          Hashtbl.remove t.volatile blk;
          incr moved
    done;
    if !moved > 0 then t.stable_epoch <- t.stable_epoch + 1
  end

(* One write command covering consecutive blocks (fiber-blocking). *)
let write_cmd t ~start bufs =
  let count = Array.length bufs in
  check t start;
  check t (start + count - 1);
  Sim.Stats.Counter.incr (counter t "write_cmds");
  Sim.Stats.Counter.incr ~by:count (counter t "blocks_written");
  let bytes = count * t.block_size in
  let dur = xfer_time ~base:t.config.write_base ~bw:t.config.write_bw ~bytes in
  Sim.Trace.span_begin t.tracer ~cat:"device" "ssd:write";
  let t0 = Sim.Engine.now t.engine in
  channel_io t dur;
  Sim.Stats.Histogram.record t.write_lat
    (Int64.sub (Sim.Engine.now t.engine) t0);
  Sim.Trace.span_end t.tracer ~cat:"device" "ssd:write";
  if t.failed then raise Device_failed;
  Array.iteri (fun i data -> store_volatile t (start + i) data) bufs;
  drain_overflow t;
  sample_dirty t;
  notify t Cmd_write

(* ------------------------------------------------------------------ *)
(* Asynchronous submission: each submitted command runs on a short-lived
   device fiber, so the submitter keeps going (and can keep all
   [config.channels] busy) while commands queue, transfer and complete.
   The completion carries either the command's result or its exception,
   re-raised at [await] — a fire-and-forget submitter (readahead) simply
   never observes a late failure.

   Each async hop is bracketed by tracer flow edges: submitter -> device
   fiber at submit, device fiber -> awaiter at completion. The device
   fiber inherits the submitter's request context at spawn, so every
   event it emits carries the right reqid, and the flow edges are what
   let [Trace.Causal] stitch the request back into one connected DAG. *)

type completion = {
  c_ivar : (Bytes.t array, exn) result Sim.Sync.Ivar.t;
  c_tracer : Sim.Trace.t;
  mutable c_flow : int64;
      (** flow edge opened by the device fiber when it fills the ivar,
          closed by the awaiter; 0 until completion (or while tracing is
          off) *)
}

let submit t ~name run =
  let c = { c_ivar = Sim.Sync.Ivar.create (); c_tracer = t.tracer; c_flow = 0L } in
  let submit_edge = Sim.Trace.flow_begin t.tracer ~cat:"device" name in
  ignore
    (Sim.Engine.spawn ~name t.engine (fun () ->
         Sim.Trace.flow_end t.tracer ~cat:"device" name submit_edge;
         let r = match run () with v -> Ok v | exception e -> Error e in
         c.c_flow <- Sim.Trace.flow_begin t.tracer ~cat:"device" (name ^ ":done");
         Sim.Sync.Ivar.fill c.c_ivar r));
  c

let submit_read t ~start ~count =
  if count <= 0 then invalid_arg "Ssd.submit_read: empty";
  check t start;
  check t (start + count - 1);
  submit t ~name:"ssd-read" (fun () -> read_cmd t ~start ~count)

let submit_write t ~start bufs =
  let count = Array.length bufs in
  if count = 0 then invalid_arg "Ssd.write_contig: empty";
  check t start;
  check t (start + count - 1);
  submit t ~name:"ssd-write" (fun () ->
      write_cmd t ~start bufs;
      [||])

let await c =
  let r = Sim.Sync.Ivar.read c.c_ivar in
  Sim.Trace.flow_end c.c_tracer ~cat:"device" "ssd:done" c.c_flow;
  match r with Ok v -> v | Error e -> raise e

let is_complete c = Sim.Sync.Ivar.is_full c.c_ivar

(** Read [count] contiguous blocks as one device command. *)
let read_contig t ~start ~count = await (submit_read t ~start ~count)

let read t block =
  match read_contig t ~start:block ~count:1 with
  | [| b |] -> b
  | _ -> assert false

(** Write [count] contiguous blocks as one device command. *)
let write_contig t ~start bufs =
  ignore (await (submit_write t ~start bufs))

let write t block data = write_contig t ~start:block [| data |]

(** Durability barrier: drain the volatile cache to flash. Cost grows with
    the amount of dirty data — this is what makes frequent small fsyncs so
    expensive for the FUSE baseline. *)
let flush t =
  if t.failed then raise Device_failed;
  Sim.Trace.with_span t.tracer ~cat:"device" "ssd:flush" (fun () ->
      (* Lock contention counts as queueing; the drain itself as I/O. *)
      Sim.Profile.with_frame t.profile "device-queue" (fun () ->
          Sim.Sync.Mutex.with_lock t.flush_lock (fun () ->
              Sim.Stats.Counter.incr (counter t "flushes");
              let dirty = Hashtbl.length t.volatile in
              let bytes = dirty * t.block_size in
              let dur =
                Int64.add t.config.flush_base
                  (Sim.Time.of_bandwidth ~bytes
                     ~bytes_per_sec:t.config.flush_bw)
              in
              Sim.Profile.with_frame t.profile "device-io" (fun () ->
                  Sim.Engine.sleep dur);
              Sim.Stats.Histogram.record
                (Sim.Stats.histogram t.stats "cmd_flush_lat") dur;
              if t.failed then raise Device_failed;
              if Hashtbl.length t.volatile > 0 then begin
                Hashtbl.iter
                  (fun blk data -> t.stable.(blk) <- Some data)
                  t.volatile;
                t.stable_epoch <- t.stable_epoch + 1
              end;
              Hashtbl.reset t.volatile;
              Queue.clear t.write_order;
              sample_dirty t)));
  notify t Cmd_flush

let dirty_blocks t = Hashtbl.length t.volatile

(* Sorted for determinism; payloads are replace-only, hence safely shared. *)
let volatile_view t =
  Hashtbl.fold (fun blk data acc -> (blk, data) :: acc) t.volatile []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Simulate power loss. Unflushed writes are dropped, except that each
    volatile block independently survives with probability [survive] (the
    device may have started writing it back on its own) — this models
    arbitrary write reordering for crash-recovery tests. Afterwards the
    device keeps working on the surviving state. *)
let crash ?(survive = 0.0) ?rng t =
  let survivors = ref 0 in
  let keep blk data =
    let lucky =
      match rng with
      | Some r -> Sim.Rng.float r < survive
      | None -> false
    in
    if lucky then begin
      t.stable.(blk) <- Some data;
      incr survivors
    end
  in
  Hashtbl.iter keep t.volatile;
  Hashtbl.reset t.volatile;
  Queue.clear t.write_order;
  if !survivors > 0 then t.stable_epoch <- t.stable_epoch + 1

(** Mark the device failed: every subsequent command raises
    [Device_failed]. Used for fault-injection tests. *)
let fail t = t.failed <- true

(* Direct, non-timed access for mkfs/fsck-style offline tools and tests. *)
module Offline = struct
  let read t block =
    check t block;
    peek t block

  let write t block data =
    check t block;
    if Bytes.length data <> t.block_size then invalid_arg "Offline.write";
    t.stable.(block) <- Some (Bytes.copy data);
    t.stable_epoch <- t.stable_epoch + 1;
    Hashtbl.remove t.volatile block

  let stable_read t block =
    check t block;
    match t.stable.(block) with
    | Some b -> Bytes.copy b
    | None -> Bytes.make t.block_size '\000'
end
