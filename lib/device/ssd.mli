(** NVMe SSD model: multi-channel command service, a volatile write cache
    with FLUSH, streaming bandwidth, and crash semantics.

    All timing is virtual (the calling fiber sleeps); data is in memory.
    The phenomena the Bento evaluation depends on are modelled explicitly:
    per-command latency floors (batching wins), channel parallelism
    (threads win), flush cost growing with dirty data (fsync-bound
    workloads), and loss of unflushed writes on power failure (crash
    recovery testing, including partial survival). *)

type config = {
  read_base : int64;  (** per-command read latency floor (ns) *)
  write_base : int64;  (** per-command write latency floor (cache hit) *)
  flush_base : int64;  (** FLUSH floor *)
  read_bw : float;  (** bytes/sec streaming read *)
  write_bw : float;  (** bytes/sec streaming write into the cache *)
  flush_bw : float;  (** bytes/sec draining the cache on FLUSH *)
  channels : int;  (** parallel in-flight commands *)
  cache_blocks : int;  (** volatile cache capacity before forced drain *)
}

val default_config : config
(** Loosely calibrated to the paper's Samsung PM981-class device; see
    EXPERIMENTS.md for the calibration discussion. *)

type t

type cmd = Cmd_read | Cmd_write | Cmd_flush
(** Device command classes, as reported to the {!set_command_hook}. *)

exception Out_of_range of int
exception Device_failed

val create :
  ?config:config ->
  ?tracer:Sim.Trace.t ->
  ?profile:Sim.Profile.t ->
  nblocks:int ->
  block_size:int ->
  Sim.Engine.t ->
  t
(** [tracer] (e.g. the machine's) receives per-command spans; without one
    the device keeps a private disabled tracer. [profile] (e.g. the
    machine's) receives "device-queue"/"device-io" attribution frames;
    without one the device keeps a private disabled profiler. Command
    service latencies (queueing included) land in the [cmd_read_lat] /
    [cmd_write_lat] / [cmd_flush_lat] histograms of [stats]. *)

val block_size : t -> int
val nblocks : t -> int
val stats : t -> Sim.Stats.t

type completion
(** Handle for an in-flight submitted command. *)

val submit_read : t -> start:int -> count:int -> completion
(** Issue one read command covering [count] consecutive blocks without
    blocking the calling fiber: the command queues for a channel, transfers
    and completes on its own device fiber. Range errors raise immediately
    at submission; service-time errors ({!Device_failed}) surface at
    {!await}. *)

val submit_write : t -> start:int -> Bytes.t array -> completion
(** Issue one write command covering consecutive blocks without blocking.
    The payload is copied at command completion, not submission — callers
    must not mutate the buffers until the command completes. *)

val await : completion -> Bytes.t array
(** Block until the command completes; returns the blocks read ([[||]] for
    writes) or re-raises the command's failure. May be called any number
    of times (idempotent once complete). *)

val is_complete : completion -> bool

val read_contig : t -> start:int -> count:int -> Bytes.t array
(** One device command covering [count] consecutive blocks. Blocks the
    calling fiber for the command's service time (sugar for
    {!submit_read} + {!await}). *)

val read : t -> int -> Bytes.t

val write_contig : t -> start:int -> Bytes.t array -> unit
(** One command writing consecutive blocks into the volatile cache
    (sugar for {!submit_write} + {!await}). *)

val write : t -> int -> Bytes.t -> unit

val flush : t -> unit
(** Durability barrier: drain the volatile cache to stable media. Cost =
    [flush_base] + dirty bytes / [flush_bw]. *)

val dirty_blocks : t -> int

val crash_view : t -> Bytes.t option array
(** Snapshot of what an immediate power failure would leave behind: the
    stable contents only ([None] = zeroes), excluding the volatile cache.
    Shallow — treat the payload [Bytes.t] values as read-only. Stable
    payloads are replace-only internally, so the snapshot stays faithful
    even as the device keeps running. *)

val volatile_view : t -> (int * Bytes.t) list
(** The unflushed write cache as sorted (block, contents) pairs — the
    blocks at stake in a crash right now. Shallow like {!crash_view}. *)

val stable_epoch : t -> int
(** Monotonic counter bumped whenever stable contents change (flush, cache
    overflow drain, crash survivors, offline writes). Two equal epochs ⇒
    identical {!crash_view}; the crash checker uses it to deduplicate
    crash points. *)

val set_command_hook : t -> (cmd -> unit) option -> unit
(** Install a callback fired after every completed device command, on the
    fiber that serviced it (the per-command device fiber for reads and
    writes, the caller for flushes). The crash-point enumerator uses this
    to snapshot device state at every command boundary — with concurrent
    submissions the boundaries fall {e inside} partially-completed
    batches. The callback must not issue device commands. *)

val crash : ?survive:float -> ?rng:Sim.Rng.t -> t -> unit
(** Power failure: unflushed writes are dropped, except that each block
    independently survives with probability [survive] (models internal
    writeback reordering). The device keeps serving afterwards. *)

val fail : t -> unit
(** Hard failure: every subsequent command raises {!Device_failed}. *)

(** Non-timed access for offline tools (mkfs inspection, fsck, tests). *)
module Offline : sig
  val read : t -> int -> Bytes.t
  (** Current contents: volatile cache if present, else stable. *)

  val write : t -> int -> Bytes.t -> unit
  (** Write straight to stable storage (image surgery in tests). *)

  val stable_read : t -> int -> Bytes.t
  (** Only what would survive a crash right now. *)
end
