(** Minimal JSON emitter (no parser) for machine-readable bench output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line document. Strings are escaped per RFC 8259;
    NaN/infinite floats become [null]. *)

val int64 : int64 -> t
(** Emit as a plain integer literal (virtual-ns values fit in 2^53). *)
