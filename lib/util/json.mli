(** Minimal JSON emitter and parser for machine-readable bench output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line document. Strings are escaped per RFC 8259;
    NaN/infinite floats become [null]. *)

val int64 : int64 -> t
(** Emit as a plain integer literal (virtual-ns values fit in 2^53). *)

val parse : string -> (t, string) result
(** Parse one JSON document (full RFC 8259 grammar; integral-looking
    numbers become [Int], others [Float]). The error carries the byte
    offset of the failure. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for absent fields and non-objects. *)

val to_float_opt : t -> float option
(** [Int]/[Float] as float; [None] otherwise. *)

val to_string_opt : t -> string option
