(** Minimal JSON emitter for the bench harness's machine-readable output.

    Only what the harness needs: construct a value, print it. Numbers are
    emitted as OCaml prints them ([%g]-style floats would lose precision,
    so floats use [Printf "%.17g"] trimmed by the reader, ints verbatim);
    strings are escaped per RFC 8259. No parser — tests that need to check
    well-formedness carry their own tiny reader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    (* NaN/inf are not JSON; the harness only produces them for empty runs *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  add buf v;
  Buffer.contents buf

(** [int64 n] — JSON numbers above 2^53 lose precision in many readers;
    virtual-ns values fit comfortably (2^53 ns ≈ 104 days), so emit as a
    plain integer literal. *)
let int64 n = Int (Int64.to_int n)
