(** Minimal JSON emitter + parser for the bench harness's machine-readable
    output. Numbers are emitted as OCaml prints them ([%g]-style floats
    would lose precision, so floats use [Printf "%.17g"] trimmed by the
    reader, ints verbatim); strings are escaped per RFC 8259. The parser
    exists so [bench-diff] can read previous runs back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    (* NaN/inf are not JSON; the harness only produces them for empty runs *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  add buf v;
  Buffer.contents buf

(** [int64 n] — JSON numbers above 2^53 lose precision in many readers;
    virtual-ns values fit comfortably (2^53 ns ≈ 104 days), so emit as a
    plain integer literal. *)
let int64 n = Int (Int64.to_int n)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the full RFC 8259 grammar, enough to
   read back the harness's own output (and hand-edited fixtures) for
   bench-diff. Numbers parse as [Int] when they look integral. *)

exception Parse_error of int * string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> error "bad \\u escape"
  in
  let utf8_of_code buf c =
    (* encode a Unicode scalar value as UTF-8 *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let hi = parse_hex4 () in
               let code =
                 if hi >= 0xD800 && hi <= 0xDBFF then begin
                   (* surrogate pair *)
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = parse_hex4 () in
                     0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else error "lone surrogate"
                 end
                 else hi
               in
               utf8_of_code buf code
           | _ -> error "bad escape");
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if
      String.contains lit '.'
      || String.contains lit 'e'
      || String.contains lit 'E'
    then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> error ("bad number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* integer literal out of 63-bit range: keep the value *)
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> error ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

(* Accessors used by readers of parsed documents. *)
let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
