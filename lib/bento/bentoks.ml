(** BentoKS — the kernel services API (§4.5–§4.7).

    A Bento file system never touches kernel objects directly: it receives a
    [KSERVICES] module whose values are *capabilities*. The module types are
    abstract, so file-system code cannot forge a superblock or a buffer, and
    the buffer wrapper enforces the borrow discipline at runtime (in Rust
    the compiler proves it; here violating it raises, and the test suite's
    fault-injection checks exercise exactly the bug classes of Table 1:
    use-after-free, double free, leaks).

    Two implementations exist: [kernel_services] below wraps the kernel
    buffer cache and device barrier (the in-kernel Bento runtime), and
    [Bento_user] provides the same signature over user-level I/O for the
    §4.9 userspace debugging runtime. *)

exception Use_after_release of string
exception Double_release of string

(** The services signature a Bento file system is compiled against. *)
module type KSERVICES = sig
  (** An exclusively-held disk block (the BufferHead capability). Obtained
      from [bread]/[getblk]; must be released exactly once. *)
  module Buffer : sig
    type t

    val block : t -> int

    val data : t -> Bytes.t
    (** Borrow the 4 KB contents. Raises [Use_after_release] if the buffer
        was released — the runtime analogue of Rust's borrow check. *)

    val mark_dirty : t -> unit
    (** The owner (typically the log) will write this block later. *)
  end

  val bread : int -> Buffer.t
  (** Read block into the cache and return it locked ([sb_bread]). *)

  val getblk : int -> Buffer.t
  (** Locked buffer without reading the device (will be overwritten). *)

  val bread_multi : int list -> Buffer.t list
  (** Batched [bread] of distinct blocks, returned in input order. The
      kernel runtime merges the cache misses into contiguous device
      commands read concurrently across channels (the bio read path);
      the single-threaded userspace runtime reads them one at a time. *)

  val bwrite : Buffer.t -> unit
  (** Write through to the device's volatile cache. *)

  val bwrite_seq : Buffer.t list -> unit
  (** Write several buffers, batching contiguous block runs into single
      device commands. *)

  val bwrite_all : Buffer.t list -> unit
  (** Write a set of buffers with maximum parallelism: contiguous runs are
      batched into single commands and distinct runs are submitted
      concurrently across the device's channels, then all completions are
      awaited (the kernel block layer's async submit path). *)

  (** The block layer's plug/unplug protocol over held buffers, for
      callers that accumulate scattered writes incrementally instead of
      in one list. [add] stages, [unplug] dispatches what is staged
      (merged into contiguous commands, concurrent across device
      channels in the kernel runtime; the single-threaded userspace
      runtime defers to [wait]), [wait] is the completion barrier. *)
  module Bio : sig
    type plug

    val plug : unit -> plug

    val add : plug -> Buffer.t -> unit
    (** Stage a held buffer for writeback. The buffer must stay held and
        unmutated until [wait] returns. *)

    val unplug : plug -> unit
    (** Dispatch everything staged so far without waiting. *)

    val wait : plug -> unit
    (** Implicit [unplug], then block until every staged write has
        completed; clears the staged buffers' dirty bits. *)
  end

  val brelse : Buffer.t -> unit
  (** Unlock and drop the reference. Raises [Double_release] on misuse. *)

  val raw_write_scatter : (int * Bytes.t) list -> unit
  (** Install committed (block, data) images straight to the device,
      bypassing the cached buffers — which may already hold newer,
      uncommitted contents that must not be overwritten or flushed home
      early. The kernel runtime merges adjacent blocks into contiguous
      commands dispatched concurrently across the device's channels; the
      userspace runtime writes them one pwrite(2) at a time. Duplicate
      blocks must not appear. *)

  val pin : Buffer.t -> unit
  (** Raise the underlying cache reference so the block cannot be evicted
      (xv6 [bpin]; the log pins modified blocks until they are installed). *)

  val unpin : Buffer.t -> unit
  (** Drop a pin reference ([bunpin]). *)

  val with_bread : int -> (Buffer.t -> 'a) -> 'a
  (** Scoped read: releases on all paths (the Rust [Drop] idiom). *)

  val with_getblk : int -> (Buffer.t -> 'a) -> 'a

  val flush : unit -> unit
  (** Durability barrier: volatile device cache to stable media. *)

  val block_size : int
  val nblocks : int

  val cpu : int64 -> unit
  (** Account CPU work (directory scans, checksums, ...). *)

  val costs : Kernel.Cost.t
  (** The machine's calibration constants, for fs-side CPU accounting. *)

  val now : unit -> int64

  (** Kernel sleeping locks (semaphores) for fs-internal synchronisation. *)
  module Kmutex : sig
    type t

    val create : ?name:string -> unit -> t
    val lock : t -> unit
    val unlock : t -> unit
    val with_lock : t -> (unit -> 'a) -> 'a
  end

  module Kcondvar : sig
    type t

    val create : unit -> t
    val wait : t -> Kmutex.t -> unit
    val signal : t -> unit
    val broadcast : t -> unit
  end

  (** Counters for fs-side statistics. *)
  val counter : string -> unit -> unit

  val counter_add : string -> int -> unit
  (** Add to a machine counter by name (e.g. journal commit block counts). *)

  val profile : string -> (unit -> 'a) -> 'a
  (** Run under a machine profiler layer frame ("log", "fs", ...); just
      the call while profiling is disabled. Lets functor-packaged fs code
      participate in per-layer attribution in both runtimes. *)

  val trace_counter : string -> int -> unit
  (** Sample a counter time-series on the machine tracer (e.g. log free
      space) for Perfetto counter tracks. *)

  val register_inspector : string -> (unit -> (string * int) list) -> unit
  (** Expose live fs-internal state (log free blocks, outstanding ops,
      ...) under a name in the machine's inspect dump
      ([bento_cli inspect]). The probe runs only when a dump is taken. *)

  val printk : string -> unit
  (** Kernel log line (dmesg), tagged with the machine's virtual time. *)

  val pushdown : Kernel.Pushdown.t
  (** The machine's pushdown registry ({!Kernel.Pushdown}): where clients
      register validated programs and the fs invokes filter pushdowns. *)
end

(** Build the in-kernel services over a machine's buffer cache. The
    returned module closes over the kernel objects — holding the module is
    the capability. [nblocks_cap] caps the device size the file system
    sees, reserving the tail (e.g. for a {!Kernel.Cas} region) — the fs
    never allocates past it. *)
let kernel_services ?nblocks_cap (machine : Kernel.Machine.t)
    (bc : Kernel.Bcache.t) : (module KSERVICES) =
  let stats = Kernel.Machine.stats machine in
  (* Fs → kernel crossing counters, cached so the hot buffer path pays one
     increment rather than a hash lookup per call. *)
  let ks_bread = Kernel.Machine.counter machine "bentoks_bread" in
  let ks_getblk = Kernel.Machine.counter machine "bentoks_getblk" in
  let ks_bwrite = Kernel.Machine.counter machine "bentoks_bwrite" in
  (module struct
    module Buffer = struct
      type t = { bh : Kernel.Bcache.buf; mutable released : bool }

      let block b = b.bh.Kernel.Bcache.block

      let data b =
        if b.released then
          raise (Use_after_release (Printf.sprintf "block %d" (block b)));
        b.bh.Kernel.Bcache.data

      let mark_dirty b =
        if b.released then
          raise (Use_after_release (Printf.sprintf "block %d" (block b)));
        Kernel.Bcache.mark_dirty b.bh
    end

    let bread n =
      Sim.Stats.Counter.incr ks_bread;
      { Buffer.bh = Kernel.Bcache.bread bc n; released = false }

    let getblk n =
      Sim.Stats.Counter.incr ks_getblk;
      { Buffer.bh = Kernel.Bcache.getblk bc n; released = false }

    let bread_multi blocks =
      Sim.Stats.Counter.incr ~by:(List.length blocks) ks_bread;
      List.map
        (fun bh -> { Buffer.bh; released = false })
        (Kernel.Bcache.bread_scatter bc blocks)

    let bwrite (b : Buffer.t) =
      if b.Buffer.released then
        raise (Use_after_release (Printf.sprintf "block %d" (Buffer.block b)));
      Sim.Stats.Counter.incr ks_bwrite;
      Kernel.Bcache.bwrite bc b.Buffer.bh

    let check_live ctx bs =
      List.iter
        (fun (b : Buffer.t) ->
          if b.Buffer.released then raise (Use_after_release ctx))
        bs

    (* Group consecutive block runs into contiguous device commands
       (the bio merge step). *)
    let runs_of bs =
      List.map snd (Kernel.Bio.runs (List.map (fun b -> (Buffer.block b, b)) bs))

    let bwrite_seq bs =
      check_live "bwrite_seq" bs;
      Sim.Stats.Counter.incr ks_bwrite;
      List.iter
        (fun run ->
          Kernel.Bcache.bwrite_contig bc (List.map (fun b -> b.Buffer.bh) run))
        (runs_of bs)

    let bwrite_all bs =
      check_live "bwrite_all" bs;
      Sim.Stats.Counter.incr ks_bwrite;
      Kernel.Bcache.bwrite_scatter bc (List.map (fun b -> b.Buffer.bh) bs)

    module Bio = struct
      type plug = { kp : Kernel.Bio.t; mutable staged : Buffer.t list }

      let plug () =
        { kp = Kernel.Bio.plug (Kernel.Machine.disk machine); staged = [] }

      let add p (b : Buffer.t) =
        if b.Buffer.released then raise (Use_after_release "Bio.add");
        p.staged <- b :: p.staged;
        Kernel.Bio.add p.kp ~block:(Buffer.block b)
          b.Buffer.bh.Kernel.Bcache.data

      let unplug p = Kernel.Bio.unplug p.kp

      let wait p =
        Sim.Stats.Counter.incr ks_bwrite;
        let cmds = Kernel.Bio.wait p.kp in
        List.iter
          (fun (b : Buffer.t) -> b.Buffer.bh.Kernel.Bcache.dirty <- false)
          p.staged;
        p.staged <- [];
        Sim.Stats.Counter.incr ~by:cmds
          (Sim.Stats.counter (Kernel.Bcache.stats bc) "disk_writes")
    end

    let brelse (b : Buffer.t) =
      if b.Buffer.released then
        raise (Double_release (Printf.sprintf "block %d" (Buffer.block b)));
      b.Buffer.released <- true;
      Kernel.Bcache.brelse bc b.Buffer.bh

    let raw_write_scatter pairs = Kernel.Bcache.raw_write_scatter bc pairs

    let pin (b : Buffer.t) =
      if b.Buffer.released then raise (Use_after_release "pin");
      Kernel.Bcache.bpin bc b.Buffer.bh

    let unpin (b : Buffer.t) =
      if b.Buffer.released then raise (Use_after_release "unpin");
      Kernel.Bcache.bunpin bc b.Buffer.bh

    let with_bread n f =
      let b = bread n in
      match f b with
      | v ->
          brelse b;
          v
      | exception exn ->
          brelse b;
          raise exn

    let with_getblk n f =
      let b = getblk n in
      match f b with
      | v ->
          brelse b;
          v
      | exception exn ->
          brelse b;
          raise exn

    let flush () = Kernel.Bcache.flush bc
    let block_size = Kernel.Bcache.block_size bc
    let nblocks =
      let total = Device.Ssd.nblocks (Kernel.Machine.disk machine) in
      match nblocks_cap with Some n -> min n total | None -> total
    let cpu ns = Kernel.Machine.cpu_work machine ns
    let costs = Kernel.Machine.cost machine
    let now () = Kernel.Machine.now machine

    module Kmutex = struct
      type t = Sim.Sync.Mutex.t

      let create ?name () = Sim.Sync.Mutex.create ?name ()
      let lock = Sim.Sync.Mutex.lock
      let unlock = Sim.Sync.Mutex.unlock
      let with_lock = Sim.Sync.Mutex.with_lock
    end

    module Kcondvar = struct
      type t = Sim.Sync.Condvar.t

      let create () = Sim.Sync.Condvar.create ()
      let wait = Sim.Sync.Condvar.wait
      let signal = Sim.Sync.Condvar.signal
      let broadcast = Sim.Sync.Condvar.broadcast
    end

    let counter name () = Sim.Stats.Counter.incr (Sim.Stats.counter stats name)

    let counter_add name n =
      Sim.Stats.Counter.incr ~by:n (Sim.Stats.counter stats name)

    let profile layer f = Kernel.Machine.with_layer machine layer f

    let trace_counter name v =
      Sim.Trace.counter (Kernel.Machine.tracer machine) ~cat:"fs" name
        (Int64.of_int v)

    let register_inspector name probe =
      Kernel.Machine.register_inspector machine ~name (fun () ->
          Util.Json.Obj
            (List.map (fun (k, v) -> (k, Util.Json.Int v)) (probe ())))

    let printk msg = Kernel.Printk.info machine "%s" msg
    let pushdown = Kernel.Pushdown.registry machine
  end)
