(** BentoFS — the layer interposed between the kernel VFS and a Bento file
    system (§4.3, §5.2 of the paper).

    It translates VFS calls into the file-operations API through a stored
    dispatch table, holding a dispatch read-lock per operation so that
    {!Upgrade.upgrade} can quiesce in-flight calls and swap the
    implementation underneath running applications. Its writeback path
    batches contiguous dirty pages into single [write] calls (writepages,
    inherited from the FUSE kernel module). *)

type handle = {
  mutable current : Fs_api.dispatch;
  dispatch_lock : Sim.Sync.Rwlock.t;
  machine : Kernel.Machine.t;
  bcache : Kernel.Bcache.t;
  services : (module Bentoks.KSERVICES);
  mutable upgrades : int;
  tracer : Sim.Trace.t;
  crossings : Sim.Stats.Counter.t;
      (** machine counter ["bento_crossings"]: VFS → BentoFS dispatches *)
  cas : Kernel.Cas.t option;
      (** content-addressable store over the reserved device tail, when
          mounted with [cas_blocks > 0] *)
}
(** The mount handle; [Upgrade] swaps [current] under [dispatch_lock]. *)

val wb_batch_pages : int
(** Default writepages batch (pages per [write_pages] call). *)

val vfs_ops : ?wb_batch:int -> handle -> Kernel.Vfs.fs_ops
(** The VFS table for a mounted Bento fs. [wb_batch 1] reproduces the C
    baseline's writepage behaviour (ablation experiments). *)

val mkfs :
  ?cas_blocks:int ->
  Kernel.Machine.t ->
  (module Fs_api.FS_MAKER) ->
  (unit, Kernel.Errno.t) result
(** Format the machine's device with the given file system. [cas_blocks]
    reserves that many device-tail blocks for the CAS region (the fs
    layout stops where it starts) and must match the value given to
    {!mount}. *)

val mount :
  ?dirty_limit:int ->
  ?page_cap:int ->
  ?background:bool ->
  ?wb_batch:int ->
  ?cas_blocks:int ->
  Kernel.Machine.t ->
  (module Fs_api.FS_MAKER) ->
  (Kernel.Vfs.t * handle, Kernel.Errno.t) result
(** Instantiate the fs module against fresh kernel services ("module
    insertion"), mount it on the VFS, and return the upgrade handle.
    [cas_blocks > 0] additionally attaches a {!Kernel.Cas} store over the
    reserved device tail, registers it for {!Kernel.Cas.of_machine}, and
    installs its page-sharing hooks on the VFS. *)

val unmount : Kernel.Vfs.t -> handle -> unit
(** Flush the VFS, then destroy the fs instance. *)

val bcache : handle -> Kernel.Bcache.t
val services : handle -> (module Bentoks.KSERVICES)
val machine : handle -> Kernel.Machine.t
val upgrades : handle -> int
val current_version : handle -> int
val current_name : handle -> string
