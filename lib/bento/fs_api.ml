(** The Bento file operations API (§4.3–§4.4).

    This is the interface a Bento file system implements — a typed rendering
    of the FUSE low-level API augmented with access to the kernel services
    capability, exactly as the paper describes. BentoFS translates VFS calls
    into these operations; ownership of no object ever crosses the
    interface (arguments are borrowed for the duration of the call — in
    OCaml, immutable values and short-lived [Bytes.t] views). *)

type kind = File | Directory | Symlink

type attr = {
  a_ino : int;
  a_kind : kind;
  a_size : int;
  a_nlink : int;
}

type fs_stats = {
  s_blocks : int;
  s_bfree : int;
  s_files : int;
  s_ffree : int;
}

type dentry = { name : string; ino : int; kind : kind }

type 'a res = ('a, Kernel.Errno.t) result

(** What a Bento file system implements. The module is instantiated against
    a [Bentoks.KSERVICES] by a functor ("module insertion"), mirroring how a
    Rust Bento fs is compiled against the BentoKS crate and inserted. *)
module type FS = sig
  type t

  val name : string
  val version : int

  val mkfs : unit -> unit res
  (** Write a fresh, empty file system image to the device. *)

  val mount : unit -> t res
  (** Read the superblock, recover the log if needed, return the instance. *)

  val destroy : t -> unit
  (** Flush everything; called at unmount. *)

  val statfs : t -> fs_stats
  val getattr : t -> ino:int -> attr res
  val lookup : t -> dir:int -> string -> attr res
  val create : t -> dir:int -> string -> attr res
  val mkdir : t -> dir:int -> string -> attr res
  val unlink : t -> dir:int -> string -> unit res
  val rmdir : t -> dir:int -> string -> unit res

  val rename :
    t -> olddir:int -> oldname:string -> newdir:int -> newname:string -> unit res

  val link : t -> ino:int -> dir:int -> string -> attr res

  val symlink : t -> dir:int -> string -> target:string -> attr res
  val readlink : t -> ino:int -> string res
  val read : t -> ino:int -> off:int -> len:int -> Bytes.t res
  val write : t -> ino:int -> off:int -> Bytes.t -> int res
  val truncate : t -> ino:int -> size:int -> unit res
  val fsync : t -> ino:int -> unit res
  val sync : t -> unit res
  val readdir : t -> ino:int -> dentry list res

  val bmap : t -> ino:int -> fbn:int -> int res
  (** FIBMAP: the device block backing file block [fbn] of [ino]; 0 for an
      unallocated hole. Never allocates — clients use it to learn device
      pointers when building pushdown index blocks. *)

  val iopen : t -> ino:int -> unit res
  val irelease : t -> ino:int -> unit

  val max_file_size : int

  (* Online upgrade support (§4.8): the mediating layer calls
     [extract_state] on the old version after quiescing, and
     [restore_state] on the new version before resuming. *)
  val extract_state : t -> Upgrade_state.t
  val restore_state : t -> Upgrade_state.t -> unit
end

(** A file-system implementation parameterised by the kernel services it
    runs against — in the kernel (BentoKS) or at user level (§4.9). *)
module type FS_MAKER = functor (_ : Bentoks.KSERVICES) -> FS

(** The function-pointer table BentoFS stores for a mounted file system
    (§5.2: "function pointers to file system operations are stored in a data
    structure that is provided to Bento when the file system is mounted and
    upgraded"). Built from an [FS] module by [dispatch_of]. *)
type dispatch = {
  d_name : string;
  d_version : int;
  d_max_file_size : int;
  d_statfs : unit -> fs_stats;
  d_getattr : ino:int -> attr res;
  d_lookup : dir:int -> string -> attr res;
  d_create : dir:int -> string -> attr res;
  d_mkdir : dir:int -> string -> attr res;
  d_unlink : dir:int -> string -> unit res;
  d_rmdir : dir:int -> string -> unit res;
  d_rename :
    olddir:int -> oldname:string -> newdir:int -> newname:string -> unit res;
  d_link : ino:int -> dir:int -> string -> attr res;
  d_symlink : dir:int -> string -> target:string -> attr res;
  d_readlink : ino:int -> string res;
  d_read : ino:int -> off:int -> len:int -> Bytes.t res;
  d_write : ino:int -> off:int -> Bytes.t -> int res;
  d_truncate : ino:int -> size:int -> unit res;
  d_fsync : ino:int -> unit res;
  d_sync : unit -> unit res;
  d_readdir : ino:int -> dentry list res;
  d_bmap : ino:int -> fbn:int -> int res;
  d_iopen : ino:int -> unit res;
  d_irelease : ino:int -> unit;
  d_extract_state : unit -> Upgrade_state.t;
  d_restore_state : Upgrade_state.t -> unit;
  d_destroy : unit -> unit;
}

let dispatch_of (type a) (module F : FS with type t = a) (fs : a) : dispatch =
  {
    d_name = F.name;
    d_version = F.version;
    d_max_file_size = F.max_file_size;
    d_statfs = (fun () -> F.statfs fs);
    d_getattr = (fun ~ino -> F.getattr fs ~ino);
    d_lookup = (fun ~dir name -> F.lookup fs ~dir name);
    d_create = (fun ~dir name -> F.create fs ~dir name);
    d_mkdir = (fun ~dir name -> F.mkdir fs ~dir name);
    d_unlink = (fun ~dir name -> F.unlink fs ~dir name);
    d_rmdir = (fun ~dir name -> F.rmdir fs ~dir name);
    d_rename =
      (fun ~olddir ~oldname ~newdir ~newname ->
        F.rename fs ~olddir ~oldname ~newdir ~newname);
    d_link = (fun ~ino ~dir name -> F.link fs ~ino ~dir name);
    d_symlink = (fun ~dir name ~target -> F.symlink fs ~dir name ~target);
    d_readlink = (fun ~ino -> F.readlink fs ~ino);
    d_read = (fun ~ino ~off ~len -> F.read fs ~ino ~off ~len);
    d_write = (fun ~ino ~off data -> F.write fs ~ino ~off data);
    d_truncate = (fun ~ino ~size -> F.truncate fs ~ino ~size);
    d_fsync = (fun ~ino -> F.fsync fs ~ino);
    d_sync = (fun () -> F.sync fs);
    d_readdir = (fun ~ino -> F.readdir fs ~ino);
    d_bmap = (fun ~ino ~fbn -> F.bmap fs ~ino ~fbn);
    d_iopen = (fun ~ino -> F.iopen fs ~ino);
    d_irelease = (fun ~ino -> F.irelease fs ~ino);
    d_extract_state = (fun () -> F.extract_state fs);
    d_restore_state = (fun st -> F.restore_state fs st);
    d_destroy = (fun () -> F.destroy fs);
  }

let vfs_kind = function
  | File -> Kernel.Vfs.Reg
  | Directory -> Kernel.Vfs.Dir
  | Symlink -> Kernel.Vfs.Symlink

let vfs_stat a =
  {
    Kernel.Vfs.st_ino = a.a_ino;
    st_kind = vfs_kind a.a_kind;
    st_size = a.a_size;
    st_nlink = a.a_nlink;
  }
