(** BentoFS — the layer that interposes between the kernel VFS and a Bento
    file system (§4.3, §5.2).

    It translates each VFS call into the file-operations API, holding a
    dispatch read-lock so that online upgrade can quiesce in-flight
    operations and swap the implementation underneath running applications
    (§4.8). Because BentoFS inherits from the FUSE kernel module, its
    writeback path batches contiguous dirty pages into single [write] calls
    ([writepages]); the hand-written C baseline writes one page at a time —
    the difference behind the paper's write/untar results. *)

type handle = {
  mutable current : Fs_api.dispatch;
  dispatch_lock : Sim.Sync.Rwlock.t;  (** read: ops; write: upgrade *)
  machine : Kernel.Machine.t;
  bcache : Kernel.Bcache.t;
  services : (module Bentoks.KSERVICES);
  mutable upgrades : int;
  tracer : Sim.Trace.t;
  crossings : Sim.Stats.Counter.t;  (** VFS → BentoFS dispatch crossings *)
  cas : Kernel.Cas.t option;  (** CAS region store, when mounted with one *)
}

let wb_batch_pages = 256
(** Max pages per writepages call — a 1 MiB max request, matching the FUSE
    kernel module's batched writeback this layer inherits. *)

(* Every VFS entry point runs under the dispatch read lock so upgrades can
   quiesce by taking it in write mode. Each crossing is counted and traced
   so the per-layer accounting in the benchmarks can attribute time spent
   below the VFS to the Bento dispatch layer. *)
let with_fs h name f =
  Sim.Stats.Counter.incr h.crossings;
  Kernel.Machine.with_layer h.machine "fs" @@ fun () ->
  Sim.Trace.span_begin h.tracer ~cat:"bento" name;
  match Sim.Sync.Rwlock.with_read h.dispatch_lock (fun () -> f h.current) with
  | r ->
      Sim.Trace.span_end h.tracer ~cat:"bento" name;
      r
  | exception e ->
      Sim.Trace.span_end h.tracer ~cat:"bento" name;
      raise e

let translate_attr = Fs_api.vfs_stat

(** Build the VFS function-pointer table for a mounted Bento fs.
    [wb_batch] overrides the writepages batch size (1 reproduces the C
    baseline's writepage behaviour — used by the ablation benchmarks). *)
let vfs_ops ?(wb_batch = wb_batch_pages) (h : handle) : Kernel.Vfs.fs_ops =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let psz = Kernel.Bcache.block_size h.bcache in
  {
    Kernel.Vfs.fs_name = "bento:" ^ h.current.Fs_api.d_name;
    root_ino = 1;
    lookup =
      (fun ~dir name ->
        with_fs h "bento:lookup" (fun d ->
            let* a = d.Fs_api.d_lookup ~dir name in
            Ok (translate_attr a)));
    getattr =
      (fun ino ->
        with_fs h "bento:getattr" (fun d ->
            let* a = d.Fs_api.d_getattr ~ino in
            Ok (translate_attr a)));
    create =
      (fun ~dir name ->
        with_fs h "bento:create" (fun d ->
            let* a = d.Fs_api.d_create ~dir name in
            Ok (translate_attr a)));
    mkdir =
      (fun ~dir name ->
        with_fs h "bento:mkdir" (fun d ->
            let* a = d.Fs_api.d_mkdir ~dir name in
            Ok (translate_attr a)));
    unlink =
      (fun ~dir name ->
        with_fs h "bento:unlink" (fun d -> d.Fs_api.d_unlink ~dir name));
    rmdir =
      (fun ~dir name ->
        with_fs h "bento:rmdir" (fun d -> d.Fs_api.d_rmdir ~dir name));
    rename =
      (fun ~olddir ~oldname ~newdir ~newname ->
        with_fs h "bento:rename" (fun d ->
            d.Fs_api.d_rename ~olddir ~oldname ~newdir ~newname));
    link =
      (fun ~ino ~dir name ->
        with_fs h "bento:link" (fun d ->
            let* a = d.Fs_api.d_link ~ino ~dir name in
            Ok (translate_attr a)));
    symlink =
      (fun ~dir name ~target ->
        with_fs h "bento:symlink" (fun d ->
            let* a = d.Fs_api.d_symlink ~dir name ~target in
            Ok (translate_attr a)));
    readlink =
      (fun ~ino ->
        with_fs h "bento:readlink" (fun d -> d.Fs_api.d_readlink ~ino));
    readdir =
      (fun ino ->
        with_fs h "bento:readdir" (fun d ->
            let* des = d.Fs_api.d_readdir ~ino in
            Ok
              (List.map
                 (fun de ->
                   {
                     Kernel.Vfs.d_name = de.Fs_api.name;
                     d_ino = de.Fs_api.ino;
                     d_kind = Fs_api.vfs_kind de.Fs_api.kind;
                   })
                 des)));
    readdir_filter =
      (fun ino ~prog ->
        (* The whole scan — readdir, filter, per-entry getattr — happens
           under ONE dispatch crossing; the registered program decides
           which entries survive. *)
        with_fs h "bento:readdir_filter" (fun d ->
            Kernel.Pushdown.filter_dir
              (Kernel.Pushdown.registry h.machine)
              ~name:prog
              ~readdir:(fun () ->
                let* des = d.Fs_api.d_readdir ~ino in
                Ok
                  (List.map
                     (fun de ->
                       {
                         Kernel.Vfs.d_name = de.Fs_api.name;
                         d_ino = de.Fs_api.ino;
                         d_kind = Fs_api.vfs_kind de.Fs_api.kind;
                       })
                     des))
              ~getattr:(fun ino ->
                let* a = d.Fs_api.d_getattr ~ino in
                Ok (translate_attr a))));
    bmap =
      (fun ~ino ~fbn ->
        with_fs h "bento:bmap" (fun d -> d.Fs_api.d_bmap ~ino ~fbn));
    readpage =
      (fun ~ino ~index ->
        with_fs h "bento:readpage" (fun d ->
            let* data = d.Fs_api.d_read ~ino ~off:(index * psz) ~len:psz in
            (* VFS wants a full page; zero-fill a short read at EOF. *)
            if Bytes.length data = psz then Ok data
            else begin
              let page = Bytes.make psz '\000' in
              Bytes.blit data 0 page 0 (Bytes.length data);
              Ok page
            end));
    readahead =
      (fun ~ino ~start ~count ->
        with_fs h "bento:readahead" (fun d ->
            (* One bulk read for the whole window: the fs maps the span
               and pulls it through the cache in channel-parallel batched
               commands (readi's bread_multi path). *)
            let* data =
              d.Fs_api.d_read ~ino ~off:(start * psz) ~len:(count * psz)
            in
            Ok
              (Array.init count (fun i ->
                   let page = Bytes.make psz '\000' in
                   let off = i * psz in
                   let n = min psz (max 0 (Bytes.length data - off)) in
                   if n > 0 then Bytes.blit data off page 0 n;
                   page))));
    write_pages =
      (fun ~ino ~isize pages ->
        with_fs h "bento:write_pages" (fun d ->
            (* Contiguous dirty run: one fs write (writepages). Clamp the
               tail to the inode size so the fs records the true size. *)
            match Array.length pages with
            | 0 -> Ok ()
            | n ->
                let first_index = fst pages.(0) in
                let buf = Bytes.create (n * psz) in
                Array.iteri
                  (fun i (_, data) -> Bytes.blit data 0 buf (i * psz) psz)
                  pages;
                let off = first_index * psz in
                let len = min (Bytes.length buf) (max 0 (isize - off)) in
                if len = 0 then Ok ()
                else
                  let* _ = d.Fs_api.d_write ~ino ~off (Bytes.sub buf 0 len) in
                  Ok ()));
    truncate =
      (fun ~ino size ->
        with_fs h "bento:truncate" (fun d -> d.Fs_api.d_truncate ~ino ~size));
    fsync =
      (fun ~ino -> with_fs h "bento:fsync" (fun d -> d.Fs_api.d_fsync ~ino));
    sync_fs = (fun () -> with_fs h "bento:sync_fs" (fun d -> d.Fs_api.d_sync ()));
    iopen = (fun ~ino -> with_fs h "bento:iopen" (fun d -> d.Fs_api.d_iopen ~ino));
    irelease =
      (fun ~ino ->
        with_fs h "bento:irelease" (fun d -> d.Fs_api.d_irelease ~ino));
    statfs =
      (fun () ->
        with_fs h "bento:statfs" (fun d ->
            let s = d.Fs_api.d_statfs () in
            {
              Kernel.Vfs.f_blocks = s.Fs_api.s_blocks;
              f_bfree = s.Fs_api.s_bfree;
              f_files = s.Fs_api.s_files;
              f_ffree = s.Fs_api.s_ffree;
            }));
    wb_batch;
    max_file_size = h.current.Fs_api.d_max_file_size;
  }

(* Reserving a CAS region caps the block count the fs sees: the tail of
   the device belongs to the store. *)
let fs_cap machine cas_blocks =
  match cas_blocks with
  | None | Some 0 -> None
  | Some n -> Some (Device.Ssd.nblocks (Kernel.Machine.disk machine) - n)

let cas_backend bcache =
  {
    Kernel.Cas.b_block_size = Kernel.Bcache.block_size bcache;
    b_read = Kernel.Bcache.raw_read bcache;
    b_read_scatter = Kernel.Bcache.raw_read_scatter bcache;
    b_write = Kernel.Bcache.raw_write_scatter bcache;
    b_flush = (fun () -> Kernel.Bcache.flush bcache);
  }

(** Format the device with file system [maker]. [cas_blocks] must match
    the value later given to {!mount} — the fs layout stops where the CAS
    region starts. *)
let mkfs ?cas_blocks (machine : Kernel.Machine.t)
    (maker : (module Fs_api.FS_MAKER)) : (unit, Kernel.Errno.t) result =
  let bcache = Kernel.Bcache.create machine in
  let services =
    Bentoks.kernel_services ?nblocks_cap:(fs_cap machine cas_blocks) machine
      bcache
  in
  let module K = (val services) in
  let module Maker = (val maker) in
  let module F = Maker (K) in
  let r = F.mkfs () in
  Kernel.Bcache.flush bcache;
  r

(** Insert + mount: instantiate the fs module against fresh kernel
    services, mount it, and return the VFS mount plus the handle used for
    upgrades. [cas_blocks > 0] reserves that many device-tail blocks for a
    content-addressable store, attaches it (recovering any committed
    state) and registers its hooks with the VFS. *)
let mount ?dirty_limit ?page_cap ?background ?wb_batch ?cas_blocks
    (machine : Kernel.Machine.t) (maker : (module Fs_api.FS_MAKER)) :
    (Kernel.Vfs.t * handle, Kernel.Errno.t) result =
  let bcache = Kernel.Bcache.create machine in
  let services =
    Bentoks.kernel_services ?nblocks_cap:(fs_cap machine cas_blocks) machine
      bcache
  in
  let module K = (val services) in
  let module Maker = (val maker) in
  let module F = Maker (K) in
  match F.mount () with
  | Error _ as e -> e
  | Ok fs ->
      let cas =
        match cas_blocks with
        | None | Some 0 -> None
        | Some n ->
            let base = Device.Ssd.nblocks (Kernel.Machine.disk machine) - n in
            let store =
              Kernel.Cas.attach machine (cas_backend bcache) ~base ~blocks:n
            in
            Kernel.Cas.register machine store;
            Some store
      in
      let h =
        {
          current = Fs_api.dispatch_of (module F) fs;
          dispatch_lock = Sim.Sync.Rwlock.create ();
          machine;
          bcache;
          services;
          upgrades = 0;
          tracer = Kernel.Machine.tracer machine;
          crossings = Kernel.Machine.counter machine "bento_crossings";
          cas;
        }
      in
      let vfs =
        Kernel.Vfs.mount ?dirty_limit ?page_cap ?background machine
          (vfs_ops ?wb_batch h)
      in
      (* Pushdown walks read below the syscall layer through the buffer
         cache — sharding and admission apply exactly as for fs reads. *)
      Kernel.Pushdown.set_backend
        (Kernel.Pushdown.registry machine)
        ~label:"bcache"
        (fun blk ->
          let b = Kernel.Bcache.bread bcache blk in
          let d = Bytes.copy b.Kernel.Bcache.data in
          Kernel.Bcache.brelse bcache b;
          d);
      Option.iter
        (fun store -> Kernel.Vfs.set_cas vfs (Some (Kernel.Cas.vfs_hooks store)))
        cas;
      Ok (vfs, h)

(** Unmount: flush the VFS, destroy the fs instance. *)
let unmount (vfs : Kernel.Vfs.t) (h : handle) =
  Kernel.Vfs.unmount vfs;
  (match h.cas with
  | Some _ -> Kernel.Cas.unregister h.machine
  | None -> ());
  h.current.Fs_api.d_destroy ()

let bcache h = h.bcache
let services h = h.services
let machine h = h.machine
let upgrades h = h.upgrades
let current_version h = h.current.Fs_api.d_version
let current_name h = h.current.Fs_api.d_name
