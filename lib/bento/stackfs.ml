(** Composable (stackable) file systems — challenge 6 (§3.4).

    Linux stacks file systems by routing the upper layer back through
    top-level VFS calls (ecryptfs over ext4, overlayfs over anything),
    paying the full VFS path per layer. Bento can do better: because a file
    system is a functor over its services and exposes the typed
    file-operations API, a layer is just a functor from [FS_MAKER] to
    [FS_MAKER] — the composition is direct function calls, no VFS
    round-trip, and the result mounts, upgrades, and runs at user level
    like any other Bento file system.

    Two layers are provided:

    - [Xor]: a toy encryption layer in the spirit of ecryptfs — data is
      transformed on the way in and out, metadata passes through. (A real
      cipher would slot into [transform] unchanged; XOR keeps the example
      dependency-free and makes tampering visible in tests.)

    - [Provenance]: the paper's data-provenance motivation (§3) — records
      which files were derived while which inputs were open, keeping an
      in-memory lineage that upgrades can carry across versions. *)

open Fs_api

(** [Xor (Key) (Inner)] encrypts file contents with a repeating key. *)
module type KEY = sig
  val key : string
end

module Xor (Key : KEY) (Inner : FS_MAKER) =
functor
  (K : Bentoks.KSERVICES)
  ->
  struct
    module F = Inner (K)

    type t = F.t

    let name = "xor+" ^ F.name
    let version = F.version
    let max_file_size = F.max_file_size

    let transform ~off data =
      let k = Key.key in
      let n = String.length k in
      if n = 0 then data
      else
        Bytes.mapi
          (fun i c -> Char.chr (Char.code c lxor Char.code k.[(off + i) mod n]))
          data

    let mkfs = F.mkfs
    let mount = F.mount
    let destroy = F.destroy
    let statfs = F.statfs
    let getattr = F.getattr
    let lookup = F.lookup
    let create = F.create
    let mkdir = F.mkdir
    let unlink = F.unlink
    let rmdir = F.rmdir
    let rename = F.rename
    let link = F.link
    let symlink = F.symlink
    let readlink = F.readlink

    let read t ~ino ~off ~len =
      match F.read t ~ino ~off ~len with
      | Ok data -> Ok (transform ~off data)
      | Error _ as e -> e

    let write t ~ino ~off data = F.write t ~ino ~off (transform ~off data)

    let truncate = F.truncate
    let fsync = F.fsync
    let sync = F.sync
    let readdir = F.readdir
    let bmap = F.bmap
    let iopen = F.iopen
    let irelease = F.irelease
    let extract_state = F.extract_state
    let restore_state = F.restore_state
  end

(** [Provenance (Inner)] tracks lineage: whenever a file is written while
    other files are open for reading, the written file is recorded as
    *derived from* those inputs (§3's motivating example). The lineage
    survives online upgrades via the transfer state. *)
module Provenance (Inner : FS_MAKER) =
functor
  (K : Bentoks.KSERVICES)
  ->
  struct
    module F = Inner (K)

    type t = {
      inner : F.t;
      mutable open_inputs : int list;  (** inodes currently open *)
      lineage : (int, int list) Hashtbl.t;  (** output ino -> input inos *)
    }

    let name = "prov+" ^ F.name
    let version = F.version
    let max_file_size = F.max_file_size

    let mkfs = F.mkfs

    let mount () =
      match F.mount () with
      | Ok inner -> Ok { inner; open_inputs = []; lineage = Hashtbl.create 64 }
      | Error e -> Error e

    let destroy t = F.destroy t.inner
    let statfs t = F.statfs t.inner
    let getattr t = F.getattr t.inner
    let lookup t = F.lookup t.inner
    let create t = F.create t.inner
    let mkdir t = F.mkdir t.inner
    let unlink t = F.unlink t.inner
    let rmdir t = F.rmdir t.inner
    let rename t = F.rename t.inner
    let link t = F.link t.inner
    let symlink t = F.symlink t.inner
    let readlink t = F.readlink t.inner
    let read t = F.read t.inner
    let truncate t = F.truncate t.inner
    let fsync t = F.fsync t.inner
    let sync t = F.sync t.inner
    let readdir t = F.readdir t.inner
    let bmap t = F.bmap t.inner

    let write t ~ino ~off data =
      let inputs = List.filter (fun i -> i <> ino) t.open_inputs in
      if inputs <> [] then begin
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt t.lineage ino)
        in
        let merged =
          List.sort_uniq compare (inputs @ existing)
        in
        Hashtbl.replace t.lineage ino merged
      end;
      F.write t.inner ~ino ~off data

    let iopen t ~ino =
      match F.iopen t.inner ~ino with
      | Ok () ->
          t.open_inputs <- ino :: t.open_inputs;
          Ok ()
      | Error _ as e -> e

    let irelease t ~ino =
      (* remove one occurrence *)
      let rec drop = function
        | [] -> []
        | x :: rest -> if x = ino then rest else x :: drop rest
      in
      t.open_inputs <- drop t.open_inputs;
      F.irelease t.inner ~ino

    (* Lineage is in-memory state the upgrade machinery must carry. *)
    let extract_state t =
      let st = F.extract_state t.inner in
      let blob =
        let b = Buffer.create 256 in
        Hashtbl.iter
          (fun out inputs ->
            Buffer.add_string b (string_of_int out);
            Buffer.add_char b ':';
            Buffer.add_string b
              (String.concat "," (List.map string_of_int inputs));
            Buffer.add_char b ';')
          t.lineage;
        Buffer.to_bytes b
      in
      Upgrade_state.with_blob st "provenance" blob

    let restore_state t st =
      F.restore_state t.inner st;
      match Upgrade_state.blob st "provenance" with
      | None -> ()
      | Some blob ->
          String.split_on_char ';' (Bytes.to_string blob)
          |> List.iter (fun entry ->
                 match String.split_on_char ':' entry with
                 | [ out; inputs ] when out <> "" ->
                     let inputs =
                       String.split_on_char ',' inputs
                       |> List.filter_map int_of_string_opt
                     in
                     Hashtbl.replace t.lineage (int_of_string out) inputs
                 | _ -> ())

    (** Layer-specific query used by tests and tools: what was [ino]
        derived from? *)
    let derived_from t ~ino =
      Option.value ~default:[] (Hashtbl.find_opt t.lineage ino)
  end
